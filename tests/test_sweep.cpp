/**
 * @file
 * Tests for the simulation-campaign engine: parallel results are
 * identical to serial, content digests track every CoreParams field,
 * the result cache (memory and disk) short-circuits simulation, and
 * the JSON/CSV reporters produce their golden output.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "common/digest.hpp"
#include "common/report.hpp"
#include "common/serialize.hpp"
#include "harness/experiment.hpp"
#include "sweep/campaign.hpp"
#include "sweep/reporter.hpp"
#include "sweep/result_cache.hpp"
#include "sweep/thread_pool.hpp"

using namespace reno;
using namespace reno::sweep;

namespace
{

/** Two small workloads and three configs: a 2x3 cross-product. */
Campaign
smallCampaign()
{
    const CoreParams base = CoreParams::fourWide();
    const std::vector<NamedConfig> configs = {
        {"BASE", withReno(base, RenoConfig::baseline())},
        {"ME+CF", withReno(base, RenoConfig::meCf())},
        {"RENO", withReno(base, RenoConfig::full())},
    };
    Campaign c;
    c.addCross({&workloadByName("gzip"), &workloadByName("adpcm.dec")},
               configs);
    return c;
}

bool
sameSim(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.retired == b.retired &&
           a.elim[1] == b.elim[1] && a.elim[2] == b.elim[2] &&
           a.elim[3] == b.elim[3] && a.elim[4] == b.elim[4] &&
           a.itAccesses == b.itAccesses &&
           a.bpMispredicts == b.bpMispredicts &&
           a.dcacheMisses == b.dcacheMisses &&
           a.stallRob == b.stallRob;
}

std::uint64_t
digestOfParams(const CoreParams &p)
{
    Job job;
    job.workload = &workloadByName("gzip");
    job.config = {"x", p};
    return jobDigest(job);
}

} // namespace

TEST(Sweep, ParallelMatchesSerial)
{
    Campaign campaign = smallCampaign();

    CampaignOptions serial;
    serial.jobs = 1;
    const CampaignResults s = campaign.run(serial);

    CampaignOptions parallel;
    parallel.jobs = 4;
    const CampaignResults p = campaign.run(parallel);

    ASSERT_EQ(s.size(), 6u);
    ASSERT_EQ(p.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_TRUE(sameSim(s.at(i).sim, p.at(i).sim)) << "job " << i;

    // Identical rendered reports, byte for byte.
    EXPECT_EQ(renderResults(s, ReportFormat::Json),
              renderResults(p, ReportFormat::Json));
    EXPECT_EQ(s.stats().simulated, 6u);
    EXPECT_EQ(p.stats().simulated, 6u);
}

TEST(Sweep, KeyedLookupFindsSubmissionResults)
{
    Campaign campaign = smallCampaign();
    CampaignOptions opts;
    opts.jobs = 2;
    const CampaignResults r = campaign.run(opts);

    const JobResult &direct = r.at(0);
    const JobResult &keyed = r.get("gzip", "BASE");
    EXPECT_TRUE(sameSim(direct.sim, keyed.sim));
    // A RENO run eliminates instructions; BASE does not.
    EXPECT_EQ(r.get("gzip", "BASE").sim.eliminatedTotal(), 0u);
    EXPECT_GT(r.get("gzip", "RENO").sim.eliminatedTotal(), 0u);
}

TEST(Sweep, SharedCacheSkipsSimulation)
{
    Campaign campaign = smallCampaign();
    ResultCache cache;

    CampaignOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;

    const CampaignResults cold = campaign.run(opts);
    EXPECT_EQ(cold.stats().simulated, 6u);
    EXPECT_EQ(cold.stats().cacheHits, 0u);

    const CampaignResults warm = campaign.run(opts);
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cacheHits, 6u);
    for (std::size_t i = 0; i < cold.size(); ++i)
        EXPECT_TRUE(sameSim(cold.at(i).sim, warm.at(i).sim));
}

TEST(Sweep, DuplicateJobsSimulateOnce)
{
    const Workload &w = workloadByName("gzip");
    const NamedConfig cfg{"BASE", CoreParams::fourWide()};
    Campaign campaign;
    // The same content under three different display tags.
    campaign.add(w, cfg, "a");
    campaign.add(w, cfg, "b");
    campaign.add(w, cfg, "c");

    CampaignOptions opts;
    opts.jobs = 1;
    const CampaignResults r = campaign.run(opts);
    EXPECT_EQ(r.stats().jobs, 3u);
    EXPECT_EQ(r.stats().unique, 1u);
    EXPECT_EQ(r.stats().simulated, 1u);
    EXPECT_TRUE(sameSim(r.get("gzip", "BASE", "a").sim,
                        r.get("gzip", "BASE", "c").sim));
}

TEST(Sweep, DiskCachePersistsAcrossInstances)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "reno_sweep_cache_test").string();
    std::filesystem::remove_all(dir);

    const Workload &w = workloadByName("adpcm.dec");
    const NamedConfig cfg{"RENO",
                          withReno(CoreParams::fourWide(),
                                   RenoConfig::full())};
    Campaign campaign;
    campaign.add(w, cfg);

    CampaignOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir;
    const CampaignResults cold = campaign.run(opts);
    EXPECT_EQ(cold.stats().simulated, 1u);

    // A fresh cache instance (fresh process, conceptually) hits disk.
    const CampaignResults warm = campaign.run(opts);
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cacheHits, 1u);
    EXPECT_TRUE(sameSim(cold.at(0).sim, warm.at(0).sim));

    std::filesystem::remove_all(dir);
}

TEST(Sweep, ResultEncodingRoundTrips)
{
    JobResult r;
    r.sim.cycles = 123456;
    r.sim.retired = 7890;
    r.sim.elim[1] = 11;
    r.sim.elim[2] = 22;
    r.sim.elim[4] = 44;
    r.sim.itAccesses = 5;
    r.sim.stallLsq = 99;
    r.hasCpa = true;
    r.cpaWeights = {10, 20, 30, 40, 50};

    JobResult back;
    ASSERT_TRUE(ResultCache::decode(ResultCache::encode(r), &back));
    EXPECT_TRUE(sameSim(r.sim, back.sim));
    EXPECT_EQ(back.sim.stallLsq, 99u);
    ASSERT_TRUE(back.hasCpa);
    EXPECT_EQ(back.cpaWeights, r.cpaWeights);
    EXPECT_DOUBLE_EQ(back.cpaBreakdown()[4], 50.0 / 150.0);

    // Corruption is rejected, not half-parsed.
    EXPECT_FALSE(ResultCache::decode("garbage", &back));
    std::string truncated = ResultCache::encode(r);
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(ResultCache::decode(truncated, &back));
}

TEST(Sweep, DigestTracksEveryParamsField)
{
    const std::uint64_t base = digestOfParams(CoreParams{});

    // Each mutation must move the digest; display names must not.
    std::vector<CoreParams> variants;
    auto mutate = [&variants](auto fn) {
        CoreParams p;
        fn(p);
        variants.push_back(p);
    };
    mutate([](CoreParams &p) { p.fetchWidth = 6; });
    mutate([](CoreParams &p) { p.issue.intOps = 2; });
    mutate([](CoreParams &p) { p.issue.total = 4; });
    mutate([](CoreParams &p) { p.robEntries = 64; });
    mutate([](CoreParams &p) { p.iqEntries = 32; });
    mutate([](CoreParams &p) { p.numPregs = 96; });
    mutate([](CoreParams &p) { p.schedLoop = 2; });
    mutate([](CoreParams &p) { p.branchResolveExtra = 5; });
    mutate([](CoreParams &p) { p.numStoreSets = 128; });
    mutate([](CoreParams &p) { p.bpred.dir.historyBits = 12; });
    mutate([](CoreParams &p) { p.bpred.btb.entries = 1024; });
    mutate([](CoreParams &p) { p.mem.dcache.sizeBytes = 16 * 1024; });
    mutate([](CoreParams &p) { p.mem.l2.latency = 12; });
    mutate([](CoreParams &p) { p.mem.memory.accessLatency = 200; });
    mutate([](CoreParams &p) { p.reno.me = true; });
    mutate([](CoreParams &p) { p.reno.cf = true; });
    mutate([](CoreParams &p) { p.reno = RenoConfig::full(); });
    mutate([](CoreParams &p) {
        p.reno = RenoConfig::full();
        p.reno.it.entries = 256;
    });
    mutate([](CoreParams &p) { p.reno.itLoadsOnly = false; });
    mutate([](CoreParams &p) { p.reno.exactOverflowCheck = true; });
    mutate([](CoreParams &p) { p.freeAddAddFusion = false; });
    mutate([](CoreParams &p) { p.maxCycles = 1000; });

    std::set<std::uint64_t> seen{base};
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const std::uint64_t d = digestOfParams(variants[i]);
        EXPECT_TRUE(seen.insert(d).second)
            << "variant " << i << " collided";
    }

    // The digest is content-addressed: config/workload display names
    // and tags don't affect it; source and seed do.
    Job a, b;
    a.workload = b.workload = &workloadByName("gzip");
    a.config = {"one name", CoreParams{}};
    b.config = {"another name", CoreParams{}};
    b.tag = "tagged";
    EXPECT_EQ(jobDigest(a), jobDigest(b));

    Job c = a;
    c.workload = &workloadByName("eon.c");
    Job d = a;
    d.workload = &workloadByName("eon.k");  // same kernel, other seed
    EXPECT_NE(jobDigest(c), jobDigest(a));
    EXPECT_NE(jobDigest(c), jobDigest(d));

    Job e = a;
    e.wantCpa = true;
    EXPECT_NE(jobDigest(e), jobDigest(a));
}

TEST(Sweep, SerializeCoreParamsIsCanonical)
{
    const std::string s1 = serializeCoreParams(CoreParams{});
    const std::string s2 = serializeCoreParams(CoreParams{});
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1.find("robEntries 128\n"), std::string::npos);
    EXPECT_NE(s1.find("reno.me 0\n"), std::string::npos);

    CoreParams p;
    p.reno = RenoConfig::full();
    EXPECT_NE(serializeCoreParams(p), s1);
}

TEST(Sweep, JsonReporterGoldenOutput)
{
    std::vector<ReportRecord> records(2);
    addField(records[0], "name", "alpha \"quoted\"");
    addField(records[0], "cycles", std::uint64_t(42));
    addField(records[0], "ipc", 1.5, 2);
    addField(records[1], "name", "beta\nline");
    addField(records[1], "cycles", std::uint64_t(7));
    addField(records[1], "ipc", 0.25, 2);

    EXPECT_EQ(renderJson(records),
              "[\n"
              "  {\"name\": \"alpha \\\"quoted\\\"\", \"cycles\": 42, "
              "\"ipc\": 1.50},\n"
              "  {\"name\": \"beta\\nline\", \"cycles\": 7, "
              "\"ipc\": 0.25}\n"
              "]\n");
}

TEST(Sweep, CsvReporterGoldenOutput)
{
    std::vector<ReportRecord> records(2);
    addField(records[0], "name", "plain");
    addField(records[0], "note", "has,comma");
    addField(records[1], "name", "quo\"te");
    addField(records[1], "note", "fine");

    EXPECT_EQ(renderCsv(records),
              "name,note\n"
              "plain,\"has,comma\"\n"
              "\"quo\"\"te\",fine\n");
}

TEST(Sweep, TableReporterAligns)
{
    std::vector<ReportRecord> records(1);
    addField(records[0], "workload", "gzip");
    addField(records[0], "cycles", std::uint64_t(100));
    const std::string table = renderTable(records);
    EXPECT_NE(table.find("workload"), std::string::npos);
    EXPECT_NE(table.find("gzip"), std::string::npos);
}

TEST(Sweep, ThreadPoolRunsEverythingAndWaits)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);

    // Reusable after idle.
    pool.submit([&count] { count += 10; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 110);
}

TEST(Sweep, ResolveJobCountPrecedence)
{
    EXPECT_EQ(resolveJobCount(3), 3u);
    setenv("RENO_JOBS", "2", 1);
    EXPECT_EQ(resolveJobCount(0), 2u);
    EXPECT_EQ(resolveJobCount(5), 5u);  // explicit beats env
    unsetenv("RENO_JOBS");
    EXPECT_GE(resolveJobCount(0), 1u);
}

TEST(Sweep, ParseCampaignArgs)
{
    const char *argv[] = {"prog", "--jobs", "8", "--cache-dir=/tmp/x",
                          "--sweep-stats", "--unrelated"};
    const CampaignOptions opts =
        parseCampaignArgs(6, const_cast<char **>(argv));
    EXPECT_EQ(opts.jobs, 8u);
    EXPECT_EQ(opts.cacheDir, "/tmp/x");
    EXPECT_TRUE(opts.stats);
}

TEST(Sweep, Fnv64KnownVectorsAndSeparation)
{
    // FNV-1a 64 of the empty input is the offset basis.
    EXPECT_EQ(Fnv64{}.value(), 0xcbf29ce484222325ULL);
    // "a" -> well-known FNV-1a 64 value.
    EXPECT_EQ(Fnv64{}.update("a", 1).value(), 0xaf63dc4c8601ec8cULL);

    // Length separation: ("ab","c") != ("a","bc").
    Fnv64 h1, h2;
    h1.update(std::string("ab")).update(std::string("c"));
    h2.update(std::string("a")).update(std::string("bc"));
    EXPECT_NE(h1.value(), h2.value());

    EXPECT_EQ(digestHex(0xabcULL), "0000000000000abc");
}
