/**
 * @file
 * Multi-core coherence tests: the MESI state lattice on the snooping
 * bus (every legal transition plus the invalidation/intervention/
 * upgrade counters), false-sharing ping-pong detection on the "multi"
 * suite, 1-core System identity with the single-core path, config
 * variant parsing (/2c, /4c), and checkpoint round-trips across core
 * counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "coherence/mesi.hpp"
#include "harness/experiment.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "sample/checkpoint.hpp"
#include "sample/sampler.hpp"
#include "sample/warmup.hpp"
#include "sys/system.hpp"
#include "uarch/params.hpp"
#include "workloads/workload_sources.hpp"
#include "workloads/workloads.hpp"

using namespace reno;
using namespace reno::workloads;

namespace
{

/** A two-core bus over real L1 D$ models, as the System wires it. */
struct BusRig {
    SysParams sys;
    MainMemory mem;
    Cache d0, d1;
    CoherenceBus bus;

    static CacheParams
    l1Params()
    {
        CacheParams p;
        p.name = "d$";
        p.sizeBytes = 1024;
        p.assoc = 2;
        p.blockBytes = 32;
        return p;
    }

    BusRig()
        : mem(MemoryParams{}, 32), d0(l1Params(), &mem),
          d1(l1Params(), &mem), bus(sys, 32, 2)
    {
        bus.attachCore(0, &d0);
        bus.attachCore(1, &d1);
    }

    /** One demand access as MemHierarchy issues it: snoop, then D$. */
    Cycle
    access(unsigned core, Addr addr, bool write)
    {
        const Cycle penalty =
            bus.beforeDataAccess(core, addr, write, 0);
        (core == 0 ? d0 : d1)
            .access(addr, 0,
                    write ? MemAccessKind::Write : MemAccessKind::Read);
        return penalty;
    }
};

/** Small private kernels so the detailed runs stay fast. */
Workload
testWorkload(const char *name, const char *source)
{
    return Workload{name, "test", source, 1};
}

} // namespace

TEST(Mesi, ReadMissTakesExclusive)
{
    BusRig rig;
    EXPECT_EQ(rig.access(0, 0x1000, false), 0u)
        << "sole-copy fill pays no bus penalty";
    EXPECT_EQ(rig.bus.state(0, 0x1000), MesiState::Exclusive);
    EXPECT_EQ(rig.bus.state(1, 0x1000), MesiState::Invalid);
}

TEST(Mesi, SecondReaderSharesCleanLine)
{
    BusRig rig;
    rig.access(0, 0x1000, false);
    EXPECT_EQ(rig.access(1, 0x1000, false),
              Cycle{rig.sys.snoopLatency})
        << "E -> S downgrade is a snoop, not an intervention";
    EXPECT_EQ(rig.bus.state(0, 0x1000), MesiState::Shared);
    EXPECT_EQ(rig.bus.state(1, 0x1000), MesiState::Shared);
    EXPECT_EQ(rig.bus.interventions(), 0u);
    EXPECT_EQ(rig.bus.invalidations(), 0u);
}

TEST(Mesi, WriteUpgradesExclusiveSilently)
{
    BusRig rig;
    rig.access(0, 0x2000, false);
    EXPECT_EQ(rig.access(0, 0x2000, true), 0u)
        << "E -> M never touches the bus";
    EXPECT_EQ(rig.bus.state(0, 0x2000), MesiState::Modified);
    EXPECT_EQ(rig.bus.upgradeMisses(), 0u);
}

TEST(Mesi, WriteMissOverSharersIsUpgradeMiss)
{
    BusRig rig;
    rig.access(0, 0x3000, false);
    rig.access(1, 0x3000, false);  // both Shared
    EXPECT_EQ(rig.access(0, 0x3000, true),
              Cycle{rig.sys.upgradeLatency});
    EXPECT_EQ(rig.bus.upgradeMisses(), 1u);
    EXPECT_EQ(rig.bus.invalidations(), 1u);
    EXPECT_EQ(rig.bus.state(0, 0x3000), MesiState::Modified);
    EXPECT_EQ(rig.bus.state(1, 0x3000), MesiState::Invalid);
    EXPECT_FALSE(rig.d1.probe(0x3000))
        << "the remote L1's tag array must agree with the directory";
}

TEST(Mesi, RemoteReadOfModifiedIntervenes)
{
    BusRig rig;
    rig.access(0, 0x4000, true);  // Modified in core 0
    EXPECT_EQ(rig.access(1, 0x4000, false),
              Cycle{rig.sys.interventionLatency});
    EXPECT_EQ(rig.bus.interventions(), 1u);
    EXPECT_EQ(rig.bus.writebacks(), 1u)
        << "the dirty line flushes to the shared level";
    EXPECT_EQ(rig.bus.state(0, 0x4000), MesiState::Shared);
    EXPECT_EQ(rig.bus.state(1, 0x4000), MesiState::Shared);
    EXPECT_TRUE(rig.d0.probe(0x4000))
        << "an intervention downgrades; the copy stays resident";
}

TEST(Mesi, RemoteWriteInvalidatesModifiedOwner)
{
    BusRig rig;
    rig.access(0, 0x5000, true);  // Modified in core 0
    EXPECT_EQ(rig.access(1, 0x5000, true),
              Cycle{rig.sys.interventionLatency});
    EXPECT_EQ(rig.bus.interventions(), 1u);
    EXPECT_EQ(rig.bus.invalidations(), 1u);
    EXPECT_EQ(rig.bus.writebacks(), 1u);
    EXPECT_EQ(rig.bus.state(0, 0x5000), MesiState::Invalid);
    EXPECT_EQ(rig.bus.state(1, 0x5000), MesiState::Modified);
    EXPECT_FALSE(rig.d0.probe(0x5000));
}

TEST(Mesi, EvictionRetiresDirectoryEntry)
{
    BusRig rig;
    rig.access(0, 0x6000, false);
    rig.bus.onEviction(0, 0x6000, false);
    EXPECT_EQ(rig.bus.state(0, 0x6000), MesiState::Invalid);
    // The next reader is the sole copy again: Exclusive, no snoop.
    EXPECT_EQ(rig.access(1, 0x6000, false), 0u);
    EXPECT_EQ(rig.bus.state(1, 0x6000), MesiState::Exclusive);
}

TEST(Mesi, DistinctBlocksNeverInteract)
{
    BusRig rig;
    rig.access(0, 0x7000, true);
    rig.access(1, 0x7020, true);  // next 32 B block
    EXPECT_EQ(rig.bus.invalidations(), 0u);
    EXPECT_EQ(rig.bus.interventions(), 0u);
    EXPECT_EQ(rig.bus.state(0, 0x7000), MesiState::Modified);
    EXPECT_EQ(rig.bus.state(1, 0x7020), MesiState::Modified);
}

TEST(Mesi, SameBlockOffsetsShareOneLine)
{
    BusRig rig;
    rig.access(0, 0x8000, true);
    // A different byte of the same 32 B block ping-pongs ownership.
    rig.access(1, 0x8008, true);
    EXPECT_EQ(rig.bus.invalidations(), 1u);
    EXPECT_EQ(rig.bus.state(0, 0x8000), MesiState::Invalid);
}

TEST(Mesi, ConstructionValidatesGeometry)
{
    SysParams sys;
    EXPECT_DEATH(CoherenceBus(sys, 48, 2), "power of two");
    EXPECT_DEATH(CoherenceBus(sys, 32, 0), "positive");
    EXPECT_DEATH(CoherenceBus(sys, 32, 33), "at most 32");
}

TEST(SysVariant, ParsesCoreCountSuffixes)
{
    CoreParams params = CoreParams::fourWide();
    EXPECT_TRUE(applySysVariant("2c", &params));
    EXPECT_EQ(params.sys.numCores, 2u);
    EXPECT_TRUE(applySysVariant("4c", &params));
    EXPECT_EQ(params.sys.numCores, 4u);
    EXPECT_TRUE(applySysVariant("8c", &params));
    EXPECT_EQ(params.sys.numCores, 8u);
}

TEST(SysVariant, RejectsCountsTheSystemWouldFatalOn)
{
    CoreParams params = CoreParams::fourWide();
    EXPECT_FALSE(applySysVariant("0c", &params));
    EXPECT_FALSE(applySysVariant("9c", &params));
    EXPECT_FALSE(applySysVariant("c", &params));
    EXPECT_FALSE(applySysVariant("xc", &params));
    EXPECT_FALSE(applySysVariant("2", &params));
    EXPECT_EQ(params.sys.numCores, 1u) << "rejects leave params alone";
}

TEST(SysVariant, ConfigByNameComposesWithOtherVariants)
{
    const CoreParams base = CoreParams::fourWide();
    NamedConfig cfg;
    ASSERT_TRUE(configByName("RENO/2c", base, &cfg));
    EXPECT_EQ(cfg.params.sys.numCores, 2u);
    ASSERT_TRUE(configByName("RENO/4c/l3", base, &cfg));
    EXPECT_EQ(cfg.params.sys.numCores, 4u);
    EXPECT_FALSE(cfg.params.mem.extraLevels.empty());
    EXPECT_FALSE(configByName("RENO/0c", base, &cfg));
    EXPECT_FALSE(configByName("RENO/9c", base, &cfg));
}

TEST(SuiteErrors, UnknownSuiteListsKnownSuites)
{
    EXPECT_DEATH(suiteWorkloads("nope"), "known suites");
    EXPECT_DEATH(workloadsMatching("multi.*", "nope"), "known suites");
}

TEST(MultiSuite, RegisteredAndListed)
{
    const std::vector<const Workload *> multi = suiteWorkloads("multi");
    ASSERT_FALSE(multi.empty());
    for (const Workload *w : multi)
        EXPECT_EQ(w->suite, "multi");
    EXPECT_FALSE(workloadsMatching("multi.false*", "all").empty());
}

TEST(System, OneCoreMatchesSingleCorePathExactly)
{
    // The acceptance bar for the whole subsystem: an N=1 System is
    // byte-identical to the historical single-core path -- same
    // cycles, same counters, same program output, same memory digest.
    const Workload w =
        testWorkload("t.lock1", multiLockSource(1500));
    CoreParams params = CoreParams::fourWide();
    const RunOutput single = runWorkload(w, params);

    params.sys.numCores = 1;
    const RunOutput sys = runWorkloadMulti(w, params);
    EXPECT_EQ(sys.sim.cycles, single.sim.cycles);
    EXPECT_EQ(sys.sim.retired, single.sim.retired);
    EXPECT_EQ(sys.output, single.output);
    EXPECT_EQ(sys.memDigest, single.memDigest);
    EXPECT_EQ(sys.emuInsts, single.emuInsts);
    EXPECT_EQ(sys.sim.cohInvalidations, 0u);
    EXPECT_EQ(sys.sim.cohInterventions, 0u);
    // The registry rows must agree too (per-core slots aside: the
    // System reports core 0 in slot c0, exactly like a bare Core).
    for (const SimStatField &field : simResultFields())
        EXPECT_EQ(statValue(sys.sim, field),
                  statValue(single.sim, field))
            << field.name;
}

TEST(System, MultiCoreRunIsDeterministic)
{
    const Workload w =
        testWorkload("t.prodcons", multiProdconsSource(16, 2000));
    NamedConfig cfg;
    ASSERT_TRUE(
        configByName("RENO/2c", CoreParams::fourWide(), &cfg));
    const RunOutput a = runWorkload(w, cfg.params);
    const RunOutput b = runWorkload(w, cfg.params);
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.memDigest, b.memDigest);
    for (const SimStatField &field : simResultFields())
        EXPECT_EQ(statValue(a.sim, field), statValue(b.sim, field))
            << field.name;
}

TEST(System, FalseSharingPingPongsAndPaddingCuresIt)
{
    // Two cores read-modify-write counters 8 bytes apart (one 32 B
    // block): ownership ping-pongs, so invalidations scale with the
    // iteration count. The same kernel with 256 B padding puts each
    // counter in its own block: coherence traffic vanishes and the
    // computed checksums do not change.
    const unsigned iters = 3000;
    const Workload shared_w =
        testWorkload("t.false", multiFalseSource(iters, 8));
    const Workload padded_w =
        testWorkload("t.false.pad", multiFalseSource(iters, 256));
    NamedConfig cfg;
    ASSERT_TRUE(
        configByName("RENO/2c", CoreParams::fourWide(), &cfg));

    const RunOutput shared = runWorkload(shared_w, cfg.params);
    const RunOutput padded = runWorkload(padded_w, cfg.params);
    EXPECT_GT(shared.sim.cohInvalidations, iters / 2)
        << "false sharing must show up as invalidation traffic";
    EXPECT_LT(padded.sim.cohInvalidations,
              shared.sim.cohInvalidations / 20)
        << "padding to a block apart must kill the ping-pong";
    EXPECT_EQ(shared.output, padded.output)
        << "padding moves the counters, not the arithmetic";
    EXPECT_GT(shared.sim.dcacheMisses, padded.sim.dcacheMisses + iters)
        << "every ping-pong invalidation forces a D$ refill";
}

TEST(System, PerCoreSlotsAndSharedStackInResult)
{
    const Workload w =
        testWorkload("t.stream", multiStreamSource(2, 2));
    NamedConfig cfg;
    ASSERT_TRUE(
        configByName("RENO/2c", CoreParams::fourWide(), &cfg));
    const RunOutput out = runWorkload(w, cfg.params);
    EXPECT_GT(out.sim.coreCycles[0], 0u);
    EXPECT_GT(out.sim.coreCycles[1], 0u);
    EXPECT_GT(out.sim.coreRetired[0], 0u);
    EXPECT_GT(out.sim.coreRetired[1], 0u);
    EXPECT_EQ(out.sim.coreCycles[2], 0u) << "only 2 cores ran";
    EXPECT_EQ(out.sim.retired,
              out.sim.coreRetired[0] + out.sim.coreRetired[1]);
    EXPECT_GE(out.sim.cycles, std::max(out.sim.coreCycles[0],
                                       out.sim.coreCycles[1]))
        << "system cycles bound every core's completion time";
}

TEST(System, ConstructorValidatesEmulatorCount)
{
    const Workload w =
        testWorkload("t.lock2", multiLockSource(10));
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    Emulator emu(prog, opts);
    CoreParams params = CoreParams::fourWide();
    params.sys.numCores = 2;
    std::vector<Emulator *> one = {&emu};
    EXPECT_DEATH(System(params, one), "emulator");
    params.sys.numCores = 0;
    EXPECT_DEATH(System(params, one), "core count");
}

TEST(Checkpoint, RoundTripsAcrossCoreCounts)
{
    const Workload w =
        testWorkload("t.ckpt", multiLockSource(4000));
    const Program &prog = assembleWorkload(w);
    const CoreParams params = CoreParams::fourWide();

    for (const unsigned cores : {1u, 2u, 4u}) {
        // Warm through the real interleaved engine so the encoded
        // state (L1s, shared stack, MESI directory) is non-trivial.
        std::vector<std::unique_ptr<Emulator>> emus;
        std::vector<Emulator *> emu_ptrs;
        for (unsigned i = 0; i < cores; ++i) {
            Emulator::Options opts;
            opts.randSeed = w.seed + i;
            opts.coreId = i;
            emus.push_back(std::make_unique<Emulator>(prog, opts));
            emu_ptrs.push_back(emus.back().get());
        }

        sample::SampleCheckpoint ckpt;
        if (cores == 1) {
            sample::WarmState warm(params.mem, params.bpred);
            warmStep(*emus[0], warm, 500);
            ckpt.emu = std::make_shared<const EmuCheckpoint>(
                emus[0]->checkpoint());
            ckpt.warm =
                std::make_shared<const sample::WarmState>(warm);
        } else {
            sample::SysWarmState warm(params.mem, params.bpred,
                                      cores);
            warmStepMulti(emu_ptrs, warm, 500 * cores);
            ckpt.emu = std::make_shared<const EmuCheckpoint>(
                emus[0]->checkpoint());
            for (unsigned i = 1; i < cores; ++i)
                ckpt.extraEmus.push_back(
                    std::make_shared<const EmuCheckpoint>(
                        emus[i]->checkpoint()));
            ckpt.sysWarm =
                std::make_shared<const sample::SysWarmState>(warm);
        }
        ASSERT_TRUE(ckpt.usable());
        ASSERT_EQ(ckpt.numCores(), cores);

        const std::string text =
            sample::CheckpointStore::encode(ckpt);
        sample::SampleCheckpoint back;
        ASSERT_TRUE(sample::CheckpointStore::decode(
            text, params.mem, params.bpred, &back, cores))
            << cores << " cores";
        ASSERT_TRUE(back.usable());
        EXPECT_EQ(back.numCores(), cores);
        EXPECT_EQ(back.emu->instCount, ckpt.emu->instCount);
        for (unsigned i = 1; i < cores; ++i)
            EXPECT_EQ(back.extraEmus[i - 1]->instCount,
                      ckpt.extraEmus[i - 1]->instCount);

        // Bit-exact round trip: re-encoding the decoded state (MESI
        // directory, cache tags, predictors and all) reproduces the
        // file byte for byte.
        EXPECT_EQ(sample::CheckpointStore::encode(back), text)
            << cores << " cores";

        // A file snapshotting N cores never restores as N' cores,
        // and the rejection names both counts.
        sample::SampleCheckpoint wrong;
        std::string why;
        EXPECT_FALSE(sample::CheckpointStore::decode(
            text, params.mem, params.bpred, &wrong, cores + 1,
            &why));
        EXPECT_NE(why.find("cores"), std::string::npos) << why;
    }
}

TEST(Checkpoint, StoreKeysSeparateCoreCounts)
{
    const Workload w =
        testWorkload("t.ckpt2", multiLockSource(4000));
    const Program &prog = assembleWorkload(w);
    const CoreParams params = CoreParams::fourWide();
    sample::CheckpointStore store;  // in-memory

    Emulator::Options opts;
    opts.randSeed = w.seed;
    Emulator emu0(prog, opts);
    emu0.runUntil(300);
    opts.randSeed = w.seed + 1;
    opts.coreId = 1;
    Emulator emu1(prog, opts);
    emu1.runUntil(300);

    sample::SysWarmState warm(params.mem, params.bpred, 2);
    std::vector<EmuCheckpoint> snaps;
    snaps.push_back(emu0.checkpoint());
    snaps.push_back(emu1.checkpoint());
    store.storeMulti(w, 300, std::move(snaps), warm);

    EXPECT_TRUE(store
                    .lookup(w, 300, params.mem, params.bpred,
                            /*num_cores=*/2)
                    .usable());
    EXPECT_FALSE(store
                     .lookup(w, 300, params.mem, params.bpred,
                             /*num_cores=*/1)
                     .usable())
        << "a 2-core checkpoint must never satisfy a 1-core lookup";
}

TEST(Sampling, TooManyCoresRejectedByName)
{
    // Multi-core sampling is real now; what remains rejected is a
    // core count past the bus's compile-time limit, and the error
    // must name the offending configuration.
    const Workload w =
        testWorkload("t.sample", multiLockSource(4000));
    NamedConfig cfg;
    cfg.name = "BASE/overwide";
    cfg.params = CoreParams::fourWide();
    cfg.params.sys.numCores = SysParams::MaxCores + 1;
    sample::SampleOptions options;
    EXPECT_DEATH(
        sample::runSampledCampaign({&w}, {cfg}, options),
        "supports 1\\.\\.8 cores \\(config 'BASE/overwide' runs 9\\)");
}

TEST(Emulator, CoreIdSyscallReturnsConfiguredId)
{
    // li v0, 6; syscall -> v0 = core id (0 outside a System).
    const Workload w =
        testWorkload("t.coreid", multiFalseSource(1, 8));
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.coreId = 3;
    Emulator a(prog, opts);
    opts.coreId = 0;
    Emulator b(prog, opts);
    while (!a.done())
        a.runUntil(a.instCount() + 10000);
    while (!b.done())
        b.runUntil(b.instCount() + 10000);
    EXPECT_NE(a.memory().digest(), b.memory().digest())
        << "the kernel's counter address depends on the core id";
}
