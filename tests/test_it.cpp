/**
 * @file
 * Integration table tests: tuple matching on every key field,
 * signature replacement, LRU eviction, reverse entries, input-preg
 * invalidation, output-register reference holding, and LRU reclaim
 * under register pressure.
 */
#include <gtest/gtest.h>

#include "reno/integration_table.hpp"
#include "reno/physregs.hpp"

using namespace reno;

namespace
{

ItEntry
loadTuple(PhysReg base, std::int16_t bdisp, std::int32_t imm,
          PhysReg out, bool reverse = false)
{
    ItEntry e;
    e.reverse = reverse;
    e.op = Opcode::LDQ;
    e.imm = imm;
    e.in1 = MapEntry{base, bdisp};
    e.out = MapEntry{out, 0};
    return e;
}

} // namespace

TEST(It, InsertThenLookupHits)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 0, 8, 9));
    const ItSlot slot =
        it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{});
    ASSERT_NE(slot, InvalidItSlot);
    EXPECT_EQ(it.entry(slot).out.preg, 9);
    EXPECT_EQ(it.hits(), 1u);
}

TEST(It, EveryKeyFieldMatters)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 4, 8, 9));
    // Different opcode.
    EXPECT_EQ(it.lookup(Opcode::LDL, 8, MapEntry{5, 4}, MapEntry{}),
              InvalidItSlot);
    // Different immediate.
    EXPECT_EQ(it.lookup(Opcode::LDQ, 16, MapEntry{5, 4}, MapEntry{}),
              InvalidItSlot);
    // Different input register.
    EXPECT_EQ(it.lookup(Opcode::LDQ, 8, MapEntry{6, 4}, MapEntry{}),
              InvalidItSlot);
    // Different input displacement (RENO_CF extension).
    EXPECT_EQ(it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{}),
              InvalidItSlot);
    // Exact match.
    EXPECT_NE(it.lookup(Opcode::LDQ, 8, MapEntry{5, 4}, MapEntry{}),
              InvalidItSlot);
}

TEST(It, SecondInputParticipates)
{
    IntegrationTable it(ItParams{64, 2});
    ItEntry e;
    e.op = Opcode::ADD;
    e.in1 = MapEntry{1, 0};
    e.in2 = MapEntry{2, 0};
    e.out = MapEntry{3, 0};
    it.insert(e);
    EXPECT_NE(it.lookup(Opcode::ADD, 0, MapEntry{1, 0}, MapEntry{2, 0}),
              InvalidItSlot);
    EXPECT_EQ(it.lookup(Opcode::ADD, 0, MapEntry{1, 0}, MapEntry{7, 0}),
              InvalidItSlot);
}

TEST(It, SignatureReplacementKeepsNewest)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 0, 8, 9));
    it.insert(loadTuple(5, 0, 8, 11));  // same signature, new output
    const ItSlot slot =
        it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{});
    ASSERT_NE(slot, InvalidItSlot);
    EXPECT_EQ(it.entry(slot).out.preg, 11);
}

TEST(It, ReverseFlagPreserved)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 0, 8, 9, true));
    const ItSlot slot =
        it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{});
    ASSERT_NE(slot, InvalidItSlot);
    EXPECT_TRUE(it.entry(slot).reverse);
}

TEST(It, InvalidateSlot)
{
    IntegrationTable it(ItParams{64, 2});
    const ItSlot slot = it.insert(loadTuple(5, 0, 8, 9));
    it.invalidateSlot(slot);
    EXPECT_EQ(it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{}),
              InvalidItSlot);
    EXPECT_EQ(it.invalidations(), 1u);
    it.invalidateSlot(slot);  // idempotent
    EXPECT_EQ(it.invalidations(), 1u);
}

TEST(It, InvalidatePregKillsEntriesUsingItAsInput)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 0, 8, 9));
    it.insert(loadTuple(6, 0, 8, 10));
    it.invalidatePreg(5);
    EXPECT_EQ(it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{}),
              InvalidItSlot);
    EXPECT_NE(it.lookup(Opcode::LDQ, 8, MapEntry{6, 0}, MapEntry{}),
              InvalidItSlot);
}

TEST(It, AccessAndInsertionCounters)
{
    IntegrationTable it(ItParams{64, 2});
    it.insert(loadTuple(5, 0, 8, 9));
    it.lookup(Opcode::LDQ, 8, MapEntry{5, 0}, MapEntry{});
    it.lookup(Opcode::LDQ, 9, MapEntry{5, 0}, MapEntry{});
    EXPECT_EQ(it.accesses(), 3u);  // 1 insert + 2 lookups
    EXPECT_EQ(it.insertions(), 1u);
    EXPECT_EQ(it.hits(), 1u);
}

TEST(It, OutputRegisterReferenceHeld)
{
    PhysRegFile prf(16);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);

    const PhysReg out = prf.alloc();
    EXPECT_EQ(prf.refCount(out), 1u);
    const ItSlot slot = it.insert(loadTuple(3, 0, 8, out));
    EXPECT_EQ(prf.refCount(out), 2u);

    // Architectural overwrite: value survives via the IT reference.
    prf.decRef(out);
    EXPECT_EQ(prf.refCount(out), 1u);

    // Invalidation releases the last reference.
    it.invalidateSlot(slot);
    EXPECT_EQ(prf.refCount(out), 0u);
    EXPECT_EQ(prf.numFree(), 16u);
}

TEST(It, EvictionReleasesReference)
{
    PhysRegFile prf(64);
    // Tiny direct-mapped table: one set, one way.
    IntegrationTable it(ItParams{1, 1});
    it.attachRegFile(&prf);

    const PhysReg a = prf.alloc();
    const PhysReg b = prf.alloc();
    it.insert(loadTuple(3, 0, 8, a));
    EXPECT_EQ(prf.refCount(a), 2u);
    it.insert(loadTuple(4, 0, 16, b));  // evicts the first tuple
    EXPECT_EQ(prf.refCount(a), 1u);
    EXPECT_EQ(prf.refCount(b), 2u);
}

TEST(It, CascadingInvalidation)
{
    // Entry X's output feeds entry Y's input; freeing X's input kills
    // X, which frees X's output, which kills Y.
    PhysRegFile prf(16);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);

    const PhysReg p_in = prf.alloc();
    const PhysReg p_mid = prf.alloc();
    const PhysReg p_out = prf.alloc();
    it.insert(loadTuple(p_in, 0, 8, p_mid));
    it.insert(loadTuple(p_mid, 0, 16, p_out));

    // Drop architectural references to mid and out; both survive on
    // table references.
    prf.decRef(p_mid);
    prf.decRef(p_out);
    EXPECT_EQ(prf.refCount(p_mid), 1u);
    EXPECT_EQ(prf.refCount(p_out), 1u);

    // Freeing p_in invalidates the first entry, freeing p_mid, which
    // invalidates the second, freeing p_out.
    prf.setOnFree([&](PhysReg p) { it.invalidatePreg(p); });
    prf.decRef(p_in);
    EXPECT_EQ(prf.refCount(p_mid), 0u);
    EXPECT_EQ(prf.refCount(p_out), 0u);
}

TEST(It, ReclaimLruFreesTableOnlyRegisters)
{
    PhysRegFile prf(8);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);

    const PhysReg held = prf.alloc();   // stays architecturally mapped
    const PhysReg loose = prf.alloc();  // will be table-only
    it.insert(loadTuple(3, 0, 8, held));
    it.insert(loadTuple(3, 0, 16, loose));
    prf.decRef(loose);  // only the IT holds it now

    const unsigned free_before = prf.numFree();
    EXPECT_TRUE(it.reclaimLru());
    EXPECT_EQ(prf.numFree(), free_before + 1);
    EXPECT_EQ(prf.refCount(loose), 0u);
    // The architecturally-held tuple was not touched.
    EXPECT_NE(it.lookup(Opcode::LDQ, 8, MapEntry{3, 0}, MapEntry{}),
              InvalidItSlot);

    // Nothing reclaimable left.
    EXPECT_FALSE(it.reclaimLru());
}

TEST(It, ReclaimFreesMultiplyPinnedRegisters)
{
    // Regression: a register pinned by SEVERAL tuples (e.g. a forward
    // and a reverse entry) has refcount > 1 with no single entry
    // "owning" it. Reclaim must recognize that the table holds all of
    // its references and release every pinning entry, or a small
    // register pool deadlocks (rename waits forever for a free
    // register).
    PhysRegFile prf(8);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);

    const PhysReg shared = prf.alloc();
    it.insert(loadTuple(3, 0, 8, shared));
    it.insert(loadTuple(3, 0, 16, shared));   // second pin
    prf.decRef(shared);  // drop the alloc ref: only the pins remain
    EXPECT_EQ(prf.refCount(shared), 2u) << "two table pins";

    const unsigned free_before = prf.numFree();
    EXPECT_TRUE(it.reclaimLru());
    EXPECT_EQ(prf.refCount(shared), 0u)
        << "both pinning entries must be released";
    EXPECT_EQ(prf.numFree(), free_before + 1);
    EXPECT_EQ(it.lookup(Opcode::LDQ, 8, MapEntry{3, 0}, MapEntry{}),
              InvalidItSlot);
    EXPECT_EQ(it.lookup(Opcode::LDQ, 16, MapEntry{3, 0}, MapEntry{}),
              InvalidItSlot);
}

TEST(It, ReclaimSkipsRegistersWithOutsideReferences)
{
    PhysRegFile prf(8);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);

    const PhysReg held = prf.alloc();  // alloc ref = architectural
    it.insert(loadTuple(3, 0, 8, held));
    it.insert(loadTuple(3, 0, 16, held));
    EXPECT_EQ(prf.refCount(held), 3u);

    // refcount (3) != table pins (2): not table-only, must not free.
    EXPECT_FALSE(it.reclaimLru());
    EXPECT_EQ(prf.refCount(held), 3u);
}

TEST(It, ResetReleasesEverything)
{
    PhysRegFile prf(8);
    IntegrationTable it(ItParams{64, 2});
    it.attachRegFile(&prf);
    const PhysReg p = prf.alloc();
    it.insert(loadTuple(3, 0, 8, p));
    prf.decRef(p);
    it.reset();
    EXPECT_EQ(prf.numFree(), 8u);
}

TEST(It, RejectsBadGeometry)
{
    EXPECT_EXIT((IntegrationTable{ItParams{3, 2}}),
                ::testing::ExitedWithCode(1), "multiple");
}
