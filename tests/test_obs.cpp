/**
 * @file
 * Tests for the observability layer: the event tracer produces valid,
 * well-nested Chrome trace-event JSON with deterministic fake-clock
 * timestamps; tracing (with counter sampling) never perturbs
 * simulated results; the metrics registry computes percentiles and
 * renders its JSON shape; the progress meter streams NDJSON
 * heartbeats; the log sink honors thresholds and redirection; and
 * phase accounting accumulates leaf spans.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "sample/interval.hpp"
#include "sweep/campaign.hpp"
#include "sweep/result_cache.hpp"
#include "workloads/workloads.hpp"

using namespace reno;
using namespace reno::obs;

namespace
{

/**
 * Minimal recursive-descent JSON validator: accepts exactly the JSON
 * grammar (objects, arrays, strings, numbers, true/false/null). The
 * emitters under test produce machine-written JSON, so "parses
 * cleanly" is the whole contract.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Read a whole FILE* that was written then rewound. */
std::string
slurp(std::FILE *f)
{
    std::rewind(f);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    return out;
}

/** RAII tracer shutdown so one test never leaks into the next. */
struct TracerGuard {
    ~TracerGuard()
    {
        Tracer::instance().stop();
        Tracer::instance().clear();
        Tracer::instance().setCycleSampleInterval(0);
    }
};

const Workload &
testWorkload()
{
    return workloadByName("adpcm.dec");
}

} // namespace

TEST(Trace, FakeClockSpansNestAndTimestampsAreExact)
{
    TracerGuard guard;
    ManualClock clock;
    Tracer::instance().clear();
    Tracer::instance().start(&clock);

    {
        TraceSpan outer("outer", "test");
        clock.advance(10);
        {
            TraceSpan inner("inner", "test",
                            TraceArgs().add("k", "v").str());
            clock.advance(5);
        }
        clock.advance(2);
    }
    Tracer::instance().instant("mark", "test");
    Tracer::instance().stop();

    const std::vector<TraceEvent> events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 5u);

    EXPECT_EQ(events[0].ph, TraceEvent::Phase::Begin);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].ts, 0u);
    EXPECT_EQ(events[1].ph, TraceEvent::Phase::Begin);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].ts, 10u);
    EXPECT_EQ(events[2].ph, TraceEvent::Phase::End);
    EXPECT_EQ(events[2].name, "inner");
    EXPECT_EQ(events[2].ts, 15u);
    EXPECT_EQ(events[3].ph, TraceEvent::Phase::End);
    EXPECT_EQ(events[3].name, "outer");
    EXPECT_EQ(events[3].ts, 17u);
    EXPECT_EQ(events[4].ph, TraceEvent::Phase::Instant);

    // One thread recorded everything: same tid throughout.
    for (const TraceEvent &e : events)
        EXPECT_EQ(e.tid, events[0].tid);
}

TEST(Trace, RealRunEmitsValidJsonWithBalancedNesting)
{
    TracerGuard guard;
    Tracer::instance().clear();
    Tracer::instance().setCycleSampleInterval(1000);
    Tracer::instance().start();

    const CoreParams params = CoreParams::fourWide();
    runWorkload(testWorkload(), params);
    Tracer::instance().stop();

    const std::string json = Tracer::instance().renderJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

    // Per-thread B/E nesting is a well-formed bracket sequence, and
    // per-thread timestamps never decrease.
    std::map<std::uint32_t, std::vector<std::string>> stacks;
    std::map<std::uint32_t, std::uint64_t> last_ts;
    std::size_t counters = 0;
    for (const TraceEvent &e : Tracer::instance().events()) {
        auto it = last_ts.find(e.tid);
        if (it != last_ts.end())
            EXPECT_GE(e.ts, it->second);
        last_ts[e.tid] = e.ts;
        switch (e.ph) {
        case TraceEvent::Phase::Begin:
            stacks[e.tid].push_back(e.name);
            break;
        case TraceEvent::Phase::End:
            ASSERT_FALSE(stacks[e.tid].empty());
            EXPECT_EQ(stacks[e.tid].back(), e.name);
            stacks[e.tid].pop_back();
            break;
        case TraceEvent::Phase::Counter:
            ++counters;
            break;
        default:
            break;
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid "
                                   << tid;
    // --trace-sample was on: the pipeline emitted counter series.
    EXPECT_GT(counters, 0u);
}

TEST(Trace, SimResultsAreByteIdenticalWithTracingOnAndOff)
{
    using sweep::Job;
    using sweep::JobResult;
    using sweep::ResultCache;

    const CoreParams params = CoreParams::fourWide();

    JobResult off;
    off.sim = runWorkload(testWorkload(), params).sim;

    JobResult on;
    {
        TracerGuard guard;
        Tracer::instance().clear();
        Tracer::instance().setCycleSampleInterval(500);
        Tracer::instance().start();
        on.sim = runWorkload(testWorkload(), params).sim;
        Tracer::instance().stop();
    }

    // The persistence encoding covers every SimResult field, so this
    // is a byte-for-byte comparison of the whole result.
    EXPECT_EQ(ResultCache::encode(off), ResultCache::encode(on));
}

TEST(Metrics, HistogramPercentilesAndJsonShape)
{
    auto &registry = MetricsRegistry::instance();
    registry.reset();

    registry.counter("test.count").inc(41);
    registry.counter("test.count").inc();
    registry.gauge("test.gauge").set(2.5);
    Histogram &h = registry.histogram("test.hist");
    for (int v = 100; v >= 1; --v)  // 1..100, reversed insert order
        h.record(static_cast<double>(v));

    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);

    const std::string json = registry.renderJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"test.count\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"test.gauge\": 2.500000"),
              std::string::npos);
    EXPECT_NE(json.find("\"p95\": 95.000000"), std::string::npos);
    EXPECT_NE(json.find("\"p99\": 99.000000"), std::string::npos);

    registry.reset();
}

TEST(Metrics, CampaignRecordsEngineCountersAndCacheGauges)
{
    auto &registry = MetricsRegistry::instance();
    registry.reset();

    const CoreParams base = CoreParams::fourWide();
    sweep::Campaign campaign;
    campaign.add(testWorkload(), {"BASE", base});
    campaign.add(testWorkload(), {"BASE", base});  // dedups to 1 slot

    sweep::CampaignOptions opts;
    opts.jobs = 1;
    campaign.run(opts);

    EXPECT_EQ(registry.counter("sweep.jobs.submitted").value(), 2u);
    EXPECT_EQ(registry.counter("sweep.jobs.unique").value(), 1u);
    EXPECT_EQ(registry.counter("sweep.jobs.simulated").value(), 1u);
    EXPECT_EQ(registry.counter("sweep.jobs.cache_hits").value(), 0u);
    EXPECT_EQ(registry.histogram("sweep.job.latency_ms").count(), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("sweep.cache.stores").value(),
                     1.0);

    registry.reset();
}

TEST(Progress, StreamsNdjsonHeartbeatsAndFinalTotals)
{
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);

    ManualClock clock;
    auto &meter = ProgressMeter::instance();
    meter.enable(sink, &clock, 0);  // interval 0: every event emits
    meter.addTotal(3);
    clock.advance(1'000'000);
    meter.jobDone(1000, false);
    clock.advance(1'000'000);
    meter.jobDone(0, true);
    clock.advance(1'000'000);
    meter.jobDone(2000, false, true);
    meter.finish();

    const std::string text = slurp(sink);
    std::fclose(sink);

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "unterminated line";
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    ASSERT_EQ(lines.size(), 4u);  // 3 events + the final heartbeat
    for (const std::string &line : lines)
        EXPECT_TRUE(JsonChecker(line).valid()) << line;

    EXPECT_NE(lines[0].find("\"done\": 1"), std::string::npos);
    EXPECT_NE(lines[0].find("\"eta_s\": 2.000"), std::string::npos);
    const std::string &last = lines.back();
    EXPECT_NE(last.find("\"done\": 3"), std::string::npos);
    EXPECT_NE(last.find("\"total\": 3"), std::string::npos);
    EXPECT_NE(last.find("\"failed\": 1"), std::string::npos);
    EXPECT_NE(last.find("\"cache_hits\": 1"), std::string::npos);
    EXPECT_NE(last.find("\"simulated_insts\": 3000"),
              std::string::npos);
    EXPECT_NE(last.find("\"minstr_per_s\": 0.001"),
              std::string::npos);
}

TEST(Progress, FirstHeartbeatEmitsNullRateNotInfOrNan)
{
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);

    // A job finishing in the same microsecond the meter was enabled
    // (elapsed time zero) must not divide into inf/nan: strict NDJSON
    // consumers reject both. The undefined rate is JSON null.
    ManualClock clock;
    auto &meter = ProgressMeter::instance();
    meter.enable(sink, &clock, 0);
    meter.addTotal(2);
    meter.jobDone(1000, false);  // no clock advance: elapsed == 0
    meter.finish();

    const std::string text = slurp(sink);
    std::fclose(sink);

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "unterminated line";
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    ASSERT_EQ(lines.size(), 2u);  // the event + the final heartbeat
    for (const std::string &line : lines) {
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
        EXPECT_EQ(line.find("inf"), std::string::npos) << line;
        EXPECT_EQ(line.find("nan"), std::string::npos) << line;
    }
    EXPECT_NE(lines[0].find("\"minstr_per_s\": null"),
              std::string::npos);

    // An empty campaign's final heartbeat has no job to pace an ETA
    // from: null again, never a division artifact.
    std::FILE *sink2 = std::tmpfile();
    ASSERT_NE(sink2, nullptr);
    meter.enable(sink2, &clock, 0);
    meter.finish();
    const std::string text2 = slurp(sink2);
    std::fclose(sink2);
    EXPECT_NE(text2.find("\"eta_s\": null"), std::string::npos);
}

TEST(Log, ThresholdFiltersAndSinkRedirects)
{
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    std::FILE *prev_sink = setLogSink(sink);
    const LogLevel prev_level = setLogThreshold(LogLevel::Info);

    inform("visible info %d", 1);
    warn("visible warning");
    setLogThreshold(LogLevel::Warn);
    inform("suppressed info");
    warn("still visible");
    setLogThreshold(LogLevel::Silent);
    inform("suppressed");
    warn("suppressed");

    setLogThreshold(prev_level);
    setLogSink(prev_sink);

    const std::string text = slurp(sink);
    std::fclose(sink);
    EXPECT_EQ(text,
              "info: visible info 1\n"
              "warn: visible warning\n"
              "warn: still visible\n");
}

TEST(Cache, CountsHitsMissesAndStores)
{
    using sweep::JobResult;
    sweep::ResultCache cache;

    JobResult result;
    result.sim.cycles = 7;
    JobResult out;

    EXPECT_FALSE(cache.lookup(1, &out));
    cache.store(1, result);
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_FALSE(cache.lookup(2, &out));

    EXPECT_EQ(cache.memoryHits(), 2u);
    EXPECT_EQ(cache.diskHits(), 0u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.stores(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
}

TEST(Phase, SpansAccumulateMicrosInstsAndCounts)
{
    auto &stats = PhaseStats::instance();
    ManualClock clock;
    stats.reset();
    stats.enable(&clock);

    {
        PhaseSpan span("unit.a");
        clock.advance(250);
        span.setInsts(500);
    }
    {
        PhaseSpan span("unit.a");
        clock.advance(750);
        span.setInsts(1500);
    }
    {
        PhaseSpan span("unit.b");
        clock.advance(10);
    }
    stats.disable();

    const auto snapshot = stats.snapshot();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(snapshot[0].first, "unit.a");
    EXPECT_EQ(snapshot[0].second.micros, 1000u);
    EXPECT_EQ(snapshot[0].second.insts, 2000u);
    EXPECT_EQ(snapshot[0].second.count, 2u);
    // 2000 insts / 1000 us = 2M insts/sec.
    EXPECT_DOUBLE_EQ(snapshot[0].second.instsPerSec(), 2'000'000.0);
    EXPECT_EQ(snapshot[1].first, "unit.b");
    EXPECT_EQ(snapshot[1].second.insts, 0u);
    stats.reset();
}

TEST(Phase, SampledIntervalAccountsDisjointLeafPhases)
{
    auto &stats = PhaseStats::instance();
    stats.reset();
    stats.enable();

    sample::IntervalWindow window;
    window.startInst = 2000;
    window.warmupInsts = 500;
    window.measureInsts = 1000;
    const SimResult r = sample::runIntervalDetailed(
        testWorkload(), CoreParams::fourWide(), window, nullptr);
    stats.disable();
    EXPECT_GT(r.retired, 0u);

    std::map<std::string, PhaseTotals> phases;
    for (const auto &[name, totals] : stats.snapshot())
        phases[name] = totals;
    stats.reset();

    // No checkpoint: fast-forward warms [0, startInst), then the
    // detailed warmup and measured window run on the core.
    ASSERT_TRUE(phases.count("sample.fastforward"));
    EXPECT_EQ(phases["sample.fastforward"].insts, window.startInst);
    ASSERT_TRUE(phases.count("sample.warmup"));
    EXPECT_GE(phases["sample.warmup"].insts, window.warmupInsts);
    ASSERT_TRUE(phases.count("sample.detailed"));
    EXPECT_GE(phases["sample.detailed"].insts, window.measureInsts);
    EXPECT_FALSE(phases.count("sample.restore"));
}
