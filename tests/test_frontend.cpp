/**
 * @file
 * Front-end timing tests: taken-branch fetch throughput, branch
 * misprediction penalties and their scaling with pipeline depth,
 * stall-until-resolve behavior behind slow branch conditions, and
 * instruction-cache pressure from large code footprints.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

struct CoreRun {
    SimResult sim;
};

CoreRun
runOnCore(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator emu(prog);
    Core core(params, emu);
    CoreRun out;
    out.sim = core.run();
    EXPECT_TRUE(core.finished());
    return out;
}

/** A loop of @p body_adds independent adds (one taken branch each
 *  iteration), running @p iters iterations. */
std::string
addLoop(int body_adds, int iters)
{
    std::string body;
    for (int i = 0; i < body_adds; ++i)
        body += "  add t" + std::to_string(i % 6) + ", s0, s1\n";
    return "  li s0, 1\n  li s1, 2\n  li s2, " + std::to_string(iters) +
           "\nloop:\n" + body +
           "  subi s2, s2, 1\n  bne s2, loop\n"
           "  li v0, 0\n  li a0, 0\n  syscall\n";
}

/** A loop whose branch direction follows the rand syscall: roughly
 *  half the conditional branches mispredict. */
const char *const random_branch_loop = R"(
        li   s2, 2000
loop:
        li   v0, 5
        syscall
        andi t0, v0, 1
        beq  t0, skip
        add  t1, t0, t0
skip:
        subi s2, s2, 1
        bne  s2, loop
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace

TEST(Frontend, FetchSustainsOneTakenBranchPerCycle)
{
    // The fetch engine can fetch past one taken branch per cycle
    // (paper section 4.1), so even a 3-instruction loop body keeps
    // the 3-wide integer issue as the binding limit, not fetch.
    const CoreRun tiny = runOnCore(addLoop(1, 2000), CoreParams{});
    EXPECT_GT(tiny.sim.ipc(), 2.5)
        << "a tight loop should run near the integer issue width";
    EXPECT_LE(tiny.sim.ipc(), 3.1)
        << "three instructions per iteration, three integer slots";
}

TEST(Frontend, RandomBranchesMispredictAboutHalfTheTime)
{
    const CoreRun r = runOnCore(random_branch_loop, CoreParams{});
    // 2000 data-random conditional branches plus 2000+1 predictable
    // loop branches: mispredict rate on the random ones ~50%.
    EXPECT_GT(r.sim.bpMispredicts, 600u);
    EXPECT_LT(r.sim.bpMispredicts, 1500u);
}

TEST(Frontend, MispredictsCostFullPipelineRedirects)
{
    // Same instruction counts, one version branch-random and one
    // branchless: the cycle difference divided by mispredicts should
    // be on the order of the machine's redirect depth.
    const char *const branchless_loop = R"(
        li   s2, 2000
loop:
        li   v0, 5
        syscall
        andi t0, v0, 1
        sub  t0, zero, t0
        and  t1, t0, t0
        subi s2, s2, 1
        bne  s2, loop
        li   v0, 0
        li   a0, 0
        syscall
)";
    const CoreRun random = runOnCore(random_branch_loop, CoreParams{});
    const CoreRun clean = runOnCore(branchless_loop, CoreParams{});
    ASSERT_GT(random.sim.bpMispredicts, 500u);
    const double penalty =
        double(random.sim.cycles - clean.sim.cycles) /
        double(random.sim.bpMispredicts);
    EXPECT_GT(penalty, 5.0);
    EXPECT_LT(penalty, 25.0)
        << "per-mispredict cost should be near the pipeline depth";
}

TEST(Frontend, DeeperFrontEndAmplifiesMispredictCost)
{
    CoreParams shallow;
    CoreParams deep;
    deep.frontDepth = 10;  // vs default 4
    const CoreRun s = runOnCore(random_branch_loop, shallow);
    const CoreRun d = runOnCore(random_branch_loop, deep);
    EXPECT_GT(d.sim.cycles, s.sim.cycles)
        << "a deeper front end pays more per misprediction";
}

TEST(Frontend, SlowBranchConditionStallsFetchUntilResolve)
{
    // The mispredicting branch depends on a divide: fetch cannot
    // resume until the divide finishes, so cycles scale with the
    // divide latency even though the divide is off any other path.
    const char *const slow_cond = R"(
        li   s2, 400
        li   s3, 3
loop:
        li   v0, 5
        syscall
        andi t0, v0, 7
        addi t0, t0, 1
        div  t1, t0, s3
        andi t1, t1, 1
        beq  t1, skip
        add  t2, t1, t1
skip:
        subi s2, s2, 1
        bne  s2, loop
        li   v0, 0
        li   a0, 0
        syscall
)";
    const CoreRun r = runOnCore(slow_cond, CoreParams{});
    ASSERT_GT(r.sim.bpMispredicts, 50u);
    // Each mispredicted beq waits for the divide (multi-cycle) before
    // redirect: the loop cannot sustain anything close to 1 iteration
    // per pipeline-depth cycles.
    const double cycles_per_iter = double(r.sim.cycles) / 400.0;
    EXPECT_GT(cycles_per_iter, 10.0);
}

TEST(Frontend, LargeCodeFootprintMissesInstructionCache)
{
    // ~3000 straight-line instructions = ~12KB of code re-entered
    // repeatedly fits the 16KB I$; ~24KB does not.
    const CoreRun small = runOnCore(addLoop(1000, 40), CoreParams{});
    const CoreRun big = runOnCore(addLoop(6000, 40), CoreParams{});
    const double small_mr =
        double(small.sim.icacheMisses) / double(small.sim.retired);
    const double big_mr =
        double(big.sim.icacheMisses) / double(big.sim.retired);
    EXPECT_GT(big_mr, small_mr * 3)
        << "code bigger than the I$ must keep missing";
}

TEST(Frontend, RenoDoesNotChangeFetchBehavior)
{
    // RENO eliminates instructions after rename; fetch and branch
    // prediction statistics must be identical with and without it.
    CoreParams base;
    CoreParams reno;
    reno.reno = RenoConfig::full();
    const CoreRun b = runOnCore(addLoop(6, 500), base);
    const CoreRun r = runOnCore(addLoop(6, 500), reno);
    EXPECT_EQ(b.sim.bpLookups, r.sim.bpLookups);
    EXPECT_EQ(b.sim.bpMispredicts, r.sim.bpMispredicts);
    EXPECT_EQ(b.sim.retired, r.sim.retired);
}
