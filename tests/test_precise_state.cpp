/**
 * @file
 * Precise-state tests for RENO_CF (paper section 3.5).
 *
 * Constant folding defers the final piece of an operation to a future
 * consumer, so registers can be architecturally "mapped to non-zero
 * immediates" when a syscall, store, branch, or squash observes them.
 * The paper's two keys to preserving precise state are (a) handler /
 * observer instructions also run through the RENO pipeline and thus
 * interpret [p:d] mappings correctly, and (b) a 2-input adder on the
 * store data path collapses the displacement before the value reaches
 * memory. These tests pin down both, at the renamer level (where the
 * displacement must travel with the operand) and at the core level
 * (where all observable behavior must match the functional emulator).
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "reno/renamer.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

std::unique_ptr<RenoRenamer>
makeRenamer(RenoConfig config, unsigned pregs = 64)
{
    auto ren = std::make_unique<RenoRenamer>(config, pregs);
    std::uint64_t vals[NumLogRegs] = {};
    for (unsigned r = 0; r < NumLogRegs; ++r)
        vals[r] = 100 * r;
    ren->initialize(vals);
    return ren;
}

RenameOut
renameOne(RenoRenamer &ren, const Instruction &inst, std::uint64_t result)
{
    ren.beginGroup();
    return ren.rename(RenameIn{inst, result});
}

/** Run @p src both on the emulator and on the core; expect identical
 *  observable behavior (printed output and memory digest). */
void
expectPreciseState(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);

    Emulator ref(prog);
    ref.run();

    Emulator emu(prog);
    Core core(params, emu);
    core.run();

    EXPECT_EQ(emu.output(), ref.output());
    EXPECT_EQ(emu.memory().digest(), ref.memory().digest());
    for (unsigned r = 0; r < NumLogRegs; ++r)
        EXPECT_EQ(emu.state().reg(r), ref.state().reg(r)) << "r" << r;
}

CoreParams
fullRenoParams()
{
    CoreParams p = CoreParams::fourWide();
    p.reno = RenoConfig::full();
    return p;
}

} // namespace

// ---- displacement travels with the operand ----------------------------

TEST(PreciseState, StoreDataCarriesDisplacement)
{
    // The store-data path has a 2-input adder precisely because a
    // folded register can be stored; the renamer must hand the store
    // the data register's displacement.
    auto ren = makeRenamer(RenoConfig::meCf());
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 5, 5, 7), 507);

    const RenameOut st = renameOne(
        *ren, Instruction::mem(Opcode::STQ, 5, 1, 0), 0);
    ASSERT_EQ(st.numSrcs, 2u);
    // src[1] is the data register for stores.
    EXPECT_EQ(st.src[1].disp, 7);
}

TEST(PreciseState, BranchSourceCarriesDisplacement)
{
    // Branch direction compare gets a 2-input adder (section 3.3); the
    // renamer must supply the folded displacement to it.
    auto ren = makeRenamer(RenoConfig::meCf());
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 4, 4, -3), 397);

    const RenameOut br = renameOne(
        *ren, Instruction::branch(Opcode::BNE, 4, -2), 0);
    ASSERT_GE(br.numSrcs, 1u);
    EXPECT_EQ(br.src[0].disp, -3);
}

TEST(PreciseState, LoadBaseCarriesDisplacement)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 2, 24), 224);

    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 6, 2, 8), 0);
    EXPECT_EQ(ld.src[0].disp, 24);
}

TEST(PreciseState, MoveOfFoldedRegisterPropagatesDisplacement)
{
    // mov rd, rs where rs -> [p:d] must yield rd -> [p:d]: the move is
    // eliminated and the displacement is preserved, not cleared.
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg p3 = ren->mapTable().get(3).preg;
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 3, 3, 9), 309);

    const RenameOut mv = renameOne(*ren, Instruction::move(6, 3), 309);
    EXPECT_TRUE(mv.eliminated());
    EXPECT_EQ(ren->mapTable().get(6).preg, p3);
    EXPECT_EQ(ren->mapTable().get(6).disp, 9);
}

TEST(PreciseState, RollbackRestoresDisplacement)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 2, 5), 205);
    ASSERT_EQ(ren->mapTable().get(2).disp, 5);

    // A second fold on top, then roll it back: the first fold's
    // displacement must be restored exactly.
    const Instruction second = Instruction::ri(Opcode::ADDI, 2, 2, 6);
    const RenameOut out = renameOne(*ren, second, 211);
    ASSERT_EQ(ren->mapTable().get(2).disp, 11);

    ren->rollback(second, out);
    EXPECT_EQ(ren->mapTable().get(2).disp, 5);
}

// ---- end-to-end observable behavior ------------------------------------

TEST(PreciseState, SyscallObservesFoldedValue)
{
    // The printed value is produced by a chain of folds that is never
    // materialized by an ALU; the syscall must still see the collapsed
    // architectural value.
    const char *const src =
        "  li   s0, 1000\n"
        "  addi s0, s0, 7\n"
        "  addi s0, s0, -2\n"
        "  mov  a0, s0\n"
        "  li   v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    expectPreciseState(src, fullRenoParams());
}

TEST(PreciseState, StoreAfterFoldChainWritesCollapsedValue)
{
    const char *const src =
        "        .data\n"
        "buf:    .space 64\n"
        "        .text\n"
        "  la   s0, buf\n"
        "  li   t0, 40\n"
        "  addi t0, t0, 1\n"
        "  addi t0, t0, 1\n"
        "  stq  t0, 0(s0)\n"
        "  ldq  a0, 0(s0)\n"
        "  li   v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    expectPreciseState(src, fullRenoParams());
}

TEST(PreciseState, BranchDecidesOnFoldedValue)
{
    // Loop control via folded decrements: every iteration's branch
    // compares a register whose mapping carries a displacement.
    const char *const src =
        "  li   s1, 50\n"
        "  li   s2, 0\n"
        "loop:\n"
        "  add  s2, s2, s1\n"
        "  addi s1, s1, -1\n"
        "  bne  s1, loop\n"
        "  mov  a0, s2\n"
        "  li   v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    expectPreciseState(src, fullRenoParams());
}

TEST(PreciseState, MispredictSquashWithOutstandingFolds)
{
    // Data-dependent branches on folded values force recoveries while
    // non-zero displacements are outstanding in the map table.
    const char *const src =
        "  li   s0, 0\n"
        "  li   s1, 200\n"
        "  li   s3, 2654435761\n"
        "loop:\n"
        "  mul  s3, s3, s3\n"
        "  addi s3, s3, 12345\n"
        "  andi t0, s3, 1\n"
        "  beq  t0, skip\n"
        "  addi s0, s0, 3\n"
        "skip:\n"
        "  addi s0, s0, 1\n"
        "  subi s1, s1, 1\n"
        "  bne  s1, loop\n"
        "  mov  a0, s0\n"
        "  li   v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    expectPreciseState(src, fullRenoParams());
}

TEST(PreciseState, CalleeObservesFoldedArguments)
{
    // An argument register folded in the caller crosses a call
    // boundary; the callee (an "exception handler" in miniature, per
    // the paper's argument) renames on the same pipeline and sees the
    // right value.
    const char *const src =
        "f:\n"
        "  addi v0, a0, 100\n"
        "  ret\n"
        "_start:\n"
        "  li   a0, 5\n"
        "  addi a0, a0, 2\n"
        "  subi sp, sp, 16\n"
        "  stq  ra, 0(sp)\n"
        "  call f\n"
        "  ldq  ra, 0(sp)\n"
        "  addi sp, sp, 16\n"
        "  mov  a0, v0\n"
        "  li   v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    expectPreciseState(src, fullRenoParams());
}

// ---- displacement overflow boundaries ----------------------------------

namespace
{

/** Program folding a chain that sums to @p total via steps of @p step. */
std::string
foldChainProgram(int step, int count)
{
    std::string src = "  li s0, 1\n";
    for (int i = 0; i < count; ++i)
        src += "  addi s0, s0, " + std::to_string(step) + "\n";
    src +=
        "  mov a0, s0\n"
        "  li  v0, 1\n"
        "  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    return src;
}

} // namespace

class OverflowBoundary
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
};

INSTANTIATE_TEST_SUITE_P(
    PreciseState, OverflowBoundary,
    ::testing::Combine(
        // Step sizes that approach the 16-bit displacement limit at
        // different rates (positive and negative).
        ::testing::Values(1, 1000, 8191, 32767, -1, -8192, -32768),
        // Chain lengths: short chains stay in range, long ones overflow.
        ::testing::Values(3, 9, 40),
        // Conservative vs exact overflow check (ablation knob).
        ::testing::Bool()));

TEST_P(OverflowBoundary, FoldChainsNeverCorruptState)
{
    const auto [step, count, exact] = GetParam();
    CoreParams p = fullRenoParams();
    p.reno.exactOverflowCheck = exact;
    expectPreciseState(foldChainProgram(step, count), p);
}

TEST(PreciseState, ConservativeCheckCancelsNearLimit)
{
    // Accumulating +16000 three times would pass 32767 and wrap the
    // int16 displacement; the conservative check folds twice (the
    // displacement stays provably small) and cancels the third.
    auto ren = makeRenamer(RenoConfig::meCf());
    const RenameOut first = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 2, 16000),
        200 + 16000);
    EXPECT_EQ(first.elim, ElimKind::Fold);

    const RenameOut second = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 2, 16000),
        200 + 2 * 16000);
    EXPECT_EQ(second.elim, ElimKind::Fold);
    EXPECT_EQ(second.destDisp, 32000);

    const RenameOut third = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 2, 16000),
        200 + 3 * 16000);
    EXPECT_FALSE(third.eliminated())
        << "displacement 32000 is no longer provably extendable";
    EXPECT_GE(ren->overflowCancels(), 1u);
}

TEST(PreciseState, NonOverflowingNegativeChainKeepsFolding)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    for (int i = 0; i < 8; ++i) {
        const RenameOut out = renameOne(
            *ren, Instruction::ri(Opcode::ADDI, 2, 2, -16),
            200 - 16 * (i + 1));
        EXPECT_EQ(out.elim, ElimKind::Fold) << "iteration " << i;
    }
    EXPECT_EQ(ren->mapTable().get(2).disp, -128);
}
