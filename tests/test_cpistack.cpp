/**
 * @file
 * CPI-stack and hotspot-profiler tests. The load-bearing property is
 * the accounting identity: every commit-stage cycle lands in exactly
 * one bucket, so a stack sums to the core's cycle count by
 * construction -- checked here on every workload of the synth, mem,
 * branch and multi suites (single- and multi-core, detailed and
 * sampled). Profiling is also proven inert: SimResult is field-wise
 * identical with accounting on or off, so job digests, caching and
 * goldens never depend on observability state.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/cpireport.hpp"
#include "obs/cpistack.hpp"
#include "obs/profiler.hpp"
#include "sample/interval.hpp"
#include "sample/sampler.hpp"
#include "workloads/workloads.hpp"

using namespace reno;
using namespace reno::obs;

namespace
{

/** RAII accounting activation; never leaks into the next test. */
struct CpiGuard {
    explicit CpiGuard(bool stack, unsigned hot_top_n = 0)
    {
        CpiAccounting::instance().setStackEnabled(stack);
        CpiAccounting::instance().setHotspotTopN(hot_top_n);
    }
    ~CpiGuard()
    {
        CpiAccounting::instance().setStackEnabled(false);
        CpiAccounting::instance().setHotspotTopN(0);
    }
};

NamedConfig
renoConfig(const char *name = "RENO")
{
    NamedConfig cfg;
    EXPECT_TRUE(configByName(name, CoreParams::fourWide(), &cfg));
    return cfg;
}

} // namespace

TEST(CpiStack, BucketArithmeticAndNames)
{
    CpiStack a;
    EXPECT_EQ(a.total(), 0u);
    a.inc(CpiBucket::Base);
    a.inc(CpiBucket::Base);
    a.inc(CpiBucket::BackDcacheMem);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.get(CpiBucket::Base), 2u);

    CpiStack b = a;
    b.inc(CpiBucket::FrontIcache);
    const CpiStack d = b.delta(a);
    EXPECT_EQ(d.total(), 1u);
    EXPECT_EQ(d.get(CpiBucket::FrontIcache), 1u);

    CpiStack sum;
    sum.accumulate(a);
    sum.accumulate(d);
    EXPECT_EQ(sum.total(), b.total());

    // Names are the JSON/report contract: present and distinct.
    std::vector<std::string> names;
    for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
        const char *n = cpiBucketName(static_cast<CpiBucket>(i));
        ASSERT_NE(n, nullptr);
        for (const std::string &prev : names)
            EXPECT_NE(prev, n);
        names.push_back(n);
    }
}

TEST(HotspotProfile, CountsRanksAndDropsDeterministically)
{
    HotspotProfile prof(64);
    for (int i = 0; i < 10; ++i)
        prof.retire(0x1000);
    for (int i = 0; i < 4; ++i)
        prof.retire(0x2000);
    prof.retire(0x3000);
    prof.stall(0x2000);
    prof.stall(0x2000);
    prof.stall(0x3000);

    const auto by_ret = prof.topByRetired(2);
    ASSERT_EQ(by_ret.size(), 2u);
    EXPECT_EQ(by_ret[0].pc, 0x1000u);
    EXPECT_EQ(by_ret[0].retired, 10u);
    EXPECT_EQ(by_ret[1].pc, 0x2000u);

    const auto by_stall = prof.topByStall(8);
    ASSERT_EQ(by_stall.size(), 2u);  // zero-stall PCs are filtered
    EXPECT_EQ(by_stall[0].pc, 0x2000u);
    EXPECT_EQ(by_stall[0].stallCycles, 2u);
    EXPECT_EQ(prof.dropped(), 0u);

    // A saturated table drops excess PCs instead of growing or
    // evicting: the counts it does report stay exact.
    HotspotProfile tiny(64);  // 64 slots is the construction floor
    for (std::uint64_t pc = 0; pc < 4096; ++pc)
        tiny.retire(0x4000 + 4 * pc);
    EXPECT_GT(tiny.dropped(), 0u);
    EXPECT_LE(tiny.occupied(), 64u);
    for (const auto &e : tiny.topByRetired(64))
        EXPECT_EQ(e.retired, 1u);
}

TEST(CpiStack, SumsExactlyToCyclesOnEverySuiteWorkload)
{
    const CpiGuard guard(true, 10);
    const NamedConfig cfg = renoConfig();

    // Single-core detailed: machine stack == cycles, exactly.
    for (const char *suite : {"synth", "mem", "branch"}) {
        for (const Workload *w : suiteWorkloads(suite)) {
            const RunOutput out = runWorkload(*w, cfg.params);
            ASSERT_TRUE(out.cpi.valid) << w->name;
            EXPECT_EQ(out.cpi.machine.total(), out.sim.cycles)
                << w->name;
            ASSERT_EQ(out.cpi.perCore.size(), 1u) << w->name;
            EXPECT_EQ(out.cpi.perCore[0].total(), out.sim.cycles)
                << w->name;
            // Retired instructions all passed through the profiler.
            std::uint64_t profiled = 0;
            for (const auto &e :
                 out.cpi.hotRetired)
                profiled += e.retired;
            EXPECT_GT(profiled, 0u) << w->name;
        }
    }

    // Multi-core detailed: each core's stack sums to that core's own
    // cycle count (cores freeze independently), and the machine stack
    // is their exact sum.
    const NamedConfig cfg2 = renoConfig("RENO/2c");
    for (const Workload *w : suiteWorkloads("multi")) {
        const RunOutput out = runWorkload(*w, cfg2.params);
        ASSERT_TRUE(out.cpi.valid) << w->name;
        ASSERT_EQ(out.cpi.perCore.size(), 2u) << w->name;
        std::uint64_t sum = 0;
        for (unsigned c = 0; c < 2; ++c) {
            EXPECT_EQ(out.cpi.perCore[c].total(),
                      out.sim.coreCycles[c])
                << w->name << " core " << c;
            sum += out.cpi.perCore[c].total();
        }
        EXPECT_EQ(out.cpi.machine.total(), sum) << w->name;
    }
}

TEST(CpiStack, SimResultIsByteIdenticalWithProfilingOnAndOff)
{
    const Workload &w = workloadByName("synth.mix");
    const NamedConfig cfg = renoConfig();

    const SimResult off = runWorkload(w, cfg.params).sim;
    SimResult on;
    {
        const CpiGuard guard(true, 20);
        const RunOutput out = runWorkload(w, cfg.params);
        EXPECT_TRUE(out.cpi.valid);
        on = out.sim;
    }
    const SimResult off_again = runWorkload(w, cfg.params).sim;

    // Every canonical counter, not a hand-picked subset: accounting
    // must never perturb simulation (digests and goldens depend on
    // this).
    for (const SimStatField &field : simResultFields()) {
        EXPECT_EQ(statValue(on, field), statValue(off, field))
            << field.name;
        EXPECT_EQ(statValue(off_again, field), statValue(off, field))
            << field.name;
    }
}

TEST(CpiStack, SampledWindowStackMatchesWindowCycles)
{
    const CpiGuard guard(true);
    const Workload &w = workloadByName("synth.plain");
    const NamedConfig cfg = renoConfig();

    sample::IntervalWindow win;
    win.startInst = 50'000;
    win.warmupInsts = 500;
    win.measureInsts = 5000;
    CpiStack stack;
    const SimResult delta = sample::runIntervalDetailed(
        w, cfg.params, win, nullptr, &stack);
    EXPECT_EQ(stack.total(), delta.cycles);

    // Multi-core window: the stack delta sums the per-core cycle
    // deltas, matching SimResult's per-core counters exactly.
    const NamedConfig cfg2 = renoConfig("RENO/2c");
    const Workload &mw = workloadByName("multi.false");
    CpiStack stack2;
    const SimResult delta2 = sample::runIntervalDetailed(
        mw, cfg2.params, win, nullptr, &stack2);
    EXPECT_EQ(stack2.total(),
              delta2.coreCycles[0] + delta2.coreCycles[1]);
    EXPECT_GT(stack2.total(), 0u);
}

TEST(CpiStack, SampledExtrapolationTracksFullDetailWithinGate)
{
    const NamedConfig cfg = renoConfig();
    std::vector<const Workload *> workloads =
        suiteWorkloads("synth");

    // Full-detail truth with accounting off: the baseline the sampled
    // stack must track (same 5% gate as the IPC estimate -- the stack
    // total IS the cycle estimate under the same estimator).
    std::vector<std::uint64_t> full_cycles;
    for (const Workload *w : workloads)
        full_cycles.push_back(runWorkload(*w, cfg.params).sim.cycles);

    const CpiGuard guard(true);
    sample::SampleOptions options;
    options.campaign.jobs = 1;
    const sample::SampledCampaign sampled =
        sample::runSampledCampaign(workloads, {cfg}, options);
    ASSERT_EQ(sampled.runs.size(), workloads.size());

    for (std::size_t i = 0; i < sampled.runs.size(); ++i) {
        const sample::SampledEstimate &est = sampled.runs[i].est;
        ASSERT_TRUE(est.hasCpi) << workloads[i]->name;
        double stack_sum = 0.0;
        for (const double b : est.cpiEst)
            stack_sum += b;
        // The extrapolated stack and estCycles use the identical
        // stratified estimator; they differ only by llround.
        EXPECT_NEAR(stack_sum,
                    static_cast<double>(est.estCycles),
                    1.0)
            << workloads[i]->name;
        const double err =
            std::fabs(stack_sum -
                      static_cast<double>(full_cycles[i])) /
            static_cast<double>(full_cycles[i]) * 100.0;
        EXPECT_LE(err, 5.0) << workloads[i]->name;
    }
}
