/**
 * @file
 * Sampled-simulation subsystem tests: interval planning (stratified,
 * cold-exact first stratum), window measurement equal to the full
 * simulation over the same region, checkpoint acceleration that never
 * changes results, encode/decode and disk round-trips of combined
 * functional+warm checkpoints, campaign integration (parallel ==
 * serial, warm cache = zero simulations), and end-to-end estimate
 * accuracy against full detailed simulation.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/experiment.hpp"
#include "sample/checkpoint.hpp"
#include "sample/interval.hpp"
#include "sample/sampler.hpp"
#include "sample/warmup.hpp"
#include "sweep/campaign.hpp"
#include "sweep/result_cache.hpp"

using namespace reno;
using namespace reno::sample;

namespace
{

CoreParams
baseParams()
{
    CoreParams p = CoreParams::fourWide();
    p.reno = RenoConfig::baseline();
    return p;
}

std::vector<const Workload *>
oneWorkload(const char *name)
{
    return {&workloadByName(name)};
}

bool
sameSim(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.retired == b.retired &&
           a.bpMispredicts == b.bpMispredicts &&
           a.dcacheMisses == b.dcacheMisses &&
           a.l2Misses == b.l2Misses &&
           a.violationSquashes == b.violationSquashes &&
           a.eliminatedTotal() == b.eliminatedTotal();
}

} // namespace

// ---- planning -------------------------------------------------------

TEST(Plan, StratifiedShape)
{
    SamplePlan plan;
    plan.intervals = 10;
    plan.warmupInsts = 500;
    plan.measureInsts = 5000;

    const auto planned = planIntervals(1'000'000, plan);
    ASSERT_EQ(planned.size(), 10u);

    // First stratum: exact, cold, from instruction 0.
    EXPECT_TRUE(planned[0].exact);
    EXPECT_EQ(planned[0].window.startInst, 0u);
    EXPECT_EQ(planned[0].window.warmupInsts, 0u);
    EXPECT_EQ(planned[0].window.measureInsts, 100'000u);
    EXPECT_EQ(planned[0].repInsts, 100'000u);

    // Sampled strata: ascending, within bounds, representation
    // covering the remainder exactly.
    std::uint64_t rep = planned[0].repInsts;
    for (std::size_t i = 1; i < planned.size(); ++i) {
        EXPECT_FALSE(planned[i].exact);
        EXPECT_GT(planned[i].window.startInst,
                  planned[i - 1].window.startInst);
        EXPECT_LT(planned[i].window.startInst, 1'000'000u);
        EXPECT_EQ(planned[i].window.measureInsts, 5000u);
        EXPECT_EQ(planned[i].window.warmupInsts, 500u);
        rep += planned[i].repInsts;
    }
    EXPECT_EQ(rep, 1'000'000u);
}

TEST(Plan, TinyProgramDegeneratesToExactFullRun)
{
    SamplePlan plan;  // default 10 x (2000 + 5000) against 120k insts
    const auto planned = planIntervals(120'000, plan);
    ASSERT_EQ(planned.size(), 1u);
    EXPECT_TRUE(planned[0].exact);
    EXPECT_EQ(planned[0].window.measureInsts, 120'000u);
    EXPECT_EQ(planned[0].repInsts, 120'000u);
}

TEST(Plan, MeasuredRegionIndependentOfWarmup)
{
    SamplePlan a, b;
    a.measureInsts = b.measureInsts = 4000;
    a.warmupInsts = 500;
    b.warmupInsts = 4000;
    const auto pa = planIntervals(2'000'000, a);
    const auto pb = planIntervals(2'000'000, b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 1; i < pa.size(); ++i) {
        // Measured window begins at startInst + warmup: anchored.
        EXPECT_EQ(pa[i].window.startInst + pa[i].window.warmupInsts,
                  pb[i].window.startInst + pb[i].window.warmupInsts);
    }
}

TEST(Plan, DeltaAndAccumulateAreInverse)
{
    SimResult a;
    a.cycles = 100;
    a.retired = 70;
    a.dcacheMisses = 5;
    a.elim[1] = 3;
    SimResult b = a;
    b.cycles = 250;
    b.retired = 200;
    b.dcacheMisses = 9;
    b.elim[1] = 11;

    const SimResult d = deltaResult(b, a);
    EXPECT_EQ(d.cycles, 150u);
    EXPECT_EQ(d.retired, 130u);
    EXPECT_EQ(d.dcacheMisses, 4u);
    EXPECT_EQ(d.elim[1], 8u);

    SimResult sum = a;
    accumulateResult(sum, d);
    EXPECT_TRUE(sameSim(sum, b));
}

// ---- interval measurement vs. full simulation -----------------------

TEST(Interval, WindowEqualsFullSimulationOverSameRegion)
{
    // The strongest correctness property of the interval engine: a
    // fully warmed window must reproduce the full simulation's
    // behavior over the same retired-instruction range exactly.
    const Workload &w = workloadByName("gzip");
    const CoreParams params = baseParams();

    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;
    Emulator emu(prog, opts);
    Core core(params, emu);
    core.runUntilRetired(300'000);
    const SimResult pre = core.result();
    core.runUntilRetired(305'000);
    const SimResult full_delta = deltaResult(core.result(), pre);
    const std::uint64_t start = pre.retired;

    IntervalWindow win;
    win.startInst = start - 1000;
    win.warmupInsts = 1000;
    win.measureInsts = full_delta.retired;
    const SimResult sampled = runIntervalDetailed(w, params, win);
    EXPECT_TRUE(sameSim(sampled, full_delta))
        << "sampled " << sampled.cycles << " cycles vs full "
        << full_delta.cycles;
}

TEST(Interval, CheckpointAcceleratesWithoutChangingResults)
{
    const Workload &w = workloadByName("adpcm.dec");
    const CoreParams params = baseParams();
    IntervalWindow win;
    win.startInst = 200'000;
    win.warmupInsts = 500;
    win.measureInsts = 4000;

    // Reference: no checkpoint (warm from the program start).
    const SimResult plain = runIntervalDetailed(w, params, win);

    // Checkpoint exactly at the window start.
    CheckpointStore store;
    {
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, win.startInst);
        store.store(w, win.startInst, emu.checkpoint(), warm);
    }
    const SampleCheckpoint at_start =
        store.lookup(w, win.startInst, params.mem, params.bpred);
    ASSERT_TRUE(at_start.usable());
    EXPECT_TRUE(
        sameSim(runIntervalDetailed(w, params, win, &at_start),
                plain));

    // Checkpoint BEFORE the window start (warm-steps the gap).
    CheckpointStore store2;
    {
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, 120'000);
        store2.store(w, 120'000, emu.checkpoint(), warm);
    }
    const SampleCheckpoint before =
        store2.lookup(w, 120'000, params.mem, params.bpred);
    ASSERT_TRUE(before.usable());
    EXPECT_TRUE(sameSim(runIntervalDetailed(w, params, win, &before),
                        plain));

    // Mismatched warm-state parameters: checkpoint ignored, results
    // still identical (recomputed from scratch).
    CoreParams other = params;
    other.mem.dcache.sizeBytes *= 2;
    const SimResult recomputed =
        runIntervalDetailed(w, other, win, &at_start);
    EXPECT_TRUE(sameSim(recomputed,
                        runIntervalDetailed(w, other, win)));
}

// ---- checkpoint store -----------------------------------------------

TEST(Checkpointing, EncodeDecodeRoundTrip)
{
    const Workload &w = workloadByName("epic");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;
    Emulator emu(prog, opts);
    WarmState warm(params.mem, params.bpred);
    warmStep(emu, warm, 50'000);

    CheckpointStore store;
    const SampleCheckpoint ckpt =
        store.store(w, 50'000, emu.checkpoint(), warm);

    const std::string text = CheckpointStore::encode(ckpt);
    SampleCheckpoint decoded;
    ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                        params.bpred, &decoded));
    EXPECT_EQ(checkpointDigest(*decoded.emu),
              checkpointDigest(*ckpt.emu));
    EXPECT_EQ(CheckpointStore::encode(decoded), text)
        << "decode followed by encode must be the identity";

    // Corruption is detected.
    std::string bad = text;
    bad[text.find("regs") + 6] ^= 1;
    EXPECT_FALSE(CheckpointStore::decode(bad, params.mem,
                                         params.bpred, &decoded));

    // Wrong warm-state parameters are rejected.
    CoreParams other = params;
    other.bpred.dir.historyBits = 9;
    EXPECT_FALSE(CheckpointStore::decode(text, other.mem,
                                         other.bpred, &decoded));
}

TEST(Checkpointing, DiskPersistenceRoundTrip)
{
    const std::string dir = ::testing::TempDir() + "reno_ckpt_test";
    std::filesystem::remove_all(dir);

    const Workload &w = workloadByName("gsm.dec");
    const CoreParams params = baseParams();
    std::uint64_t digest = 0;
    {
        CheckpointStore store(dir);
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, 30'000);
        digest = checkpointDigest(
            *store.store(w, 30'000, emu.checkpoint(), warm).emu);

        FuncProfile profile{123456, 42};
        store.storeProfile(profileKey(w), profile);
    }

    // A fresh store instance reads both back from disk.
    CheckpointStore fresh(dir);
    const SampleCheckpoint loaded =
        fresh.lookup(w, 30'000, params.mem, params.bpred);
    ASSERT_TRUE(loaded.usable());
    EXPECT_EQ(checkpointDigest(*loaded.emu), digest);
    EXPECT_EQ(loaded.emu->instCount, 30'000u);

    FuncProfile profile;
    ASSERT_TRUE(fresh.lookupProfile(profileKey(w), &profile));
    EXPECT_EQ(profile.totalInsts, 123456u);
    EXPECT_EQ(profile.memDigest, 42u);

    // Misses stay misses: different position, different warm params.
    EXPECT_FALSE(
        fresh.lookup(w, 30'001, params.mem, params.bpred).usable());
    CoreParams other = params;
    other.mem.l2.assoc = 8;
    EXPECT_FALSE(
        fresh.lookup(w, 30'000, other.mem, other.bpred).usable());

    std::filesystem::remove_all(dir);
}

TEST(Checkpointing, KeysSeparatePositionsAndConfigs)
{
    const Workload &a = workloadByName("gzip");
    const Workload &b = workloadByName("mcf");
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(b, 1000, 7));
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(a, 2000, 7));
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(a, 1000, 8));
    EXPECT_NE(profileKey(a), profileKey(b));
}

// ---- sampled jobs in the campaign engine ----------------------------

TEST(SampledJob, DigestCoversWindowButNotCheckpoint)
{
    sweep::Job job;
    job.workload = &workloadByName("gzip");
    job.config = {"BASE", baseParams()};
    const std::uint64_t full_digest = sweep::jobDigest(job);

    job.window = IntervalWindow{1000, 500, 4000};
    const std::uint64_t sampled_digest = sweep::jobDigest(job);
    EXPECT_NE(full_digest, sampled_digest)
        << "a sampled job must not collide with the full run";

    sweep::Job other = job;
    other.window.startInst = 2000;
    EXPECT_NE(sweep::jobDigest(other), sampled_digest);

    // The checkpoint is an accelerator, not an input.
    sweep::Job with_ckpt = job;
    with_ckpt.checkpoint.emu = std::make_shared<EmuCheckpoint>();
    EXPECT_EQ(sweep::jobDigest(with_ckpt), sampled_digest);
}

TEST(SampledCampaign, ParallelMatchesSerialByteForByte)
{
    const std::vector<const Workload *> workloads = {
        &workloadByName("gzip"), &workloadByName("adpcm.dec")};
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()},
        {"RENO", withReno(CoreParams::fourWide(),
                          RenoConfig::full())}};

    SampleOptions serial;
    serial.campaign.jobs = 1;
    SampleOptions parallel;
    parallel.campaign.jobs = 4;

    const SampledCampaign s =
        runSampledCampaign(workloads, configs, serial);
    const SampledCampaign p =
        runSampledCampaign(workloads, configs, parallel);
    EXPECT_EQ(renderSampled(s, sweep::ReportFormat::Json),
              renderSampled(p, sweep::ReportFormat::Json));
}

TEST(SampledCampaign, WarmCacheRerunSimulatesNothing)
{
    sweep::ResultCache cache;
    SampleOptions options;
    options.campaign.jobs = 1;
    options.campaign.cache = &cache;

    const auto workloads = oneWorkload("g721.dec");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()}};

    const SampledCampaign cold =
        runSampledCampaign(workloads, configs, options);
    EXPECT_GT(cold.stats.simulated, 0u);

    const SampledCampaign warm =
        runSampledCampaign(workloads, configs, options);
    EXPECT_EQ(warm.stats.simulated, 0u);
    EXPECT_EQ(warm.stats.cacheHits, warm.stats.unique);
    EXPECT_EQ(renderSampled(cold, sweep::ReportFormat::Csv),
              renderSampled(warm, sweep::ReportFormat::Csv));
}

TEST(SampledCampaign, EstimateWithinBoundOfFullSimulation)
{
    // End-to-end accuracy: the sampled IPC estimate must track the
    // full detailed simulation. (gzip's error is ~2% at default
    // settings; 5% is the subsystem's advertised bound.)
    const auto workloads = oneWorkload("gzip");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()},
        {"RENO", withReno(CoreParams::fourWide(),
                          RenoConfig::full())}};

    SampleOptions options;
    options.campaign.jobs = 1;
    const ValidationReport report =
        validateSampling(workloads, configs, options);
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_LE(report.maxAbsErrorPct, 5.0);
    for (const ValidationRow &row : report.rows) {
        EXPECT_GT(row.sampledIpc, 0.0);
        EXPECT_GT(row.fullIpc, 0.0);
        EXPECT_EQ(row.totalInsts, 762088u);
    }
}

TEST(SampledCampaign, ValidationReportRendersAllFormats)
{
    const auto workloads = oneWorkload("jpeg.dec");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()}};
    SampleOptions options;
    options.campaign.jobs = 1;
    const ValidationReport report =
        validateSampling(workloads, configs, options);

    const std::string csv =
        renderValidation(report, sweep::ReportFormat::Csv);
    EXPECT_NE(csv.find("ipc_err_pct"), std::string::npos);
    EXPECT_NE(csv.find("jpeg.dec"), std::string::npos);
    const std::string json =
        renderValidation(report, sweep::ReportFormat::Json);
    EXPECT_NE(json.find("\"ipc_full\""), std::string::npos);
}

// ---- functional warming ---------------------------------------------

TEST(Warming, ChoppedWarmingComposesExactly)
{
    // Warming [0, 200k) in one go must leave bit-identical tables to
    // warming [0, 120k), snapshotting, and continuing to 200k -- the
    // property that makes checkpoints pure accelerators.
    const Workload &w = workloadByName("gcc");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;

    Emulator straight(prog, opts);
    WarmState whole(params.mem, params.bpred);
    warmStep(straight, whole, 200'000);

    Emulator chopped(prog, opts);
    WarmState first(params.mem, params.bpred);
    warmStep(chopped, first, 120'000);
    WarmState resumed(first);  // snapshot copy
    warmStep(chopped, resumed, 200'000);

    EXPECT_EQ(CheckpointStore::encode(
                  {std::make_shared<EmuCheckpoint>(
                       straight.checkpoint()),
                   std::make_shared<WarmState>(whole)}),
              CheckpointStore::encode(
                  {std::make_shared<EmuCheckpoint>(
                       chopped.checkpoint()),
                   std::make_shared<WarmState>(resumed)}));
}

TEST(Warming, WarmConfigDigestTracksMemAndBpredOnly)
{
    CoreParams a = baseParams();
    CoreParams b = a;
    b.reno = RenoConfig::full();
    b.robEntries = 256;
    EXPECT_EQ(warmConfigDigest(a), warmConfigDigest(b))
        << "RENO/core knobs must not split the warm-state space";

    CoreParams c = a;
    c.mem.dcache.sizeBytes *= 2;
    EXPECT_NE(warmConfigDigest(a), warmConfigDigest(c));
    CoreParams d = a;
    d.bpred.dir.gshareEntries *= 2;
    EXPECT_NE(warmConfigDigest(a), warmConfigDigest(d));
}

TEST(Warming, SnapshotRoundTripAcrossHierarchyDepths)
{
    // For every memory-system variant (L3 stack, prefetchers,
    // write-back modeling): a warm snapshot taken mid-stream must
    // survive encode -> decode and reproduce the measurement window
    // byte-identically, including the prefetcher training state.
    const Workload &w = workloadByName("g721.enc");
    IntervalWindow win;
    win.startInst = 150'000;
    win.warmupInsts = 500;
    win.measureInsts = 3000;

    for (const char *variant :
         {"l3", "pf-next", "pf-stride", "wb", "l3/pf-stride/wb"}) {
        CoreParams params = baseParams();
        std::string tokens = variant;
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t next = tokens.find('/', pos);
            ASSERT_TRUE(applyMemVariant(
                tokens.substr(pos, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos),
                &params))
                << variant;
            pos = next == std::string::npos ? next : next + 1;
        }

        const SimResult plain = runIntervalDetailed(w, params, win);

        // Checkpoint BEFORE the window start so the decoded warm
        // state must also compose with continued warming.
        CheckpointStore store;
        {
            const Program &prog = assembleWorkload(w);
            Emulator::Options opts;
            opts.randSeed = w.seed;
            Emulator emu(prog, opts);
            WarmState warm(params.mem, params.bpred);
            warmStep(emu, warm, 100'000);
            store.store(w, 100'000, emu.checkpoint(), warm);
        }
        const SampleCheckpoint stored =
            store.lookup(w, 100'000, params.mem, params.bpred);
        ASSERT_TRUE(stored.usable()) << variant;

        const std::string text = CheckpointStore::encode(stored);
        SampleCheckpoint decoded;
        ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                            params.bpred, &decoded))
            << variant;
        EXPECT_EQ(CheckpointStore::encode(decoded), text)
            << variant << ": decode->encode must be the identity";

        const SimResult via_ckpt =
            runIntervalDetailed(w, params, win, &decoded);
        for (const SimStatField &f : simResultFields()) {
            EXPECT_EQ(statValue(via_ckpt, f), statValue(plain, f))
                << variant << ": window stat '" << f.name
                << "' diverged through the snapshot round-trip";
        }
    }
}

TEST(Warming, WarmConfigDigestTracksMemoryVariants)
{
    const CoreParams base = baseParams();
    for (const std::string &token : memVariantNames()) {
        CoreParams varied = base;
        ASSERT_TRUE(applyMemVariant(token, &varied));
        EXPECT_NE(warmConfigDigest(base), warmConfigDigest(varied))
            << token << " must split the warm-state space";
    }
}

TEST(Warming, SnapshotRoundTripAcrossBpredVariants)
{
    // For every branch-prediction variant (direction engines, shallow
    // RAS, small BTB, indirect-target table): a warm snapshot taken
    // mid-stream must survive encode -> decode and reproduce the
    // measurement window byte-identically, including the predictor's
    // tables and history registers. branch.ind exercises every
    // component: conditional loop branches, indirect calls (RAS
    // pushes + BTB/ITT targets) and returns (RAS pops).
    const Workload &w = workloadByName("branch.ind");
    IntervalWindow win;
    win.startInst = 150'000;
    win.warmupInsts = 500;
    win.measureInsts = 3000;

    for (const char *variant :
         {"bimodal", "gshare", "tage", "perceptron", "ras16/btb256",
          "tage/itt"}) {
        CoreParams params = baseParams();
        std::string tokens = variant;
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t next = tokens.find('/', pos);
            ASSERT_TRUE(applyBpredVariant(
                tokens.substr(pos, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos),
                &params))
                << variant;
            pos = next == std::string::npos ? next : next + 1;
        }

        const SimResult plain = runIntervalDetailed(w, params, win);

        // Checkpoint BEFORE the window start so the decoded warm
        // state must also compose with continued warming.
        CheckpointStore store;
        {
            const Program &prog = assembleWorkload(w);
            Emulator::Options opts;
            opts.randSeed = w.seed;
            Emulator emu(prog, opts);
            WarmState warm(params.mem, params.bpred);
            warmStep(emu, warm, 100'000);
            store.store(w, 100'000, emu.checkpoint(), warm);
        }
        const SampleCheckpoint stored =
            store.lookup(w, 100'000, params.mem, params.bpred);
        ASSERT_TRUE(stored.usable()) << variant;

        const std::string text = CheckpointStore::encode(stored);
        SampleCheckpoint decoded;
        ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                            params.bpred, &decoded))
            << variant;
        EXPECT_EQ(CheckpointStore::encode(decoded), text)
            << variant << ": decode->encode must be the identity";

        const SimResult via_ckpt =
            runIntervalDetailed(w, params, win, &decoded);
        for (const SimStatField &f : simResultFields()) {
            EXPECT_EQ(statValue(via_ckpt, f), statValue(plain, f))
                << variant << ": window stat '" << f.name
                << "' diverged through the snapshot round-trip";
        }
    }
}

TEST(Warming, WarmConfigDigestTracksBpredVariants)
{
    const CoreParams base = baseParams();
    for (const char *token : {"bimodal", "gshare", "tage",
                              "perceptron", "ras16", "btb256", "itt"}) {
        CoreParams varied = base;
        ASSERT_TRUE(applyBpredVariant(token, &varied));
        EXPECT_NE(warmConfigDigest(base), warmConfigDigest(varied))
            << token << " must split the warm-state space";
    }
    // The default spelled explicitly is the same warm space.
    CoreParams tournament = base;
    ASSERT_TRUE(applyBpredVariant("tournament", &tournament));
    EXPECT_EQ(warmConfigDigest(base), warmConfigDigest(tournament));
}
