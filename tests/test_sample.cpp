/**
 * @file
 * Sampled-simulation subsystem tests: interval planning (stratified,
 * cold-exact first stratum), window measurement equal to the full
 * simulation over the same region, checkpoint acceleration that never
 * changes results, encode/decode and disk round-trips of combined
 * functional+warm checkpoints, campaign integration (parallel ==
 * serial, warm cache = zero simulations), and end-to-end estimate
 * accuracy against full detailed simulation. Multi-core sampling is
 * covered at the same depth: checkpoint chop/resume of the
 * interleaved warming (shared stack + MESI directory) is bit-exact at
 * 2 and 4 cores, multi-core checkpoints only accelerate, validation
 * reports per-core errors, the single-core report format is
 * untouched, and malformed checkpoint files die with a named reason.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/digest.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "sample/checkpoint.hpp"
#include "sample/interval.hpp"
#include "sample/sampler.hpp"
#include "sample/warmup.hpp"
#include "sweep/campaign.hpp"
#include "sweep/result_cache.hpp"

using namespace reno;
using namespace reno::sample;

namespace
{

CoreParams
baseParams()
{
    CoreParams p = CoreParams::fourWide();
    p.reno = RenoConfig::baseline();
    return p;
}

std::vector<const Workload *>
oneWorkload(const char *name)
{
    return {&workloadByName(name)};
}

bool
sameSim(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.retired == b.retired &&
           a.bpMispredicts == b.bpMispredicts &&
           a.dcacheMisses == b.dcacheMisses &&
           a.l2Misses == b.l2Misses &&
           a.violationSquashes == b.violationSquashes &&
           a.eliminatedTotal() == b.eliminatedTotal();
}

} // namespace

// ---- planning -------------------------------------------------------

TEST(Plan, StratifiedShape)
{
    SamplePlan plan;
    plan.intervals = 10;
    plan.warmupInsts = 500;
    plan.measureInsts = 5000;

    const auto planned = planIntervals(1'000'000, plan);
    ASSERT_EQ(planned.size(), 10u);

    // First stratum: exact, cold, from instruction 0.
    EXPECT_TRUE(planned[0].exact);
    EXPECT_EQ(planned[0].window.startInst, 0u);
    EXPECT_EQ(planned[0].window.warmupInsts, 0u);
    EXPECT_EQ(planned[0].window.measureInsts, 100'000u);
    EXPECT_EQ(planned[0].repInsts, 100'000u);

    // Sampled strata: ascending, within bounds, representation
    // covering the remainder exactly.
    std::uint64_t rep = planned[0].repInsts;
    for (std::size_t i = 1; i < planned.size(); ++i) {
        EXPECT_FALSE(planned[i].exact);
        EXPECT_GT(planned[i].window.startInst,
                  planned[i - 1].window.startInst);
        EXPECT_LT(planned[i].window.startInst, 1'000'000u);
        EXPECT_EQ(planned[i].window.measureInsts, 5000u);
        EXPECT_EQ(planned[i].window.warmupInsts, 500u);
        rep += planned[i].repInsts;
    }
    EXPECT_EQ(rep, 1'000'000u);
}

TEST(Plan, TinyProgramDegeneratesToExactFullRun)
{
    SamplePlan plan;  // default 10 x (2000 + 5000) against 120k insts
    const auto planned = planIntervals(120'000, plan);
    ASSERT_EQ(planned.size(), 1u);
    EXPECT_TRUE(planned[0].exact);
    EXPECT_EQ(planned[0].window.measureInsts, 120'000u);
    EXPECT_EQ(planned[0].repInsts, 120'000u);
}

TEST(Plan, MeasuredRegionIndependentOfWarmup)
{
    SamplePlan a, b;
    a.measureInsts = b.measureInsts = 4000;
    a.warmupInsts = 500;
    b.warmupInsts = 4000;
    const auto pa = planIntervals(2'000'000, a);
    const auto pb = planIntervals(2'000'000, b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 1; i < pa.size(); ++i) {
        // Measured window begins at startInst + warmup: anchored.
        EXPECT_EQ(pa[i].window.startInst + pa[i].window.warmupInsts,
                  pb[i].window.startInst + pb[i].window.warmupInsts);
    }
}

TEST(Plan, DeltaAndAccumulateAreInverse)
{
    SimResult a;
    a.cycles = 100;
    a.retired = 70;
    a.dcacheMisses = 5;
    a.elim[1] = 3;
    SimResult b = a;
    b.cycles = 250;
    b.retired = 200;
    b.dcacheMisses = 9;
    b.elim[1] = 11;

    const SimResult d = deltaResult(b, a);
    EXPECT_EQ(d.cycles, 150u);
    EXPECT_EQ(d.retired, 130u);
    EXPECT_EQ(d.dcacheMisses, 4u);
    EXPECT_EQ(d.elim[1], 8u);

    SimResult sum = a;
    accumulateResult(sum, d);
    EXPECT_TRUE(sameSim(sum, b));
}

// ---- interval measurement vs. full simulation -----------------------

TEST(Interval, WindowEqualsFullSimulationOverSameRegion)
{
    // The strongest correctness property of the interval engine: a
    // fully warmed window must reproduce the full simulation's
    // behavior over the same retired-instruction range exactly.
    const Workload &w = workloadByName("gzip");
    const CoreParams params = baseParams();

    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;
    Emulator emu(prog, opts);
    Core core(params, emu);
    core.runUntilRetired(300'000);
    const SimResult pre = core.result();
    core.runUntilRetired(305'000);
    const SimResult full_delta = deltaResult(core.result(), pre);
    const std::uint64_t start = pre.retired;

    IntervalWindow win;
    win.startInst = start - 1000;
    win.warmupInsts = 1000;
    win.measureInsts = full_delta.retired;
    const SimResult sampled = runIntervalDetailed(w, params, win);
    EXPECT_TRUE(sameSim(sampled, full_delta))
        << "sampled " << sampled.cycles << " cycles vs full "
        << full_delta.cycles;
}

TEST(Interval, CheckpointAcceleratesWithoutChangingResults)
{
    const Workload &w = workloadByName("adpcm.dec");
    const CoreParams params = baseParams();
    IntervalWindow win;
    win.startInst = 200'000;
    win.warmupInsts = 500;
    win.measureInsts = 4000;

    // Reference: no checkpoint (warm from the program start).
    const SimResult plain = runIntervalDetailed(w, params, win);

    // Checkpoint exactly at the window start.
    CheckpointStore store;
    {
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, win.startInst);
        store.store(w, win.startInst, emu.checkpoint(), warm);
    }
    const SampleCheckpoint at_start =
        store.lookup(w, win.startInst, params.mem, params.bpred);
    ASSERT_TRUE(at_start.usable());
    EXPECT_TRUE(
        sameSim(runIntervalDetailed(w, params, win, &at_start),
                plain));

    // Checkpoint BEFORE the window start (warm-steps the gap).
    CheckpointStore store2;
    {
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, 120'000);
        store2.store(w, 120'000, emu.checkpoint(), warm);
    }
    const SampleCheckpoint before =
        store2.lookup(w, 120'000, params.mem, params.bpred);
    ASSERT_TRUE(before.usable());
    EXPECT_TRUE(sameSim(runIntervalDetailed(w, params, win, &before),
                        plain));

    // Mismatched warm-state parameters: checkpoint ignored, results
    // still identical (recomputed from scratch).
    CoreParams other = params;
    other.mem.dcache.sizeBytes *= 2;
    const SimResult recomputed =
        runIntervalDetailed(w, other, win, &at_start);
    EXPECT_TRUE(sameSim(recomputed,
                        runIntervalDetailed(w, other, win)));
}

// ---- checkpoint store -----------------------------------------------

TEST(Checkpointing, EncodeDecodeRoundTrip)
{
    const Workload &w = workloadByName("epic");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;
    Emulator emu(prog, opts);
    WarmState warm(params.mem, params.bpred);
    warmStep(emu, warm, 50'000);

    CheckpointStore store;
    const SampleCheckpoint ckpt =
        store.store(w, 50'000, emu.checkpoint(), warm);

    const std::string text = CheckpointStore::encode(ckpt);
    SampleCheckpoint decoded;
    ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                        params.bpred, &decoded));
    EXPECT_EQ(checkpointDigest(*decoded.emu),
              checkpointDigest(*ckpt.emu));
    EXPECT_EQ(CheckpointStore::encode(decoded), text)
        << "decode followed by encode must be the identity";

    // Corruption is detected.
    std::string bad = text;
    bad[text.find("regs") + 6] ^= 1;
    EXPECT_FALSE(CheckpointStore::decode(bad, params.mem,
                                         params.bpred, &decoded));

    // Wrong warm-state parameters are rejected.
    CoreParams other = params;
    other.bpred.dir.historyBits = 9;
    EXPECT_FALSE(CheckpointStore::decode(text, other.mem,
                                         other.bpred, &decoded));
}

TEST(Checkpointing, DiskPersistenceRoundTrip)
{
    const std::string dir = ::testing::TempDir() + "reno_ckpt_test";
    std::filesystem::remove_all(dir);

    const Workload &w = workloadByName("gsm.dec");
    const CoreParams params = baseParams();
    std::uint64_t digest = 0;
    {
        CheckpointStore store(dir);
        const Program &prog = assembleWorkload(w);
        Emulator::Options opts;
        opts.randSeed = w.seed;
        Emulator emu(prog, opts);
        WarmState warm(params.mem, params.bpred);
        warmStep(emu, warm, 30'000);
        digest = checkpointDigest(
            *store.store(w, 30'000, emu.checkpoint(), warm).emu);

        FuncProfile profile{123456, 42};
        store.storeProfile(profileKey(w), profile);
    }

    // A fresh store instance reads both back from disk.
    CheckpointStore fresh(dir);
    const SampleCheckpoint loaded =
        fresh.lookup(w, 30'000, params.mem, params.bpred);
    ASSERT_TRUE(loaded.usable());
    EXPECT_EQ(checkpointDigest(*loaded.emu), digest);
    EXPECT_EQ(loaded.emu->instCount, 30'000u);

    FuncProfile profile;
    ASSERT_TRUE(fresh.lookupProfile(profileKey(w), &profile));
    EXPECT_EQ(profile.totalInsts, 123456u);
    EXPECT_EQ(profile.memDigest, 42u);

    // Misses stay misses: different position, different warm params.
    EXPECT_FALSE(
        fresh.lookup(w, 30'001, params.mem, params.bpred).usable());
    CoreParams other = params;
    other.mem.l2.assoc = 8;
    EXPECT_FALSE(
        fresh.lookup(w, 30'000, other.mem, other.bpred).usable());

    std::filesystem::remove_all(dir);
}

TEST(Checkpointing, KeysSeparatePositionsAndConfigs)
{
    const Workload &a = workloadByName("gzip");
    const Workload &b = workloadByName("mcf");
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(b, 1000, 7));
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(a, 2000, 7));
    EXPECT_NE(checkpointKey(a, 1000, 7), checkpointKey(a, 1000, 8));
    EXPECT_NE(profileKey(a), profileKey(b));
}

// ---- sampled jobs in the campaign engine ----------------------------

TEST(SampledJob, DigestCoversWindowButNotCheckpoint)
{
    sweep::Job job;
    job.workload = &workloadByName("gzip");
    job.config = {"BASE", baseParams()};
    const std::uint64_t full_digest = sweep::jobDigest(job);

    job.window = IntervalWindow{1000, 500, 4000};
    const std::uint64_t sampled_digest = sweep::jobDigest(job);
    EXPECT_NE(full_digest, sampled_digest)
        << "a sampled job must not collide with the full run";

    sweep::Job other = job;
    other.window.startInst = 2000;
    EXPECT_NE(sweep::jobDigest(other), sampled_digest);

    // The checkpoint is an accelerator, not an input.
    sweep::Job with_ckpt = job;
    with_ckpt.checkpoint.emu = std::make_shared<EmuCheckpoint>();
    EXPECT_EQ(sweep::jobDigest(with_ckpt), sampled_digest);
}

TEST(SampledCampaign, ParallelMatchesSerialByteForByte)
{
    const std::vector<const Workload *> workloads = {
        &workloadByName("gzip"), &workloadByName("adpcm.dec")};
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()},
        {"RENO", withReno(CoreParams::fourWide(),
                          RenoConfig::full())}};

    SampleOptions serial;
    serial.campaign.jobs = 1;
    SampleOptions parallel;
    parallel.campaign.jobs = 4;

    const SampledCampaign s =
        runSampledCampaign(workloads, configs, serial);
    const SampledCampaign p =
        runSampledCampaign(workloads, configs, parallel);
    EXPECT_EQ(renderSampled(s, sweep::ReportFormat::Json),
              renderSampled(p, sweep::ReportFormat::Json));
}

TEST(SampledCampaign, WarmCacheRerunSimulatesNothing)
{
    sweep::ResultCache cache;
    SampleOptions options;
    options.campaign.jobs = 1;
    options.campaign.cache = &cache;

    const auto workloads = oneWorkload("g721.dec");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()}};

    const SampledCampaign cold =
        runSampledCampaign(workloads, configs, options);
    EXPECT_GT(cold.stats.simulated, 0u);

    const SampledCampaign warm =
        runSampledCampaign(workloads, configs, options);
    EXPECT_EQ(warm.stats.simulated, 0u);
    EXPECT_EQ(warm.stats.cacheHits, warm.stats.unique);
    EXPECT_EQ(renderSampled(cold, sweep::ReportFormat::Csv),
              renderSampled(warm, sweep::ReportFormat::Csv));
}

TEST(SampledCampaign, EstimateWithinBoundOfFullSimulation)
{
    // End-to-end accuracy: the sampled IPC estimate must track the
    // full detailed simulation. (gzip's error is ~2% at default
    // settings; 5% is the subsystem's advertised bound.)
    const auto workloads = oneWorkload("gzip");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()},
        {"RENO", withReno(CoreParams::fourWide(),
                          RenoConfig::full())}};

    SampleOptions options;
    options.campaign.jobs = 1;
    const ValidationReport report =
        validateSampling(workloads, configs, options);
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_LE(report.maxAbsErrorPct, 5.0);
    for (const ValidationRow &row : report.rows) {
        EXPECT_GT(row.sampledIpc, 0.0);
        EXPECT_GT(row.fullIpc, 0.0);
        EXPECT_EQ(row.totalInsts, 762088u);
    }
}

TEST(SampledCampaign, ValidationReportRendersAllFormats)
{
    const auto workloads = oneWorkload("jpeg.dec");
    const std::vector<NamedConfig> configs = {
        {"BASE", baseParams()}};
    SampleOptions options;
    options.campaign.jobs = 1;
    const ValidationReport report =
        validateSampling(workloads, configs, options);

    const std::string csv =
        renderValidation(report, sweep::ReportFormat::Csv);
    EXPECT_NE(csv.find("ipc_err_pct"), std::string::npos);
    EXPECT_NE(csv.find("jpeg.dec"), std::string::npos);
    const std::string json =
        renderValidation(report, sweep::ReportFormat::Json);
    EXPECT_NE(json.find("\"ipc_full\""), std::string::npos);
}

// ---- functional warming ---------------------------------------------

TEST(Warming, ChoppedWarmingComposesExactly)
{
    // Warming [0, 200k) in one go must leave bit-identical tables to
    // warming [0, 120k), snapshotting, and continuing to 200k -- the
    // property that makes checkpoints pure accelerators.
    const Workload &w = workloadByName("gcc");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;

    Emulator straight(prog, opts);
    WarmState whole(params.mem, params.bpred);
    warmStep(straight, whole, 200'000);

    Emulator chopped(prog, opts);
    WarmState first(params.mem, params.bpred);
    warmStep(chopped, first, 120'000);
    WarmState resumed(first);  // snapshot copy
    warmStep(chopped, resumed, 200'000);

    EXPECT_EQ(CheckpointStore::encode(
                  {std::make_shared<EmuCheckpoint>(
                       straight.checkpoint()),
                   std::make_shared<WarmState>(whole)}),
              CheckpointStore::encode(
                  {std::make_shared<EmuCheckpoint>(
                       chopped.checkpoint()),
                   std::make_shared<WarmState>(resumed)}));
}

TEST(Warming, WarmConfigDigestTracksMemAndBpredOnly)
{
    CoreParams a = baseParams();
    CoreParams b = a;
    b.reno = RenoConfig::full();
    b.robEntries = 256;
    EXPECT_EQ(warmConfigDigest(a), warmConfigDigest(b))
        << "RENO/core knobs must not split the warm-state space";

    CoreParams c = a;
    c.mem.dcache.sizeBytes *= 2;
    EXPECT_NE(warmConfigDigest(a), warmConfigDigest(c));
    CoreParams d = a;
    d.bpred.dir.gshareEntries *= 2;
    EXPECT_NE(warmConfigDigest(a), warmConfigDigest(d));
}

TEST(Warming, SnapshotRoundTripAcrossHierarchyDepths)
{
    // For every memory-system variant (L3 stack, prefetchers,
    // write-back modeling): a warm snapshot taken mid-stream must
    // survive encode -> decode and reproduce the measurement window
    // byte-identically, including the prefetcher training state.
    const Workload &w = workloadByName("g721.enc");
    IntervalWindow win;
    win.startInst = 150'000;
    win.warmupInsts = 500;
    win.measureInsts = 3000;

    for (const char *variant :
         {"l3", "pf-next", "pf-stride", "wb", "l3/pf-stride/wb"}) {
        CoreParams params = baseParams();
        std::string tokens = variant;
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t next = tokens.find('/', pos);
            ASSERT_TRUE(applyMemVariant(
                tokens.substr(pos, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos),
                &params))
                << variant;
            pos = next == std::string::npos ? next : next + 1;
        }

        const SimResult plain = runIntervalDetailed(w, params, win);

        // Checkpoint BEFORE the window start so the decoded warm
        // state must also compose with continued warming.
        CheckpointStore store;
        {
            const Program &prog = assembleWorkload(w);
            Emulator::Options opts;
            opts.randSeed = w.seed;
            Emulator emu(prog, opts);
            WarmState warm(params.mem, params.bpred);
            warmStep(emu, warm, 100'000);
            store.store(w, 100'000, emu.checkpoint(), warm);
        }
        const SampleCheckpoint stored =
            store.lookup(w, 100'000, params.mem, params.bpred);
        ASSERT_TRUE(stored.usable()) << variant;

        const std::string text = CheckpointStore::encode(stored);
        SampleCheckpoint decoded;
        ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                            params.bpred, &decoded))
            << variant;
        EXPECT_EQ(CheckpointStore::encode(decoded), text)
            << variant << ": decode->encode must be the identity";

        const SimResult via_ckpt =
            runIntervalDetailed(w, params, win, &decoded);
        for (const SimStatField &f : simResultFields()) {
            EXPECT_EQ(statValue(via_ckpt, f), statValue(plain, f))
                << variant << ": window stat '" << f.name
                << "' diverged through the snapshot round-trip";
        }
    }
}

TEST(Warming, WarmConfigDigestTracksMemoryVariants)
{
    const CoreParams base = baseParams();
    for (const std::string &token : memVariantNames()) {
        CoreParams varied = base;
        ASSERT_TRUE(applyMemVariant(token, &varied));
        EXPECT_NE(warmConfigDigest(base), warmConfigDigest(varied))
            << token << " must split the warm-state space";
    }
}

TEST(Warming, SnapshotRoundTripAcrossBpredVariants)
{
    // For every branch-prediction variant (direction engines, shallow
    // RAS, small BTB, indirect-target table): a warm snapshot taken
    // mid-stream must survive encode -> decode and reproduce the
    // measurement window byte-identically, including the predictor's
    // tables and history registers. branch.ind exercises every
    // component: conditional loop branches, indirect calls (RAS
    // pushes + BTB/ITT targets) and returns (RAS pops).
    const Workload &w = workloadByName("branch.ind");
    IntervalWindow win;
    win.startInst = 150'000;
    win.warmupInsts = 500;
    win.measureInsts = 3000;

    for (const char *variant :
         {"bimodal", "gshare", "tage", "perceptron", "ras16/btb256",
          "tage/itt"}) {
        CoreParams params = baseParams();
        std::string tokens = variant;
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t next = tokens.find('/', pos);
            ASSERT_TRUE(applyBpredVariant(
                tokens.substr(pos, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos),
                &params))
                << variant;
            pos = next == std::string::npos ? next : next + 1;
        }

        const SimResult plain = runIntervalDetailed(w, params, win);

        // Checkpoint BEFORE the window start so the decoded warm
        // state must also compose with continued warming.
        CheckpointStore store;
        {
            const Program &prog = assembleWorkload(w);
            Emulator::Options opts;
            opts.randSeed = w.seed;
            Emulator emu(prog, opts);
            WarmState warm(params.mem, params.bpred);
            warmStep(emu, warm, 100'000);
            store.store(w, 100'000, emu.checkpoint(), warm);
        }
        const SampleCheckpoint stored =
            store.lookup(w, 100'000, params.mem, params.bpred);
        ASSERT_TRUE(stored.usable()) << variant;

        const std::string text = CheckpointStore::encode(stored);
        SampleCheckpoint decoded;
        ASSERT_TRUE(CheckpointStore::decode(text, params.mem,
                                            params.bpred, &decoded))
            << variant;
        EXPECT_EQ(CheckpointStore::encode(decoded), text)
            << variant << ": decode->encode must be the identity";

        const SimResult via_ckpt =
            runIntervalDetailed(w, params, win, &decoded);
        for (const SimStatField &f : simResultFields()) {
            EXPECT_EQ(statValue(via_ckpt, f), statValue(plain, f))
                << variant << ": window stat '" << f.name
                << "' diverged through the snapshot round-trip";
        }
    }
}

TEST(Warming, WarmConfigDigestTracksBpredVariants)
{
    const CoreParams base = baseParams();
    for (const char *token : {"bimodal", "gshare", "tage",
                              "perceptron", "ras16", "btb256", "itt"}) {
        CoreParams varied = base;
        ASSERT_TRUE(applyBpredVariant(token, &varied));
        EXPECT_NE(warmConfigDigest(base), warmConfigDigest(varied))
            << token << " must split the warm-state space";
    }
    // The default spelled explicitly is the same warm space.
    CoreParams tournament = base;
    ASSERT_TRUE(applyBpredVariant("tournament", &tournament));
    EXPECT_EQ(warmConfigDigest(base), warmConfigDigest(tournament));
}

// ---- multi-core sampling --------------------------------------------

namespace
{

/** N emulator streams the way the sampled campaign builds them:
 *  per-core seed offset and core id over one assembled program. */
std::vector<std::unique_ptr<Emulator>>
makeEmus(const Program &prog, const Workload &w, unsigned cores)
{
    std::vector<std::unique_ptr<Emulator>> emus;
    for (unsigned c = 0; c < cores; ++c) {
        Emulator::Options opts;
        opts.randSeed = w.seed + c;
        opts.coreId = c;
        emus.push_back(std::make_unique<Emulator>(prog, opts));
    }
    return emus;
}

std::vector<Emulator *>
rawPtrs(const std::vector<std::unique_ptr<Emulator>> &emus)
{
    std::vector<Emulator *> ptrs;
    for (const auto &e : emus)
        ptrs.push_back(e.get());
    return ptrs;
}

/** Snapshot N warmed emulators + the system warm state into one
 *  checkpoint (the multi-core persistence unit). */
SampleCheckpoint
multiCkpt(const std::vector<std::unique_ptr<Emulator>> &emus,
          const SysWarmState &warm)
{
    SampleCheckpoint ckpt;
    ckpt.emu =
        std::make_shared<const EmuCheckpoint>(emus[0]->checkpoint());
    for (std::size_t i = 1; i < emus.size(); ++i)
        ckpt.extraEmus.push_back(std::make_shared<const EmuCheckpoint>(
            emus[i]->checkpoint()));
    ckpt.sysWarm = std::make_shared<const SysWarmState>(warm);
    return ckpt;
}

/** Recompute the trailing integrity digest after mutating the body,
 *  so structural corruption reaches the structural checks instead of
 *  tripping the digest check. */
std::string
redigest(const std::string &text)
{
    const std::size_t digest_pos = text.rfind("digest ");
    std::string body = text.substr(0, digest_pos);
    Fnv64 h;
    h.update(body);
    body += strprintf("digest %llu\n",
                      static_cast<unsigned long long>(h.value()));
    return body;
}

} // namespace

TEST(MultiWarming, ChopResumeThroughSerializationIsBitExact)
{
    // The acceptance property of interleaved warming: chopping the
    // N-core warm at an arbitrary AGGREGATE position -- including mid
    // round-robin, so the emulators sit at uneven per-core counts --
    // serializing, decoding, and resuming must reproduce the straight
    // run's final state byte for byte: functional cursors, L1 tags,
    // shared stack and the MESI directory all ride the encoding.
    const Workload &w = workloadByName("gzip");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);

    for (const unsigned cores : {2u, 4u}) {
        const std::uint64_t final_bound = 900 * cores;
        const std::uint64_t chop = 350 * cores + 1;  // mid-interleave

        auto straight = makeEmus(prog, w, cores);
        SysWarmState whole(params.mem, params.bpred, cores);
        warmStepMulti(rawPtrs(straight), whole, final_bound);
        const std::string want =
            CheckpointStore::encode(multiCkpt(straight, whole));

        auto chopped = makeEmus(prog, w, cores);
        SysWarmState first(params.mem, params.bpred, cores);
        warmStepMulti(rawPtrs(chopped), first, chop);
        const std::string mid =
            CheckpointStore::encode(multiCkpt(chopped, first));

        SampleCheckpoint decoded;
        ASSERT_TRUE(CheckpointStore::decode(mid, params.mem,
                                            params.bpred, &decoded,
                                            cores))
            << cores << " cores";

        auto resumed = makeEmus(prog, w, cores);
        resumed[0]->restore(*decoded.emu);
        for (unsigned c = 1; c < cores; ++c)
            resumed[c]->restore(*decoded.extraEmus[c - 1]);
        SysWarmState warm(*decoded.sysWarm);
        warmStepMulti(rawPtrs(resumed), warm, final_bound);

        EXPECT_EQ(CheckpointStore::encode(multiCkpt(resumed, warm)),
                  want)
            << cores << " cores: chop/resume diverged";
    }
}

TEST(MultiWarming, CheckpointAcceleratesMultiWithoutChangingResults)
{
    // Same contract as the single-core interval engine: a multi-core
    // checkpoint before the window start is a pure accelerator --
    // every registry stat of the measured window is identical with
    // and without it.
    const Workload &w = workloadByName("adpcm.dec");
    CoreParams params = baseParams();
    params.sys.numCores = 2;
    IntervalWindow win;
    win.startInst = 40'000;  // aggregate position over both cores
    win.warmupInsts = 1000;
    win.measureInsts = 4000;

    const SimResult plain = runIntervalDetailed(w, params, win);

    CheckpointStore store;
    {
        const Program &prog = assembleWorkload(w);
        auto emus = makeEmus(prog, w, 2);
        SysWarmState warm(params.mem, params.bpred, 2);
        warmStepMulti(rawPtrs(emus), warm, 30'000);
        std::vector<EmuCheckpoint> snaps;
        for (const auto &e : emus)
            snaps.push_back(e->checkpoint());
        store.storeMulti(w, 30'000, std::move(snaps), warm);
    }
    const SampleCheckpoint ckpt =
        store.lookup(w, 30'000, params.mem, params.bpred, 2);
    ASSERT_TRUE(ckpt.usable());
    ASSERT_EQ(ckpt.numCores(), 2u);

    const SimResult via_ckpt =
        runIntervalDetailed(w, params, win, &ckpt);
    for (const SimStatField &f : simResultFields()) {
        EXPECT_EQ(statValue(via_ckpt, f), statValue(plain, f))
            << "window stat '" << f.name
            << "' changed under the checkpoint";
    }
}

TEST(MultiSampling, ValidationReportsPerCoreErrors)
{
    // A 2-core validation row carries one signed error per occupied
    // core slot, each folded into the whole-report worst case, and
    // the rendered report grows per-core columns.
    const auto workloads = oneWorkload("gzip");
    NamedConfig cfg{"BASE/2c", baseParams()};
    cfg.params.sys.numCores = 2;

    SampleOptions options;
    options.campaign.jobs = 1;
    options.plan.intervals = 6;
    options.plan.warmupInsts = 2000;
    options.plan.measureInsts = 4000;
    options.plan.coldInsts = 60'000;

    const ValidationReport report =
        validateSampling(workloads, {cfg}, options);
    ASSERT_EQ(report.rows.size(), 1u);
    const ValidationRow &row = report.rows[0];
    EXPECT_EQ(row.numCores, 2u);
    ASSERT_EQ(row.coreErrPct.size(), 2u);
    for (const double err : row.coreErrPct)
        EXPECT_LE(std::abs(err), report.maxAbsErrorPct + 1e-9);

    const std::string csv =
        renderValidation(report, sweep::ReportFormat::Csv);
    EXPECT_NE(csv.find("cores"), std::string::npos);
    EXPECT_NE(csv.find("ipc_err_c0"), std::string::npos);
    EXPECT_NE(csv.find("ipc_err_c1"), std::string::npos);
}

TEST(MultiSampling, SingleCoreReportFormatIsUnchanged)
{
    // Multi-core support must not leak into single-core output: a
    // campaign with only 1-core configs renders exactly the
    // historical columns (no "cores", no per-core estimates).
    const auto workloads = oneWorkload("g721.dec");
    const std::vector<NamedConfig> configs = {{"BASE", baseParams()}};
    SampleOptions options;
    options.campaign.jobs = 1;

    const SampledCampaign campaign =
        runSampledCampaign(workloads, configs, options);
    ASSERT_EQ(campaign.runs.size(), 1u);
    EXPECT_EQ(campaign.runs[0].numCores, 1u);

    for (const auto format :
         {sweep::ReportFormat::Csv, sweep::ReportFormat::Json}) {
        const std::string text = renderSampled(campaign, format);
        EXPECT_EQ(text.find("cores"), std::string::npos);
        EXPECT_EQ(text.find("ipc_est_c0"), std::string::npos);
    }
}

// ---- checkpoint rejection diagnostics -------------------------------

TEST(CheckpointRejection, TruncatedFileDiesWithReason)
{
    const Workload &w = workloadByName("epic");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    auto emus = makeEmus(prog, w, 1);
    WarmState warm(params.mem, params.bpred);
    warmStep(*emus[0], warm, 20'000);
    CheckpointStore store;
    const std::string text = CheckpointStore::encode(
        store.store(w, 20'000, emus[0]->checkpoint(), warm));

    // Cut before any digest can be found: a truncated download/write.
    const std::string truncated = text.substr(0, 10);
    EXPECT_DEATH(CheckpointStore::decodeOrDie(truncated, params.mem,
                                              params.bpred),
                 "checkpoint decode failed: no integrity digest");

    // A wrong header with a VALID digest (re-signed) is named too.
    std::string bad_header = text;
    bad_header.replace(0, bad_header.find('\n'), "reno-checkpoint v4");
    bad_header = redigest(bad_header);
    EXPECT_DEATH(
        CheckpointStore::decodeOrDie(bad_header, params.mem,
                                     params.bpred),
        "checkpoint decode failed: bad or truncated header "
        "\\(expected 'reno-checkpoint v5'\\)");
}

TEST(CheckpointRejection, WrongCoreCountDiesWithBothCounts)
{
    const Workload &w = workloadByName("epic");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    auto emus = makeEmus(prog, w, 2);
    SysWarmState warm(params.mem, params.bpred, 2);
    warmStepMulti(rawPtrs(emus), warm, 1000);
    const std::string text =
        CheckpointStore::encode(multiCkpt(emus, warm));

    EXPECT_DEATH(CheckpointStore::decodeOrDie(text, params.mem,
                                              params.bpred, 1),
                 "checkpoint decode failed: checkpoint snapshots 2 "
                 "cores, expected 1");
    EXPECT_DEATH(CheckpointStore::decodeOrDie(text, params.mem,
                                              params.bpred, 4),
                 "checkpoint decode failed: checkpoint snapshots 2 "
                 "cores, expected 4");
}

TEST(CheckpointRejection, CorruptPerCoreBlocksDieNamingTheCore)
{
    const Workload &w = workloadByName("epic");
    const CoreParams params = baseParams();
    const Program &prog = assembleWorkload(w);
    auto emus = makeEmus(prog, w, 2);
    SysWarmState warm(params.mem, params.bpred, 2);
    warmStepMulti(rawPtrs(emus), warm, 1000);
    const std::string text =
        CheckpointStore::encode(multiCkpt(emus, warm));

    // Mangle core 1's warm-block header and re-sign, so the
    // structural check (not the digest) must catch and name it.
    std::string bad_warm = text;
    const std::size_t warm_pos = bad_warm.find("corewarm 1\n");
    ASSERT_NE(warm_pos, std::string::npos);
    bad_warm.replace(warm_pos, 10, "corewarm 7");
    bad_warm = redigest(bad_warm);
    EXPECT_DEATH(CheckpointStore::decodeOrDie(bad_warm, params.mem,
                                              params.bpred, 2),
                 "checkpoint decode failed: corrupt per-core warm "
                 "block \\(core 1\\)");

    // Same for core 1's functional snapshot.
    std::string bad_func = text;
    const std::size_t func_pos = bad_func.find("\ncore 1\n");
    ASSERT_NE(func_pos, std::string::npos);
    bad_func.replace(func_pos, 8, "\ncore 5\n");
    bad_func = redigest(bad_func);
    EXPECT_DEATH(CheckpointStore::decodeOrDie(bad_func, params.mem,
                                              params.bpred, 2),
                 "checkpoint decode failed: corrupt functional block "
                 "\\(core 1\\)");
}
