/**
 * @file
 * ISA tests: opcode property table consistency, encode/decode
 * round-tripping over every opcode (parameterized), operand queries
 * per format, RENO idiom predicates, and the disassembler.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/inst.hpp"
#include "isa/regs.hpp"

using namespace reno;

class AllOpcodes : public ::testing::TestWithParam<unsigned>
{
  protected:
    Opcode op() const { return static_cast<Opcode>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Isa, AllOpcodes, ::testing::Range(0u, NumOpcodeValues),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(mnemonic(static_cast<Opcode>(info.param)));
    });

TEST_P(AllOpcodes, PropertyTableConsistent)
{
    const OpInfo &info = opInfo(op());
    EXPECT_FALSE(info.mnemonic.empty());
    EXPECT_GE(info.latency, 1u);
    if (info.cls == InstClass::Load || info.cls == InstClass::Store) {
        EXPECT_GT(info.memSize, 0u);
        EXPECT_EQ(info.fmt, InstFormat::Mem);
    } else {
        EXPECT_EQ(info.memSize, 0u);
    }
    if (info.cfCandidate) {
        // Only register-immediate additions fold.
        EXPECT_EQ(op(), Opcode::ADDI);
    }
    if (info.signedLoad)
        EXPECT_EQ(info.cls, InstClass::Load);
    // Multiplies and divides are multi-cycle.
    if (info.cls == InstClass::IntMul || info.cls == InstClass::IntDiv)
        EXPECT_GT(info.latency, 1u);
}

TEST_P(AllOpcodes, MnemonicRoundTrip)
{
    EXPECT_EQ(opcodeFromMnemonic(mnemonic(op())), op());
}

TEST_P(AllOpcodes, EncodeDecodeRoundTrip)
{
    Rng rng(GetParam() + 1);
    for (int trial = 0; trial < 32; ++trial) {
        const unsigned ra = static_cast<unsigned>(rng.below(NumLogRegs));
        const unsigned rb = static_cast<unsigned>(rng.below(NumLogRegs));
        const unsigned rc = static_cast<unsigned>(rng.below(NumLogRegs));
        const auto imm =
            static_cast<std::int32_t>(rng.range(-32768, 32767));

        Instruction inst;
        switch (opInfo(op()).fmt) {
          case InstFormat::R:
            inst = Instruction::rr(op(), rc, ra, rb);
            break;
          case InstFormat::I:
            inst = Instruction::ri(op(), rc, ra, imm);
            break;
          case InstFormat::Mem:
            inst = Instruction::mem(op(), rc, ra, imm);
            break;
          case InstFormat::Branch:
            inst = Instruction::branch(op(), ra, imm);
            break;
          case InstFormat::Jump:
            inst = Instruction::jump(op(), rc, ra, imm);
            break;
          case InstFormat::None:
            inst = Instruction::syscall();
            break;
        }
        EXPECT_EQ(decode(encode(inst)), inst)
            << disassemble(inst) << " failed to round-trip";
    }
}

TEST_P(AllOpcodes, DisassembleNonEmpty)
{
    Instruction inst;
    inst.op = op();
    EXPECT_FALSE(disassemble(inst, 0x1000).empty());
}

TEST(Inst, OperandQueriesRType)
{
    const Instruction i = Instruction::rr(Opcode::ADD, 3, 1, 2);
    EXPECT_EQ(i.numSrcs(), 2u);
    EXPECT_EQ(i.src(0), 1);
    EXPECT_EQ(i.src(1), 2);
    EXPECT_TRUE(i.hasDest());
    EXPECT_EQ(i.dest(), 3);
}

TEST(Inst, OperandQueriesIType)
{
    const Instruction i = Instruction::ri(Opcode::ADDI, 4, 7, 100);
    EXPECT_EQ(i.numSrcs(), 1u);
    EXPECT_EQ(i.src(0), 7);
    EXPECT_TRUE(i.hasDest());
    EXPECT_EQ(i.dest(), 4);
}

TEST(Inst, LuiHasNoSources)
{
    const Instruction i = Instruction::ri(Opcode::LUI, 4, RegZero, 16);
    EXPECT_EQ(i.numSrcs(), 0u);
    EXPECT_TRUE(i.hasDest());
}

TEST(Inst, LoadsAndStores)
{
    const Instruction ld = Instruction::mem(Opcode::LDQ, 5, 6, 16);
    EXPECT_EQ(ld.numSrcs(), 1u);
    EXPECT_EQ(ld.src(0), 6);
    EXPECT_TRUE(ld.hasDest());
    EXPECT_EQ(ld.dest(), 5);

    const Instruction st = Instruction::mem(Opcode::STQ, 5, 6, 16);
    EXPECT_EQ(st.numSrcs(), 2u);
    EXPECT_EQ(st.src(0), 6);  // base
    EXPECT_EQ(st.src(1), 5);  // data
    EXPECT_FALSE(st.hasDest());
}

TEST(Inst, BranchesHaveNoDest)
{
    const Instruction b = Instruction::branch(Opcode::BNE, 9, -4);
    EXPECT_EQ(b.numSrcs(), 1u);
    EXPECT_FALSE(b.hasDest());

    const Instruction br = Instruction::branch(Opcode::BR, RegZero, 8);
    EXPECT_EQ(br.numSrcs(), 0u);
    EXPECT_FALSE(br.hasDest());
}

TEST(Inst, CallWritesLink)
{
    const Instruction bsr =
        Instruction::jump(Opcode::BSR, RegRa, RegZero, 10);
    EXPECT_TRUE(bsr.hasDest());
    EXPECT_EQ(bsr.dest(), RegRa);
    EXPECT_EQ(bsr.numSrcs(), 0u);

    const Instruction jsr = Instruction::jump(Opcode::JSR, RegRa, 5, 0);
    EXPECT_TRUE(jsr.hasDest());
    EXPECT_EQ(jsr.numSrcs(), 1u);

    const Instruction jmp =
        Instruction::jump(Opcode::JMP, RegZero, RegRa, 0);
    EXPECT_FALSE(jmp.hasDest());
    EXPECT_EQ(jmp.numSrcs(), 1u);
}

TEST(Inst, SyscallReadsAndWritesConventionRegs)
{
    const Instruction sc = Instruction::syscall();
    EXPECT_EQ(sc.numSrcs(), 2u);
    EXPECT_EQ(sc.src(0), RegV0);
    EXPECT_EQ(sc.src(1), RegA0);
    EXPECT_TRUE(sc.hasDest());
    EXPECT_EQ(sc.dest(), RegV0);
}

TEST(Inst, ZeroDestMeansNoDest)
{
    const Instruction i = Instruction::rr(Opcode::ADD, RegZero, 1, 2);
    EXPECT_FALSE(i.hasDest());
    EXPECT_FALSE(Instruction::nop().hasDest());
}

TEST(Inst, MoveIdiom)
{
    const Instruction mov = Instruction::move(4, 5);
    EXPECT_TRUE(mov.isMove());
    EXPECT_TRUE(mov.isCfCandidate());
    EXPECT_EQ(mov.op, Opcode::ADDI);
    EXPECT_EQ(mov.imm, 0);

    const Instruction addi = Instruction::ri(Opcode::ADDI, 4, 5, 8);
    EXPECT_FALSE(addi.isMove());
    EXPECT_TRUE(addi.isCfCandidate());

    // A nop (dest = zero) is not worth folding.
    EXPECT_FALSE(Instruction::nop().isCfCandidate());

    // Non-addi immediates are not CF candidates.
    const Instruction ori = Instruction::ri(Opcode::ORI, 4, 5, 0);
    EXPECT_FALSE(ori.isMove());
    EXPECT_FALSE(ori.isCfCandidate());
}

TEST(Regs, NamesAndAliases)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regAbiName(0), "v0");
    EXPECT_EQ(regAbiName(RegSp), "sp");
    EXPECT_EQ(regAbiName(RegZero), "zero");
    EXPECT_EQ(regAbiName(RegRa), "ra");

    EXPECT_EQ(parseRegName("r17"), 17u);
    EXPECT_EQ(parseRegName("a1"), 17u);
    EXPECT_EQ(parseRegName("sp"), 30u);
    EXPECT_EQ(parseRegName("zero"), 31u);
    EXPECT_EQ(parseRegName("bogus"), NumLogRegs);
    EXPECT_EQ(parseRegName("r32"), NumLogRegs);
    EXPECT_EQ(parseRegName("r"), NumLogRegs);
}

TEST(Disasm, RendersIdioms)
{
    EXPECT_EQ(disassemble(Instruction::move(4, 5)), "mov t3, t4");
    EXPECT_EQ(disassemble(Instruction::rr(Opcode::ADD, 3, 1, 2)),
              "add t2, t0, t1");
    const Instruction ld = Instruction::mem(Opcode::LDQ, 1, 30, 8);
    EXPECT_EQ(disassemble(ld), "ldq t0, 8(sp)");
    // Branch targets resolve against the pc.
    const Instruction b = Instruction::branch(Opcode::BEQ, 1, 3);
    EXPECT_EQ(disassemble(b, 0x1000), "beq t0, 0x1010");
}
