/**
 * @file
 * Memory-dependence scheduling tests at the core level: aggressive
 * load issue, violation squash-and-replay, store-set learning across
 * iterations, and the regression where a younger same-set store's
 * issue must not unblock a load from an older, still-unissued store.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

struct CoreRun {
    SimResult sim;
    std::string output;
    std::string refOutput;
};

CoreRun
runOnCore(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();
    Emulator emu(prog);
    Core core(params, emu);
    CoreRun out;
    out.sim = core.run();
    out.output = emu.output();
    out.refOutput = ref.output();
    return out;
}

/**
 * A loop where a store's address depends on slow work (a divide) and
 * a following load reads the same location: issued aggressively, the
 * load would read stale data every iteration. The store-set predictor
 * must learn the pair once and serialize all later iterations.
 */
const char *const conflict_loop = R"(
        .data
buf:    .space 128
        .text
_start:
        la   s0, buf
        li   s1, 500          # iterations
        li   s2, 0            # checksum
        li   s3, 1
loop:
        # slow address generation: div delays the store
        div  t0, s1, s3
        andi t0, t0, 15
        # store iteration number at a busy location
        stq  s1, 16(s0)
        # dependent load of the same location issues aggressively
        ldq  t1, 16(s0)
        add  s2, s2, t1
        subi s1, s1, 1
        bne  s1, loop
        andi s2, s2, 65535
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * Regression for the LFST visibility bug: two stores in the same
 * store set per iteration, where the OLDER store's address chain is
 * slow and the YOUNGER store issues quickly. After the younger store
 * issues (clearing the naive last-fetched-store entry), the load must
 * still wait for the older store.
 */
const char *const two_store_loop = R"(
        .data
buf:    .space 128
        .text
_start:
        la   s0, buf
        li   s1, 400
        li   s2, 0
        li   s3, 1
loop:
        # older store: slow data (divide feeds the stored value)
        div  t0, s1, s3
        stq  t0, 0(s0)
        # younger store to the same set (same static pc region),
        # immediately ready
        stq  s1, 8(s0)
        # loads of both locations
        ldq  t1, 0(s0)
        ldq  t2, 8(s0)
        add  s2, s2, t1
        add  s2, s2, t2
        subi s1, s1, 1
        bne  s1, loop
        andi s2, s2, 65535
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace

TEST(MemDep, OutputAlwaysMatchesFunctionalReference)
{
    for (const char *src : {conflict_loop, two_store_loop}) {
        const CoreRun r = runOnCore(src, CoreParams{});
        EXPECT_EQ(r.output, r.refOutput)
            << "violation replay must preserve architectural state";
    }
}

TEST(MemDep, StoreSetsLearnAfterFewViolations)
{
    const CoreRun r = runOnCore(conflict_loop, CoreParams{});
    // 500 iterations: an unlearned predictor would violate on nearly
    // every one. Learning must cap the squashes at a handful.
    EXPECT_LT(r.sim.violationSquashes, 10u);
    EXPECT_GT(r.sim.violationSquashes, 0u)
        << "the first aggressive issue should misspeculate";
}

TEST(MemDep, OlderUnissuedSameSetStoreStillBlocksLoad)
{
    const CoreRun r = runOnCore(two_store_loop, CoreParams{});
    EXPECT_EQ(r.output, r.refOutput);
    // Regression: with the last-fetched-store-only check, the younger
    // store's issue unhid the older one and the load violated every
    // iteration (hundreds of squashes).
    EXPECT_LT(r.sim.violationSquashes, 20u);
}

TEST(MemDep, ForwardingStillAllowsSameCycleIndependentLoads)
{
    // Independent load/store streams must not be serialized by the
    // predictor (no violations ever trains it).
    const char *src = R"(
        .data
a:      .space 64
b:      .space 64
        .text
_start:
        la   s0, a
        la   s1, b
        li   s2, 300
        li   t2, 5
loop:
        stq  t2, 0(s0)
        ldq  t0, 0(s1)
        add  t2, t2, t0
        subi s2, s2, 1
        bne  s2, loop
        li   v0, 0
        li   a0, 0
        syscall
)";
    const CoreRun r = runOnCore(src, CoreParams{});
    EXPECT_EQ(r.sim.violationSquashes, 0u);
}

TEST(MemDep, ViolationSquashRollsBackRenoState)
{
    CoreParams p;
    p.reno = RenoConfig::full();
    for (const char *src : {conflict_loop, two_store_loop}) {
        const CoreRun r = runOnCore(src, p);
        EXPECT_EQ(r.output, r.refOutput)
            << "squash must roll back map table and reference counts";
    }
}
