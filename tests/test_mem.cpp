/**
 * @file
 * Memory substrate tests: sparse memory, cache hit/miss behavior,
 * LRU replacement, MSHR merging, bus contention and the two-level
 * hierarchy.
 */
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/sparse_memory.hpp"

using namespace reno;

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(SparseMemory, LittleEndianMultiByte)
{
    SparseMemory m;
    m.write(0x100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.readByte(0x100), 0x88);
    EXPECT_EQ(m.readByte(0x107), 0x11);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    const Addr addr = SparseMemory::PageSize - 4;
    m.write(addr, 0xaabbccdd11223344ULL, 8);
    EXPECT_EQ(m.read(addr, 8), 0xaabbccdd11223344ULL);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(SparseMemory, LoadBuffer)
{
    SparseMemory m;
    const std::uint8_t data[] = {1, 2, 3, 4};
    m.load(0x2000, data, sizeof(data));
    EXPECT_EQ(m.read(0x2000, 4), 0x04030201u);
}

TEST(SparseMemory, ReadString)
{
    SparseMemory m;
    const char *s = "reno";
    m.load(0x300, reinterpret_cast<const std::uint8_t *>(s), 5);
    EXPECT_EQ(m.readString(0x300), "reno");
}

TEST(SparseMemory, DigestSensitivity)
{
    SparseMemory a, b;
    a.write(0x100, 1, 8);
    b.write(0x100, 1, 8);
    EXPECT_EQ(a.digest(), b.digest());
    b.write(0x108, 1, 1);
    EXPECT_NE(a.digest(), b.digest());
    // Same value at a different address also differs.
    SparseMemory c;
    c.write(0x200, 1, 8);
    EXPECT_NE(a.digest(), c.digest());
}

// ---- single cache ----------------------------------------------------

namespace
{

/** Next-level stub with fixed latency, counting calls. */
struct NextLevelStub {
    unsigned latency = 50;
    unsigned calls = 0;

    static std::uint64_t
    entry(void *ctx, Addr, Cycle now)
    {
        auto *self = static_cast<NextLevelStub *>(ctx);
        ++self->calls;
        return now + self->latency;
    }
};

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 256;  // 4 sets x 2 ways x 32B
    p.assoc = 2;
    p.blockBytes = 32;
    p.latency = 2;
    p.numMshrs = 2;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);

    const Cycle t1 = c.access(0x1000, 0, false);
    EXPECT_EQ(t1, 0u + 2 + 50 + 2);  // miss: latency + fill + latency
    EXPECT_EQ(c.misses(), 1u);

    const Cycle t2 = c.access(0x1000, t1, false);
    EXPECT_EQ(t2, t1 + 2);  // hit
    EXPECT_EQ(c.hits(), 1u);

    // Same block, different byte: still a hit.
    EXPECT_EQ(c.access(0x101f, t2, false), t2 + 2);
    // Adjacent block: miss.
    c.access(0x1020, t2, false);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ProbeDoesNotTouchState)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000, 0, false);
    const Cycle fill = 100;
    EXPECT_TRUE(c.probe(0x1000)) << "filled after access";
    EXPECT_EQ(c.hits(), 0u);
    (void)fill;
}

TEST(Cache, LruEviction)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);
    // 4 sets of 2 ways; blocks mapping to set 0: block numbers 0, 4, 8.
    Cycle t = 0;
    t = c.access(0 * 32, t, false);       // A
    t = c.access(4 * 32, t, false);       // B
    t = c.access(0 * 32, t, false);       // touch A (B becomes LRU)
    t = c.access(8 * 32, t, false);       // C evicts B
    EXPECT_TRUE(c.probe(0 * 32));
    EXPECT_FALSE(c.probe(4 * 32));
    EXPECT_TRUE(c.probe(8 * 32));
}

TEST(Cache, MshrMergesSameBlock)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);
    const Cycle t1 = c.access(0x1000, 0, false);
    // Second access to the same block before the fill completes merges
    // into the outstanding miss rather than re-requesting.
    const Cycle t2 = c.access(0x1008, 1, false);
    EXPECT_EQ(next.calls, 1u);
    EXPECT_EQ(c.mshrMerges(), 1u);
    EXPECT_LE(t2, t1 + 2);
}

TEST(Cache, MshrLimitSerializes)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);  // 2 MSHRs
    const Cycle a = c.access(0x0000, 0, false);
    const Cycle b = c.access(0x2000, 0, false);
    // Third distinct miss must wait for an MSHR.
    const Cycle d = c.access(0x4000, 0, false);
    EXPECT_GT(d, a);
    EXPECT_GT(d, b);
    EXPECT_EQ(next.calls, 3u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    NextLevelStub next;
    Cache c(smallCache(), &NextLevelStub::entry, &next);
    Cycle t = c.access(0x1000, 0, false);
    EXPECT_TRUE(c.probe(0x1000));
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
    (void)t;
}

// ---- hierarchy --------------------------------------------------------

TEST(Hierarchy, PaperLatencies)
{
    MemHierarchy mem;  // paper configuration

    // Cold D$ access: D$(2) + L2(10) + memory(100) + bus transfer
    // (64B / 16B * 4 = 16 cycles) + return path.
    const Cycle cold = mem.dataAccess(0x10000, 0, false);
    EXPECT_GT(cold, 100u);

    // Hot access: pure D$ latency.
    const Cycle hot = mem.dataAccess(0x10000, cold, false);
    EXPECT_EQ(hot, cold + 2);

    // Neighbor in the same 64B L2 line but different 32B D$ line:
    // misses the D$ but hits the L2.
    const Cycle l2hit = mem.dataAccess(0x10020, hot, false);
    EXPECT_EQ(l2hit, hot + 2 + 10 + 2);
}

TEST(Hierarchy, InstructionFetchPath)
{
    MemHierarchy mem;
    const Cycle cold = mem.fetchAccess(0x1000, 0);
    EXPECT_GT(cold, 100u);
    const Cycle hot = mem.fetchAccess(0x1000, cold);
    EXPECT_EQ(hot, cold + 1);  // 1-cycle I$
}

TEST(Hierarchy, SharedL2BetweenIAndD)
{
    MemHierarchy mem;
    mem.fetchAccess(0x40000, 0);
    // A D$ access to the same 64B line: L2 hit (I-fetch filled it).
    const Cycle t = mem.dataAccess(0x40010, 1000, false);
    EXPECT_EQ(t, 1000u + 2 + 10 + 2);
    EXPECT_TRUE(mem.l2Probe(0x40000));
}

TEST(Hierarchy, BusContentionSerializesMisses)
{
    MemHierarchy mem;
    const Cycle a = mem.dataAccess(0x100000, 0, false);
    const Cycle b = mem.dataAccess(0x200000, 0, false);
    // Both go to memory; the second's bus transfer queues behind the
    // first's.
    EXPECT_GT(b, a);
}

TEST(Hierarchy, ProbesReportLevels)
{
    MemHierarchy mem;
    EXPECT_FALSE(mem.dcacheProbe(0x5000));
    EXPECT_FALSE(mem.l2Probe(0x5000));
    mem.dataAccess(0x5000, 0, false);
    EXPECT_TRUE(mem.dcacheProbe(0x5000));
    EXPECT_TRUE(mem.l2Probe(0x5000));
    mem.flush();
    EXPECT_FALSE(mem.dcacheProbe(0x5000));
}

TEST(Hierarchy, WritesAllocate)
{
    MemHierarchy mem;
    mem.dataAccess(0x7000, 0, true);
    EXPECT_TRUE(mem.dcacheProbe(0x7000));
    EXPECT_GT(mem.dcache().misses(), 0u);
}

// ---- checkpointing support (sampled simulation) ---------------------

TEST(SparseMemory, SnapshotRestoreDigestRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 0xdeadbeefcafef00dULL, 8);
    m.write(0x7ff123, 0x42, 1);
    const std::uint64_t digest = m.digest();

    const SparseMemory snap = m.snapshot();
    EXPECT_EQ(snap.digest(), digest);
    EXPECT_TRUE(snap == m);

    // Diverge, then restore: digest and equality must round-trip.
    m.write(0x1000, 0, 8);
    m.write(0x2000000, 7, 1);
    EXPECT_NE(m.digest(), digest);
    EXPECT_FALSE(snap == m);

    m.restore(snap);
    EXPECT_EQ(m.digest(), digest);
    EXPECT_TRUE(m == snap);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafef00dULL);
}

TEST(SparseMemory, EqualityDistinguishesAllocatedZeroPages)
{
    // An explicitly written-then-zeroed page is allocated; an
    // untouched one is not. digest() distinguishes them, so equality
    // must too.
    SparseMemory a, b;
    a.write(0x5000, 0, 8);
    EXPECT_EQ(a.numPages(), 1u);
    EXPECT_EQ(b.numPages(), 0u);
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(SparseMemory, PagesExposesAllocatedContents)
{
    SparseMemory m;
    m.write(0x1004, 0x11223344, 4);
    ASSERT_EQ(m.pages().size(), 1u);
    const auto &[page_num, page] = *m.pages().begin();
    EXPECT_EQ(page_num, 0x1004u >> SparseMemory::PageBits);
    EXPECT_EQ(page.size(), SparseMemory::PageSize);
    EXPECT_EQ(page[4], 0x44);
}

TEST(Cache, CopyStateFromReproducesHitsAndLru)
{
    const CacheParams params{"c", 256, 2, 32, 1, 4};
    Cache a(params, [](void *, Addr, Cycle now) { return now + 10; },
            nullptr);
    a.access(0x000, 0, false);
    a.access(0x100, 5, false);

    Cache b(params, [](void *, Addr, Cycle now) { return now + 10; },
            nullptr);
    b.copyStateFrom(a);
    EXPECT_TRUE(b.probe(0x000));
    EXPECT_TRUE(b.probe(0x100));
    EXPECT_EQ(b.misses(), a.misses());

    // Export/import round-trip preserves the tag state.
    Cache c(params, [](void *, Addr, Cycle now) { return now + 10; },
            nullptr);
    EXPECT_TRUE(c.importState(a.exportState()));
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x200));
}

TEST(Hierarchy, CopyStateFromAndSettle)
{
    MemHierarchy a;
    a.dataAccess(0x4000, 0, false);
    a.fetchAccess(0x1000, 0);

    MemHierarchy b;
    b.copyStateFrom(a);
    EXPECT_TRUE(b.dcacheProbe(0x4000));
    EXPECT_TRUE(b.l2Probe(0x4000));
    b.settle();
    EXPECT_TRUE(b.dcacheProbe(0x4000)) << "settle keeps tags";

    MemHierarchy c;
    EXPECT_TRUE(c.importState(a.exportState()));
    EXPECT_TRUE(c.dcacheProbe(0x4000));
    EXPECT_TRUE(c.l2Probe(0x4000));
}
