/**
 * @file
 * Memory substrate tests: sparse memory, cache hit/miss behavior,
 * LRU replacement, MSHR merging, bus contention, write-back and
 * prefetch modeling, and hierarchies of configurable depth.
 */
#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "mem/sparse_memory.hpp"

using namespace reno;

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(SparseMemory, LittleEndianMultiByte)
{
    SparseMemory m;
    m.write(0x100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.readByte(0x100), 0x88);
    EXPECT_EQ(m.readByte(0x107), 0x11);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    const Addr addr = SparseMemory::PageSize - 4;
    m.write(addr, 0xaabbccdd11223344ULL, 8);
    EXPECT_EQ(m.read(addr, 8), 0xaabbccdd11223344ULL);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(SparseMemory, LoadBuffer)
{
    SparseMemory m;
    const std::uint8_t data[] = {1, 2, 3, 4};
    m.load(0x2000, data, sizeof(data));
    EXPECT_EQ(m.read(0x2000, 4), 0x04030201u);
}

TEST(SparseMemory, ReadString)
{
    SparseMemory m;
    const char *s = "reno";
    m.load(0x300, reinterpret_cast<const std::uint8_t *>(s), 5);
    EXPECT_EQ(m.readString(0x300), "reno");
}

TEST(SparseMemory, DigestSensitivity)
{
    SparseMemory a, b;
    a.write(0x100, 1, 8);
    b.write(0x100, 1, 8);
    EXPECT_EQ(a.digest(), b.digest());
    b.write(0x108, 1, 1);
    EXPECT_NE(a.digest(), b.digest());
    // Same value at a different address also differs.
    SparseMemory c;
    c.write(0x200, 1, 8);
    EXPECT_NE(a.digest(), c.digest());
}

// ---- single cache ----------------------------------------------------

namespace
{

/** Next-level stub with fixed latency, counting request kinds. */
struct NextLevelStub final : MemLevel {
    unsigned latency = 50;
    unsigned calls = 0;       //!< fills (demand + prefetch)
    unsigned prefetches = 0;  //!< prefetch-kind fills
    unsigned writebacks = 0;  //!< victims drained into us
    std::vector<Addr> writebackAddrs;
    std::string label = "stub";

    Cycle
    access(Addr addr, Cycle now, MemAccessKind kind) override
    {
        if (kind == MemAccessKind::Writeback) {
            ++writebacks;
            writebackAddrs.push_back(addr);
            return now;
        }
        if (kind == MemAccessKind::Prefetch)
            ++prefetches;
        ++calls;
        return now + latency;
    }
    bool probe(Addr) const override { return true; }
    void flush() override {}
    const std::string &name() const override { return label; }
};

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 256;  // 4 sets x 2 ways x 32B
    p.assoc = 2;
    p.blockBytes = 32;
    p.latency = 2;
    p.numMshrs = 2;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);

    const Cycle t1 = c.access(0x1000, 0, MemAccessKind::Read);
    EXPECT_EQ(t1, 0u + 2 + 50 + 2);  // miss: latency + fill + latency
    EXPECT_EQ(c.misses(), 1u);

    const Cycle t2 = c.access(0x1000, t1, MemAccessKind::Read);
    EXPECT_EQ(t2, t1 + 2);  // hit
    EXPECT_EQ(c.hits(), 1u);

    // Same block, different byte: still a hit.
    EXPECT_EQ(c.access(0x101f, t2, MemAccessKind::Read), t2 + 2);
    // Adjacent block: miss.
    c.access(0x1020, t2, MemAccessKind::Read);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ProbeDoesNotTouchState)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000, 0, MemAccessKind::Read);
    const Cycle fill = 100;
    EXPECT_TRUE(c.probe(0x1000)) << "filled after access";
    EXPECT_EQ(c.hits(), 0u);
    (void)fill;
}

TEST(Cache, LruEviction)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);
    // 4 sets of 2 ways; blocks mapping to set 0: block numbers 0, 4, 8.
    Cycle t = 0;
    t = c.access(0 * 32, t, MemAccessKind::Read);       // A
    t = c.access(4 * 32, t, MemAccessKind::Read);       // B
    t = c.access(0 * 32, t, MemAccessKind::Read);       // touch A (B becomes LRU)
    t = c.access(8 * 32, t, MemAccessKind::Read);       // C evicts B
    EXPECT_TRUE(c.probe(0 * 32));
    EXPECT_FALSE(c.probe(4 * 32));
    EXPECT_TRUE(c.probe(8 * 32));
}

TEST(Cache, MshrMergesSameBlock)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);
    const Cycle t1 = c.access(0x1000, 0, MemAccessKind::Read);
    // Second access to the same block before the fill completes merges
    // into the outstanding miss rather than re-requesting.
    const Cycle t2 = c.access(0x1008, 1, MemAccessKind::Read);
    EXPECT_EQ(next.calls, 1u);
    EXPECT_EQ(c.mshrMerges(), 1u);
    EXPECT_LE(t2, t1 + 2);
}

TEST(Cache, MshrLimitSerializes)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);  // 2 MSHRs
    const Cycle a = c.access(0x0000, 0, MemAccessKind::Read);
    const Cycle b = c.access(0x2000, 0, MemAccessKind::Read);
    // Third distinct miss must wait for an MSHR.
    const Cycle d = c.access(0x4000, 0, MemAccessKind::Read);
    EXPECT_GT(d, a);
    EXPECT_GT(d, b);
    EXPECT_EQ(next.calls, 3u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);
    Cycle t = c.access(0x1000, 0, MemAccessKind::Read);
    EXPECT_TRUE(c.probe(0x1000));
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
    (void)t;
}

// ---- hierarchy --------------------------------------------------------

TEST(Hierarchy, PaperLatencies)
{
    MemHierarchy mem;  // paper configuration

    // Cold D$ access: D$(2) + L2(10) + memory(100) + bus transfer
    // (64B / 16B * 4 = 16 cycles) + return path.
    const Cycle cold = mem.dataAccess(0x10000, 0, false);
    EXPECT_GT(cold, 100u);

    // Hot access: pure D$ latency.
    const Cycle hot = mem.dataAccess(0x10000, cold, false);
    EXPECT_EQ(hot, cold + 2);

    // Neighbor in the same 64B L2 line but different 32B D$ line:
    // misses the D$ but hits the L2.
    const Cycle l2hit = mem.dataAccess(0x10020, hot, false);
    EXPECT_EQ(l2hit, hot + 2 + 10 + 2);
}

TEST(Hierarchy, InstructionFetchPath)
{
    MemHierarchy mem;
    const Cycle cold = mem.fetchAccess(0x1000, 0);
    EXPECT_GT(cold, 100u);
    const Cycle hot = mem.fetchAccess(0x1000, cold);
    EXPECT_EQ(hot, cold + 1);  // 1-cycle I$
}

TEST(Hierarchy, SharedL2BetweenIAndD)
{
    MemHierarchy mem;
    mem.fetchAccess(0x40000, 0);
    // A D$ access to the same 64B line: L2 hit (I-fetch filled it).
    const Cycle t = mem.dataAccess(0x40010, 1000, false);
    EXPECT_EQ(t, 1000u + 2 + 10 + 2);
    EXPECT_TRUE(mem.l2Probe(0x40000));
}

TEST(Hierarchy, BusContentionSerializesMisses)
{
    MemHierarchy mem;
    const Cycle a = mem.dataAccess(0x100000, 0, false);
    const Cycle b = mem.dataAccess(0x200000, 0, false);
    // Both go to memory; the second's bus transfer queues behind the
    // first's.
    EXPECT_GT(b, a);
}

TEST(Hierarchy, ProbesReportLevels)
{
    MemHierarchy mem;
    EXPECT_FALSE(mem.dcacheProbe(0x5000));
    EXPECT_FALSE(mem.l2Probe(0x5000));
    mem.dataAccess(0x5000, 0, false);
    EXPECT_TRUE(mem.dcacheProbe(0x5000));
    EXPECT_TRUE(mem.l2Probe(0x5000));
    mem.flush();
    EXPECT_FALSE(mem.dcacheProbe(0x5000));
}

TEST(Hierarchy, WritesAllocate)
{
    MemHierarchy mem;
    mem.dataAccess(0x7000, 0, true);
    EXPECT_TRUE(mem.dcacheProbe(0x7000));
    EXPECT_GT(mem.dcache().misses(), 0u);
}

// ---- checkpointing support (sampled simulation) ---------------------

TEST(SparseMemory, SnapshotRestoreDigestRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 0xdeadbeefcafef00dULL, 8);
    m.write(0x7ff123, 0x42, 1);
    const std::uint64_t digest = m.digest();

    const SparseMemory snap = m.snapshot();
    EXPECT_EQ(snap.digest(), digest);
    EXPECT_TRUE(snap == m);

    // Diverge, then restore: digest and equality must round-trip.
    m.write(0x1000, 0, 8);
    m.write(0x2000000, 7, 1);
    EXPECT_NE(m.digest(), digest);
    EXPECT_FALSE(snap == m);

    m.restore(snap);
    EXPECT_EQ(m.digest(), digest);
    EXPECT_TRUE(m == snap);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafef00dULL);
}

TEST(SparseMemory, EqualityDistinguishesAllocatedZeroPages)
{
    // An explicitly written-then-zeroed page is allocated; an
    // untouched one is not. digest() distinguishes them, so equality
    // must too.
    SparseMemory a, b;
    a.write(0x5000, 0, 8);
    EXPECT_EQ(a.numPages(), 1u);
    EXPECT_EQ(b.numPages(), 0u);
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(SparseMemory, PagesExposesAllocatedContents)
{
    SparseMemory m;
    m.write(0x1004, 0x11223344, 4);
    ASSERT_EQ(m.pages().size(), 1u);
    const auto &[page_num, page] = *m.pages().begin();
    EXPECT_EQ(page_num, 0x1004u >> SparseMemory::PageBits);
    EXPECT_EQ(page.size(), SparseMemory::PageSize);
    EXPECT_EQ(page[4], 0x44);
}

TEST(Cache, CopyStateFromReproducesHitsAndLru)
{
    const CacheParams params{"c", 256, 2, 32, 1, 4};
    NextLevelStub next;
    next.latency = 10;
    Cache a(params, &next);
    a.access(0x000, 0, MemAccessKind::Read);
    a.access(0x100, 5, MemAccessKind::Read);

    Cache b(params, &next);
    b.copyStateFrom(a);
    EXPECT_TRUE(b.probe(0x000));
    EXPECT_TRUE(b.probe(0x100));
    EXPECT_EQ(b.misses(), a.misses());

    // Export/import round-trip preserves the tag state.
    Cache c(params, &next);
    EXPECT_TRUE(c.importState(a.exportState()));
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x200));
}

TEST(Hierarchy, CopyStateFromAndSettle)
{
    MemHierarchy a;
    a.dataAccess(0x4000, 0, false);
    a.fetchAccess(0x1000, 0);

    MemHierarchy b;
    b.copyStateFrom(a);
    EXPECT_TRUE(b.dcacheProbe(0x4000));
    EXPECT_TRUE(b.l2Probe(0x4000));
    b.settle();
    EXPECT_TRUE(b.dcacheProbe(0x4000)) << "settle keeps tags";

    MemHierarchy c;
    EXPECT_TRUE(c.importState(a.exportState()));
    EXPECT_TRUE(c.dcacheProbe(0x4000));
    EXPECT_TRUE(c.l2Probe(0x4000));
}

// ---- parameter validation ---------------------------------------------

TEST(CacheValidation, RejectsDegenerateGeometry)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.assoc = 0;
    EXPECT_DEATH(Cache(p, &next), "associativity");

    p = smallCache();
    p.blockBytes = 0;
    EXPECT_DEATH(Cache(p, &next), "power of two");

    p = smallCache();
    p.blockBytes = 48;  // non-power-of-two
    EXPECT_DEATH(Cache(p, &next), "power of two");

    p = smallCache();
    p.numMshrs = 0;
    EXPECT_DEATH(Cache(p, &next), "MSHR");

    p = smallCache();
    p.sizeBytes = 32;  // smaller than one 2-way 32B set
    EXPECT_DEATH(Cache(p, &next), "smaller than one set");
}

TEST(CacheValidation, RejectsBadPrefetcherAndMemoryParams)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.prefetch.kind = PrefetchKind::Stride;
    p.prefetch.tableEntries = 0;
    EXPECT_DEATH(Cache(p, &next), "table");

    p = smallCache();
    p.prefetch.kind = PrefetchKind::NextLine;
    p.prefetch.degree = 0;
    EXPECT_DEATH(Cache(p, &next), "degree");

    MemoryParams m;
    m.busBytes = 0;
    EXPECT_DEATH(MainMemory(m, 64), "bus width");
    m = MemoryParams{};
    m.busClockDivider = 0;
    EXPECT_DEATH(MainMemory(m, 64), "divider");
}

// ---- write-back modeling ----------------------------------------------

TEST(Cache, DirtyVictimCountsWriteback)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);  // writebackTraffic off
    // Write block 0 (set 0), then fill two more set-0 blocks to evict
    // the dirty line.
    Cycle t = c.access(0 * 32, 0, MemAccessKind::Write);
    t = c.access(4 * 32, t, MemAccessKind::Read);
    t = c.access(8 * 32, t, MemAccessKind::Read);
    EXPECT_EQ(c.writebacks(), 1u);
    EXPECT_EQ(next.writebacks, 0u) << "traffic modeling is off";
}

TEST(Cache, WritebackTrafficReachesNextLevel)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.writebackTraffic = true;
    Cache c(p, &next);
    Cycle t = c.access(0 * 32, 0, MemAccessKind::Write);
    t = c.access(4 * 32, t, MemAccessKind::Read);
    t = c.access(8 * 32, t, MemAccessKind::Read);
    EXPECT_EQ(c.writebacks(), 1u);
    ASSERT_EQ(next.writebacks, 1u);
    EXPECT_EQ(next.writebackAddrs[0], 0u) << "victim block address";
    // A clean victim produces no traffic: re-evict a read-only line.
    t = c.access(12 * 32, t, MemAccessKind::Read);
    EXPECT_EQ(next.writebacks, 1u);
}

TEST(Cache, WritebackKindUpdatesInPlaceOrForwards)
{
    NextLevelStub next;
    Cache c(smallCache(), &next);
    c.access(0x1000, 0, MemAccessKind::Read);
    // Present: absorbed by this level, no next-level traffic.
    c.access(0x1000, 100, MemAccessKind::Writeback);
    EXPECT_EQ(next.writebacks, 0u);
    // Absent: forwarded without allocating.
    c.access(0x8000, 100, MemAccessKind::Writeback);
    EXPECT_EQ(next.writebacks, 1u);
    EXPECT_FALSE(c.probe(0x8000));
}

TEST(MainMemory, WritebackOccupiesBusWithoutDramLatency)
{
    MainMemory mem(MemoryParams{}, 64);  // 16 transfer cycles
    const Cycle rd = mem.access(0, 0, MemAccessKind::Read);
    EXPECT_EQ(rd, 0u + 100 + 16);
    // Queued behind the read, transfer only.
    const Cycle wb = mem.access(64, 0, MemAccessKind::Writeback);
    EXPECT_EQ(wb, rd + 16);
    EXPECT_EQ(mem.reads(), 1u);
    EXPECT_EQ(mem.writebacks(), 1u);
}

// ---- prefetchers ------------------------------------------------------

TEST(Prefetch, NextLineFillsAhead)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.sizeBytes = 2048;  // room for the prefetched neighbors
    p.prefetch.kind = PrefetchKind::NextLine;
    p.prefetch.degree = 2;
    Cache c(p, &next);

    c.access(0 * 32, 0, MemAccessKind::Read);  // miss: prefetch 1, 2
    EXPECT_EQ(c.prefetchIssued(), 2u);
    EXPECT_EQ(next.prefetches, 2u);
    EXPECT_TRUE(c.probe(1 * 32));
    EXPECT_TRUE(c.probe(2 * 32));

    // Demand touch of a prefetched line counts it useful, once.
    c.access(1 * 32, 1000, MemAccessKind::Read);
    c.access(1 * 32, 2000, MemAccessKind::Read);
    EXPECT_EQ(c.prefetchUseful(), 1u);
}

TEST(Prefetch, StrideLearnsAndRunsAhead)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.sizeBytes = 4096;
    p.prefetch.kind = PrefetchKind::Stride;
    p.prefetch.degree = 1;
    Cache c(p, &next);

    // Stride of 2 blocks (64B) within one 4KB region: blocks 0, 2,
    // 4, 6. The stride is learned at 2, confirmed at 4 and 6; the
    // second confirmation arms the entry.
    Cycle t = 0;
    t = c.access(0 * 32, t, MemAccessKind::Read);
    t = c.access(2 * 32, t, MemAccessKind::Read);   // stride learned
    t = c.access(4 * 32, t, MemAccessKind::Read);   // one confirmation
    EXPECT_EQ(c.prefetchIssued(), 0u) << "not confident yet";
    t = c.access(6 * 32, t, MemAccessKind::Read);   // armed
    EXPECT_GE(c.prefetchIssued(), 1u);
    EXPECT_TRUE(c.probe(8 * 32)) << "runs one stride ahead";
}

TEST(Prefetch, StrideStatePersistsThroughExportImport)
{
    NextLevelStub next;
    CacheParams p = smallCache();
    p.sizeBytes = 4096;
    p.prefetch.kind = PrefetchKind::Stride;
    p.prefetch.degree = 1;
    Cache a(p, &next);
    Cycle t = 0;
    t = a.access(0 * 32, t, MemAccessKind::Read);
    t = a.access(2 * 32, t, MemAccessKind::Read);
    t = a.access(4 * 32, t, MemAccessKind::Read);

    // Import into a fresh cache: the learned (but not yet armed)
    // stride must carry over, so the next in-stride access arms it
    // there.
    Cache b(p, &next);
    ASSERT_TRUE(b.importState(a.exportState()));
    b.access(6 * 32, t, MemAccessKind::Read);
    EXPECT_GE(b.prefetchIssued(), 1u);
    EXPECT_TRUE(b.probe(8 * 32));

    // And the direct-copy path behaves identically.
    Cache d(p, &next);
    d.copyStateFrom(a);
    d.access(6 * 32, t, MemAccessKind::Read);
    EXPECT_GE(d.prefetchIssued(), 1u);
    EXPECT_TRUE(d.probe(8 * 32));
}

// ---- deeper hierarchies -----------------------------------------------

namespace
{

MemHierarchy::Params
threeLevelParams()
{
    MemHierarchy::Params p;
    CacheParams l3;
    l3.name = "l3";
    l3.sizeBytes = 2 * 1024 * 1024;
    l3.assoc = 8;
    l3.blockBytes = 64;
    l3.latency = 25;
    l3.numMshrs = 32;
    p.extraLevels = {l3};
    return p;
}

} // namespace

TEST(Hierarchy, ThreeLevelStackAddsL3Latency)
{
    MemHierarchy two;
    MemHierarchy three{threeLevelParams()};
    EXPECT_EQ(three.numSharedLevels(), 2u);
    EXPECT_EQ(three.sharedLevel(1).name(), "l3");

    // The cold path through the deeper stack pays the extra level on
    // both the request and the response leg.
    const Cycle cold2 = two.dataAccess(0x10000, 0, false);
    const Cycle cold3 = three.dataAccess(0x10000, 0, false);
    EXPECT_EQ(cold3, cold2 + 2 * 25);

    // The 32B neighbor misses the D$ but hits the shared stack
    // without another memory trip.
    const std::uint64_t mem_reads = three.memory().reads();
    const Cycle warm = three.dataAccess(0x10020, cold3, false);
    EXPECT_EQ(warm, cold3 + 2 + 10 + 2)
        << "D$ miss, L2 hit (same 64B block)";
    EXPECT_EQ(three.memory().reads(), mem_reads);
}

TEST(Hierarchy, DepthMismatchedStateIsRejected)
{
    MemHierarchy two;
    MemHierarchy three{threeLevelParams()};
    two.dataAccess(0x4000, 0, false);
    EXPECT_FALSE(three.importState(two.exportState()));
}

TEST(Hierarchy, ThreeLevelStateRoundTrip)
{
    MemHierarchy::Params params = threeLevelParams();
    params.dcache.prefetch.kind = PrefetchKind::Stride;
    MemHierarchy a{params};
    Cycle t = 0;
    t = a.dataAccess(0x4000, t, false);
    t = a.dataAccess(0x4040, t, true);
    t = a.dataAccess(0x4080, t, false);
    a.fetchAccess(0x1000, 0);

    MemHierarchy b{params};
    ASSERT_TRUE(b.importState(a.exportState()));
    EXPECT_TRUE(b.dcacheProbe(0x4000));
    EXPECT_TRUE(b.l2Probe(0x4000));
    EXPECT_TRUE(b.sharedLevel(1).probe(0x4000));
    // The imported stride table continues the learned pattern: the
    // next in-stride access prefetches in b exactly as it would in a.
    b.settle();
    b.dataAccess(0x40c0, 0, false);
    EXPECT_GE(b.dcache().prefetchIssued(), 1u);
}

TEST(Hierarchy, ModelWritebacksDrainsDirtyVictimsToMemory)
{
    MemHierarchy::Params params;  // paper geometry...
    params.modelWritebacks = true;
    // ...with a tiny direct-mapped D$ so evictions are easy to force.
    params.dcache.sizeBytes = 64;
    params.dcache.assoc = 1;
    params.dcache.blockBytes = 32;
    MemHierarchy mem{params};

    Cycle t = mem.dataAccess(0x0, 0, true);       // dirty block 0
    t = mem.dataAccess(0x40, t, false);           // evicts it (set 0)
    EXPECT_EQ(mem.dcache().writebacks(), 1u);
    // The victim lands in the L2 (which holds the block), not memory.
    EXPECT_EQ(mem.memory().writebacks(), 0u);

    // Force it all the way out: flush the L2 so the drain forwards.
    MemHierarchy::Params deep = params;
    deep.l2.sizeBytes = 128;
    deep.l2.assoc = 1;
    MemHierarchy small{deep};
    t = small.dataAccess(0x0, 0, true);
    // Evict from D$ (set 0) *and* push enough L2 sets to evict the
    // dirty line from the small L2 too.
    t = small.dataAccess(0x40, t, false);
    t = small.dataAccess(0x80, t, false);
    t = small.dataAccess(0xc0, t, false);
    EXPECT_GT(small.dcache().writebacks() + small.l2().writebacks(),
              0u);
}
