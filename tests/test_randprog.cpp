/**
 * @file
 * Property-based tests: randomly generated programs must produce
 * identical architectural state on the functional emulator and on the
 * timing core under every RENO configuration. This is the strongest
 * end-to-end check of the renamer's sharing, rollback and recovery
 * logic.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"
#include "workloads/randprog.hpp"

using namespace reno;

namespace
{

struct StateDigest {
    std::string output;
    std::uint64_t mem;
    std::uint64_t insts;

    bool operator==(const StateDigest &other) const = default;
};

StateDigest
functionalDigest(const Program &prog)
{
    Emulator emu(prog);
    emu.run();
    return {emu.output(), emu.memory().digest(), emu.instCount()};
}

StateDigest
coreDigest(const Program &prog, const CoreParams &params)
{
    Emulator emu(prog);
    Core core(params, emu);
    const SimResult r = core.run();
    EXPECT_TRUE(core.finished());
    return {emu.output(), emu.memory().digest(), r.retired};
}

} // namespace

TEST(RandProg, GeneratorIsDeterministic)
{
    RandProgParams p;
    p.seed = 5;
    EXPECT_EQ(generateRandomProgram(p), generateRandomProgram(p));
    p.seed = 6;
    EXPECT_NE(generateRandomProgram(RandProgParams{}),
              generateRandomProgram(p));
}

TEST(RandProg, GeneratedProgramsAssembleAndTerminate)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RandProgParams p;
        p.seed = seed;
        const Program prog = assemble(generateRandomProgram(p));
        Emulator emu(prog);
        emu.run();
        EXPECT_TRUE(emu.done());
        EXPECT_GT(emu.instCount(), 1000u);
    }
}

class RandProgSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Property, RandProgSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST_P(RandProgSeeds, FullRenoMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, FullIntegrationMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::fullIt();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, TinyRegisterFileMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.iters = 20;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    params.numPregs = 40;
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, NarrowMachineMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.iters = 20;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params = CoreParams::issueReduced(2, 2);
    params.reno = RenoConfig::full();
    params.schedLoop = 2;
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST(RandProg, CyclesAreDeterministicAcrossRuns)
{
    RandProgParams p;
    p.seed = 99;
    const Program prog = assemble(generateRandomProgram(p));
    CoreParams params;
    params.reno = RenoConfig::full();

    Emulator emu_a(prog);
    Core core_a(params, emu_a);
    Emulator emu_b(prog);
    Core core_b(params, emu_b);
    EXPECT_EQ(core_a.run().cycles, core_b.run().cycles);
}
