/**
 * @file
 * Property-based tests: randomly generated programs must produce
 * identical architectural state on the functional emulator and on the
 * timing core under every RENO configuration. This is the strongest
 * end-to-end check of the renamer's sharing, rollback and recovery
 * logic.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"
#include "workloads/randprog.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

struct StateDigest {
    std::string output;
    std::uint64_t mem;
    std::uint64_t insts;

    bool operator==(const StateDigest &other) const = default;
};

StateDigest
functionalDigest(const Program &prog)
{
    Emulator emu(prog);
    emu.run();
    return {emu.output(), emu.memory().digest(), emu.instCount()};
}

StateDigest
coreDigest(const Program &prog, const CoreParams &params)
{
    Emulator emu(prog);
    Core core(params, emu);
    const SimResult r = core.run();
    EXPECT_TRUE(core.finished());
    return {emu.output(), emu.memory().digest(), r.retired};
}

} // namespace

TEST(RandProg, GeneratorIsDeterministic)
{
    RandProgParams p;
    p.seed = 5;
    EXPECT_EQ(generateRandomProgram(p), generateRandomProgram(p));
    p.seed = 6;
    EXPECT_NE(generateRandomProgram(RandProgParams{}),
              generateRandomProgram(p));
}

TEST(RandProg, GeneratedProgramsAssembleAndTerminate)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RandProgParams p;
        p.seed = seed;
        const Program prog = assemble(generateRandomProgram(p));
        Emulator emu(prog);
        emu.run();
        EXPECT_TRUE(emu.done());
        EXPECT_GT(emu.instCount(), 1000u);
    }
}

class RandProgSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Property, RandProgSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST_P(RandProgSeeds, FullRenoMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, FullIntegrationMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::fullIt();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, TinyRegisterFileMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.iters = 20;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    params.numPregs = 40;
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgSeeds, NarrowMachineMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.iters = 20;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params = CoreParams::issueReduced(2, 2);
    params.reno = RenoConfig::full();
    params.schedLoop = 2;
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST(RandProg, CyclesAreDeterministicAcrossRuns)
{
    RandProgParams p;
    p.seed = 99;
    const Program prog = assemble(generateRandomProgram(p));
    CoreParams params;
    params.reno = RenoConfig::full();

    Emulator emu_a(prog);
    Core core_a(params, emu_a);
    Emulator emu_b(prog);
    Core core_b(params, emu_b);
    EXPECT_EQ(core_a.run().cycles, core_b.run().cycles);
}

// ---- phase-switching and pointer-chasing shapes ---------------------

TEST(RandProgShapes, NewShapesAreDeterministicAndDistinct)
{
    RandProgParams base;
    base.seed = 7;

    RandProgParams phased = base;
    phased.phases = 4;
    phased.phasePeriod = 4;

    RandProgParams chasing = base;
    chasing.chaseSteps = 6;

    // Same params, same text; different shapes, different text.
    EXPECT_EQ(generateRandomProgram(phased),
              generateRandomProgram(phased));
    EXPECT_EQ(generateRandomProgram(chasing),
              generateRandomProgram(chasing));
    EXPECT_NE(generateRandomProgram(phased),
              generateRandomProgram(base));
    EXPECT_NE(generateRandomProgram(chasing),
              generateRandomProgram(base));

    // phases = 1 must reproduce the classic program byte for byte
    // (phasePeriod is then meaningless).
    RandProgParams classic = base;
    classic.phasePeriod = 99;
    EXPECT_EQ(generateRandomProgram(classic),
              generateRandomProgram(base));
}

TEST(RandProgShapes, PhaseProgramVisitsEveryPhase)
{
    RandProgParams p;
    p.seed = 3;
    p.phases = 3;
    p.phasePeriod = 2;
    p.iters = 12;
    const std::string src = generateRandomProgram(p);
    for (unsigned phase = 0; phase < 3; ++phase) {
        EXPECT_NE(src.find(strprintf("phase_%u:", phase)),
                  std::string::npos);
    }
    // Dispatch plus bodies: 12 iterations over period 2 rotate
    // through all three phases twice; just run it.
    const Program prog = assemble(src);
    Emulator emu(prog);
    emu.run();
    EXPECT_TRUE(emu.done());
}

class RandProgShapeSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Property, RandProgShapeSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(RandProgShapeSeeds, PhaseSwitchingMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.phases = 4;
    p.phasePeriod = 3;
    p.iters = 30;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgShapeSeeds, PointerChasingMatchesFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.chaseSteps = 8;
    p.iters = 30;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST_P(RandProgShapeSeeds, CombinedShapesMatchFunctional)
{
    RandProgParams p;
    p.seed = GetParam();
    p.phases = 3;
    p.phasePeriod = 2;
    p.chaseSteps = 5;
    p.iters = 20;
    const Program prog = assemble(generateRandomProgram(p));
    const StateDigest ref = functionalDigest(prog);

    CoreParams params;
    params.reno = RenoConfig::full();
    EXPECT_EQ(coreDigest(prog, params), ref);
}

TEST(RandProgShapes, SynthSuiteRegistryIsUsable)
{
    const auto &synth = synthWorkloads();
    ASSERT_EQ(synth.size(), 4u);
    EXPECT_EQ(suiteWorkloads("synth").size(), 4u);
    for (const auto &w : synth) {
        EXPECT_EQ(w.suite, "synth");
        EXPECT_EQ(&workloadByName(w.name), &w);
        // Assembles; registered sources are stable pointers.
        EXPECT_NO_THROW(assemble(w.source));
    }
    // Distinct shapes generate distinct programs.
    EXPECT_STRNE(synthWorkloads()[0].source,
                 synthWorkloads()[1].source);
}
