/**
 * @file
 * Assembler tests: syntax, directives, label resolution, pseudo-op
 * expansion, and error reporting.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/regs.hpp"

using namespace reno;

namespace
{

Instruction
first(const std::string &src)
{
    const Program p = assemble(src);
    EXPECT_GE(p.text.size(), 1u);
    return decode(p.text[0]);
}

} // namespace

TEST(Asm, EmptyProgram)
{
    const Program p = assemble("");
    EXPECT_TRUE(p.text.empty());
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.entry, DefaultTextBase);
}

TEST(Asm, CommentsAndWhitespace)
{
    const Program p = assemble(
        "# full line comment\n"
        "   \t  \n"
        "  add t0, t1, t2   # trailing comment\n"
        "  sub t3, t4, t5   ; semicolon comment\n");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(Asm, RTypeEncoding)
{
    const Instruction i = first("add v0, a0, a1\n");
    EXPECT_EQ(i.op, Opcode::ADD);
    EXPECT_EQ(i.rc, 0);
    EXPECT_EQ(i.ra, 16);
    EXPECT_EQ(i.rb, 17);
}

TEST(Asm, ITypeEncoding)
{
    const Instruction i = first("addi t0, t1, -42\n");
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.imm, -42);
}

TEST(Asm, MemOperands)
{
    const Instruction ld = first("ldq t0, 16(sp)\n");
    EXPECT_EQ(ld.op, Opcode::LDQ);
    EXPECT_EQ(ld.ra, RegSp);
    EXPECT_EQ(ld.imm, 16);
    EXPECT_EQ(ld.rc, 1);

    const Instruction st = first("stb a0, -1(t2)\n");
    EXPECT_EQ(st.op, Opcode::STB);
    EXPECT_EQ(st.rb, 16);
    EXPECT_EQ(st.imm, -1);

    // Empty displacement means zero.
    const Instruction ld2 = first("ldq t0, (sp)\n");
    EXPECT_EQ(ld2.imm, 0);
}

TEST(Asm, BranchTargets)
{
    const Program p = assemble(
        "start:\n"
        "  addi t0, t0, 1\n"
        "  bne t0, start\n");
    const Instruction b = decode(p.text[1]);
    EXPECT_EQ(b.op, Opcode::BNE);
    // Branch displacement is relative to pc + 4 in instruction units:
    // target(start) = pc - 4, so imm = -2.
    EXPECT_EQ(b.imm, -2);
}

TEST(Asm, ForwardReferences)
{
    const Program p = assemble(
        "  beq t0, end\n"
        "  nop\n"
        "end:\n"
        "  nop\n");
    EXPECT_EQ(decode(p.text[0]).imm, 1);
}

TEST(Asm, PseudoMovAndNop)
{
    const Instruction mov = first("mov t0, t1\n");
    EXPECT_TRUE(mov.isMove());
    EXPECT_EQ(mov.rc, 1);
    EXPECT_EQ(mov.ra, 2);

    const Instruction nop = first("nop\n");
    EXPECT_EQ(nop.op, Opcode::ADDI);
    EXPECT_FALSE(nop.hasDest());
}

TEST(Asm, PseudoLiSmallIsOneAddi)
{
    const Program p = assemble("li t0, 1000\n");
    ASSERT_EQ(p.text.size(), 1u);
    const Instruction i = decode(p.text[0]);
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.ra, RegZero);
    EXPECT_EQ(i.imm, 1000);
}

TEST(Asm, PseudoLiLargeIsLuiOri)
{
    const Program p = assemble("li t0, 0x12345678\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(decode(p.text[0]).op, Opcode::LUI);
    EXPECT_EQ(decode(p.text[1]).op, Opcode::ORI);
}

TEST(Asm, PseudoLaResolvesDataLabels)
{
    const Program p = assemble(
        ".data\n"
        "x: .quad 7\n"
        ".text\n"
        "la t0, x\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(p.symbols.at("x"), DefaultDataBase);
}

TEST(Asm, PseudoSubiNegatesImmediate)
{
    const Instruction i = first("subi sp, sp, 16\n");
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.imm, -16);
}

TEST(Asm, PseudoCallRetJ)
{
    const Program p = assemble(
        "f: ret\n"
        "_start:\n"
        "  call f\n"
        "  j f\n");
    const Instruction ret = decode(p.text[0]);
    EXPECT_EQ(ret.op, Opcode::JMP);
    EXPECT_EQ(ret.ra, RegRa);
    const Instruction call = decode(p.text[1]);
    EXPECT_EQ(call.op, Opcode::BSR);
    EXPECT_EQ(call.rc, RegRa);
    EXPECT_EQ(decode(p.text[2]).op, Opcode::BR);
    EXPECT_EQ(p.entry, DefaultTextBase + 4);
}

TEST(Asm, BeqzBnez)
{
    const Program p = assemble(
        "top:\n"
        "  beqz t0, top\n"
        "  bnez t1, top\n");
    EXPECT_EQ(decode(p.text[0]).op, Opcode::BEQ);
    EXPECT_EQ(decode(p.text[1]).op, Opcode::BNE);
}

TEST(Asm, DataDirectives)
{
    const Program p = assemble(
        ".data\n"
        "a: .byte 1, 2, 255\n"
        "b: .word 0x11223344\n"
        "c: .quad -1\n"
        "d: .space 5\n"
        "e: .asciiz \"hi\\n\"\n");
    EXPECT_EQ(p.data.size(), 3u + 4u + 8u + 5u + 4u);
    EXPECT_EQ(p.data[0], 1);
    EXPECT_EQ(p.data[2], 255);
    EXPECT_EQ(p.data[3], 0x44);  // little-endian word
    EXPECT_EQ(p.data[7], 0xff);  // -1 quad
    EXPECT_EQ(p.symbols.at("e"), DefaultDataBase + 20);
    EXPECT_EQ(p.data[20], 'h');
    EXPECT_EQ(p.data[22], '\n');
    EXPECT_EQ(p.data[23], 0);
}

TEST(Asm, AlignPadsData)
{
    const Program p = assemble(
        ".data\n"
        ".byte 1\n"
        ".align 3\n"
        "q: .quad 2\n");
    EXPECT_EQ(p.symbols.at("q"), DefaultDataBase + 8);
    EXPECT_EQ(p.data.size(), 16u);
}

TEST(Asm, QuadWithLabelValue)
{
    const Program p = assemble(
        ".data\n"
        "buf: .space 8\n"
        "ptr: .quad buf\n");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p.data[8 + i]} << (8 * i);
    EXPECT_EQ(v, DefaultDataBase);
}

TEST(Asm, MultipleLabelsOneLine)
{
    const Program p = assemble("a: b: nop\n");
    EXPECT_EQ(p.symbols.at("a"), p.symbols.at("b"));
}

TEST(Asm, LogicalImmediatesZeroExtended)
{
    const Program p = assemble("ori t0, t1, 0xffff\n");
    const Instruction i = decode(p.text[0]);
    EXPECT_EQ(i.op, Opcode::ORI);
    // Stored sign-extended but semantically masked to 16 bits.
    EXPECT_EQ(i.imm & 0xffff, 0xffff);
}

// ---- error cases ----------------------------------------------------

TEST(AsmErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate t0, t1\n"), AsmError);
}

TEST(AsmErrors, UnknownRegister)
{
    EXPECT_THROW(assemble("add t0, t1, r99\n"), AsmError);
}

TEST(AsmErrors, ImmediateOutOfRange)
{
    EXPECT_THROW(assemble("addi t0, t1, 40000\n"), AsmError);
    EXPECT_THROW(assemble("addi t0, t1, -40000\n"), AsmError);
    EXPECT_THROW(assemble("ori t0, t1, -1\n"), AsmError);
}

TEST(AsmErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);
}

TEST(AsmErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(AsmErrors, DataDirectiveInText)
{
    EXPECT_THROW(assemble(".quad 5\n"), AsmError);
}

TEST(AsmErrors, InstructionInData)
{
    EXPECT_THROW(assemble(".data\nadd t0, t1, t2\n"), AsmError);
}

TEST(AsmErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add t0, t1\n"), AsmError);
    EXPECT_THROW(assemble("mov t0\n"), AsmError);
    EXPECT_THROW(assemble("ret t0\n"), AsmError);
}

TEST(AsmErrors, ReportsLineNumber)
{
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(Asm, ProgramInstAt)
{
    const Program p = assemble("nop\nadd t0, t1, t2\n");
    EXPECT_TRUE(p.inText(p.textBase));
    EXPECT_TRUE(p.inText(p.textBase + 4));
    EXPECT_FALSE(p.inText(p.textBase + 8));
    EXPECT_FALSE(p.inText(p.textBase + 2));  // misaligned
    EXPECT_EQ(p.instAt(p.textBase + 4).op, Opcode::ADD);
}
