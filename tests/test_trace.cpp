/**
 * @file
 * Pipeline tracer tests: record capture windows, stage-ordering
 * invariants on real runs, rendering, and the visibility of each RENO
 * optimization in the trace.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "trace/pipetrace.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

const char *const loop_source = R"(
        .data
buf:    .space 256
        .text
_start:
        la   s0, buf
        li   s1, 16
        li   t0, 0
loop:
        slli t1, t0, 3
        add  t2, s0, t1
        stq  t0, 0(t2)
        ldq  t3, 0(t2)
        mov  t4, t3
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, loop
        li   v0, 0
        li   a0, 0
        syscall
)";

struct TraceRun {
    SimResult sim;
    std::vector<PipeRecord> records;
};

TraceRun
traceRun(const char *source, const RenoConfig &reno,
         PipeTracer::Options topts = {})
{
    const Program prog = assemble(source);
    Emulator emu(prog);
    CoreParams params;
    params.reno = reno;
    Core core(params, emu);
    PipeTracer tracer(topts);
    core.setRetireListener(&tracer);
    TraceRun out;
    out.sim = core.run();
    out.records = tracer.records();
    return out;
}

} // namespace

TEST(PipeTracer, CapturesEveryRetiredInstructionByDefault)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::baseline());
    EXPECT_EQ(r.records.size(), r.sim.retired);
}

TEST(PipeTracer, SkipAndCapDefineTheWindow)
{
    PipeTracer::Options topts;
    topts.skipFirst = 10;
    topts.maxRecords = 5;
    const TraceRun r = traceRun(loop_source, RenoConfig::baseline(),
                                topts);
    ASSERT_EQ(r.records.size(), 5u);
    // The window starts right after the skipped prefix, in retire
    // order.
    for (size_t i = 1; i < r.records.size(); ++i)
        EXPECT_GT(r.records[i].seq, r.records[i - 1].seq);
}

TEST(PipeTracer, StageOrderingInvariantsHold)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::full());
    ASSERT_FALSE(r.records.empty());
    for (const PipeRecord &rec : r.records) {
        EXPECT_LE(rec.fetchCycle, rec.renameCycle);
        EXPECT_LE(rec.renameCycle, rec.retireCycle);
        if (rec.eliminated()) {
            // Collapsed instructions never issue.
            EXPECT_EQ(rec.issueCycle, InvalidCycle);
        } else if (rec.issueCycle != InvalidCycle) {
            EXPECT_LE(rec.renameCycle, rec.issueCycle);
            EXPECT_LT(rec.issueCycle, rec.completeCycle);
            EXPECT_LE(rec.completeCycle, rec.retireCycle);
        }
    }
}

TEST(PipeTracer, RetireOrderIsProgramOrder)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::full());
    for (size_t i = 1; i < r.records.size(); ++i) {
        EXPECT_LE(r.records[i - 1].retireCycle, r.records[i].retireCycle);
        EXPECT_LT(r.records[i - 1].seq, r.records[i].seq);
    }
}

TEST(PipeTracer, RenoOutcomesVisibleInTrace)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::full());
    unsigned moves = 0, folds = 0;
    for (const PipeRecord &rec : r.records) {
        if (rec.elim == ElimKind::Move)
            ++moves;
        if (rec.elim == ElimKind::Fold)
            ++folds;
    }
    EXPECT_GT(moves, 0u) << "mov t4, t3 should be ME-collapsed";
    EXPECT_GT(folds, 0u) << "addi t0, t0, 1 should be CF-folded";
}

TEST(PipeTracer, BaselineTraceShowsNoEliminations)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::baseline());
    for (const PipeRecord &rec : r.records)
        EXPECT_EQ(rec.elim, ElimKind::None);
}

TEST(PipeTracer, ClearResetsTheWindow)
{
    PipeTracer tracer;
    DynInst d;
    d.renamed = true;
    tracer.onRetire(d);
    EXPECT_EQ(tracer.records().size(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.records().size(), 0u);
    EXPECT_EQ(tracer.retiredSeen(), 0u);
}

TEST(ElimKindName, AllKindsNamed)
{
    EXPECT_EQ(elimKindName(ElimKind::None), "");
    EXPECT_EQ(elimKindName(ElimKind::Move), "ME");
    EXPECT_EQ(elimKindName(ElimKind::Fold), "CF");
    EXPECT_EQ(elimKindName(ElimKind::Cse), "CSE");
    EXPECT_EQ(elimKindName(ElimKind::Ra), "RA");
}

TEST(RenderPipeLine, MarksStagesAtRelativeCycles)
{
    PipeRecord rec;
    rec.pc = 0x40;
    rec.inst = Instruction::ri(Opcode::ADDI, 2, 1, 8);
    rec.fetchCycle = 100;
    rec.renameCycle = 102;
    rec.issueCycle = 105;
    rec.completeCycle = 106;
    rec.retireCycle = 108;
    const std::string line = renderPipeLine(rec, 100, 16);
    EXPECT_EQ(line[1], 'f');   // offset 0 inside '['
    EXPECT_EQ(line[3], 'r');
    EXPECT_EQ(line[6], 'i');
    EXPECT_EQ(line[7], 'c');
    EXPECT_EQ(line[9], 'R');
}

TEST(RenderPipeLine, CollapsedInstructionShowsNoIssue)
{
    PipeRecord rec;
    rec.inst = Instruction::ri(Opcode::ADDI, 2, 1, 4);
    rec.fetchCycle = 0;
    rec.renameCycle = 2;
    rec.retireCycle = 5;
    rec.elim = ElimKind::Fold;
    rec.destPreg = 7;
    rec.destDisp = 4;
    const std::string line = renderPipeLine(rec, 0, 12);
    const std::string lane = line.substr(1, 12);
    EXPECT_EQ(lane.find('i'), std::string::npos)
        << "no issue mark inside the lane: " << line;
    EXPECT_NE(line.find("CF-collapsed"), std::string::npos);
    EXPECT_NE(line.find("[p7:+4]"), std::string::npos);
}

TEST(RenderPipeLine, MarksOutsideWindowAreClipped)
{
    PipeRecord rec;
    rec.inst = Instruction::ri(Opcode::ADDI, 2, 1, 0);
    rec.fetchCycle = 0;
    rec.renameCycle = 50;   // beyond the 8-column window
    rec.retireCycle = 60;
    const std::string line = renderPipeLine(rec, 0, 8);
    EXPECT_EQ(line.find('r'), std::string::npos);
    EXPECT_EQ(line.find('R'), std::string::npos);
}

TEST(RenderPipeTrace, EmptyTraceRenders)
{
    EXPECT_EQ(renderPipeTrace({}), "(empty trace)\n");
}

TEST(RenderPipeTrace, SummaryCountsEliminations)
{
    const TraceRun r = traceRun(loop_source, RenoConfig::full());
    const std::string out = renderPipeTrace(r.records, 48);
    EXPECT_NE(out.find("collapsed"), std::string::npos);
    // One line per record plus header (2 lines) and footer (1 line).
    const size_t lines = std::count(out.begin(), out.end(), '\n');
    EXPECT_EQ(lines, r.records.size() + 3);
}
