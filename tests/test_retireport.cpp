/**
 * @file
 * Retirement-port drain-queue tests (paper sections 2.2 and 4.3): one
 * data-cache port is shared by retiring stores and re-executing
 * integrated loads. Both drain from a post-retirement queue at one per
 * cycle; commit stalls only when the queue (bounded by the store
 * buffer) is full. Sustained port demand above one per cycle must
 * throttle the machine (the paper's vortex effect), while bursts that
 * fit the queue must retire unimpeded.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

struct CoreRun {
    SimResult sim;
    std::string output;
};

CoreRun
runOnCore(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator emu(prog);
    Core core(params, emu);
    CoreRun out;
    out.sim = core.run();
    out.output = emu.output();
    return out;
}

/** A loop that is nothing but stores: port demand 1 per instruction. */
std::string
storeOnlyLoop(int unroll, int iters)
{
    std::string body;
    for (int i = 0; i < unroll; ++i)
        body += "  stq s0, " + std::to_string(i * 8) + "(s1)\n";
    return
        "  .data\nbuf: .space 512\n  .text\n"
        "  la s1, buf\n  li s0, 7\n  li s2, " + std::to_string(iters) +
        "\nloop:\n" + body +
        "  subi s2, s2, 1\n"
        "  bne s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
}

/** A loop of plain ALU work with one store per iteration. */
std::string
sparseStoreLoop(int alu_per_store, int iters)
{
    std::string body;
    for (int i = 0; i < alu_per_store; ++i)
        body += "  add t" + std::to_string(i % 4) + ", s0, s0\n";
    return
        "  .data\nbuf: .space 64\n  .text\n"
        "  la s1, buf\n  li s0, 7\n  li s2, " + std::to_string(iters) +
        "\nloop:\n" + body +
        "  stq s0, 0(s1)\n"
        "  subi s2, s2, 1\n"
        "  bne s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
}

} // namespace

TEST(RetirePort, StoreOnlyCodeIsPortLimited)
{
    // 8 stores per iteration + 2 overhead instructions: the single
    // drain port caps retirement near one store per cycle.
    const CoreRun r = runOnCore(storeOnlyLoop(8, 500), CoreParams{});
    const double stores_per_cycle =
        double(r.sim.retiredStores) / double(r.sim.cycles);
    EXPECT_GT(stores_per_cycle, 0.80);
    EXPECT_LE(stores_per_cycle, 1.001)
        << "one retirement port: at most one store can drain per cycle";
}

TEST(RetirePort, SparseStoresDoNotStallCommit)
{
    // One store per ~13 instructions: the drain queue never fills, so
    // throughput is set by the integer issue width, not the port.
    const CoreRun r = runOnCore(sparseStoreLoop(12, 500), CoreParams{});
    EXPECT_GT(r.sim.ipc(), 2.0);
}

TEST(RetirePort, BurstWithinQueueCapacityRetiresUnimpeded)
{
    // A loop with a burst of 12 stores (well under the 24-entry store
    // buffer) followed by enough ALU work for the queue to drain. With
    // post-retirement draining, the burst costs no commit stalls, so
    // the loop should run at essentially the same speed as the same
    // loop with the stores replaced by adds.
    auto make = [](bool stores) {
        std::string src =
            "  .data\nbuf: .space 512\n  .text\n"
            "  la s1, buf\n  li s0, 3\n  li s2, 300\n"
            "loop:\n";
        for (int i = 0; i < 12; ++i) {
            src += stores
                ? "  stq s0, " + std::to_string(i * 8) + "(s1)\n"
                : "  add t1, s0, s0\n";
        }
        for (int i = 0; i < 40; ++i)
            src += "  add t0, s0, s0\n";
        src += "  subi s2, s2, 1\n  bne s2, loop\n"
               "  li v0, 0\n  li a0, 0\n  syscall\n";
        return src;
    };
    const CoreRun with_stores = runOnCore(make(true), CoreParams{});
    const CoreRun with_adds = runOnCore(make(false), CoreParams{});
    // 12 port operations against 52-instruction iterations (13 issue
    // cycles at 4-wide): the drain queue hides the burst entirely.
    EXPECT_LT(with_stores.sim.cycles,
              with_adds.sim.cycles * 11 / 10);
}

TEST(RetirePort, IntegratedLoadsShareThePort)
{
    // Store + reload of the same stack slot, repeatedly: with RENO_RA
    // the reloads are eliminated but re-execute at retirement through
    // the same port, so port throughput still bounds the loop.
    std::string src =
        "  .data\nbuf: .space 64\n  .text\n"
        "  la s1, buf\n  li s0, 7\n  li s2, 800\n"
        "loop:\n"
        "  stq  s0, 0(s1)\n"
        "  ldq  t0, 0(s1)\n"
        "  stq  t0, 8(s1)\n"
        "  ldq  t1, 8(s1)\n"
        "  subi s2, s2, 1\n"
        "  bne  s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";

    CoreParams p;
    p.reno = RenoConfig::full();
    const CoreRun r = runOnCore(src, p);
    const std::uint64_t elim_loads = r.sim.elim[3] + r.sim.elim[4];
    EXPECT_GT(elim_loads, 1000u) << "reloads should be bypassed";
    // 2 stores + 2 re-executing loads per iteration = 4 port uses:
    // at one drain per cycle the loop cannot beat 4 cycles/iteration.
    EXPECT_GE(r.sim.cycles, 4 * 800u);
}

TEST(RetirePort, ExitWithPendingDrainsIsClean)
{
    // The program ends immediately after a burst of stores; the run
    // must terminate (drains do not block exit).
    std::string src = "  .data\nbuf: .space 256\n  .text\n"
                      "  la s1, buf\n  li s0, 1\n";
    for (int i = 0; i < 20; ++i)
        src += "  stq s0, " + std::to_string(i * 8) + "(s1)\n";
    src += "  li v0, 0\n  li a0, 0\n  syscall\n";
    const CoreRun r = runOnCore(src, CoreParams{});
    EXPECT_GT(r.sim.retiredStores, 19u);
}
