/**
 * @file
 * Timing-core tests: IPC sanity on microbenchmarks, scheduling-loop
 * and fusion timing, misprediction and cache-miss effects,
 * architectural-state equivalence against the functional emulator for
 * every RENO configuration (parameterized), memory-order violation
 * replay, and resource-pressure behavior.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

/** Assemble + run on the core; returns (result, emulator output). */
struct CoreRun {
    SimResult sim;
    std::string output;
    std::uint64_t memDigest;
};

CoreRun
runOnCore(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator emu(prog);
    Core core(params, emu);
    CoreRun out;
    out.sim = core.run();
    out.output = emu.output();
    out.memDigest = emu.memory().digest();
    return out;
}

std::string
independentAddsLoop(int unroll)
{
    std::string body;
    for (int i = 0; i < unroll; ++i)
        body += "  add t" + std::to_string(i % 8) + ", s0, s1\n";
    return
        "  li s0, 1\n  li s1, 2\n  li s2, 2000\n"
        "loop:\n" + body +
        "  subi s2, s2, 1\n"
        "  bne s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
}

const char *const dependentChain =
    "  li t0, 0\n  li s2, 2000\n"
    "loop:\n"
    "  addi t0, t0, 1\n"
    "  add  t0, t0, t0\n"
    "  sub  t0, t0, t0\n"
    "  add  t0, t0, s2\n"
    "  sub  t0, t0, s2\n"
    "  subi s2, s2, 1\n"
    "  bne s2, loop\n"
    "  li v0, 0\n  li a0, 0\n  syscall\n";

const char *const exitOnly = "  li v0, 0\n  li a0, 0\n  syscall\n";

} // namespace

TEST(Core, IndependentOpsReachIssueWidth)
{
    CoreParams p;  // 3 int issue slots
    const CoreRun r = runOnCore(independentAddsLoop(8), p);
    EXPECT_GT(r.sim.ipc(), 2.3) << "independent adds should flow at "
                                   "nearly the integer issue width";
}

TEST(Core, DependentChainSerializes)
{
    // Five serial single-cycle ops plus loop control per iteration:
    // the dependence chain, not the 3-wide integer issue, sets IPC
    // (7 instructions over ~5 chain cycles).
    CoreParams p;
    const CoreRun r = runOnCore(dependentChain, p);
    EXPECT_LT(r.sim.ipc(), 1.5);
    EXPECT_GT(r.sim.ipc(), 0.8);
}

TEST(Core, TwoCycleSchedulerSlowsDependentChains)
{
    CoreParams fast, slow;
    slow.schedLoop = 2;
    const CoreRun f = runOnCore(dependentChain, fast);
    const CoreRun s = runOnCore(dependentChain, slow);
    EXPECT_GT(s.sim.cycles, f.sim.cycles * 3 / 2)
        << "back-to-back dependent ops take 2 cycles each";
    // Independent work is much less affected.
    const CoreRun fi = runOnCore(independentAddsLoop(8), fast);
    const CoreRun si = runOnCore(independentAddsLoop(8), slow);
    EXPECT_LT(si.sim.cycles, fi.sim.cycles * 5 / 4);
}

TEST(Core, SixWideBeatsfourWideOnParallelCode)
{
    const CoreRun w4 = runOnCore(independentAddsLoop(12),
                                 CoreParams::fourWide());
    const CoreRun w6 = runOnCore(independentAddsLoop(12),
                                 CoreParams::sixWide());
    EXPECT_LT(w6.sim.cycles, w4.sim.cycles);
}

TEST(Core, MispredictionsCostCycles)
{
    // A data-dependent unpredictable branch vs a fixed one.
    const char *unpredictable =
        "  li s2, 3000\n"
        "loop:\n"
        "  li v0, 5\n  syscall\n"
        "  andi t0, v0, 1\n"
        "  beq t0, skip\n"
        "  nop\n"
        "skip:\n"
        "  subi s2, s2, 1\n"
        "  bne s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const char *predictable =
        "  li s2, 3000\n"
        "loop:\n"
        "  li v0, 5\n  syscall\n"
        "  andi t0, v0, 1\n"
        "  beq zero, skip\n"
        "  nop\n"
        "skip:\n"
        "  subi s2, s2, 1\n"
        "  bne s2, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    const CoreRun u = runOnCore(unpredictable, p);
    const CoreRun d = runOnCore(predictable, p);
    EXPECT_GT(u.sim.bpMispredicts, d.sim.bpMispredicts + 1000);
    EXPECT_GT(u.sim.cycles, d.sim.cycles + 4000)
        << "~1400 mispredicts at >= ~8 cycles each";
}

TEST(Core, CacheMissesCostCycles)
{
    // Walk 256KB (fits in L2, misses 32KB D$) vs walk 4KB.
    const char *big =
        ".data\nbuf: .space 262144\n.text\n"
        "  la s0, buf\n  li s1, 8192\n"
        "loop:\n"
        "  ldq t0, 0(s0)\n"
        "  addi s0, s0, 32\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const char *small =
        ".data\nbuf: .space 4096\n.text\n"
        "  la s0, buf\n  li s1, 8192\n  li s2, 0\n"
        "loop:\n"
        "  andi s2, s1, 127\n"
        "  slli s2, s2, 5\n"
        "  la s0, buf\n"
        "  add s0, s0, s2\n"
        "  ldq t0, 0(s0)\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    const CoreRun b = runOnCore(big, p);
    const CoreRun s = runOnCore(small, p);
    EXPECT_GT(b.sim.dcacheMisses, 7000u);
    EXPECT_LT(s.sim.dcacheMisses, 300u);
}

// ---- equivalence across configurations (parameterized) -----------------

struct ConfigCase {
    const char *name;
    RenoConfig config;
};

class CoreEquivalence : public ::testing::TestWithParam<ConfigCase>
{
};

INSTANTIATE_TEST_SUITE_P(
    Core, CoreEquivalence,
    ::testing::Values(
        ConfigCase{"base", RenoConfig::baseline()},
        ConfigCase{"me", RenoConfig::meOnly()},
        ConfigCase{"mecf", RenoConfig::meCf()},
        ConfigCase{"reno", RenoConfig::full()},
        ConfigCase{"fullit", RenoConfig::fullIt()},
        ConfigCase{"integ", RenoConfig::integrationOnly()},
        ConfigCase{"loadsinteg", RenoConfig::loadsIntegrationOnly()}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.name;
    });

TEST_P(CoreEquivalence, MatchesEmulatorState)
{
    // A program exercising calls, stack traffic, redundant loads,
    // moves, folded additions and stores.
    const char *src = R"(
        .data
arr:    .space 1024
        .text
helper:
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        mov  s0, a0
        slli t0, s0, 3
        andi t0, t0, 1016
        la   t1, arr
        add  t1, t1, t0
        ldq  t2, 0(t1)
        add  t2, t2, s0
        stq  t2, 0(t1)
        ldq  t3, 0(t1)
        mov  v0, t3
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        addi sp, sp, 16
        ret
_start:
        li   s1, 300
        li   s2, 0
loop:
        mov  a0, s1
        subi sp, sp, 8
        stq  ra, 0(sp)
        call helper
        ldq  ra, 0(sp)
        addi sp, sp, 8
        add  s2, s2, v0
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s2
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();

    CoreParams params;
    params.reno = GetParam().config;
    const CoreRun run = runOnCore(src, params);

    EXPECT_EQ(run.output, ref.output());
    EXPECT_EQ(run.memDigest, ref.memory().digest());
    EXPECT_EQ(run.sim.retired, ref.instCount());
}

TEST_P(CoreEquivalence, SmallRegisterFileStillCorrect)
{
    CoreParams params;
    params.reno = GetParam().config;
    params.numPregs = 40;  // extreme pressure
    const char *src =
        "  li s1, 200\n  li s2, 0\n"
        "loop:\n"
        "  mov t0, s1\n"
        "  addi t1, t0, 3\n"
        "  addi t2, t1, 4\n"
        "  add  s2, s2, t2\n"
        "  mul  t3, t2, t1\n"
        "  xor  s2, s2, t3\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  mov a0, s2\n  li v0, 1\n  syscall\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();
    const CoreRun run = runOnCore(src, params);
    EXPECT_EQ(run.output, ref.output());
}

// ---- RENO-specific timing behaviors -------------------------------------

TEST(CoreReno, EliminationImprovesRenoFriendlyLoop)
{
    const char *src =
        "  li s1, 3000\n  li s2, 0\n"
        "loop:\n"
        "  mov t0, s2\n"
        "  addi t1, t0, 1\n"
        "  addi t2, t1, 1\n"
        "  addi t3, t2, 1\n"
        "  add  s2, s2, t3\n"
        "  andi s2, s2, 4095\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams base;
    CoreParams reno;
    reno.reno = RenoConfig::full();
    const CoreRun b = runOnCore(src, base);
    const CoreRun r = runOnCore(src, reno);
    EXPECT_LT(r.sim.cycles, b.sim.cycles);
    EXPECT_GT(r.sim.elimFraction(), 0.3);
}

TEST(CoreReno, EliminatedInstructionsStillRetire)
{
    CoreParams reno;
    reno.reno = RenoConfig::full();
    const CoreRun r = runOnCore(
        "  mov t0, s0\n  mov t1, t0\n" + std::string(exitOnly), reno);
    EXPECT_EQ(r.sim.retired, 5u);
}

TEST(CoreReno, FusionPenaltyAblationCostsCycles)
{
    // Folded addi feeding a dependent add chain: free with 3-input
    // adders, one cycle per op without.
    const char *src =
        "  li s1, 3000\n  li t0, 0\n"
        "loop:\n"
        "  addi t1, t0, 8\n"
        "  add  t0, t1, s1\n"
        "  sub  t0, t0, s1\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams free_fusion;
    free_fusion.reno = RenoConfig::meCf();
    CoreParams slow_fusion = free_fusion;
    slow_fusion.freeAddAddFusion = false;
    const CoreRun f = runOnCore(src, free_fusion);
    const CoreRun s = runOnCore(src, slow_fusion);
    EXPECT_GT(s.sim.cycles, f.sim.cycles);
}

TEST(CoreReno, ShiftFusionAlwaysPaysACycle)
{
    // Folded addi feeding a shift: the shifter has only a 2-input
    // adder prepended, costing one cycle (paper section 3.3).
    const char *src =
        "  li s1, 3000\n  li t0, 0\n"
        "loop:\n"
        "  addi t1, t0, 3\n"
        "  sll  t0, t1, s1\n"
        "  srl  t0, t0, s1\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams mecf;
    mecf.reno = RenoConfig::meCf();
    CoreParams base;
    const CoreRun r = runOnCore(src, mecf);
    const CoreRun b = runOnCore(src, base);
    // Still correct and still profitable or neutral overall.
    EXPECT_GT(r.sim.elimFraction(), 0.1);
    (void)b;
}

TEST(CoreReno, ViolationReplayStaysCorrect)
{
    // A store whose address is computed late, followed immediately by
    // a load of the same address: aggressive scheduling issues the
    // load first, the store's execution flushes it, and store sets
    // learn to serialize.
    const char *src = R"(
        .data
buf:    .space 256
        .text
_start:
        la   s0, buf
        li   s1, 2000
        li   s3, 0
loop:
        mul  t0, s1, s1       # slow address computation
        andi t0, t0, 24
        add  t1, s0, t0
        stq  s1, 0(t1)        # store to computed address
        andi t2, s1, 24
        add  t3, s0, t2
        ldq  t4, 0(t3)        # frequently overlaps the store
        add  s3, s3, t4
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s3
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();
    CoreParams p;
    p.reno = RenoConfig::full();
    const CoreRun r = runOnCore(src, p);
    EXPECT_EQ(r.output, ref.output());
    EXPECT_GT(r.sim.violationSquashes, 0u);
}

TEST(CoreReno, MisintegrationFlushStaysCorrect)
{
    // Store X to a slot, reload (integrates), store Y to the same
    // slot from a different pc, reload again: the second reload can
    // match the stale tuple and must be flushed and re-executed.
    const char *src = R"(
        .data
slot:   .space 64
        .text
_start:
        la   s0, slot
        li   s1, 500
        li   s3, 0
loop:
        stq  s1, 8(s0)
        ldq  t0, 8(s0)
        add  s3, s3, t0
        addi t1, s1, 7
        stq  t1, 8(s0)
        ldq  t2, 8(s0)
        add  s3, s3, t2
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s3
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();
    CoreParams p;
    p.reno = RenoConfig::full();
    const CoreRun r = runOnCore(src, p);
    EXPECT_EQ(r.output, ref.output());
}

TEST(Core, SyscallsSerializeButStayCorrect)
{
    const char *src =
        "  li s1, 50\n"
        "loop:\n"
        "  li v0, 1\n  mov a0, s1\n  syscall\n"
        "  li v0, 3\n  li a0, 32\n  syscall\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const Program prog = assemble(src);
    Emulator ref(prog);
    ref.run();
    const CoreRun r = runOnCore(src, CoreParams{});
    EXPECT_EQ(r.output, ref.output());
}

TEST(Core, TrivialProgramFinishes)
{
    const CoreRun r = runOnCore(exitOnly, CoreParams{});
    EXPECT_EQ(r.sim.retired, 3u);
    EXPECT_GT(r.sim.cycles, 0u);
    EXPECT_LT(r.sim.cycles, 400u);
}

TEST(Core, ResultSnapshotConsistent)
{
    const Program prog = assemble(exitOnly);
    Emulator emu(prog);
    Core core(CoreParams{}, emu);
    const SimResult r = core.run();
    EXPECT_EQ(r.retired, core.result().retired);
    EXPECT_TRUE(core.finished());
}

TEST(CoreDeath, TooFewPregsRejected)
{
    const Program prog = assemble("nop\n");
    Emulator emu(prog);
    CoreParams p;
    p.numPregs = 16;
    EXPECT_EXIT((Core{p, emu}), ::testing::ExitedWithCode(1),
                "numPregs");
}
