/**
 * @file
 * Workload-suite integration tests: every kernel assembles, runs
 * deterministically on the emulator, produces matching architectural
 * state on the timing core with full RENO (parameterized over all 27
 * kernels), and exhibits sane instruction mixes.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hpp"

using namespace reno;

TEST(Workloads, RegistryShape)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 34u);
    EXPECT_EQ(suiteWorkloads("spec").size(), 16u);
    EXPECT_EQ(suiteWorkloads("media").size(), 18u);
    for (const auto &w : all) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_TRUE(w.suite == "spec" || w.suite == "media");
        EXPECT_NE(w.source, nullptr);
    }
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workloadByName("gzip").suite, "spec");
    EXPECT_EQ(workloadByName("adpcm.enc").suite, "media");
}

TEST(Workloads, EmulatorRunsAreDeterministic)
{
    const Workload &w = workloadByName("gcc");
    const RunOutput a = runFunctional(w);
    const RunOutput b = runFunctional(w);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.memDigest, b.memDigest);
    EXPECT_EQ(a.emuInsts, b.emuInsts);
    EXPECT_FALSE(a.output.empty());
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &workload() const { return workloadByName(
        GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Workloads, EveryWorkload,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

TEST_P(EveryWorkload, FullRenoMatchesFunctionalState)
{
    const RunOutput ref = runFunctional(workload());
    CoreParams params;
    params.reno = RenoConfig::full();
    const RunOutput run = runWorkload(workload(), params);
    EXPECT_EQ(run.output, ref.output);
    EXPECT_EQ(run.memDigest, ref.memDigest);
    EXPECT_EQ(run.sim.retired, ref.emuInsts);
}

TEST_P(EveryWorkload, ReasonableSizeAndMix)
{
    const RunOutput ref = runFunctional(workload());
    // Big enough to be a meaningful benchmark, small enough for the
    // suite to stay fast.
    EXPECT_GT(ref.emuInsts, 100'000u);
    EXPECT_LT(ref.emuInsts, 3'000'000u);
}

TEST_P(EveryWorkload, RenoEliminatesSomething)
{
    CoreParams params;
    params.reno = RenoConfig::full();
    const RunOutput run = runWorkload(workload(), params);
    // Every kernel has loop control and address arithmetic; RENO must
    // find at least a few percent to collapse.
    EXPECT_GT(run.sim.elimFraction(), 0.02)
        << workload().name << " eliminated too little";
    EXPECT_LT(run.sim.elimFraction(), 0.60);
}

TEST(Workloads, SuiteAveragesInPaperBand)
{
    // The paper reports ~22% of dynamic instructions eliminated or
    // folded on average, with RENO_CF alone at 12% (SPEC) and 16%
    // (MediaBench). Shapes, not exact values: check generous bands.
    for (const char *suite : {"spec", "media"}) {
        std::vector<double> total, cf;
        for (const Workload *w : suiteWorkloads(suite)) {
            CoreParams params;
            params.reno = RenoConfig::full();
            const RunOutput run = runWorkload(*w, params);
            total.push_back(run.sim.elimFraction());
            cf.push_back(run.sim.elimFraction(ElimKind::Fold));
        }
        EXPECT_GT(amean(total), 0.10) << suite;
        EXPECT_LT(amean(total), 0.35) << suite;
        EXPECT_GT(amean(cf), 0.06) << suite;
    }
}

TEST(Workloads, InputVariantsShareCodeButDifferInData)
{
    // The paper's per-input bars (eon.c/k/r, perl.d/s, ...) are the
    // same kernel on a different input stream: identical static code,
    // different dynamic behavior, all state-checked.
    const Workload &c = workloadByName("eon.c");
    const Workload &k = workloadByName("eon.k");
    EXPECT_EQ(c.source, k.source) << "same kernel text";
    EXPECT_NE(c.seed, k.seed);

    const RunOutput out_c = runFunctional(c);
    const RunOutput out_k = runFunctional(k);
    EXPECT_NE(out_c.output, out_k.output)
        << "different inputs should produce different results";
}

TEST(Workloads, VariantSeedsReachTheTimingCore)
{
    // The timing core must simulate the same input stream the
    // functional reference consumed (seed plumbed through runWorkload).
    const Workload &w = workloadByName("perl.s");
    const RunOutput ref = runFunctional(w);
    CoreParams params;
    params.reno = RenoConfig::full();
    const RunOutput run = runWorkload(w, params);
    EXPECT_EQ(run.output, ref.output);
    EXPECT_EQ(run.memDigest, ref.memDigest);
}

// ---- the generated memory-bound suite --------------------------------

TEST(MemSuite, RegistryAndFunctionalDeterminism)
{
    const auto mem = suiteWorkloads("mem");
    EXPECT_EQ(mem.size(), 7u);
    for (const SuiteInfo &s : knownSuites()) {
        if (s.name == "mem")
            EXPECT_FALSE(s.paper) << "mem is generated, not swept by "
                                     "default";
    }
    for (const Workload *w : mem) {
        const RunOutput a = runFunctional(*w);
        const RunOutput b = runFunctional(*w);
        EXPECT_EQ(a.output, b.output) << w->name;
        EXPECT_EQ(a.memDigest, b.memDigest) << w->name;
        EXPECT_FALSE(a.output.empty()) << w->name;
        EXPECT_GT(a.emuInsts, 400'000u)
            << w->name << " should be a long-running kernel";
    }
}

TEST(MemSuite, TimingCoreMatchesFunctionalState)
{
    // Memory-bound kernels through the full detailed core (RENO on):
    // architectural results must match the functional emulator. One
    // representative per kernel family keeps the test fast.
    for (const char *name :
         {"mem.stream.32k", "mem.chase.64k", "mem.tile.mm"}) {
        const Workload &w = workloadByName(name);
        const RunOutput ref = runFunctional(w);
        CoreParams params;
        params.reno = RenoConfig::full();
        const RunOutput run = runWorkload(w, params);
        EXPECT_EQ(run.output, ref.output) << name;
        EXPECT_EQ(run.memDigest, ref.memDigest) << name;
        EXPECT_GT(run.sim.cycles, 0u) << name;
    }
}

TEST(MemSuite, FootprintsStressTheIntendedLevels)
{
    // The 32 KB stream stays D$-resident after the first pass; the
    // 1 MB one spills past the 512 KB L2 every pass.
    CoreParams params;
    const RunOutput small =
        runWorkload(workloadByName("mem.stream.32k"), params);
    const RunOutput big =
        runWorkload(workloadByName("mem.stream.1m"), params);
    const double small_mr =
        double(small.sim.dcacheMisses) /
        double(small.sim.retiredLoads + small.sim.retiredStores);
    const double big_mr =
        double(big.sim.dcacheMisses) /
        double(big.sim.retiredLoads + big.sim.retiredStores);
    EXPECT_LT(small_mr, 0.02);
    EXPECT_GT(big_mr, 10 * small_mr);
    EXPECT_GT(big.sim.l2Misses, big.sim.retired / 100)
        << "the 1 MB stream must miss the L2 heavily";
}

TEST(Workloads, GlobMatchingSelectsAcrossSuites)
{
    EXPECT_EQ(workloadsMatching("mem.*").size(), 7u);
    EXPECT_EQ(workloadsMatching("branch.*").size(), 6u);
    EXPECT_EQ(workloadsMatching("mem.stream.*").size(), 3u);
    EXPECT_EQ(workloadsMatching("gzip").size(), 1u);
    EXPECT_EQ(workloadsMatching("*.dec").size(), 6u);
    EXPECT_EQ(workloadsMatching("synth.?????").size(), 3u)
        << "exactly the five-letter tails: plain, phase, chase";
    EXPECT_DEATH(workloadsMatching("no-such-*"), "matches no");
}

TEST(BranchSuite, RegistryAndFunctionalDeterminism)
{
    const auto branch = suiteWorkloads("branch");
    EXPECT_EQ(branch.size(), 6u);
    for (const SuiteInfo &s : knownSuites()) {
        if (s.name == "branch")
            EXPECT_FALSE(s.paper)
                << "branch is generated, not swept by default";
    }
    for (const Workload *w : branch) {
        const RunOutput a = runFunctional(*w);
        const RunOutput b = runFunctional(*w);
        EXPECT_EQ(a.output, b.output) << w->name;
        EXPECT_EQ(a.memDigest, b.memDigest) << w->name;
        EXPECT_FALSE(a.output.empty()) << w->name;
        EXPECT_GT(a.emuInsts, 1'000'000u)
            << w->name << " should be a long-running kernel";
    }
}

TEST(BranchSuite, TimingCoreMatchesFunctionalState)
{
    // Front-end-bound kernels through the full detailed core (RENO
    // on): architectural results must match the functional emulator.
    // The call and indirect kernels exercise the paths the paper
    // suites never reach (recursion through the RAS, megamorphic
    // dispatch through the BTB).
    for (const char *name : {"branch.call", "branch.ind"}) {
        const Workload &w = workloadByName(name);
        const RunOutput ref = runFunctional(w);
        CoreParams params;
        params.reno = RenoConfig::full();
        const RunOutput run = runWorkload(w, params);
        EXPECT_EQ(run.output, ref.output) << name;
        EXPECT_EQ(run.memDigest, ref.memDigest) << name;
        EXPECT_GT(run.sim.cycles, 0u) << name;
    }
}

TEST(BranchSuite, KernelsIsolateFailureModes)
{
    const CoreParams base;

    // bias: nearly every branch predictable by any per-PC counter.
    const RunOutput bias =
        runWorkload(workloadByName("branch.bias"), base);
    EXPECT_LT(double(bias.sim.bpMispredicts),
              0.05 * double(bias.sim.bpLookups));

    // alt: alternation defeats a history-less bimodal, not the
    // default tournament.
    CoreParams bimodal = base;
    ASSERT_TRUE(applyBpredVariant("bimodal", &bimodal));
    const Workload &alt = workloadByName("branch.alt");
    const RunOutput alt_tour = runWorkload(alt, base);
    const RunOutput alt_bim = runWorkload(alt, bimodal);
    EXPECT_GT(alt_bim.sim.bpDirMispredicts,
              100 * std::max<std::uint64_t>(
                        alt_tour.sim.bpDirMispredicts, 1));

    // call: depth 24 overflows a 16-entry RAS, not the default 32.
    CoreParams ras16 = base;
    ASSERT_TRUE(applyBpredVariant("ras16", &ras16));
    const Workload &call = workloadByName("branch.call");
    const RunOutput call_deep = runWorkload(call, base);
    const RunOutput call_shallow = runWorkload(call, ras16);
    EXPECT_EQ(call_deep.sim.bpRasMispredicts, 0u);
    EXPECT_GT(call_shallow.sim.bpRasMispredicts, 1000u);
    EXPECT_GT(call_shallow.sim.bpRasOverflows, 0u);

    // ind: the rotating dispatch defeats the last-target BTB; the
    // indirect-target table recovers it.
    CoreParams itt = base;
    ASSERT_TRUE(applyBpredVariant("itt", &itt));
    const Workload &ind = workloadByName("branch.ind");
    const RunOutput ind_btb = runWorkload(ind, base);
    const RunOutput ind_itt = runWorkload(ind, itt);
    EXPECT_GT(ind_btb.sim.bpTargetMispredicts, 100'000u);
    EXPECT_LT(ind_itt.sim.bpTargetMispredicts, 1000u);
    EXPECT_LT(ind_itt.sim.cycles, ind_btb.sim.cycles / 2);
}
