/**
 * @file
 * Store-set predictor tests: violation training, set assignment and
 * merging, and LFST tracking.
 */
#include <gtest/gtest.h>

#include "uarch/store_sets.hpp"

using namespace reno;

TEST(StoreSets, UntrainedPredictsNothing)
{
    StoreSets ss(256, 8);
    EXPECT_EQ(ss.setOf(0x1000), StoreSets::InvalidSet);
    EXPECT_EQ(ss.storeDispatched(0x2000, 5), StoreSets::InvalidSet);
}

TEST(StoreSets, ViolationAssignsBothToOneSet)
{
    StoreSets ss(256, 8);
    ss.trainViolation(0x1000, 0x2000);
    const unsigned load_set = ss.setOf(0x1000);
    const unsigned store_set = ss.setOf(0x2000);
    EXPECT_NE(load_set, StoreSets::InvalidSet);
    EXPECT_EQ(load_set, store_set);
    EXPECT_EQ(ss.violationsTrained(), 1u);
}

TEST(StoreSets, LfstTracksLastStore)
{
    StoreSets ss(256, 8);
    ss.trainViolation(0x1000, 0x2000);
    const unsigned set = ss.setOf(0x2000);
    EXPECT_FALSE(ss.hasLastStore(set));
    ss.storeDispatched(0x2000, 42);
    ASSERT_TRUE(ss.hasLastStore(set));
    EXPECT_EQ(ss.lastStore(set), 42u);
    // A newer store of the same set replaces it.
    ss.storeDispatched(0x2000, 50);
    EXPECT_EQ(ss.lastStore(set), 50u);
    // Clearing with a stale seq is a no-op.
    ss.storeInactive(set, 42);
    EXPECT_TRUE(ss.hasLastStore(set));
    ss.storeInactive(set, 50);
    EXPECT_FALSE(ss.hasLastStore(set));
}

TEST(StoreSets, SecondViolationJoinsExistingSet)
{
    StoreSets ss(256, 8);
    ss.trainViolation(0x1000, 0x2000);
    // A second store conflicts with the same load.
    ss.trainViolation(0x1000, 0x3000);
    EXPECT_EQ(ss.setOf(0x3000), ss.setOf(0x1000));
    // A second load conflicts with the first store.
    ss.trainViolation(0x4000, 0x2000);
    EXPECT_EQ(ss.setOf(0x4000), ss.setOf(0x2000));
}

TEST(StoreSets, MergeReassignsLoad)
{
    StoreSets ss(256, 8);
    // Distinct pcs within one SSIT span (0x1000 and 0x3000 would
    // alias in a 256-entry table).
    ss.trainViolation(0x1000, 0x1004);  // set A
    ss.trainViolation(0x1008, 0x100c);  // set B
    EXPECT_NE(ss.setOf(0x1000), ss.setOf(0x1008));
    // Cross violation merges the load into the store's set.
    ss.trainViolation(0x1000, 0x100c);
    EXPECT_EQ(ss.setOf(0x1000), ss.setOf(0x100c));
}

TEST(StoreSets, InvalidSetOperationsAreSafe)
{
    StoreSets ss(256, 8);
    ss.storeInactive(StoreSets::InvalidSet, 1);
    EXPECT_FALSE(ss.hasLastStore(StoreSets::InvalidSet));
}

TEST(StoreSets, SetIdsCycleThroughCapacity)
{
    StoreSets ss(4096, 4);
    // Many independent violations: set ids wrap around num_sets.
    for (unsigned i = 0; i < 8; ++i)
        ss.trainViolation(0x10000 + i * 8, 0x20000 + i * 8);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_LT(ss.setOf(0x10000 + i * 8), 4u);
}
