/**
 * @file
 * Harness tests: configuration presets, speedup math, and the
 * one-call workload runner.
 */
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

using namespace reno;

TEST(Harness, RenoBuildupNamesAndFlags)
{
    const auto configs = renoBuildup(CoreParams::fourWide());
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].name, "BASE");
    EXPECT_FALSE(configs[0].params.reno.any());
    EXPECT_EQ(configs[1].name, "ME");
    EXPECT_TRUE(configs[1].params.reno.me);
    EXPECT_FALSE(configs[1].params.reno.cf);
    EXPECT_EQ(configs[2].name, "ME+CF");
    EXPECT_TRUE(configs[2].params.reno.cf);
    EXPECT_FALSE(configs[2].params.reno.usesIt());
    EXPECT_EQ(configs[3].name, "RENO");
    EXPECT_TRUE(configs[3].params.reno.usesIt());
    EXPECT_TRUE(configs[3].params.reno.itLoadsOnly);
}

TEST(Harness, DivisionOfLaborConfigs)
{
    const auto configs = divisionOfLabor(CoreParams::fourWide());
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_TRUE(configs[0].params.reno.cf);
    EXPECT_TRUE(configs[0].params.reno.itLoadsOnly);
    EXPECT_TRUE(configs[1].params.reno.cf);
    EXPECT_FALSE(configs[1].params.reno.itLoadsOnly);
    EXPECT_FALSE(configs[2].params.reno.cf);
    EXPECT_FALSE(configs[2].params.reno.itLoadsOnly);
    EXPECT_FALSE(configs[3].params.reno.cf);
    EXPECT_TRUE(configs[3].params.reno.itLoadsOnly);
}

TEST(Harness, PaperMachinePresets)
{
    const CoreParams four = CoreParams::fourWide();
    EXPECT_EQ(four.fetchWidth, 4u);
    EXPECT_EQ(four.issue.intOps, 3u);
    EXPECT_EQ(four.robEntries, 128u);
    EXPECT_EQ(four.iqEntries, 50u);
    EXPECT_EQ(four.lqEntries, 48u);
    EXPECT_EQ(four.sqEntries, 24u);
    EXPECT_EQ(four.numPregs, 160u);

    const CoreParams six = CoreParams::sixWide();
    EXPECT_EQ(six.fetchWidth, 6u);
    EXPECT_EQ(six.issue.intOps, 4u);
    EXPECT_EQ(six.issue.loads, 2u);

    const CoreParams i2t3 = CoreParams::issueReduced(2, 3);
    EXPECT_EQ(i2t3.issue.intOps, 2u);
    EXPECT_EQ(i2t3.issue.total, 3u);
}

TEST(Harness, SpeedupPercent)
{
    EXPECT_NEAR(speedupPercent(110, 100), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(speedupPercent(100, 100), 0.0);
    EXPECT_NEAR(speedupPercent(100, 110), -9.09, 0.01);
    EXPECT_DOUBLE_EQ(speedupPercent(100, 0), 0.0);
}

TEST(Harness, Amean)
{
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
}

TEST(Harness, RunWorkloadEndToEnd)
{
    const Workload &w = workloadByName("jpeg.enc");
    const RunOutput ref = runFunctional(w);
    CoreParams params;
    params.reno = RenoConfig::full();
    CriticalPathAnalyzer cpa(1'000'000, params.robEntries,
                             params.iqEntries);
    const RunOutput run = runWorkload(w, params, &cpa);
    EXPECT_EQ(run.output, ref.output);
    EXPECT_EQ(run.emuInsts, ref.emuInsts);
    EXPECT_GT(run.sim.cycles, 0u);
    EXPECT_GT(cpa.totalWeight(), 0u);
}

TEST(Harness, WithRenoAppliesConfig)
{
    const CoreParams p =
        withReno(CoreParams::fourWide(), RenoConfig::meCf());
    EXPECT_TRUE(p.reno.me);
    EXPECT_TRUE(p.reno.cf);
    EXPECT_FALSE(p.reno.cse);
}

TEST(Harness, MemVariantSuffixesComposeOnPresets)
{
    const CoreParams base = CoreParams::fourWide();
    NamedConfig cfg;

    ASSERT_TRUE(configByName("RENO/l3", base, &cfg));
    EXPECT_EQ(cfg.name, "RENO/l3");
    EXPECT_TRUE(cfg.params.reno.ra);
    ASSERT_EQ(cfg.params.mem.extraLevels.size(), 1u);
    EXPECT_EQ(cfg.params.mem.extraLevels[0].name, "l3");

    ASSERT_TRUE(configByName("BASE/pf-stride/wb", base, &cfg));
    EXPECT_EQ(cfg.params.mem.dcache.prefetch.kind,
              PrefetchKind::Stride);
    EXPECT_EQ(cfg.params.mem.l2.prefetch.kind, PrefetchKind::Stride);
    EXPECT_TRUE(cfg.params.mem.modelWritebacks);
    EXPECT_FALSE(cfg.params.reno.me);

    ASSERT_TRUE(configByName("ME+CF/pf-next", base, &cfg));
    EXPECT_EQ(cfg.params.mem.dcache.prefetch.kind,
              PrefetchKind::NextLine);

    EXPECT_FALSE(configByName("RENO/bogus", base, &cfg));
    EXPECT_FALSE(configByName("BOGUS/l3", base, &cfg));
    EXPECT_FALSE(configByName("RENO/", base, &cfg));
}

TEST(Harness, MemVariantsRunEndToEnd)
{
    // A deep prefetching write-back configuration simulates correctly
    // and reports per-level stats through the canonical registry.
    // The streaming kernel guarantees a stride the prefetcher can arm.
    const Workload &w = workloadByName("mem.stream.32k");
    NamedConfig cfg;
    ASSERT_TRUE(configByName("RENO/l3/pf-stride/wb",
                             CoreParams::fourWide(), &cfg));
    const RunOutput ref = runFunctional(w);
    const RunOutput run = runWorkload(w, cfg.params);
    EXPECT_EQ(run.output, ref.output);
    EXPECT_EQ(run.memDigest, ref.memDigest);
    EXPECT_GT(run.sim.memHits[1], 0u) << "dcache slot";
    EXPECT_GT(run.sim.memPrefetchIssued[1] +
                  run.sim.memPrefetchIssued[2],
              0u)
        << "stride prefetchers must issue on D$ or L2";
}

TEST(Harness, BpredVariantSuffixesComposeOnPresets)
{
    const CoreParams base = CoreParams::fourWide();
    NamedConfig cfg;

    ASSERT_TRUE(configByName("RENO/tage", base, &cfg));
    EXPECT_EQ(cfg.name, "RENO/tage");
    EXPECT_TRUE(cfg.params.reno.ra);
    EXPECT_EQ(cfg.params.bpred.dir.kind, DirPredKind::Tage);

    ASSERT_TRUE(configByName("BASE/perceptron/ras16", base, &cfg));
    EXPECT_EQ(cfg.params.bpred.dir.kind, DirPredKind::Perceptron);
    EXPECT_EQ(cfg.params.bpred.ras.entries, 16u);
    EXPECT_FALSE(cfg.params.reno.me);

    // Memory and branch-prediction variants compose in one chain.
    ASSERT_TRUE(configByName("RENO/l3/tage/itt", base, &cfg));
    EXPECT_EQ(cfg.params.mem.extraLevels.size(), 1u);
    EXPECT_EQ(cfg.params.bpred.dir.kind, DirPredKind::Tage);
    EXPECT_TRUE(cfg.params.bpred.indirect.enabled);

    ASSERT_TRUE(configByName("BASE/btb256", base, &cfg));
    EXPECT_EQ(cfg.params.bpred.btb.entries, 256u);

    // A BTB smaller than the default associativity stays legal.
    ASSERT_TRUE(configByName("BASE/btb2", base, &cfg));
    EXPECT_EQ(cfg.params.bpred.btb.entries, 2u);
    EXPECT_EQ(cfg.params.bpred.btb.assoc, 2u);

    EXPECT_FALSE(configByName("RENO/ras", base, &cfg))
        << "rasN needs a number";
    EXPECT_FALSE(configByName("RENO/ras16x", base, &cfg));
    EXPECT_FALSE(configByName("RENO/tage2", base, &cfg));
    EXPECT_FALSE(configByName("RENO/ras0", base, &cfg))
        << "geometry the predictor would fatal() on is rejected here";
    EXPECT_FALSE(configByName("RENO/btb100", base, &cfg))
        << "BTB size must be a power of two";
    EXPECT_FALSE(configByName("RENO/ras4294967297", base, &cfg))
        << "overflowing counts are rejected, not wrapped";
}

TEST(Harness, BpredVariantsRunEndToEnd)
{
    // A fully non-default stack simulates correctly and fills the
    // per-predictor stat breakdown. branch.call exercises direction,
    // RAS (with overflow at 16 entries against depth 24) and calls.
    const Workload &w = workloadByName("branch.call");
    NamedConfig cfg;
    ASSERT_TRUE(configByName("RENO/tage/ras16/itt",
                             CoreParams::fourWide(), &cfg));
    const RunOutput ref = runFunctional(w);
    const RunOutput run = runWorkload(w, cfg.params);
    EXPECT_EQ(run.output, ref.output);
    EXPECT_EQ(run.memDigest, ref.memDigest);
    EXPECT_EQ(run.sim.bpMispredicts,
              run.sim.bpDirMispredicts + run.sim.bpTargetMispredicts +
                  run.sim.bpRasMispredicts)
        << "the breakdown must sum to the total";
    EXPECT_GT(run.sim.bpRasOverflows, 0u)
        << "a 16-entry RAS must overflow at depth 24";
    EXPECT_GT(run.sim.bpRasMispredicts, 0u)
        << "overflow corruption must surface as RAS mispredicts";
    EXPECT_GT(run.sim.bpTageProviderHits, 0u);
}
