/**
 * @file
 * Map-table checkpoint tests (paper section 3.4): snapshot/restore of
 * the extended [p:d] mappings, reference-count pinning across the
 * checkpoint's lifetime, equivalence with reverse-order rollback
 * recovery, and conservation of references through arbitrary
 * checkpoint/rename/restore interleavings.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "reno/renamer.hpp"

using namespace reno;

namespace
{

std::unique_ptr<RenoRenamer>
makeRenamer(const RenoConfig &config, unsigned pregs = 96)
{
    auto ren = std::make_unique<RenoRenamer>(config, pregs);
    std::uint64_t vals[NumLogRegs];
    for (unsigned r = 0; r < NumLogRegs; ++r)
        vals[r] = 100 * r;
    ren->initialize(vals);
    return ren;
}

RenameOut
renameOne(RenoRenamer &ren, const Instruction &inst, std::uint64_t result)
{
    ren.beginGroup();
    return ren.rename(RenameIn{inst, result});
}

/** Snapshot of all 32 architectural mappings. */
std::vector<MapEntry>
mapSnapshot(const RenoRenamer &ren)
{
    std::vector<MapEntry> snap(NumLogRegs);
    for (unsigned r = 0; r < NumLogRegs; ++r)
        snap[r] = ren.mapTable().get(static_cast<LogReg>(r));
    return snap;
}

} // namespace

TEST(Checkpoint, TakePinsEveryMappedRegister)
{
    auto ren = makeRenamer(RenoConfig::full());
    const std::uint64_t refs_before = ren->physRegs().totalRefs();
    MapCheckpoint cp = ren->takeCheckpoint();
    EXPECT_TRUE(cp.live);
    EXPECT_EQ(ren->physRegs().totalRefs(), refs_before + NumLogRegs);
    ren->releaseCheckpoint(cp);
    EXPECT_FALSE(cp.live);
    EXPECT_EQ(ren->physRegs().totalRefs(), refs_before);
}

TEST(Checkpoint, RestoreRecoversMapAndDisplacements)
{
    auto ren = makeRenamer(RenoConfig::full());
    // Build up state including a folded displacement.
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 1, 8), 108);
    const auto before = mapSnapshot(*ren);
    MapCheckpoint cp = ren->takeCheckpoint();

    // Speculative work: overwrite r2 and r3, fold more onto r2.
    const RenameOut a = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 3, 1, 1), 200);
    const RenameOut b = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 2, 4), 112);
    EXPECT_NE(mapSnapshot(*ren), before);

    // Recover: drop the squashed instructions' references, restore.
    ren->releaseRename(b);
    ren->releaseRename(a);
    ren->restoreCheckpoint(cp);
    EXPECT_EQ(mapSnapshot(*ren), before)
        << "restored mappings must include the [p:d] displacements";
    EXPECT_FALSE(cp.live);
}

TEST(Checkpoint, RestoreMatchesReverseRollback)
{
    // Run the same speculative sequence through both recovery
    // mechanisms; final map tables and reference counts must agree.
    const auto sequence = [](RenoRenamer &ren,
                             std::vector<RenameOut> &outs) {
        outs.push_back(renameOne(
            ren, Instruction::ri(Opcode::ADDI, 4, 4, 16), 416));
        outs.push_back(renameOne(
            ren, Instruction::move(5, 4), 416));
        outs.push_back(renameOne(
            ren, Instruction::rr(Opcode::MUL, 6, 5, 4),
            416 * 416));
        outs.push_back(renameOne(
            ren, Instruction::ri(Opcode::ADDI, 4, 4, -16), 400));
    };

    auto ren_cp = makeRenamer(RenoConfig::full());
    auto ren_rb = makeRenamer(RenoConfig::full());

    MapCheckpoint cp = ren_cp->takeCheckpoint();
    std::vector<RenameOut> outs_cp, outs_rb;
    std::vector<Instruction> insts = {
        Instruction::ri(Opcode::ADDI, 4, 4, 16),
        Instruction::move(5, 4),
        Instruction::rr(Opcode::MUL, 6, 5, 4),
        Instruction::ri(Opcode::ADDI, 4, 4, -16),
    };
    sequence(*ren_cp, outs_cp);
    sequence(*ren_rb, outs_rb);

    // Checkpoint recovery: release refs, restore the snapshot.
    for (auto it = outs_cp.rbegin(); it != outs_cp.rend(); ++it)
        ren_cp->releaseRename(*it);
    ren_cp->restoreCheckpoint(cp);

    // Rollback recovery: undo youngest-first.
    for (size_t i = outs_rb.size(); i-- > 0;)
        ren_rb->rollback(insts[i], outs_rb[i]);

    EXPECT_EQ(mapSnapshot(*ren_cp), mapSnapshot(*ren_rb));
    EXPECT_EQ(ren_cp->physRegs().totalRefs(),
              ren_rb->physRegs().totalRefs());
    for (unsigned p = 0; p < ren_cp->physRegs().numPregs(); ++p) {
        EXPECT_EQ(ren_cp->physRegs().refCount(p),
                  ren_rb->physRegs().refCount(p))
            << "p" << p;
    }
}

TEST(Checkpoint, MappedRegisterSurvivesOverwriteWhileCheckpointLive)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg p1 = ren->mapTable().get(1).preg;
    MapCheckpoint cp = ren->takeCheckpoint();

    // Overwrite r1 speculatively; the checkpoint pins the old
    // register so it cannot be recycled while recovery is possible.
    const RenameOut out = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 1, 2, 3), 500);
    EXPECT_GE(ren->physRegs().refCount(p1), 2u)
        << "writer's reference plus the checkpoint pin";

    ren->releaseRename(out);
    ren->restoreCheckpoint(cp);
    EXPECT_EQ(ren->mapTable().get(1).preg, p1);
    EXPECT_GE(ren->physRegs().refCount(p1), 1u)
        << "restored mapping is backed by the original writer's ref";
}

TEST(Checkpoint, ReleaseAfterCommitFreesOverwrittenRegisters)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg p1 = ren->mapTable().get(1).preg;
    MapCheckpoint cp = ren->takeCheckpoint();

    const RenameOut out = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 1, 2, 3), 500);
    ren->retire(out);
    // Speculation committed: the checkpoint dies, and with it the last
    // reference to the overwritten register.
    ren->releaseCheckpoint(cp);
    EXPECT_EQ(ren->physRegs().refCount(p1), 0u);
}

TEST(Checkpoint, NestedCheckpointsRestoreInnermostFirst)
{
    auto ren = makeRenamer(RenoConfig::full());
    MapCheckpoint outer = ren->takeCheckpoint();
    const RenameOut a = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 7, 7, 1), 701);
    const auto mid = mapSnapshot(*ren);
    MapCheckpoint inner = ren->takeCheckpoint();
    const RenameOut b = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 7, 7, 1), 702);

    // Inner mis-speculation: back to mid.
    ren->releaseRename(b);
    ren->restoreCheckpoint(inner);
    EXPECT_EQ(mapSnapshot(*ren), mid);

    // Outer mis-speculation: back to the initial state.
    const auto initial_r7 = outer.map[7];
    ren->releaseRename(a);
    ren->restoreCheckpoint(outer);
    EXPECT_EQ(ren->mapTable().get(7), initial_r7);
}

TEST(Checkpoint, DoubleRestorePanics)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    MapCheckpoint cp = ren->takeCheckpoint();
    ren->restoreCheckpoint(cp);
    EXPECT_DEATH(ren->restoreCheckpoint(cp), "dead checkpoint");
}

TEST(Checkpoint, RandomInterleavingConservesReferences)
{
    // Property: arbitrary rename/checkpoint/restore/release
    // interleavings never leak or double-free references. Total refs
    // must return to the baseline after everything is unwound. A
    // shadow architectural file supplies oracle results so the
    // renamer's sharing invariant stays armed throughout.
    Rng rng(7);
    auto ren = makeRenamer(RenoConfig::full(), 128);
    const std::uint64_t base_refs = ren->physRegs().totalRefs();

    std::uint64_t vals[NumLogRegs];
    for (unsigned r = 0; r < NumLogRegs; ++r)
        vals[r] = 100 * r;

    struct Frame {
        MapCheckpoint cp;
        std::vector<RenameOut> outs;
        std::uint64_t vals[NumLogRegs];
    };
    std::vector<Frame> stack;

    for (unsigned step = 0; step < 400; ++step) {
        const unsigned roll = static_cast<unsigned>(rng.below(10));
        if (roll < 2 && stack.size() < 6) {
            Frame f;
            f.cp = ren->takeCheckpoint();
            std::copy(std::begin(vals), std::end(vals),
                      std::begin(f.vals));
            stack.push_back(std::move(f));
        } else if (roll < 3 && !stack.empty()) {
            // Mis-speculate: unwind the innermost frame.
            Frame &f = stack.back();
            for (size_t i = f.outs.size(); i-- > 0;)
                ren->releaseRename(f.outs[i]);
            ren->restoreCheckpoint(f.cp);
            std::copy(std::begin(f.vals), std::end(f.vals),
                      std::begin(vals));
            stack.pop_back();
        } else if (roll < 4 && stack.size() == 1) {
            // Commit the outermost frame: its work retires and the
            // checkpoint dies. (Retiring under a still-live OLDER
            // checkpoint would make that checkpoint unrestorable, so
            // commits happen outermost-first, as in hardware.)
            Frame f = std::move(stack.back());
            stack.pop_back();
            for (auto &o : f.outs)
                ren->retire(o);
            ren->releaseCheckpoint(f.cp);
        } else {
            const LogReg d = static_cast<LogReg>(1 + rng.below(14));
            const LogReg s = static_cast<LogReg>(1 + rng.below(14));
            std::uint64_t result;
            Instruction inst;
            if (rng.below(2)) {
                const auto imm = static_cast<std::int16_t>(
                    rng.range(-64, 64));
                inst = Instruction::ri(Opcode::ADDI, d, s, imm);
                result = vals[s] + static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(imm));
            } else {
                inst = Instruction::rr(Opcode::ADD, d, s, d);
                result = vals[s] + vals[d];
            }
            const RenameOut out = renameOne(*ren, inst, result);
            vals[d] = result;
            if (stack.empty()) {
                ren->retire(out);
            } else {
                stack.back().outs.push_back(out);
            }
        }
    }

    // Unwind everything still live.
    while (!stack.empty()) {
        Frame &f = stack.back();
        for (size_t i = f.outs.size(); i-- > 0;)
            ren->releaseRename(f.outs[i]);
        ren->restoreCheckpoint(f.cp);
        stack.pop_back();
    }
    EXPECT_EQ(ren->physRegs().totalRefs(), base_refs);
}
