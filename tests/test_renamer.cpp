/**
 * @file
 * RENO renamer tests, including exact reproductions of the paper's
 * worked examples:
 *
 *   Figure 1 - dynamic move elimination (RENO_ME)
 *   Figure 2 - dynamic constant folding (RENO_CF)
 *   Figure 3 - CSE (top) and speculative memory bypassing (bottom)
 *   Figure 4 - folding chains of register-immediate additions
 *   Figure 5 - CSE and CF interacting
 *
 * plus the dependent-elimination-per-cycle restriction, displacement
 * overflow checks, rollback/retire reference accounting, and
 * misintegration detection.
 */
#include <gtest/gtest.h>

#include "reno/renamer.hpp"

using namespace reno;

namespace
{

/** Fresh renamer with r1..r8 holding 100*r. */
std::unique_ptr<RenoRenamer>
makeRenamer(RenoConfig config, unsigned pregs = 64)
{
    auto ren = std::make_unique<RenoRenamer>(config, pregs);
    std::uint64_t vals[NumLogRegs] = {};
    for (unsigned r = 0; r < NumLogRegs; ++r)
        vals[r] = 100 * r;
    ren->initialize(vals);
    return ren;
}

/** Rename one instruction in its own group. */
RenameOut
renameOne(RenoRenamer &ren, const Instruction &inst, std::uint64_t result)
{
    ren.beginGroup();
    return ren.rename(RenameIn{inst, result});
}

} // namespace

// ---- Figure 1: move elimination ---------------------------------------

TEST(RenamerFig1, MoveElimination)
{
    auto ren = makeRenamer(RenoConfig::meOnly());
    // add r3 <- r1, r2 : conventional rename, new preg.
    const RenameOut add =
        renameOne(*ren, Instruction::rr(Opcode::ADD, 3, 1, 2), 300);
    EXPECT_FALSE(add.eliminated());
    const PhysReg p3 = add.destPreg;

    // move r2 <- r3 : eliminated, r2 shares p3.
    const RenameOut mov =
        renameOne(*ren, Instruction::move(2, 3), 300);
    EXPECT_EQ(mov.elim, ElimKind::Move);
    EXPECT_EQ(mov.destPreg, p3);
    EXPECT_EQ(ren->mapTable().get(2).preg, p3);
    EXPECT_EQ(ren->physRegs().refCount(p3), 2u);

    // load r4, 8(r2) : base renames to p3 directly (short-circuited).
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 4, 2, 8), 7);
    EXPECT_EQ(ld.src[0].preg, p3);
    EXPECT_EQ(ld.src[0].disp, 0);
}

TEST(RenamerFig1, NonMovesNotEliminatedByMeOnly)
{
    auto ren = makeRenamer(RenoConfig::meOnly());
    const RenameOut addi = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 3, 4), 304);
    EXPECT_FALSE(addi.eliminated());
}

// ---- Figure 2: constant folding ---------------------------------------

TEST(RenamerFig2, AddiFoldsIntoDisplacement)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg p3 = ren->mapTable().get(3).preg;

    // addi r2 <- r3, 4 : eliminated, r2 -> [p3 : 4].
    const RenameOut addi = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 3, 4), 304);
    EXPECT_EQ(addi.elim, ElimKind::Fold);
    EXPECT_EQ(addi.destPreg, p3);
    EXPECT_EQ(addi.destDisp, 4);
    EXPECT_EQ(ren->physRegs().refCount(p3), 2u);

    // load r4, 8(r2) : base operand renames to [p3 : 4].
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 4, 2, 8), 9);
    EXPECT_EQ(ld.src[0].preg, p3);
    EXPECT_EQ(ld.src[0].disp, 4);
}

TEST(RenamerFig2, MoveClassifiedSeparatelyUnderCf)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    EXPECT_EQ(renameOne(*ren, Instruction::move(2, 3), 300).elim,
              ElimKind::Move);
    EXPECT_EQ(renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 3, 1),
                        301).elim,
              ElimKind::Fold);
}

// ---- Figure 4: folding chains ------------------------------------------

TEST(RenamerFig4, ChainAccumulatesDisplacements)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg p1 = ren->mapTable().get(1).preg;

    // addi r2 <- r1, 5 ; addi r4 <- r2, 6 (separate groups)
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 1, 5), 105);
    const RenameOut second = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 4, 2, 6), 111);
    EXPECT_EQ(second.elim, ElimKind::Fold);
    EXPECT_EQ(second.destPreg, p1);
    EXPECT_EQ(second.destDisp, 11);

    // or r8 <- r4, r1 executes ((p1+11) | p1): renamed conventionally
    // with the displaced source operand.
    const RenameOut orr = renameOne(
        *ren, Instruction::rr(Opcode::OR, 8, 4, 1), 111 | 100);
    EXPECT_FALSE(orr.eliminated());
    EXPECT_EQ(orr.src[0].preg, p1);
    EXPECT_EQ(orr.src[0].disp, 11);
    EXPECT_EQ(orr.src[1].disp, 0);
    EXPECT_EQ(orr.destDisp, 0);  // new values have zero displacement
}

TEST(RenamerCf, NegativeImmediates)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    const PhysReg sp = ren->mapTable().get(RegSp).preg;
    renameOne(*ren,
              Instruction::ri(Opcode::ADDI, RegSp, RegSp, -16),
              100 * RegSp - 16);
    const RenameOut inc = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, RegSp, RegSp, 16),
        100 * RegSp);
    EXPECT_EQ(inc.elim, ElimKind::Fold);
    EXPECT_EQ(inc.destPreg, sp);
    EXPECT_EQ(inc.destDisp, 0);  // -16 + 16
}

// ---- overflow checks ----------------------------------------------------

TEST(RenamerCf, ConservativeOverflowCancel)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    // A large immediate folds onto a zero displacement (the zero
    // bypass: the sum is exactly the immediate)...
    const RenameOut first = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 2, 1, 20000), 20100);
    EXPECT_TRUE(first.eliminated());
    EXPECT_EQ(first.destDisp, 20000);
    // ...but the 20000 displacement exceeds the top-two-bit check's
    // provably-extendable range, so the next fold is refused even
    // though its exact sum (20001) would fit.
    const RenameOut second = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 3, 2, 1), 20101);
    EXPECT_FALSE(second.eliminated());
    EXPECT_EQ(ren->overflowCancels(), 1u);
}

TEST(RenamerCf, ExactCheckAllowsMore)
{
    RenoConfig cfg = RenoConfig::meCf();
    cfg.exactOverflowCheck = true;
    auto ren = makeRenamer(cfg);
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 2, 1, 20000), 20100);
    // 20000 + 1 fits in 16 bits: exact check folds it.
    const RenameOut second = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 3, 2, 1), 20101);
    EXPECT_EQ(second.elim, ElimKind::Fold);
    EXPECT_EQ(second.destDisp, 20001);
    // But a genuine 16-bit overflow still cancels.
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 4, 3, 20000), 40101);
    EXPECT_EQ(ren->overflowCancels(), 1u);
}

// ---- Figure 3 top: CSE ---------------------------------------------------

TEST(RenamerFig3Top, RedundantLoadIntegrates)
{
    auto ren = makeRenamer(RenoConfig::fullIt());

    // load r3, 8(r1): conventional; creates a forward IT entry.
    const RenameOut ld1 = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 3, 1, 8), 42);
    EXPECT_FALSE(ld1.eliminated());
    EXPECT_NE(ld1.createdSlot, InvalidItSlot);
    const PhysReg p3 = ld1.destPreg;

    // load r4, 8(r1): same dataflow signature - integrated.
    const RenameOut ld2 = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 4, 1, 8), 42);
    EXPECT_EQ(ld2.elim, ElimKind::Cse);
    EXPECT_EQ(ld2.destPreg, p3);
    EXPECT_FALSE(ld2.misintegrated);

    // add r1 <- r3, r3 overwrites r1.
    renameOne(*ren, Instruction::rr(Opcode::ADD, 1, 3, 3), 84);

    // load r3, 8(r1): the base is now a different physical register,
    // so the stale signature rightly does not match.
    const RenameOut ld3 = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 3, 1, 8), 55);
    EXPECT_FALSE(ld3.eliminated());
}

TEST(RenamerFig3Top, RedundantAluIntegratesInFullMode)
{
    auto ren = makeRenamer(RenoConfig::fullIt());
    const RenameOut add1 = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 3, 1, 2), 300);
    const RenameOut add2 = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 4, 1, 2), 300);
    EXPECT_EQ(add2.elim, ElimKind::Cse);
    EXPECT_EQ(add2.destPreg, add1.destPreg);

    // Commutative match: add r5 <- r2, r1 also integrates.
    const RenameOut add3 = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 5, 2, 1), 300);
    EXPECT_EQ(add3.elim, ElimKind::Cse);

    // Non-commutative op does not cross-match.
    renameOne(*ren, Instruction::rr(Opcode::SUB, 6, 1, 2),
              static_cast<std::uint64_t>(-100));
    const RenameOut sub2 = renameOne(
        *ren, Instruction::rr(Opcode::SUB, 7, 2, 1), 100);
    EXPECT_FALSE(sub2.eliminated());
}

TEST(Renamer, LoadsOnlyItSkipsAluTuples)
{
    auto ren = makeRenamer(RenoConfig::full());  // loads-only IT
    renameOne(*ren, Instruction::rr(Opcode::ADD, 3, 1, 2), 300);
    const RenameOut add2 = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 4, 1, 2), 300);
    EXPECT_FALSE(add2.eliminated());
    // But loads still integrate.
    renameOne(*ren, Instruction::mem(Opcode::LDQ, 5, 1, 8), 42);
    EXPECT_EQ(renameOne(*ren, Instruction::mem(Opcode::LDQ, 6, 1, 8),
                        42).elim,
              ElimKind::Cse);
}

// ---- Figure 3 bottom: speculative memory bypassing -----------------------

TEST(RenamerFig3Bottom, StackStoreLoadBypass)
{
    auto ren = makeRenamer(RenoConfig::integrationOnly());
    const PhysReg sp0 = ren->mapTable().get(RegSp).preg;
    const PhysReg p2 = ren->mapTable().get(2).preg;

    // store r2, 8(sp): creates the reverse entry <ldq/8, sp -> p2>.
    const RenameOut st = renameOne(
        *ren, Instruction::mem(Opcode::STQ, 2, RegSp, 8), 0);
    EXPECT_NE(st.createdSlot, InvalidItSlot);

    // addi sp <- sp, -16: no CF here, renamed conventionally; creates
    // the reverse entry that lets the increment restore sp0.
    const RenameOut dec = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, RegSp, RegSp, -16),
        100 * RegSp - 16);
    EXPECT_FALSE(dec.eliminated());

    // add r2 <- r1, r1 overwrites r2.
    renameOne(*ren, Instruction::rr(Opcode::ADD, 2, 1, 1), 200);

    // addi sp <- sp, 16: integrates through the reverse entry and
    // restores the original physical register.
    const RenameOut inc = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, RegSp, RegSp, 16),
        100 * RegSp);
    EXPECT_EQ(inc.elim, ElimKind::Cse);
    EXPECT_EQ(inc.destPreg, sp0);

    // load r2, 8(sp): bypassed to the store's data register.
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 2, RegSp, 8), 200);
    EXPECT_EQ(ld.elim, ElimKind::Ra);
    EXPECT_EQ(ld.destPreg, p2);
    EXPECT_FALSE(ld.misintegrated);
}

TEST(RenamerRa, WorksAcrossCfFoldedStackAdjustment)
{
    // With CF enabled, the sp adjustment folds, so the reload's base
    // mapping matches the store's directly (paper section 2.4).
    auto ren = makeRenamer(RenoConfig::full());
    const PhysReg p5 = ren->mapTable().get(5).preg;

    renameOne(*ren, Instruction::ri(Opcode::ADDI, RegSp, RegSp, -32),
              100 * RegSp - 32);
    renameOne(*ren, Instruction::mem(Opcode::STQ, 5, RegSp, 0), 0);
    renameOne(*ren, Instruction::rr(Opcode::ADD, 5, 1, 1), 200);
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 5, RegSp, 0), 500);
    EXPECT_EQ(ld.elim, ElimKind::Ra);
    EXPECT_EQ(ld.destPreg, p5);
}

// ---- Figure 5: CF and CSE together ----------------------------------------

TEST(RenamerFig5, CseSeesThroughFoldedBase)
{
    auto ren = makeRenamer(RenoConfig::full());
    const PhysReg p1 = ren->mapTable().get(1).preg;

    // addi r1 <- r1, 4: folded.
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 1, 1, 4), 104);

    // load r3, 8(r1): entry records the displaced base [p1:4].
    const RenameOut ld1 = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 3, 1, 8), 77);
    EXPECT_EQ(ld1.src[0].preg, p1);
    EXPECT_EQ(ld1.src[0].disp, 4);

    // load r4, 8(r1): matches and shares.
    const RenameOut ld2 = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 4, 1, 8), 77);
    EXPECT_EQ(ld2.elim, ElimKind::Cse);
    EXPECT_EQ(ld2.destPreg, ld1.destPreg);
}

// ---- group restriction ------------------------------------------------------

TEST(RenamerGroup, DependentEliminationsBlockedInOneCycle)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    ren->beginGroup();
    // Two dependent addis renamed in the same group: the first folds,
    // the second must rename conventionally.
    const RenameOut first =
        ren->rename(RenameIn{Instruction::ri(Opcode::ADDI, 2, 1, 5),
                             105});
    const RenameOut second =
        ren->rename(RenameIn{Instruction::ri(Opcode::ADDI, 3, 2, 6),
                             111});
    EXPECT_TRUE(first.eliminated());
    EXPECT_FALSE(second.eliminated());
    EXPECT_EQ(ren->groupDepCancels(), 1u);

    // In the next group the chain continues to fold on the new preg.
    const RenameOut third = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 4, 3, 7), 118);
    EXPECT_TRUE(third.eliminated());
    EXPECT_EQ(third.destPreg, second.destPreg);
    EXPECT_EQ(third.destDisp, 7);
}

TEST(RenamerGroup, IndependentEliminationsAllowedInOneCycle)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    ren->beginGroup();
    const RenameOut a =
        ren->rename(RenameIn{Instruction::ri(Opcode::ADDI, 2, 1, 5),
                             105});
    const RenameOut b =
        ren->rename(RenameIn{Instruction::ri(Opcode::ADDI, 4, 3, 6),
                             306});
    EXPECT_TRUE(a.eliminated());
    EXPECT_TRUE(b.eliminated());
}

TEST(RenamerGroup, DependentOnNonEliminatedIsFine)
{
    auto ren = makeRenamer(RenoConfig::meCf());
    ren->beginGroup();
    const RenameOut add =
        ren->rename(RenameIn{Instruction::rr(Opcode::ADD, 2, 1, 3),
                             400});
    // addi depending on the (non-eliminated) add may fold onto it in
    // the same group: "we can fold a register-immediate addition into
    // a dependent instruction in one cycle".
    const RenameOut addi =
        ren->rename(RenameIn{Instruction::ri(Opcode::ADDI, 4, 2, 6),
                             406});
    EXPECT_FALSE(add.eliminated());
    EXPECT_TRUE(addi.eliminated());
    EXPECT_EQ(addi.destPreg, add.destPreg);
}

// ---- rollback / retire reference accounting --------------------------------

TEST(RenamerRecovery, RollbackRestoresEverything)
{
    auto ren = makeRenamer(RenoConfig::full());
    const MapEntry before2 = ren->mapTable().get(2);
    const std::uint64_t refs_before = ren->physRegs().totalRefs();
    const unsigned free_before = ren->physRegs().numFree();

    const Instruction addi = Instruction::ri(Opcode::ADDI, 2, 1, 5);
    const RenameOut out = renameOne(*ren, addi, 105);
    EXPECT_TRUE(out.eliminated());
    ren->rollback(addi, out);

    EXPECT_EQ(ren->mapTable().get(2), before2);
    EXPECT_EQ(ren->physRegs().totalRefs(), refs_before);
    EXPECT_EQ(ren->physRegs().numFree(), free_before);
}

TEST(RenamerRecovery, RollbackNonEliminatedFreesPreg)
{
    auto ren = makeRenamer(RenoConfig::baseline());
    const unsigned free_before = ren->physRegs().numFree();
    const Instruction add = Instruction::rr(Opcode::ADD, 2, 1, 3);
    const RenameOut out = renameOne(*ren, add, 400);
    EXPECT_EQ(ren->physRegs().numFree(), free_before - 1);
    ren->rollback(add, out);
    EXPECT_EQ(ren->physRegs().numFree(), free_before);
}

TEST(RenamerRecovery, RollbackInvalidatesCreatedEntries)
{
    auto ren = makeRenamer(RenoConfig::full());
    const Instruction ld = Instruction::mem(Opcode::LDQ, 3, 1, 8);
    const RenameOut out = renameOne(*ren, ld, 42);
    EXPECT_NE(out.createdSlot, InvalidItSlot);
    ren->rollback(ld, out);
    // The tuple is gone: an identical load does not integrate.
    const RenameOut again = renameOne(*ren, ld, 42);
    EXPECT_FALSE(again.eliminated());
}

TEST(RenamerRecovery, RetireFreesOverwrittenMapping)
{
    auto ren = makeRenamer(RenoConfig::baseline());
    const PhysReg old2 = ren->mapTable().get(2).preg;
    const RenameOut out = renameOne(
        *ren, Instruction::rr(Opcode::ADD, 2, 1, 3), 400);
    EXPECT_EQ(ren->physRegs().refCount(old2), 1u);
    ren->retire(out);
    EXPECT_EQ(ren->physRegs().refCount(old2), 0u);
}

// ---- misintegration -----------------------------------------------------------

TEST(RenamerMisintegration, StaleValueDetected)
{
    auto ren = makeRenamer(RenoConfig::full());
    // Store r5 to the stack, then "memory changes" (the oracle result
    // of the reload differs from the stored register's value).
    renameOne(*ren, Instruction::mem(Opcode::STQ, 5, RegSp, 8), 0);
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 6, RegSp, 8), 12345);
    EXPECT_EQ(ld.elim, ElimKind::Ra);
    EXPECT_TRUE(ld.misintegrated);
    EXPECT_EQ(ren->misintegrations(), 1u);
    // The stale tuple was dropped, so the replay renames normally.
    ren->rollback(Instruction::mem(Opcode::LDQ, 6, RegSp, 8), ld);
    const RenameOut retry = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 6, RegSp, 8), 12345);
    EXPECT_FALSE(retry.eliminated());
}

// ---- free-preg management ---------------------------------------------------

TEST(Renamer, EnsureFreePregReclaimsFromIt)
{
    // 33 registers: after initialize() exactly one is free.
    auto ren = makeRenamer(RenoConfig::full(), NumLogRegs + 1);
    EXPECT_TRUE(ren->ensureFreePreg());
    // A load consumes the last register and pins it in the IT; then
    // overwrite its architectural mapping so only the IT holds it.
    renameOne(*ren, Instruction::mem(Opcode::LDQ, 3, 1, 8), 42);
    EXPECT_FALSE(ren->physRegs().hasFree());
    // r3's new mapping is the loaded preg; retiring an overwrite of r3
    // would free it, but instead check the IT-reclaim path: the IT
    // holds the old r3 preg? (it holds the load's output). Overwrite
    // r3 via a fold so no new register is needed.
    const RenameOut fold = renameOne(
        *ren, Instruction::ri(Opcode::ADDI, 3, 1, 1), 101);
    ASSERT_TRUE(fold.eliminated());
    ren->retire(fold);  // releases the load's preg architecturally
    // Now the load's register is IT-only; ensureFreePreg reclaims it.
    EXPECT_FALSE(ren->physRegs().hasFree());
    EXPECT_TRUE(ren->ensureFreePreg());
    EXPECT_TRUE(ren->physRegs().hasFree());
}

TEST(Renamer, BaselineDoesNothing)
{
    auto ren = makeRenamer(RenoConfig::baseline());
    EXPECT_FALSE(renameOne(*ren, Instruction::move(2, 3), 300)
                     .eliminated());
    EXPECT_FALSE(renameOne(*ren,
                           Instruction::ri(Opcode::ADDI, 2, 3, 4), 304)
                     .eliminated());
    renameOne(*ren, Instruction::mem(Opcode::LDQ, 3, 1, 8), 42);
    EXPECT_FALSE(renameOne(*ren,
                           Instruction::mem(Opcode::LDQ, 4, 1, 8), 42)
                     .eliminated());
    EXPECT_EQ(ren->it().accesses(), 0u);
}

TEST(Renamer, StoreDataDisplacementRecordedInReverseEntry)
{
    auto ren = makeRenamer(RenoConfig::full());
    const PhysReg p5 = ren->mapTable().get(5).preg;
    // r6 = r5 + 7 (folded), then store r6: the reverse entry's output
    // must carry [p5 : 7] so the bypassed load maps r2 -> [p5 : 7].
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 6, 5, 7), 507);
    renameOne(*ren, Instruction::mem(Opcode::STQ, 6, RegSp, 8), 0);
    const RenameOut ld = renameOne(
        *ren, Instruction::mem(Opcode::LDQ, 2, RegSp, 8), 507);
    EXPECT_EQ(ld.elim, ElimKind::Ra);
    EXPECT_EQ(ld.destPreg, p5);
    EXPECT_EQ(ld.destDisp, 7);
    EXPECT_FALSE(ld.misintegrated);
}

TEST(Renamer, EliminationStatsAccumulate)
{
    auto ren = makeRenamer(RenoConfig::full());
    renameOne(*ren, Instruction::move(2, 1), 100);
    renameOne(*ren, Instruction::ri(Opcode::ADDI, 3, 1, 5), 105);
    renameOne(*ren, Instruction::rr(Opcode::ADD, 4, 1, 1), 200);
    EXPECT_EQ(ren->eliminated(ElimKind::Move), 1u);
    EXPECT_EQ(ren->eliminated(ElimKind::Fold), 1u);
    EXPECT_EQ(ren->eliminated(ElimKind::None), 1u);
    EXPECT_EQ(ren->eliminatedTotal(), 2u);
    EXPECT_EQ(ren->renamed(), 3u);
}
