/**
 * @file
 * Functional emulator tests: ALU semantics checked against native C++
 * over randomized operands for every ALU opcode (parameterized),
 * memory access sizes and extension, control flow, syscalls, and
 * whole-program behaviors (recursion, loops).
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "emu/emulator.hpp"

using namespace reno;

namespace
{

Emulator
runProgram(const std::string &src)
{
    static std::vector<std::unique_ptr<Program>> programs;
    programs.push_back(std::make_unique<Program>(assemble(src)));
    Emulator emu(*programs.back());
    emu.run();
    return emu;
}

} // namespace

// ---- evalAlu reference checks (parameterized over ALU opcodes) ------

struct AluCase {
    Opcode op;
    const char *name;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

static std::uint64_t
reference(Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    const auto simm = static_cast<std::int64_t>(imm);
    switch (op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        return sb ? static_cast<std::uint64_t>(sa / sb) : 0;
      case Opcode::DIVU: return b ? a / b : 0;
      case Opcode::REM:
        return sb ? static_cast<std::uint64_t>(sa % sb) : 0;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::BIC: return a & ~b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA:
        return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::SEQ: return a == b;
      case Opcode::SLT: return sa < sb;
      case Opcode::SLE: return sa <= sb;
      case Opcode::SLTU: return a < b;
      case Opcode::SLEU: return a <= b;
      case Opcode::ADDI: return a + static_cast<std::uint64_t>(simm);
      case Opcode::MULI: return a * static_cast<std::uint64_t>(simm);
      case Opcode::ANDI: return a & (static_cast<std::uint32_t>(imm) &
                                     0xffff);
      case Opcode::ORI: return a | (static_cast<std::uint32_t>(imm) &
                                    0xffff);
      case Opcode::XORI: return a ^ (static_cast<std::uint32_t>(imm) &
                                     0xffff);
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SRAI:
        return static_cast<std::uint64_t>(sa >> (imm & 63));
      case Opcode::SEQI: return a == static_cast<std::uint64_t>(simm);
      case Opcode::SLTI: return sa < simm;
      case Opcode::SLEI: return sa <= simm;
      case Opcode::SLTUI: return a < static_cast<std::uint64_t>(simm);
      case Opcode::SLEUI: return a <= static_cast<std::uint64_t>(simm);
      case Opcode::LUI:
        return static_cast<std::uint64_t>(simm << 16);
      default: return 0;
    }
}

TEST_P(AluSemantics, MatchesReference)
{
    const Opcode op = GetParam().op;
    Rng rng(static_cast<unsigned>(op) * 7 + 3);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b =
            trial % 5 == 0 ? 0 : rng.next();  // exercise zero operands
        const auto imm =
            static_cast<std::int32_t>(rng.range(-32768, 32767));
        EXPECT_EQ(evalAlu(op, a, b, imm), reference(op, a, b, imm))
            << mnemonic(op) << " a=" << a << " b=" << b
            << " imm=" << imm;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Emu, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::ADD, "add"}, AluCase{Opcode::SUB, "sub"},
        AluCase{Opcode::MUL, "mul"}, AluCase{Opcode::DIV, "div"},
        AluCase{Opcode::DIVU, "divu"}, AluCase{Opcode::REM, "rem"},
        AluCase{Opcode::AND, "and"}, AluCase{Opcode::OR, "or"},
        AluCase{Opcode::XOR, "xor"}, AluCase{Opcode::BIC, "bic"},
        AluCase{Opcode::SLL, "sll"}, AluCase{Opcode::SRL, "srl"},
        AluCase{Opcode::SRA, "sra"}, AluCase{Opcode::SEQ, "seq"},
        AluCase{Opcode::SLT, "slt"}, AluCase{Opcode::SLE, "sle"},
        AluCase{Opcode::SLTU, "sltu"}, AluCase{Opcode::SLEU, "sleu"},
        AluCase{Opcode::ADDI, "addi"}, AluCase{Opcode::MULI, "muli"},
        AluCase{Opcode::ANDI, "andi"}, AluCase{Opcode::ORI, "ori"},
        AluCase{Opcode::XORI, "xori"}, AluCase{Opcode::SLLI, "slli"},
        AluCase{Opcode::SRLI, "srli"}, AluCase{Opcode::SRAI, "srai"},
        AluCase{Opcode::SEQI, "seqi"}, AluCase{Opcode::SLTI, "slti"},
        AluCase{Opcode::SLEI, "slei"}, AluCase{Opcode::SLTUI, "sltui"},
        AluCase{Opcode::SLEUI, "sleui"}, AluCase{Opcode::LUI, "lui"}),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return info.param.name;
    });

// ---- whole-program behaviors -----------------------------------------

TEST(Emu, ExitCodePropagates)
{
    Emulator e = runProgram("li v0, 0\nli a0, 42\nsyscall\n");
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.exitCode(), 42u);
    EXPECT_EQ(e.instCount(), 3u);
}

TEST(Emu, PrintSyscalls)
{
    Emulator e = runProgram(
        "li v0, 1\nli a0, -7\nsyscall\n"
        "li v0, 3\nli a0, 44\nsyscall\n"   // comma
        "li v0, 1\nli a0, 123\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "-7,123");
}

TEST(Emu, PrintString)
{
    Emulator e = runProgram(
        ".data\nmsg: .asciiz \"hello\"\n.text\n"
        "la a0, msg\nli v0, 2\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "hello");
}

TEST(Emu, RandIsDeterministic)
{
    const char *src =
        "li v0, 5\nsyscall\nmov a0, v0\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n";
    Emulator a = runProgram(src);
    Emulator b = runProgram(src);
    EXPECT_EQ(a.output(), b.output());
    EXPECT_FALSE(a.output().empty());
}

TEST(Emu, ClockReturnsInstCount)
{
    Emulator e = runProgram(
        "nop\nnop\nli v0, 4\nsyscall\n"
        "mov a0, v0\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    // clock() executes as the 4th instruction; count at syscall is 3.
    EXPECT_EQ(e.output(), "3");
}

TEST(Emu, LoadStoreSizes)
{
    Emulator e = runProgram(
        ".data\nbuf: .space 16\n.text\n"
        "la t0, buf\n"
        "li t1, -2\n"            // 0xfffffffffffffffe
        "stq t1, 0(t0)\n"
        "ldbu t2, 0(t0)\n"       // 0xfe zero-extended
        "mov a0, t2\nli v0, 1\nsyscall\n"
        "ldl t3, 0(t0)\n"        // 0xfffffffe sign-extended = -2
        "li v0, 3\nli a0, 32\nsyscall\n"
        "mov a0, t3\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "254 -2");
}

TEST(Emu, ByteStoreOnlyTouchesOneByte)
{
    Emulator e = runProgram(
        ".data\nbuf: .quad 0\n.text\n"
        "la t0, buf\n"
        "li t1, 0x1234\n"
        "stb t1, 1(t0)\n"
        "ldq t2, 0(t0)\n"
        "mov a0, t2\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "13312");  // 0x34 << 8
}

TEST(Emu, ZeroRegisterIgnoresWrites)
{
    Emulator e = runProgram(
        "li t0, 5\n"
        "add zero, t0, t0\n"
        "mov a0, zero\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "0");
}

TEST(Emu, ConditionalBranchDirections)
{
    // For (v, op) pairs verify taken/not-taken by printing markers.
    Emulator e = runProgram(
        "li t0, -1\n"
        "blt t0, ok1\n"
        "li v0, 3\nli a0, 88\nsyscall\n"  // 'X' if fallthrough
        "ok1:\n"
        "li t0, 0\n"
        "ble t0, ok2\n"
        "li v0, 3\nli a0, 88\nsyscall\n"
        "ok2:\n"
        "li t0, 1\n"
        "bgt t0, ok3\n"
        "li v0, 3\nli a0, 88\nsyscall\n"
        "ok3:\n"
        "li t0, 0\n"
        "bge t0, ok4\n"
        "li v0, 3\nli a0, 88\nsyscall\n"
        "ok4:\n"
        "li v0, 3\nli a0, 46\nsyscall\n"  // '.'
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), ".");
}

TEST(Emu, RecursiveFactorial)
{
    Emulator e = runProgram(R"(
# fact(a0) -> v0
fact:
        bgt  a0, recurse
        li   v0, 1
        ret
recurse:
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        subi a0, a0, 1
        call fact
        ldq  a0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        mul  v0, v0, a0
        ret
_start:
        li   a0, 10
        call fact
        mov  a0, v0
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)");
    EXPECT_EQ(e.output(), "3628800");
}

TEST(Emu, LoopSum)
{
    Emulator e = runProgram(
        "li t0, 0\nli t1, 100\n"
        "loop:\n"
        "add t0, t0, t1\n"
        "subi t1, t1, 1\n"
        "bne t1, loop\n"
        "mov a0, t0\nli v0, 1\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.output(), "5050");
}

TEST(Emu, IndirectCallThroughRegister)
{
    Emulator e = runProgram(R"(
f:
        li   v0, 77
        ret
_start:
        la   t0, f
        jsr  ra, (t0)
        mov  a0, v0
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)");
    EXPECT_EQ(e.output(), "77");
}

TEST(Emu, StackPointerInitialized)
{
    const Program p = assemble("nop\nli v0, 0\nli a0, 0\nsyscall\n");
    Emulator e(p);
    EXPECT_EQ(e.state().reg(RegSp), DefaultStackTop);
}

TEST(Emu, MemoryDigestChangesWithStores)
{
    Emulator a = runProgram(
        ".data\nx: .quad 0\n.text\n"
        "la t0, x\nli t1, 1\nstq t1, 0(t0)\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    Emulator b = runProgram(
        ".data\nx: .quad 0\n.text\n"
        "la t0, x\nli t1, 2\nstq t1, 0(t0)\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_NE(a.memory().digest(), b.memory().digest());
}

TEST(Emu, StepRecordsOracleValues)
{
    const Program p = assemble(
        "li t0, 6\n"
        "li t1, 7\n"
        "mul t2, t0, t1\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    Emulator e(p);
    e.step();
    e.step();
    const ExecRecord rec = e.step();
    EXPECT_EQ(rec.inst.op, Opcode::MUL);
    EXPECT_EQ(rec.srcVal[0], 6u);
    EXPECT_EQ(rec.srcVal[1], 7u);
    EXPECT_EQ(rec.result, 42u);
    EXPECT_EQ(rec.npc, rec.pc + 4);
    EXPECT_FALSE(rec.exited);
}

TEST(Emu, BranchRecordShowsTargetAndTaken)
{
    const Program p = assemble(
        "li t0, 1\n"
        "bne t0, target\n"
        "nop\n"
        "target:\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    Emulator e(p);
    e.step();
    const ExecRecord rec = e.step();
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.npc, p.symbols.at("target"));
}

TEST(Emu, DivideOverflowEdgeCasesAreDefined)
{
    // INT64_MIN / -1 overflows two's complement; the ISA defines it to
    // wrap (quotient INT64_MIN, remainder 0) instead of trapping.
    Emulator e = runProgram(
        "li t0, 1\n"
        "slli t0, t0, 63\n"      // INT64_MIN
        "li t1, -1\n"
        "div t2, t0, t1\n"
        "rem t3, t0, t1\n"
        "div t4, t0, zero\n"     // divide by zero -> 0
        "rem t5, t0, zero\n"
        "li v0, 0\nli a0, 0\nsyscall\n");
    EXPECT_EQ(e.state().regs[1], 1ULL << 63);
    EXPECT_EQ(e.state().regs[3], 1ULL << 63) << "quotient wraps";
    EXPECT_EQ(e.state().regs[4], 0u) << "remainder is zero";
    EXPECT_EQ(e.state().regs[5], 0u) << "divide by zero yields zero";
    EXPECT_EQ(e.state().regs[6], 0u);
}

TEST(Emu, RandSeedSelectsInputStream)
{
    const char *src =
        "li v0, 5\nsyscall\n"
        "mov t0, v0\n"
        "li v0, 1\nmov a0, t0\nsyscall\n"
        "li v0, 0\nli a0, 0\nsyscall\n";
    const Program p = assemble(src);
    Emulator::Options o1, o2;
    o1.randSeed = 1;
    o2.randSeed = 2;
    Emulator e1(p, o1), e1b(p, o1), e2(p, o2);
    e1.run();
    e1b.run();
    e2.run();
    EXPECT_EQ(e1.output(), e1b.output()) << "same seed, same stream";
    EXPECT_NE(e1.output(), e2.output()) << "different seed, new input";
}

// ---- checkpoint / resume (sampled simulation) -----------------------

namespace
{

/** A program exercising every piece of checkpointed state: memory,
 *  registers, the rand stream, the clock syscall (instruction count)
 *  and accumulated output. */
const char *const CheckpointProg = R"(
        .data
buf:    .space 64
        .text
_start:
        la   s0, buf
        li   s1, 40          # iterations
loop:
        li   v0, 5           # rand
        syscall
        mov  a0, v0
        li   v0, 1           # print_int(rand)
        syscall
        li   a0, 32
        li   v0, 3           # print_char(' ')
        syscall
        li   v0, 4           # clock
        syscall
        mov  a0, v0
        li   v0, 1           # print_int(clock)
        syscall
        li   a0, 10
        li   v0, 3           # print_char('\n')
        syscall
        stq  v0, 0(s0)
        addi s0, s0, 8
        andi s0, s0, 4088
        subi s1, s1, 1
        bne  s1, loop
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace

TEST(EmuCheckpoint, ResumedRunIsByteIdenticalToUninterrupted)
{
    const Program prog = assemble(CheckpointProg);

    // Reference: one uninterrupted run.
    Emulator ref(prog);
    ref.run();

    // Checkpointed: run 100 insts, snapshot, resume in a FRESH
    // emulator built from the same program.
    Emulator first(prog);
    first.runUntil(100);
    ASSERT_FALSE(first.done());
    const EmuCheckpoint ckpt = first.checkpoint();
    EXPECT_EQ(ckpt.instCount, 100u);

    Emulator resumed(prog);
    resumed.restore(ckpt);
    EXPECT_EQ(resumed.instCount(), 100u);
    resumed.run();

    // Byte-identical output (covers the clock syscall's preserved
    // instruction count and the rand stream's preserved state),
    // identical final architectural state.
    EXPECT_EQ(resumed.output(), ref.output());
    EXPECT_EQ(resumed.instCount(), ref.instCount());
    EXPECT_EQ(resumed.exitCode(), ref.exitCode());
    EXPECT_EQ(resumed.memory().digest(), ref.memory().digest());
    EXPECT_TRUE(resumed.memory() == ref.memory());
    for (unsigned r = 0; r < NumLogRegs; ++r)
        EXPECT_EQ(resumed.state().regs[r], ref.state().regs[r]) << r;
    EXPECT_EQ(resumed.state().pc, ref.state().pc);
}

TEST(EmuCheckpoint, ChainedCheckpointsComposeExactly)
{
    // Chopping a run at several points must not perturb it: resume
    // from 50, checkpoint again at 150, resume again, run to the end.
    const Program prog = assemble(CheckpointProg);
    Emulator ref(prog);
    ref.run();

    Emulator a(prog);
    a.runUntil(50);
    Emulator b(prog);
    b.restore(a.checkpoint());
    b.runUntil(150);
    Emulator c(prog);
    c.restore(b.checkpoint());
    c.run();

    EXPECT_EQ(c.output(), ref.output());
    EXPECT_EQ(c.instCount(), ref.instCount());
    EXPECT_EQ(c.memory().digest(), ref.memory().digest());
}

TEST(EmuCheckpoint, RunUntilStopsExactlyAndRunsToEnd)
{
    const Program prog = assemble(CheckpointProg);
    Emulator emu(prog);
    EXPECT_EQ(emu.runUntil(37), 37u);
    EXPECT_EQ(emu.instCount(), 37u);
    const std::uint64_t total = emu.runUntil(~std::uint64_t{0});
    EXPECT_TRUE(emu.done());
    EXPECT_EQ(total, emu.instCount());
}

TEST(EmuCheckpoint, RestoreOntoDifferentProgramDies)
{
    const Program prog = assemble(CheckpointProg);
    Emulator emu(prog);
    emu.runUntil(10);
    const EmuCheckpoint ckpt = emu.checkpoint();

    const Program other = assemble(
        "_start:\n        li v0, 0\n        li a0, 0\n"
        "        syscall\n");
    Emulator victim(other);
    EXPECT_DEATH(victim.restore(ckpt), "different program");
}

TEST(EmuCheckpoint, ProgramDigestSensitivity)
{
    const Program a = assemble("_start:\n        li v0, 0\n"
                               "        li a0, 0\n        syscall\n");
    const Program b = assemble("_start:\n        li v0, 0\n"
                               "        li a0, 1\n        syscall\n");
    EXPECT_NE(programDigest(a), programDigest(b));
    EXPECT_EQ(programDigest(a), programDigest(a));
}
