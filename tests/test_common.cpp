/**
 * @file
 * Tests for the common utilities: formatting, tables, RNG, bit
 * helpers and the statistics registry.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

using namespace reno;

TEST(StrPrintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
    EXPECT_EQ(strprintf("%s", "hello"), "hello");
    EXPECT_EQ(strprintf("%05x", 0xab), "000ab");
    EXPECT_EQ(strprintf(""), "");
}

TEST(SignExtend, Basics)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0, 16), 0);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0xffffffffULL, 32), -1);
}

TEST(FitsSigned, Boundaries)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(0, 16));
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0));
        EXPECT_TRUE(rng.chance(100));
    }
}

TEST(StatGroup, RegistersAndDumps)
{
    StatGroup group("test");
    Counter &a = group.add("alpha");
    Counter &b = group.add("beta");
    ++a;
    b += 10;
    EXPECT_EQ(group.get("alpha"), 1u);
    EXPECT_EQ(group.get("beta"), 10u);
    EXPECT_EQ(group.get("missing"), 0u);

    const auto dump = group.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "alpha");
    EXPECT_EQ(dump[1].second, 10u);

    group.resetAll();
    EXPECT_EQ(group.get("beta"), 0u);
}

TEST(StatGroup, DuplicateAddReturnsSameCounter)
{
    StatGroup group("test");
    Counter &a1 = group.add("x");
    Counter &a2 = group.add("x");
    ++a1;
    ++a2;
    EXPECT_EQ(group.get("x"), 2u);
    EXPECT_EQ(group.dump().size(), 1u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
    // Column alignment: "1" and "22" start at the same offset.
    const auto lines_at = [&](size_t n) {
        size_t pos = 0;
        for (size_t i = 0; i < n; ++i)
            pos = out.find('\n', pos) + 1;
        return out.substr(pos, out.find('\n', pos) - pos);
    };
    EXPECT_EQ(lines_at(2).find('1'), lines_at(3).find('2'));
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"only"});
    EXPECT_FALSE(t.render().empty());
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.123), "12.3");
    EXPECT_EQ(fmtPercent(1.0, 0), "100");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
}
