/**
 * @file
 * Physical register file / reference counting tests (paper section
 * 3.1): allocation, sharing increments, free-at-zero semantics, the
 * free callback used for IT invalidation, and conservation invariants.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "reno/physregs.hpp"

using namespace reno;

TEST(PhysRegs, AllocatesDistinctRegisters)
{
    PhysRegFile prf(8);
    std::set<PhysReg> seen;
    for (int i = 0; i < 8; ++i)
        seen.insert(prf.alloc());
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(prf.numFree(), 0u);
    EXPECT_FALSE(prf.hasFree());
}

TEST(PhysRegs, FreeAtZeroAndRecycle)
{
    PhysRegFile prf(4);
    const PhysReg p = prf.alloc();
    EXPECT_EQ(prf.refCount(p), 1u);
    prf.decRef(p);
    EXPECT_EQ(prf.refCount(p), 0u);
    EXPECT_EQ(prf.numFree(), 4u);
    // Allocation finds the recycled register eventually.
    std::set<PhysReg> seen;
    for (int i = 0; i < 4; ++i)
        seen.insert(prf.alloc());
    EXPECT_TRUE(seen.count(p));
}

TEST(PhysRegs, SharingIncrements)
{
    PhysRegFile prf(4);
    const PhysReg p = prf.alloc();
    prf.incRef(p);  // RENO sharing operation
    prf.incRef(p);
    EXPECT_EQ(prf.refCount(p), 3u);
    prf.decRef(p);
    prf.decRef(p);
    EXPECT_EQ(prf.refCount(p), 1u);
    EXPECT_EQ(prf.numFree(), 3u);
    prf.decRef(p);
    EXPECT_EQ(prf.numFree(), 4u);
}

TEST(PhysRegs, OnFreeCallbackFires)
{
    std::vector<PhysReg> freed;
    PhysRegFile prf(4, [&](PhysReg p) { freed.push_back(p); });
    const PhysReg a = prf.alloc();
    const PhysReg b = prf.alloc();
    prf.incRef(a);
    prf.decRef(a);  // still referenced: no callback
    EXPECT_TRUE(freed.empty());
    prf.decRef(a);
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_EQ(freed[0], a);
    prf.decRef(b);
    EXPECT_EQ(freed.size(), 2u);
}

TEST(PhysRegs, TotalRefsConservation)
{
    PhysRegFile prf(16);
    EXPECT_EQ(prf.totalRefs(), 0u);
    std::vector<PhysReg> regs;
    for (int i = 0; i < 10; ++i)
        regs.push_back(prf.alloc());
    EXPECT_EQ(prf.totalRefs(), 10u);
    prf.incRef(regs[0]);
    prf.incRef(regs[1]);
    EXPECT_EQ(prf.totalRefs(), 12u);
    for (const PhysReg p : regs)
        prf.decRef(p);
    EXPECT_EQ(prf.totalRefs(), 2u);
    EXPECT_EQ(prf.numFree(), 16u - 2u);
}

TEST(PhysRegs, OracleValues)
{
    PhysRegFile prf(4);
    const PhysReg p = prf.alloc();
    prf.setValue(p, 0xdeadbeef);
    EXPECT_EQ(prf.value(p), 0xdeadbeefu);
}

TEST(PhysRegs, ChurnKeepsPoolConsistent)
{
    // Allocate/free in a pattern for a while; the pool never leaks.
    PhysRegFile prf(8);
    std::vector<PhysReg> live;
    for (int round = 0; round < 2000; ++round) {
        if (live.size() < 6) {
            live.push_back(prf.alloc());
        } else {
            prf.decRef(live.front());
            live.erase(live.begin());
        }
        EXPECT_EQ(prf.numFree() + live.size(), 8u);
        EXPECT_EQ(prf.totalRefs(), live.size());
    }
}

TEST(PhysRegsDeath, DecRefOnFreeRegisterPanics)
{
    PhysRegFile prf(2);
    const PhysReg p = prf.alloc();
    prf.decRef(p);
    EXPECT_DEATH(prf.decRef(p), "decRef");
}

TEST(PhysRegsDeath, IncRefOnFreeRegisterPanics)
{
    PhysRegFile prf(2);
    EXPECT_DEATH(prf.incRef(0), "incRef");
}

TEST(PhysRegsDeath, AllocWithNoFreePanics)
{
    PhysRegFile prf(1);
    prf.alloc();
    EXPECT_DEATH(prf.alloc(), "no free");
}
