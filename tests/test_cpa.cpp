/**
 * @file
 * Critical-path analyzer tests: bucket accounting on synthetic
 * retirement streams and end-to-end behavior on microbenchmarks with
 * known bottlenecks.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cpa/critpath.hpp"
#include "uarch/core.hpp"
#include "emu/emulator.hpp"

using namespace reno;

namespace
{

/** Build a synthetic retired DynInst. */
DynInst
retiredInst(InstSeq seq, Cycle f, Cycle i, Cycle e, Cycle c,
            IssueDom dom, InstSeq producer, CommitDom cdom,
            InstClass cls = InstClass::IntAlu)
{
    DynInst d;
    d.seq = seq;
    d.renameCycle = f;
    d.issued = true;
    d.issueCycle = i;
    d.completeCycle = e;
    d.retireCycle = c;
    d.issueDom = dom;
    d.domProducer = producer;
    d.commitDom = cdom;
    Instruction inst;
    inst.op = cls == InstClass::Load ? Opcode::LDQ : Opcode::ADD;
    inst.rc = 1;
    d.rec.inst = inst;
    return d;
}

std::array<double, NumCpBuckets>
runCritpath(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator emu(prog);
    Core core(params, emu);
    CriticalPathAnalyzer cpa(1'000'000, params.robEntries,
                             params.iqEntries);
    core.setRetireListener(&cpa);
    core.run();
    cpa.finish();
    return cpa.breakdown();
}

} // namespace

TEST(Cpa, BucketNames)
{
    EXPECT_STREQ(cpBucketName(CpBucket::Fetch), "fetch");
    EXPECT_STREQ(cpBucketName(CpBucket::AluExec), "alu_exec");
    EXPECT_STREQ(cpBucketName(CpBucket::LoadExec), "load_exec");
    EXPECT_STREQ(cpBucketName(CpBucket::LoadMem), "load_mem");
    EXPECT_STREQ(cpBucketName(CpBucket::Commit), "commit");
}

TEST(Cpa, EmptyStreamIsHarmless)
{
    CriticalPathAnalyzer cpa;
    cpa.finish();
    EXPECT_EQ(cpa.totalWeight(), 0u);
    for (const double x : cpa.breakdown())
        EXPECT_EQ(x, 0.0);
}

TEST(Cpa, DependentChainChargesAluBucket)
{
    CriticalPathAnalyzer cpa(1000, 128, 50);
    // 10 instructions, each issuing right after its predecessor's
    // completion: a pure ALU dependence chain.
    Cycle t = 10;
    for (InstSeq s = 1; s <= 10; ++s) {
        cpa.onRetire(retiredInst(
            s, /*f=*/1, /*i=*/t, /*e=*/t + 1, /*c=*/t + 2,
            s == 1 ? IssueDom::Dispatch : IssueDom::Src0, s - 1,
            CommitDom::SelfComplete));
        t += 1;
    }
    cpa.finish();
    const auto b = cpa.breakdown();
    EXPECT_GT(b[static_cast<unsigned>(CpBucket::AluExec)], 0.4);
}

TEST(Cpa, LoadLatencyChargesLoadBuckets)
{
    CriticalPathAnalyzer cpa(1000, 128, 50);
    // Chain of loads each missing to memory (100 cycles), L1-level.
    Cycle t = 10;
    for (InstSeq s = 1; s <= 10; ++s) {
        DynInst d = retiredInst(
            s, 1, t, t + 100, t + 101,
            s == 1 ? IssueDom::Dispatch : IssueDom::Src0, s - 1,
            CommitDom::SelfComplete, InstClass::Load);
        d.memLevel = MemHitLevel::Memory;
        cpa.onRetire(d);
        t += 100;
    }
    cpa.finish();
    const auto b = cpa.breakdown();
    EXPECT_GT(b[static_cast<unsigned>(CpBucket::LoadMem)], 0.8);
}

TEST(Cpa, FetchBoundStreamChargesFetch)
{
    CriticalPathAnalyzer cpa(1000, 128, 50);
    // Instructions rename 1/cycle and execute instantly: in-order
    // fetch is the only constraint.
    for (InstSeq s = 1; s <= 50; ++s) {
        cpa.onRetire(retiredInst(s, s, s + 3, s + 4, s + 5,
                                 IssueDom::Dispatch, 0,
                                 CommitDom::SelfComplete));
    }
    cpa.finish();
    const auto b = cpa.breakdown();
    EXPECT_GT(b[static_cast<unsigned>(CpBucket::Fetch)], 0.7);
}

TEST(Cpa, BreakdownSumsToOne)
{
    CriticalPathAnalyzer cpa(1000, 128, 50);
    for (InstSeq s = 1; s <= 20; ++s) {
        cpa.onRetire(retiredInst(s, s, s + 3, s + 4, s + 5,
                                 IssueDom::Dispatch, 0,
                                 s % 3 ? CommitDom::PrevCommit
                                       : CommitDom::SelfComplete));
    }
    cpa.finish();
    double sum = 0;
    for (const double x : cpa.breakdown())
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(cpa.totalWeight(), 0u);
}

TEST(Cpa, ChunkingProcessesIncrementally)
{
    CriticalPathAnalyzer cpa(8, 4, 4);  // tiny chunks
    for (InstSeq s = 1; s <= 40; ++s) {
        cpa.onRetire(retiredInst(s, s, s + 3, s + 4, s + 5,
                                 IssueDom::Dispatch, 0,
                                 CommitDom::SelfComplete));
    }
    cpa.finish();
    EXPECT_GT(cpa.totalWeight(), 0u);
}

// ---- end-to-end shape checks ---------------------------------------------

TEST(CpaEndToEnd, MemoryBoundLoopShowsLoadCriticality)
{
    // Pointer-chasing through a 256KB ring: D$ misses dominate.
    const char *src = R"(
        .data
buf:    .space 262144
        .text
_start:
        la   s0, buf
        # build a stride-2080 ring of pointers (prime-ish stride)
        li   t0, 0
        li   s1, 126
init:
        muli t1, t0, 2080
        add  t2, s0, t1
        addi t3, t0, 1
        muli t4, t3, 2080
        add  t5, s0, t4
        stq  t5, 0(t2)
        mov  t0, t3
        slt  t6, t0, s1
        bne  t6, init
        muli t1, s1, 2080
        add  t2, s0, t1
        stq  s0, 0(t2)        # close the ring
        # chase
        mov  t0, s0
        li   s2, 20000
chase:
        ldq  t0, 0(t0)
        subi s2, s2, 1
        bne  s2, chase
        li   v0, 0
        li   a0, 0
        syscall
)";
    const auto b = runCritpath(src, CoreParams{});
    const double load_total =
        b[static_cast<unsigned>(CpBucket::LoadExec)] +
        b[static_cast<unsigned>(CpBucket::LoadMem)];
    EXPECT_GT(load_total, 0.5) << "pointer chase must be load-bound";
}

TEST(CpaEndToEnd, AluBoundLoopShowsAluCriticality)
{
    const char *src =
        "  li s1, 5000\n  li t0, 1\n"
        "loop:\n"
        "  mul t0, t0, s1\n"
        "  mul t0, t0, t0\n"
        "  ori t0, t0, 1\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const auto b = runCritpath(src, CoreParams{});
    EXPECT_GT(b[static_cast<unsigned>(CpBucket::AluExec)], 0.4);
}

TEST(CpaEndToEnd, RenoCollapsesAluCriticalityIntoFetch)
{
    // A serial chain of foldable register-immediate additions: the
    // baseline's critical path runs through the ALU; with RENO the
    // chain collapses and criticality migrates to the in-order front
    // end (the paper's "ALU criticality decays into fetch
    // criticality", section 4.3).
    const char *src =
        "  li s1, 4000\n  li t0, 1\n"
        "loop:\n"
        "  addi t0, t0, 3\n"
        "  addi t1, t0, 5\n"
        "  add  t0, t1, s1\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";

    CoreParams base;
    const auto b = runCritpath(src, base);

    CoreParams reno;
    reno.reno = RenoConfig::full();
    const auto r = runCritpath(src, reno);

    const unsigned alu = static_cast<unsigned>(CpBucket::AluExec);
    const unsigned fetch = static_cast<unsigned>(CpBucket::Fetch);
    EXPECT_LT(r[alu], b[alu])
        << "folding must remove ALU cycles from the critical path";
    EXPECT_GT(r[fetch], b[fetch])
        << "what remains critical is front-end delivery";
}

TEST(CpaEndToEnd, BreakdownIsDeterministic)
{
    const char *src =
        "  li s1, 2000\n  li t0, 1\n"
        "loop:\n"
        "  mul t0, t0, s1\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    const auto a = runCritpath(src, CoreParams{});
    const auto b = runCritpath(src, CoreParams{});
    for (unsigned i = 0; i < NumCpBuckets; ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "bucket " << i;
}
