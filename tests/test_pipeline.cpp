/**
 * @file
 * Pipeline-subsystem tests: golden byte-identity of full SimResult
 * vectors against the pre-refactor monolithic core (squash/replay
 * included), stall-counter attribution per back-pressured resource,
 * StatSet snapshot/delta algebra as used by the sampling windows, and
 * instruction-arena recycling.
 */
#include <gtest/gtest.h>

#include <string>

#include "asm/assembler.hpp"
#include "common/statset.hpp"
#include "sample/interval.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

SimResult
runProgram(const std::string &src, const CoreParams &params)
{
    const Program prog = assemble(src);
    Emulator emu(prog);
    Core core(params, emu);
    return core.run();
}

const char *const exitOnly = "  li v0, 0\n  li a0, 0\n  syscall\n";

// Program with frequent memory-order violations (slow store address,
// overlapping load right behind it): exercises squash/replay.
const char *const violationSrc = R"(
        .data
buf:    .space 256
        .text
_start:
        la   s0, buf
        li   s1, 2000
        li   s3, 0
loop:
        mul  t0, s1, s1
        andi t0, t0, 24
        add  t1, s0, t0
        stq  s1, 0(t1)
        andi t2, s1, 24
        add  t3, s0, t2
        ldq  t4, 0(t3)
        add  s3, s3, t4
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s3
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

// Store/reload pairs from alternating pcs: integrated loads whose
// tuples go stale, plus retirement-port (LSQ drain) pressure.
const char *const misintegSrc = R"(
        .data
slot:   .space 64
        .text
_start:
        la   s0, slot
        li   s1, 500
        li   s3, 0
loop:
        stq  s1, 8(s0)
        ldq  t0, 8(s0)
        add  s3, s3, t0
        addi t1, s1, 7
        stq  t1, 8(s0)
        ldq  t2, 8(s0)
        add  s3, s3, t2
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s3
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

// Call-heavy kernel with stack traffic, redundant loads, moves and
// folded additions (the CoreEquivalence program from test_core).
const char *const mixedSrc = R"(
        .data
arr:    .space 1024
        .text
helper:
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        mov  s0, a0
        slli t0, s0, 3
        andi t0, t0, 1016
        la   t1, arr
        add  t1, t1, t0
        ldq  t2, 0(t1)
        add  t2, t2, s0
        stq  t2, 0(t1)
        ldq  t3, 0(t1)
        mov  v0, t3
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        addi sp, sp, 16
        ret
_start:
        li   s1, 300
        li   s2, 0
loop:
        mov  a0, s1
        subi sp, sp, 8
        stq  ra, 0(sp)
        call helper
        ldq  ra, 0(sp)
        addi sp, sp, 8
        add  s2, s2, v0
        subi s1, s1, 1
        bne  s1, loop
        mov  a0, s2
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace

// ---- golden byte-identity vs. the pre-refactor core --------------------
//
// The expected vectors below were produced by the monolithic
// src/uarch/core.{hpp,cpp} (commit dbd4032, before the src/pipeline/
// decomposition) on default CoreParams. Every counter of SimResult
// must match exactly: the stage decomposition, the issue-candidate
// list, the robStores/robLoads scan views and the instruction arena
// are required to be behavior-preserving, not just statistically
// close.

namespace
{

struct GoldenCase {
    const char *name;
    SimResult expect;
};

const GoldenCase ViolationGolden[] = {
    {"violation-base",
     {5913u, 20010u,
      {20010u, 0u, 0u, 0u, 0u},
      2000u, 2000u, 2000u,
      0u, 0u, 0u, 0u,
      1u, 0u,
      2000u, 3u,
      3u, 1u, 3u,
      71u, 1957u, 0u, 0u}},
    {"violation-reno",
     {5416u, 20010u,
      {18004u, 4u, 2002u, 0u, 0u},
      2000u, 2000u, 2000u,
      6009u, 0u, 0u, 0u,
      1u, 0u,
      2000u, 3u,
      3u, 1u, 3u,
      74u, 0u, 0u, 0u}},
};

const GoldenCase MisintegGolden = {
    "misinteg-reno",
    {2258u, 4510u,
     {2504u, 4u, 1002u, 0u, 1000u},
     1000u, 1000u, 500u,
     2000u, 1000u, 0u, 0u,
     0u, 0u,
     500u, 3u,
     3u, 1u, 3u,
     0u, 0u, 0u, 919u}};

const GoldenCase MixedGolden[] = {
    {"mixed-base",
     {4485u, 8108u,
      {8108u, 0u, 0u, 0u, 0u},
      1500u, 1200u, 900u,
      0u, 0u, 0u, 0u,
      4u, 0u,
      900u, 3u,
      5u, 33u, 20u,
      1925u, 0u, 0u, 0u}},
    {"mixed-reno",
     {4430u, 8108u,
      {5585u, 429u, 1152u, 0u, 942u},
      1500u, 1200u, 900u,
      3041u, 942u, 0u, 825u,
      0u, 0u,
      900u, 3u,
      5u, 33u, 20u,
      2048u, 0u, 0u, 0u}},
    {"mixed-fullit",
     {4430u, 8108u,
      {5246u, 429u, 1152u, 340u, 941u},
      1500u, 1200u, 900u,
      7525u, 1281u, 0u, 825u,
      0u, 0u,
      900u, 3u,
      5u, 33u, 20u,
      2048u, 0u, 0u, 0u}},
};

void
expectResultEq(const SimResult &got, const SimResult &want,
               const char *label)
{
    // The goldens freeze every counter that existed when they were
    // recorded: the registry prefix up to the elim array. Counters
    // appended later (the per-memory-level block) are asserted by
    // their own tests, not frozen here.
    for (const SimStatField &f : simResultFields()) {
        EXPECT_EQ(statValue(got, f), statValue(want, f))
            << label << ": counter '" << f.name << "' diverged from "
            << "the pre-refactor golden result";
        if (std::string_view(f.name) == "elim4")
            break;
    }
}

SimResult
runWithConfig(const char *src, const RenoConfig &config)
{
    CoreParams p;
    p.reno = config;
    return runProgram(src, p);
}

} // namespace

TEST(PipelineGolden, ViolationSquashReplayByteIdentical)
{
    expectResultEq(runWithConfig(violationSrc, RenoConfig::baseline()),
                   ViolationGolden[0].expect, ViolationGolden[0].name);
    expectResultEq(runWithConfig(violationSrc, RenoConfig::full()),
                   ViolationGolden[1].expect, ViolationGolden[1].name);
}

TEST(PipelineGolden, MisintegrationWorkloadByteIdentical)
{
    expectResultEq(runWithConfig(misintegSrc, RenoConfig::full()),
                   MisintegGolden.expect, MisintegGolden.name);
}

TEST(PipelineGolden, MixedKernelByteIdenticalAcrossConfigs)
{
    expectResultEq(runWithConfig(mixedSrc, RenoConfig::baseline()),
                   MixedGolden[0].expect, MixedGolden[0].name);
    expectResultEq(runWithConfig(mixedSrc, RenoConfig::full()),
                   MixedGolden[1].expect, MixedGolden[1].name);
    expectResultEq(runWithConfig(mixedSrc, RenoConfig::fullIt()),
                   MixedGolden[2].expect, MixedGolden[2].name);
}

// ---- stall-counter attribution ------------------------------------------

TEST(PipelineStalls, RobPressureChargedToStallRob)
{
    // Serial dependent cache-missing loads with a tiny ROB: rename
    // backs up on the full ROB, not on the (larger) issue queue.
    const char *src =
        ".data\nbuf: .space 262144\n.text\n"
        "  la s0, buf\n  li s1, 4000\n"
        "loop:\n"
        "  ldq t0, 0(s0)\n"
        "  add s0, s0, t0\n"
        "  addi s0, s0, 64\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    p.robEntries = 8;
    p.iqEntries = 50;
    const SimResult r = runProgram(src, p);
    EXPECT_GT(r.stallRob, 0u);
    EXPECT_EQ(r.stallIq, 0u)
        << "the ROB (8) fills before the issue queue (50) can";
}

TEST(PipelineStalls, IqPressureChargedToStallIq)
{
    // A long multiply dependence chain with a tiny issue queue inside
    // a big ROB: unissued work piles up in the IQ.
    const char *src =
        "  li s1, 2000\n  li t0, 3\n"
        "loop:\n"
        "  mul t0, t0, t0\n"
        "  mul t0, t0, t0\n"
        "  mul t0, t0, t0\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    p.iqEntries = 4;
    const SimResult r = runProgram(src, p);
    EXPECT_GT(r.stallIq, 0u);
    EXPECT_EQ(r.stallRob, 0u);
}

TEST(PipelineStalls, PregPressureChargedToStallPregs)
{
    // Every instruction writes a register; with barely more physical
    // registers than architectural ones, rename starves for pregs.
    const char *src =
        "  li s1, 2000\n  li t0, 3\n"
        "loop:\n"
        "  mul t1, t0, t0\n"
        "  mul t2, t1, t1\n"
        "  mul t3, t2, t2\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    p.numPregs = NumLogRegs + 2;
    const SimResult r = runProgram(src, p);
    EXPECT_GT(r.stallPregs, 0u);
}

TEST(PipelineStalls, StoreQueuePressureChargedToStallLsq)
{
    const char *src =
        ".data\nbuf: .space 4096\n.text\n"
        "  la s0, buf\n  li s1, 2000\n"
        "loop:\n"
        "  stq s1, 0(s0)\n"
        "  stq s1, 8(s0)\n"
        "  stq s1, 16(s0)\n"
        "  stq s1, 24(s0)\n"
        "  subi s1, s1, 1\n"
        "  bne s1, loop\n"
        "  li v0, 0\n  li a0, 0\n  syscall\n";
    CoreParams p;
    p.sqEntries = 2;
    const SimResult r = runProgram(src, p);
    EXPECT_GT(r.stallLsq, 0u);
}

// ---- StatSet registry and snapshot/delta algebra ------------------------

TEST(StatSetTest, RegistersNamedCountersInOrder)
{
    StatSet set("test");
    std::uint64_t &a = set.add("alpha");
    std::uint64_t &b = set.add("beta");
    a += 3;
    ++b;
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.has("alpha"));
    EXPECT_FALSE(set.has("gamma"));
    EXPECT_EQ(set.value("alpha"), 3u);
    EXPECT_EQ(set.value("beta"), 1u);
    EXPECT_EQ(set.value("gamma"), 0u);
    ASSERT_EQ(set.names().size(), 2u);
    EXPECT_EQ(set.names()[0], "alpha");
    EXPECT_EQ(set.names()[1], "beta");
    // Re-adding returns the same counter.
    EXPECT_EQ(&set.add("alpha"), &a);
}

TEST(StatSetTest, ReferencesSurviveGrowth)
{
    StatSet set;
    std::uint64_t &first = set.add("first");
    for (int i = 0; i < 1000; ++i)
        set.add("extra" + std::to_string(i));
    first = 42;
    EXPECT_EQ(set.value("first"), 42u);
}

TEST(StatSetTest, SnapshotDeltaAlgebra)
{
    // The sampling-window contract: counters are monotonic, so a
    // window's contribution is the delta of its boundary snapshots,
    // and window deltas accumulate back to the full-run totals.
    StatSet set;
    std::uint64_t &x = set.add("x");
    std::uint64_t &y = set.add("y");

    const StatSnapshot s0 = set.snapshot();
    x += 10;
    y += 1;
    const StatSnapshot s1 = set.snapshot();
    x += 5;
    y += 2;
    const StatSnapshot s2 = set.snapshot();

    const StatSnapshot w1 = s1.delta(s0);
    const StatSnapshot w2 = s2.delta(s1);
    EXPECT_EQ(w1.values[0], 10u);
    EXPECT_EQ(w1.values[1], 1u);
    EXPECT_EQ(w2.values[0], 5u);
    EXPECT_EQ(w2.values[1], 2u);

    StatSnapshot sum;
    sum.accumulate(w1);
    sum.accumulate(w2);
    EXPECT_EQ(sum, s2.delta(s0));
    EXPECT_EQ(sum.values[0], x);
    EXPECT_EQ(sum.values[1], y);
}

TEST(StatSetDeath, IncompatibleSnapshotsRejected)
{
    StatSet a, b;
    a.add("x");
    b.add("x");
    b.add("y");
    const StatSnapshot sa = a.snapshot();
    const StatSnapshot sb = b.snapshot();
    EXPECT_EXIT((void)sb.delta(sa), ::testing::ExitedWithCode(1),
                "incompatible");
}

TEST(PipelineStatSet, CoreExposesNamedRegistry)
{
    const Program prog = assemble(mixedSrc);
    Emulator emu(prog);
    CoreParams p;
    p.reno = RenoConfig::full();
    Core core(p, emu);
    const SimResult r = core.run();

    const StatSet &stats = core.stats();
    EXPECT_EQ(stats.value("retired"), r.retired);
    EXPECT_EQ(stats.value("retired_loads"), r.retiredLoads);
    EXPECT_EQ(stats.value("retired_stores"), r.retiredStores);
    EXPECT_EQ(stats.value("retired_branches"), r.retiredBranches);
    EXPECT_EQ(stats.value("retired_elim_me"), r.elim[1]);
    EXPECT_EQ(stats.value("retired_elim_cf"), r.elim[2]);
    EXPECT_EQ(stats.value("retired_elim_ra"), r.elim[4]);
    EXPECT_EQ(stats.value("violation_squashes"), r.violationSquashes);
    EXPECT_EQ(stats.value("stall_rob"), r.stallRob);
    EXPECT_EQ(stats.value("stall_lsq"), r.stallLsq);
}

TEST(PipelineStatSet, WindowDeltasMatchFullRun)
{
    // Two windows over one run: boundary-snapshot deltas must
    // accumulate to the final totals (what runIntervalDetailed relies
    // on), for the named registry and the SimResult algebra alike.
    const Program prog = assemble(mixedSrc);
    Emulator emu(prog);
    CoreParams p;
    p.reno = RenoConfig::full();
    Core core(p, emu);

    const StatSnapshot s0 = core.stats().snapshot();
    const SimResult r0 = core.result();
    core.runUntilRetired(3000);
    const StatSnapshot s1 = core.stats().snapshot();
    const SimResult r1 = core.result();
    core.run();
    const StatSnapshot s2 = core.stats().snapshot();
    const SimResult r2 = core.result();

    StatSnapshot sum;
    sum.accumulate(s1.delta(s0));
    sum.accumulate(s2.delta(s1));
    EXPECT_EQ(sum, s2.delta(s0));

    SimResult acc;
    sample::accumulateResult(acc, sample::deltaResult(r1, r0));
    sample::accumulateResult(acc, sample::deltaResult(r2, r1));
    expectResultEq(acc, r2, "window-accumulate");
}

// ---- instruction arena ---------------------------------------------------

TEST(PipelineArena, RecyclesInsteadOfGrowing)
{
    // Thousands of retired instructions and violation squash/replay
    // churn, yet the in-flight population never exceeds one slab.
    const Program prog = assemble(violationSrc);
    Emulator emu(prog);
    CoreParams p;
    p.reno = RenoConfig::full();
    Core core(p, emu);
    const SimResult r = core.run();
    EXPECT_GT(r.retired, 10000u);
    EXPECT_EQ(core.machineState().arena.slabCount(), 1u);
}

TEST(PipelineArena, AcquireReturnsResetSlots)
{
    InstArena arena;
    DynInst *a = arena.acquire();
    a->renamed = true;
    a->issued = true;
    a->seq = 7;
    arena.release(a);
    DynInst *b = arena.acquire();
    ASSERT_EQ(a, b) << "LIFO recycling should hand back the same slot";
    EXPECT_FALSE(b->renamed);
    EXPECT_FALSE(b->issued);
    EXPECT_FALSE(b->inIssueList);
}

TEST(PipelineFacade, TrivialProgramStillWorks)
{
    const SimResult r = runProgram(exitOnly, CoreParams{});
    EXPECT_EQ(r.retired, 3u);
    EXPECT_GT(r.cycles, 0u);
}
