/**
 * @file
 * Branch-prediction stack tests: the composite predictor's default
 * (tournament) behavior, per-engine direction learning (bimodal,
 * gshare, TAGE-lite, perceptron), BTB indirect targets, RAS
 * call/return behavior with overflow modeling, the indirect-target
 * table, parameter-validation fatals, and state export/import
 * round-trips across every engine.
 */
#include <gtest/gtest.h>

#include "bpred/predictor.hpp"
#include "harness/experiment.hpp"

using namespace reno;

namespace
{

Instruction
condBranch()
{
    return Instruction::branch(Opcode::BNE, 1, 4);
}

Instruction
callInst()
{
    return Instruction::jump(Opcode::BSR, RegRa, RegZero, 16);
}

Instruction
retInst()
{
    return Instruction::jump(Opcode::JMP, RegZero, RegRa, 0);
}

Instruction
indirectJump()
{
    return Instruction::jump(Opcode::JMP, RegZero, 5, 0);
}

BranchPredParams
withKind(DirPredKind kind)
{
    BranchPredParams p;
    p.dir.kind = kind;
    return p;
}

/** Train + score @p bp on a deterministic outcome stream at one PC;
 *  returns the correct fraction over the last quarter. */
double
lateAccuracy(BranchPredictor &bp, Addr pc,
             const std::vector<bool> &outcomes)
{
    const Instruction b = condBranch();
    const std::size_t tail = outcomes.size() / 4;
    unsigned correct = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Prediction p = bp.predict(pc, b);
        if (i >= outcomes.size() - tail && p.taken == outcomes[i])
            ++correct;
        bp.update(pc, b, outcomes[i],
                  outcomes[i] ? pc + 20 : pc + 4);
    }
    return double(correct) / double(tail);
}

} // namespace

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x1000;
    const Addr target = 0x1014;
    const Instruction b = condBranch();
    // Train a few times.
    for (int i = 0; i < 8; ++i) {
        bp.predict(pc, b);
        bp.update(pc, b, true, target);
    }
    const Prediction p = bp.predict(pc, b);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, target);
}

TEST(Bpred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x2000;
    const Instruction b = condBranch();
    for (int i = 0; i < 8; ++i) {
        bp.predict(pc, b);
        bp.update(pc, b, false, pc + 4);
    }
    const Prediction p = bp.predict(pc, b);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, pc + 4);
}

TEST(Bpred, GshareCapturesAlternatingPattern)
{
    BranchPredictor bp;
    const Addr pc = 0x3000;
    const Instruction b = condBranch();
    // T,N,T,N...: bimodal dithers; gshare + chooser learn it.
    unsigned correct_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        const Prediction p = bp.predict(pc, b);
        if (i >= 300 && p.taken == actual)
            ++correct_late;
        bp.update(pc, b, actual, actual ? 0x3014 : pc + 4);
    }
    EXPECT_GE(correct_late, 95u) << "pattern should be near-perfect";
}

TEST(Bpred, DirectCallPredictsTargetAndPushesRas)
{
    BranchPredictor bp;
    const Instruction call = callInst();
    const Prediction p = bp.predict(0x1000, call);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x1000 + 4 + 16 * 4);

    // Matching return pops the pushed address.
    const Prediction r = bp.predict(0x5000, retInst());
    EXPECT_TRUE(r.targetValid);
    EXPECT_TRUE(r.fromRas);
    EXPECT_EQ(r.target, 0x1004u);
}

TEST(Bpred, RasNesting)
{
    BranchPredictor bp;
    bp.predict(0x1000, callInst());  // pushes 0x1004
    bp.predict(0x2000, callInst());  // pushes 0x2004
    const Prediction r1 = bp.predict(0x6000, retInst());
    EXPECT_EQ(r1.target, 0x2004u);
    const Prediction r2 = bp.predict(0x6100, retInst());
    EXPECT_EQ(r2.target, 0x1004u);
}

TEST(Bpred, RasWrapsAtCapacityAndCountsOverflows)
{
    BranchPredParams params;
    params.ras.entries = 4;
    BranchPredictor bp(params);
    for (unsigned i = 0; i < 6; ++i)
        bp.predict(0x1000 + i * 0x100, callInst());
    // Two pushes beyond capacity clobbered the oldest frames.
    EXPECT_EQ(bp.rasOverflows(), 2u);
    // The deepest 4 returns are correct; older entries were clobbered.
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1504u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1404u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1304u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1204u);
}

TEST(Bpred, BtbLearnsIndirectTargets)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    const Instruction j = indirectJump();
    // Unknown at first.
    EXPECT_FALSE(bp.predict(pc, j).targetValid);
    bp.update(pc, j, true, 0x8888);
    const Prediction p = bp.predict(pc, j);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x8888u);
    // Retrains on a new target.
    bp.update(pc, j, true, 0x9999);
    EXPECT_EQ(bp.predict(pc, j).target, 0x9999u);
}

TEST(Bpred, ReturnThroughNonRaRegisterUsesBtb)
{
    BranchPredictor bp;
    const Instruction j = indirectJump();  // jmp (t4), not (ra)
    bp.update(0x4100, j, true, 0x7777);
    const Prediction p = bp.predict(0x4100, j);
    EXPECT_TRUE(p.targetValid);
    EXPECT_FALSE(p.fromRas);
    EXPECT_EQ(p.target, 0x7777u);
}

TEST(Bpred, UnconditionalBranchAlwaysTaken)
{
    BranchPredictor bp;
    const Instruction br = Instruction::branch(Opcode::BR, RegZero, 10);
    const Prediction p = bp.predict(0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x1000 + 4 + 40);
}

TEST(Bpred, CountsLookupsAndMispredictBreakdown)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.lookups(), 0u);
    bp.predict(0x1000, condBranch());
    EXPECT_EQ(bp.lookups(), 1u);
    bp.noteDirMispredict();
    bp.noteTargetMispredict();
    bp.noteRasMispredict();
    EXPECT_EQ(bp.dirMispredicts(), 1u);
    EXPECT_EQ(bp.targetMispredicts(), 1u);
    EXPECT_EQ(bp.rasMispredicts(), 1u);
    EXPECT_EQ(bp.mispredicts(), 3u);
}

TEST(Bpred, DistinctPcsDoNotInterfereMuch)
{
    BranchPredictor bp;
    const Instruction b = condBranch();
    // Train pc A taken, pc B (different bimodal index) not-taken.
    const Addr a = 0x1000, c = 0x1400;
    for (int i = 0; i < 8; ++i) {
        bp.predict(a, b);
        bp.update(a, b, true, a + 20);
        bp.predict(c, b);
        bp.update(c, b, false, c + 4);
    }
    EXPECT_TRUE(bp.predict(a, b).taken);
    EXPECT_FALSE(bp.predict(c, b).taken);
}

// ---------------------------------------------------------------------------
// Per-engine direction behavior.
// ---------------------------------------------------------------------------

TEST(DirEngines, BimodalLearnsBiasButNotAlternation)
{
    std::vector<bool> biased, alternating;
    for (int i = 0; i < 400; ++i) {
        biased.push_back(i % 16 != 0);
        alternating.push_back(i % 2 == 0);
    }
    BranchPredictor bias_bp(withKind(DirPredKind::Bimodal));
    EXPECT_GE(lateAccuracy(bias_bp, 0x1000, biased), 0.90);
    BranchPredictor alt_bp(withKind(DirPredKind::Bimodal));
    EXPECT_LE(lateAccuracy(alt_bp, 0x1000, alternating), 0.60)
        << "a history-less predictor cannot capture alternation";
}

TEST(DirEngines, GshareLearnsAlternation)
{
    std::vector<bool> alternating;
    for (int i = 0; i < 400; ++i)
        alternating.push_back(i % 2 == 0);
    BranchPredictor bp(withKind(DirPredKind::GShare));
    EXPECT_GE(lateAccuracy(bp, 0x1000, alternating), 0.95);
}

TEST(DirEngines, TageLearnsLongPeriodPatterns)
{
    // Period-24 pattern: beyond a 2-bit counter, learnable from
    // ~24 bits of history -- the long-history tagged tables.
    std::vector<bool> pattern;
    for (int i = 0; i < 3000; ++i)
        pattern.push_back((i % 24) < 7);
    BranchPredictor bp(withKind(DirPredKind::Tage));
    EXPECT_GE(lateAccuracy(bp, 0x1000, pattern), 0.90);
    EXPECT_GT(bp.direction().providerHits(), 0u)
        << "tagged tables should provide predictions";
    EXPECT_GT(bp.direction().altHits(), 0u)
        << "cold lookups fall through to the base table";
}

TEST(DirEngines, PerceptronLearnsHistoryCorrelationAndConfidence)
{
    // Outcome = history bit 3 (a linearly separable function of the
    // history): exactly what a perceptron learns and a bimodal
    // cannot.
    BranchPredictor bp(withKind(DirPredKind::Perceptron));
    const Instruction b = condBranch();
    const Addr pc = 0x1000;
    std::uint64_t hist = 0;
    unsigned correct_late = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const bool actual = (hist >> 3) & 1;
        const Prediction p = bp.predict(pc, b);
        if (i >= n - 400 && p.taken == actual)
            ++correct_late;
        bp.update(pc, b, actual, actual ? pc + 20 : pc + 4);
        hist = (hist << 1) | (i % 3 == 0 ? 1 : 0);
    }
    EXPECT_GE(correct_late, 380u);
    EXPECT_GT(bp.direction().confidentPredicts(), 0u);
}

TEST(DirEngines, TournamentMatchesSeedHybridChoice)
{
    // The alternating pattern from the seed test must stay
    // near-perfect under the explicit Tournament engine too (it IS
    // the default; this pins the equivalence).
    std::vector<bool> alternating;
    for (int i = 0; i < 400; ++i)
        alternating.push_back(i % 2 == 0);
    BranchPredictor def_bp;
    BranchPredictor tour_bp(withKind(DirPredKind::Tournament));
    EXPECT_EQ(lateAccuracy(def_bp, 0x3000, alternating),
              lateAccuracy(tour_bp, 0x3000, alternating));
}

// ---------------------------------------------------------------------------
// Indirect-target table.
// ---------------------------------------------------------------------------

TEST(IndirectTable, DisambiguatesMegamorphicSiteByPathHistory)
{
    // One dispatch site alternating between two targets in a fixed
    // rotation: the last-target BTB mispredicts every time the target
    // changes; the path-history-indexed table learns the rotation.
    BranchPredParams with_itt;
    with_itt.indirect.enabled = true;
    BranchPredParams btb_only;

    for (const bool use_itt : {false, true}) {
        BranchPredictor bp(use_itt ? with_itt : btb_only);
        const Instruction j = Instruction::jump(Opcode::JSR, RegRa,
                                                5, 0);
        const Addr pc = 0x4000;
        const Addr targets[2] = {0x8000, 0x9000};
        unsigned correct = 0;
        for (int i = 0; i < 64; ++i) {
            const Addr actual = targets[i % 2];
            const Prediction p = bp.predict(pc, j);
            if (i >= 32 && p.targetValid && p.target == actual)
                ++correct;
            bp.update(pc, j, true, actual);
        }
        if (use_itt)
            EXPECT_GE(correct, 30u) << "ITT should track the rotation";
        else
            EXPECT_EQ(correct, 0u)
                << "the last-target BTB always lags the rotation";
    }
}

// ---------------------------------------------------------------------------
// Parameter validation.
// ---------------------------------------------------------------------------

TEST(BpredValidation, FatalsOnBadGeometry)
{
    const auto make = [](auto mutate) {
        BranchPredParams p;
        mutate(p);
        BranchPredictor bp(p);
    };
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.bimodalEntries = 3000;
                 }),
                 "power of two");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.gshareEntries = 0;
                 }),
                 "power of two");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.historyBits = 64;
                 }),
                 "historyBits");
    EXPECT_DEATH(make([](BranchPredParams &p) { p.btb.entries = 0; }),
                 "power of two");
    EXPECT_DEATH(make([](BranchPredParams &p) { p.btb.assoc = 3; }),
                 "divide");
    EXPECT_DEATH(make([](BranchPredParams &p) { p.ras.entries = 0; }),
                 "non-zero");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.kind = DirPredKind::Tage;
                     p.dir.tageTables = 0;
                 }),
                 "tagged table");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.kind = DirPredKind::Tage;
                     p.dir.tageMaxHist = 100;
                 }),
                 "history range");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.kind = DirPredKind::Perceptron;
                     p.dir.perceptronEntries = 300;
                 }),
                 "power of two");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.dir.kind = DirPredKind::Perceptron;
                     p.dir.perceptronHistBits = 0;
                 }),
                 "history");
    EXPECT_DEATH(make([](BranchPredParams &p) {
                     p.indirect.enabled = true;
                     p.indirect.entries = 100;
                 }),
                 "power of two");
}

// ---------------------------------------------------------------------------
// State export/import round-trips.
// ---------------------------------------------------------------------------

namespace
{

/** Exercise every component: conditionals, calls, returns, indirect
 *  jumps, across enough PCs to populate tables. */
void
exercise(BranchPredictor &bp, unsigned rounds)
{
    const Instruction b = condBranch();
    const Instruction j = indirectJump();
    for (unsigned i = 0; i < rounds; ++i) {
        const Addr pc = 0x1000 + (i % 97) * 8;
        const bool taken = ((i * 2654435761u) >> 7) & 1;
        bp.predict(pc, b);
        bp.update(pc, b, taken, taken ? pc + 32 : pc + 4);
        if (i % 3 == 0)
            bp.predict(0x8000 + (i % 11) * 4, callInst());
        if (i % 5 == 0)
            bp.predict(0x9000, retInst());
        if (i % 7 == 0) {
            const Addr jpc = 0xa000 + (i % 5) * 4;
            bp.predict(jpc, j);
            bp.update(jpc, j, true, 0x2000 + (i % 13) * 64);
        }
    }
}

BranchPredParams
variantParams(const std::string &variant)
{
    CoreParams core;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t next = variant.find('/', pos);
        const std::string token =
            variant.substr(pos, next == std::string::npos
                                    ? std::string::npos
                                    : next - pos);
        EXPECT_TRUE(applyBpredVariant(token, &core)) << token;
        pos = next == std::string::npos ? next : next + 1;
    }
    return core.bpred;
}

} // namespace

TEST(BpredState, RoundTripsAcrossEveryVariant)
{
    for (const char *variant :
         {"tournament", "bimodal", "gshare", "tage", "perceptron",
          "tage/ras16", "perceptron/btb256", "tournament/itt"}) {
        const BranchPredParams params = variantParams(variant);
        BranchPredictor bp(params);
        exercise(bp, 500);
        const BranchPredState state = bp.exportState();

        BranchPredictor restored(params);
        ASSERT_TRUE(restored.importState(state)) << variant;

        // Re-export must be the identity...
        const BranchPredState again = restored.exportState();
        EXPECT_EQ(again.dir.history, state.dir.history) << variant;
        EXPECT_EQ(again.dir.tables, state.dir.tables) << variant;
        EXPECT_EQ(again.ras.stack, state.ras.stack) << variant;
        EXPECT_EQ(again.ras.top, state.ras.top) << variant;
        EXPECT_EQ(again.btb.entries.size(), state.btb.entries.size())
            << variant;
        EXPECT_EQ(again.indirect.entries.size(),
                  state.indirect.entries.size())
            << variant;

        // ...and future behavior must be indistinguishable.
        exercise(bp, 200);
        exercise(restored, 200);
        const BranchPredState a = bp.exportState();
        const BranchPredState b = restored.exportState();
        EXPECT_EQ(a.dir.tables, b.dir.tables) << variant;
        EXPECT_EQ(a.dir.history, b.dir.history) << variant;
    }
}

TEST(BpredState, ImportRejectsShapeMismatch)
{
    BranchPredictor bp;
    exercise(bp, 100);
    const BranchPredState state = bp.exportState();

    // A different direction geometry must reject the tables.
    BranchPredParams small;
    small.dir.bimodalEntries = 1024;
    BranchPredictor other(small);
    EXPECT_FALSE(other.importState(state));

    // A different engine must reject the table layout.
    BranchPredictor tage(withKind(DirPredKind::Tage));
    EXPECT_FALSE(tage.importState(state));

    // A shorter RAS must reject the stack.
    BranchPredParams ras8;
    ras8.ras.entries = 8;
    BranchPredictor shallow(ras8);
    EXPECT_FALSE(shallow.importState(state));
}

TEST(BpredState, CopySemanticsPreserveBehavior)
{
    // Sampled simulation copies warmed predictors into cores; the
    // copy must be deep for every engine.
    for (const DirPredKind kind :
         {DirPredKind::Tournament, DirPredKind::Tage,
          DirPredKind::Perceptron}) {
        BranchPredictor bp(withKind(kind));
        exercise(bp, 300);
        BranchPredictor copy(bp);
        exercise(bp, 100);
        exercise(copy, 100);
        const BranchPredState a = bp.exportState();
        const BranchPredState b = copy.exportState();
        EXPECT_EQ(a.dir.tables, b.dir.tables)
            << dirPredKindName(kind);
        // Diverging the original must not touch the copy.
        exercise(bp, 50);
        EXPECT_EQ(copy.exportState().dir.tables, b.dir.tables)
            << dirPredKindName(kind);
    }
}
