/**
 * @file
 * Branch predictor tests: bimodal learning, gshare pattern capture,
 * chooser adaptation, BTB indirect targets, and RAS call/return
 * behavior.
 */
#include <gtest/gtest.h>

#include "branch/predictor.hpp"

using namespace reno;

namespace
{

Instruction
condBranch()
{
    return Instruction::branch(Opcode::BNE, 1, 4);
}

Instruction
callInst()
{
    return Instruction::jump(Opcode::BSR, RegRa, RegZero, 16);
}

Instruction
retInst()
{
    return Instruction::jump(Opcode::JMP, RegZero, RegRa, 0);
}

Instruction
indirectJump()
{
    return Instruction::jump(Opcode::JMP, RegZero, 5, 0);
}

} // namespace

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x1000;
    const Addr target = 0x1014;
    const Instruction b = condBranch();
    // Train a few times.
    for (int i = 0; i < 8; ++i) {
        bp.predict(pc, b);
        bp.update(pc, b, true, target);
    }
    const Prediction p = bp.predict(pc, b);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, target);
}

TEST(Bpred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x2000;
    const Instruction b = condBranch();
    for (int i = 0; i < 8; ++i) {
        bp.predict(pc, b);
        bp.update(pc, b, false, pc + 4);
    }
    const Prediction p = bp.predict(pc, b);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, pc + 4);
}

TEST(Bpred, GshareCapturesAlternatingPattern)
{
    BranchPredictor bp;
    const Addr pc = 0x3000;
    const Instruction b = condBranch();
    // T,N,T,N...: bimodal dithers; gshare + chooser learn it.
    unsigned correct_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        const Prediction p = bp.predict(pc, b);
        if (i >= 300 && p.taken == actual)
            ++correct_late;
        bp.update(pc, b, actual, actual ? 0x3014 : pc + 4);
    }
    EXPECT_GE(correct_late, 95u) << "pattern should be near-perfect";
}

TEST(Bpred, DirectCallPredictsTargetAndPushesRas)
{
    BranchPredictor bp;
    const Instruction call = callInst();
    const Prediction p = bp.predict(0x1000, call);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x1000 + 4 + 16 * 4);

    // Matching return pops the pushed address.
    const Prediction r = bp.predict(0x5000, retInst());
    EXPECT_TRUE(r.targetValid);
    EXPECT_EQ(r.target, 0x1004u);
}

TEST(Bpred, RasNesting)
{
    BranchPredictor bp;
    bp.predict(0x1000, callInst());  // pushes 0x1004
    bp.predict(0x2000, callInst());  // pushes 0x2004
    const Prediction r1 = bp.predict(0x6000, retInst());
    EXPECT_EQ(r1.target, 0x2004u);
    const Prediction r2 = bp.predict(0x6100, retInst());
    EXPECT_EQ(r2.target, 0x1004u);
}

TEST(Bpred, RasWrapsAtCapacity)
{
    BranchPredParams params;
    params.rasEntries = 4;
    BranchPredictor bp(params);
    for (unsigned i = 0; i < 6; ++i)
        bp.predict(0x1000 + i * 0x100, callInst());
    // The deepest 4 returns are correct; older entries were clobbered.
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1504u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1404u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1304u);
    EXPECT_EQ(bp.predict(0x9000, retInst()).target, 0x1204u);
}

TEST(Bpred, BtbLearnsIndirectTargets)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    const Instruction j = indirectJump();
    // Unknown at first.
    EXPECT_FALSE(bp.predict(pc, j).targetValid);
    bp.update(pc, j, true, 0x8888);
    const Prediction p = bp.predict(pc, j);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x8888u);
    // Retrains on a new target.
    bp.update(pc, j, true, 0x9999);
    EXPECT_EQ(bp.predict(pc, j).target, 0x9999u);
}

TEST(Bpred, ReturnThroughNonRaRegisterUsesBtb)
{
    BranchPredictor bp;
    const Instruction j = indirectJump();  // jmp (t4), not (ra)
    bp.update(0x4100, j, true, 0x7777);
    const Prediction p = bp.predict(0x4100, j);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x7777u);
}

TEST(Bpred, UnconditionalBranchAlwaysTaken)
{
    BranchPredictor bp;
    const Instruction br = Instruction::branch(Opcode::BR, RegZero, 10);
    const Prediction p = bp.predict(0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x1000 + 4 + 40);
}

TEST(Bpred, CountsLookupsAndMispredicts)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.lookups(), 0u);
    bp.predict(0x1000, condBranch());
    EXPECT_EQ(bp.lookups(), 1u);
    bp.noteDirMispredict();
    bp.noteTargetMispredict();
    EXPECT_EQ(bp.dirMispredicts(), 1u);
    EXPECT_EQ(bp.targetMispredicts(), 1u);
}

TEST(Bpred, DistinctPcsDoNotInterfereMuch)
{
    BranchPredictor bp;
    const Instruction b = condBranch();
    // Train pc A taken, pc B (different bimodal index) not-taken.
    const Addr a = 0x1000, c = 0x1400;
    for (int i = 0; i < 8; ++i) {
        bp.predict(a, b);
        bp.update(a, b, true, a + 20);
        bp.predict(c, b);
        bp.update(c, b, false, c + 4);
    }
    EXPECT_TRUE(bp.predict(a, b).taken);
    EXPECT_FALSE(bp.predict(c, b).taken);
}
