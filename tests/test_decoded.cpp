/**
 * @file
 * Pre-decoded superblock execution tests: the decoded engine is a
 * pure accelerator, so every observable -- architectural state,
 * ExecRecord streams, program output, memory digests, instruction
 * counts, registry-wide SimResult fields, checkpoint round-trips --
 * must be bit-exact with the per-step interpreter, across every
 * generated suite, with chopped/resumed runs, under self-modifying
 * code, and through the detailed core's oracle.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "emu/decoded.hpp"
#include "emu/emulator.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "sample/interval.hpp"
#include "uarch/params.hpp"
#include "uarch/sim_result.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

/** Scoped override of the process-wide emulator-mode default. */
struct EmuModeGuard {
    bool saved;
    explicit EmuModeGuard(bool decoded) : saved(defaultDecodedExec())
    {
        setDefaultDecodedExec(decoded);
    }
    ~EmuModeGuard() { setDefaultDecodedExec(saved); }
};

Emulator::Options
optsFor(const Workload &w, bool decoded)
{
    Emulator::Options opts;
    opts.randSeed = w.seed;
    opts.decodedExec = decoded;
    return opts;
}

/** Everything observable about a (possibly partial) functional run. */
struct FuncSnapshot {
    ArchState state;
    std::uint64_t insts = 0;
    std::uint64_t exitCode = 0;
    bool done = false;
    std::string output;
    std::uint64_t memDigest = 0;
};

FuncSnapshot
snapshotOf(const Emulator &emu)
{
    FuncSnapshot s;
    s.state = emu.state();
    s.insts = emu.instCount();
    s.exitCode = emu.exitCode();
    s.done = emu.done();
    s.output = emu.output();
    s.memDigest = emu.memory().digest();
    return s;
}

FuncSnapshot
runCapped(const Workload &w, bool decoded, std::uint64_t cap)
{
    Emulator emu(assembleWorkload(w), optsFor(w, decoded));
    emu.runUntil(cap);
    return snapshotOf(emu);
}

void
expectSameSnapshot(const FuncSnapshot &interp, const FuncSnapshot &dec,
                   const std::string &label)
{
    EXPECT_EQ(interp.insts, dec.insts) << label;
    EXPECT_EQ(interp.state.pc, dec.state.pc) << label;
    for (unsigned r = 0; r < NumLogRegs; ++r)
        EXPECT_EQ(interp.state.regs[r], dec.state.regs[r])
            << label << " r" << r;
    EXPECT_EQ(interp.exitCode, dec.exitCode) << label;
    EXPECT_EQ(interp.done, dec.done) << label;
    EXPECT_EQ(interp.output, dec.output) << label;
    EXPECT_EQ(interp.memDigest, dec.memDigest) << label;
}

void
expectSameSim(const SimResult &a, const SimResult &b,
              const std::string &label)
{
    for (const SimStatField &f : simResultFields())
        EXPECT_EQ(statValue(a, f), statValue(b, f))
            << label << " field " << f.name;
}

CoreParams
renoParams()
{
    CoreParams p = CoreParams::fourWide();
    return p;
}

} // namespace

// ---- functional equivalence, every generated suite ------------------

TEST(DecodedEquivalence, AllGeneratedSuitesBitExactUnderCap)
{
    constexpr std::uint64_t kCap = 1'500'000;
    for (const char *suite : {"synth", "mem", "branch", "multi"}) {
        for (const Workload *w : suiteWorkloads(suite)) {
            const FuncSnapshot interp = runCapped(*w, false, kCap);
            const FuncSnapshot dec = runCapped(*w, true, kCap);
            expectSameSnapshot(interp, dec, w->name);
        }
    }
}

TEST(DecodedEquivalence, FullRunBitExactWithSuperblocksEngaged)
{
    const Workload &w = workloadByName("synth.plain");
    const Program &prog = assembleWorkload(w);

    Emulator interp(prog, optsFor(w, false));
    interp.run();
    Emulator dec(prog, optsFor(w, true));
    dec.run();

    expectSameSnapshot(snapshotOf(interp), snapshotOf(dec), w.name);
    // The fast path actually ran: blocks were decoded, hot blocks were
    // chained into superblocks, and nearly every lookup hit.
    const BlockCacheStats &s = dec.blockStats();
    EXPECT_GT(s.blocksDecoded, 0u);
    EXPECT_GT(s.superblocksChained, 0u);
    EXPECT_GT(s.hitRate(), 0.9);
    EXPECT_EQ(dec.decodedInsts(), dec.instCount());
    EXPECT_EQ(interp.interpInsts(), interp.instCount());
}

// ---- ExecRecord stream through the step() oracle --------------------

TEST(DecodedEquivalence, ExecRecordStreamIdentical)
{
    const Workload &w = workloadByName("synth.mix");
    const Program &prog = assembleWorkload(w);
    Emulator interp(prog, optsFor(w, false));
    Emulator dec(prog, optsFor(w, true));

    for (std::uint64_t i = 0; i < 200'000 && !interp.done(); ++i) {
        const ExecRecord a = interp.step();
        const ExecRecord b = dec.step();
        ASSERT_EQ(a.pc, b.pc) << "step " << i;
        ASSERT_EQ(a.npc, b.npc) << "step " << i;
        ASSERT_TRUE(a.inst == b.inst) << "step " << i;
        ASSERT_EQ(a.srcVal[0], b.srcVal[0]) << "step " << i;
        ASSERT_EQ(a.srcVal[1], b.srcVal[1]) << "step " << i;
        ASSERT_EQ(a.result, b.result) << "step " << i;
        ASSERT_EQ(a.effAddr, b.effAddr) << "step " << i;
        ASSERT_EQ(a.storeData, b.storeData) << "step " << i;
        ASSERT_EQ(a.taken, b.taken) << "step " << i;
        ASSERT_EQ(a.exited, b.exited) << "step " << i;
    }
    EXPECT_EQ(interp.instCount(), dec.instCount());
}

TEST(DecodedEquivalence, InterleavedStepAndRunUntilMatchesInterpreter)
{
    const Workload &w = workloadByName("synth.phase");
    const Program &prog = assembleWorkload(w);

    Emulator interp(prog, optsFor(w, false));
    interp.runUntil(500'000);

    // Alternate bulk runs with single steps so the engine repeatedly
    // pauses mid-block and resumes through the cursor.
    Emulator dec(prog, optsFor(w, true));
    while (!dec.done() && dec.instCount() < 500'000) {
        dec.runUntil(std::min<std::uint64_t>(dec.instCount() + 997,
                                             500'000));
        for (int i = 0; i < 3 && !dec.done() &&
                        dec.instCount() < 500'000; ++i)
            dec.step();
    }
    dec.runUntil(500'000);
    expectSameSnapshot(snapshotOf(interp), snapshotOf(dec), w.name);
}

// ---- checkpoint chop/resume mid-superblock --------------------------

TEST(DecodedEquivalence, CheckpointChopResumeMidSuperblock)
{
    const Workload &w = workloadByName("synth.plain");
    const Program &prog = assembleWorkload(w);

    Emulator straight(prog, optsFor(w, true));
    straight.run();
    ASSERT_GT(straight.blockStats().superblocksChained, 0u);

    // Chop the run at a prime stride (so chops land mid-superblock),
    // round-tripping the full functional state through a checkpoint
    // into a fresh emulator at every chop.
    constexpr std::uint64_t kStride = 49'999;
    auto emu = std::make_unique<Emulator>(prog, optsFor(w, true));
    std::uint64_t bound = kStride;
    while (!emu->done()) {
        emu->runUntil(bound);
        bound += kStride;
        const EmuCheckpoint ckpt = emu->checkpoint();
        emu = std::make_unique<Emulator>(prog, optsFor(w, true));
        emu->restore(ckpt);
    }
    expectSameSnapshot(snapshotOf(straight), snapshotOf(*emu), w.name);

    // And the same chopped sequence under the interpreter agrees.
    const FuncSnapshot interp =
        runCapped(w, false, std::numeric_limits<std::uint64_t>::max());
    expectSameSnapshot(interp, snapshotOf(*emu), w.name + "/interp");
}

// ---- self-modifying code invalidates decoded blocks -----------------

namespace
{

/** A hot loop that, halfway through, overwrites its own increment
 *  instruction (addi r1, r1, 1 -> addi r1, r1, 2). Iterations 1..50
 *  add 1, 51..100 add 2: prints 150 iff the patch takes effect. */
std::string
smcSource()
{
    const std::uint32_t patched =
        encode(Instruction::ri(Opcode::ADDI, 1, 1, 2));
    return strprintf(R"(
_start:
    li r1, 0
    li r2, 0
    la r3, patchme
    li r4, %u
    li r5, 100
loop:
patchme:
    addi r1, r1, 1
    addi r2, r2, 1
    seqi r6, r2, 50
    beq r6, skip
    stl r4, 0(r3)
skip:
    slt r6, r2, r5
    bne r6, loop
    mov a0, r1
    li v0, 1
    syscall
    li v0, 0
    syscall
)", patched);
}

} // namespace

TEST(SelfModifyingCode, StoreToCodePageInvalidatesAndReexecutes)
{
    const Program prog = assemble(smcSource());

    Emulator::Options interpOpts;
    interpOpts.decodedExec = false;
    Emulator interp(prog, interpOpts);
    interp.run();
    EXPECT_EQ(interp.output(), "150");

    Emulator::Options decOpts;
    decOpts.decodedExec = true;
    decOpts.hotThreshold = 4;  // promote the loop early
    Emulator dec(prog, decOpts);
    dec.run();
    EXPECT_EQ(dec.output(), "150");
    expectSameSnapshot(snapshotOf(interp), snapshotOf(dec), "smc");

    const BlockCacheStats &s = dec.blockStats();
    EXPECT_GT(s.invalidationEvents, 0u);
    EXPECT_GT(s.invalidatedBlocks, 0u);
    EXPECT_GT(s.blocksDecoded, 1u);  // re-decoded after the patch
}

TEST(SelfModifyingCode, CheckpointCarriesPatchedText)
{
    const Program prog = assemble(smcSource());
    Emulator::Options opts;
    opts.decodedExec = true;

    // Chop shortly after the patching store (iteration 50 of 100 ends
    // well before instruction 400 of the ~620-instruction run) and
    // resume into a fresh emulator: the patched text must travel with
    // the checkpoint.
    Emulator first(prog, opts);
    first.runUntil(400);
    ASSERT_FALSE(first.done());
    const EmuCheckpoint ckpt = first.checkpoint();

    Emulator resumed(prog, opts);
    resumed.restore(ckpt);
    resumed.run();
    EXPECT_EQ(resumed.output(), "150");
}

// ---- registry-wide SimResult comparison through the harness ---------

TEST(DecodedSimResults, DetailedRunIdenticalBothModes)
{
    // One paper workload through the full detailed core: the oracle
    // consumes step() ExecRecords, so any decoded-mode deviation
    // shows up in the cycle-level stats.
    const Workload &w = workloadByName("jpeg.enc");
    const CoreParams params = renoParams();

    RunOutput interp, dec;
    {
        EmuModeGuard guard(false);
        interp = runWorkload(w, params);
    }
    {
        EmuModeGuard guard(true);
        dec = runWorkload(w, params);
    }
    expectSameSim(interp.sim, dec.sim, w.name);
    EXPECT_EQ(interp.output, dec.output);
    EXPECT_EQ(interp.memDigest, dec.memDigest);
    EXPECT_EQ(interp.emuInsts, dec.emuInsts);
}

TEST(DecodedSimResults, MultiCoreRunIdenticalBothModes)
{
    const Workload &w = *suiteWorkloads("multi").front();
    NamedConfig cfg;
    ASSERT_TRUE(configByName("RENO/2c", renoParams(), &cfg));

    RunOutput interp, dec;
    {
        EmuModeGuard guard(false);
        interp = runWorkload(w, cfg.params);
    }
    {
        EmuModeGuard guard(true);
        dec = runWorkload(w, cfg.params);
    }
    expectSameSim(interp.sim, dec.sim, w.name + "/2c");
    EXPECT_EQ(interp.output, dec.output);
    EXPECT_EQ(interp.memDigest, dec.memDigest);
    EXPECT_EQ(interp.emuInsts, dec.emuInsts);
}

TEST(DecodedSimResults, SampledIntervalIdenticalBothModes)
{
    // The sampled path leans hardest on the engine: bulk fast-forward
    // to the window, then per-step functional warming. One window per
    // generated suite.
    const CoreParams params = renoParams();
    for (const char *name : {"synth.plain", "mem.stream.32k",
                             "branch.loop"}) {
        const Workload &w = workloadByName(name);
        sample::IntervalWindow window;
        window.startInst = 200'000;
        window.warmupInsts = 2'000;
        window.measureInsts = 5'000;

        SimResult interp, dec;
        {
            EmuModeGuard guard(false);
            interp = sample::runIntervalDetailed(w, params, window);
        }
        {
            EmuModeGuard guard(true);
            dec = sample::runIntervalDetailed(w, params, window);
        }
        expectSameSim(interp, dec, name);
    }
}

// ---- block-cache stats and metrics ----------------------------------

TEST(BlockCacheStatsTest, FlushedToMetricsRegistryOnDestruction)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.reset();

    const Workload &w = workloadByName("synth.plain");
    {
        Emulator emu(assembleWorkload(w), optsFor(w, true));
        emu.runUntil(200'000);
    }
    EXPECT_GT(reg.counter("emu.insts.decoded").value(), 0u);
    EXPECT_GT(reg.counter("emu.block_cache.blocks_decoded").value(), 0u);
    EXPECT_GT(reg.counter("emu.block_cache.lookups").value(), 0u);
    reg.reset();
}

TEST(BlockCacheStatsTest, DecodeLimitsBoundBlockAndSuperblockSize)
{
    const Workload &w = workloadByName("synth.plain");
    Emulator emu(assembleWorkload(w), optsFor(w, true));
    emu.run();
    const DecodeLimits limits;
    // No decoded unit may exceed the superblock cap; plain blocks obey
    // the block cap. Covered indirectly via ops/blocks accounting.
    const BlockCacheStats &s = emu.blockStats();
    ASSERT_GT(s.blocksDecoded + s.superblocksChained, 0u);
    EXPECT_LE(s.opsDecoded,
              (s.blocksDecoded + s.superblocksChained) *
                  limits.maxSuperblockOps);
}

// ---- error reporting ------------------------------------------------

TEST(DecodedErrors, StepAfterExitPanicReportsContext)
{
    const Program prog = assemble("_start:\n  li v0, 0\n  syscall\n");
    Emulator emu(prog);
    emu.run();
    EXPECT_DEATH(emu.step(),
                 "Emulator::step after exit \\(pc 0x.*instructions "
                 "retired\\)");
}

TEST(DecodedErrors, RunUntilBelowRetiredCountIsFatal)
{
    const Workload &w = workloadByName("synth.plain");
    Emulator emu(assembleWorkload(w), optsFor(w, true));
    emu.runUntil(10'000);
    ASSERT_GE(emu.instCount(), 10'000u);
    EXPECT_DEATH(emu.runUntil(100),
                 "runUntil: bound 100 is below the");
}

TEST(DecodedErrors, InterpreterModeAgreesOnRunUntilFatal)
{
    const Workload &w = workloadByName("synth.plain");
    Emulator emu(assembleWorkload(w), optsFor(w, false));
    emu.runUntil(10'000);
    EXPECT_DEATH(emu.runUntil(100),
                 "runUntil: bound 100 is below the");
}
