/**
 * @file
 * Functional emulator for the RENO ISA.
 *
 * Runs programs architecturally, one instruction per step(). The
 * timing core uses it as an oracle: each step yields an ExecRecord
 * with the instruction's source values, result, effective address and
 * next pc, which the cycle-level model then schedules (SimpleScalar
 * style functional-first simulation).
 *
 * System calls (v0 = number, a0.. = arguments):
 *   0 exit(a0)
 *   1 print_int(a0)     appends decimal to the captured output
 *   2 print_str(a0)     a0 = address of NUL-terminated string
 *   3 print_char(a0)
 *   4 clock()           v0 = retired instruction count (deterministic)
 *   5 rand()            v0 = next value of a deterministic LCG
 *   6 core_id()         v0 = Options::coreId (0 outside a System) --
 *                       SPMD kernels derive core-private addresses
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/types.hpp"
#include "emu/decoded.hpp"
#include "isa/inst.hpp"
#include "mem/sparse_memory.hpp"

namespace reno
{

/**
 * Process-wide default for Options::decodedExec. Initialized from the
 * RENO_EMU_MODE environment variable ("interp" selects the per-step
 * interpreter, anything else the decoded engine) and overridable by
 * the CLIs' --emu flag. Outputs are bit-exact either way; the decoded
 * engine is simply faster.
 */
bool defaultDecodedExec();
void setDefaultDecodedExec(bool decoded);

/** Syscall numbers. */
enum : std::uint64_t {
    SysExit = 0,
    SysPrintInt = 1,
    SysPrintStr = 2,
    SysPrintChar = 3,
    SysClock = 4,
    SysRand = 5,
    SysCoreId = 6,
};

/** Architectural register file + pc. */
struct ArchState {
    std::uint64_t regs[NumLogRegs] = {};
    Addr pc = 0;

    std::uint64_t
    reg(LogReg r) const
    {
        return r == RegZero ? 0 : regs[r];
    }

    void
    setReg(LogReg r, std::uint64_t v)
    {
        if (r != RegZero)
            regs[r] = v;
    }
};

/** Everything the timing model needs to know about one executed inst. */
struct ExecRecord {
    Instruction inst;
    Addr pc = 0;
    Addr npc = 0;              //!< actual next pc (branch outcome)
    std::uint64_t srcVal[2] = {0, 0};
    std::uint64_t result = 0;  //!< destination value (if any)
    Addr effAddr = 0;          //!< memory ops: effective address
    std::uint64_t storeData = 0;
    bool taken = false;        //!< control: did the pc redirect?
    bool exited = false;       //!< this instruction ended the program
};

/** Evaluate a non-memory, non-control operation (shared with tests). */
std::uint64_t evalAlu(Opcode op, std::uint64_t a, std::uint64_t b,
                      std::int32_t imm);

/** Content digest of a program image (text, data, bases, entry). */
std::uint64_t programDigest(const Program &prog);

/**
 * A full functional checkpoint: everything Emulator needs to resume
 * exactly where a previous run stopped. A resumed run is byte-identical
 * to an uninterrupted one, including the clock syscall (instCount), the
 * rand syscall stream (randState) and the accumulated program output.
 * progDigest guards against restoring onto a different program.
 */
struct EmuCheckpoint {
    ArchState state;
    SparseMemory mem;
    std::string output;
    std::uint64_t instCount = 0;
    std::uint64_t exitCode = 0;
    std::uint64_t randState = 0;
    bool done = false;
    std::uint64_t progDigest = 0;
};

/** The functional emulator. */
class Emulator
{
  public:
    struct Options {
        Addr stackTop = DefaultStackTop;
        std::uint64_t maxInsts = 100'000'000;  //!< runaway guard
        std::uint64_t randSeed = 1;
        /** Returned by the core_id syscall; a multi-core System's
         *  harness sets it to the core index. */
        std::uint64_t coreId = 0;
        /** Execute over pre-decoded superblocks (src/emu/decoded.hpp)
         *  instead of decoding every instruction on every step. A
         *  pure accelerator: state transitions, ExecRecords, output,
         *  digests and checkpoints are bit-exact either way. */
        bool decodedExec = defaultDecodedExec();
        /** Block executions before a chainable block is re-decoded
         *  as a superblock across its unconditional transfers. */
        std::uint64_t hotThreshold = 16;
    };

    explicit Emulator(const Program &prog, Options opts);
    explicit Emulator(const Program &prog) : Emulator(prog, Options{}) {}
    ~Emulator();

    Emulator(const Emulator &) = delete;
    Emulator &operator=(const Emulator &) = delete;
    /** Movable (the source keeps running state but forfeits its
     *  block cache and stats, so metrics are flushed exactly once). */
    Emulator(Emulator &&other) noexcept;
    Emulator &operator=(Emulator &&) = delete;

    /** Execute one instruction. Invalid after done(). */
    ExecRecord step();

    /** Run to exit (or maxInsts); returns retired instruction count. */
    std::uint64_t run();

    /**
     * Fast-forward: run until at least @p inst_bound instructions have
     * executed (or the program exits). Returns the instruction count.
     * fatal() on a bound below the instructions already retired.
     */
    std::uint64_t runUntil(std::uint64_t inst_bound);

    /** Snapshot the complete functional state. */
    EmuCheckpoint checkpoint() const;

    /**
     * Resume from a checkpoint taken on the same program (fatal() on a
     * program-digest mismatch). Replaces all functional state.
     */
    void restore(const EmuCheckpoint &ckpt);

    bool done() const { return done_; }

    /** Exit code passed to the exit syscall (0 if still running). */
    std::uint64_t exitCode() const { return exitCode_; }

    std::uint64_t instCount() const { return instCount_; }
    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    const SparseMemory &memory() const { return mem_; }
    SparseMemory &memory() { return mem_; }
    const std::string &output() const { return output_; }
    const Program &program() const { return prog_; }

    /** Cumulative decoded-block cache statistics (see decoded.hpp). */
    const BlockCacheStats &blockStats() const { return cache_.stats(); }
    std::size_t cachedBlocks() const { return cache_.numBlocks(); }

    /** Instructions retired via the decoded engine / the per-step
     *  interpreter (they sum to instCount()). */
    std::uint64_t decodedInsts() const { return decodedInsts_; }
    std::uint64_t interpInsts() const { return interpInsts_; }

  private:
    std::uint64_t doSyscall();

    /** Shared bounded-run loop behind run()/runUntil(): retire
     *  instructions until exit or instCount() reaches @p inst_bound. */
    std::uint64_t runBounded(std::uint64_t inst_bound);

    /** Threaded-dispatch engine: execute @p blk from @p start_idx,
     *  following block links, until exit, an un-decodable pc, or
     *  instCount() reaches @p limit. Pre: instCount() < limit. */
    void execDecoded(DecodedBlock *blk, std::size_t start_idx,
                     std::uint64_t limit);

    /** Cached block entered at @p pc, decoding (and, when hot,
     *  superblock-promoting) on demand. nullptr when @p pc cannot be
     *  decoded -- the caller falls back to step(). */
    DecodedBlock *lookupOrDecode(Addr pc);

    /** A store overlapped [addr, addr+size) in the text segment:
     *  re-sync the affected code words from memory and invalidate
     *  every overlapping decoded block. */
    void noteCodeWrite(Addr addr, unsigned size);

    /** Rebuild the mutable code image from memory (restore path). */
    void syncCodeFromMemory();

    /** Accumulate block-cache stats into the obs MetricsRegistry. */
    void flushBlockMetrics() const;

    const Program &prog_;
    Options opts_;
    ArchState state_;
    SparseMemory mem_;
    std::string output_;
    std::uint64_t instCount_ = 0;
    std::uint64_t exitCode_ = 0;
    std::uint64_t randState_;
    bool done_ = false;

    // Decoded-execution engine (pure accelerator; src/emu/decoded.hpp).
    std::vector<std::uint32_t> code_;  //!< mutable text image (SMC)
    Addr textBase_ = 0;
    Addr textEnd_ = 0;
    BlockCache cache_;
    /** Cursor into the block containing pc, kept across step() calls
     *  and mid-block pauses; valid iff curBlock_ != nullptr and
     *  curBlock_->ops[curIdx_].pc == state_.pc. */
    DecodedBlock *curBlock_ = nullptr;
    std::size_t curIdx_ = 0;
    std::uint64_t decodedInsts_ = 0;
    std::uint64_t interpInsts_ = 0;
};

} // namespace reno
