#include "emu/decoded.hpp"

#include "common/log.hpp"

namespace reno
{

namespace
{

/** Handler for a decoded instruction; one target per op shape. */
Handler
handlerFor(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::ADD:   return Handler::Add;
      case Opcode::SUB:   return Handler::Sub;
      case Opcode::MUL:   return Handler::Mul;
      case Opcode::DIV:   return Handler::Div;
      case Opcode::DIVU:  return Handler::Divu;
      case Opcode::REM:   return Handler::Rem;
      case Opcode::AND:   return Handler::And;
      case Opcode::OR:    return Handler::Or;
      case Opcode::XOR:   return Handler::Xor;
      case Opcode::BIC:   return Handler::Bic;
      case Opcode::SLL:   return Handler::Sll;
      case Opcode::SRL:   return Handler::Srl;
      case Opcode::SRA:   return Handler::Sra;
      case Opcode::SEQ:   return Handler::Seq;
      case Opcode::SLT:   return Handler::Slt;
      case Opcode::SLE:   return Handler::Sle;
      case Opcode::SLTU:  return Handler::Sltu;
      case Opcode::SLEU:  return Handler::Sleu;
      case Opcode::ADDI:  return Handler::AddI;
      case Opcode::MULI:  return Handler::MulI;
      case Opcode::ANDI:  return Handler::AndI;
      case Opcode::ORI:   return Handler::OrI;
      case Opcode::XORI:  return Handler::XorI;
      case Opcode::SLLI:  return Handler::SllI;
      case Opcode::SRLI:  return Handler::SrlI;
      case Opcode::SRAI:  return Handler::SraI;
      case Opcode::SEQI:  return Handler::SeqI;
      case Opcode::SLTI:  return Handler::SltI;
      case Opcode::SLEI:  return Handler::SleI;
      case Opcode::SLTUI: return Handler::SltuI;
      case Opcode::SLEUI: return Handler::SleuI;
      case Opcode::LUI:   return Handler::Lui;
      case Opcode::LDQ:
      case Opcode::LDL:
      case Opcode::LDBU:  return Handler::Load;
      case Opcode::STQ:
      case Opcode::STL:
      case Opcode::STB:   return Handler::Store;
      case Opcode::BEQ:   return Handler::Beq;
      case Opcode::BNE:   return Handler::Bne;
      case Opcode::BLT:   return Handler::Blt;
      case Opcode::BGE:   return Handler::Bge;
      case Opcode::BLE:   return Handler::Ble;
      case Opcode::BGT:   return Handler::Bgt;
      case Opcode::BR:    return Handler::Br;
      case Opcode::BSR:   return Handler::Bsr;
      case Opcode::JSR:   return Handler::Jsr;
      case Opcode::JMP:   return Handler::Jmp;
      case Opcode::SYSCALL: return Handler::Syscall;
      default:
        panic("handlerFor: unmapped opcode %u",
              static_cast<unsigned>(inst.op));
    }
}

DecodedOp
makeOp(const Instruction &inst, Addr pc)
{
    DecodedOp op;
    op.inst = inst;
    op.pc = pc;
    op.target = pc + 4 +
                static_cast<Addr>(std::int64_t{inst.imm} * 4);
    op.immS = std::int64_t{inst.imm};
    op.immZ = static_cast<std::uint64_t>(inst.imm) & 0xffff;
    op.handler = handlerFor(inst);
    op.ra = inst.ra;
    op.rb = inst.rb;
    op.rc = inst.rc;
    op.memSize = static_cast<std::uint8_t>(inst.info().memSize);
    op.signedLoad = inst.info().signedLoad;
    return op;
}

} // namespace

DecodedBlock
decodeBlock(const std::uint32_t *words, Addr text_base,
            std::size_t num_words, Addr entry, bool superblock,
            const DecodeLimits &limits)
{
    const Addr text_end = text_base + num_words * 4;
    const auto in_text = [&](Addr pc) {
        return pc >= text_base && pc < text_end && (pc & 3) == 0;
    };

    DecodedBlock blk;
    blk.entry = entry;
    blk.lo = entry;
    blk.hi = entry;

    const unsigned max_ops =
        superblock ? limits.maxSuperblockOps : limits.maxBlockOps;
    unsigned links = 0;
    Addr pc = entry;
    while (blk.ops.size() < max_ops) {
        if (!in_text(pc))
            break;
        const std::uint32_t word = words[(pc - text_base) >> 2];
        // An undecodable word ends the block; if control actually
        // reaches it, the interpreter fallback reproduces decode()'s
        // panic. Never decode-ahead into a panic.
        if ((word >> 26) >= NumOpcodeValues)
            break;
        const Instruction inst = decode(word);
        blk.ops.push_back(makeOp(inst, pc));
        blk.lo = std::min(blk.lo, pc);
        blk.hi = std::max(blk.hi, pc + 4);

        if (inst.op == Opcode::BR || inst.op == Opcode::BSR) {
            const Addr target = blk.ops.back().target;
            if (superblock && links < limits.maxChainLinks &&
                in_text(target)) {
                ++links;
                pc = target;
                continue;
            }
            blk.chainable = in_text(target);
            break;
        }
        const InstClass cls = inst.info().cls;
        if (cls == InstClass::CtrlCond || cls == InstClass::CtrlRet ||
            inst.op == Opcode::JSR)
            break;
        // ALU / memory / syscall: fall through.
        pc += 4;
    }
    return blk;
}

DecodedBlock *
BlockCache::find(Addr pc)
{
    ++stats_.lookups;
    auto it = blocks_.find(pc);
    if (it == blocks_.end())
        return nullptr;
    ++stats_.hits;
    return it->second.get();
}

DecodedBlock *
BlockCache::insert(DecodedBlock block)
{
    ++stats_.blocksDecoded;
    stats_.opsDecoded += block.ops.size();
    auto owned = std::make_unique<DecodedBlock>(std::move(block));
    DecodedBlock *raw = owned.get();
    blocks_[raw->entry] = std::move(owned);
    return raw;
}

DecodedBlock *
BlockCache::replace(DecodedBlock block)
{
    // The old block is freed: links anywhere in the cache may point
    // at it, so drop them all (they re-fill on the next transition).
    unlinkAll();
    ++stats_.superblocksChained;
    stats_.opsDecoded += block.ops.size();
    auto owned = std::make_unique<DecodedBlock>(std::move(block));
    DecodedBlock *raw = owned.get();
    blocks_[raw->entry] = std::move(owned);
    return raw;
}

std::size_t
BlockCache::invalidateRange(Addr lo, Addr hi)
{
    ++stats_.invalidationEvents;
    std::size_t dropped = 0;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
        const DecodedBlock &b = *it->second;
        if (b.lo < hi && b.hi > lo) {
            it = blocks_.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    if (dropped > 0)
        unlinkAll();
    stats_.invalidatedBlocks += dropped;
    return dropped;
}

void
BlockCache::clear()
{
    blocks_.clear();
    ++generation_;
}

void
BlockCache::unlinkAll()
{
    ++generation_;
    for (auto &[entry, blk] : blocks_) {
        blk->linkTaken = nullptr;
        blk->linkFall = nullptr;
    }
}

} // namespace reno
