#include "emu/emulator.hpp"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/digest.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

// Threaded dispatch (computed goto) removes the per-op switch's bounds
// check and gives each handler its own indirect-branch site, which the
// host BTB predicts far better than one shared switch branch. Portable
// fallback: a plain switch over Handler.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(RENO_NO_COMPUTED_GOTO)
#define RENO_COMPUTED_GOTO 1
#else
#define RENO_COMPUTED_GOTO 0
#endif

namespace reno
{

namespace
{

bool &
decodedDefaultFlag()
{
    static bool flag = [] {
        const char *mode = std::getenv("RENO_EMU_MODE");
        return mode == nullptr || std::string_view{mode} != "interp";
    }();
    return flag;
}

} // namespace

bool
defaultDecodedExec()
{
    return decodedDefaultFlag();
}

void
setDefaultDecodedExec(bool decoded)
{
    decodedDefaultFlag() = decoded;
}

std::uint64_t
evalAlu(Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    const auto sa = static_cast<std::int64_t>(a);
    const std::uint64_t immS =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(imm));
    const std::uint64_t immZ = static_cast<std::uint64_t>(imm) & 0xffff;
    const auto sb = static_cast<std::int64_t>(b);

    switch (op) {
      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::MUL:  return a * b;
      case Opcode::DIV:
        // Divide by zero yields 0; INT64_MIN / -1 wraps to itself
        // (the C++ expression would overflow and trap).
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return static_cast<std::uint64_t>(sa);
        return static_cast<std::uint64_t>(sa / sb);
      case Opcode::DIVU: return b == 0 ? 0 : a / b;
      case Opcode::REM:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<std::uint64_t>(sa % sb);
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::BIC:  return a & ~b;
      case Opcode::SLL:  return a << (b & 63);
      case Opcode::SRL:  return a >> (b & 63);
      case Opcode::SRA:  return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::SEQ:  return a == b ? 1 : 0;
      case Opcode::SLT:  return sa < sb ? 1 : 0;
      case Opcode::SLE:  return sa <= sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::SLEU: return a <= b ? 1 : 0;
      case Opcode::ADDI: return a + immS;
      case Opcode::MULI: return a * immS;
      case Opcode::ANDI: return a & immZ;
      case Opcode::ORI:  return a | immZ;
      case Opcode::XORI: return a ^ immZ;
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SRAI: return static_cast<std::uint64_t>(sa >> (imm & 63));
      case Opcode::SEQI: return a == immS ? 1 : 0;
      case Opcode::SLTI: return sa < static_cast<std::int64_t>(imm) ? 1 : 0;
      case Opcode::SLEI: return sa <= static_cast<std::int64_t>(imm) ? 1 : 0;
      case Opcode::SLTUI: return a < immS ? 1 : 0;
      case Opcode::SLEUI: return a <= immS ? 1 : 0;
      case Opcode::LUI:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(imm) << 16);
      default:
        panic("evalAlu: opcode %s is not an ALU operation",
              std::string(mnemonic(op)).c_str());
    }
}

Emulator::Emulator(const Program &prog, Options opts)
    : prog_(prog), opts_(opts), randState_(opts.randSeed),
      code_(prog.text), textBase_(prog.textBase),
      textEnd_(prog.textBase + prog.text.size() * 4)
{
    // Load text and data images.
    for (size_t i = 0; i < prog.text.size(); ++i)
        mem_.write(prog.textBase + i * 4, prog.text[i], 4);
    if (!prog.data.empty())
        mem_.load(prog.dataBase, prog.data.data(), prog.data.size());
    state_.pc = prog.entry;
    state_.setReg(RegSp, opts.stackTop);
}

Emulator::Emulator(Emulator &&other) noexcept
    : prog_(other.prog_), opts_(other.opts_), state_(other.state_),
      mem_(std::move(other.mem_)), output_(std::move(other.output_)),
      instCount_(other.instCount_), exitCode_(other.exitCode_),
      randState_(other.randState_), done_(other.done_),
      code_(std::move(other.code_)), textBase_(other.textBase_),
      textEnd_(other.textEnd_), cache_(std::move(other.cache_)),
      curBlock_(other.curBlock_), curIdx_(other.curIdx_),
      decodedInsts_(other.decodedInsts_),
      interpInsts_(other.interpInsts_)
{
    // Zero the source's stats so its destructor flush is a no-op
    // (a moved-from unordered_map keeps no blocks, but the plain
    //  stats struct would otherwise be flushed twice).
    other.cache_ = BlockCache{};
    other.curBlock_ = nullptr;
    other.decodedInsts_ = 0;
    other.interpInsts_ = 0;
}

Emulator::~Emulator()
{
    flushBlockMetrics();
}

std::uint64_t
Emulator::doSyscall()
{
    const std::uint64_t num = state_.reg(RegV0);
    const std::uint64_t a0 = state_.reg(RegA0);
    switch (num) {
      case SysExit:
        done_ = true;
        exitCode_ = a0;
        return 0;
      case SysPrintInt:
        output_ += strprintf("%lld",
                             static_cast<long long>(a0));
        return 0;
      case SysPrintStr:
        output_ += mem_.readString(a0);
        return 0;
      case SysPrintChar:
        output_ += static_cast<char>(a0);
        return 0;
      case SysClock:
        return instCount_;
      case SysRand:
        randState_ = randState_ * 6364136223846793005ULL +
                     1442695040888963407ULL;
        return randState_ >> 16;
      case SysCoreId:
        return opts_.coreId;
      default:
        fatal("unknown syscall %llu at pc 0x%llx",
              static_cast<unsigned long long>(num),
              static_cast<unsigned long long>(state_.pc));
    }
}

ExecRecord
Emulator::step()
{
    if (done_)
        panic("Emulator::step after exit (pc 0x%llx, %llu instructions "
              "retired)",
              static_cast<unsigned long long>(state_.pc),
              static_cast<unsigned long long>(instCount_));
    if (instCount_ >= opts_.maxInsts)
        fatal("emulator exceeded %llu instructions (runaway program?)",
              static_cast<unsigned long long>(opts_.maxInsts));
    if (!prog_.inText(state_.pc))
        fatal("pc 0x%llx outside text segment",
              static_cast<unsigned long long>(state_.pc));

    // Source the decoded form from the block cache when possible. The
    // cursor tracks the position inside the current block across
    // step() calls, so the per-step oracle/warmup path skips both the
    // hash lookup and the re-decode on every instruction of a block.
    const DecodedOp *dop = nullptr;
    if (opts_.decodedExec) {
        if (!(curBlock_ != nullptr && curIdx_ < curBlock_->ops.size() &&
              curBlock_->ops[curIdx_].pc == state_.pc)) {
            curBlock_ = lookupOrDecode(state_.pc);
            curIdx_ = 0;
        }
        if (curBlock_ != nullptr && curIdx_ < curBlock_->ops.size() &&
            curBlock_->ops[curIdx_].pc == state_.pc)
            dop = &curBlock_->ops[curIdx_];
        else
            curBlock_ = nullptr;
    }

    ExecRecord rec;
    rec.pc = state_.pc;
    rec.inst = dop != nullptr
                   ? dop->inst
                   : decode(code_[(state_.pc - textBase_) >> 2]);
    const Instruction &inst = rec.inst;
    const unsigned nsrc = inst.numSrcs();
    for (unsigned i = 0; i < nsrc; ++i)
        rec.srcVal[i] = state_.reg(inst.src(i));

    Addr npc = rec.pc + 4;
    const Addr branch_target =
        rec.pc + 4 + static_cast<Addr>(
            static_cast<std::int64_t>(inst.imm) * 4);

    switch (inst.info().cls) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
        rec.result = evalAlu(inst.op, rec.srcVal[0], rec.srcVal[1],
                             inst.imm);
        state_.setReg(inst.rc, rec.result);
        break;
      case InstClass::Load: {
        rec.effAddr = rec.srcVal[0] +
                      static_cast<Addr>(
                          static_cast<std::int64_t>(inst.imm));
        std::uint64_t v = mem_.read(rec.effAddr, inst.info().memSize);
        if (inst.info().signedLoad)
            v = static_cast<std::uint64_t>(
                signExtend(v, inst.info().memSize * 8));
        rec.result = v;
        state_.setReg(inst.rc, v);
        break;
      }
      case InstClass::Store:
        rec.effAddr = rec.srcVal[0] +
                      static_cast<Addr>(
                          static_cast<std::int64_t>(inst.imm));
        rec.storeData = rec.srcVal[1];
        mem_.write(rec.effAddr, rec.storeData, inst.info().memSize);
        // Write-to-code guard: keep the executable image coherent and
        // drop decoded blocks built from the overwritten words.
        if (rec.effAddr < textEnd_ &&
            rec.effAddr + inst.info().memSize > textBase_)
            noteCodeWrite(rec.effAddr, inst.info().memSize);
        break;
      case InstClass::CtrlCond: {
        const auto v = static_cast<std::int64_t>(rec.srcVal[0]);
        bool taken = false;
        switch (inst.op) {
          case Opcode::BEQ: taken = v == 0; break;
          case Opcode::BNE: taken = v != 0; break;
          case Opcode::BLT: taken = v < 0; break;
          case Opcode::BGE: taken = v >= 0; break;
          case Opcode::BLE: taken = v <= 0; break;
          case Opcode::BGT: taken = v > 0; break;
          default: panic("bad conditional branch");
        }
        if (taken)
            npc = branch_target;
        rec.taken = taken;
        break;
      }
      case InstClass::CtrlUncond:
        npc = branch_target;
        rec.taken = true;
        break;
      case InstClass::CtrlCall:
        rec.result = rec.pc + 4;
        state_.setReg(inst.rc, rec.result);
        npc = inst.op == Opcode::BSR ? branch_target
                                     : (rec.srcVal[0] & ~Addr{3});
        rec.taken = true;
        break;
      case InstClass::CtrlRet:
        npc = rec.srcVal[0] & ~Addr{3};
        rec.taken = true;
        break;
      case InstClass::Syscall: {
        const std::uint64_t ret = doSyscall();
        rec.result = ret;
        state_.setReg(RegV0, ret);
        break;
      }
    }

    state_.pc = npc;
    rec.npc = npc;
    rec.exited = done_;
    ++instCount_;

    if (dop != nullptr) {
        ++decodedInsts_;
        // Keep the cursor when execution continues inside this block
        // (fall-through, or a chained transfer in a superblock).
        // noteCodeWrite() may have nulled curBlock_; dop is then
        // dangling, so only the pointer test below may touch it.
        if (curBlock_ != nullptr && curIdx_ + 1 < curBlock_->ops.size() &&
            curBlock_->ops[curIdx_ + 1].pc == npc)
            ++curIdx_;
        else
            curBlock_ = nullptr;
    } else {
        ++interpInsts_;
    }
    return rec;
}

std::uint64_t
Emulator::run()
{
    return runBounded(std::numeric_limits<std::uint64_t>::max());
}

std::uint64_t
Emulator::runUntil(std::uint64_t inst_bound)
{
    if (inst_bound < instCount_)
        fatal("Emulator::runUntil: bound %llu is below the %llu "
              "instructions already retired",
              static_cast<unsigned long long>(inst_bound),
              static_cast<unsigned long long>(instCount_));
    return runBounded(inst_bound);
}

std::uint64_t
Emulator::runBounded(std::uint64_t inst_bound)
{
    if (!opts_.decodedExec) {
        while (!done_ && instCount_ < inst_bound)
            step();
        return instCount_;
    }

    // The decoded engine reads registers unguarded; it relies on
    // regs[RegZero] being 0 (SET_REG re-zeroes it after every write).
    state_.regs[RegZero] = 0;
    while (!done_ && instCount_ < inst_bound) {
        if (instCount_ >= opts_.maxInsts)
            fatal("emulator exceeded %llu instructions (runaway "
                  "program?)",
                  static_cast<unsigned long long>(opts_.maxInsts));

        DecodedBlock *blk;
        std::size_t idx = 0;
        if (curBlock_ != nullptr && curIdx_ < curBlock_->ops.size() &&
            curBlock_->ops[curIdx_].pc == state_.pc) {
            // Resume mid-block (step()/checkpoint-chop cursor).
            blk = curBlock_;
            idx = curIdx_;
        } else {
            blk = lookupOrDecode(state_.pc);
        }
        curBlock_ = nullptr;
        if (blk == nullptr) {
            // pc outside text or an un-decodable word: one interpreter
            // step reproduces the exact fatal/panic diagnostics.
            step();
            continue;
        }
        const std::uint64_t before = instCount_;
        execDecoded(blk, idx, std::min(inst_bound, opts_.maxInsts));
        decodedInsts_ += instCount_ - before;
    }
    return instCount_;
}

DecodedBlock *
Emulator::lookupOrDecode(Addr pc)
{
    constexpr DecodeLimits kLimits{};
    if (DecodedBlock *blk = cache_.find(pc)) {
        ++blk->execCount;
        if (!blk->isSuperblock && blk->chainable &&
            blk->execCount >= opts_.hotThreshold) {
            // Hot block ending in a direct unconditional transfer:
            // re-decode it chained through into a superblock.
            DecodedBlock sb = decodeBlock(code_.data(), textBase_,
                                          code_.size(), pc,
                                          /*superblock=*/true, kLimits);
            sb.isSuperblock = true;
            sb.execCount = blk->execCount;
            blk = cache_.replace(std::move(sb));
        }
        return blk;
    }
    if (!prog_.inText(pc))
        return nullptr;
    DecodedBlock blk = decodeBlock(code_.data(), textBase_, code_.size(),
                                   pc, /*superblock=*/false, kLimits);
    if (blk.ops.empty())
        return nullptr;
    blk.execCount = 1;
    return cache_.insert(std::move(blk));
}

void
Emulator::noteCodeWrite(Addr addr, unsigned size)
{
    // mem_ already holds the new bytes; re-sync the touched words.
    const Addr lo = std::max(addr, textBase_) & ~Addr{3};
    const Addr hi = std::min(addr + size, textEnd_);
    for (Addr w = lo; w < hi; w += 4)
        code_[(w - textBase_) >> 2] =
            static_cast<std::uint32_t>(mem_.read(w, 4));
    cache_.invalidateRange(addr, addr + size);
    curBlock_ = nullptr;  // may point at a dropped block
}

void
Emulator::syncCodeFromMemory()
{
    for (std::size_t i = 0; i < code_.size(); ++i)
        code_[i] = static_cast<std::uint32_t>(
            mem_.read(textBase_ + i * 4, 4));
}

void
Emulator::flushBlockMetrics() const
{
    const BlockCacheStats &s = cache_.stats();
    if (s.lookups == 0 && decodedInsts_ == 0 && interpInsts_ == 0)
        return;
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("emu.block_cache.lookups").inc(s.lookups);
    reg.counter("emu.block_cache.hits").inc(s.hits);
    reg.counter("emu.block_cache.blocks_decoded").inc(s.blocksDecoded);
    reg.counter("emu.block_cache.superblocks_chained")
        .inc(s.superblocksChained);
    reg.counter("emu.block_cache.ops_decoded").inc(s.opsDecoded);
    reg.counter("emu.block_cache.invalidation_events")
        .inc(s.invalidationEvents);
    reg.counter("emu.block_cache.invalidated_blocks")
        .inc(s.invalidatedBlocks);
    reg.counter("emu.insts.decoded").inc(decodedInsts_);
    reg.counter("emu.insts.interpreted").inc(interpInsts_);
}

void
Emulator::execDecoded(DecodedBlock *blk, std::size_t start_idx,
                      std::uint64_t limit)
{
    std::uint64_t *const regs = state_.regs;

// Write a destination register, preserving the regs[RegZero] == 0
// invariant branchlessly (a write to r31 lands and is re-zeroed).
#define SET_REG(r, v)                                                   \
    do {                                                                \
        regs[(r)] = (v);                                                \
        regs[RegZero] = 0;                                              \
    } while (0)

#define S64(x) static_cast<std::int64_t>(x)

// Retire a non-terminal op and fall through to the next one.
#define ADVANCE()                                                       \
    do {                                                                \
        ++instCount_;                                                   \
        ++op;                                                           \
        if (op == opEnd) {                                              \
            npc = op[-1].pc + 4;                                        \
            takenEdge = false;                                          \
            goto block_done;                                            \
        }                                                               \
        if (instCount_ >= limit)                                        \
            goto pause;                                                 \
        DISPATCH();                                                     \
    } while (0)

// Retire the block's terminal op and redirect to next_pc.
#define FINISH(next_pc, taken)                                          \
    do {                                                                \
        ++instCount_;                                                   \
        npc = (next_pc);                                                \
        takenEdge = (taken);                                            \
        goto block_done;                                                \
    } while (0)

// BR/BSR: chained through inside a superblock (the next op sits at the
// transfer target), terminal otherwise.
#define CHAIN_OR_FINISH()                                               \
    do {                                                                \
        if (op + 1 != opEnd) {                                          \
            ++instCount_;                                               \
            ++op;                                                       \
            if (instCount_ >= limit)                                    \
                goto pause;                                             \
            DISPATCH();                                                 \
        }                                                               \
        FINISH(op->target, true);                                       \
    } while (0)

#if RENO_COMPUTED_GOTO
    // One entry per Handler, in exact enum order (decoded.hpp).
    static const void *const kJump[] = {
        &&lbl_Add, &&lbl_Sub, &&lbl_Mul, &&lbl_Div, &&lbl_Divu,
        &&lbl_Rem, &&lbl_And, &&lbl_Or, &&lbl_Xor, &&lbl_Bic,
        &&lbl_Sll, &&lbl_Srl, &&lbl_Sra, &&lbl_Seq, &&lbl_Slt,
        &&lbl_Sle, &&lbl_Sltu, &&lbl_Sleu, &&lbl_AddI, &&lbl_MulI,
        &&lbl_AndI, &&lbl_OrI, &&lbl_XorI, &&lbl_SllI, &&lbl_SrlI,
        &&lbl_SraI, &&lbl_SeqI, &&lbl_SltI, &&lbl_SleI, &&lbl_SltuI,
        &&lbl_SleuI, &&lbl_Lui, &&lbl_Load, &&lbl_Store, &&lbl_Beq,
        &&lbl_Bne, &&lbl_Blt, &&lbl_Bge, &&lbl_Ble, &&lbl_Bgt,
        &&lbl_Br, &&lbl_Bsr, &&lbl_Jsr, &&lbl_Jmp, &&lbl_Syscall,
    };
    static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                  static_cast<std::size_t>(Handler::NumHandlers));
#define HANDLER(name) lbl_##name
#define DISPATCH() goto *kJump[static_cast<std::size_t>(op->handler)]
#else
#define HANDLER(name) case Handler::name
#define DISPATCH() goto dispatch
#endif

    for (;;) {
        const DecodedOp *op = blk->ops.data() + start_idx;
        const DecodedOp *const opEnd = blk->ops.data() + blk->ops.size();
        start_idx = 0;
        Addr npc = 0;
        bool takenEdge = false;

#if RENO_COMPUTED_GOTO
        DISPATCH();
#else
      dispatch:
        switch (op->handler) {
#endif

    HANDLER(Add):
        SET_REG(op->rc, regs[op->ra] + regs[op->rb]);
        ADVANCE();
    HANDLER(Sub):
        SET_REG(op->rc, regs[op->ra] - regs[op->rb]);
        ADVANCE();
    HANDLER(Mul):
        SET_REG(op->rc, regs[op->ra] * regs[op->rb]);
        ADVANCE();
    HANDLER(Div):
        // DIV/DIVU/REM share evalAlu's edge-case semantics
        // (divide-by-zero, INT64_MIN / -1); they are rare enough that
        // the call costs nothing measurable.
        SET_REG(op->rc,
                evalAlu(Opcode::DIV, regs[op->ra], regs[op->rb], 0));
        ADVANCE();
    HANDLER(Divu):
        SET_REG(op->rc,
                evalAlu(Opcode::DIVU, regs[op->ra], regs[op->rb], 0));
        ADVANCE();
    HANDLER(Rem):
        SET_REG(op->rc,
                evalAlu(Opcode::REM, regs[op->ra], regs[op->rb], 0));
        ADVANCE();
    HANDLER(And):
        SET_REG(op->rc, regs[op->ra] & regs[op->rb]);
        ADVANCE();
    HANDLER(Or):
        SET_REG(op->rc, regs[op->ra] | regs[op->rb]);
        ADVANCE();
    HANDLER(Xor):
        SET_REG(op->rc, regs[op->ra] ^ regs[op->rb]);
        ADVANCE();
    HANDLER(Bic):
        SET_REG(op->rc, regs[op->ra] & ~regs[op->rb]);
        ADVANCE();
    HANDLER(Sll):
        SET_REG(op->rc, regs[op->ra] << (regs[op->rb] & 63));
        ADVANCE();
    HANDLER(Srl):
        SET_REG(op->rc, regs[op->ra] >> (regs[op->rb] & 63));
        ADVANCE();
    HANDLER(Sra):
        SET_REG(op->rc,
                static_cast<std::uint64_t>(
                    S64(regs[op->ra]) >> (regs[op->rb] & 63)));
        ADVANCE();
    HANDLER(Seq):
        SET_REG(op->rc, regs[op->ra] == regs[op->rb] ? 1 : 0);
        ADVANCE();
    HANDLER(Slt):
        SET_REG(op->rc, S64(regs[op->ra]) < S64(regs[op->rb]) ? 1 : 0);
        ADVANCE();
    HANDLER(Sle):
        SET_REG(op->rc, S64(regs[op->ra]) <= S64(regs[op->rb]) ? 1 : 0);
        ADVANCE();
    HANDLER(Sltu):
        SET_REG(op->rc, regs[op->ra] < regs[op->rb] ? 1 : 0);
        ADVANCE();
    HANDLER(Sleu):
        SET_REG(op->rc, regs[op->ra] <= regs[op->rb] ? 1 : 0);
        ADVANCE();

    HANDLER(AddI):
        SET_REG(op->rc,
                regs[op->ra] + static_cast<std::uint64_t>(op->immS));
        ADVANCE();
    HANDLER(MulI):
        SET_REG(op->rc,
                regs[op->ra] * static_cast<std::uint64_t>(op->immS));
        ADVANCE();
    HANDLER(AndI):
        SET_REG(op->rc, regs[op->ra] & op->immZ);
        ADVANCE();
    HANDLER(OrI):
        SET_REG(op->rc, regs[op->ra] | op->immZ);
        ADVANCE();
    HANDLER(XorI):
        SET_REG(op->rc, regs[op->ra] ^ op->immZ);
        ADVANCE();
    HANDLER(SllI):
        SET_REG(op->rc,
                regs[op->ra] << static_cast<unsigned>(op->immS & 63));
        ADVANCE();
    HANDLER(SrlI):
        SET_REG(op->rc,
                regs[op->ra] >> static_cast<unsigned>(op->immS & 63));
        ADVANCE();
    HANDLER(SraI):
        SET_REG(op->rc,
                static_cast<std::uint64_t>(
                    S64(regs[op->ra]) >>
                    static_cast<unsigned>(op->immS & 63)));
        ADVANCE();
    HANDLER(SeqI):
        SET_REG(op->rc,
                regs[op->ra] == static_cast<std::uint64_t>(op->immS)
                    ? 1 : 0);
        ADVANCE();
    HANDLER(SltI):
        SET_REG(op->rc, S64(regs[op->ra]) < op->immS ? 1 : 0);
        ADVANCE();
    HANDLER(SleI):
        SET_REG(op->rc, S64(regs[op->ra]) <= op->immS ? 1 : 0);
        ADVANCE();
    HANDLER(SltuI):
        SET_REG(op->rc,
                regs[op->ra] < static_cast<std::uint64_t>(op->immS)
                    ? 1 : 0);
        ADVANCE();
    HANDLER(SleuI):
        SET_REG(op->rc,
                regs[op->ra] <= static_cast<std::uint64_t>(op->immS)
                    ? 1 : 0);
        ADVANCE();
    HANDLER(Lui):
        SET_REG(op->rc, static_cast<std::uint64_t>(op->immS << 16));
        ADVANCE();

    HANDLER(Load): {
        const Addr ea = regs[op->ra] + static_cast<Addr>(op->immS);
        std::uint64_t v = mem_.read(ea, op->memSize);
        if (op->signedLoad)
            v = static_cast<std::uint64_t>(
                signExtend(v, op->memSize * 8u));
        SET_REG(op->rc, v);
        ADVANCE();
    }
    HANDLER(Store): {
        const Addr ea = regs[op->ra] + static_cast<Addr>(op->immS);
        const unsigned size = op->memSize;
        mem_.write(ea, regs[op->rb], size);
        if (ea < textEnd_ && ea + size > textBase_) {
            // Self-modifying code: the invalidation below may free
            // the very block being executed, so read everything we
            // still need from *op first, then leave the block. The
            // outer loop re-decodes from the patched image.
            const Addr next = op->pc + 4;
            noteCodeWrite(ea, size);
            ++instCount_;
            state_.pc = next;
            return;
        }
        ADVANCE();
    }

    HANDLER(Beq): {
        const bool t = S64(regs[op->ra]) == 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }
    HANDLER(Bne): {
        const bool t = S64(regs[op->ra]) != 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }
    HANDLER(Blt): {
        const bool t = S64(regs[op->ra]) < 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }
    HANDLER(Bge): {
        const bool t = S64(regs[op->ra]) >= 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }
    HANDLER(Ble): {
        const bool t = S64(regs[op->ra]) <= 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }
    HANDLER(Bgt): {
        const bool t = S64(regs[op->ra]) > 0;
        FINISH(t ? op->target : op->pc + 4, t);
    }

    HANDLER(Br):
        CHAIN_OR_FINISH();
    HANDLER(Bsr):
        SET_REG(op->rc, op->pc + 4);
        CHAIN_OR_FINISH();
    HANDLER(Jsr): {
        // Read the jump target before the link write (ra may be rc).
        const Addr t = regs[op->ra] & ~Addr{3};
        SET_REG(op->rc, op->pc + 4);
        FINISH(t, true);
    }
    HANDLER(Jmp):
        FINISH(regs[op->ra] & ~Addr{3}, true);

    HANDLER(Syscall): {
        // doSyscall's diagnostics (and nothing else) read state_.pc.
        state_.pc = op->pc;
        const std::uint64_t ret = doSyscall();
        SET_REG(RegV0, ret);
        if (done_) {
            state_.pc = op->pc + 4;
            ++instCount_;
            return;
        }
        ADVANCE();
    }

#if !RENO_COMPUTED_GOTO
        }
        panic("execDecoded: bad handler");
#endif

      block_done:
        state_.pc = npc;
        if (instCount_ >= limit)
            return;
        {
            // Block linking: follow the cached successor for this edge
            // when it is still the right one and is not due for
            // superblock promotion; otherwise take the slow path
            // (hash lookup + decode/promotion) and re-link.
            DecodedBlock *next =
                takenEdge ? blk->linkTaken : blk->linkFall;
            if (next != nullptr && next->entry == npc &&
                (next->isSuperblock || !next->chainable ||
                 next->execCount + 1 < opts_.hotThreshold)) {
                ++next->execCount;
                blk = next;
                continue;
            }
            const std::uint64_t gen = cache_.generation();
            next = lookupOrDecode(npc);
            if (next == nullptr)
                return;  // caller's step() fallback diagnoses this pc
            // A generation bump means blocks were freed (superblock
            // promotion) and blk may dangle -- skip re-linking then.
            if (cache_.generation() == gen)
                (takenEdge ? blk->linkTaken : blk->linkFall) = next;
            blk = next;
            continue;
        }

      pause:
        // Budget exhausted mid-block: park the architectural pc at the
        // next op and remember the position so run/step can resume
        // without a lookup.
        state_.pc = op->pc;
        curBlock_ = blk;
        curIdx_ = static_cast<std::size_t>(op - blk->ops.data());
        return;
    }

#undef HANDLER
#undef DISPATCH
#undef CHAIN_OR_FINISH
#undef FINISH
#undef ADVANCE
#undef S64
#undef SET_REG
}

std::uint64_t
programDigest(const Program &prog)
{
    Fnv64 h;
    h.update("reno-program-v1");
    h.update(prog.textBase);
    for (const std::uint32_t word : prog.text)
        h.update(std::uint64_t{word});
    h.update(prog.dataBase);
    h.update(std::uint64_t{prog.data.size()});
    if (!prog.data.empty())
        h.update(prog.data.data(), prog.data.size());
    h.update(prog.entry);
    return h.value();
}

EmuCheckpoint
Emulator::checkpoint() const
{
    EmuCheckpoint ckpt;
    ckpt.state = state_;
    ckpt.mem = mem_.snapshot();
    ckpt.output = output_;
    ckpt.instCount = instCount_;
    ckpt.exitCode = exitCode_;
    ckpt.randState = randState_;
    ckpt.done = done_;
    ckpt.progDigest = programDigest(prog_);
    return ckpt;
}

void
Emulator::restore(const EmuCheckpoint &ckpt)
{
    if (ckpt.progDigest != programDigest(prog_))
        fatal("checkpoint restore onto a different program "
              "(digest %llx, expected %llx)",
              static_cast<unsigned long long>(ckpt.progDigest),
              static_cast<unsigned long long>(programDigest(prog_)));
    state_ = ckpt.state;
    state_.regs[RegZero] = 0;  // decoded engine relies on this
    mem_.restore(ckpt.mem);
    output_ = ckpt.output;
    instCount_ = ckpt.instCount;
    exitCode_ = ckpt.exitCode;
    randState_ = ckpt.randState;
    done_ = ckpt.done;
    // The checkpoint's memory image is authoritative for code too (it
    // may carry self-modified text). Decoded blocks are a pure
    // function of the text bytes, so instead of dropping the whole
    // cache, re-sync word by word and invalidate only the words the
    // checkpoint actually changed -- a sampled run restoring many
    // windows of the same program keeps its decode work.
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const Addr w = textBase_ + i * 4;
        const auto word =
            static_cast<std::uint32_t>(mem_.read(w, 4));
        if (code_[i] == word)
            continue;
        code_[i] = word;
        cache_.invalidateRange(w, w + 4);
    }
    curBlock_ = nullptr;  // the cursor may point at a dropped block
    curIdx_ = 0;
}

} // namespace reno
