#include "emu/emulator.hpp"

#include <climits>

#include "common/digest.hpp"
#include "common/log.hpp"

namespace reno
{

std::uint64_t
evalAlu(Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    const auto sa = static_cast<std::int64_t>(a);
    const std::uint64_t immS =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(imm));
    const std::uint64_t immZ = static_cast<std::uint64_t>(imm) & 0xffff;
    const auto sb = static_cast<std::int64_t>(b);

    switch (op) {
      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::MUL:  return a * b;
      case Opcode::DIV:
        // Divide by zero yields 0; INT64_MIN / -1 wraps to itself
        // (the C++ expression would overflow and trap).
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return static_cast<std::uint64_t>(sa);
        return static_cast<std::uint64_t>(sa / sb);
      case Opcode::DIVU: return b == 0 ? 0 : a / b;
      case Opcode::REM:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<std::uint64_t>(sa % sb);
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::BIC:  return a & ~b;
      case Opcode::SLL:  return a << (b & 63);
      case Opcode::SRL:  return a >> (b & 63);
      case Opcode::SRA:  return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::SEQ:  return a == b ? 1 : 0;
      case Opcode::SLT:  return sa < sb ? 1 : 0;
      case Opcode::SLE:  return sa <= sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::SLEU: return a <= b ? 1 : 0;
      case Opcode::ADDI: return a + immS;
      case Opcode::MULI: return a * immS;
      case Opcode::ANDI: return a & immZ;
      case Opcode::ORI:  return a | immZ;
      case Opcode::XORI: return a ^ immZ;
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SRAI: return static_cast<std::uint64_t>(sa >> (imm & 63));
      case Opcode::SEQI: return a == immS ? 1 : 0;
      case Opcode::SLTI: return sa < static_cast<std::int64_t>(imm) ? 1 : 0;
      case Opcode::SLEI: return sa <= static_cast<std::int64_t>(imm) ? 1 : 0;
      case Opcode::SLTUI: return a < immS ? 1 : 0;
      case Opcode::SLEUI: return a <= immS ? 1 : 0;
      case Opcode::LUI:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(imm) << 16);
      default:
        panic("evalAlu: opcode %s is not an ALU operation",
              std::string(mnemonic(op)).c_str());
    }
}

Emulator::Emulator(const Program &prog, Options opts)
    : prog_(prog), opts_(opts), randState_(opts.randSeed)
{
    // Load text and data images.
    for (size_t i = 0; i < prog.text.size(); ++i)
        mem_.write(prog.textBase + i * 4, prog.text[i], 4);
    if (!prog.data.empty())
        mem_.load(prog.dataBase, prog.data.data(), prog.data.size());
    state_.pc = prog.entry;
    state_.setReg(RegSp, opts.stackTop);
}

std::uint64_t
Emulator::doSyscall()
{
    const std::uint64_t num = state_.reg(RegV0);
    const std::uint64_t a0 = state_.reg(RegA0);
    switch (num) {
      case SysExit:
        done_ = true;
        exitCode_ = a0;
        return 0;
      case SysPrintInt:
        output_ += strprintf("%lld",
                             static_cast<long long>(a0));
        return 0;
      case SysPrintStr:
        output_ += mem_.readString(a0);
        return 0;
      case SysPrintChar:
        output_ += static_cast<char>(a0);
        return 0;
      case SysClock:
        return instCount_;
      case SysRand:
        randState_ = randState_ * 6364136223846793005ULL +
                     1442695040888963407ULL;
        return randState_ >> 16;
      case SysCoreId:
        return opts_.coreId;
      default:
        fatal("unknown syscall %llu at pc 0x%llx",
              static_cast<unsigned long long>(num),
              static_cast<unsigned long long>(state_.pc));
    }
}

ExecRecord
Emulator::step()
{
    if (done_)
        panic("Emulator::step after exit");
    if (instCount_ >= opts_.maxInsts)
        fatal("emulator exceeded %llu instructions (runaway program?)",
              static_cast<unsigned long long>(opts_.maxInsts));
    if (!prog_.inText(state_.pc))
        fatal("pc 0x%llx outside text segment",
              static_cast<unsigned long long>(state_.pc));

    ExecRecord rec;
    rec.pc = state_.pc;
    rec.inst = prog_.instAt(state_.pc);
    const Instruction &inst = rec.inst;
    const unsigned nsrc = inst.numSrcs();
    for (unsigned i = 0; i < nsrc; ++i)
        rec.srcVal[i] = state_.reg(inst.src(i));

    Addr npc = rec.pc + 4;
    const Addr branch_target =
        rec.pc + 4 + static_cast<Addr>(
            static_cast<std::int64_t>(inst.imm) * 4);

    switch (inst.info().cls) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
        rec.result = evalAlu(inst.op, rec.srcVal[0], rec.srcVal[1],
                             inst.imm);
        state_.setReg(inst.rc, rec.result);
        break;
      case InstClass::Load: {
        rec.effAddr = rec.srcVal[0] +
                      static_cast<Addr>(
                          static_cast<std::int64_t>(inst.imm));
        std::uint64_t v = mem_.read(rec.effAddr, inst.info().memSize);
        if (inst.info().signedLoad)
            v = static_cast<std::uint64_t>(
                signExtend(v, inst.info().memSize * 8));
        rec.result = v;
        state_.setReg(inst.rc, v);
        break;
      }
      case InstClass::Store:
        rec.effAddr = rec.srcVal[0] +
                      static_cast<Addr>(
                          static_cast<std::int64_t>(inst.imm));
        rec.storeData = rec.srcVal[1];
        mem_.write(rec.effAddr, rec.storeData, inst.info().memSize);
        break;
      case InstClass::CtrlCond: {
        const auto v = static_cast<std::int64_t>(rec.srcVal[0]);
        bool taken = false;
        switch (inst.op) {
          case Opcode::BEQ: taken = v == 0; break;
          case Opcode::BNE: taken = v != 0; break;
          case Opcode::BLT: taken = v < 0; break;
          case Opcode::BGE: taken = v >= 0; break;
          case Opcode::BLE: taken = v <= 0; break;
          case Opcode::BGT: taken = v > 0; break;
          default: panic("bad conditional branch");
        }
        if (taken)
            npc = branch_target;
        rec.taken = taken;
        break;
      }
      case InstClass::CtrlUncond:
        npc = branch_target;
        rec.taken = true;
        break;
      case InstClass::CtrlCall:
        rec.result = rec.pc + 4;
        state_.setReg(inst.rc, rec.result);
        npc = inst.op == Opcode::BSR ? branch_target
                                     : (rec.srcVal[0] & ~Addr{3});
        rec.taken = true;
        break;
      case InstClass::CtrlRet:
        npc = rec.srcVal[0] & ~Addr{3};
        rec.taken = true;
        break;
      case InstClass::Syscall: {
        const std::uint64_t ret = doSyscall();
        rec.result = ret;
        state_.setReg(RegV0, ret);
        break;
      }
    }

    state_.pc = npc;
    rec.npc = npc;
    rec.exited = done_;
    ++instCount_;
    return rec;
}

std::uint64_t
Emulator::run()
{
    while (!done_)
        step();
    return instCount_;
}

std::uint64_t
Emulator::runUntil(std::uint64_t inst_bound)
{
    while (!done_ && instCount_ < inst_bound)
        step();
    return instCount_;
}

std::uint64_t
programDigest(const Program &prog)
{
    Fnv64 h;
    h.update("reno-program-v1");
    h.update(prog.textBase);
    for (const std::uint32_t word : prog.text)
        h.update(std::uint64_t{word});
    h.update(prog.dataBase);
    h.update(std::uint64_t{prog.data.size()});
    if (!prog.data.empty())
        h.update(prog.data.data(), prog.data.size());
    h.update(prog.entry);
    return h.value();
}

EmuCheckpoint
Emulator::checkpoint() const
{
    EmuCheckpoint ckpt;
    ckpt.state = state_;
    ckpt.mem = mem_.snapshot();
    ckpt.output = output_;
    ckpt.instCount = instCount_;
    ckpt.exitCode = exitCode_;
    ckpt.randState = randState_;
    ckpt.done = done_;
    ckpt.progDigest = programDigest(prog_);
    return ckpt;
}

void
Emulator::restore(const EmuCheckpoint &ckpt)
{
    if (ckpt.progDigest != programDigest(prog_))
        fatal("checkpoint restore onto a different program "
              "(digest %llx, expected %llx)",
              static_cast<unsigned long long>(ckpt.progDigest),
              static_cast<unsigned long long>(programDigest(prog_)));
    state_ = ckpt.state;
    mem_.restore(ckpt.mem);
    output_ = ckpt.output;
    instCount_ = ckpt.instCount;
    exitCode_ = ckpt.exitCode;
    randState_ = ckpt.randState;
    done_ = ckpt.done;
}

} // namespace reno
