/**
 * @file
 * Pre-decoded superblock execution for the functional emulator.
 *
 * The per-step interpreter re-decodes the 32-bit word at pc on every
 * instruction. This module decodes each basic block ONCE into a dense
 * array of pre-resolved handler/operand records (DecodedOp), caches
 * the blocks keyed by entry pc (BlockCache), and chains hot blocks
 * into superblocks across unconditional direct control flow (BR/BSR),
 * so the execution loop in Emulator::runUntil() dispatches straight
 * over the decoded form (threaded dispatch, no per-step decode).
 *
 * The decoded cache is a pure accelerator: architectural state
 * transitions, ExecRecord streams, program output, digests and
 * checkpoints are bit-exact with the interpreter. A store that hits a
 * code page invalidates every overlapping block (and every
 * block-to-block link, conservatively), so self-modifying code
 * re-decodes before it re-executes.
 *
 * Block boundaries:
 *   - conditional branches and indirect transfers (JSR/JMP) always
 *     terminate a block;
 *   - BR/BSR terminate a plain block but are chained through when a
 *     hot block is re-decoded as a superblock (the transfer is still
 *     recorded as an executed op -- instruction counts are exact);
 *   - syscalls fall through and stay in-block (the engine re-checks
 *     exit after each one);
 *   - an undecodable word or the end of the text segment ends the
 *     block early; executing that pc falls back to the interpreter,
 *     which reports the exact same panic/fatal the per-step path
 *     always produced.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/inst.hpp"

namespace reno
{

/** Pre-resolved execution handler; one dispatch target per op shape. */
enum class Handler : std::uint8_t {
    // Register-register ALU.
    Add, Sub, Mul, Div, Divu, Rem,
    And, Or, Xor, Bic,
    Sll, Srl, Sra,
    Seq, Slt, Sle, Sltu, Sleu,
    // Register-immediate ALU (immediates pre-extended at decode).
    AddI, MulI, AndI, OrI, XorI,
    SllI, SrlI, SraI,
    SeqI, SltI, SleI, SltuI, SleuI,
    Lui,
    // Memory (size / sign-extension pre-resolved).
    Load, Store,
    // Control (targets pre-computed as absolute addresses).
    Beq, Bne, Blt, Bge, Ble, Bgt,
    Br, Bsr, Jsr, Jmp,
    Syscall,
    NumHandlers,
};

/** One pre-decoded instruction: everything the dispatch loop needs,
 *  resolved once at decode time. `inst` keeps the original decoded
 *  form so step() can fill ExecRecords without re-decoding. */
struct DecodedOp {
    Instruction inst;
    Addr pc = 0;
    Addr target = 0;          //!< control: pc + 4 + imm * 4, absolute
    std::int64_t immS = 0;    //!< sign-extended immediate
    std::uint64_t immZ = 0;   //!< zero-extended 16-bit immediate
    Handler handler = Handler::Syscall;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::uint8_t rc = 0;
    std::uint8_t memSize = 0;
    bool signedLoad = false;
};

/** A decoded basic block (or chained superblock), keyed by entry pc. */
struct DecodedBlock {
    Addr entry = 0;
    /** Conservative [lo, hi) byte range of member instructions; a
     *  superblock spanning disjoint regions covers the hull. Used by
     *  the write-to-code invalidation guard. */
    Addr lo = 0;
    Addr hi = 0;
    std::vector<DecodedOp> ops;
    std::uint64_t execCount = 0;
    bool isSuperblock = false;
    /** Ends with a direct BR/BSR into text: a superblock re-decode
     *  can chain through it. */
    bool chainable = false;
    /** Cached successors (block linking): the block executed after
     *  this one via its terminal taken transfer / fall-through.
     *  Nulled wholesale on any invalidation or replacement. */
    DecodedBlock *linkTaken = nullptr;
    DecodedBlock *linkFall = nullptr;
};

/** Cumulative block-cache statistics (surfaced through the obs
 *  MetricsRegistry and reno-sample --perf-json). */
struct BlockCacheStats {
    std::uint64_t lookups = 0;          //!< block fetches by entry pc
    std::uint64_t hits = 0;             //!< served without decoding
    std::uint64_t blocksDecoded = 0;
    std::uint64_t superblocksChained = 0;
    std::uint64_t opsDecoded = 0;
    std::uint64_t invalidationEvents = 0;  //!< code-page write events
    std::uint64_t invalidatedBlocks = 0;   //!< blocks dropped by them

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Decode limits; generous caps that bound superblock growth. */
struct DecodeLimits {
    unsigned maxBlockOps = 128;
    unsigned maxSuperblockOps = 1024;
    unsigned maxChainLinks = 64;
};

/**
 * Decode one block starting at @p entry from the code image
 * (@p words instruction words based at @p text_base). With
 * @p superblock, chains through direct unconditional transfers up to
 * the limits. Returns an empty-ops block when @p entry is outside
 * text or its first word does not decode (caller falls back to the
 * interpreter there).
 */
DecodedBlock decodeBlock(const std::uint32_t *words, Addr text_base,
                         std::size_t num_words, Addr entry,
                         bool superblock,
                         const DecodeLimits &limits = DecodeLimits{});

/** Decoded-block cache keyed by entry pc, with cumulative stats. */
class BlockCache
{
  public:
    /** Block whose entry is @p pc, or nullptr. Counts a lookup. */
    DecodedBlock *find(Addr pc);

    /** Insert a freshly decoded block; returns the cached copy. */
    DecodedBlock *insert(DecodedBlock block);

    /** Replace the block at @p block.entry (superblock promotion).
     *  Nulls every cached block link (the old block is freed). */
    DecodedBlock *replace(DecodedBlock block);

    /**
     * Drop every block overlapping [lo, hi) and null every cached
     * link (a dropped block may be someone's successor). Returns the
     * number of blocks dropped; counts one invalidation event.
     */
    std::size_t invalidateRange(Addr lo, Addr hi);

    /** Drop everything (restore onto new state). Stats persist. */
    void clear();

    std::size_t numBlocks() const { return blocks_.size(); }
    const BlockCacheStats &stats() const { return stats_; }

    /** Bumped whenever cached blocks are freed (replace / invalidate /
     *  clear). A caller holding raw DecodedBlock pointers across a
     *  cache operation must treat them as dangling when the generation
     *  changed. */
    std::uint64_t generation() const { return generation_; }

  private:
    void unlinkAll();

    std::unordered_map<Addr, std::unique_ptr<DecodedBlock>> blocks_;
    BlockCacheStats stats_;
    std::uint64_t generation_ = 0;
};

} // namespace reno
