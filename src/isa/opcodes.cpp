#include "isa/opcodes.hpp"

#include <array>

#include "common/log.hpp"

namespace reno
{

namespace
{

using IC = InstClass;
using IF = InstFormat;

// mnemonic, class, format, latency, memSize, signedLoad, cf, fusePenalty
constexpr std::array<OpInfo, NumOpcodeValues> opTable = {{
    {"add",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"sub",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"mul",    IC::IntMul, IF::R, 3, 0, false, false, true},
    {"div",    IC::IntDiv, IF::R, 20, 0, false, false, true},
    {"divu",   IC::IntDiv, IF::R, 20, 0, false, false, true},
    {"rem",    IC::IntDiv, IF::R, 20, 0, false, false, true},
    {"and",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"or",     IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"xor",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"bic",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"sll",    IC::IntAlu, IF::R, 1, 0, false, false, true},
    {"srl",    IC::IntAlu, IF::R, 1, 0, false, false, true},
    {"sra",    IC::IntAlu, IF::R, 1, 0, false, false, true},
    {"seq",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"slt",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"sle",    IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"sltu",   IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"sleu",   IC::IntAlu, IF::R, 1, 0, false, false, false},
    {"addi",   IC::IntAlu, IF::I, 1, 0, false, true,  false},
    {"muli",   IC::IntMul, IF::I, 3, 0, false, false, true},
    {"andi",   IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"ori",    IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"xori",   IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"slli",   IC::IntAlu, IF::I, 1, 0, false, false, true},
    {"srli",   IC::IntAlu, IF::I, 1, 0, false, false, true},
    {"srai",   IC::IntAlu, IF::I, 1, 0, false, false, true},
    {"seqi",   IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"slti",   IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"slei",   IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"sltui",  IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"sleui",  IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"lui",    IC::IntAlu, IF::I, 1, 0, false, false, false},
    {"ldq",    IC::Load,  IF::Mem, 1, 8, false, false, false},
    {"ldl",    IC::Load,  IF::Mem, 1, 4, true,  false, false},
    {"ldbu",   IC::Load,  IF::Mem, 1, 1, false, false, false},
    {"stq",    IC::Store, IF::Mem, 1, 8, false, false, false},
    {"stl",    IC::Store, IF::Mem, 1, 4, false, false, false},
    {"stb",    IC::Store, IF::Mem, 1, 1, false, false, false},
    {"beq",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"bne",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"blt",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"bge",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"ble",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"bgt",    IC::CtrlCond,   IF::Branch, 1, 0, false, false, false},
    {"br",     IC::CtrlUncond, IF::Branch, 1, 0, false, false, false},
    {"bsr",    IC::CtrlCall,   IF::Jump,   1, 0, false, false, false},
    {"jsr",    IC::CtrlCall,   IF::Jump,   1, 0, false, false, false},
    {"jmp",    IC::CtrlRet,    IF::Jump,   1, 0, false, false, false},
    {"syscall", IC::Syscall,   IF::None,   1, 0, false, false, false},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    if (idx >= NumOpcodeValues)
        panic("opInfo: bad opcode %u", idx);
    return opTable[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

Opcode
opcodeFromMnemonic(std::string_view name)
{
    for (unsigned i = 0; i < NumOpcodeValues; ++i) {
        if (opTable[i].mnemonic == name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

} // namespace reno
