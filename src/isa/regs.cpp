#include "isa/regs.hpp"

#include <array>

#include "common/log.hpp"

namespace reno
{

namespace
{

constexpr std::array<std::string_view, NumLogRegs> abiNames = {
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
    "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
};

} // namespace

std::string
regName(LogReg reg)
{
    return strprintf("r%u", static_cast<unsigned>(reg));
}

std::string
regAbiName(LogReg reg)
{
    if (reg >= NumLogRegs)
        panic("regAbiName: bad register %u", static_cast<unsigned>(reg));
    return std::string(abiNames[reg]);
}

unsigned
parseRegName(std::string_view name)
{
    if (name.size() >= 2 && name[0] == 'r') {
        unsigned value = 0;
        bool all_digits = true;
        for (size_t i = 1; i < name.size(); ++i) {
            if (name[i] < '0' || name[i] > '9') {
                all_digits = false;
                break;
            }
            value = value * 10 + static_cast<unsigned>(name[i] - '0');
        }
        if (all_digits && value < NumLogRegs)
            return value;
    }
    for (unsigned i = 0; i < NumLogRegs; ++i) {
        if (abiNames[i] == name)
            return i;
    }
    return NumLogRegs;
}

} // namespace reno
