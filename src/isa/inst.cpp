#include "isa/inst.hpp"

#include "common/log.hpp"
#include "isa/regs.hpp"

namespace reno
{

namespace
{

void
checkReg(unsigned r)
{
    if (r >= NumLogRegs)
        panic("bad register index %u", r);
}

void
checkImm(std::int32_t imm)
{
    if (!fitsSigned(imm, 16))
        panic("immediate %d does not fit in 16 bits", imm);
}

} // namespace

Instruction
Instruction::rr(Opcode op, unsigned rc, unsigned ra, unsigned rb)
{
    checkReg(rc); checkReg(ra); checkReg(rb);
    Instruction i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.rb = static_cast<std::uint8_t>(rb);
    i.rc = static_cast<std::uint8_t>(rc);
    return i;
}

Instruction
Instruction::ri(Opcode op, unsigned rc, unsigned ra, std::int32_t imm)
{
    checkReg(rc); checkReg(ra); checkImm(imm);
    Instruction i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.rc = static_cast<std::uint8_t>(rc);
    i.imm = imm;
    return i;
}

Instruction
Instruction::mem(Opcode op, unsigned reg, unsigned base, std::int32_t imm)
{
    checkReg(reg); checkReg(base); checkImm(imm);
    Instruction i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(base);
    if (isStore(op))
        i.rb = static_cast<std::uint8_t>(reg);
    else
        i.rc = static_cast<std::uint8_t>(reg);
    i.imm = imm;
    return i;
}

Instruction
Instruction::branch(Opcode op, unsigned ra, std::int32_t imm)
{
    checkReg(ra); checkImm(imm);
    Instruction i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.imm = imm;
    return i;
}

Instruction
Instruction::jump(Opcode op, unsigned rc, unsigned ra, std::int32_t imm)
{
    checkReg(rc); checkReg(ra); checkImm(imm);
    Instruction i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.rc = static_cast<std::uint8_t>(rc);
    i.imm = imm;
    return i;
}

Instruction
Instruction::syscall()
{
    Instruction i;
    i.op = Opcode::SYSCALL;
    return i;
}

Instruction
Instruction::move(unsigned rd, unsigned rs)
{
    return ri(Opcode::ADDI, rd, rs, 0);
}

Instruction
Instruction::nop()
{
    return ri(Opcode::ADDI, RegZero, RegZero, 0);
}

unsigned
Instruction::numSrcs() const
{
    switch (info().fmt) {
      case InstFormat::R:
        return 2;
      case InstFormat::I:
        return op == Opcode::LUI ? 0 : 1;
      case InstFormat::Mem:
        return isStore(op) ? 2 : 1;
      case InstFormat::Branch:
        return op == Opcode::BR ? 0 : 1;
      case InstFormat::Jump:
        return op == Opcode::BSR ? 0 : 1;
      case InstFormat::None:
        // SYSCALL reads v0 (the number) and a0 (the argument).
        return 2;
    }
    return 0;
}

LogReg
Instruction::src(unsigned i) const
{
    switch (info().fmt) {
      case InstFormat::R:
        return i == 0 ? ra : rb;
      case InstFormat::I:
      case InstFormat::Branch:
      case InstFormat::Jump:
        return ra;
      case InstFormat::Mem:
        // Source 0 is the address base; source 1 (stores) is the data.
        return i == 0 ? ra : rb;
      case InstFormat::None:
        return i == 0 ? RegV0 : RegA0;
    }
    panic("src(%u) on instruction with no sources", i);
}

bool
Instruction::hasDest() const
{
    switch (info().fmt) {
      case InstFormat::R:
      case InstFormat::I:
        return rc != RegZero;
      case InstFormat::Mem:
        return isLoad(op) && rc != RegZero;
      case InstFormat::Jump:
        return isCall(op) && rc != RegZero;
      case InstFormat::Branch:
        return false;
      case InstFormat::None:
        // SYSCALL writes its return value to v0.
        return true;
    }
    return false;
}

LogReg
Instruction::dest() const
{
    return info().fmt == InstFormat::None ? RegV0 : rc;
}

std::uint32_t
encode(const Instruction &inst)
{
    const auto opc = static_cast<std::uint32_t>(inst.op);
    std::uint32_t word = opc << 26;
    word |= static_cast<std::uint32_t>(inst.ra) << 21;
    if (inst.info().fmt == InstFormat::R) {
        word |= static_cast<std::uint32_t>(inst.rb) << 16;
        word |= static_cast<std::uint32_t>(inst.rc);
    } else {
        const std::uint8_t rx = isStore(inst.op) ? inst.rb : inst.rc;
        word |= static_cast<std::uint32_t>(rx) << 16;
        word |= static_cast<std::uint32_t>(inst.imm) & 0xffff;
    }
    return word;
}

Instruction
decode(std::uint32_t word)
{
    const unsigned opc = word >> 26;
    if (opc >= NumOpcodeValues)
        panic("decode: bad opcode field %u in word 0x%08x", opc, word);
    Instruction inst;
    inst.op = static_cast<Opcode>(opc);
    inst.ra = static_cast<std::uint8_t>((word >> 21) & 0x1f);
    if (inst.info().fmt == InstFormat::R) {
        inst.rb = static_cast<std::uint8_t>((word >> 16) & 0x1f);
        inst.rc = static_cast<std::uint8_t>(word & 0x1f);
    } else {
        const auto rx = static_cast<std::uint8_t>((word >> 16) & 0x1f);
        if (isStore(inst.op))
            inst.rb = rx;
        else
            inst.rc = rx;
        inst.imm = static_cast<std::int32_t>(signExtend(word & 0xffff, 16));
    }
    return inst;
}

std::string
disassemble(const Instruction &inst, Addr pc)
{
    const auto m = std::string(mnemonic(inst.op));
    const auto r = [](unsigned reg) { return regAbiName(
        static_cast<LogReg>(reg)); };
    const std::int64_t target =
        static_cast<std::int64_t>(pc) + 4 + std::int64_t{inst.imm} * 4;

    switch (inst.info().fmt) {
      case InstFormat::R:
        return strprintf("%s %s, %s, %s", m.c_str(), r(inst.rc).c_str(),
                         r(inst.ra).c_str(), r(inst.rb).c_str());
      case InstFormat::I:
        if (inst.op == Opcode::LUI) {
            return strprintf("%s %s, %d", m.c_str(), r(inst.rc).c_str(),
                             inst.imm);
        }
        if (inst.isMove()) {
            return strprintf("mov %s, %s", r(inst.rc).c_str(),
                             r(inst.ra).c_str());
        }
        return strprintf("%s %s, %s, %d", m.c_str(), r(inst.rc).c_str(),
                         r(inst.ra).c_str(), inst.imm);
      case InstFormat::Mem: {
        const unsigned reg = isStore(inst.op) ? inst.rb : inst.rc;
        return strprintf("%s %s, %d(%s)", m.c_str(), r(reg).c_str(),
                         inst.imm, r(inst.ra).c_str());
      }
      case InstFormat::Branch:
        if (inst.op == Opcode::BR)
            return strprintf("%s 0x%llx", m.c_str(),
                             static_cast<unsigned long long>(target));
        return strprintf("%s %s, 0x%llx", m.c_str(), r(inst.ra).c_str(),
                         static_cast<unsigned long long>(target));
      case InstFormat::Jump:
        if (inst.op == Opcode::BSR) {
            return strprintf("%s %s, 0x%llx", m.c_str(), r(inst.rc).c_str(),
                             static_cast<unsigned long long>(target));
        }
        if (inst.op == Opcode::JSR) {
            return strprintf("%s %s, (%s)", m.c_str(), r(inst.rc).c_str(),
                             r(inst.ra).c_str());
        }
        return strprintf("%s (%s)", m.c_str(), r(inst.ra).c_str());
      case InstFormat::None:
        return m;
    }
    return m;
}

} // namespace reno
