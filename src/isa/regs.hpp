/**
 * @file
 * Architectural register names and ABI aliases (Alpha calling
 * convention): v0=r0, t0-t7=r1-r8, s0-s5=r9-r14, fp=r15, a0-a5=r16-r21,
 * t8-t11=r22-r25, ra=r26, pv=r27, at=r28, gp=r29, sp=r30, zero=r31.
 */
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace reno
{

/** Canonical name for a register ("r7"). */
std::string regName(LogReg reg);

/** ABI alias name ("t6" for r7, "sp" for r30). */
std::string regAbiName(LogReg reg);

/**
 * Parse a register name or ABI alias; returns NumLogRegs on failure.
 * Accepts "r0".."r31" and all Alpha aliases.
 */
unsigned parseRegName(std::string_view name);

} // namespace reno
