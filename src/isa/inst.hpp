/**
 * @file
 * Decoded instruction representation, 32-bit binary encoding, and the
 * operand-query interface used by the rename stage and the emulator.
 *
 * Formats (fields of the decoded form):
 *   R:      rc <- ra OP rb
 *   I:      rc <- ra OP imm16      (LUI: rc <- imm16 << 16, no source)
 *   Mem:    load  rc <- MEM[ra + imm16]
 *           store MEM[ra + imm16] <- rb
 *   Branch: Bxx ra, target         (target = pc + 4 + imm16 * 4)
 *   Jump:   BSR rc, target / JSR rc, (ra) / JMP (ra)
 *
 * Writes to r31 (zero) are discarded; an instruction whose destination
 * is r31 "has no destination" for renaming purposes.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace reno
{

/** A decoded instruction. Plain data; copy freely. */
struct Instruction {
    Opcode op = Opcode::SYSCALL;
    std::uint8_t ra = RegZero;  //!< first source / base / branch source
    std::uint8_t rb = RegZero;  //!< second source / store data
    std::uint8_t rc = RegZero;  //!< destination
    std::int32_t imm = 0;       //!< sign-extended 16-bit immediate

    // --- Constructors for each format -------------------------------
    static Instruction rr(Opcode op, unsigned rc, unsigned ra, unsigned rb);
    static Instruction ri(Opcode op, unsigned rc, unsigned ra,
                          std::int32_t imm);
    /** Load rc <- imm(ra), or store: @p reg is the data register. */
    static Instruction mem(Opcode op, unsigned reg, unsigned base,
                           std::int32_t imm);
    static Instruction branch(Opcode op, unsigned ra, std::int32_t imm);
    static Instruction jump(Opcode op, unsigned rc, unsigned ra,
                            std::int32_t imm);
    static Instruction syscall();
    /** MOV rd, rs == ADDI rd, rs, 0. */
    static Instruction move(unsigned rd, unsigned rs);
    static Instruction nop();

    // --- Operand queries (renaming interface) -----------------------
    /** Number of logical source registers (0..2). */
    unsigned numSrcs() const;
    /** The i-th logical source register. */
    LogReg src(unsigned i) const;
    /** True iff the instruction writes an architectural register. */
    bool hasDest() const;
    /** Destination logical register (only valid when hasDest()). */
    LogReg dest() const;

    // --- RENO-relevant idioms ----------------------------------------
    /** Register move: ADDI with immediate 0 (and a real destination). */
    bool isMove() const { return op == Opcode::ADDI && imm == 0; }
    /** RENO_CF folding candidate: any register-immediate addition. */
    bool isCfCandidate() const
    {
        return opInfo(op).cfCandidate && hasDest();
    }

    const OpInfo &info() const { return opInfo(op); }

    bool operator==(const Instruction &other) const = default;
};

/** Encode to the 32-bit binary format. */
std::uint32_t encode(const Instruction &inst);

/** Decode from the 32-bit binary format. Panics on a bad opcode field. */
Instruction decode(std::uint32_t word);

/**
 * Disassemble for tracing. @p pc is used to render branch targets as
 * absolute addresses; pass 0 to render relative offsets.
 */
std::string disassemble(const Instruction &inst, Addr pc = 0);

} // namespace reno
