/**
 * @file
 * Opcode definitions for the RENO ISA: a 64-bit Alpha-like RISC.
 *
 * The properties RENO cares about are attached here:
 *  - register moves are register-immediate additions with immediate 0
 *    (ADDI rd, rs, 0), exactly as the paper assumes;
 *  - immediates are 16 bits, so RENO_CF displacements are 16 bits;
 *  - each opcode carries an execution class, a latency, and fusion
 *    attributes for RENO_CF timing (paper section 3.3).
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace reno
{

/** Execution class; controls issue slot usage and base latency. */
enum class InstClass : std::uint8_t {
    IntAlu,     //!< single-cycle integer ALU operation
    IntMul,     //!< pipelined multiply
    IntDiv,     //!< unpipelined divide
    Load,       //!< memory load
    Store,      //!< memory store
    CtrlCond,   //!< conditional branch
    CtrlUncond, //!< unconditional direct jump
    CtrlCall,   //!< call (direct or indirect), writes the link register
    CtrlRet,    //!< indirect jump (return or computed jump)
    Syscall,    //!< system call; serializes the pipeline
};

/** Instruction encoding format. */
enum class InstFormat : std::uint8_t {
    R,       //!< op rc <- ra, rb
    I,       //!< op rc <- ra, imm16
    Mem,     //!< load rc <- imm16(ra) / store rb -> imm16(ra)
    Branch,  //!< op ra, imm16 (pc-relative, instruction units)
    Jump,    //!< op rc, (ra) indirect; or op imm16 direct
    None,    //!< no operands (syscall)
};

/**
 * Opcodes of the RENO ISA. MOV/NOP/LI/LA are assembler pseudo-ops that
 * expand to these (MOV rd,rs == ADDI rd,rs,0).
 */
enum class Opcode : std::uint8_t {
    // Register-register integer ALU.
    ADD, SUB, MUL, DIV, DIVU, REM,
    AND, OR, XOR, BIC,
    SLL, SRL, SRA,
    SEQ, SLT, SLE, SLTU, SLEU,
    // Register-immediate integer ALU (16-bit signed immediates).
    ADDI, MULI,
    ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    SEQI, SLTI, SLEI, SLTUI, SLEUI,
    LUI,          //!< rc = imm16 << 16
    // Memory.
    LDQ, LDL, LDBU,
    STQ, STL, STB,
    // Control: conditional branches compare ra against zero.
    BEQ, BNE, BLT, BGE, BLE, BGT,
    BR,           //!< unconditional pc-relative branch
    BSR,          //!< direct call, rc = return address
    JSR,          //!< indirect call through ra, rc = return address
    JMP,          //!< indirect jump through ra (also used for RET)
    SYSCALL,
    NumOpcodes,
};

constexpr unsigned NumOpcodeValues =
    static_cast<unsigned>(Opcode::NumOpcodes);

/** Static properties of an opcode. */
struct OpInfo {
    std::string_view mnemonic;
    InstClass cls;
    InstFormat fmt;
    unsigned latency;   //!< execute latency in cycles (loads: agen only)
    unsigned memSize;   //!< access size in bytes for loads/stores, else 0
    bool signedLoad;    //!< sign-extend loaded value (LDL)
    /**
     * RENO_CF candidate: a register-immediate addition. Only these are
     * folded into map-table displacements (paper section 2.3). Includes
     * register moves since MOV == ADDI with immediate 0.
     */
    bool cfCandidate;
    /**
     * Fusion penalty class: true for general shifts, multiplies and
     * divides; a deferred displacement on an input of such an operation
     * costs one extra cycle (paper section 3.3). Add-like operations,
     * address generation, store data and branch direction paths absorb
     * the displacement for free via 3-input / extra 2-input adders.
     */
    bool fusePenalty;
};

/** Table of opcode properties, indexed by Opcode. */
const OpInfo &opInfo(Opcode op);

/** Convenience accessors. */
inline bool isLoad(Opcode op) { return opInfo(op).cls == InstClass::Load; }
inline bool isStore(Opcode op) { return opInfo(op).cls == InstClass::Store; }

inline bool
isMemOp(Opcode op)
{
    return isLoad(op) || isStore(op);
}

inline bool
isControl(Opcode op)
{
    const InstClass c = opInfo(op).cls;
    return c == InstClass::CtrlCond || c == InstClass::CtrlUncond ||
           c == InstClass::CtrlCall || c == InstClass::CtrlRet;
}

inline bool
isCondBranch(Opcode op)
{
    return opInfo(op).cls == InstClass::CtrlCond;
}

inline bool
isCall(Opcode op)
{
    return opInfo(op).cls == InstClass::CtrlCall;
}

/** Mnemonic for an opcode. */
std::string_view mnemonic(Opcode op);

/** Look up an opcode by mnemonic; returns NumOpcodes if unknown. */
Opcode opcodeFromMnemonic(std::string_view name);

} // namespace reno
