/**
 * @file
 * MediaBench-like kernels, part 2: GSM speech coding (lattice
 * filters), JPEG DCT/IDCT, and mesa-style fixed-point vertex
 * transformation.
 */
#include "workloads/workload_sources.hpp"

namespace reno::workloads
{

/**
 * gsm.enc-like: short-term LPC analysis: per-frame autocorrelation
 * (fixed-point MACs) followed by a 4-stage lattice analysis filter,
 * the hot loops of GSM 06.10 encoding.
 */
const char *const media_gsm_enc = R"(
# GSM-flavor short-term analysis kernel
        .data
speech: .space 25600          # 20 frames x 160 samples x 8B
refl:   .space 32             # 4 reflection coefficients
dacc:   .space 64             # autocorrelation lags 0..7
        .text

# autocorr(a0 = frame base): fills dacc[0..7]
autocorr:
        li   t0, 0            # lag
acl:
        li   t1, 0            # acc
        mov  t2, t0           # j = lag
acj:
        slli t3, t2, 3
        add  t4, a0, t3
        ldq  t5, 0(t4)        # x[j]
        sub  t6, t2, t0
        slli t3, t6, 3
        add  t4, a0, t3
        ldq  t7, 0(t4)        # x[j-lag]
        mul  t8, t5, t7
        srai t8, t8, 8
        add  t1, t1, t8
        addi t2, t2, 1
        slti t9, t2, 160
        bne  t9, acj
        la   t3, dacc
        slli t4, t0, 3
        add  t3, t3, t4
        stq  t1, 0(t3)
        addi t0, t0, 1
        slti t9, t0, 8
        bne  t9, acl
        ret

# lattice(a0 = frame base): 4-stage analysis with refl coefficients,
# returns residual energy in v0
lattice:
        li   t0, 1            # sample index
        li   v0, 0            # energy
lsample:
        slli t1, t0, 3
        add  t2, a0, t1
        ldq  t3, 0(t2)        # f = x[i]
        ldq  t4, -8(t2)       # b = x[i-1]
        li   t5, 0            # stage
lstage:
        la   t6, refl
        slli t7, t5, 3
        add  t6, t6, t7
        ldq  t8, 0(t6)        # k
        # f' = f - (k*b >> 10); b' = b - (k*f >> 10)
        mul  t9, t8, t4
        srai t9, t9, 10
        sub  t9, t3, t9
        mul  t7, t8, t3
        srai t7, t7, 10
        sub  t4, t4, t7
        mov  t3, t9
        addi t5, t5, 1
        slti t7, t5, 4
        bne  t7, lstage
        # accumulate |f|
        bge  t3, labs
        sub  t3, zero, t3
labs:
        add  v0, v0, t3
        addi t0, t0, 1
        slti t7, t0, 160
        bne  t7, lsample
        ret

_start:
        # synthesize speech: decaying sine-ish via quadratic ramps
        la   s0, speech
        li   s1, 3200         # total samples
        li   t0, 0
gen:
        andi t1, t0, 127
        subi t2, t1, 64
        mul  t3, t2, t2
        srai t3, t3, 3
        subi t3, t3, 256
        li   v0, 5
        syscall
        andi t4, v0, 127
        add  t3, t3, t4
        slli t5, t0, 3
        add  t6, s0, t5
        stq  t3, 0(t6)
        addi t0, t0, 1
        slt  t7, t0, s1
        bne  t7, gen

        # per-frame processing
        li   s2, 0            # frame
        li   s3, 0            # checksum
frame:
        muli t0, s2, 1280     # frame byte offset (160 x 8)
        add  s4, s0, t0       # frame base
        mov  a0, s4
        subi sp, sp, 8
        stq  ra, 0(sp)
        call autocorr
        # reflection coefficients from lag ratios:
        # k[i] = (acf[i+1] << 10) / (acf[0] + 1 + i)
        la   t0, dacc
        ldq  t1, 0(t0)        # acf[0]
        li   t2, 0
mkrefl:
        addi t3, t2, 1
        slli t4, t3, 3
        add  t5, t0, t4
        ldq  t6, 0(t5)        # acf[i+1]
        slli t6, t6, 10
        add  t7, t1, t3
        beq  t7, divz
        div  t6, t6, t7
        j    okd
divz:
        li   t6, 0
okd:
        # clamp to +-900
        li   t7, 900
        sle  t8, t6, t7
        bne  t8, ck1
        mov  t6, t7
ck1:
        li   t7, -900
        sle  t8, t7, t6
        bne  t8, ck2
        mov  t6, t7
ck2:
        la   t8, refl
        slli t9, t2, 3
        add  t8, t8, t9
        stq  t6, 0(t8)
        addi t2, t2, 1
        slti t9, t2, 4
        bne  t9, mkrefl
        mov  a0, s4
        call lattice
        ldq  ra, 0(sp)
        addi sp, sp, 8
        add  s3, s3, v0
        addi s2, s2, 1
        slti t0, s2, 20
        bne  t0, frame

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * gsm.dec-like: short-term synthesis: the inverse lattice filter
 * reconstructing speech from residual + reflection coefficients.
 */
const char *const media_gsm_dec = R"(
# GSM-flavor short-term synthesis kernel
        .data
resid:  .space 25600          # 20 frames x 160 x 8B residual
outbuf: .space 25600
refl:   .space 32
v:      .space 40             # lattice memory (5 taps)
        .text

# synth(a0 = residual frame, a1 = output frame)
synth:
        li   t0, 0            # sample
ssample:
        slli t1, t0, 3
        add  t2, a0, t1
        ldq  t3, 0(t2)        # sri = residual
        # backward pass through 4 stages
        li   t4, 3            # stage
sstage:
        la   t5, refl
        slli t6, t4, 3
        add  t5, t5, t6
        ldq  t7, 0(t5)        # k
        la   t8, v
        slli t6, t4, 3
        add  t8, t8, t6
        ldq  t9, 0(t8)        # v[stage]
        # sri = sri - (k * v[i] >> 10)
        mul  t2, t7, t9
        srai t2, t2, 10
        sub  t3, t3, t2
        # v[i+1] = v[i] + (k * sri >> 10)
        mul  t2, t7, t3
        srai t2, t2, 10
        add  t2, t9, t2
        stq  t2, 8(t8)
        subi t4, t4, 1
        bge  t4, sstage
        # v[0] = sri; out = sri
        la   t8, v
        stq  t3, 0(t8)
        slli t1, t0, 3
        add  t2, a1, t1
        stq  t3, 0(t2)
        addi t0, t0, 1
        slti t4, t0, 160
        bne  t4, ssample
        ret

_start:
        # synthesize residual and coefficients
        la   s0, resid
        li   s1, 3200
        li   t0, 0
gr:
        li   v0, 5
        syscall
        andi t1, v0, 255
        subi t1, t1, 128
        slli t2, t0, 3
        add  t3, s0, t2
        stq  t1, 0(t3)
        addi t0, t0, 1
        slt  t4, t0, s1
        bne  t4, gr
        la   t0, refl
        li   t1, 300
        stq  t1, 0(t0)
        li   t1, -200
        stq  t1, 8(t0)
        li   t1, 120
        stq  t1, 16(t0)
        li   t1, -60
        stq  t1, 24(t0)

        la   s2, outbuf
        li   s3, 0            # frame
        li   s4, 0            # checksum
dframe:
        muli t0, s3, 1280
        add  a0, s0, t0
        add  a1, s2, t0
        subi sp, sp, 8
        stq  ra, 0(sp)
        call synth
        ldq  ra, 0(sp)
        addi sp, sp, 8
        # checksum a few samples of the frame
        muli t0, s3, 1280
        add  t1, s2, t0
        ldq  t2, 0(t1)
        ldq  t3, 632(t1)
        ldq  t4, 1272(t1)
        add  s4, s4, t2
        xor  s4, s4, t3
        add  s4, s4, t4
        addi s3, s3, 1
        slti t0, s3, 20
        bne  t0, dframe

        andi s4, s4, 65535
        li   v0, 1
        mov  a0, s4
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * jpeg.enc-like: 8x8 forward integer DCT (separable, butterfly-style
 * with small multipliers) plus quantization over 64 image blocks.
 */
const char *const media_jpeg_enc = R"(
# JPEG-flavor forward DCT + quantize kernel
        .data
img:    .space 32768          # 64 blocks x 64 coefficients x 8B
qtab:   .quad 16, 11, 10, 16, 24, 40, 51, 61
        .text

# dct8(a0 = base of 8 values spaced a1 bytes apart) in-place
dct8:
        # load x0..x7 into t0..t7
        mov  t8, a0
        ldq  t0, 0(t8)
        add  t8, t8, a1
        ldq  t1, 0(t8)
        add  t8, t8, a1
        ldq  t2, 0(t8)
        add  t8, t8, a1
        ldq  t3, 0(t8)
        add  t8, t8, a1
        ldq  t4, 0(t8)
        add  t8, t8, a1
        ldq  t5, 0(t8)
        add  t8, t8, a1
        ldq  t6, 0(t8)
        add  t8, t8, a1
        ldq  t7, 0(t8)
        # butterfly stage 1: s = x_i + x_{7-i}, d = x_i - x_{7-i}
        add  t9, t0, t7       # s0
        sub  t7, t0, t7       # d0
        mov  t0, t9
        add  t9, t1, t6       # s1
        sub  t6, t1, t6       # d1
        mov  t1, t9
        add  t9, t2, t5       # s2
        sub  t5, t2, t5       # d2
        mov  t2, t9
        add  t9, t3, t4       # s3
        sub  t4, t3, t4       # d3
        mov  t3, t9
        # even part: X0 = s0+s1+s2+s3, X4 = s0-s1-s2+s3 etc (scaled)
        add  t9, t0, t3
        add  t8, t1, t2
        # store X0 = (e0 + e1)
        add  t9, t9, t8
        stq  t9, 0(a0)
        # X4 = e0 - e1
        add  t9, t0, t3
        sub  t9, t9, t8
        sub  t8, t0, t3
        muli t8, t8, 17       # ~cos scaling
        srai t8, t8, 4
        # write X2, X4, X6 along the stride
        slli t0, a1, 1        # 2*stride
        add  t3, a0, t0
        stq  t8, 0(t3)        # X2
        slli t8, a1, 2
        add  t3, a0, t8
        stq  t9, 0(t3)        # X4
        sub  t9, t1, t2
        muli t9, t9, 7
        srai t9, t9, 4
        add  t8, t0, t8       # wait: 2s+4s = 6*stride
        add  t3, a0, t8
        stq  t9, 0(t3)        # X6
        # odd part: combinations of d0..d3 with small muls
        muli t9, t7, 13
        muli t8, t6, 11
        add  t9, t9, t8
        muli t8, t5, 6
        add  t9, t9, t8
        muli t8, t4, 3
        add  t9, t9, t8
        srai t9, t9, 4
        add  t3, a0, a1
        stq  t9, 0(t3)        # X1
        muli t9, t7, 11
        muli t8, t6, 3
        sub  t9, t9, t8
        muli t8, t5, 13
        sub  t9, t9, t8
        muli t8, t4, 6
        sub  t9, t9, t8
        srai t9, t9, 4
        muli t8, a1, 3
        add  t3, a0, t8
        stq  t9, 0(t3)        # X3
        muli t9, t7, 6
        muli t8, t6, 13
        sub  t9, t9, t8
        muli t8, t5, 3
        add  t9, t9, t8
        muli t8, t4, 11
        add  t9, t9, t8
        srai t9, t9, 4
        muli t8, a1, 5
        add  t3, a0, t8
        stq  t9, 0(t3)        # X5
        muli t9, t7, 3
        muli t8, t6, 6
        sub  t9, t9, t8
        muli t8, t5, 11
        add  t9, t9, t8
        muli t8, t4, 13
        sub  t9, t9, t8
        srai t9, t9, 4
        muli t8, a1, 7
        add  t3, a0, t8
        stq  t9, 0(t3)        # X7
        ret

_start:
        # synthesize image blocks: gradient + noise
        la   s0, img
        li   t0, 0            # linear index over 4096 entries
gi:
        andi t1, t0, 63
        andi t2, t1, 7        # x
        srli t3, t1, 3        # y
        slli t4, t2, 2
        slli t5, t3, 3
        add  t4, t4, t5
        li   v0, 5
        syscall
        andi t5, v0, 31
        add  t4, t4, t5
        subi t4, t4, 64
        slli t5, t0, 3
        add  t6, s0, t5
        stq  t4, 0(t6)
        addi t0, t0, 1
        slti t7, t0, 4096
        bne  t7, gi

        # per block: 8 row DCTs, 8 column DCTs, quantize
        li   s1, 0            # block
        li   s2, 0            # checksum
blk:
        slli t0, s1, 9        # block byte offset (64 x 8)
        add  s3, s0, t0       # block base
        # rows: stride 8 bytes, bases 0, 64, 128, ...
        li   s4, 0
rows:
        slli t0, s4, 6
        add  a0, s3, t0
        li   a1, 8
        subi sp, sp, 8
        stq  ra, 0(sp)
        call dct8
        ldq  ra, 0(sp)
        addi sp, sp, 8
        addi s4, s4, 1
        slti t0, s4, 8
        bne  t0, rows
        # columns: stride 64 bytes, bases 0, 8, 16, ...
        li   s4, 0
cols:
        slli t0, s4, 3
        add  a0, s3, t0
        li   a1, 64
        subi sp, sp, 8
        stq  ra, 0(sp)
        call dct8
        ldq  ra, 0(sp)
        addi sp, sp, 8
        addi s4, s4, 1
        slti t0, s4, 8
        bne  t0, cols
        # quantize: coefficient (y,x) by qtab[x] << (y >= 4)
        li   s4, 0
qz:
        andi t0, s4, 7        # x
        la   t1, qtab
        slli t2, t0, 3
        add  t1, t1, t2
        ldq  t3, 0(t1)        # q
        srli t4, s4, 3        # y
        slti t5, t4, 4
        bne  t5, qlow
        slli t3, t3, 1
qlow:
        slli t6, s4, 3
        add  t7, s3, t6
        ldq  t8, 0(t7)
        div  t8, t8, t3
        stq  t8, 0(t7)
        add  s2, s2, t8
        addi s4, s4, 1
        slti t0, s4, 64
        bne  t0, qz
        addi s1, s1, 1
        slti t0, s1, 64
        bne  t0, blk

        andi s2, s2, 65535
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * jpeg.dec-like: dequantization plus separable 8x8 inverse transform
 * (butterfly with small multipliers) over 64 coefficient blocks, with
 * final clamp to pixel range.
 */
const char *const media_jpeg_dec = R"(
# JPEG-flavor dequantize + IDCT kernel
        .data
coefs:  .space 32768          # 64 blocks x 64 x 8B
qtab:   .quad 16, 11, 10, 16, 24, 40, 51, 61
        .text

# idct8(a0 = base, a1 = stride): crude inverse butterfly
idct8:
        mov  t8, a0
        ldq  t0, 0(t8)
        add  t8, t8, a1
        ldq  t1, 0(t8)
        add  t8, t8, a1
        ldq  t2, 0(t8)
        add  t8, t8, a1
        ldq  t3, 0(t8)
        add  t8, t8, a1
        ldq  t4, 0(t8)
        add  t8, t8, a1
        ldq  t5, 0(t8)
        add  t8, t8, a1
        ldq  t6, 0(t8)
        add  t8, t8, a1
        ldq  t7, 0(t8)
        # even: e0 = x0 + x4, e1 = x0 - x4, e2 = x2 + (x6>>1),
        #       e3 = (x2>>1) - x6
        add  t8, t0, t4
        sub  t9, t0, t4
        srai t0, t6, 1
        add  t0, t2, t0       # e2
        srai t4, t2, 1
        sub  t4, t4, t6       # e3
        add  t2, t8, t0       # s0 = e0 + e2
        sub  t6, t8, t0       # s3 = e0 - e2
        add  t8, t9, t4       # s1 = e1 + e3
        sub  t9, t9, t4       # s2 = e1 - e3
        # odd: o0..o3 from x1,x3,x5,x7 with small muls
        muli t0, t1, 13
        muli t4, t3, 11
        add  t0, t0, t4
        muli t4, t5, 6
        add  t0, t0, t4
        muli t4, t7, 3
        add  t0, t0, t4
        srai t0, t0, 4        # o0
        muli t4, t1, 11
        stq  t0, 0(a0)        # hold o0 temporarily in row 0 slot
        muli t0, t3, 3
        sub  t4, t4, t0
        muli t0, t5, 13
        sub  t4, t4, t0
        muli t0, t7, 6
        sub  t4, t4, t0
        srai t4, t4, 4        # o1
        muli t0, t1, 6
        muli t1, t3, 13
        sub  t0, t0, t1
        muli t1, t5, 3
        add  t0, t0, t1
        muli t1, t7, 11
        add  t0, t0, t1
        srai t0, t0, 4        # o2
        # y_i = s_i + o_i, y_{7-i} = s_i - o_i (o3 approximated by o2>>1)
        ldq  t1, 0(a0)        # o0 back
        add  t3, t2, t1       # y0
        sub  t5, t2, t1       # y7
        add  t7, t8, t4       # y1
        sub  t1, t8, t4       # y6
        add  t2, t9, t0       # y2
        sub  t8, t9, t0       # y5
        srai t0, t0, 1        # o3
        add  t4, t6, t0       # y3
        sub  t9, t6, t0       # y4
        # store back along stride
        stq  t3, 0(a0)
        mov  t6, a0
        add  t6, t6, a1
        stq  t7, 0(t6)
        add  t6, t6, a1
        stq  t2, 0(t6)
        add  t6, t6, a1
        stq  t4, 0(t6)
        add  t6, t6, a1
        stq  t9, 0(t6)
        add  t6, t6, a1
        stq  t8, 0(t6)
        add  t6, t6, a1
        stq  t1, 0(t6)
        add  t6, t6, a1
        stq  t5, 0(t6)
        ret

_start:
        # synthesize sparse quantized coefficients
        la   s0, coefs
        li   t0, 0
gc:
        li   v0, 5
        syscall
        andi t1, v0, 7
        beq  t1, nz
        li   t2, 0
        j    put
nz:
        srli t2, v0, 8
        andi t2, t2, 63
        subi t2, t2, 32
put:
        slli t3, t0, 3
        add  t4, s0, t3
        stq  t2, 0(t4)
        addi t0, t0, 1
        slti t5, t0, 4096
        bne  t5, gc

        li   s1, 0            # block
        li   s2, 0            # checksum
blk:
        slli t0, s1, 9
        add  s3, s0, t0
        # dequantize
        li   s4, 0
dq:
        andi t0, s4, 7
        la   t1, qtab
        slli t2, t0, 3
        add  t1, t1, t2
        ldq  t3, 0(t1)
        slli t6, s4, 3
        add  t7, s3, t6
        ldq  t8, 0(t7)
        mul  t8, t8, t3
        stq  t8, 0(t7)
        addi s4, s4, 1
        slti t0, s4, 64
        bne  t0, dq
        # row and column passes
        li   s4, 0
irows:
        slli t0, s4, 6
        add  a0, s3, t0
        li   a1, 8
        subi sp, sp, 8
        stq  ra, 0(sp)
        call idct8
        ldq  ra, 0(sp)
        addi sp, sp, 8
        addi s4, s4, 1
        slti t0, s4, 8
        bne  t0, irows
        li   s4, 0
icols:
        slli t0, s4, 3
        add  a0, s3, t0
        li   a1, 64
        subi sp, sp, 8
        stq  ra, 0(sp)
        call idct8
        ldq  ra, 0(sp)
        addi sp, sp, 8
        addi s4, s4, 1
        slti t0, s4, 8
        bne  t0, icols
        # clamp to [0, 255] after level shift, checksum
        li   s4, 0
cl:
        slli t0, s4, 3
        add  t1, s3, t0
        ldq  t2, 0(t1)
        srai t2, t2, 6
        addi t2, t2, 128
        bge  t2, cln
        li   t2, 0
cln:
        li   t3, 255
        sle  t4, t2, t3
        bne  t4, clh
        mov  t2, t3
clh:
        stq  t2, 0(t1)
        add  s2, s2, t2
        addi s4, s4, 1
        slti t0, s4, 64
        bne  t0, cl
        addi s1, s1, 1
        slti t0, s1, 64
        bne  t0, blk

        andi s2, s2, 65535
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * mesa-like: fixed-point (16.16) 4x4 matrix vertex transformation
 * with Newton-Raphson reciprocal for the perspective divide and a
 * viewport clip test, over three "objects" (matrices).
 */
const char *const media_mesa = R"(
# mesa-flavor vertex transform kernel
        .data
verts:  .space 24576          # 1024 vertices x 24B {x, y, z}
matrix: .space 128            # 4x4 of 16.16
        .text

# recip(a0, 16.16) -> v0 ~ (1<<32)/a0 via Newton iterations.
# a0 is in [1.0, 1.5); the divide-free linear seed 48/17 - 32/17*x is
# accurate enough that three iterations converge (a compiler-visible
# fixed-point idiom; no divider involved).
recip:
        li   t0, 185043       # 48/17 in 16.16
        li   t1, 123362       # 32/17 in 16.16
        mul  t1, t1, a0
        srai t1, t1, 16
        sub  v0, t0, t1       # seed
        li   t1, 3            # iterations
rloop:
        # v = v * (2<<16 - (a*v >> 16)) >> 16
        mul  t2, a0, v0
        srai t2, t2, 16
        li   t3, 131072
        sub  t3, t3, t2
        mul  v0, v0, t3
        srai v0, v0, 16
        subi t1, t1, 1
        bne  t1, rloop
        ret

_start:
        # vertices
        la   s0, verts
        li   s1, 1024
        li   t0, 0
gv:
        li   v0, 5
        syscall
        andi t1, v0, 65535
        subi t1, t1, 32768    # x in 16.16-ish
        srli t2, v0, 16
        andi t2, t2, 65535
        subi t2, t2, 32768    # y
        srli t3, v0, 32
        andi t3, t3, 32767
        li   t7, 65536
        add  t3, t3, t7       # z > 1.0
        muli t4, t0, 24
        add  t5, s0, t4
        stq  t1, 0(t5)
        stq  t2, 8(t5)
        stq  t3, 16(t5)
        addi t0, t0, 1
        slt  t6, t0, s1
        bne  t6, gv

        li   s5, 0            # checksum (clip-accept count)
        li   s4, 0            # object
obj:
        # build object matrix: diagonal-ish with object-dependent skew
        la   t0, matrix
        li   t1, 0
gm:
        li   t2, 0
        andi t3, t1, 5
        bne  t3, offdiag
        li   t2, 60000
        slli t4, s4, 12
        add  t2, t2, t4
offdiag:
        andi t3, t1, 3
        subi t3, t3, 1
        bne  t3, putm
        li   t2, 9000
putm:
        slli t3, t1, 3
        add  t4, t0, t3
        stq  t2, 0(t4)
        addi t1, t1, 1
        slti t3, t1, 16
        bne  t3, gm

        # transform all vertices; the matrix base is loop-invariant and
        # the vertex pointer is strength-reduced to an increment.
        li   s2, 0            # vertex index
        li   s3, 0
        la   fp, matrix
        mov  t1, s0           # vertex pointer
tv:
        ldq  t2, 0(t1)        # x
        ldq  t3, 8(t1)        # y
        ldq  t4, 16(t1)       # z
        addi t1, t1, 24
        # tx = (m00*x + m01*y + m02*z) >> 16  (+ m03)
        mov  t5, fp
        ldq  t6, 0(t5)
        mul  t7, t6, t2
        ldq  t6, 8(t5)
        mul  t8, t6, t3
        add  t7, t7, t8
        ldq  t6, 16(t5)
        mul  t8, t6, t4
        add  t7, t7, t8
        srai t7, t7, 16       # tx
        # ty
        ldq  t6, 32(t5)
        mul  t8, t6, t2
        ldq  t6, 40(t5)
        mul  t9, t6, t3
        add  t8, t8, t9
        ldq  t6, 48(t5)
        mul  t9, t6, t4
        add  t8, t8, t9
        srai t8, t8, 16       # ty
        # tw = z (simplified projective w)
        mov  a0, t4
        subi sp, sp, 40
        stq  ra, 0(sp)
        stq  t7, 8(sp)
        stq  t8, 16(sp)
        stq  t1, 24(sp)
        call recip
        ldq  t1, 24(sp)
        ldq  t8, 16(sp)
        ldq  t7, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 40
        # screen coords: sx = tx * rw >> 16, sy = ty * rw >> 16
        mul  t7, t7, v0
        srai t7, t7, 16
        mul  t8, t8, v0
        srai t8, t8, 16
        # clip test |sx| < 32768, |sy| < 32768, branchless
        srai t9, t7, 63
        xor  t7, t7, t9
        sub  t7, t7, t9       # |sx|
        srai t9, t8, 63
        xor  t8, t8, t9
        sub  t8, t8, t9       # |sy|
        li   t9, 32768
        slt  t2, t7, t9
        slt  t3, t8, t9
        and  t2, t2, t3
        add  s5, s5, t2       # accept count
        sub  t3, zero, t2
        and  t3, t7, t3
        add  s3, s3, t3       # accumulate accepted |sx|
        addi s2, s2, 1
        slt  t0, s2, s1
        bne  t0, tv
        addi s4, s4, 1
        slti t0, s4, 3
        bne  t0, obj

        add  s5, s5, s3
        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace reno::workloads
