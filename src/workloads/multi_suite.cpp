/**
 * @file
 * Multi-core suite: generated SPMD kernels whose behavior is
 * dominated by inter-core coherence rather than by per-core rename or
 * memory behavior. Every core of a System runs the same kernel; the
 * core_id syscall (v0 = 6) differentiates them, so each kernel also
 * runs -- and self-checks -- on a single core, where it generates no
 * coherence traffic at all.
 *
 *  - prodcons: all cores hand values around one shared ring, one slot
 *              per cache line, staggered by core id (read slot i,
 *              write slot i+1): steady-state invalidation traffic and
 *              dirty-line interventions;
 *  - lock:     every iteration read-modify-writes one shared lock
 *              line, then a shared critical-section line, then does a
 *              little private work: the ownership of two hot lines
 *              ping-pongs (upgrade misses) the way contended spin
 *              locks do;
 *  - false:    each core read-modify-writes its own private word, but
 *              the words are @p pad_bytes apart: at pad 8 they share
 *              a line (false sharing, pure invalidation ping-pong),
 *              at pad >= the line size the traffic disappears while
 *              the computation -- and the printed checksum -- stays
 *              identical;
 *  - stream:   each core streams a disjoint region: zero coherence
 *              traffic, pure shared-stack and memory-bus contention.
 *
 * Every kernel prints a checksum through the print syscall, so any
 * configuration is checked against the functional emulator per core.
 */
#include "workloads/workload_sources.hpp"

#include "common/log.hpp"

namespace reno::workloads
{

const char *
multiProdconsSource(unsigned slots, unsigned iters)
{
    if (slots == 0 || (slots & (slots - 1)) != 0)
        fatal("multiProdconsSource: slot count must be a power of two");
    // One 32 B line per slot: every hand-off moves whole-line
    // ownership between cores.
    return intern(strprintf(R"(# multi.prodcons: ring hand-off over %u line-sized shared slots
        .data
ring:   .space %u
        .text
_start:
        li   v0, 6
        syscall
        mov  s5, v0           # core id
        la   s1, ring
        li   s3, %u           # slot mask
        and  t0, s5, s3       # cursor: staggered by core id
        li   t1, %u           # iterations
        li   s2, 0            # running checksum
loop:
        slli t2, t0, 5        # slot -> byte offset (32 B slots)
        add  t2, t2, s1
        ldq  t3, 0(t2)        # consume the current slot
        add  s2, s2, t3
        addi t0, t0, 1
        and  t0, t0, s3
        slli t4, t0, 5
        add  t4, t4, s1
        stq  s2, 0(t4)        # produce into the next slot
        subi t1, t1, 1
        bne  t1, loop

        # fold the 64-bit sum so the printed checksum sees every bit
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            slots, slots * 32, slots - 1, iters));
}

const char *
multiLockSource(unsigned iters)
{
    return intern(strprintf(R"(# multi.lock: %u acquire/work/release rounds on one shared lock line
        .data
lock:   .space 32
crit:   .space 32
        .text
_start:
        li   v0, 6
        syscall
        mov  s5, v0           # core id
        la   s1, lock
        la   s4, crit
        li   t1, %u           # rounds
        li   s2, 0            # running checksum
loop:
        # acquire: read-modify-write the lock word (S -> M upgrade
        # whenever another core touched it since)
        ldq  t2, 0(s1)
        addi t2, t2, 1
        stq  t2, 0(s1)
        add  s2, s2, t2
        # critical section: bump a shared counter on a second hot line
        ldq  t3, 0(s4)
        add  t3, t3, s5
        addi t3, t3, 1
        stq  t3, 0(s4)
        add  s2, s2, t3
        # private work: space out the acquisitions
        li   t4, 8
work:
        addi s2, s2, 3
        subi t4, t4, 1
        bne  t4, work
        subi t1, t1, 1
        bne  t1, loop

        # fold the 64-bit sum so the printed checksum sees every bit
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            iters, iters));
}

const char *
multiFalseSource(unsigned iters, unsigned pad_bytes)
{
    if (pad_bytes < 8 || pad_bytes > 256)
        fatal("multiFalseSource: padding must be in [8, 256] bytes "
              "(got %u)", pad_bytes);
    // 8 slots (SysParams::MaxCores) at the maximum padding.
    return intern(strprintf(R"(# multi.false: per-core counters %u bytes apart (8 = false sharing)
        .data
slots:  .space 2048
        .text
_start:
        li   v0, 6
        syscall
        muli t0, v0, %u       # this core's slot offset
        la   s1, slots
        add  s1, s1, t0
        li   t1, %u           # iterations
        li   s2, 0            # running checksum
loop:
        ldq  t2, 0(s1)        # private counter, maybe-shared line
        addi t2, t2, 1
        stq  t2, 0(s1)
        add  s2, s2, t2
        subi t1, t1, 1
        bne  t1, loop

        # fold the 64-bit sum so the printed checksum sees every bit
        # (identical across paddings and core counts: the padding only
        # moves the counter, never the arithmetic)
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            pad_bytes, pad_bytes, iters));
}

const char *
multiStreamSource(unsigned kb_per_core, unsigned passes)
{
    const unsigned region = kb_per_core * 1024;
    const unsigned elems = region / 8;
    // 8 regions (SysParams::MaxCores): every core count up to the cap
    // streams disjoint memory.
    return intern(strprintf(R"(# multi.stream: %u passes over a private %u KB region per core
        .data
buf:    .space %u
        .text
_start:
        li   v0, 6
        syscall
        li   t0, %u           # region bytes
        mul  t0, t0, v0
        la   s1, buf
        add  s1, s1, t0       # this core's region

        # init pass: a[i] += i (read-modify-write paces the core
        # against the contended bus, as in mem.stream)
        mov  t0, s1
        li   t1, %u
        li   t2, 0
init:
        ldq  t3, 0(t0)
        add  t3, t3, t2
        stq  t3, 0(t0)
        addi t0, t0, 8
        addi t2, t2, 1
        subi t1, t1, 1
        bne  t1, init

        li   s0, %u           # passes
        li   s2, 0            # running checksum
pass:
        mov  t0, s1
        li   t1, %u
loop:
        ldq  t3, 0(t0)
        add  s2, s2, t3
        stq  s2, 0(t0)
        addi t0, t0, 8
        subi t1, t1, 1
        bne  t1, loop
        subi s0, s0, 1
        bne  s0, pass

        # fold the 64-bit sum so the printed checksum sees every bit
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            passes, kb_per_core, region * 8, region,
                            elems, passes, elems));
}

} // namespace reno::workloads
