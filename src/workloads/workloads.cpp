#include "workloads/workloads.hpp"

#include <memory>

#include "common/log.hpp"
#include "workloads/randprog.hpp"
#include "workloads/workload_sources.hpp"

namespace reno
{

const std::vector<Workload> &
allWorkloads()
{
    using namespace workloads;
    // The paper's Figure 8 bar lists: 16 SPECint2000 runs and 19
    // MediaBench runs. Kernels with several paper inputs (eon's three
    // camera models, perl's two scripts, vpr's two phases, mesa's
    // three demos, pegwit's two directions) appear once per input,
    // distinguished by the rand-syscall seed.
    static const std::vector<Workload> table = {
        {"bzip2",     "spec", spec_bzip2,     1},
        {"crafty",    "spec", spec_crafty,    1},
        {"eon.c",     "spec", spec_eon,       1},
        {"eon.k",     "spec", spec_eon,       2},
        {"eon.r",     "spec", spec_eon,       3},
        {"gap",       "spec", spec_gap,       1},
        {"gcc",       "spec", spec_gcc,       1},
        {"gzip",      "spec", spec_gzip,      1},
        {"mcf",       "spec", spec_mcf,       1},
        {"parser",    "spec", spec_parser,    1},
        {"perl.d",    "spec", spec_perlbmk,   1},
        {"perl.s",    "spec", spec_perlbmk,   2},
        {"twolf",     "spec", spec_twolf,     1},
        {"vortex",    "spec", spec_vortex,    1},
        {"vpr.p",     "spec", spec_vpr,       1},
        {"vpr.r",     "spec", spec_vpr,       2},
        {"adpcm.dec", "media", media_adpcm_dec, 1},
        {"adpcm.enc", "media", media_adpcm_enc, 1},
        {"epic",      "media", media_epic,      1},
        {"g721.dec",  "media", media_g721_dec,  1},
        {"g721.enc",  "media", media_g721_enc,  1},
        {"gs",        "media", media_gs,        1},
        {"gsm.dec",   "media", media_gsm_dec,   1},
        {"gsm.enc",   "media", media_gsm_enc,   1},
        {"jpeg.dec",  "media", media_jpeg_dec,  1},
        {"jpeg.enc",  "media", media_jpeg_enc,  1},
        {"mesa.m",    "media", media_mesa,      1},
        {"mesa.o",    "media", media_mesa,      2},
        {"mesa.t",    "media", media_mesa,      3},
        {"mpeg2.dec", "media", media_mpeg2_dec, 1},
        {"mpeg2.enc", "media", media_mpeg2_enc, 1},
        {"pegw.dec",  "media", media_pegwit,    2},
        {"pegw.enc",  "media", media_pegwit,    1},
        {"unepic",    "media", media_unepic,    1},
    };
    return table;
}

namespace
{

/** Generate a synth kernel into static storage (Workload keeps a
 *  borrowed pointer, so the text must live for the process). */
const char *
synthSource(const RandProgParams &params)
{
    static std::vector<std::unique_ptr<const std::string>> storage;
    storage.push_back(std::make_unique<const std::string>(
        generateRandomProgram(params)));
    return storage.back()->c_str();
}

RandProgParams
synthParams(std::uint64_t seed, unsigned phases, unsigned chase)
{
    RandProgParams p;
    p.seed = seed;
    p.iters = 8000;
    p.phases = phases;
    p.phasePeriod = 32;
    p.chaseSteps = chase;
    return p;
}

} // namespace

const std::vector<Workload> &
synthWorkloads()
{
    // Millions of dynamic instructions each: plain, phase-switching,
    // pointer-chasing, and both combined. Deterministic by seed.
    static const std::vector<Workload> table = {
        {"synth.plain", "synth", synthSource(synthParams(11, 1, 0)),
         11},
        {"synth.phase", "synth", synthSource(synthParams(12, 4, 0)),
         12},
        {"synth.chase", "synth", synthSource(synthParams(13, 1, 12)),
         13},
        {"synth.mix", "synth", synthSource(synthParams(14, 4, 8)),
         14},
    };
    return table;
}

const std::vector<Workload> &
memWorkloads()
{
    using namespace workloads;
    // Footprints straddle the default hierarchy: 32 KB fits the D$,
    // 256 KB the 512 KB L2, 1 MB only main memory. Pass/iteration
    // counts keep every kernel in the millions-of-instructions range.
    static const std::vector<Workload> table = {
        {"mem.stream.32k", "mem", memStreamSource(32, 64), 1},
        {"mem.stream.256k", "mem", memStreamSource(256, 12), 1},
        {"mem.stream.1m", "mem", memStreamSource(1024, 3), 1},
        {"mem.stride.512k", "mem", memStrideSource(512, 128, 300000),
         1},
        {"mem.chase.64k", "mem", memChaseSource(64, 600000), 1},
        {"mem.chase.1m", "mem", memChaseSource(1024, 150000), 1},
        {"mem.tile.mm", "mem", memTileSource(), 1},
    };
    return table;
}

const std::vector<Workload> &
branchWorkloads()
{
    using namespace workloads;
    // Each kernel isolates one prediction-stack failure mode (see
    // branch_suite.cpp); iteration counts keep every kernel in the
    // millions-of-instructions range.
    static const std::vector<Workload> table = {
        {"branch.bias", "branch", branchBiasSource(250000), 1},
        {"branch.alt", "branch", branchAltSource(200000), 1},
        {"branch.loop", "branch", branchLoopSource(25000), 1},
        {"branch.corr", "branch", branchCorrSource(150000), 1},
        {"branch.call", "branch", branchCallSource(10000, 24), 1},
        {"branch.ind", "branch", branchIndSource(120000, 8), 1},
    };
    return table;
}

const std::vector<Workload> &
multiWorkloads()
{
    using namespace workloads;
    // SPMD coherence kernels (multi_suite.cpp): the false-sharing
    // pair differs only in counter padding (8 B shares a 32 B line,
    // 256 B does not), so their invalidation counts bracket the
    // false-sharing effect while their checksums stay identical.
    static const std::vector<Workload> table = {
        {"multi.prodcons", "multi", multiProdconsSource(64, 60000), 1},
        {"multi.lock", "multi", multiLockSource(30000), 1},
        {"multi.false", "multi", multiFalseSource(150000, 8), 1},
        {"multi.false.pad", "multi", multiFalseSource(150000, 256), 1},
        {"multi.stream", "multi", multiStreamSource(32, 6), 1},
    };
    return table;
}

namespace
{

/** Every registry, paper first (workloadsMatching's search order). */
std::vector<const std::vector<Workload> *>
allRegistries()
{
    return {&allWorkloads(), &synthWorkloads(), &memWorkloads(),
            &branchWorkloads(), &multiWorkloads()};
}

/** The known suite names as one quoted, comma-separated list, for
 *  error messages ("\"spec\", \"media\", ..."). */
std::string
knownSuiteList()
{
    std::string out;
    for (const SuiteInfo &s : knownSuites()) {
        if (!out.empty())
            out += ", ";
        out += "\"" + s.name + "\"";
    }
    return out;
}

} // namespace

std::vector<const Workload *>
suiteWorkloads(const std::string &suite)
{
    const std::vector<Workload> &registry =
        suite == "synth"    ? synthWorkloads()
        : suite == "mem"    ? memWorkloads()
        : suite == "branch" ? branchWorkloads()
        : suite == "multi"  ? multiWorkloads()
                            : allWorkloads();
    std::vector<const Workload *> out;
    bool known = false;
    for (const auto &w : registry) {
        if (w.suite == suite) {
            out.push_back(&w);
            known = true;
        }
    }
    if (!known)
        fatal("unknown workload suite '%s' (known suites: %s)",
              suite.c_str(), knownSuiteList().c_str());
    return out;
}

namespace
{

/** Iterative `*`/`?` glob match (no brackets, no escapes). */
bool
globMatch(const std::string &pattern, const std::string &text)
{
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace

std::vector<const Workload *>
workloadsMatching(const std::string &glob, const std::string &suite)
{
    const bool any_suite = suite.empty() || suite == "all";
    std::vector<const Workload *> out;
    for (const std::vector<Workload> *registry : allRegistries()) {
        for (const Workload &w : *registry) {
            if (globMatch(glob, w.name) &&
                (any_suite || w.suite == suite))
                out.push_back(&w);
        }
    }
    if (out.empty())
        fatal("--workloads '%s' matches no registered workload%s "
              "(known suites: %s; globs match workload names, e.g. "
              "\"mem.*\", \"gzip\", \"multi.false*\"; "
              "reno-sweep --list prints every name)",
              glob.c_str(),
              any_suite ? "" : (" in suite '" + suite + "'").c_str(),
              knownSuiteList().c_str());
    return out;
}

std::vector<SuiteInfo>
knownSuites()
{
    std::vector<SuiteInfo> out;
    auto tally = [&out](const std::vector<Workload> &registry,
                        bool paper) {
        for (const Workload &w : registry) {
            SuiteInfo *info = nullptr;
            for (SuiteInfo &s : out) {
                if (s.name == w.suite)
                    info = &s;
            }
            if (!info) {
                out.push_back(SuiteInfo{w.suite, 0, paper});
                info = &out.back();
            }
            ++info->workloads;
        }
    };
    tally(allWorkloads(), true);
    tally(synthWorkloads(), false);
    tally(memWorkloads(), false);
    tally(branchWorkloads(), false);
    tally(multiWorkloads(), false);
    return out;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const std::vector<Workload> *registry : allRegistries()) {
        for (const auto &w : *registry) {
            if (w.name == name)
                return w;
        }
    }
    fatal("unknown workload '%s' (reno-sweep --list prints every "
          "registered name)", name.c_str());
}

} // namespace reno
