/**
 * @file
 * Random (but always valid and terminating) program generator, used by
 * the property-based tests - every generated program is run on the
 * functional emulator and on the timing core with RENO enabled, and
 * the final architectural states must match - and as a synthetic
 * workload source.
 *
 * Generated programs contain: bounded loops, leaf function calls with
 * stack frames, random ALU operations (including divides), register
 * moves, register-immediate additions, and loads/stores confined to a
 * scratch buffer by address masking. The mix is biased toward the
 * idioms RENO targets.
 */
#pragma once

#include <cstdint>
#include <string>

namespace reno
{

/** Knobs for the generator. */
struct RandProgParams {
    std::uint64_t seed = 1;
    unsigned numFuncs = 3;    //!< leaf functions
    unsigned funcOps = 30;    //!< random ops per function body
    unsigned mainOps = 40;    //!< random ops per main-loop body
    unsigned iters = 50;      //!< main loop trip count

    /**
     * Phase-switching: when > 1, the main loop carries this many
     * distinct random bodies and rotates through them every
     * phasePeriod iterations -- long-periodic program phases with
     * different op mixes, the structure that stresses sampled
     * simulation. 1 (the default) reproduces the classic single-body
     * program byte for byte.
     */
    unsigned phases = 1;
    unsigned phasePeriod = 8;  //!< iterations spent in each phase

    /**
     * Pointer chasing: when > 0, the program builds a 64-node linked
     * ring in the scratch buffer and every loop iteration follows
     * this many serialized pointer hops -- load-latency-bound
     * segments with no ILP. 0 (the default) emits none.
     */
    unsigned chaseSteps = 0;
};

/** Generate the assembly text of a random program. */
std::string generateRandomProgram(const RandProgParams &params);

} // namespace reno
