/**
 * @file
 * MediaBench-like kernels, part 3: MPEG-2 motion estimation and
 * compensation, pegwit-style carry-less (GF(2)) field arithmetic, and
 * ghostscript-style scanline rasterization.
 */
#include "workloads/workload_sources.hpp"

namespace reno::workloads
{

/**
 * mpeg2.enc-like: full-search SAD motion estimation: 16x16 macroblocks
 * against a +-4 pixel reference window (the dominant loop of MPEG-2
 * encoding).
 */
const char *const media_mpeg2_enc = R"(
# MPEG2-flavor SAD motion search kernel
        .data
ref:    .space 6144           # 96x64 reference luma
cur:    .space 6144           # 96x64 current luma
        .text

# sad16(a0 = cur block base, a1 = ref block base) -> v0
# both frames have stride 96; compares a 16x16 block
sad16:
        li   v0, 0
        li   t0, 0            # row
srow:
        li   t1, 0            # col
scol:
        add  t2, a0, t1
        ldbu t3, 0(t2)
        add  t2, a1, t1
        ldbu t4, 0(t2)
        sub  t5, t3, t4
        bge  t5, sabs
        sub  t5, zero, t5
sabs:
        add  v0, v0, t5
        addi t1, t1, 1
        slti t6, t1, 16
        bne  t6, scol
        addi a0, a0, 96       # next row
        addi a1, a1, 96
        addi t0, t0, 1
        slti t6, t0, 16
        bne  t6, srow
        ret

_start:
        # synthesize frames: ref random-smooth, cur = ref shifted by
        # (2, 1) plus noise, so the search has a true optimum
        la   s0, ref
        li   t0, 0
        li   t3, 128
gf:
        li   v0, 5
        syscall
        andi t1, v0, 31
        subi t1, t1, 16
        add  t3, t3, t1
        andi t3, t3, 255
        add  t2, s0, t0
        stb  t3, 0(t2)
        addi t0, t0, 1
        slti t4, t0, 6144
        bne  t4, gf
        la   s1, cur
        li   t0, 0
gc:
        # cur[y][x] = ref[y+1][x+2] for interior, else ref value
        li   t1, 96
        div  t2, t0, t1       # y  (divide keeps the div unit busy)
        rem  t3, t0, t1       # x
        slti t4, t2, 63
        beq  t4, edge
        slti t4, t3, 94
        beq  t4, edge
        addi t5, t2, 1
        muli t5, t5, 96
        addi t6, t3, 2
        add  t5, t5, t6
        add  t5, s0, t5
        ldbu t7, 0(t5)
        j    putc
edge:
        add  t5, s0, t0
        ldbu t7, 0(t5)
putc:
        add  t8, s1, t0
        stb  t7, 0(t8)
        addi t0, t0, 1
        slti t4, t0, 6144
        bne  t4, gc

        # search: 4 macroblocks, window +-2 in x and y
        li   s2, 0            # block index
        li   s3, 0            # checksum (sum of best SADs + MVs)
mb:
        # block top-left: x = 16 + (b & 3) * 16, y = 8 + (b >> 2) * 16
        andi t0, s2, 3
        slli t0, t0, 4
        addi t0, t0, 16
        srli t1, s2, 2
        slli t1, t1, 4
        addi t1, t1, 8
        muli t2, t1, 96
        add  t2, t2, t0
        la   t3, cur
        add  s4, t3, t2       # cur base
        la   t3, ref
        add  s5, t3, t2       # ref base (0,0 candidate)
        li   fp, 99999        # best SAD
        li   t9, 0            # best mv code
        # dy loop
        li   a2, -2
dy:
        # dx loop
        li   a3, -2
dx:
        muli t0, a2, 96
        add  t0, t0, a3
        add  a1, s5, t0
        mov  a0, s4
        subi sp, sp, 48
        stq  ra, 0(sp)
        stq  a2, 8(sp)
        stq  a3, 16(sp)
        stq  t9, 24(sp)
        stq  s4, 32(sp)
        stq  s5, 40(sp)
        call sad16
        ldq  s5, 40(sp)
        ldq  s4, 32(sp)
        ldq  t9, 24(sp)
        ldq  a3, 16(sp)
        ldq  a2, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 48
        slt  t0, v0, fp
        beq  t0, worse
        mov  fp, v0
        addi t1, a2, 2
        slli t1, t1, 4
        addi t2, a3, 2
        add  t9, t1, t2       # mv code
worse:
        addi a3, a3, 1
        slei t0, a3, 2
        bne  t0, dx
        addi a2, a2, 1
        slei t0, a2, 2
        bne  t0, dy
        add  s3, s3, fp
        add  s3, s3, t9
        addi s2, s2, 1
        slti t0, s2, 4
        bne  t0, mb

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * mpeg2.dec-like: motion compensation: copy predicted blocks at a
 * motion vector, add residual, saturate to pixel range (the decoder's
 * hot loop).
 */
const char *const media_mpeg2_dec = R"(
# MPEG2-flavor motion compensation kernel
        .data
ref:    .space 6144           # 96x64 reference
out:    .space 6144
resid:  .space 16384          # residuals, 2 bytes logical -> 8B slots not needed
mvs:    .space 512            # 32 blocks x {dx, dy} 8B each
        .text
_start:
        # reference frame
        la   s0, ref
        li   t0, 0
        li   t3, 90
gr:
        li   v0, 5
        syscall
        andi t1, v0, 15
        add  t3, t3, t1
        subi t3, t3, 7
        andi t3, t3, 255
        add  t2, s0, t0
        stb  t3, 0(t2)
        addi t0, t0, 1
        slti t4, t0, 6144
        bne  t4, gr
        # residuals in [-32, 31]
        la   s1, resid
        li   t0, 0
gres:
        li   v0, 5
        syscall
        andi t1, v0, 63
        add  t2, s1, t0
        stb  t1, 0(t2)
        addi t0, t0, 1
        slti t4, t0, 8192
        bne  t4, gres
        # motion vectors in [-3, 3]
        la   s2, mvs
        li   t0, 0
gmv:
        li   v0, 5
        syscall
        andi t1, v0, 7
        subi t1, t1, 3
        srli t2, v0, 8
        andi t2, t2, 7
        subi t2, t2, 3
        slli t3, t0, 4
        add  t4, s2, t3
        stq  t1, 0(t4)        # dx
        stq  t2, 8(t4)        # dy
        addi t0, t0, 1
        slti t5, t0, 16
        bne  t5, gmv

        # compensate 16 8x8 blocks, 8 repetitions (frames)
        la   s3, out
        li   s5, 0            # checksum
        li   fp, 0            # frame counter
fr:
        li   s4, 0            # block
cb:
        # block origin: x = 8 + (b & 3) * 8, y = 8 + (b >> 2) * 8
        andi t0, s4, 3
        slli t0, t0, 3
        addi t0, t0, 8
        srli t1, s4, 2
        slli t1, t1, 3
        addi t1, t1, 8
        # mv
        slli t2, s4, 4
        add  t3, s2, t2
        ldq  t4, 0(t3)        # dx
        ldq  t5, 8(t3)        # dy
        # predicted source origin
        add  t6, t1, t5
        muli t6, t6, 96
        add  t6, t6, t0
        add  t6, t6, t4       # ref offset
        muli t7, t1, 96
        add  t7, t7, t0       # out offset
        # residual base for this block
        slli t8, s4, 6        # 64 bytes per block
        # 8x8 loop
        li   a0, 0            # row
mrow:
        li   a1, 0            # col
mcol:
        muli t9, a0, 96
        add  t2, t9, a1
        add  t3, t6, t2
        add  t3, s0, t3
        ldbu t2, 0(t3)        # predicted pixel
        slli t3, a0, 3
        add  t3, t3, a1
        add  t3, t3, t8
        add  t3, s1, t3
        ldbu a2, 0(t3)        # residual byte (biased)
        subi a2, a2, 32
        add  t2, t2, a2
        bge  t2, mc0
        li   t2, 0
mc0:
        li   a2, 255
        sle  t3, t2, a2
        bne  t3, mc1
        mov  t2, a2
mc1:
        muli t9, a0, 96
        add  t3, t9, a1
        add  t3, t7, t3
        add  t3, s3, t3
        stb  t2, 0(t3)
        add  s5, s5, t2
        addi a1, a1, 1
        slti t9, a1, 8
        bne  t9, mcol
        addi a0, a0, 1
        slti t9, a0, 8
        bne  t9, mrow
        addi s4, s4, 1
        slti t9, s4, 16
        bne  t9, cb
        addi fp, fp, 1
        slti t9, fp, 8
        bne  t9, fr

        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * pegwit-like: GF(2^16) polynomial arithmetic: carry-less multiply by
 * shift/xor with reduction, and field exponentiation, the flavor of
 * pegwit's elliptic-curve operations over GF(2^255).
 */
const char *const media_pegwit = R"(
# pegwit-flavor GF(2^16) arithmetic kernel
        .text

# gfmul(a0, a1) -> v0 : carry-less multiply mod x^16+x^5+x^3+x+1.
# Branchless (constant-time) inner loop, as crypto code is compiled:
# the conditional xor and the reduction are mask selects.
gfmul:
        li   v0, 0
        mov  t0, a0
        mov  t1, a1
        li   t2, 16           # bits
        li   t6, 65535
gm:
        andi t3, t1, 1
        sub  t3, zero, t3     # all-ones if exponent bit set
        and  t4, t0, t3
        xor  v0, v0, t4
        srli t1, t1, 1
        slli t0, t0, 1
        # reduce if bit 16 set: t0 ^= 43 under mask, then drop bit 16
        srli t4, t0, 16
        andi t4, t4, 1
        sub  t4, zero, t4
        andi t5, t4, 43      # x^5+x^3+x+1
        xor  t0, t0, t5
        and  t0, t0, t6
        subi t2, t2, 1
        bne  t2, gm
        ret

# gfpow(a0 = base, a1 = exponent) -> v0, square-and-multiply
gfpow:
        subi sp, sp, 32
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        stq  s2, 24(sp)
        mov  s0, a0           # base
        mov  s1, a1           # exp
        li   s2, 1            # result
pw:
        beq  s1, pwdone
        # Always multiply; keep the product only when the exponent bit
        # is set (branchless select, constant-time style).
        mov  a0, s2
        mov  a1, s0
        call gfmul
        andi t0, s1, 1
        sub  t0, zero, t0
        and  t1, v0, t0
        bic  t2, s2, t0
        or   s2, t1, t2
        mov  a0, s0
        mov  a1, s0
        call gfmul
        mov  s0, v0
        srli s1, s1, 1
        j    pw
pwdone:
        mov  v0, s2
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        ldq  s1, 16(sp)
        ldq  s2, 24(sp)
        addi sp, sp, 32
        ret

_start:
        # "key agreement": fixed generator raised to random exponents,
        # then pairwise shared values, accumulated as a checksum
        li   s3, 0            # checksum
        li   s4, 70           # rounds
        li   s5, 4919         # generator element
kr:
        li   v0, 5
        syscall
        andi t0, v0, 16383
        addi t0, t0, 3        # private exponent
        mov  a0, s5
        mov  a1, t0
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  t0, 8(sp)
        call gfpow
        ldq  t0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        # fold the "public value" into the checksum, vary generator
        add  s3, s3, v0
        xori t1, v0, 291
        beq  t1, keepg
        mov  s5, t1
keepg:
        subi s4, s4, 1
        bne  s4, kr

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * gs-like: scanline polygon rasterization with fixed-point edge
 * stepping into a byte framebuffer (ghostscript page-rendering
 * flavor).
 */
const char *const media_gs = R"(
# ghostscript-flavor scanline fill kernel
        .data
fb:     .space 16384          # 128x128 framebuffer
        .text

# fill_triangle(a0 = x0, a1 = y0, a2 = x1, a3 = y1, a4 = x2, a5 = y2)
# flat rasterizer: top vertex (x0, y0), bottom edge y1 == y2 assumed,
# fixed-point 8.8 edge stepping, fills with color from fp
fill_triangle:
        # left slope = ((x1 - x0) << 8) / (y1 - y0); same for right
        sub  t0, a3, a1       # dy
        ble  t0, ftout        # degenerate
        sub  t1, a2, a0
        slli t1, t1, 8
        div  t1, t1, t0       # left step
        sub  t2, a4, a0
        slli t2, t2, 8
        div  t2, t2, t0       # right step
        slli t3, a0, 8        # xl 8.8
        mov  t4, t3           # xr 8.8
        mov  t5, a1           # y
frow:
        srai t6, t3, 8        # xl int
        srai t7, t4, 8        # xr int
        # clamp to [0, 127]
        bge  t6, fl0
        li   t6, 0
fl0:
        li   t8, 127
        sle  t9, t7, t8
        bne  t9, fl1
        mov  t7, t8
fl1:
        # fill span
        slli t8, t5, 7        # y * 128
        la   t9, fb
        add  t8, t9, t8
        mov  t9, t6
span:
        sle  a2, t9, t7       # reuse a2 as temp (saved by caller)
        beq  a2, spandone
        add  a2, t8, t9
        stb  fp, 0(a2)
        addi t9, t9, 1
        j    span
spandone:
        add  t3, t3, t1
        add  t4, t4, t2
        addi t5, t5, 1
        sle  a2, t5, a3
        bne  a2, frow
ftout:
        ret

_start:
        li   s0, 40           # triangles
        li   s1, 0            # checksum
tri:
        # random top vertex and base
        li   v0, 5
        syscall
        andi a0, v0, 127      # x0
        srli t0, v0, 8
        andi a1, t0, 63       # y0 in top half
        srli t0, v0, 16
        andi t1, t0, 63
        addi a3, a1, 1
        add  a3, a3, t1       # y1 = y0 + 1 + r, <= 127
        li   t2, 127
        sle  t3, a3, t2
        bne  t3, yok
        mov  a3, t2
yok:
        srli t0, v0, 24
        andi a2, t0, 127      # x1
        srli t0, v0, 32
        andi a4, t0, 127      # x2
        # order x1 <= x2
        sle  t3, a2, a4
        bne  t3, xok
        mov  t4, a2
        mov  a2, a4
        mov  a4, t4
xok:
        mov  a5, a3           # y2 = y1 (flat bottom)
        andi fp, s0, 255      # color
        subi sp, sp, 8
        stq  ra, 0(sp)
        call fill_triangle
        ldq  ra, 0(sp)
        addi sp, sp, 8
        subi s0, s0, 1
        bne  s0, tri

        # checksum framebuffer
        la   t0, fb
        li   t1, 0
        li   s1, 0
fbsum:
        ldbu t2, 0(t0)
        add  s1, s1, t2
        addi t0, t0, 1
        addi t1, t1, 1
        slti t3, t1, 16384
        bne  t3, fbsum

        andi s1, s1, 65535
        li   v0, 1
        mov  a0, s1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace reno::workloads
