/**
 * @file
 * Branch-behavior suite: generated kernels whose performance is
 * dominated by the front end rather than by the RENO-targeted rename
 * idioms or the memory hierarchy. Each kernel isolates one failure
 * mode of the prediction stack, so sweeping the bpred config variants
 * over the suite separates the engines:
 *
 *  - bias:  a heavily biased branch (taken 1 in 16) -- any per-PC
 *           counter captures it; the suite's control;
 *  - alt:   period-2 and period-4 alternation -- a bimodal counter
 *           dithers at 50%, any history predictor is near-perfect;
 *  - loop:  a short-trip-count loop nest (3 x 5) -- exit branches
 *           predictable only from history of the right length
 *           (TAGE's geometric tables);
 *  - corr:  a pseudo-random bit tested by two branches in a row --
 *           the second is 100% correlated with the first, invisible
 *           to per-PC counters, trivial for global history;
 *  - call:  a recursive call tree whose depth cycles 1..24 --
 *           returns resolve through the RAS; a shallow stack
 *           (the "ras16" variant) overflows and mispredicts;
 *  - ind:   megamorphic indirect dispatch rotating over an 8-entry
 *           function table -- a last-target BTB mispredicts every
 *           dispatch; path-history indirect prediction (the "itt"
 *           variant) learns the rotation.
 *
 * Every kernel prints a checksum through the print syscall, so any
 * simulator configuration is checked against the functional
 * emulator.
 */
#include "workloads/workload_sources.hpp"

#include <memory>
#include <vector>

#include "common/log.hpp"

namespace reno::workloads
{

namespace
{

/** The shared checksum-print + exit epilogue (fold s2 to 16 bits). */
constexpr const char *ChecksumEpilogue = R"(
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace

const char *
branchBiasSource(unsigned iters)
{
    return intern(strprintf(R"(# branch.bias: one branch taken 1 in 16 over %u iterations
        .text
_start:
        li   s0, %u           # iterations
        li   s1, 0            # i
        li   s2, 0            # running checksum
loop:
        andi t0, s1, 15
        beq  t0, rare         # taken once per 16 iterations
        addi s2, s2, 1
resume:
        addi s1, s1, 1
        subi s0, s0, 1
        bne  s0, loop
%s)",
                            iters, iters, ChecksumEpilogue) +
                  strprintf(R"(rare:
        add  s2, s2, s1
        br   resume
)"));
}

const char *
branchAltSource(unsigned iters)
{
    return intern(strprintf(R"(# branch.alt: period-2 and period-4 alternating branches, %u iterations
        .text
_start:
        li   s0, %u           # iterations
        li   s1, 0            # i
        li   s2, 0            # running checksum
loop:
        andi t0, s1, 1
        beq  t0, even         # alternates taken/not-taken
        addi s2, s2, 3
even:
        andi t0, s1, 3
        bne  t0, skip         # not-taken once per 4 iterations
        addi s2, s2, 7
skip:
        addi s1, s1, 1
        subi s0, s0, 1
        bne  s0, loop
%s)",
                            iters, iters, ChecksumEpilogue));
}

const char *
branchLoopSource(unsigned outer)
{
    return intern(strprintf(R"(# branch.loop: %u passes over a 5 x 3 short-trip loop nest
        .text
_start:
        li   s0, %u           # outer iterations
        li   s2, 0            # running checksum
outer:
        li   s3, 5
mid:
        li   s4, 3
inner:
        add  s2, s2, s4
        subi s4, s4, 1
        bne  s4, inner        # taken 2 of 3
        add  s2, s2, s3
        subi s3, s3, 1
        bne  s3, mid          # taken 4 of 5
        subi s0, s0, 1
        bne  s0, outer
%s)",
                            outer, outer, ChecksumEpilogue));
}

const char *
branchCorrSource(unsigned iters)
{
    return intern(strprintf(R"(# branch.corr: two branches testing the same pseudo-random bit, %u iterations
        .text
_start:
        li   s0, %u           # iterations
        li   s1, 0            # i
        li   s2, 0            # running checksum
        li   s3, 12345        # LCG state
loop:
        muli s3, s3, 25173
        addi s3, s3, 13849
        srli t0, s3, 9
        andi t0, t0, 1        # pseudo-random bit b (~50/50)
        beq  t0, nota         # branch A on b
        addi s2, s2, 1
nota:
        andi t1, s1, 7
        add  s2, s2, t1       # filler between the pair
        beq  t0, notb         # branch B on the same b: correlated
        addi s2, s2, 2
notb:
        addi s1, s1, 1
        subi s0, s0, 1
        bne  s0, loop
%s)",
                            iters, iters, ChecksumEpilogue));
}

const char *
branchCallSource(unsigned iters, unsigned max_depth)
{
    // Frames are 16 bytes; the stack must hold max_depth + 1 frames.
    const unsigned stack_bytes = (max_depth + 2) * 16;
    return intern(strprintf(R"(# branch.call: recursive call tree, depth cycling 1..%u, %u calls
        .data
stk:    .space %u
        .text
_start:
        la   sp, stk
        addi sp, sp, %u       # stack top
        li   s0, %u           # iterations
        li   s2, 0            # running checksum
        li   s4, 0            # depth, cycling 1..%u
        li   s5, %u           # depth bound
main:
        addi s4, s4, 1
        slt  t0, s4, s5
        bne  t0, depth_ok
        li   s4, 1
depth_ok:
        mov  a0, s4
        bsr  ra, func
        add  s2, s2, v0
        subi s0, s0, 1
        bne  s0, main
%s)",
                            max_depth, iters, stack_bytes,
                            stack_bytes - 8, iters, max_depth,
                            max_depth + 1, ChecksumEpilogue) +
                  R"(func:
        # v0 = a0 + func(a0 - 1); 0 at the base
        beq  a0, base
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        subi a0, a0, 1
        bsr  ra, func
        ldq  t0, 8(sp)
        add  v0, v0, t0
        ldq  ra, 0(sp)
        addi sp, sp, 16
        jmp  (ra)
base:
        li   v0, 0
        jmp  (ra)
)");
}

const char *
branchIndSource(unsigned iters, unsigned targets)
{
    if (targets == 0 || targets > 8 ||
        (targets & (targets - 1)) != 0)
        fatal("branchIndSource: target count must be a power of two "
              "<= 8");
    // Fill the dispatch table with the handler addresses, then drive
    // it with a full rotation (stride 5 is coprime with the table
    // size): the target changes every dispatch, so a last-target BTB
    // never predicts it, while the recent-target path history
    // determines the next target exactly.
    std::string fill;
    std::string handlers;
    for (unsigned h = 0; h < targets; ++h) {
        fill += strprintf(R"(        la   t1, h%u
        stq  t1, %u(t0)
)",
                          h, h * 8);
        handlers += strprintf(R"(h%u:
        li   v0, %u
        jmp  (ra)
)",
                              h, h * 17 + 3);
    }
    return intern(strprintf(R"(# branch.ind: megamorphic dispatch rotating over %u handlers, %u calls
        .data
jtab:   .space %u
stk:    .space 64
        .text
_start:
        la   sp, stk
        addi sp, sp, 56
        la   t0, jtab
%s        li   s0, %u           # iterations
        li   s1, 0            # i
        li   s2, 0            # running checksum
loop:
        muli t0, s1, 5
        addi t0, t0, 3
        andi t0, t0, %u       # handler index: a full rotation
        slli t0, t0, 3
        addi s1, s1, 1
        la   t1, jtab
        add  t1, t1, t0
        ldq  t2, 0(t1)
        jsr  ra, (t2)
        add  s2, s2, v0
        subi s0, s0, 1
        bne  s0, loop
%s)",
                            targets, iters, targets * 8, fill.c_str(),
                            iters, targets - 1, ChecksumEpilogue) +
                  handlers);
}

} // namespace reno::workloads
