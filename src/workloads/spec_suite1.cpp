/**
 * @file
 * SPEC-like integer kernels, part 1: compression and pointer-chasing
 * categories (gzip-, bzip2-, mcf-, gcc-like).
 */
#include "workloads/workload_sources.hpp"

namespace reno::workloads
{

/**
 * gzip-like: LZ77 longest-match search over a sliding window with
 * hash-head chains, the hot loop of deflate.
 */
const char *const spec_gzip = R"(
# gzip-like LZ77 longest-match kernel
        .data
buf:    .space 4096          # input bytes
head:   .space 2048          # 256-entry hash head table (8B each)
prev:   .space 32768         # chain links, one per position
bufp:   .quad 0              # global pointer to buf (reloaded per call)
sum:    .quad 0

        .text
# match_at(a0 = pos, a1 = candidate) -> v0 = match length (max 8)
match_at:
        la   t0, bufp
        ldq  t0, 0(t0)        # buffer base via global (CSE food)
        add  t1, t0, a0
        add  t2, t0, a1
        li   v0, 0
mml:
        ldbu t3, 0(t1)
        ldbu t4, 0(t2)
        sub  t5, t3, t4
        bne  t5, mmd
        addi t1, t1, 1
        addi t2, t2, 1
        addi v0, v0, 1
        slti t3, v0, 8
        bne  t3, mml
mmd:
        ret

_start:
        la   t0, bufp         # publish the buffer pointer
        la   t1, buf
        stq  t1, 0(t0)
        la   s0, buf          # s0 = buf
        li   s1, 2048         # s1 = n
        # fill buffer with pseudo-random but repetitive data
        li   t0, 0            # i
        li   t3, 0            # rolling value
fill:
        li   v0, 5
        syscall               # v0 = rand
        andi t1, v0, 15       # small alphabet -> long repeats
        andi t2, v0, 7
        beq  t2, skiprep      # sometimes repeat previous byte
        mov  t1, t3
skiprep:
        mov  t3, t1
        add  t4, s0, t0
        stb  t1, 0(t4)
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, fill

        # init head table to -1
        la   t0, head
        li   t1, 256
inith:
        li   t2, -1
        stq  t2, 0(t0)
        addi t0, t0, 8
        subi t1, t1, 1
        bne  t1, inith

        li   s2, 0            # pos
        li   s3, 0            # total match length (checksum)
        subi s4, s1, 8        # limit
scan:
        # hash = (buf[pos] ^ (buf[pos+1]<<3) ^ (buf[pos+2]<<6)) & 255
        add  t0, s0, s2
        ldbu t1, 0(t0)
        ldbu t2, 1(t0)
        ldbu t3, 2(t0)
        slli t2, t2, 3
        slli t3, t3, 6
        xor  t1, t1, t2
        xor  t1, t1, t3
        andi t1, t1, 255
        # chain head lookup
        la   t4, head
        slli t5, t1, 3
        add  t4, t4, t5
        ldq  t6, 0(t4)        # candidate position
        stq  s2, 0(t4)        # head[hash] = pos
        # record chain link
        la   t7, prev
        slli t8, s2, 3
        add  t7, t7, t8
        stq  t6, 0(t7)
        # walk the chain (up to 4 candidates)
        li   s5, 4            # tries
        li   fp, 0            # best length
chain:
        blt  t6, endchain     # candidate == -1?
        # match length at candidate (max 8), in a call w/ spills
        mov  a0, s2
        mov  a1, t6
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  t6, 8(sp)
        call match_at
        ldq  t6, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        slt  t3, fp, v0
        beq  t3, nobest
        mov  fp, v0           # new best
nobest:
        # follow chain
        la   t7, prev
        slli t8, t6, 3
        add  t7, t7, t8
        ldq  t6, 0(t7)
        subi s5, s5, 1
        bne  s5, chain
endchain:
        add  s3, s3, fp
        addi s2, s2, 1
        slt  t0, s2, s4
        bne  t0, scan

        li   v0, 1
        mov  a0, s3
        syscall               # print checksum
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * bzip2-like: move-to-front transform plus run-length accumulation,
 * the core of the BWT entropy stage.
 */
const char *const spec_bzip2 = R"(
# bzip2-like move-to-front + RLE kernel
        .data
mtf:    .space 256
input:  .space 8192
mtfp:   .quad 0               # global pointer to the mtf table
        .text
# rank_of(a0 = symbol) -> v0 = rank; moves symbol to front
rank_of:
        la   t2, mtfp
        ldq  t2, 0(t2)        # table base via global (CSE food)
        li   t3, 0            # rank
rfind:
        add  t4, t2, t3
        ldbu t5, 0(t4)
        sub  t6, t5, a0
        beq  t6, rfound
        addi t3, t3, 1
        j    rfind
rfound:
        mov  t6, t3
rshift:
        beq  t6, rdone
        add  t4, t2, t6
        ldbu t5, -1(t4)
        stb  t5, 0(t4)
        subi t6, t6, 1
        j    rshift
rdone:
        stb  a0, 0(t2)
        mov  v0, t3
        ret

_start:
        la   t0, mtfp
        la   t1, mtf
        stq  t1, 0(t0)
        # init mtf table: mtf[i] = i
        la   t0, mtf
        li   t1, 0
initm:
        add  t2, t0, t1
        stb  t1, 0(t2)
        addi t1, t1, 1
        slti t3, t1, 256
        bne  t3, initm

        # synthesize skewed input (small alphabet, runs)
        la   s0, input
        li   s1, 8192
        li   t0, 0
        li   t4, 0
geninp:
        li   v0, 5
        syscall
        andi t1, v0, 15       # 16-symbol alphabet
        andi t2, v0, 3
        bne  t2, keep         # 1/4 chance: new symbol
        mov  t4, t1
keep:
        add  t3, s0, t0
        stb  t4, 0(t3)
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, geninp

        li   s2, 0            # pos
        li   s3, 0            # checksum
        li   s4, 0            # run length of rank-0
mtfloop:
        add  t0, s0, s2
        ldbu a0, 0(t0)        # symbol
        # rank_of inlined (the compiler inlines this tiny hot function)
        la   t2, mtfp
        ldq  t2, 0(t2)        # table base via global (CSE food)
        li   t3, 0            # rank
rfind2:
        add  t4, t2, t3
        ldbu t5, 0(t4)
        sub  t6, t5, a0
        beq  t6, rfound2
        addi t3, t3, 1
        j    rfind2
rfound2:
        mov  t6, t3
rshift2:
        beq  t6, rdone2
        add  t4, t2, t6
        ldbu t5, -1(t4)
        stb  t5, 0(t4)
        subi t6, t6, 1
        j    rshift2
rdone2:
        stb  a0, 0(t2)
        # RLE of rank zero
        bne  t3, nonzero
        addi s4, s4, 1
        j    next
nonzero:
        add  s3, s3, s4       # flush run
        li   s4, 0
        slli t7, t3, 1
        add  s3, s3, t7
next:
        addi s2, s2, 1
        slt  t0, s2, s1
        bne  t0, mtfloop

        add  s3, s3, s4
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * mcf-like: network-simplex flavored pointer chasing. Builds a node
 * array with linked adjacency lists and repeatedly walks them
 * relaxing costs (memory-latency bound).
 */
const char *const spec_mcf = R"(
# mcf-like linked-list cost relaxation kernel
        .data
nodes:  .space 32768          # 1024 nodes x 32B {cost, arc_head, pad, pad}
arcs:   .space 49152          # 2048 arcs  x 24B {to, cost, next}
        .text
_start:
        li   s0, 1024          # num nodes
        li   s1, 2048          # num arcs
        # init node costs to large, arc lists empty
        la   t0, nodes
        li   t1, 0
initn:
        li   t2, 1000000
        stq  t2, 0(t0)        # cost
        li   t2, -1
        stq  t2, 8(t0)        # arc head
        addi t0, t0, 32
        addi t1, t1, 1
        slt  t3, t1, s0
        bne  t3, initn
        # build random arcs: arc i: from=rand%n, to=rand%n, cost=rand%97
        li   t1, 0
inita:
        li   v0, 5
        syscall
        andi t2, v0, 1023     # from node
        srli t3, v0, 10
        andi t3, t3, 1023     # to node
        srli t4, v0, 20
        andi t4, t4, 127      # cost
        # arc record
        la   t5, arcs
        muli t6, t1, 24
        add  t5, t5, t6
        stq  t3, 0(t5)        # to
        stq  t4, 8(t5)        # cost
        # push onto from's list
        la   t7, nodes
        slli t8, t2, 5
        add  t7, t7, t8
        ldq  t9, 8(t7)        # old head
        stq  t9, 16(t5)       # arc->next = old head
        stq  t1, 8(t7)        # node->head = arc index
        addi t1, t1, 1
        slt  t3, t1, s1
        bne  t3, inita

        # source node 0 cost = 0
        la   t0, nodes
        li   t1, 0
        stq  t1, 0(t0)

        # relaxation passes
        li   s2, 12           # passes
pass:
        li   s3, 0            # node index
        li   s4, 0            # improvements
node:
        mov  a0, s3
        subi sp, sp, 8
        stq  ra, 0(sp)
        call relax_node
        ldq  ra, 0(sp)
        addi sp, sp, 8
        add  s4, s4, v0
        addi s3, s3, 1
        slt  t0, s3, s0
        bne  t0, node
        subi s2, s2, 1
        bne  s2, pass
        j    after_pass

# relax_node(a0 = node index) -> v0 = improvements made
relax_node:
        li   v0, 0
        la   t0, nodes
        slli t1, a0, 5
        add  t0, t0, t1
        ldq  t2, 0(t0)        # my cost
        ldq  t3, 8(t0)        # arc head
walk:
        blt  t3, endwalk
        la   t4, arcs
        muli t5, t3, 24
        add  t4, t4, t5
        ldq  t6, 0(t4)        # to
        ldq  t7, 8(t4)        # cost
        add  t8, t2, t7       # new cost
        la   t9, nodes
        slli t5, t6, 5
        add  t9, t9, t5
        ldq  t5, 0(t9)        # to's cost
        sle  t6, t5, t8
        bne  t6, norelax
        stq  t8, 0(t9)
        addi v0, v0, 1
norelax:
        ldq  t3, 16(t4)       # next arc
        j    walk
endwalk:
        ret
after_pass:

        # checksum: sum of node costs mod 2^16
        li   s3, 0
        li   s5, 0
        la   t0, nodes
cksum:
        ldq  t1, 0(t0)
        add  s5, s5, t1
        addi t0, t0, 32
        addi s3, s3, 1
        slt  t2, s3, s0
        bne  t2, cksum
        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * gcc-like: string hashing into a chained symbol table with lookup /
 * insert, exercising calls, spills and reloads around the hash helper.
 */
const char *const spec_gcc = R"(
# gcc-like symbol table kernel
        .data
table:  .space 2048           # 256 buckets x 8B
syms:   .space 65536          # symbol records: {name8B, count, next} x 24B
names:  .space 8192           # 1024 names x 8B packed
nsyms:  .quad 0
        .text

# t-hash(a0 = packed 8-byte name) -> v0 = bucket index
hashname:
        mov  t0, a0
        li   t1, 0
        li   t2, 8
hloop:
        andi t3, t0, 255
        slli t4, t1, 2
        add  t1, t1, t4       # h = h*5
        add  t1, t1, t3       # + byte
        srli t0, t0, 8
        subi t2, t2, 1
        bne  t2, hloop
        andi v0, t1, 255
        ret

# lookup_insert(a0 = name) -> v0 = count after increment
lookup_insert:
        subi sp, sp, 32
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        mov  s0, a0           # save name
        call hashname
        mov  s1, v0           # bucket
        la   t0, table
        slli t1, s1, 3
        add  t0, t0, t1       # &table[bucket]
        ldq  t2, 0(t0)        # sym index (0 = empty, 1-based)
search:
        beq  t2, notfound
        la   t3, syms
        muli t4, t2, 24
        add  t3, t3, t4
        ldq  t5, 0(t3)        # name
        sub  t6, t5, s0
        beq  t6, hit
        ldq  t2, 16(t3)       # next
        j    search
hit:
        ldq  t7, 8(t3)
        addi t7, t7, 1
        stq  t7, 8(t3)
        mov  v0, t7
        j    liret
notfound:
        # allocate new symbol
        la   t3, nsyms
        ldq  t4, 0(t3)
        addi t4, t4, 1
        stq  t4, 0(t3)
        la   t5, syms
        muli t6, t4, 24
        add  t5, t5, t6
        stq  s0, 0(t5)        # name
        li   t7, 1
        stq  t7, 8(t5)        # count = 1
        ldq  t8, 0(t0)
        stq  t8, 16(t5)       # next = old head
        stq  t4, 0(t0)        # head = new
        li   v0, 1
liret:
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        ldq  s1, 16(sp)
        addi sp, sp, 32
        ret

_start:
        # generate 1024 names from a pool of ~128 distinct values
        la   s0, names
        li   s1, 1024
        li   t0, 0
genn:
        li   v0, 5
        syscall
        andi t1, v0, 127
        muli t2, t1, 31337
        slli t4, t1, 7
        xor  t2, t2, t4
        addi t2, t2, 12345
        mov  t3, s0
        slli t4, t0, 3
        add  t3, t3, t4
        stq  t2, 0(t3)
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, genn

        # 4 passes of lookup/insert over all names
        li   s2, 4
        li   s4, 0            # checksum
passes:
        li   s3, 0
lkloop:
        la   t0, names
        slli t1, s3, 3
        add  t0, t0, t1
        ldq  a0, 0(t0)
        call lookup_insert
        add  s4, s4, v0
        addi s3, s3, 1
        slt  t2, s3, s1
        bne  t2, lkloop
        subi s2, s2, 1
        bne  s2, passes

        andi s4, s4, 65535
        li   v0, 1
        mov  a0, s4
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace reno::workloads
