/**
 * @file
 * Workload registry.
 *
 * The paper evaluates SPECint2000 and MediaBench compiled for Alpha
 * with -O3. Neither suite is redistributable here, so the repository
 * carries two suites of hand-written assembly kernels implementing the
 * same categories of computation (see DESIGN.md for the mapping).
 * The kernels are written the way optimized compiler output looks:
 * stack frames with callee-save spills, argument moves, register-
 * immediate address arithmetic and loop control - the idioms whose
 * frequency determines what RENO can collapse.
 *
 * Every kernel prints a checksum through the print syscalls, so
 * functional correctness of any simulator configuration is checked by
 * comparing its output and final architectural state against the
 * functional emulator's.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reno
{

/**
 * One benchmark program. Programs draw their data from the rand
 * syscall, so a workload is a (kernel, seed) pair: the paper's
 * per-input bars (eon.c / eon.k / eon.r, perl.d / perl.s, vpr.p /
 * vpr.r, mesa.m / mesa.o / mesa.t) are represented as the same kernel
 * run on a different input stream.
 */
struct Workload {
    std::string name;    //!< e.g. "gzip", "eon.k"
    std::string suite;   //!< "spec" or "media"
    const char *source;  //!< assembly text
    std::uint64_t seed = 1;  //!< input-set selector (rand syscall seed)
};

/** All registered paper workloads, SPEC suite first. */
const std::vector<Workload> &allWorkloads();

/**
 * The "synth" suite: long (millions of dynamic instructions)
 * generated programs with explicit phase structure and
 * pointer-chasing segments (src/workloads/randprog.hpp), the
 * proving ground of the sampled-simulation subsystem. Generated
 * deterministically on first use; not part of allWorkloads() (the
 * paper registry the figure campaigns sweep).
 */
const std::vector<Workload> &synthWorkloads();

/**
 * The "mem" suite: generated memory-bound kernels (streaming,
 * strided, pointer-chasing and blocked-tiling, at footprints sized
 * to each hierarchy level) exercising the composable memory
 * hierarchy -- prefetchers, deep stacks, write-back traffic. Like
 * "synth", generated deterministically and not part of
 * allWorkloads().
 */
const std::vector<Workload> &memWorkloads();

/**
 * The "branch" suite: generated front-end-bound kernels (biased,
 * alternating, loop-nest and correlated branch patterns, deep call
 * trees, megamorphic indirect dispatch), each isolating one failure
 * mode of the composable prediction stack. Like "synth" and "mem",
 * generated deterministically and not part of allWorkloads().
 */
const std::vector<Workload> &branchWorkloads();

/**
 * The "multi" suite: generated SPMD coherence kernels (shared-ring
 * hand-off, lock contention, false sharing with and without padding,
 * disjoint parallel streaming) exercising the multi-core System and
 * its snooping MESI bus. Each kernel reads its core index from the
 * core_id syscall, so the suite also runs -- coherence-silently -- on
 * a single core. Like the other generated suites, not part of
 * allWorkloads().
 */
const std::vector<Workload> &multiWorkloads();

/** Workloads of one suite ("spec", "media", "synth", "mem", "branch"
 *  or "multi"); fatal() for an unknown suite, listing the known
 *  ones. */
std::vector<const Workload *> suiteWorkloads(const std::string &suite);

/**
 * Every registered workload (paper registry + generated suites)
 * whose name matches @p glob (`*` and `?` wildcards, e.g. "mem.*"
 * or "gzip"); fatal() when nothing matches. A non-empty @p suite
 * other than "all" further restricts the matches to that suite.
 * Backs the drivers' --workloads filter.
 */
std::vector<const Workload *>
workloadsMatching(const std::string &glob,
                  const std::string &suite = "");

/**
 * Every suite token suiteWorkloads() accepts, in registration order,
 * with whether it belongs to the paper registry (allWorkloads(), the
 * default sweep set) or is generated (synth). Derived from the
 * workload registries, so a new suite is discoverable the moment its
 * workloads register.
 */
struct SuiteInfo {
    std::string name;
    std::size_t workloads = 0;
    bool paper = false;  //!< in allWorkloads() (the "all" sweep set)
};
std::vector<SuiteInfo> knownSuites();

/** Lookup by name; fatal() if unknown. */
const Workload &workloadByName(const std::string &name);

} // namespace reno
