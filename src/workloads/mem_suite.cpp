/**
 * @file
 * Memory-bound suite: generated kernels whose behavior is dominated
 * by the memory hierarchy rather than by the RENO-targeted rename
 * idioms the paper suites stress. Each generator bakes its footprint
 * and trip counts into the assembly text, so a workload's behavior is
 * a pure function of its registered parameters:
 *
 *  - stream:  sequential read-modify-write passes over a buffer
 *             (footprints sized to the D$, the L2, and beyond);
 *  - stride:  constant-stride read-modify-write, stride larger than
 *             an L1 block (spatial locality defeated; the pattern a
 *             stride prefetcher recovers and a next-line one cannot);
 *  - chase:   serialized pointer chasing around an LCG-permutation
 *             ring with one node per 64B block (no ILP, no spatial
 *             locality, latency-bound);
 *  - tile:    a blocked (tiled) matrix multiply whose tile working
 *             set fits the D$ while the full matrices do not.
 *
 * Every kernel prints a checksum through the print syscall, so any
 * simulator configuration is checked against the functional emulator.
 */
#include "workloads/workload_sources.hpp"

#include <memory>
#include <vector>

#include "common/log.hpp"

namespace reno::workloads
{

/** Park generated text in static storage (Workload borrows it);
 *  shared by every generated suite. */
const char *
intern(std::string text)
{
    static std::vector<std::unique_ptr<const std::string>> storage;
    storage.push_back(
        std::make_unique<const std::string>(std::move(text)));
    return storage.back()->c_str();
}

const char *
memStreamSource(unsigned kb, unsigned passes)
{
    const unsigned bytes = kb * 1024;
    const unsigned elems = bytes / 8;
    return intern(strprintf(R"(# mem.stream: %u read-modify-write passes over a %u KB buffer
        .data
buf:    .space %u
        .text
_start:
        # init pass: a[i] = i. Read-modify-write (the buffer starts
        # zeroed) so loads pace the core against the store traffic --
        # a store-only burst would run arbitrarily far ahead of the
        # contended bus.
        la   t0, buf
        li   t1, %u
        li   t2, 0
init:
        ldq  t3, 0(t0)
        add  t3, t3, t2
        stq  t3, 0(t0)
        addi t0, t0, 8
        addi t2, t2, 1
        subi t1, t1, 1
        bne  t1, init

        li   s0, %u           # passes
        li   s2, 0            # running checksum
pass:
        la   t0, buf
        li   t1, %u
loop:
        ldq  t3, 0(t0)
        add  s2, s2, t3
        stq  s2, 0(t0)
        addi t0, t0, 8
        subi t1, t1, 1
        bne  t1, loop
        subi s0, s0, 1
        bne  s0, pass

        # fold the 64-bit sum so the printed checksum sees every bit
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            passes, kb, bytes, elems, passes, elems));
}

const char *
memStrideSource(unsigned kb, unsigned stride_bytes, unsigned iters)
{
    const unsigned bytes = kb * 1024;
    if (bytes & (bytes - 1))
        fatal("memStrideSource: footprint must be a power of two");
    return intern(strprintf(R"(# mem.stride: %u B-stride read-modify-write over a %u KB buffer
        .data
buf:    .space %u
        .text
_start:
        la   s1, buf
        li   s2, 0            # running checksum
        li   s3, %u           # footprint mask (bytes - 1)
        li   t0, 0            # byte cursor
        li   t1, %u           # iterations
loop:
        and  t3, t0, s3
        add  t4, s1, t3
        ldq  t5, 0(t4)
        add  s2, s2, t5
        stq  s2, 0(t4)
        addi t0, t0, %u
        subi t1, t1, 1
        bne  t1, loop

        # fold the 64-bit sum so the printed checksum sees every bit
        srli t0, s2, 32
        xor  a0, s2, t0
        srli t0, a0, 16
        xor  a0, a0, t0
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            stride_bytes, kb, bytes, bytes - 1, iters,
                            stride_bytes));
}

const char *
memChaseSource(unsigned kb, unsigned hops)
{
    const unsigned bytes = kb * 1024;
    const unsigned nodes = bytes / 64;  // one node per 64B block
    if (nodes == 0 || (nodes & (nodes - 1)))
        fatal("memChaseSource: node count must be a power of two");
    return intern(strprintf(R"(# mem.chase: %u serialized hops around a %u-node pointer ring
        .data
ring:   .space %u
        .text
_start:
        # Build the ring: node[i] -> node[(5*i + 12345) & (N-1)], a
        # full-period LCG permutation (a = 1 mod 4, c odd), so the
        # chase visits every node with no spatial pattern.
        la   s1, ring
        li   s3, %u           # N - 1
        li   s4, %u           # N
        li   t0, 0
build:
        muli t1, t0, 5
        addi t1, t1, 12345
        and  t1, t1, s3
        slli t2, t1, 6
        add  t2, t2, s1
        slli t3, t0, 6
        add  t3, t3, s1
        ldq  t4, 0(t3)        # pacing load (see the stream kernel)
        add  t2, t2, t4
        stq  t2, 0(t3)
        addi t0, t0, 1
        slt  t5, t0, s4
        bne  t5, build

        li   t1, %u           # hops
        mov  t0, s1
chase:
        ldq  t0, 0(t0)
        subi t1, t1, 1
        bne  t1, chase

        sub  a0, t0, s1       # final node index as the checksum
        srli a0, a0, 6
        andi a0, a0, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            hops, nodes, bytes, nodes - 1, nodes,
                            hops));
}

const char *
memTileSource()
{
    // 48x48 8-byte matrices (18 KB each, 54 KB total: larger than the
    // 32 KB D$) multiplied in 16x16 tiles (a tile's row stripes are a
    // few KB: D$-resident).
    constexpr unsigned N = 48;
    constexpr unsigned T = 16;
    constexpr unsigned MatBytes = N * N * 8;
    return intern(strprintf(R"(# mem.tile: blocked %ux%u matrix multiply, %ux%u tiles
        .data
mata:   .space %u
matb:   .space %u
matc:   .space %u
        .text
_start:
        la   a1, mata
        la   a2, matb
        la   a3, matc
        li   s5, %u           # N

        # init: A[i] = (i & 7) + 1, B[i] = (i >> 3) & 7 (C starts zero)
        li   t0, 0
        li   t1, %u           # N*N
        mov  t2, a1
        mov  t3, a2
initm:
        ldq  t5, 0(t2)        # pacing load (see the stream kernel)
        andi t4, t0, 7
        addi t4, t4, 1
        add  t4, t4, t5
        stq  t4, 0(t2)
        ldq  t5, 0(t3)
        srli t4, t0, 3
        andi t4, t4, 7
        add  t4, t4, t5
        stq  t4, 0(t3)
        addi t2, t2, 8
        addi t3, t3, 8
        addi t0, t0, 1
        slt  t5, t0, t1
        bne  t5, initm

        li   s0, 0            # ii
iiloop:
        li   s1, 0            # jj
jjloop:
        li   s2, 0            # kk
kkloop:
        mov  s3, s0           # i = ii
iloop:
        mov  s4, s2           # k = kk
kloop:
        # t2 = A[i][k]
        mul  t1, s3, s5
        add  t1, t1, s4
        slli t1, t1, 3
        add  t1, t1, a1
        ldq  t2, 0(t1)
        # t3 = &B[k][jj], t4 = &C[i][jj]
        mul  t5, s4, s5
        add  t5, t5, s1
        slli t5, t5, 3
        add  t3, t5, a2
        mul  t5, s3, s5
        add  t5, t5, s1
        slli t5, t5, 3
        add  t4, t5, a3
        li   t6, %u           # tile width
jloop:
        ldq  t7, 0(t3)
        mul  t7, t7, t2
        ldq  t8, 0(t4)
        add  t8, t8, t7
        stq  t8, 0(t4)
        addi t3, t3, 8
        addi t4, t4, 8
        subi t6, t6, 1
        bne  t6, jloop

        addi s4, s4, 1
        addi t0, s2, %u
        slt  t5, s4, t0
        bne  t5, kloop

        addi s3, s3, 1
        addi t0, s0, %u
        slt  t5, s3, t0
        bne  t5, iloop

        addi s2, s2, %u
        slt  t5, s2, s5
        bne  t5, kkloop

        addi s1, s1, %u
        slt  t5, s1, s5
        bne  t5, jjloop

        addi s0, s0, %u
        slt  t5, s0, s5
        bne  t5, iiloop

        # checksum: sum of C
        li   t0, %u           # N*N
        mov  t1, a3
        li   t2, 0
cksum:
        ldq  t3, 0(t1)
        add  t2, t2, t3
        addi t1, t1, 8
        subi t0, t0, 1
        bne  t0, cksum

        andi a0, t2, 65535
        li   v0, 1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)",
                            N, N, T, T, MatBytes, MatBytes, MatBytes,
                            N, N * N, T, T, T, T, T, T, N * N));
}

} // namespace reno::workloads
