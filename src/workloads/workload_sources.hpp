/**
 * @file
 * Declarations of the assembly sources of every workload kernel.
 * Definitions live in the per-suite .cpp files; the registry in
 * workloads.cpp assembles them into the public list.
 */
#pragma once

#include <string>

namespace reno::workloads
{

// SPEC-like integer suite.
extern const char *const spec_gzip;
extern const char *const spec_bzip2;
extern const char *const spec_mcf;
extern const char *const spec_gcc;
extern const char *const spec_crafty;
extern const char *const spec_eon;
extern const char *const spec_gap;
extern const char *const spec_parser;
extern const char *const spec_perlbmk;
extern const char *const spec_twolf;
extern const char *const spec_vortex;
extern const char *const spec_vpr;

// MediaBench-like suite.
extern const char *const media_adpcm_enc;
extern const char *const media_adpcm_dec;
extern const char *const media_epic;
extern const char *const media_unepic;
extern const char *const media_g721_enc;
extern const char *const media_g721_dec;
extern const char *const media_gsm_enc;
extern const char *const media_gsm_dec;
extern const char *const media_jpeg_enc;
extern const char *const media_jpeg_dec;
extern const char *const media_mesa;
extern const char *const media_mpeg2_enc;
extern const char *const media_mpeg2_dec;
extern const char *const media_pegwit;
extern const char *const media_gs;

// Shared by the generated suites: park generated kernel text in
// static storage (Workload borrows the pointer for the process
// lifetime). Defined in mem_suite.cpp.
const char *intern(std::string text);

// Memory-bound suite (mem_suite.cpp): parameterized generators; the
// returned pointers have static storage duration (Workload borrows
// them for the process lifetime).
const char *memStreamSource(unsigned kb, unsigned passes);
const char *memStrideSource(unsigned kb, unsigned stride_bytes,
                            unsigned iters);
const char *memChaseSource(unsigned kb, unsigned hops);
const char *memTileSource();

// Branch-behavior suite (branch_suite.cpp): parameterized generators
// isolating one prediction-stack failure mode each; static storage
// duration like the mem generators.
const char *branchBiasSource(unsigned iters);
const char *branchAltSource(unsigned iters);
const char *branchLoopSource(unsigned outer);
const char *branchCorrSource(unsigned iters);
const char *branchCallSource(unsigned iters, unsigned max_depth);
const char *branchIndSource(unsigned iters, unsigned targets);

// Multi-core suite (multi_suite.cpp): SPMD kernels differentiated by
// the core_id syscall, each targeting one coherence behavior; static
// storage duration like the other generated suites.
const char *multiProdconsSource(unsigned slots, unsigned iters);
const char *multiLockSource(unsigned iters);
const char *multiFalseSource(unsigned iters, unsigned pad_bytes);
const char *multiStreamSource(unsigned kb_per_core, unsigned passes);

} // namespace reno::workloads
