/**
 * @file
 * SPEC-like integer kernels, part 2: chess bitboards, fixed-point ray
 * math, bignum arithmetic, parsing, interpreters, placement and
 * routing (crafty-, eon-, gap-, parser-, perlbmk-, twolf-, vortex-,
 * vpr-like).
 */
#include "workloads/workload_sources.hpp"

namespace reno::workloads
{

/**
 * crafty-like: bitboard manipulation. Generates pseudo-random 64-bit
 * boards and computes population counts, LSB scans and shifted attack
 * masks, the staple operations of bitboard chess engines.
 */
const char *const spec_crafty = R"(
# crafty-like bitboard kernel. Like the real program, popcount and
# first-one are table driven (256-entry byte tables), not bit-serial.
        .data
boards: .space 8192           # 1024 boards
pctab:  .space 256            # popcount of each byte value
fstab:  .space 256            # lowest-set-bit index of each byte value
        .text

# popcount(a0) -> v0: eight independent byte-table lookups
popcount:
        la   t7, pctab
        andi t0, a0, 255
        add  t0, t7, t0
        ldbu v0, 0(t0)
        srli t1, a0, 8
        andi t1, t1, 255
        add  t1, t7, t1
        ldbu t1, 0(t1)
        srli t2, a0, 16
        andi t2, t2, 255
        add  t2, t7, t2
        ldbu t2, 0(t2)
        srli t3, a0, 24
        andi t3, t3, 255
        add  t3, t7, t3
        ldbu t3, 0(t3)
        add  v0, v0, t1
        add  t2, t2, t3
        srli t4, a0, 32
        andi t4, t4, 255
        add  t4, t7, t4
        ldbu t4, 0(t4)
        srli t5, a0, 40
        andi t5, t5, 255
        add  t5, t7, t5
        ldbu t5, 0(t5)
        add  v0, v0, t2
        add  t4, t4, t5
        srli t6, a0, 48
        andi t6, t6, 255
        add  t6, t7, t6
        ldbu t6, 0(t6)
        srli t0, a0, 56
        add  t0, t7, t0
        ldbu t0, 0(t0)
        add  v0, v0, t4
        add  t6, t6, t0
        add  v0, v0, t6
        ret

# lsb_index(a0) -> v0 (64 if empty): byte scan plus one table lookup
lsb:
        beq  a0, lsbempty
        la   t2, fstab
        li   v0, 0
        mov  t0, a0
lsbl:
        andi t1, t0, 255
        bne  t1, lsbfound
        srli t0, t0, 8
        addi v0, v0, 8
        j    lsbl
lsbfound:
        add  t1, t2, t1
        ldbu t1, 0(t1)
        add  v0, v0, t1
        ret
lsbempty:
        li   v0, 64
        ret

# process(a0 = board) -> v0 = contribution of this board
process:
        subi sp, sp, 32
        stq  ra, 0(sp)
        stq  s4, 8(sp)
        stq  s5, 16(sp)
        mov  s4, a0
        li   s5, 0
        mov  a0, s4
        call popcount
        add  s5, s5, v0
        mov  a0, s4
        call lsb
        add  s5, s5, v0
        # knight-ish attack spread: fold shifted copies
        slli t1, s4, 17
        srli t2, s4, 17
        or   t1, t1, t2
        slli t2, s4, 15
        srli t3, s4, 15
        or   t2, t2, t3
        xor  t1, t1, t2
        mov  a0, t1
        call popcount
        add  s5, s5, v0
        mov  v0, s5
        ldq  ra, 0(sp)
        ldq  s4, 8(sp)
        ldq  s5, 16(sp)
        addi sp, sp, 32
        ret

_start:
        # Build the byte tables: pctab[i] = pctab[i>>1] + (i&1),
        # fstab[i] = (i&1) ? 0 : fstab[i>>1] + 1.
        la   t0, pctab
        stb  zero, 0(t0)
        la   t7, fstab
        stb  zero, 0(t7)
        li   t1, 1
tbl:
        srli t2, t1, 1
        add  t3, t0, t2
        ldbu t3, 0(t3)
        andi t4, t1, 1
        add  t3, t3, t4
        add  t5, t0, t1
        stb  t3, 0(t5)
        bne  t4, todd
        add  t3, t7, t2
        ldbu t3, 0(t3)
        addi t3, t3, 1
        j    tfs
todd:
        li   t3, 0
tfs:
        add  t5, t7, t1
        stb  t3, 0(t5)
        addi t1, t1, 1
        slti t6, t1, 256
        bne  t6, tbl

        la   s0, boards
        li   s1, 1024
        li   t0, 0
genb:
        li   v0, 5
        syscall
        mov  t1, v0
        li   v0, 5
        syscall
        slli t2, v0, 32
        or   t1, t1, t2
        slli t3, t0, 3
        add  t4, s0, t3
        stq  t1, 0(t4)
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, genb

        li   s2, 0            # board index
        li   s3, 0            # checksum
bloop:
        slli t0, s2, 3
        add  t0, s0, t0
        ldq  a0, 0(t0)        # board
        call process
        add  s3, s3, v0
        addi s2, s2, 1
        slt  t0, s2, s1
        bne  t0, bloop

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * eon-like: fixed-point (16.16) ray/sphere intersection tests with an
 * integer Newton square root, the flavor of eon's probabilistic ray
 * tracing inner loops.
 */
const char *const spec_eon = R"(
# eon-like fixed-point ray math kernel
        .text

# isqrt(a0) -> v0: restoring shift-subtract square root (no divider),
# fixed 32 branchless iterations as a compiler emits for uint64
isqrt:
        mov  t0, a0           # x
        li   t1, 0            # c
        li   t2, 1
        slli t2, t2, 62       # d
        li   t3, 32           # iterations
sqloop:
        add  t4, t1, t2       # t = c + d
        sle  t5, t4, t0       # x >= t ?
        sub  t5, zero, t5     # select mask
        and  t6, t4, t5
        sub  t0, t0, t6       # x -= t (masked)
        srli t1, t1, 1
        and  t6, t2, t5
        add  t1, t1, t6       # c = (c >> 1) + (d masked)
        srli t2, t2, 2
        subi t3, t3, 1
        bne  t3, sqloop
        mov  v0, t1
        ret

_start:
        li   s0, 0            # ray index
        li   s1, 1500         # rays
        li   s2, 0            # hit count
        li   s3, 0            # checksum
ray:
        # random direction components in [0, 1023]
        li   v0, 5
        syscall
        andi s4, v0, 1023     # dx
        srli t0, v0, 10
        andi s5, t0, 1023     # dy
        srli t0, v0, 20
        andi fp, t0, 1023     # dz
        # b = dx*ox + dy*oy + dz*oz with fixed origin (300, 200, 100)
        muli t0, s4, 300
        muli t1, s5, 200
        add  t0, t0, t1
        muli t1, fp, 100
        add  t0, t0, t1       # b
        # a = dx^2+dy^2+dz^2
        mul  t1, s4, s4
        mul  t2, s5, s5
        add  t1, t1, t2
        mul  t2, fp, fp
        add  t1, t1, t2       # a
        # c = |o|^2 - r^2, r = 400
        li   t2, 140000       # 300^2+200^2+100^2
        li   t3, 160000       # r^2
        sub  t2, t2, t3       # c (negative: origin inside)
        # disc = b^2 - a*c
        mul  t4, t0, t0
        mul  t5, t1, t2
        sub  t4, t4, t5
        blt  t4, miss
        srli a0, t4, 16       # scale into sqrt range
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  t0, 8(sp)
        call isqrt
        ldq  t0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        add  t6, t0, v0
        add  s3, s3, t6
        addi s2, s2, 1
miss:
        addi s0, s0, 1
        slt  t7, s0, s1
        bne  t7, ray

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 3
        li   a0, 32
        syscall
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * gap-like: multi-precision (bignum) arithmetic on 64-limb numbers:
 * schoolbook addition, doubling and multiply-by-small, as in GAP's
 * group-order computations.
 */
const char *const spec_gap = R"(
# gap-like bignum kernel (32-bit limbs in 64-bit slots)
        .data
numa:   .space 512            # 64 limbs
numb:   .space 512
numc:   .space 512
        .text

# bignum_add(a0=dst, a1=x, a2=y) : dst = x + y, 32-bit limbs w/ carry
bignum_add:
        li   t0, 0            # limb index
        li   t1, 0            # carry
addl:
        slli t2, t0, 3
        add  t3, a1, t2
        ldq  t4, 0(t3)
        add  t3, a2, t2
        ldq  t5, 0(t3)
        add  t4, t4, t5
        add  t4, t4, t1
        srli t1, t4, 32       # carry out
        li   t6, -1
        srli t6, t6, 32       # 0xffffffff
        and  t4, t4, t6
        add  t3, a0, t2
        stq  t4, 0(t3)
        addi t0, t0, 1
        slti t7, t0, 64
        bne  t7, addl
        ret

# bignum_mulsmall(a0=dst, a1=x, a2=k) : dst = x * k
bignum_mulsmall:
        li   t0, 0
        li   t1, 0            # carry
mull:
        slli t2, t0, 3
        add  t3, a1, t2
        ldq  t4, 0(t3)
        mul  t4, t4, a2
        add  t4, t4, t1
        srli t1, t4, 32
        li   t6, -1
        srli t6, t6, 32
        and  t4, t4, t6
        add  t3, a0, t2
        stq  t4, 0(t3)
        addi t0, t0, 1
        slti t7, t0, 64
        bne  t7, mull
        ret

_start:
        # numa = 1, numb = 1 (fibonacci-style growth, mod 2^2048)
        la   s0, numa
        la   s1, numb
        la   s2, numc
        li   t0, 1
        stq  t0, 0(s0)
        stq  t0, 0(s1)

        li   s3, 260          # iterations
fib:
        mov  a0, s2
        mov  a1, s0
        mov  a2, s1
        subi sp, sp, 8
        stq  ra, 0(sp)
        call bignum_add       # c = a + b
        # scale c by small factor now and then
        andi t0, s3, 7
        bne  t0, noscale
        mov  a0, s2
        mov  a1, s2
        li   a2, 3
        call bignum_mulsmall
noscale:
        ldq  ra, 0(sp)
        addi sp, sp, 8
        # rotate: a <- b, b <- c  (swap pointers)
        mov  t1, s0
        mov  s0, s1
        mov  s1, s2
        mov  s2, t1
        subi s3, s3, 1
        bne  s3, fib

        # checksum: xor of limbs of b
        li   t0, 0
        li   t1, 0
ck:
        slli t2, t0, 3
        add  t3, s1, t2
        ldq  t4, 0(t3)
        xor  t1, t1, t4
        addi t0, t0, 1
        slti t5, t0, 64
        bne  t5, ck
        andi t1, t1, 65535
        li   v0, 1
        mov  a0, t1
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * parser-like: recursive-descent evaluation of arithmetic expressions
 * over a token buffer (heavy call/return and stack traffic, like the
 * link-grammar parser's recursive search).
 */
const char *const spec_parser = R"(
# parser-like recursive descent kernel
# token encoding: 0-9 literal digit, 10 '+', 11 '*', 12 '(', 13 ')', 14 end
        .data
toks:   .space 8192
pos:    .quad 0
        .text

# peek() -> v0
peek:
        la   t0, pos
        ldq  t1, 0(t0)
        la   t2, toks
        add  t2, t2, t1
        ldbu v0, 0(t2)
        ret

# advance()
advance:
        la   t0, pos
        ldq  t1, 0(t0)
        addi t1, t1, 1
        stq  t1, 0(t0)
        ret

# factor() -> v0 : digit | '(' expr ')'
factor:
        subi sp, sp, 16
        stq  ra, 0(sp)
        call peek
        slti t0, v0, 10
        beq  t0, fparen
        stq  v0, 8(sp)        # save digit
        call advance
        ldq  v0, 8(sp)
        j    fret
fparen:
        call advance          # consume '('
        call expr
        stq  v0, 8(sp)
        call advance          # consume ')'
        ldq  v0, 8(sp)
fret:
        ldq  ra, 0(sp)
        addi sp, sp, 16
        ret

# term() -> v0 : factor ('*' factor)*
term:
        subi sp, sp, 24
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        call factor
        mov  s0, v0
tloop:
        call peek
        subi t0, v0, 11
        bne  t0, tdone
        call advance
        call factor
        mul  s0, s0, v0
        li   t1, 255
        and  s0, s0, t1       # keep small
        j    tloop
tdone:
        mov  v0, s0
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        addi sp, sp, 24
        ret

# expr() -> v0 : term ('+' term)*
expr:
        subi sp, sp, 24
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        call term
        mov  s0, v0
eloop:
        call peek
        subi t0, v0, 10
        bne  t0, edone
        call advance
        call term
        add  s0, s0, v0
eloop2:
        j    eloop
edone:
        mov  v0, s0
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        addi sp, sp, 24
        ret

_start:
        # build a long token stream of randomly structured
        # expressions: "d op" units with occasional parenthesized
        # "( d op d ) op" subexpressions, so the parser's token-type
        # branches are input dependent (as with real text)
        la   s0, toks
        li   s1, 0            # write index
        li   s2, 300          # units
build:
        li   v0, 5
        syscall
        mov  t5, v0           # randomness for this unit
        andi t1, t5, 7        # digit
        add  t2, s0, s1
        stb  t1, 0(t2)
        srli t3, t5, 3
        andi t3, t3, 1
        addi t3, t3, 10       # '+' or '*'
        stb  t3, 1(t2)
        addi s1, s1, 2
        # 1-in-4 units continue with a parenthesized subexpression
        srli t3, t5, 4
        andi t3, t3, 3
        bne  t3, nopar
        add  t2, s0, s1
        li   t3, 12
        stb  t3, 0(t2)        # '('
        srli t4, t5, 6
        andi t4, t4, 7
        stb  t4, 1(t2)
        srli t3, t5, 9
        andi t3, t3, 1
        addi t3, t3, 10
        stb  t3, 2(t2)
        srli t4, t5, 10
        andi t4, t4, 7
        stb  t4, 3(t2)
        li   t3, 13
        stb  t3, 4(t2)        # ')'
        srli t3, t5, 11
        andi t3, t3, 1
        addi t3, t3, 10
        stb  t3, 5(t2)
        addi s1, s1, 6
nopar:
        subi s2, s2, 1
        bne  s2, build
        # terminate: final digit then end marker
        add  t2, s0, s1
        li   t3, 1
        stb  t3, 0(t2)
        li   t3, 14
        stb  t3, 1(t2)

        # evaluate the whole stream several times
        li   s3, 8            # passes
        li   s4, 0            # checksum
run:
        la   t0, pos
        stq  zero, 0(t0)
        call expr
        add  s4, s4, v0
        subi s3, s3, 1
        bne  s3, run

        andi s4, s4, 65535
        li   v0, 1
        mov  a0, s4
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * perlbmk-like: byte-level word scanning and open-addressing hash
 * counting over a synthetic text buffer (string/hash interpreter
 * flavor).
 */
const char *const spec_perlbmk = R"(
# perlbmk-like word-frequency kernel
        .data
text:   .space 16384
htkey:  .space 8192           # 1024 x 8B keys (0 = empty)
htval:  .space 8192           # 1024 x 8B counts
textp:  .quad 0               # global pointer to the text
        .text
_start:
        la   t0, textp
        la   t1, text
        stq  t1, 0(t0)
        # synthesize text: words of 2-9 lowercase letters from a small
        # vocabulary, separated by spaces
        la   s0, text
        li   s1, 16000        # usable length
        li   t0, 0            # write pos
gen:
        li   v0, 5
        syscall
        andi t1, v0, 63       # vocabulary word id
        addi t2, t1, 2
        andi t2, t2, 7
        addi t2, t2, 2        # length 2..9
        li   t3, 0            # char index
gw:
        add  t4, t1, t3
        muli t5, t4, 7
        andi t5, t5, 25
        addi t5, t5, 97       # 'a' + x
        add  t6, s0, t0
        stb  t5, 0(t6)
        addi t0, t0, 1
        addi t3, t3, 1
        slt  t7, t3, t2
        bne  t7, gw
        li   t5, 32           # space
        add  t6, s0, t0
        stb  t5, 0(t6)
        addi t0, t0, 1
        slt  t7, t0, s1
        bne  t7, gen
        add  t6, s0, t0
        stb  zero, 0(t6)      # NUL terminator

        # scan words, hash, count in open-addressing table
        li   s2, 0            # read pos
        li   s3, 0            # checksum
scan:
        add  t0, s0, s2
        ldbu t1, 0(t0)
        beq  t1, done         # NUL
        subi t2, t1, 32
        bne  t2, word
        addi s2, s2, 1        # skip space
        j    scan
word:
        # hash the word through a helper (call + spills, as compiled
        # string code would)
        mov  a0, s2
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        call hash_word
        ldq  s0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        mov  t3, v0           # hash
        mov  s2, a1           # new position
        j    whend

# hash_word(a0 = start pos) -> v0 = hash, a1 = end pos
hash_word:
        la   t0, textp
        ldq  t0, 0(t0)        # text base via global
        li   v0, 0            # h
hwl:
        add  t1, t0, a0
        ldbu t2, 0(t1)
        beq  t2, hwend
        subi t4, t2, 32
        beq  t4, hwend
        muli t5, v0, 31
        add  v0, t5, t2
        addi a0, a0, 1
        j    hwl
hwend:
        mov  a1, a0
        ret

whend:
        # open addressing probe
        li   t5, 1023
        and  t6, t3, t5       # slot
        beq  t3, scan         # empty hash (shouldn't happen)
probe:
        la   t7, htkey
        slli t8, t6, 3
        add  t7, t7, t8
        ldq  t9, 0(t7)
        beq  t9, install
        sub  t2, t9, t3
        beq  t2, bump
        addi t6, t6, 1
        and  t6, t6, t5
        j    probe
install:
        stq  t3, 0(t7)
bump:
        la   t7, htval
        slli t8, t6, 3
        add  t7, t7, t8
        ldq  t9, 0(t7)
        addi t9, t9, 1
        stq  t9, 0(t7)
        add  s3, s3, t9
        j    scan
done:
        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * twolf-like: placement annealing move evaluation: random cell swaps
 * with Manhattan wire-length deltas over a net list.
 */
const char *const spec_twolf = R"(
# twolf-like placement swap kernel
        .data
cellx:  .space 2048           # 256 cells
celly:  .space 2048
nets:   .space 8192           # 512 nets x 16B {cell_a, cell_b}
        .text

# netlen(a0 = net index) -> v0 = |xa-xb| + |ya-yb|
netlen:
        la   t0, nets
        slli t1, a0, 4
        add  t0, t0, t1
        ldq  t2, 0(t0)        # cell a
        ldq  t3, 8(t0)        # cell b
        la   t4, cellx
        slli t5, t2, 3
        add  t5, t4, t5
        ldq  t6, 0(t5)        # xa
        slli t5, t3, 3
        add  t5, t4, t5
        ldq  t7, 0(t5)        # xb
        sub  t6, t6, t7
        bge  t6, xpos
        sub  t6, zero, t6
xpos:
        la   t4, celly
        slli t5, t2, 3
        add  t5, t4, t5
        ldq  t8, 0(t5)        # ya
        slli t5, t3, 3
        add  t5, t4, t5
        ldq  t9, 0(t5)        # yb
        sub  t8, t8, t9
        bge  t8, ypos
        sub  t8, zero, t8
ypos:
        add  v0, t6, t8
        ret

_start:
        # random placement
        li   t0, 0
place:
        li   v0, 5
        syscall
        andi t1, v0, 127      # x
        srli t2, v0, 8
        andi t2, t2, 127      # y
        la   t3, cellx
        slli t4, t0, 3
        add  t5, t3, t4
        stq  t1, 0(t5)
        la   t3, celly
        add  t5, t3, t4
        stq  t2, 0(t5)
        addi t0, t0, 1
        slti t6, t0, 256
        bne  t6, place
        # random nets
        li   t0, 0
netg:
        li   v0, 5
        syscall
        andi t1, v0, 255
        srli t2, v0, 8
        andi t2, t2, 255
        la   t3, nets
        slli t4, t0, 4
        add  t5, t3, t4
        stq  t1, 0(t5)
        stq  t2, 8(t5)
        addi t0, t0, 1
        slti t6, t0, 512
        bne  t6, netg

        # annealing moves: swap two random cells, keep if total of 8
        # random nets' length does not grow
        li   s0, 600          # moves
        li   s1, 0            # accepted
        li   s2, 0            # checksum
move:
        li   v0, 5
        syscall
        andi s3, v0, 255      # cell i
        srli t0, v0, 8
        andi s4, t0, 255      # cell j
        # old cost of 8 sample nets
        li   s5, 0            # sample counter
        li   fp, 0            # old cost
oldc:
        li   v0, 5
        syscall
        andi a0, v0, 511
        subi sp, sp, 16
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        call netlen
        ldq  a0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 16
        add  fp, fp, v0
        addi s5, s5, 1
        slti t0, s5, 8
        bne  t0, oldc
        # swap x and y of cells i and j
        la   t1, cellx
        slli t2, s3, 3
        add  t2, t1, t2
        slli t3, s4, 3
        add  t3, t1, t3
        ldq  t4, 0(t2)
        ldq  t5, 0(t3)
        stq  t5, 0(t2)
        stq  t4, 0(t3)
        la   t1, celly
        slli t2, s3, 3
        add  t2, t1, t2
        slli t3, s4, 3
        add  t3, t1, t3
        ldq  t4, 0(t2)
        ldq  t5, 0(t3)
        stq  t5, 0(t2)
        stq  t4, 0(t3)
        # sampled cost again (different sample - annealing noise)
        li   s5, 0
        li   t9, 0
newc:
        li   v0, 5
        syscall
        andi a0, v0, 511
        subi sp, sp, 24
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        stq  t9, 16(sp)
        call netlen
        ldq  t9, 16(sp)
        ldq  a0, 8(sp)
        ldq  ra, 0(sp)
        addi sp, sp, 24
        add  t9, t9, v0
        addi s5, s5, 1
        slti t0, s5, 8
        bne  t0, newc
        sle  t0, t9, fp
        bne  t0, accept
        # reject: swap back
        la   t1, cellx
        slli t2, s3, 3
        add  t2, t1, t2
        slli t3, s4, 3
        add  t3, t1, t3
        ldq  t4, 0(t2)
        ldq  t5, 0(t3)
        stq  t5, 0(t2)
        stq  t4, 0(t3)
        la   t1, celly
        slli t2, s3, 3
        add  t2, t1, t2
        slli t3, s4, 3
        add  t3, t1, t3
        ldq  t4, 0(t2)
        ldq  t5, 0(t3)
        stq  t5, 0(t2)
        stq  t4, 0(t3)
        j    nextmove
accept:
        addi s1, s1, 1
        add  s2, s2, t9
nextmove:
        subi s0, s0, 1
        bne  s0, move

        andi s2, s2, 65535
        li   v0, 1
        mov  a0, s1
        syscall
        li   v0, 3
        li   a0, 32
        syscall
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * vortex-like: an object store: fixed-size records inserted into a
 * table with a sorted index maintained by binary search + shift, then
 * a query mix (OO database flavor).
 */
const char *const spec_vortex = R"(
# vortex-like object store kernel
        .data
recs:   .space 32768          # 1024 records x 32B {key, f1, f2, f3}
index:  .space 8192           # sorted record numbers
nrec:   .quad 0
        .text

# bsearch(a0 = key) -> v0 = insertion position in index
bsearch:
        la   t0, nrec
        ldq  t1, 0(t0)        # n
        li   t2, 0            # lo
        mov  t3, t1           # hi
        la   t4, index
bsl:
        slt  t5, t2, t3
        beq  t5, bsdone
        add  t6, t2, t3
        srli t6, t6, 1        # mid
        slli t7, t6, 3
        add  t7, t4, t7
        ldq  t8, 0(t7)        # record number
        la   t9, recs
        slli t5, t8, 5
        add  t9, t9, t5
        ldq  t5, 0(t9)        # key at mid
        slt  t9, t5, a0
        beq  t9, goleft
        addi t2, t6, 1
        j    bsl
goleft:
        mov  t3, t6
        j    bsl
bsdone:
        mov  v0, t2
        ret

# insert(a0 = key)
insert:
        subi sp, sp, 24
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        mov  s0, a0
        call bsearch
        mov  s1, v0           # position
        # write record
        la   t0, nrec
        ldq  t1, 0(t0)        # record number = n
        la   t2, recs
        slli t3, t1, 5
        add  t2, t2, t3
        stq  s0, 0(t2)        # key
        slli t4, s0, 1
        stq  t4, 8(t2)        # f1
        xori t4, s0, 12345
        stq  t4, 16(t2)       # f2
        srli t4, s0, 3
        stq  t4, 24(t2)       # f3
        # shift index tail up
        la   t5, index
        mov  t6, t1           # i = n
shl:
        sle  t7, t6, s1
        bne  t7, shdone
        slli t8, t6, 3
        add  t8, t5, t8
        ldq  t9, -8(t8)
        stq  t9, 0(t8)
        subi t6, t6, 1
        j    shl
shdone:
        slli t8, s1, 3
        add  t8, t5, t8
        stq  t1, 0(t8)        # index[pos] = record number
        addi t1, t1, 1
        stq  t1, 0(t0)        # ++n
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        ldq  s1, 16(sp)
        addi sp, sp, 24
        ret

_start:
        # insert 384 records with random keys
        li   s2, 384
        li   s3, 0            # checksum
ins:
        li   v0, 5
        syscall
        andi a0, v0, 16383
        subi sp, sp, 8
        stq  ra, 0(sp)
        call insert
        ldq  ra, 0(sp)
        addi sp, sp, 8
        subi s2, s2, 1
        bne  s2, ins

        # query mix: 1024 random key probes; sum f2 of predecessors
        li   s2, 1024
query:
        li   v0, 5
        syscall
        andi a0, v0, 16383
        subi sp, sp, 8
        stq  ra, 0(sp)
        call bsearch
        ldq  ra, 0(sp)
        addi sp, sp, 8
        beq  v0, qskip
        subi t0, v0, 1
        la   t1, index
        slli t2, t0, 3
        add  t1, t1, t2
        ldq  t3, 0(t1)        # record number
        la   t4, recs
        slli t5, t3, 5
        add  t4, t4, t5
        ldq  t6, 16(t4)       # f2
        add  s3, s3, t6
qskip:
        subi s2, s2, 1
        bne  s2, query

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * vpr-like: breadth-first maze routing on a 64x64 grid with obstacles
 * and a circular work queue (vpr route phase flavor).
 */
const char *const spec_vpr = R"(
# vpr-like maze routing kernel
        .data
grid:   .space 4096           # 64x64 occupancy bytes
dist:   .space 32768          # 64x64 distances (8B)
queue:  .space 65536          # circular BFS queue
        .text
_start:
        # place random obstacles (~25%)
        li   t0, 0
obst:
        li   v0, 5
        syscall
        andi t1, v0, 3
        la   t2, grid
        add  t2, t2, t0
        bne  t1, clear
        li   t3, 1
        stb  t3, 0(t2)
clear:
        addi t0, t0, 1
        slti t4, t0, 4096
        bne  t4, obst

        li   s5, 0            # total checksum
        li   s4, 2            # number of routes
route:
        # reset distances to -1
        la   t0, dist
        li   t1, 4096
rst:
        li   t2, -1
        stq  t2, 0(t0)
        addi t0, t0, 8
        subi t1, t1, 1
        bne  t1, rst
        # pick source (must not be an obstacle; linear probe)
        li   v0, 5
        syscall
        andi s0, v0, 4095     # source cell
findsrc:
        la   t0, grid
        add  t0, t0, s0
        ldbu t1, 0(t0)
        beq  t1, srcok
        addi s0, s0, 1
        andi s0, s0, 4095
        j    findsrc
srcok:
        # BFS
        la   s1, queue
        li   t2, 0
        stq  s0, 0(s1)        # enqueue source
        li   s2, 0            # head
        li   s3, 1            # tail
        la   t3, dist
        slli t4, s0, 3
        add  t4, t3, t4
        stq  zero, 0(t4)      # dist[src] = 0
bfs:
        sle  t0, s3, s2
        bne  t0, bfsdone
        slli t1, s2, 3
        add  t1, s1, t1
        ldq  t2, 0(t1)        # cell
        addi s2, s2, 1
        # explore 4 neighbors: -1, +1, -64, +64
        la   t3, dist
        slli t4, t2, 3
        add  t4, t3, t4
        ldq  fp, 0(t4)        # my distance
        addi fp, fp, 1
        # left
        andi t5, t2, 63
        beq  t5, noleft
        subi a0, t2, 1
        call tryvisit
noleft:
        # right
        andi t5, t2, 63
        subi t6, t5, 63
        beq  t6, noright
        addi a0, t2, 1
        call tryvisit
noright:
        # up
        slti t5, t2, 64
        bne  t5, noup
        subi a0, t2, 64
        call tryvisit
noup:
        # down
        li   t6, 4032
        slt  t5, t2, t6
        beq  t5, nodown
        addi a0, t2, 64
        call tryvisit
nodown:
        j    bfs
bfsdone:
        # checksum: sum of distances of 64 sample cells
        li   t0, 0
samp:
        slli t1, t0, 6        # cell = i*64 (column 0)
        la   t2, dist
        slli t3, t1, 3
        add  t2, t2, t3
        ldq  t4, 0(t2)
        blt  t4, unreach
        add  s5, s5, t4
unreach:
        addi t0, t0, 1
        slti t5, t0, 64
        bne  t5, samp
        subi s4, s4, 1
        bne  s4, route

        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall

# tryvisit(a0 = cell, fp = new distance): enqueue if free and unseen
tryvisit:
        subi sp, sp, 16
        stq  s4, 0(sp)        # spilled under register pressure
        stq  s5, 8(sp)
        la   s4, grid
        add  s4, s4, a0
        ldbu s5, 0(s4)
        bne  s5, tvout        # obstacle
        la   s4, dist
        slli s5, a0, 3
        add  s4, s4, s5
        ldq  s5, 0(s4)
        bge  s5, tvout        # already visited
        stq  fp, 0(s4)
        slli s5, s3, 3
        add  s5, s1, s5
        stq  a0, 0(s5)
        addi s3, s3, 1
tvout:
        ldq  s4, 0(sp)
        ldq  s5, 8(sp)
        addi sp, sp, 16
        ret
)";

} // namespace reno::workloads
