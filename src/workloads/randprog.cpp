#include "workloads/randprog.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace reno
{

namespace
{

/** Temporary registers the generator computes with. */
const char *const tempRegs[] = {"t0", "t1", "t2", "t3", "t4", "t5",
                                "t6", "t7", "t8", "t9"};
constexpr unsigned NumTemps = 10;

const char *
pickTemp(Rng &rng)
{
    return tempRegs[rng.below(NumTemps)];
}

/**
 * Emit one random operation. Register t10 permanently holds the
 * scratch-buffer base; t11 is reserved as an address temporary.
 * @p skip_label_counter names forward-skip labels uniquely.
 */
void
emitRandomOp(std::string &out, Rng &rng, unsigned &skip_counter,
             const std::string &label_prefix)
{
    const char *a = pickTemp(rng);
    const char *b = pickTemp(rng);
    const char *d = pickTemp(rng);
    switch (rng.below(18)) {
      case 0:
        out += strprintf("        add  %s, %s, %s\n", d, a, b);
        break;
      case 1:
        out += strprintf("        sub  %s, %s, %s\n", d, a, b);
        break;
      case 2:
        out += strprintf("        xor  %s, %s, %s\n", d, a, b);
        break;
      case 3:
        out += strprintf("        and  %s, %s, %s\n", d, a, b);
        break;
      case 4:
        out += strprintf("        mul  %s, %s, %s\n", d, a, b);
        break;
      case 5:
        out += strprintf("        div  %s, %s, %s\n", d, a, b);
        break;
      case 6:  // the RENO_CF staple
      case 7:
        out += strprintf("        addi %s, %s, %lld\n", d, a,
                         static_cast<long long>(rng.range(-512, 512)));
        break;
      case 8:  // the RENO_ME staple
        out += strprintf("        mov  %s, %s\n", d, a);
        break;
      case 9:
        out += strprintf("        slli %s, %s, %llu\n", d, a,
                         static_cast<unsigned long long>(rng.below(8)));
        break;
      case 10: {  // masked load
        out += strprintf("        andi t11, %s, 4088\n", a);
        out += "        add  t11, t11, t10\n";
        out += strprintf("        ldq  %s, %llu(t11)\n", d,
                         static_cast<unsigned long long>(
                             rng.below(2) * 8));
        break;
      }
      case 11: {  // masked store
        out += strprintf("        andi t11, %s, 4088\n", a);
        out += "        add  t11, t11, t10\n";
        out += strprintf("        stq  %s, 0(t11)\n", b);
        break;
      }
      case 12: {  // compare + forward skip over a couple of ops
        const std::string label =
            strprintf("%s_skip%u", label_prefix.c_str(), skip_counter++);
        out += strprintf("        andi t11, %s, 3\n", a);
        out += strprintf("        beq  t11, %s\n", label.c_str());
        out += strprintf("        addi %s, %s, 7\n", d, d);
        out += strprintf("        xor  %s, %s, %s\n", b, b, a);
        out += label + ":\n";
        break;
      }
      case 13:
        out += strprintf("        sltu %s, %s, %s\n", d, a, b);
        break;
      case 14: {  // partial-overlap pair: quad store, then a byte and
                  // a sign-extending word load inside it (LSQ
                  // forwarding and violation checks across sizes)
        out += strprintf("        andi t11, %s, 4088\n", a);
        out += "        add  t11, t11, t10\n";
        out += strprintf("        stq  %s, 0(t11)\n", b);
        out += strprintf("        ldbu %s, %llu(t11)\n", d,
                         static_cast<unsigned long long>(
                             rng.below(8)));
        out += strprintf("        ldl  %s, %llu(t11)\n", a,
                         static_cast<unsigned long long>(
                             rng.below(2) * 4));
        break;
      }
      case 15: {  // narrow store: byte or 32-bit word
        out += strprintf("        andi t11, %s, 4088\n", a);
        out += "        add  t11, t11, t10\n";
        if (rng.below(2))
            out += strprintf("        stb  %s, %llu(t11)\n", b,
                             static_cast<unsigned long long>(
                                 rng.below(8)));
        else
            out += strprintf("        stl  %s, %llu(t11)\n", b,
                             static_cast<unsigned long long>(
                                 rng.below(2) * 4));
        break;
      }
      case 16:
        out += strprintf("        srai %s, %s, %llu\n", d, a,
                         static_cast<unsigned long long>(
                             rng.below(16)));
        break;
      case 17:  // remainder (unpipelined divider path); the andi/ori
                // guard keeps the divisor nonzero
        out += strprintf("        ori  t11, %s, 1\n", b);
        out += strprintf("        rem  %s, %s, t11\n", d, a);
        break;
    }
}

/**
 * Emit one pointer-chase segment: @p steps serialized hops through
 * the 64-node ring at s3, cursor in s4. Every hop re-masks the
 * cursor, so even if a masked random store corrupts a node the chain
 * stays inside the ring (deterministically, on both simulators).
 */
void
emitChase(std::string &out, unsigned steps)
{
    out += "        # pointer chase\n";
    for (unsigned i = 0; i < steps; ++i) {
        out += "        andi s4, s4, 504\n";
        out += "        add  t11, s3, s4\n";
        out += "        ldq  s4, 0(t11)\n";
    }
    out += "        xor  s5, s5, s4\n";
}

} // namespace

std::string
generateRandomProgram(const RandProgParams &params)
{
    Rng rng(params.seed);
    std::string out;

    const unsigned phases = std::max(params.phases, 1u);
    const unsigned period = std::max(params.phasePeriod, 1u);
    const bool chase = params.chaseSteps > 0;

    out += "# auto-generated random program (seed ";
    out += strprintf("%llu)\n",
                     static_cast<unsigned long long>(params.seed));
    out += "        .data\n";
    // The random loads/stores mask their addresses into the first
    // 4KB (plus up to 8 bytes of displacement); the pointer-chase
    // ring lives beyond that overhang so only stray single-byte
    // stores can touch it.
    out += chase ? "scratch: .space 4624\n" : "scratch: .space 4608\n";
    out += "        .text\n";

    // Leaf functions: random bodies with proper frames. Each mixes a
    // few temps into v0 so results flow back to the caller.
    for (unsigned f = 0; f < params.numFuncs; ++f) {
        unsigned skip = 0;
        out += strprintf("func%u:\n", f);
        out += "        subi sp, sp, 32\n";
        out += "        stq  s0, 0(sp)\n";
        out += "        stq  s1, 8(sp)\n";
        out += "        mov  s0, a0\n";
        out += "        mov  s1, a1\n";
        out += strprintf("        mov  t0, s0\n");
        out += strprintf("        mov  t1, s1\n");
        for (unsigned i = 0; i < params.funcOps; ++i)
            emitRandomOp(out, rng, skip, strprintf("f%u", f));
        out += "        add  v0, t0, t1\n";
        out += "        xor  v0, v0, t2\n";
        out += "        ldq  s0, 0(sp)\n";
        out += "        ldq  s1, 8(sp)\n";
        out += "        addi sp, sp, 32\n";
        out += "        ret\n\n";
    }

    // Main: initialize temps, loop with random body and calls.
    out += "_start:\n";
    out += "        la   t10, scratch\n";
    for (unsigned t = 0; t < NumTemps; ++t) {
        out += strprintf("        li   %s, %lld\n", tempRegs[t],
                         static_cast<long long>(rng.range(-1000, 1000)));
    }
    out += strprintf("        li   s2, %u\n", params.iters);
    out += "        li   s5, 0\n";

    if (chase) {
        // Build the 64-node ring beyond the masked-store region:
        // node i at s3 + i*8 holds the byte offset of its successor
        // (stride odd in nodes, so the ring has full period).
        const unsigned stride =
            8 * (2 * static_cast<unsigned>(rng.below(32)) + 1);
        out += "        # pointer-chase ring\n";
        out += "        addi s3, t10, 4104\n";
        out += "        li   a2, 0\n";
        out += "ring_init:\n";
        out += strprintf("        addi a3, a2, %u\n", stride);
        out += "        andi a3, a3, 504\n";
        out += "        add  t11, s3, a2\n";
        out += "        stq  a3, 0(t11)\n";
        out += "        addi a2, a2, 8\n";
        out += "        seqi t11, a2, 512\n";
        out += "        beq  t11, ring_init\n";
        out += "        li   s4, 0\n";
    }
    if (phases > 1) {
        out += "        li   a4, 0\n";
        out += strprintf("        li   a5, %u\n", period);
    }

    // One random loop body: ops mixed with guarded leaf calls.
    auto emit_body = [&](const std::string &label_prefix) {
        unsigned skip = 0;
        for (unsigned i = 0; i < params.mainOps; ++i) {
            if (params.numFuncs > 0 && rng.chance(10)) {
                const unsigned f =
                    static_cast<unsigned>(rng.below(params.numFuncs));
                out += strprintf("        mov  a0, %s\n",
                                 pickTemp(rng));
                out += strprintf("        mov  a1, %s\n",
                                 pickTemp(rng));
                out += "        subi sp, sp, 16\n";
                out += "        stq  ra, 0(sp)\n";
                out += "        stq  t10, 8(sp)\n";
                out += strprintf("        call func%u\n", f);
                out += "        ldq  t10, 8(sp)\n";
                out += "        ldq  ra, 0(sp)\n";
                out += "        addi sp, sp, 16\n";
                out += "        add  s5, s5, v0\n";
            } else {
                emitRandomOp(out, rng, skip, label_prefix);
            }
        }
    };

    out += "main_loop:\n";
    if (chase)
        emitChase(out, params.chaseSteps);

    if (phases == 1) {
        emit_body("m");
    } else {
        // Rotate through the phase bodies every `period` iterations.
        out += "        subi a5, a5, 1\n";
        out += "        bne  a5, phase_dispatch\n";
        out += strprintf("        li   a5, %u\n", period);
        out += "        addi a4, a4, 1\n";
        out += strprintf("        seqi t11, a4, %u\n", phases);
        out += "        beq  t11, phase_dispatch\n";
        out += "        li   a4, 0\n";
        out += "phase_dispatch:\n";
        for (unsigned p = 0; p + 1 < phases; ++p) {
            out += strprintf("        seqi t11, a4, %u\n", p);
            out += strprintf("        bne  t11, phase_%u\n", p);
        }
        out += strprintf("        br   phase_%u\n", phases - 1);
        for (unsigned p = 0; p < phases; ++p) {
            out += strprintf("phase_%u:\n", p);
            // Odd phases lean on the memory system: an extra chase
            // makes the phase mix heterogeneous, which is the point.
            if (chase && (p % 2) == 1)
                emitChase(out, params.chaseSteps);
            emit_body(strprintf("p%u", p));
            if (p + 1 < phases)
                out += "        br   phase_end\n";
        }
        out += "phase_end:\n";
    }

    // Fold the live temps into the checksum each iteration.
    for (unsigned t = 0; t < NumTemps; t += 3)
        out += strprintf("        xor  s5, s5, %s\n", tempRegs[t]);
    out += "        subi s2, s2, 1\n";
    out += "        bne  s2, main_loop\n";

    out += "        li   v0, 1\n";
    out += "        mov  a0, s5\n";
    out += "        syscall\n";
    out += "        li   v0, 0\n";
    out += "        li   a0, 0\n";
    out += "        syscall\n";
    return out;
}

} // namespace reno
