/**
 * @file
 * MediaBench-like kernels, part 1: ADPCM speech codecs and the
 * epic/unepic wavelet image coder.
 */
#include "workloads/workload_sources.hpp"

namespace reno::workloads
{

/**
 * adpcm.enc-like: IMA ADPCM encoder with the standard 89-entry step
 * table and index adaptation, over a synthetic speech-like waveform.
 */
const char *const media_adpcm_enc = R"(
# IMA ADPCM encoder kernel
        .data
step:   .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
        .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
        .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
        .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
        .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
        .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
        .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
        .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
        .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
idxadj: .word -1, -1, -1, -1, 2, 4, 6, 8
pcm:    .space 32768          # 4096 samples x 8B
out:    .space 4096
        .text
_start:
        # synthesize waveform: rampy triangle + noise
        la   s0, pcm
        li   s1, 4096
        li   t0, 0
        li   t3, 0            # phase
wave:
        andi t1, t0, 255
        slti t2, t1, 128
        beq  t2, downs
        slli t3, t1, 6        # rising
        j    putw
downs:
        subi t4, t1, 255
        sub  t4, zero, t4
        slli t3, t4, 6        # falling
putw:
        li   v0, 5
        syscall
        andi t4, v0, 511
        add  t3, t3, t4
        subi t3, t3, 8448     # center
        slli t5, t0, 3
        add  t6, s0, t5
        stq  t3, 0(t6)
        addi t0, t0, 1
        slt  t7, t0, s1
        bne  t7, wave

        # encode
        li   s2, 0            # valpred
        li   s3, 0            # index
        li   s4, 0            # sample number
        li   s5, 0            # checksum
        la   fp, out
enc:
        slli t0, s4, 3
        add  t0, s0, t0
        ldq  t1, 0(t0)        # sample
        # diff = sample - valpred; sign and magnitude, branchless
        sub  t2, t1, s2
        srai t10, t2, 63      # all-ones if diff < 0
        xor  t2, t2, t10
        sub  t2, t2, t10      # |diff|
        andi t3, t10, 8       # code = sign bit
        # step = step[index]
        la   t4, step
        slli t5, s3, 2
        add  t4, t4, t5
        ldl  t6, 0(t4)        # step
        # quantize 3 bits and reconstruct vpdiff with branchless masks
        srli t9, t6, 3        # vpdiff = step>>3
        sle  t7, t6, t2       # diff >= step
        slli t8, t7, 2
        or   t3, t3, t8
        sub  t7, zero, t7
        and  t7, t6, t7
        sub  t2, t2, t7
        add  t9, t9, t7
        srli t11, t6, 1
        sle  t7, t11, t2
        slli t8, t7, 1
        or   t3, t3, t8
        sub  t7, zero, t7
        and  t7, t11, t7
        sub  t2, t2, t7
        add  t9, t9, t7
        srli t11, t6, 2
        sle  t7, t11, t2
        or   t3, t3, t7
        sub  t7, zero, t7
        and  t7, t11, t7
        add  t9, t9, t7
        # valpred += sign ? -vpdiff : vpdiff; clamp to [-32768, 32767]
        xor  t7, t9, t10
        sub  t7, t7, t10
        add  s2, s2, t7
        li   t7, 32767
        slt  t8, t7, s2
        sub  t8, zero, t8
        and  t11, t7, t8
        bic  s2, s2, t8
        or   s2, s2, t11
        li   t7, -32768
        slt  t8, s2, t7
        sub  t8, zero, t8
        and  t11, t7, t8
        bic  s2, s2, t8
        or   s2, s2, t11
        # index += idxadj[code & 7], clamp to [0, 88], branchless
        la   t4, idxadj
        andi t7, t3, 7
        slli t7, t7, 2
        add  t4, t4, t7
        ldl  t8, 0(t4)
        add  s3, s3, t8
        srai t7, s3, 63
        bic  s3, s3, t7
        li   t7, 88
        slt  t8, t7, s3
        sub  t8, zero, t8
        and  t11, t7, t8
        bic  s3, s3, t8
        or   s3, s3, t11
        # emit code
        add  t0, fp, s4
        stb  t3, 0(t0)
        add  s5, s5, t3
        addi s4, s4, 1
        slt  t7, s4, s1
        bne  t7, enc

        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * adpcm.dec-like: the matching IMA ADPCM decoder, driven by codes
 * generated with the same quantizer.
 */
const char *const media_adpcm_dec = R"(
# IMA ADPCM decoder kernel
        .data
step:   .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
        .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
        .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
        .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
        .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
        .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
        .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
        .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
        .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
idxadj: .word -1, -1, -1, -1, 2, 4, 6, 8
codes:  .space 8192
outp:   .space 65536
        .text
_start:
        # synthesize a code stream
        la   s0, codes
        li   s1, 8192
        li   t0, 0
genc:
        li   v0, 5
        syscall
        andi t1, v0, 15
        add  t2, s0, t0
        stb  t1, 0(t2)
        addi t0, t0, 1
        slt  t3, t0, s1
        bne  t3, genc

        # decode
        li   s2, 0            # valpred
        li   s3, 0            # index
        li   s4, 0            # position
        li   s5, 0            # checksum
        la   fp, outp
dec:
        add  t0, s0, s4
        ldbu t1, 0(t0)        # code
        la   t2, step
        slli t3, s3, 2
        add  t2, t2, t3
        ldl  t4, 0(t2)        # step
        # vpdiff = step>>3 plus masked contributions, branchless
        srli t5, t4, 3
        srli t6, t1, 2
        andi t6, t6, 1
        sub  t6, zero, t6
        and  t6, t4, t6
        add  t5, t5, t6
        srli t7, t4, 1
        srli t6, t1, 1
        andi t6, t6, 1
        sub  t6, zero, t6
        and  t6, t7, t6
        add  t5, t5, t6
        srli t7, t4, 2
        andi t6, t1, 1
        sub  t6, zero, t6
        and  t6, t7, t6
        add  t5, t5, t6
        # apply the sign (code bit 3) and clamp, branchless
        srli t6, t1, 3
        andi t6, t6, 1
        sub  t6, zero, t6
        xor  t7, t5, t6
        sub  t7, t7, t6
        add  s2, s2, t7
        li   t6, 32767
        slt  t7, t6, s2
        sub  t7, zero, t7
        and  t8, t6, t7
        bic  s2, s2, t7
        or   s2, s2, t8
        li   t6, -32768
        slt  t7, s2, t6
        sub  t7, zero, t7
        and  t8, t6, t7
        bic  s2, s2, t7
        or   s2, s2, t8
        # index adapt, clamp to [0, 88], branchless
        la   t2, idxadj
        andi t6, t1, 7
        slli t6, t6, 2
        add  t2, t2, t6
        ldl  t7, 0(t2)
        add  s3, s3, t7
        srai t6, s3, 63
        bic  s3, s3, t6
        li   t6, 88
        slt  t7, t6, s3
        sub  t7, zero, t7
        and  t8, t6, t7
        bic  s3, s3, t7
        or   s3, s3, t8
        # store sample
        slli t0, s4, 3
        add  t0, fp, t0
        stq  s2, 0(t0)
        xor  s5, s5, s2
        addi s4, s4, 1
        slt  t6, s4, s1
        bne  t6, dec

        andi s5, s5, 65535
        li   v0, 1
        mov  a0, s5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * epic-like: pyramid image coder: repeated Haar-style analysis passes
 * (average/difference filter bank) over a 1D signal plus dead-zone
 * quantization.
 */
const char *const media_epic = R"(
# epic-like wavelet analysis kernel
        .data
sig:    .space 32768          # 4096 samples
tmp:    .space 32768
        .text

# haar_pass(a0 = buffer, a1 = length): in-place via tmp
# lows to [0, n/2), highs to [n/2, n)
haar_pass:
        la   t0, tmp
        srli t1, a1, 1        # half
        li   t2, 0            # pair index
hp1:
        slli t3, t2, 4        # byte offset of pair (2 x 8B)
        add  t4, a0, t3
        ldq  t5, 0(t4)        # even
        ldq  t6, 8(t4)        # odd
        add  t7, t5, t6
        srai t7, t7, 1        # avg
        sub  t8, t5, t6       # diff
        slli t9, t2, 3
        add  t4, t0, t9
        stq  t7, 0(t4)        # low -> tmp[i]
        slli t9, t1, 3
        add  t4, t4, t9
        stq  t8, 0(t4)        # high -> tmp[half+i]
        addi t2, t2, 1
        slt  t9, t2, t1
        bne  t9, hp1
        # copy back
        li   t2, 0
hp2:
        slli t3, t2, 3
        add  t4, t0, t3
        ldq  t5, 0(t4)
        add  t6, a0, t3
        stq  t5, 0(t6)
        addi t2, t2, 1
        slt  t7, t2, a1
        bne  t7, hp2
        ret

_start:
        # build signal: smooth base + texture
        la   s0, sig
        li   s1, 4096
        li   t0, 0
bs:
        andi t1, t0, 511
        muli t2, t1, 13
        li   v0, 5
        syscall
        andi t3, v0, 63
        add  t2, t2, t3
        slli t4, t0, 3
        add  t5, s0, t4
        stq  t2, 0(t5)
        addi t0, t0, 1
        slt  t6, t0, s1
        bne  t6, bs

        # 5 pyramid levels
        li   s2, 5
        mov  s3, s1           # current length
pyr:
        mov  a0, s0
        mov  a1, s3
        subi sp, sp, 8
        stq  ra, 0(sp)
        call haar_pass
        ldq  ra, 0(sp)
        addi sp, sp, 8
        srli s3, s3, 1
        subi s2, s2, 1
        bne  s2, pyr

        # dead-zone quantize all coefficients, checksum
        li   t0, 0
        li   s4, 0
qz:
        slli t1, t0, 3
        add  t2, s0, t1
        ldq  t3, 0(t2)
        bge  t3, qpos
        sub  t3, zero, t3
        srai t3, t3, 3
        sub  t3, zero, t3
        j    qstore
qpos:
        srai t3, t3, 3
qstore:
        stq  t3, 0(t2)
        add  s4, s4, t3
        addi t0, t0, 1
        slt  t4, t0, s1
        bne  t4, qz

        andi s4, s4, 65535
        li   v0, 1
        mov  a0, s4
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * unepic-like: the inverse pyramid: dequantize then synthesis passes
 * reconstructing the signal, with a reconstruction-error checksum.
 */
const char *const media_unepic = R"(
# unepic-like wavelet synthesis kernel
        .data
coef:   .space 32768          # 4096 coefficients
tmp:    .space 32768
        .text

# haar_unpass(a0 = buffer, a1 = full length of this level)
# inverse of the analysis pass: lows in [0,n/2), highs in [n/2,n)
haar_unpass:
        la   t0, tmp
        srli t1, a1, 1
        li   t2, 0
up1:
        slli t3, t2, 3
        add  t4, a0, t3
        ldq  t5, 0(t4)        # low
        slli t6, t1, 3
        add  t4, t4, t6
        ldq  t7, 0(t4)        # high
        # even = low + ((high+1)>>1), odd = even - high
        addi t8, t7, 1
        srai t8, t8, 1
        add  t8, t5, t8
        sub  t9, t8, t7
        slli t3, t2, 4
        add  t4, t0, t3
        stq  t8, 0(t4)
        stq  t9, 8(t4)
        addi t2, t2, 1
        slt  t6, t2, t1
        bne  t6, up1
        li   t2, 0
up2:
        slli t3, t2, 3
        add  t4, t0, t3
        ldq  t5, 0(t4)
        add  t6, a0, t3
        stq  t5, 0(t6)
        addi t2, t2, 1
        slt  t7, t2, a1
        bne  t7, up2
        ret

_start:
        # synthesize quantized coefficients (sparse: many zeros)
        la   s0, coef
        li   s1, 4096
        li   t0, 0
gc:
        li   v0, 5
        syscall
        andi t1, v0, 7
        bne  t1, zerocoef     # 7/8 zero
        srli t2, v0, 8
        andi t2, t2, 255
        subi t2, t2, 128
        j    putc
zerocoef:
        li   t2, 0
putc:
        slli t3, t0, 3
        add  t4, s0, t3
        stq  t2, 0(t4)
        addi t0, t0, 1
        slt  t5, t0, s1
        bne  t5, gc

        # dequantize (x8)
        li   t0, 0
dq:
        slli t1, t0, 3
        add  t2, s0, t1
        ldq  t3, 0(t2)
        slli t3, t3, 3
        stq  t3, 0(t2)
        addi t0, t0, 1
        slt  t4, t0, s1
        bne  t4, dq

        # 5 synthesis levels, smallest first
        li   s2, 5
        li   s3, 256          # level length = 4096 >> 4
synth:
        mov  a0, s0
        mov  a1, s3
        subi sp, sp, 8
        stq  ra, 0(sp)
        call haar_unpass
        ldq  ra, 0(sp)
        addi sp, sp, 8
        slli s3, s3, 1
        subi s2, s2, 1
        bne  s2, synth

        # checksum reconstruction
        li   t0, 0
        li   s4, 0
ckr:
        slli t1, t0, 3
        add  t2, s0, t1
        ldq  t3, 0(t2)
        xor  s4, s4, t3
        add  s4, s4, t0
        addi t0, t0, 1
        slt  t4, t0, s1
        bne  t4, ckr

        andi s4, s4, 65535
        li   v0, 1
        mov  a0, s4
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * g721.enc-like: simplified G.721 ADPCM with a two-pole/six-zero
 * adaptive predictor updated by sign-sign LMS (shift-based), encoding
 * a synthetic signal.
 */
const char *const media_g721_enc = R"(
# G.721-flavor encoder kernel
        .data
zcoef:  .space 48             # 6 zero coefficients
zhist:  .space 48             # last 6 quantized diffs
pcm:    .space 16384          # 2048 samples
        .text
_start:
        # input signal
        la   s0, pcm
        li   s1, 2048
        li   t0, 0
        li   t1, 0
gin:
        li   v0, 5
        syscall
        andi t2, v0, 2047
        subi t2, t2, 1024
        # smooth: x = (3*prev + sample) >> 2
        muli t3, t1, 3
        add  t3, t3, t2
        srai t3, t3, 2
        mov  t1, t3
        slli t4, t0, 3
        add  t5, s0, t4
        stq  t3, 0(t5)
        addi t0, t0, 1
        slt  t6, t0, s1
        bne  t6, gin

        li   s2, 0            # sample idx
        li   s3, 0            # checksum
        la   s4, zcoef
        la   s5, zhist
enc:
        # prediction: sum of coef[i]*hist[i] >> 14
        li   t0, 0
        li   t1, 0            # acc
pr:
        slli t2, t0, 3
        add  t3, s4, t2
        ldq  t4, 0(t3)
        add  t3, s5, t2
        ldq  t5, 0(t3)
        mul  t6, t4, t5
        add  t1, t1, t6
        addi t0, t0, 1
        slti t7, t0, 6
        bne  t7, pr
        srai t1, t1, 14       # prediction
        # diff and 4-bit quantize by shifts
        slli t2, s2, 3
        add  t3, s0, t2
        ldq  t4, 0(t3)        # sample
        # diff: sign mask and magnitude, branchless
        sub  t5, t4, t1       # diff
        srai t10, t5, 63      # all-ones if diff < 0
        xor  t5, t5, t10
        sub  t5, t5, t10      # |diff|
        andi t6, t10, 8       # code sign bit
        # magnitude bits from 3 threshold compares, branchless:
        # mag = 7 - (lt64 + 2*lt256 + 4*lt1024)
        slti t8, t5, 64
        slti t9, t5, 256
        slli t9, t9, 1
        add  t8, t8, t9
        slti t9, t5, 1024
        slli t9, t9, 2
        add  t8, t8, t9
        li   t7, 7
        sub  t7, t7, t8
        or   t6, t6, t7       # code
        add  s3, s3, t6
        # reconstructed diff dq = +-(mag << 6), branchless
        slli t9, t7, 6
        xor  t9, t9, t10
        sub  t9, t9, t10
        # sign-sign LMS update of 6 zero coefficients, branchless
        li   t0, 0
lms:
        slli t2, t0, 3
        add  t3, s5, t2
        ldq  t4, 0(t3)        # hist
        add  t5, s4, t2
        ldq  t7, 0(t5)        # coef
        # delta = sign-agreement(+32/-32), zeroed if dq or hist is 0
        xor  t8, t9, t4
        srai t8, t8, 63
        li   t11, 32
        xor  t11, t11, t8
        sub  t11, t11, t8     # +-32
        seq  t8, t9, zero
        seq  t2, t4, zero
        or   t8, t8, t2
        subi t8, t8, 1        # all-ones if both nonzero
        and  t11, t11, t8
        add  t7, t7, t11
        # leak: coef -= coef >> 8
        srai t8, t7, 8
        sub  t7, t7, t8
        stq  t7, 0(t5)
        addi t0, t0, 1
        slti t8, t0, 6
        bne  t8, lms
        # shift history, insert dq
        li   t0, 5
hsh:
        beq  t0, hdone
        slli t2, t0, 3
        add  t3, s5, t2
        ldq  t4, -8(t3)
        stq  t4, 0(t3)
        subi t0, t0, 1
        j    hsh
hdone:
        stq  t9, 0(s5)
        addi s2, s2, 1
        slt  t8, s2, s1
        bne  t8, enc

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

/**
 * g721.dec-like: the matching decoder: inverse quantizer plus the same
 * adaptive predictor reconstructing samples from a code stream.
 */
const char *const media_g721_dec = R"(
# G.721-flavor decoder kernel
        .data
zcoef:  .space 48
zhist:  .space 48
codes:  .space 2048
        .text
_start:
        # code stream
        la   s0, codes
        li   s1, 2048
        li   t0, 0
gcs:
        li   v0, 5
        syscall
        andi t1, v0, 15
        add  t2, s0, t0
        stb  t1, 0(t2)
        addi t0, t0, 1
        slt  t3, t0, s1
        bne  t3, gcs

        li   s2, 0            # idx
        li   s3, 0            # checksum
        la   s4, zcoef
        la   s5, zhist
dec:
        # prediction
        li   t0, 0
        li   t1, 0
pr:
        slli t2, t0, 3
        add  t3, s4, t2
        ldq  t4, 0(t3)
        add  t3, s5, t2
        ldq  t5, 0(t3)
        mul  t6, t4, t5
        add  t1, t1, t6
        addi t0, t0, 1
        slti t7, t0, 6
        bne  t7, pr
        srai t1, t1, 14
        # inverse quantize code, branchless sign application
        add  t2, s0, s2
        ldbu t3, 0(t2)
        andi t4, t3, 7
        slli t9, t4, 6
        srli t4, t3, 3
        andi t4, t4, 1
        sub  t4, zero, t4
        xor  t9, t9, t4
        sub  t9, t9, t4
        add  t5, t1, t9       # sample = pred + dq
        xor  s3, s3, t5
        # LMS update (same as encoder), branchless
        li   t0, 0
lms:
        slli t2, t0, 3
        add  t3, s5, t2
        ldq  t4, 0(t3)        # hist
        add  t6, s4, t2
        ldq  t7, 0(t6)        # coef
        xor  t8, t9, t4
        srai t8, t8, 63
        li   t11, 32
        xor  t11, t11, t8
        sub  t11, t11, t8     # +-32
        seq  t8, t9, zero
        seq  t2, t4, zero
        or   t8, t8, t2
        subi t8, t8, 1        # all-ones if both nonzero
        and  t11, t11, t8
        add  t7, t7, t11
        srai t8, t7, 8
        sub  t7, t7, t8
        stq  t7, 0(t6)
        addi t0, t0, 1
        slti t8, t0, 6
        bne  t8, lms
        # history shift
        li   t0, 5
hsh:
        beq  t0, hdone
        slli t2, t0, 3
        add  t3, s5, t2
        ldq  t4, -8(t3)
        stq  t4, 0(t3)
        subi t0, t0, 1
        j    hsh
hdone:
        stq  t9, 0(s5)
        addi s2, s2, 1
        slt  t8, s2, s1
        bne  t8, dec

        andi s3, s3, 65535
        li   v0, 1
        mov  a0, s3
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

} // namespace reno::workloads
