/**
 * @file
 * Front-end branch prediction: a hybrid (bimodal + gshare + chooser)
 * direction predictor with a 16Kbit budget, a 2K-entry 4-way BTB and a
 * 32-entry return address stack, matching the paper's configuration.
 *
 * The core does not simulate wrong-path fetch (stall-until-resolve),
 * so predictions are made and trained in correct-path order; a
 * misprediction is charged as a front-end redirect bubble.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/inst.hpp"

namespace reno
{

/** Outcome of a lookup. */
struct Prediction {
    bool taken = false;
    Addr target = 0;
    bool targetValid = false;  //!< BTB/RAS produced a target
};

/** Configuration of the hybrid predictor. */
struct BranchPredParams {
    unsigned bimodalEntries = 4096;   //!< 2-bit counters (8Kb)
    unsigned gshareEntries = 2048;    //!< 2-bit counters (4Kb)
    unsigned chooserEntries = 2048;   //!< 2-bit counters (4Kb)
    unsigned historyBits = 11;
    unsigned btbEntries = 2048;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
};

/**
 * Snapshot of a predictor's tables for functional warming (sampled
 * simulation). Statistics counters are excluded: measured windows are
 * counter deltas, so the absolute base never matters.
 */
struct BranchPredState {
    std::vector<std::uint8_t> bimodal, gshare, chooser;
    std::uint64_t history = 0;
    struct Btb {
        std::uint32_t index = 0;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };
    std::vector<Btb> btb;  //!< valid entries only
    std::uint64_t btbLru = 0;
    std::vector<Addr> ras;
    unsigned rasTop = 0;
};

/** Hybrid direction predictor + BTB + RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredParams &params = {});

    /**
     * Predict the control instruction at @p pc. Speculatively updates
     * the RAS (push on call, pop on return).
     */
    Prediction predict(Addr pc, const Instruction &inst);

    /** Train with the resolved outcome. */
    void update(Addr pc, const Instruction &inst, bool taken, Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t dirMispredicts() const { return dirMispredicts_; }
    std::uint64_t targetMispredicts() const { return targetMispredicts_; }

    /** Record a misprediction (counted by the core at resolve time). */
    void noteDirMispredict() { ++dirMispredicts_; }
    void noteTargetMispredict() { ++targetMispredicts_; }

    /** Export / import the table state (checkpoint persistence).
     *  importState returns false on any size mismatch. */
    BranchPredState exportState() const;
    bool importState(const BranchPredState &state);

  private:
    struct BtbEntry {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    static void
    bump(std::uint8_t &counter, bool up)
    {
        if (up && counter < 3)
            ++counter;
        else if (!up && counter > 0)
            --counter;
    }

    unsigned bimodalIndex(Addr pc) const;
    unsigned gshareIndex(Addr pc) const;
    unsigned chooserIndex(Addr pc) const;

    bool lookupDirection(Addr pc) const;
    void trainDirection(Addr pc, bool taken);

    bool btbLookup(Addr pc, Addr &target) const;
    void btbInsert(Addr pc, Addr target);

    BranchPredParams params_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t history_ = 0;

    std::vector<BtbEntry> btb_;
    std::uint64_t btbLru_ = 0;

    std::vector<Addr> ras_;
    unsigned rasTop_ = 0;  //!< index of next push slot

    std::uint64_t lookups_ = 0;
    std::uint64_t dirMispredicts_ = 0;
    std::uint64_t targetMispredicts_ = 0;
};

} // namespace reno
