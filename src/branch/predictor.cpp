#include "branch/predictor.hpp"

#include "common/log.hpp"

namespace reno
{

BranchPredictor::BranchPredictor(const BranchPredParams &params)
    : params_(params),
      bimodal_(params.bimodalEntries, 1),
      gshare_(params.gshareEntries, 1),
      chooser_(params.chooserEntries, 2),
      btb_(static_cast<size_t>(params.btbEntries)),
      ras_(params.rasEntries, 0)
{
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) % params_.bimodalEntries);
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const std::uint64_t hist =
        history_ & ((std::uint64_t{1} << params_.historyBits) - 1);
    return static_cast<unsigned>(((pc >> 2) ^ hist) %
                                 params_.gshareEntries);
}

unsigned
BranchPredictor::chooserIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) % params_.chooserEntries);
}

bool
BranchPredictor::lookupDirection(Addr pc) const
{
    const bool use_gshare = chooser_[chooserIndex(pc)] >= 2;
    const std::uint8_t counter = use_gshare ? gshare_[gshareIndex(pc)]
                                            : bimodal_[bimodalIndex(pc)];
    return counter >= 2;
}

void
BranchPredictor::trainDirection(Addr pc, bool taken)
{
    const bool bim_correct = (bimodal_[bimodalIndex(pc)] >= 2) == taken;
    const bool gsh_correct = (gshare_[gshareIndex(pc)] >= 2) == taken;
    if (bim_correct != gsh_correct)
        bump(chooser_[chooserIndex(pc)], gsh_correct);
    bump(bimodal_[bimodalIndex(pc)], taken);
    bump(gshare_[gshareIndex(pc)], taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

bool
BranchPredictor::btbLookup(Addr pc, Addr &target) const
{
    const unsigned sets = params_.btbEntries / params_.btbAssoc;
    const unsigned set = static_cast<unsigned>((pc >> 2) % sets);
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        const BtbEntry &e = btb_[set * params_.btbAssoc + w];
        if (e.valid && e.tag == pc) {
            target = e.target;
            return true;
        }
    }
    return false;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    const unsigned sets = params_.btbEntries / params_.btbAssoc;
    const unsigned set = static_cast<unsigned>((pc >> 2) % sets);
    BtbEntry *victim = nullptr;
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        BtbEntry &e = btb_[set * params_.btbAssoc + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lruStamp = ++btbLru_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lruStamp = ++btbLru_;
}

Prediction
BranchPredictor::predict(Addr pc, const Instruction &inst)
{
    ++lookups_;
    Prediction pred;
    const Addr fall_through = pc + 4;
    const Addr direct_target =
        pc + 4 + static_cast<Addr>(static_cast<std::int64_t>(inst.imm) * 4);

    switch (inst.info().cls) {
      case InstClass::CtrlCond:
        pred.taken = lookupDirection(pc);
        pred.target = pred.taken ? direct_target : fall_through;
        pred.targetValid = true;
        break;
      case InstClass::CtrlUncond:
        pred.taken = true;
        pred.target = direct_target;
        pred.targetValid = true;
        break;
      case InstClass::CtrlCall: {
        pred.taken = true;
        // Push the return address.
        ras_[rasTop_ % params_.rasEntries] = fall_through;
        ++rasTop_;
        if (inst.op == Opcode::BSR) {
            pred.target = direct_target;
            pred.targetValid = true;
        } else {
            pred.targetValid = btbLookup(pc, pred.target);
        }
        break;
      }
      case InstClass::CtrlRet:
        pred.taken = true;
        if (inst.ra == RegRa && rasTop_ > 0) {
            --rasTop_;
            pred.target = ras_[rasTop_ % params_.rasEntries];
            pred.targetValid = true;
        } else {
            pred.targetValid = btbLookup(pc, pred.target);
        }
        break;
      default:
        panic("predict() on non-control instruction");
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, const Instruction &inst, bool taken,
                        Addr target)
{
    if (inst.info().cls == InstClass::CtrlCond)
        trainDirection(pc, taken);
    // Indirect targets live in the BTB.
    if (inst.op == Opcode::JSR ||
        (inst.op == Opcode::JMP && inst.ra != RegRa)) {
        btbInsert(pc, target);
    }
}

BranchPredState
BranchPredictor::exportState() const
{
    BranchPredState state;
    state.bimodal = bimodal_;
    state.gshare = gshare_;
    state.chooser = chooser_;
    state.history = history_;
    for (std::size_t i = 0; i < btb_.size(); ++i) {
        if (!btb_[i].valid)
            continue;
        state.btb.push_back({static_cast<std::uint32_t>(i),
                             btb_[i].tag, btb_[i].target,
                             btb_[i].lruStamp});
    }
    state.btbLru = btbLru_;
    state.ras = ras_;
    state.rasTop = rasTop_;
    return state;
}

bool
BranchPredictor::importState(const BranchPredState &state)
{
    if (state.bimodal.size() != bimodal_.size() ||
        state.gshare.size() != gshare_.size() ||
        state.chooser.size() != chooser_.size() ||
        state.ras.size() != ras_.size())
        return false;
    bimodal_ = state.bimodal;
    gshare_ = state.gshare;
    chooser_ = state.chooser;
    history_ = state.history;
    for (auto &entry : btb_)
        entry.valid = false;
    for (const BranchPredState::Btb &e : state.btb) {
        if (e.index >= btb_.size())
            return false;
        btb_[e.index] = {true, e.tag, e.target, e.lruStamp};
    }
    btbLru_ = state.btbLru;
    ras_ = state.ras;
    rasTop_ = state.rasTop;
    return true;
}

} // namespace reno

