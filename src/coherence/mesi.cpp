#include "coherence/mesi.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "uarch/params.hpp"

namespace reno
{

const char *
mesiStateName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid:   return "I";
      case MesiState::Shared:    return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified:  return "M";
    }
    return "?";
}

CoherenceBus::CoherenceBus(const SysParams &params,
                           unsigned blockBytes, unsigned numCores)
    : numCores_(numCores), blockMask_(blockBytes - 1),
      snoopLatency_(params.snoopLatency),
      interventionLatency_(params.interventionLatency),
      upgradeLatency_(params.upgradeLatency),
      dcaches_(numCores, nullptr)
{
    if (numCores == 0)
        fatal("coherence bus: core count must be positive");
    if (numCores > 32)
        fatal("coherence bus: sharer bitmask holds at most 32 cores "
              "(got %u)", numCores);
    if (blockBytes == 0 || (blockBytes & (blockBytes - 1)) != 0)
        fatal("coherence bus: block size must be a positive power of "
              "two (got %u)", blockBytes);
}

void
CoherenceBus::attachCore(unsigned core, Cache *dcache)
{
    if (core >= numCores_)
        fatal("coherence bus: attaching core %u of %u", core,
              numCores_);
    dcaches_[core] = dcache;
}

void
CoherenceBus::invalidateOthers(DirEntry &entry, Addr line,
                               unsigned keep)
{
    for (unsigned c = 0; c < numCores_; ++c) {
        if (c == keep || !(entry.sharers & (1u << c)))
            continue;
        ++invalidations_;
        if (dcaches_[c]) {
            // The directory counts the dirty flush off the L1's own
            // dirty bit: the line's data moves to the shared level
            // before it is dropped.
            if (dcaches_[c]->invalidateBlock(line).wasDirty)
                ++writebacks_;
        }
    }
    entry.sharers &= 1u << keep;
    entry.owner = -1;
    entry.modified = false;
}

Cycle
CoherenceBus::beforeDataAccess(unsigned core, Addr addr,
                               bool is_write, Cycle)
{
    if (core >= numCores_)
        fatal("coherence bus: access from core %u of %u", core,
              numCores_);
    const Addr line = lineAddr(addr);
    DirEntry &entry = directory_[line];
    const std::uint32_t bit = 1u << core;
    const bool present = (entry.sharers & bit) != 0;
    Cycle penalty = 0;

    if (!is_write) {
        if (present) {
            // M/E/S read hit: silent, whatever the state.
        } else if (entry.sharers == 0) {
            // I -> E: sole copy, no bus traffic beyond the fill.
            entry.sharers = bit;
            entry.owner = static_cast<int>(core);
            entry.modified = false;
        } else if (entry.owner >= 0) {
            // Remote E/M -> both end Shared. A Modified owner flushes
            // its line to the shared level first (intervention).
            if (entry.modified) {
                ++interventions_;
                if (dcaches_[entry.owner] &&
                    dcaches_[entry.owner]->cleanBlock(line).wasDirty)
                    ++writebacks_;
                penalty = interventionLatency_;
            } else {
                penalty = snoopLatency_;
            }
            entry.owner = -1;
            entry.modified = false;
            entry.sharers |= bit;
        } else {
            // Join the sharers; the data comes from the shared level.
            entry.sharers |= bit;
        }
    } else {
        if (present && entry.owner == static_cast<int>(core)) {
            // E -> M silently, or M -> M.
            entry.modified = true;
        } else if (present) {
            // S -> M: upgrade miss. The line is resident (the D$ will
            // report a hit) but ownership costs a broadcast.
            ++upgradeMisses_;
            invalidateOthers(entry, line, core);
            entry.owner = static_cast<int>(core);
            entry.modified = true;
            penalty = upgradeLatency_;
        } else if (entry.sharers == 0) {
            // I -> M: read-for-ownership, no other copies.
            entry.sharers = bit;
            entry.owner = static_cast<int>(core);
            entry.modified = true;
        } else {
            // I -> M over remote copies: invalidate them all; a dirty
            // remote owner flushes first (intervention).
            if (entry.owner >= 0 && entry.modified) {
                ++interventions_;
                penalty = interventionLatency_;
            } else {
                penalty = snoopLatency_;
            }
            invalidateOthers(entry, line, core);
            entry.sharers = bit;
            entry.owner = static_cast<int>(core);
            entry.modified = true;
        }
    }
    return penalty;
}

void
CoherenceBus::onEviction(unsigned core, Addr addr, bool)
{
    const auto it = directory_.find(lineAddr(addr));
    if (it == directory_.end())
        return;
    DirEntry &entry = it->second;
    entry.sharers &= ~(1u << core);
    if (entry.owner == static_cast<int>(core)) {
        entry.owner = -1;
        entry.modified = false;
    }
    if (entry.sharers == 0)
        directory_.erase(it);
}

CoherenceBusState
CoherenceBus::exportState() const
{
    CoherenceBusState out;
    out.lines.reserve(directory_.size());
    for (const auto &[line, entry] : directory_)
        out.lines.push_back(
            {line, entry.sharers, entry.owner, entry.modified});
    std::sort(out.lines.begin(), out.lines.end(),
              [](const CoherenceBusState::Line &a,
                 const CoherenceBusState::Line &b) {
                  return a.line < b.line;
              });
    out.invalidations = invalidations_;
    out.interventions = interventions_;
    out.upgradeMisses = upgradeMisses_;
    out.writebacks = writebacks_;
    return out;
}

bool
CoherenceBus::importState(const CoherenceBusState &state)
{
    const std::uint32_t legal_sharers =
        numCores_ >= 32 ? ~0u : (1u << numCores_) - 1;
    for (std::size_t i = 0; i < state.lines.size(); ++i) {
        const CoherenceBusState::Line &l = state.lines[i];
        if (l.sharers == 0 || (l.sharers & ~legal_sharers) != 0)
            return false;
        if (l.owner >= static_cast<int>(numCores_) ||
            (l.owner >= 0 && !(l.sharers & (1u << l.owner))) ||
            (l.modified && l.owner < 0))
            return false;
        if (i > 0 && state.lines[i - 1].line >= l.line)
            return false;
    }
    directory_.clear();
    for (const CoherenceBusState::Line &l : state.lines) {
        DirEntry entry;
        entry.sharers = l.sharers;
        entry.owner = l.owner;
        entry.modified = l.modified;
        directory_.emplace(l.line, entry);
    }
    invalidations_ = state.invalidations;
    interventions_ = state.interventions;
    upgradeMisses_ = state.upgradeMisses;
    writebacks_ = state.writebacks;
    return true;
}

MesiState
CoherenceBus::state(unsigned core, Addr addr) const
{
    const auto it = directory_.find(lineAddr(addr));
    if (it == directory_.end())
        return MesiState::Invalid;
    const DirEntry &entry = it->second;
    if (!(entry.sharers & (1u << core)))
        return MesiState::Invalid;
    if (entry.owner == static_cast<int>(core))
        return entry.modified ? MesiState::Modified
                              : MesiState::Exclusive;
    return MesiState::Shared;
}

} // namespace reno
