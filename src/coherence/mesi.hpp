/**
 * @file
 * Snooping MESI coherence over the private data caches of a
 * multi-core System (src/sys/system.hpp).
 *
 * The simulator is timing-only above the functional emulator: caches
 * carry tags, not data, so coherence is modeled as a directory of
 * line states driven by the cores' data-access streams. Every data
 * access consults the bus *before* its D$ lookup; the bus returns the
 * extra cycles the access pays for snoop traffic (invalidation
 * broadcasts, ownership upgrades, dirty-line interventions) and fixes
 * up the remote caches (invalidating or cleaning their copies) so the
 * L1 tag arrays always agree with the directory.
 *
 * State per line is the classic MESI lattice:
 *
 *   M (Modified)   one owner, dirty   -- remote read: intervention
 *                                        (flush + downgrade to S);
 *                                        remote write: invalidate.
 *   E (Exclusive)  one owner, clean   -- silent E->M on own write;
 *                                        remote read: downgrade to S.
 *   S (Shared)     >=1 sharers, clean -- own write: upgrade miss
 *                                        (invalidate other sharers).
 *   I (Invalid)    not present        -- read miss: E if no sharer,
 *                                        else S; write miss: M.
 *
 * Write-backs of M lines evicted by capacity reuse the caches' dirty
 * -line machinery; the bus only counts the coherence-induced flushes
 * (interventions and invalidations of dirty lines).
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"

namespace reno
{

struct SysParams;

/** MESI state of one line in one core's data cache. */
enum class MesiState { Invalid, Shared, Exclusive, Modified };

const char *mesiStateName(MesiState s);

/**
 * Serializable snapshot of a CoherenceBus: the line-state directory
 * (sorted by line address, so the encoding of a given state is
 * unique) plus the event counters. Produced by functional warming and
 * by the checkpoint store; importState() rebuilds the directory on a
 * bus of the same core count.
 */
struct CoherenceBusState {
    struct Line {
        Addr line = 0;              //!< block-aligned address
        std::uint32_t sharers = 0;  //!< presence bitmask by core
        int owner = -1;             //!< E/M holder, -1 when shared
        bool modified = false;
    };
    std::vector<Line> lines;  //!< ascending by line address
    std::uint64_t invalidations = 0;
    std::uint64_t interventions = 0;
    std::uint64_t upgradeMisses = 0;
    std::uint64_t writebacks = 0;
};

/**
 * The snooping bus: a line-state directory over every core's private
 * D$, plus the event counters the SimResult coherence block reports.
 * Deterministic: state depends only on the order of calls, and the
 * System ticks cores round-robin in core order.
 */
class CoherenceBus
{
  public:
    /** fatal() on zero cores or a non-power-of-two block size. */
    CoherenceBus(const SysParams &params, unsigned blockBytes,
                 unsigned numCores);

    /** Register core @p core's private D$ (invalidation target).
     *  Every core must attach before the first access. */
    void attachCore(unsigned core, Cache *dcache);

    /**
     * Snoop for core @p core's demand access to @p addr at @p now.
     * Updates the directory and the remote caches; returns the extra
     * latency (0 on the silent paths) the access pays before its own
     * D$ lookup.
     */
    Cycle beforeDataAccess(unsigned core, Addr addr, bool is_write,
                           Cycle now);

    /** Core @p core's D$ evicted @p addr's block (capacity): retire
     *  its presence. Wired as the D$'s eviction listener. */
    void onEviction(unsigned core, Addr addr, bool dirty);

    /** Current MESI state of @p addr's line in @p core's D$. */
    MesiState state(unsigned core, Addr addr) const;

    /** Snapshot the directory (sorted) and the counters. */
    CoherenceBusState exportState() const;

    /** Replace directory and counters from a snapshot. Returns false
     *  (leaving the bus unchanged) when an entry names a core beyond
     *  this bus's count, is empty, or breaks the sorted order. */
    bool importState(const CoherenceBusState &state);

    std::uint64_t invalidations() const { return invalidations_; }
    std::uint64_t interventions() const { return interventions_; }
    std::uint64_t upgradeMisses() const { return upgradeMisses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    unsigned numCores() const { return numCores_; }

  private:
    /** One line's directory entry. owner >= 0 with modified means M,
     *  owner >= 0 clean means E; owner < 0 with sharers means S. */
    struct DirEntry {
        std::uint32_t sharers = 0;  //!< presence bitmask by core
        int owner = -1;             //!< E/M holder, -1 when shared
        bool modified = false;
    };

    Addr lineAddr(Addr addr) const { return addr & ~Addr{blockMask_}; }

    /** Invalidate every sharer of @p entry except @p keep; counts
     *  invalidations and dirty flushes. */
    void invalidateOthers(DirEntry &entry, Addr line, unsigned keep);

    unsigned numCores_;
    unsigned blockMask_;
    unsigned snoopLatency_;
    unsigned interventionLatency_;
    unsigned upgradeLatency_;

    std::vector<Cache *> dcaches_;
    std::unordered_map<Addr, DirEntry> directory_;

    std::uint64_t invalidations_ = 0;
    std::uint64_t interventions_ = 0;
    std::uint64_t upgradeMisses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace reno
