/**
 * @file
 * The full memory hierarchy used by the core, assembled declaratively
 * from MemLevel nodes: split L1s (I$ and D$) backed by a stack of
 * shared levels (L2, then any number of deeper levels), terminated by
 * main memory over a contended bus.
 *
 * The default reproduces the paper's configuration (section 4.1):
 * 16KB 2-way 32B 1-cycle I$, 32KB 2-way 32B 2-cycle D$, 512KB 4-way
 * 64B 10-cycle L2, 100-cycle main memory reached over a 16B bus
 * clocked at one quarter of the core frequency, and a maximum of 16
 * outstanding misses (MSHRs). Deeper stacks (an L3), per-level
 * prefetchers and write-back traffic modeling are opt-in through
 * Params, so the paper-geometry outputs are bit-identical to the
 * fixed three-cache model this replaces.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/main_memory.hpp"

namespace reno
{

/** The hierarchy: I$ + D$ over shared levels over main memory. */
class MemHierarchy
{
  public:
    struct Params {
        CacheParams icache{"icache", 16 * 1024, 2, 32, 1, 16, {},
                           false};
        CacheParams dcache{"dcache", 32 * 1024, 2, 32, 2, 16, {},
                           false};
        CacheParams l2{"l2", 512 * 1024, 4, 64, 10, 16, {}, false};
        /** Shared levels below the L2 (an L3, an L4...), nearest
         *  first. Empty = the paper's two-level stack. */
        std::vector<CacheParams> extraLevels;
        MemoryParams memory;
        /** Model dirty-victim write-back traffic on every level's
         *  bus (D$ and shared levels; the I$ never dirties lines).
         *  Off by default: the paper's model carries none. */
        bool modelWritebacks = false;
    };

    explicit MemHierarchy(const Params &params);
    MemHierarchy() : MemHierarchy(Params{}) {}

    /** Instruction fetch of the block containing @p pc. */
    Cycle fetchAccess(Addr pc, Cycle now);

    /** Data access. */
    Cycle dataAccess(Addr addr, Cycle now, bool is_write);

    /** Would a load of @p addr hit in the D$ right now? */
    bool dcacheProbe(Addr addr) const { return dcache_->probe(addr); }
    /** Would it hit in the first shared level (the L2)? */
    bool l2Probe(Addr addr) const { return shared_[0]->probe(addr); }

    /** Would it hit in ANY shared level? Load-latency classification
     *  (MemHitLevel): a hit anywhere on-chip is a cache hit, not a
     *  memory access, however deep the stack. Equals l2Probe() for
     *  the paper's two-level default. */
    bool
    sharedProbe(Addr addr) const
    {
        for (const auto &level : shared_) {
            if (level->probe(addr))
                return true;
        }
        return false;
    }

    void flush();

    /**
     * Adopt another same-geometry hierarchy's state (tags, LRU,
     * counters, prefetcher training, bus). MemHierarchy is
     * deliberately not copyable (the levels hold pointers into their
     * owner); this is the supported way to clone its state.
     */
    void copyStateFrom(const MemHierarchy &other);

    /** Drop in-flight timing state everywhere (MSHRs, bus). */
    void settle();

    /** Snapshot of every cache level, access order: I$, D$, then the
     *  shared stack nearest-first (persistence). */
    struct State {
        std::vector<CacheState> caches;
    };
    State exportState() const;
    bool importState(const State &state);

    const Cache &icache() const { return *icache_; }
    const Cache &dcache() const { return *dcache_; }
    /** The first shared level. */
    const Cache &l2() const { return *shared_[0]; }

    /** The shared stack below the L1s, nearest first. */
    std::size_t numSharedLevels() const { return shared_.size(); }
    const Cache &sharedLevel(std::size_t i) const
    {
        return *shared_[i];
    }

    const MainMemory &memory() const { return *memory_; }

    /** Every cache level in State order: I$, D$, shared stack. */
    std::vector<const Cache *> levels() const;

    const Params &params() const { return params_; }

  private:
    std::vector<Cache *> levelsMutable();

    Params params_;
    std::unique_ptr<MainMemory> memory_;
    std::vector<std::unique_ptr<Cache>> shared_;  //!< L2 first
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;
};

} // namespace reno
