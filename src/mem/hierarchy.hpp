/**
 * @file
 * The full memory hierarchy used by the core, assembled declaratively
 * from MemLevel nodes: split L1s (I$ and D$) backed by a stack of
 * shared levels (L2, then any number of deeper levels), terminated by
 * main memory over a contended bus.
 *
 * The default reproduces the paper's configuration (section 4.1):
 * 16KB 2-way 32B 1-cycle I$, 32KB 2-way 32B 2-cycle D$, 512KB 4-way
 * 64B 10-cycle L2, 100-cycle main memory reached over a 16B bus
 * clocked at one quarter of the core frequency, and a maximum of 16
 * outstanding misses (MSHRs). Deeper stacks (an L3), per-level
 * prefetchers and write-back traffic modeling are opt-in through
 * Params, so the paper-geometry outputs are bit-identical to the
 * fixed three-cache model this replaces.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/main_memory.hpp"

namespace reno
{

class CoherenceBus;

/** The hierarchy: I$ + D$ over shared levels over main memory. */
class MemHierarchy
{
  public:
    struct Params {
        CacheParams icache{"icache", 16 * 1024, 2, 32, 1, 16, {},
                           false};
        CacheParams dcache{"dcache", 32 * 1024, 2, 32, 2, 16, {},
                           false};
        CacheParams l2{"l2", 512 * 1024, 4, 64, 10, 16, {}, false};
        /** Shared levels below the L2 (an L3, an L4...), nearest
         *  first. Empty = the paper's two-level stack. */
        std::vector<CacheParams> extraLevels;
        MemoryParams memory;
        /** Model dirty-victim write-back traffic on every level's
         *  bus (D$ and shared levels; the I$ never dirties lines).
         *  Off by default: the paper's model carries none. */
        bool modelWritebacks = false;
    };

    /**
     * Multi-core attachment: build only the private L1s and back them
     * by a shared stack owned elsewhere (the System), with every data
     * access snooped by the coherence bus first. The borrowed
     * pointers must outlive the hierarchy.
     */
    struct Attach {
        MemLevel *backend = nullptr;  //!< first shared level (the L2)
        /** The shared stack, nearest first (probes and reporting). */
        std::vector<const Cache *> shared;
        CoherenceBus *bus = nullptr;
        unsigned coreId = 0;
    };

    /** Owning mode when @p attach is null (identical to the
     *  single-core constructor), attached mode otherwise. */
    MemHierarchy(const Params &params, const Attach *attach);
    explicit MemHierarchy(const Params &params)
        : MemHierarchy(params, nullptr)
    {
    }
    MemHierarchy() : MemHierarchy(Params{}) {}

    /** True when the shared stack is borrowed from a System. */
    bool attached() const { return attach_.backend != nullptr; }

    /** Instruction fetch of the block containing @p pc. */
    Cycle fetchAccess(Addr pc, Cycle now);

    /** Data access. In attached mode the coherence bus snoops first
     *  and its penalty delays the D$ lookup. */
    Cycle dataAccess(Addr addr, Cycle now, bool is_write);

    /** Coherence-bus penalty the most recent dataAccess paid (cycles;
     *  always 0 in single-core/owning mode). CPI-stack attribution. */
    Cycle lastCohPenalty() const { return lastCohPenalty_; }

    /** Would a load of @p addr hit in the D$ right now? */
    bool dcacheProbe(Addr addr) const { return dcache_->probe(addr); }
    /** Would it hit in the first shared level (the L2)? */
    bool
    l2Probe(Addr addr) const
    {
        return sharedStack().front()->probe(addr);
    }

    /** Would it hit in ANY shared level? Load-latency classification
     *  (MemHitLevel): a hit anywhere on-chip is a cache hit, not a
     *  memory access, however deep the stack. Equals l2Probe() for
     *  the paper's two-level default. */
    bool
    sharedProbe(Addr addr) const
    {
        for (const Cache *level : sharedStack()) {
            if (level->probe(addr))
                return true;
        }
        return false;
    }

    void flush();

    /**
     * Adopt another same-geometry hierarchy's state (tags, LRU,
     * counters, prefetcher training, bus). MemHierarchy is
     * deliberately not copyable (the levels hold pointers into their
     * owner); this is the supported way to clone its state.
     */
    void copyStateFrom(const MemHierarchy &other);

    /** Drop in-flight timing state everywhere (MSHRs, bus). */
    void settle();

    /** Snapshot of every cache level, access order: I$, D$, then the
     *  shared stack nearest-first (persistence). */
    struct State {
        std::vector<CacheState> caches;
    };
    State exportState() const;
    bool importState(const State &state);

    const Cache &icache() const { return *icache_; }
    const Cache &dcache() const { return *dcache_; }
    /** The first shared level (owned or borrowed). */
    const Cache &l2() const { return *sharedStack().front(); }

    /** The shared stack below the L1s, nearest first (owned in
     *  single-core mode, borrowed from the System when attached). */
    std::size_t numSharedLevels() const { return sharedView_.size(); }
    const Cache &sharedLevel(std::size_t i) const
    {
        return *sharedView_[i];
    }

    /** Owning mode only (the System owns memory when attached). */
    const MainMemory &memory() const { return *memory_; }

    /**
     * Every cache level this hierarchy OWNS, in State order: I$, D$,
     * then the shared stack when owning. Attached hierarchies report
     * (and persist, via exportState) only their private L1s; the
     * System accounts the shared stack once.
     */
    std::vector<const Cache *> levels() const;

    const Params &params() const { return params_; }

  private:
    std::vector<Cache *> levelsMutable();
    const std::vector<const Cache *> &sharedStack() const
    {
        return sharedView_;
    }

    Params params_;
    Attach attach_;
    Cycle lastCohPenalty_ = 0;
    std::unique_ptr<MainMemory> memory_;
    std::vector<std::unique_ptr<Cache>> shared_;  //!< L2 first
    /** The shared stack as borrowed views: shared_ when owning,
     *  attach_.shared when attached (probe/report hot path). */
    std::vector<const Cache *> sharedView_;
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;
};

} // namespace reno
