#include "mem/cache.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace reno
{

Cache::Cache(const CacheParams &params, MemLevel *next)
    : params_(params), next_(next)
{
    if (!next_)
        fatal("cache %s: no next level", params_.name.c_str());
    if (params_.assoc == 0)
        fatal("cache %s: associativity must be positive",
              params_.name.c_str());
    if (params_.blockBytes == 0 ||
        (params_.blockBytes & (params_.blockBytes - 1)) != 0)
        fatal("cache %s: block size must be a positive power of two "
              "(got %u)",
              params_.name.c_str(), params_.blockBytes);
    if (params_.numMshrs == 0)
        fatal("cache %s: MSHR count must be positive",
              params_.name.c_str());
    numSets_ = params_.sizeBytes / (params_.blockBytes * params_.assoc);
    if (numSets_ == 0)
        fatal("cache %s: size smaller than one set", params_.name.c_str());
    lines_.resize(static_cast<size_t>(numSets_) * params_.assoc);
    prefetcher_ =
        makePrefetcher(params_.prefetch, params_.blockBytes,
                       params_.name);
}

Cache::Line *
Cache::findLine(Addr block)
{
    const unsigned set = setIndex(block);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == block)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr block) const
{
    return const_cast<Cache *>(this)->findLine(block);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(blockAddr(addr)) != nullptr;
}

void
Cache::fill(Addr block, Cycle now, bool dirty, bool prefetched)
{
    const unsigned set = setIndex(block);
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == block) {
            line.dirty = line.dirty || dirty;  // merged fill
            return;
        }
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        if (params_.writebackTraffic)
            next_->access(victim->tag * params_.blockBytes, now,
                          MemAccessKind::Writeback);
    }
    if (victim->valid && evictionListener_)
        evictionListener_(victim->tag * params_.blockBytes,
                          victim->dirty);
    *victim = Line{true, dirty, prefetched, block, ++lruClock_};
}

void
Cache::maybePrefetch(Addr block, bool miss, Cycle now)
{
    if (!prefetcher_)
        return;
    prefetchBuf_.clear();
    prefetcher_->observe(block, miss, prefetchBuf_);
    for (const Addr cand : prefetchBuf_) {
        if (findLine(cand))
            continue;  // already resident
        // Prefetch fills ride their own queue, not a demand MSHR:
        // the issue decision depends only on the tag array, keeping
        // tags a pure function of the demand stream (the property
        // that functional warming and checkpoint chop/resume
        // identity rely on). The timing entry is recorded only while
        // the queue has room: untracked fills are merely
        // timing-optimistic, and the bound keeps the per-access
        // retire scan O(numMshrs) instead of growing without limit
        // under cycle-0 functional warming, where no entry ever
        // retires.
        const Cycle done =
            next_->access(cand * params_.blockBytes,
                          now + params_.latency,
                          MemAccessKind::Prefetch);
        if (prefetchFills_.size() < 2 * params_.numMshrs)
            prefetchFills_[cand] = done;
        fill(cand, now + params_.latency, false, true);
        ++prefetchIssued_;
    }
}

Cycle
Cache::access(Addr addr, Cycle now, MemAccessKind kind)
{
    const Addr block = blockAddr(addr);

    if (kind == MemAccessKind::Writeback) {
        // Victim drained from the level above: update in place when
        // present (no recency change -- a drain is not reuse), else
        // pass through without allocating.
        if (Line *line = findLine(block)) {
            line->dirty = true;
            return now + params_.latency;
        }
        return next_->access(addr, now, MemAccessKind::Writeback);
    }

    const bool demand = kind != MemAccessKind::Prefetch;

    // Retire MSHRs and prefetch fills whose fills have landed
    // (timing bookkeeping only; the tag array is updated eagerly at
    // miss time).
    for (auto it = mshrs_.begin(); it != mshrs_.end();) {
        if (it->second <= now)
            it = mshrs_.erase(it);
        else
            ++it;
    }
    for (auto it = prefetchFills_.begin();
         it != prefetchFills_.end();) {
        if (it->second <= now)
            it = prefetchFills_.erase(it);
        else
            ++it;
    }

    if (Line *line = findLine(block)) {
        line->lruStamp = ++lruClock_;
        if (demand && line->prefetched) {
            ++prefetchUseful_;
            line->prefetched = false;
        }
        if (kind == MemAccessKind::Write)
            line->dirty = true;
        Cycle ready;
        // The block may still be in flight (a demand miss or a
        // prefetch fill): an access before the fill completes merges
        // into the outstanding request.
        if (auto it = mshrs_.find(block); it != mshrs_.end()) {
            ++mshrMerges_;
            ready = it->second + params_.latency;
        } else if (auto pf = prefetchFills_.find(block);
                   pf != prefetchFills_.end()) {
            ++mshrMerges_;
            ready = pf->second + params_.latency;
        } else {
            ++hits_;
            ready = now + params_.latency;
        }
        if (demand)
            maybePrefetch(block, false, now);
        return ready;
    }
    ++misses_;

    // All MSHRs busy: wait for the earliest one to retire first.
    Cycle start = now;
    if (mshrs_.size() >= params_.numMshrs) {
        Cycle earliest = InvalidCycle;
        for (const auto &[blk, fill_cycle] : mshrs_) {
            if (fill_cycle < earliest)
                earliest = fill_cycle;
        }
        for (auto it = mshrs_.begin(); it != mshrs_.end();) {
            if (it->second <= earliest)
                it = mshrs_.erase(it);
            else
                ++it;
        }
        start = std::max(start, earliest);
    }

    const Cycle fill_done =
        next_->access(block * params_.blockBytes,
                      start + params_.latency,
                      demand ? MemAccessKind::Read
                             : MemAccessKind::Prefetch);
    mshrs_[block] = fill_done;
    // Eager tag fill: the line is installed (and a victim evicted) at
    // miss time; the MSHR entry carries the timing. The prefetched
    // flag marks only lines installed by THIS level's prefetcher
    // (maybePrefetch), so a pass-through Prefetch fill from an upper
    // level never credits this level's prefetchUseful counter.
    fill(block, start + params_.latency,
         kind == MemAccessKind::Write, false);
    if (demand)
        maybePrefetch(block, true, now);
    return fill_done + params_.latency;
}

Cache::CohResult
Cache::invalidateBlock(Addr addr)
{
    Line *line = findLine(blockAddr(addr));
    if (!line)
        return {};
    const CohResult result{true, line->dirty};
    *line = Line{};
    return result;
}

Cache::CohResult
Cache::cleanBlock(Addr addr)
{
    Line *line = findLine(blockAddr(addr));
    if (!line)
        return {};
    const CohResult result{true, line->dirty};
    line->dirty = false;
    return result;
}

void
Cache::flush()
{
    for (auto &line : lines_) {
        if (line.valid && evictionListener_)
            evictionListener_(line.tag * params_.blockBytes,
                              line.dirty);
        line = Line{};
    }
    mshrs_.clear();
    prefetchFills_.clear();
    if (prefetcher_)
        prefetcher_->reset();
}

void
Cache::copyStateFrom(const Cache &other)
{
    if (numSets_ != other.numSets_ ||
        params_.assoc != other.params_.assoc ||
        params_.blockBytes != other.params_.blockBytes ||
        params_.prefetch.kind != other.params_.prefetch.kind ||
        params_.prefetch.tableEntries !=
            other.params_.prefetch.tableEntries)
        fatal("cache %s: copyStateFrom geometry mismatch",
              params_.name.c_str());
    lines_ = other.lines_;
    lruClock_ = other.lruClock_;
    mshrs_ = other.mshrs_;
    prefetchFills_ = other.prefetchFills_;
    hits_ = other.hits_;
    misses_ = other.misses_;
    mshrMerges_ = other.mshrMerges_;
    writebacks_ = other.writebacks_;
    prefetchIssued_ = other.prefetchIssued_;
    prefetchUseful_ = other.prefetchUseful_;
    if (prefetcher_ && other.prefetcher_ &&
        !prefetcher_->importState(other.prefetcher_->exportState()))
        fatal("cache %s: copyStateFrom prefetcher mismatch",
              params_.name.c_str());
}

CacheState
Cache::exportState() const
{
    CacheState state;
    state.lruClock = lruClock_;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (!lines_[i].valid)
            continue;
        state.validLines.push_back(
            {static_cast<std::uint32_t>(i), lines_[i].tag,
             lines_[i].lruStamp, lines_[i].dirty,
             lines_[i].prefetched});
    }
    if (prefetcher_)
        state.prefetch = prefetcher_->exportState();
    return state;
}

bool
Cache::importState(const CacheState &state)
{
    for (auto &line : lines_)
        line = Line{};
    mshrs_.clear();
    prefetchFills_.clear();
    lruClock_ = state.lruClock;
    for (const CacheState::Line &l : state.validLines) {
        if (l.index >= lines_.size())
            return false;
        lines_[l.index] =
            {true, l.dirty, l.prefetched, l.tag, l.lruStamp};
    }
    if (prefetcher_)
        return prefetcher_->importState(state.prefetch);
    return state.prefetch.entries.empty();
}

} // namespace reno
