#include "mem/cache.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace reno
{

Cache::Cache(const CacheParams &params, NextLevel next, void *next_ctx)
    : params_(params), next_(next), nextCtx_(next_ctx)
{
    if (params_.blockBytes == 0 || params_.assoc == 0)
        fatal("cache %s: bad geometry", params_.name.c_str());
    numSets_ = params_.sizeBytes / (params_.blockBytes * params_.assoc);
    if (numSets_ == 0)
        fatal("cache %s: size smaller than one set", params_.name.c_str());
    lines_.resize(static_cast<size_t>(numSets_) * params_.assoc);
}

bool
Cache::probe(Addr addr) const
{
    const Addr block = blockAddr(addr);
    const unsigned set = setIndex(block);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == block)
            return true;
    }
    return false;
}

void
Cache::fill(Addr block)
{
    const unsigned set = setIndex(block);
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == block)
            return;  // already present (merged fill)
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = block;
    victim->lruStamp = ++lruClock_;
}

Cycle
Cache::access(Addr addr, Cycle now, bool is_write)
{
    (void)is_write;  // write-allocate; no dirty tracking
    const Addr block = blockAddr(addr);
    const unsigned set = setIndex(block);

    // Retire MSHRs whose fills have landed (timing bookkeeping only;
    // the tag array is updated eagerly at miss time).
    for (auto it = mshrs_.begin(); it != mshrs_.end();) {
        if (it->second <= now)
            it = mshrs_.erase(it);
        else
            ++it;
    }

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == block) {
            line.lruStamp = ++lruClock_;
            // The block may still be in flight: an access before the
            // fill completes merges into the outstanding miss.
            if (auto it = mshrs_.find(block); it != mshrs_.end()) {
                ++mshrMerges_;
                return it->second + params_.latency;
            }
            ++hits_;
            return now + params_.latency;
        }
    }
    ++misses_;

    // All MSHRs busy: wait for the earliest one to retire first.
    Cycle start = now;
    if (mshrs_.size() >= params_.numMshrs) {
        Cycle earliest = InvalidCycle;
        for (const auto &[blk, fill_cycle] : mshrs_) {
            if (fill_cycle < earliest)
                earliest = fill_cycle;
        }
        for (auto it = mshrs_.begin(); it != mshrs_.end();) {
            if (it->second <= earliest)
                it = mshrs_.erase(it);
            else
                ++it;
        }
        start = std::max(start, earliest);
    }

    const Cycle fill_done =
        next_(nextCtx_, block * params_.blockBytes, start + params_.latency);
    mshrs_[block] = fill_done;
    // Eager tag fill: the line is installed (and a victim evicted) at
    // miss time; the MSHR entry carries the timing.
    fill(block);
    return fill_done + params_.latency;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
    mshrs_.clear();
}

void
Cache::copyStateFrom(const Cache &other)
{
    if (numSets_ != other.numSets_ ||
        params_.assoc != other.params_.assoc ||
        params_.blockBytes != other.params_.blockBytes)
        fatal("cache %s: copyStateFrom geometry mismatch",
              params_.name.c_str());
    lines_ = other.lines_;
    lruClock_ = other.lruClock_;
    mshrs_ = other.mshrs_;
    hits_ = other.hits_;
    misses_ = other.misses_;
    mshrMerges_ = other.mshrMerges_;
}

CacheState
Cache::exportState() const
{
    CacheState state;
    state.lruClock = lruClock_;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (!lines_[i].valid)
            continue;
        state.validLines.push_back(
            {static_cast<std::uint32_t>(i), lines_[i].tag,
             lines_[i].lruStamp});
    }
    return state;
}

bool
Cache::importState(const CacheState &state)
{
    for (auto &line : lines_)
        line.valid = false;
    mshrs_.clear();
    lruClock_ = state.lruClock;
    for (const CacheState::Line &l : state.validLines) {
        if (l.index >= lines_.size())
            return false;
        lines_[l.index] = {true, l.tag, l.lruStamp};
    }
    return true;
}

MemHierarchy::MemHierarchy(const Params &params)
    : params_(params),
      l2_(params.l2, &MemHierarchy::memEntry, this),
      icache_(params.icache, &MemHierarchy::l2Entry, this),
      dcache_(params.dcache, &MemHierarchy::l2Entry, this),
      l2BlockBytes_(params.l2.blockBytes)
{
}

std::uint64_t
MemHierarchy::l2Entry(void *ctx, Addr block_addr, Cycle now)
{
    auto *self = static_cast<MemHierarchy *>(ctx);
    return self->l2_.access(block_addr, now, false);
}

std::uint64_t
MemHierarchy::memEntry(void *ctx, Addr block_addr, Cycle now)
{
    (void)block_addr;
    auto *self = static_cast<MemHierarchy *>(ctx);
    return self->memoryAccess(now);
}

Cycle
MemHierarchy::memoryAccess(Cycle now)
{
    // One L2 block crosses the bus in blockBytes / busBytes beats, each
    // taking busClockDivider core cycles.
    const unsigned beats =
        (l2BlockBytes_ + params_.memory.busBytes - 1) /
        params_.memory.busBytes;
    const unsigned transfer = beats * params_.memory.busClockDivider;

    const Cycle start = std::max(now, busFreeCycle_);
    const Cycle done = start + params_.memory.accessLatency + transfer;
    busFreeCycle_ = done;
    return done;
}

bool
MemHierarchy::l2Probe(Addr addr) const
{
    return l2_.probe(addr);
}

Cycle
MemHierarchy::fetchAccess(Addr pc, Cycle now)
{
    return icache_.access(pc, now, false);
}

Cycle
MemHierarchy::dataAccess(Addr addr, Cycle now, bool is_write)
{
    return dcache_.access(addr, now, is_write);
}

void
MemHierarchy::flush()
{
    icache_.flush();
    dcache_.flush();
    l2_.flush();
    busFreeCycle_ = 0;
}

void
MemHierarchy::copyStateFrom(const MemHierarchy &other)
{
    icache_.copyStateFrom(other.icache_);
    dcache_.copyStateFrom(other.dcache_);
    l2_.copyStateFrom(other.l2_);
    busFreeCycle_ = other.busFreeCycle_;
}

void
MemHierarchy::settle()
{
    icache_.settle();
    dcache_.settle();
    l2_.settle();
    busFreeCycle_ = 0;
}

MemHierarchy::State
MemHierarchy::exportState() const
{
    return {icache_.exportState(), dcache_.exportState(),
            l2_.exportState()};
}

bool
MemHierarchy::importState(const State &state)
{
    busFreeCycle_ = 0;
    return icache_.importState(state.icache) &&
           dcache_.importState(state.dcache) &&
           l2_.importState(state.l2);
}

} // namespace reno
