/**
 * @file
 * Main memory behind a contended bus, as the terminal MemLevel of a
 * hierarchy. Reproduces the paper's model (section 4.1): a fixed DRAM
 * access latency plus the block-transfer time over a bus narrower and
 * slower than the core, serialized on a single bus-free cycle.
 */
#pragma once

#include <cstdint>
#include <string>

#include "mem/mem_level.hpp"

namespace reno
{

/** Main-memory + bus timing parameters. */
struct MemoryParams {
    unsigned accessLatency = 100;  //!< DRAM access cycles
    unsigned busBytes = 16;        //!< bus width
    unsigned busClockDivider = 4;  //!< bus runs at core clock / divider
};

/** The terminal level: always hits, pays latency + bus transfer. */
class MainMemory final : public MemLevel
{
  public:
    /**
     * @param transfer_bytes  bytes moved per request: the block size
     *                        of the cache level directly above.
     * fatal() on a zero bus width or divider.
     */
    MainMemory(const MemoryParams &params, unsigned transfer_bytes);

    Cycle access(Addr addr, Cycle now, MemAccessKind kind) override;
    bool probe(Addr) const override { return true; }
    void flush() override { busFreeCycle_ = 0; }
    const std::string &name() const override { return name_; }

    /** Drop in-flight timing state (the bus). */
    void settle() { busFreeCycle_ = 0; }

    void
    copyStateFrom(const MainMemory &other)
    {
        busFreeCycle_ = other.busFreeCycle_;
        reads_ = other.reads_;
        writebacks_ = other.writebacks_;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    MemoryParams params_;
    unsigned transferCycles_;
    std::string name_ = "memory";
    Cycle busFreeCycle_ = 0;
    std::uint64_t reads_ = 0;       //!< demand + prefetch fills
    std::uint64_t writebacks_ = 0;  //!< dirty victims drained
};

} // namespace reno
