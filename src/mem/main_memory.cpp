#include "mem/main_memory.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace reno
{

MainMemory::MainMemory(const MemoryParams &params,
                       unsigned transfer_bytes)
    : params_(params)
{
    if (params_.busBytes == 0)
        fatal("main memory: bus width must be positive");
    if (params_.busClockDivider == 0)
        fatal("main memory: bus clock divider must be positive");
    if (transfer_bytes == 0)
        fatal("main memory: transfer size must be positive");
    // One block crosses the bus in transfer_bytes / busBytes beats,
    // each taking busClockDivider core cycles.
    const unsigned beats =
        (transfer_bytes + params_.busBytes - 1) / params_.busBytes;
    transferCycles_ = beats * params_.busClockDivider;
}

Cycle
MainMemory::access(Addr addr, Cycle now, MemAccessKind kind)
{
    (void)addr;
    const Cycle start = std::max(now, busFreeCycle_);
    if (kind == MemAccessKind::Writeback) {
        // A drained victim occupies the bus for its transfer; the
        // DRAM write completes off the critical path.
        ++writebacks_;
        const Cycle done = start + transferCycles_;
        busFreeCycle_ = done;
        return done;
    }
    ++reads_;
    const Cycle done =
        start + params_.accessLatency + transferCycles_;
    busFreeCycle_ = done;
    return done;
}

} // namespace reno
