#include "mem/hierarchy.hpp"

#include "coherence/mesi.hpp"
#include "common/log.hpp"

namespace reno
{

MemHierarchy::MemHierarchy(const Params &params, const Attach *attach)
    : params_(params)
{
    if (!attach) {
        // Assemble back to front: memory, then the shared stack
        // deepest first, then the split L1s. The bus moves one block
        // of the deepest cache level per request.
        std::vector<CacheParams> stack;
        stack.push_back(params_.l2);
        for (const CacheParams &extra : params_.extraLevels)
            stack.push_back(extra);
        if (params_.modelWritebacks) {
            for (CacheParams &level : stack)
                level.writebackTraffic = true;
        }

        memory_ = std::make_unique<MainMemory>(params_.memory,
                                               stack.back().blockBytes);
        shared_.resize(stack.size());
        for (std::size_t i = stack.size(); i-- > 0;) {
            MemLevel *next = i + 1 < stack.size()
                                 ? static_cast<MemLevel *>(
                                       shared_[i + 1].get())
                                 : static_cast<MemLevel *>(memory_.get());
            shared_[i] = std::make_unique<Cache>(stack[i], next);
        }
        for (const auto &level : shared_)
            sharedView_.push_back(level.get());
    } else {
        // Attached mode: the shared stack (and main memory) belong to
        // the System; this hierarchy builds only the private L1s on
        // top of the borrowed backend, and wires its D$ into the
        // coherence bus.
        if (!attach->backend || attach->shared.empty())
            fatal("memory hierarchy: attach without a shared stack");
        attach_ = *attach;
        sharedView_ = attach_.shared;
    }

    MemLevel *const l1_next =
        attach ? attach_.backend
               : static_cast<MemLevel *>(shared_[0].get());
    CacheParams icache_params = params_.icache;
    CacheParams dcache_params = params_.dcache;
    if (params_.modelWritebacks)
        dcache_params.writebackTraffic = true;
    icache_ = std::make_unique<Cache>(icache_params, l1_next);
    dcache_ = std::make_unique<Cache>(dcache_params, l1_next);

    if (attach_.bus) {
        attach_.bus->attachCore(attach_.coreId, dcache_.get());
        CoherenceBus *const bus = attach_.bus;
        const unsigned core = attach_.coreId;
        dcache_->setEvictionListener(
            [bus, core](Addr addr, bool dirty) {
                bus->onEviction(core, addr, dirty);
            });
    }
}

std::vector<Cache *>
MemHierarchy::levelsMutable()
{
    std::vector<Cache *> out;
    out.reserve(2 + shared_.size());
    out.push_back(icache_.get());
    out.push_back(dcache_.get());
    for (const auto &level : shared_)
        out.push_back(level.get());
    return out;
}

std::vector<const Cache *>
MemHierarchy::levels() const
{
    const std::vector<Cache *> mut =
        const_cast<MemHierarchy *>(this)->levelsMutable();
    return {mut.begin(), mut.end()};
}

Cycle
MemHierarchy::fetchAccess(Addr pc, Cycle now)
{
    return icache_->access(pc, now, MemAccessKind::Read);
}

Cycle
MemHierarchy::dataAccess(Addr addr, Cycle now, bool is_write)
{
    lastCohPenalty_ = 0;
    if (attach_.bus) {
        lastCohPenalty_ = attach_.bus->beforeDataAccess(
            attach_.coreId, addr, is_write, now);
        now += lastCohPenalty_;
    }
    return dcache_->access(addr, now,
                           is_write ? MemAccessKind::Write
                                    : MemAccessKind::Read);
}

void
MemHierarchy::flush()
{
    for (Cache *level : levelsMutable())
        level->flush();
    if (memory_)
        memory_->flush();
}

void
MemHierarchy::copyStateFrom(const MemHierarchy &other)
{
    if (shared_.size() != other.shared_.size())
        fatal("memory hierarchy: copyStateFrom depth mismatch "
              "(%zu shared levels vs %zu)",
              shared_.size(), other.shared_.size());
    icache_->copyStateFrom(*other.icache_);
    dcache_->copyStateFrom(*other.dcache_);
    for (std::size_t i = 0; i < shared_.size(); ++i)
        shared_[i]->copyStateFrom(*other.shared_[i]);
    if (memory_)
        memory_->copyStateFrom(*other.memory_);
}

void
MemHierarchy::settle()
{
    for (Cache *level : levelsMutable())
        level->settle();
    if (memory_)
        memory_->settle();
}

MemHierarchy::State
MemHierarchy::exportState() const
{
    State state;
    for (const Cache *level : levels())
        state.caches.push_back(level->exportState());
    return state;
}

bool
MemHierarchy::importState(const State &state)
{
    std::vector<Cache *> levels = levelsMutable();
    if (state.caches.size() != levels.size())
        return false;
    if (memory_)
        memory_->settle();
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (!levels[i]->importState(state.caches[i]))
            return false;
    }
    return true;
}

} // namespace reno
