#include "mem/hierarchy.hpp"

#include "common/log.hpp"

namespace reno
{

MemHierarchy::MemHierarchy(const Params &params) : params_(params)
{
    // Assemble back to front: memory, then the shared stack deepest
    // first, then the split L1s. The bus moves one block of the
    // deepest cache level per request.
    std::vector<CacheParams> stack;
    stack.push_back(params_.l2);
    for (const CacheParams &extra : params_.extraLevels)
        stack.push_back(extra);
    if (params_.modelWritebacks) {
        for (CacheParams &level : stack)
            level.writebackTraffic = true;
    }

    memory_ = std::make_unique<MainMemory>(params_.memory,
                                           stack.back().blockBytes);
    shared_.resize(stack.size());
    for (std::size_t i = stack.size(); i-- > 0;) {
        MemLevel *next = i + 1 < stack.size()
                             ? static_cast<MemLevel *>(
                                   shared_[i + 1].get())
                             : static_cast<MemLevel *>(memory_.get());
        shared_[i] = std::make_unique<Cache>(stack[i], next);
    }

    CacheParams icache_params = params_.icache;
    CacheParams dcache_params = params_.dcache;
    if (params_.modelWritebacks)
        dcache_params.writebackTraffic = true;
    icache_ = std::make_unique<Cache>(icache_params, shared_[0].get());
    dcache_ = std::make_unique<Cache>(dcache_params, shared_[0].get());
}

std::vector<Cache *>
MemHierarchy::levelsMutable()
{
    std::vector<Cache *> out;
    out.reserve(2 + shared_.size());
    out.push_back(icache_.get());
    out.push_back(dcache_.get());
    for (const auto &level : shared_)
        out.push_back(level.get());
    return out;
}

std::vector<const Cache *>
MemHierarchy::levels() const
{
    const std::vector<Cache *> mut =
        const_cast<MemHierarchy *>(this)->levelsMutable();
    return {mut.begin(), mut.end()};
}

Cycle
MemHierarchy::fetchAccess(Addr pc, Cycle now)
{
    return icache_->access(pc, now, MemAccessKind::Read);
}

Cycle
MemHierarchy::dataAccess(Addr addr, Cycle now, bool is_write)
{
    return dcache_->access(addr, now,
                           is_write ? MemAccessKind::Write
                                    : MemAccessKind::Read);
}

void
MemHierarchy::flush()
{
    for (Cache *level : levelsMutable())
        level->flush();
    memory_->flush();
}

void
MemHierarchy::copyStateFrom(const MemHierarchy &other)
{
    if (shared_.size() != other.shared_.size())
        fatal("memory hierarchy: copyStateFrom depth mismatch "
              "(%zu shared levels vs %zu)",
              shared_.size(), other.shared_.size());
    icache_->copyStateFrom(*other.icache_);
    dcache_->copyStateFrom(*other.dcache_);
    for (std::size_t i = 0; i < shared_.size(); ++i)
        shared_[i]->copyStateFrom(*other.shared_[i]);
    memory_->copyStateFrom(*other.memory_);
}

void
MemHierarchy::settle()
{
    for (Cache *level : levelsMutable())
        level->settle();
    memory_->settle();
}

MemHierarchy::State
MemHierarchy::exportState() const
{
    State state;
    for (const Cache *level : levels())
        state.caches.push_back(level->exportState());
    return state;
}

bool
MemHierarchy::importState(const State &state)
{
    std::vector<Cache *> levels = levelsMutable();
    if (state.caches.size() != levels.size())
        return false;
    memory_->settle();
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (!levels[i]->importState(state.caches[i]))
            return false;
    }
    return true;
}

} // namespace reno
