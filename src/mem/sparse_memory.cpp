#include "mem/sparse_memory.hpp"

#include <algorithm>
#include <string>

#include "common/log.hpp"

namespace reno
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr >> PageBits);
    return it == pages_.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    auto [it, inserted] = pages_.try_emplace(addr >> PageBits);
    if (inserted)
        it->second.assign(PageSize, 0);
    return it->second;
}

std::uint8_t
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr & (PageSize - 1)] : 0;
}

void
SparseMemory::writeByte(Addr addr, std::uint8_t value)
{
    getPage(addr)[addr & (PageSize - 1)] = value;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    // Fast path: the access lies within one page (one map lookup).
    const Addr off = addr & (PageSize - 1);
    if (off + size <= PageSize) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= std::uint64_t{(*page)[off + i]} << (8 * i);
        return value;
    }
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= std::uint64_t{readByte(addr + i)} << (8 * i);
    return value;
}

void
SparseMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    // Fast path: the access lies within one page (one map lookup).
    const Addr off = addr & (PageSize - 1);
    if (off + size <= PageSize) {
        Page &page = getPage(addr);
        for (unsigned i = 0; i < size; ++i)
            page[off + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
SparseMemory::load(Addr base, const std::uint8_t *data, size_t len)
{
    // Page-chunked: one map lookup per page, not per byte.
    size_t i = 0;
    while (i < len) {
        const Addr addr = base + i;
        const Addr off = addr & (PageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - i, PageSize - off);
        Page &page = getPage(addr);
        std::copy(data + i, data + i + chunk, page.begin() + off);
        i += chunk;
    }
}

std::string
SparseMemory::readString(Addr addr) const
{
    std::string out;
    for (Addr a = addr; a < addr + 65536; ++a) {
        const char c = static_cast<char>(readByte(a));
        if (c == '\0')
            return out;
        out += c;
    }
    panic("readString: unterminated string at 0x%llx",
          static_cast<unsigned long long>(addr));
}

std::uint64_t
SparseMemory::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 0x100000001b3ULL;
    };
    for (const auto &[page_num, page] : pages_) {
        for (unsigned i = 0; i < 8; ++i)
            mix(static_cast<std::uint8_t>(page_num >> (8 * i)));
        for (std::uint8_t b : page)
            mix(b);
    }
    return h;
}

} // namespace reno
