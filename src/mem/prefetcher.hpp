/**
 * @file
 * Pluggable hardware prefetchers. A prefetcher observes the demand
 * block stream of the cache level it is attached to and proposes
 * blocks to fill ahead of demand; the owning Cache issues the fills
 * through its next level as MemAccessKind::Prefetch traffic.
 *
 * Two engines are provided:
 *  - NextLine: on a demand miss to block B, fetch B+1 .. B+degree.
 *  - Stride:   a region table (direct-mapped by aligned memory region)
 *    learns the per-region block stride of the demand stream; after
 *    two confirmations it runs `degree` strides ahead. Region-based
 *    detection needs no program counter, so it trains identically
 *    from the core's timing path and from the functional-warming
 *    stream of sampled simulation.
 *
 * Training is a pure function of the demand block stream (never of
 * cycle times), so warmed prefetcher tables compose across sampled-
 * simulation checkpoint boundaries exactly like cache tags; the
 * table is exported/imported alongside them.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Which prefetch engine a cache level runs. */
enum class PrefetchKind : std::uint8_t { None, NextLine, Stride };

/** Display name of a prefetch kind ("none", "nextline", "stride"). */
const char *prefetchKindName(PrefetchKind kind);

/** Configuration of one level's prefetcher. */
struct PrefetcherParams {
    PrefetchKind kind = PrefetchKind::None;
    unsigned degree = 2;         //!< blocks fetched ahead per trigger
    unsigned tableEntries = 64;  //!< stride: region-table entries
    unsigned regionBytes = 4096; //!< stride: detection region size
};

/** Snapshot of a prefetcher's training state (functional warming). */
struct PrefetchState {
    struct Entry {
        std::uint32_t index = 0;   //!< region-table slot
        Addr regionTag = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
    };
    std::vector<Entry> entries;  //!< only populated (tagged) slots
};

/** A prefetch engine attached to one cache level. */
class Prefetcher
{
  public:
    explicit Prefetcher(const PrefetcherParams &params)
        : params_(params)
    {
    }
    virtual ~Prefetcher() = default;

    /**
     * Observe a demand access to @p block (block number, not byte
     * address) and append candidate block numbers to @p out. Must be
     * deterministic in the demand stream alone.
     */
    virtual void observe(Addr block, bool miss,
                         std::vector<Addr> &out) = 0;

    /** Export / import training state (checkpoint persistence). */
    virtual PrefetchState exportState() const { return {}; }
    virtual bool importState(const PrefetchState &state)
    {
        return state.entries.empty();
    }

    /** Forget all training. */
    virtual void reset() {}

    const PrefetcherParams &params() const { return params_; }

  protected:
    PrefetcherParams params_;
};

/**
 * Build the engine @p params asks for; nullptr for PrefetchKind::None.
 * @p blockBytes is the owning cache's block size (region-to-block
 * conversion); fatal() on invalid parameters (zero degree, zero table,
 * region smaller than a block).
 */
std::unique_ptr<Prefetcher> makePrefetcher(const PrefetcherParams &params,
                                           unsigned blockBytes,
                                           const std::string &owner);

} // namespace reno
