/**
 * @file
 * Sparse functional memory: a 4KB-page map over a 64-bit address
 * space. Holds the architectural memory contents; the cache models in
 * cache.hpp are timing-only and read their data from here (oracle
 * style, as in SimpleScalar).
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Byte-addressable sparse memory with on-demand page allocation. */
class SparseMemory
{
  public:
    static constexpr unsigned PageBits = 12;
    static constexpr Addr PageSize = Addr{1} << PageBits;

    using Page = std::vector<std::uint8_t>;

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /** Little-endian multi-byte access, @p size in {1, 2, 4, 8}. */
    std::uint64_t read(Addr addr, unsigned size) const;
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Copy a buffer into memory (program loading). */
    void load(Addr base, const std::uint8_t *data, size_t len);

    /** Read a NUL-terminated string (bounded at 64KB). */
    std::string readString(Addr addr) const;

    /**
     * FNV-1a digest over all allocated pages, including each page's
     * address. Used by tests to compare final memory states between
     * the emulator and the timing core.
     */
    std::uint64_t digest() const;

    /** Number of allocated 4KB pages. */
    size_t numPages() const { return pages_.size(); }

    /** Allocated pages, keyed by page number (addr >> PageBits). */
    const std::map<Addr, Page> &pages() const { return pages_; }

    /**
     * Checkpointing: a snapshot is a full copy of the allocated pages;
     * restore replaces the current contents with a snapshot's. Two
     * memories are equal iff they hold the same pages with the same
     * bytes (an all-zero allocated page differs from an absent one,
     * matching digest()).
     */
    SparseMemory snapshot() const { return *this; }
    void restore(const SparseMemory &snap) { pages_ = snap.pages_; }
    bool operator==(const SparseMemory &other) const = default;

  private:
    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::map<Addr, Page> pages_;
};

} // namespace reno
