#include "mem/prefetcher.hpp"

#include "common/log.hpp"

namespace reno
{

const char *
prefetchKindName(PrefetchKind kind)
{
    switch (kind) {
      case PrefetchKind::None:
        return "none";
      case PrefetchKind::NextLine:
        return "nextline";
      case PrefetchKind::Stride:
        return "stride";
    }
    return "?";
}

namespace
{

/** Fetch the next `degree` sequential blocks on a demand miss. */
class NextLinePrefetcher final : public Prefetcher
{
  public:
    using Prefetcher::Prefetcher;

    void
    observe(Addr block, bool miss, std::vector<Addr> &out) override
    {
        if (!miss)
            return;
        for (unsigned d = 1; d <= params_.degree; ++d)
            out.push_back(block + d);
    }
};

/**
 * Region-table stride detector. Each aligned `regionBytes` region
 * tracks the last demand block and the last observed block stride;
 * two consecutive confirmations of the same non-zero stride arm the
 * entry, and every further confirming access runs `degree` strides
 * ahead of the demand block.
 */
class StridePrefetcher final : public Prefetcher
{
  public:
    StridePrefetcher(const PrefetcherParams &params,
                     unsigned block_bytes)
        : Prefetcher(params),
          blocksPerRegion_(params.regionBytes / block_bytes),
          table_(params.tableEntries)
    {
    }

    void
    observe(Addr block, bool miss, std::vector<Addr> &out) override
    {
        (void)miss;  // stride trains on the whole demand stream
        const Addr region = block / blocksPerRegion_;
        Entry &e = table_[region % table_.size()];
        if (!e.live || e.regionTag != region) {
            e = Entry{true, region, block, 0, 0};
            return;
        }
        const std::int64_t stride =
            static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(e.lastBlock);
        // Same-block repeats (several words per block in a sequential
        // walk) carry no stride information: skip them rather than
        // resetting the learned stride.
        if (stride == 0)
            return;
        if (stride == e.stride) {
            if (e.confidence < SaturatedConfidence)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.lastBlock = block;
        if (e.confidence < ArmThreshold)
            return;
        for (unsigned d = 1; d <= params_.degree; ++d) {
            const std::int64_t cand =
                static_cast<std::int64_t>(block) +
                e.stride * static_cast<std::int64_t>(d);
            if (cand < 0)
                break;
            out.push_back(static_cast<Addr>(cand));
        }
    }

    PrefetchState
    exportState() const override
    {
        PrefetchState state;
        for (std::size_t i = 0; i < table_.size(); ++i) {
            const Entry &e = table_[i];
            if (!e.live)
                continue;
            state.entries.push_back(
                {static_cast<std::uint32_t>(i), e.regionTag,
                 e.lastBlock, e.stride, e.confidence});
        }
        return state;
    }

    bool
    importState(const PrefetchState &state) override
    {
        reset();
        for (const PrefetchState::Entry &e : state.entries) {
            if (e.index >= table_.size())
                return false;
            table_[e.index] =
                Entry{true, e.regionTag, e.lastBlock, e.stride,
                      e.confidence};
        }
        return true;
    }

    void
    reset() override
    {
        for (Entry &e : table_)
            e = Entry{};
    }

  private:
    static constexpr std::uint32_t ArmThreshold = 2;
    static constexpr std::uint32_t SaturatedConfidence = 8;

    struct Entry {
        bool live = false;
        Addr regionTag = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
    };

    unsigned blocksPerRegion_;
    std::vector<Entry> table_;
};

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const PrefetcherParams &params, unsigned blockBytes,
               const std::string &owner)
{
    if (params.kind == PrefetchKind::None)
        return nullptr;
    if (params.degree == 0)
        fatal("cache %s: prefetch degree must be positive",
              owner.c_str());
    if (params.kind == PrefetchKind::NextLine)
        return std::make_unique<NextLinePrefetcher>(params);
    if (params.tableEntries == 0)
        fatal("cache %s: stride prefetcher needs a non-empty table",
              owner.c_str());
    if (params.regionBytes < blockBytes)
        fatal("cache %s: stride region (%u B) smaller than a block "
              "(%u B)",
              owner.c_str(), params.regionBytes, blockBytes);
    return std::make_unique<StridePrefetcher>(params, blockBytes);
}

} // namespace reno
