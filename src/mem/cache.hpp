/**
 * @file
 * Timing-only cache and memory-hierarchy models.
 *
 * The hierarchy reproduces the paper's configuration (section 4.1):
 * 16KB 2-way 32B 1-cycle I$, 32KB 2-way 32B 2-cycle D$, 512KB 4-way
 * 64B 10-cycle L2, 100-cycle main memory reached over a 16B bus
 * clocked at one quarter of the core frequency, and a maximum of 16
 * outstanding misses (MSHRs).
 *
 * The models carry no data (data lives in SparseMemory); an access
 * returns the cycle at which its data is available.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace reno
{

/** Geometry and latency of one cache level. */
struct CacheParams {
    std::string name = "cache";
    unsigned sizeBytes = 16 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned latency = 1;       //!< access latency in cycles
    unsigned numMshrs = 16;     //!< max outstanding misses
};

/**
 * A set-associative, LRU, timing-only cache with MSHR-based miss
 * merging. Misses are forwarded to a "next level" latency callback.
 */
class Cache
{
  public:
    using NextLevel = std::uint64_t (*)(void *ctx, Addr block_addr,
                                        Cycle now);

    Cache(const CacheParams &params, NextLevel next, void *next_ctx);

    /**
     * Access @p addr at @p now; returns the cycle the data is ready.
     * Writes allocate like reads (write-allocate); the model tracks no
     * dirty state (write-back traffic is not modeled).
     */
    Cycle access(Addr addr, Cycle now, bool is_write);

    /** True iff @p addr would hit right now (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate all blocks and forget outstanding misses. */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t mshrMerges() const { return mshrMerges_; }

  private:
    struct Line {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Addr blockAddr(Addr addr) const { return addr / params_.blockBytes; }
    unsigned setIndex(Addr block) const { return block % numSets_; }

    /** Install @p block, evicting LRU. */
    void fill(Addr block);

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;      //!< numSets_ * assoc
    std::uint64_t lruClock_ = 0;

    /** Outstanding misses: block -> fill-complete cycle. */
    std::map<Addr, Cycle> mshrs_;

    NextLevel next_;
    void *nextCtx_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t mshrMerges_ = 0;
};

/** Main-memory + bus timing parameters. */
struct MemoryParams {
    unsigned accessLatency = 100;  //!< DRAM access cycles
    unsigned busBytes = 16;        //!< bus width
    unsigned busClockDivider = 4;  //!< bus runs at core clock / divider
};

/**
 * The full hierarchy used by the core: I$ and D$ both backed by a
 * shared L2, which is backed by main memory over a contended bus.
 */
class MemHierarchy
{
  public:
    struct Params {
        CacheParams icache{"icache", 16 * 1024, 2, 32, 1, 16};
        CacheParams dcache{"dcache", 32 * 1024, 2, 32, 2, 16};
        CacheParams l2{"l2", 512 * 1024, 4, 64, 10, 16};
        MemoryParams memory;
    };

    explicit MemHierarchy(const Params &params);
    MemHierarchy() : MemHierarchy(Params{}) {}

    /** Instruction fetch of the block containing @p pc. */
    Cycle fetchAccess(Addr pc, Cycle now);

    /** Data access. */
    Cycle dataAccess(Addr addr, Cycle now, bool is_write);

    /** Would a load of @p addr hit in the D$ right now? */
    bool dcacheProbe(Addr addr) const { return dcache_.probe(addr); }
    /** Would it hit in the L2? */
    bool l2Probe(Addr addr) const;

    void flush();

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2() const { return l2_; }

  private:
    static std::uint64_t l2Entry(void *ctx, Addr block_addr, Cycle now);
    static std::uint64_t memEntry(void *ctx, Addr block_addr, Cycle now);

    Cycle memoryAccess(Cycle now);

    Params params_;
    Cache l2_;
    Cache icache_;
    Cache dcache_;
    Cycle busFreeCycle_ = 0;
    unsigned l2BlockBytes_;
};

} // namespace reno
