/**
 * @file
 * Timing-only cache and memory-hierarchy models.
 *
 * The hierarchy reproduces the paper's configuration (section 4.1):
 * 16KB 2-way 32B 1-cycle I$, 32KB 2-way 32B 2-cycle D$, 512KB 4-way
 * 64B 10-cycle L2, 100-cycle main memory reached over a 16B bus
 * clocked at one quarter of the core frequency, and a maximum of 16
 * outstanding misses (MSHRs).
 *
 * The models carry no data (data lives in SparseMemory); an access
 * returns the cycle at which its data is available.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace reno
{

/** Geometry and latency of one cache level. */
struct CacheParams {
    std::string name = "cache";
    unsigned sizeBytes = 16 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned latency = 1;       //!< access latency in cycles
    unsigned numMshrs = 16;     //!< max outstanding misses
};

/**
 * Tag/LRU snapshot of one cache, for functional warming (sampled
 * simulation). Only valid lines are recorded, so snapshots of small
 * working sets stay small. Timing state (MSHRs, bus) is deliberately
 * excluded: it is transient and settles before a measurement window.
 */
struct CacheState {
    struct Line {
        std::uint32_t index = 0;  //!< position in the line array
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };
    std::uint64_t lruClock = 0;
    std::vector<Line> validLines;
};

/**
 * A set-associative, LRU, timing-only cache with MSHR-based miss
 * merging. Misses are forwarded to a "next level" latency callback.
 */
class Cache
{
  public:
    using NextLevel = std::uint64_t (*)(void *ctx, Addr block_addr,
                                        Cycle now);

    Cache(const CacheParams &params, NextLevel next, void *next_ctx);

    /**
     * Access @p addr at @p now; returns the cycle the data is ready.
     * Writes allocate like reads (write-allocate); the model tracks no
     * dirty state (write-back traffic is not modeled).
     */
    Cycle access(Addr addr, Cycle now, bool is_write);

    /** True iff @p addr would hit right now (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate all blocks and forget outstanding misses. */
    void flush();

    /**
     * Adopt another same-geometry cache's complete state (tags, LRU,
     * in-flight misses, counters). Used to seed a core's caches from
     * a functionally warmed snapshot; fatal() on a geometry mismatch.
     */
    void copyStateFrom(const Cache &other);

    /** Drop in-flight timing state (MSHRs); tags and LRU stay. */
    void settle() { mshrs_.clear(); }

    /** Export / import the tag+LRU state (checkpoint persistence).
     *  importState returns false if a line index is out of range. */
    CacheState exportState() const;
    bool importState(const CacheState &state);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t mshrMerges() const { return mshrMerges_; }

  private:
    struct Line {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Addr blockAddr(Addr addr) const { return addr / params_.blockBytes; }
    unsigned setIndex(Addr block) const { return block % numSets_; }

    /** Install @p block, evicting LRU. */
    void fill(Addr block);

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;      //!< numSets_ * assoc
    std::uint64_t lruClock_ = 0;

    /** Outstanding misses: block -> fill-complete cycle. */
    std::map<Addr, Cycle> mshrs_;

    NextLevel next_;
    void *nextCtx_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t mshrMerges_ = 0;
};

/** Main-memory + bus timing parameters. */
struct MemoryParams {
    unsigned accessLatency = 100;  //!< DRAM access cycles
    unsigned busBytes = 16;        //!< bus width
    unsigned busClockDivider = 4;  //!< bus runs at core clock / divider
};

/**
 * The full hierarchy used by the core: I$ and D$ both backed by a
 * shared L2, which is backed by main memory over a contended bus.
 */
class MemHierarchy
{
  public:
    struct Params {
        CacheParams icache{"icache", 16 * 1024, 2, 32, 1, 16};
        CacheParams dcache{"dcache", 32 * 1024, 2, 32, 2, 16};
        CacheParams l2{"l2", 512 * 1024, 4, 64, 10, 16};
        MemoryParams memory;
    };

    explicit MemHierarchy(const Params &params);
    MemHierarchy() : MemHierarchy(Params{}) {}

    /** Instruction fetch of the block containing @p pc. */
    Cycle fetchAccess(Addr pc, Cycle now);

    /** Data access. */
    Cycle dataAccess(Addr addr, Cycle now, bool is_write);

    /** Would a load of @p addr hit in the D$ right now? */
    bool dcacheProbe(Addr addr) const { return dcache_.probe(addr); }
    /** Would it hit in the L2? */
    bool l2Probe(Addr addr) const;

    void flush();

    /**
     * Adopt another same-geometry hierarchy's state (tags, LRU,
     * counters, bus). MemHierarchy is deliberately not copyable (the
     * caches hold back-pointers into their owner); this is the
     * supported way to clone its state.
     */
    void copyStateFrom(const MemHierarchy &other);

    /** Drop in-flight timing state everywhere (MSHRs, bus). */
    void settle();

    /** Tag+LRU snapshot of all three caches (persistence). */
    struct State {
        CacheState icache, dcache, l2;
    };
    State exportState() const;
    bool importState(const State &state);

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2() const { return l2_; }

  private:
    static std::uint64_t l2Entry(void *ctx, Addr block_addr, Cycle now);
    static std::uint64_t memEntry(void *ctx, Addr block_addr, Cycle now);

    Cycle memoryAccess(Cycle now);

    Params params_;
    Cache l2_;
    Cache icache_;
    Cache dcache_;
    Cycle busFreeCycle_ = 0;
    unsigned l2BlockBytes_;
};

} // namespace reno
