/**
 * @file
 * Timing-only set-associative cache, one MemLevel of a composable
 * hierarchy (mem/hierarchy.hpp assembles the full stack).
 *
 * The model carries no data (data lives in SparseMemory); an access
 * returns the cycle at which its data is available. Misses forward to
 * the next MemLevel through a virtual call, lines carry dirty state
 * so evicted victims generate modeled write-back traffic (when the
 * level is configured for it), and an optional per-level prefetcher
 * (mem/prefetcher.hpp) rides the demand stream.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/mem_level.hpp"
#include "mem/prefetcher.hpp"

namespace reno
{

/** Geometry, latency and policy of one cache level. */
struct CacheParams {
    std::string name = "cache";
    unsigned sizeBytes = 16 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned latency = 1;       //!< access latency in cycles
    unsigned numMshrs = 16;     //!< max outstanding demand misses
    PrefetcherParams prefetch;  //!< per-level prefetch engine
    /** Send dirty victims to the next level as Writeback traffic.
     *  Off by default: the paper's model carries no write-back
     *  traffic, and the paper-geometry goldens depend on that. */
    bool writebackTraffic = false;
};

/**
 * Tag/LRU snapshot of one cache, for functional warming (sampled
 * simulation). Only valid lines are recorded, so snapshots of small
 * working sets stay small. Timing state (MSHRs, bus) is deliberately
 * excluded: it is transient and settles before a measurement window.
 * Dirty and prefetched flags, and the prefetcher's training table,
 * are architectural warm state and are included.
 */
struct CacheState {
    struct Line {
        std::uint32_t index = 0;  //!< position in the line array
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
        bool dirty = false;
        bool prefetched = false;
    };
    std::uint64_t lruClock = 0;
    std::vector<Line> validLines;
    PrefetchState prefetch;
};

/**
 * A set-associative, LRU, timing-only cache with MSHR-based miss
 * merging, write-back victim tracking and an optional prefetcher.
 * Misses are forwarded to the next MemLevel.
 */
class Cache final : public MemLevel
{
  public:
    /** fatal() on invalid geometry: zero associativity, block size,
     *  or MSHR count; a non-power-of-two block size; or a size
     *  smaller than one set. */
    Cache(const CacheParams &params, MemLevel *next);

    /**
     * Access @p addr at @p now; returns the cycle the data is ready.
     * Demand writes allocate like reads (write-allocate) and mark the
     * line dirty; evicting a dirty victim counts a write-back and,
     * with writebackTraffic set, drains it through the next level.
     * Prefetch-kind accesses are upper-level prefetch fills passing
     * through; Writeback-kind accesses update a present line in place
     * or forward without allocating.
     */
    Cycle access(Addr addr, Cycle now, MemAccessKind kind) override;

    /** True iff @p addr would hit right now (no state change). */
    bool probe(Addr addr) const override;

    /** Invalidate all blocks, forget outstanding misses and training. */
    void flush() override;

    const std::string &name() const override { return params_.name; }

    /**
     * Adopt another same-geometry cache's complete state (tags, LRU,
     * in-flight misses, counters, prefetcher training). Used to seed
     * a core's caches from a functionally warmed snapshot; fatal() on
     * a geometry mismatch.
     */
    void copyStateFrom(const Cache &other);

    /** Drop in-flight timing state (MSHRs, prefetch fills); tags,
     *  LRU and prefetcher training stay. */
    void
    settle()
    {
        mshrs_.clear();
        prefetchFills_.clear();
    }

    /** Export / import the tag+LRU+prefetcher state (checkpoint
     *  persistence). importState returns false if a line or table
     *  index is out of range. */
    CacheState exportState() const;
    bool importState(const CacheState &state);

    /**
     * Coherence hooks (multi-core): a snooping bus invalidates or
     * cleans one block in a remote L1. Both return whether the block
     * was present, and whether its line was dirty, so the bus can
     * account the flushed data. Neither notifies the eviction
     * listener: the bus is already updating its own directory.
     */
    struct CohResult {
        bool present = false;
        bool wasDirty = false;
    };
    /** Drop @p addr's block (M/E/S -> I). */
    CohResult invalidateBlock(Addr addr);
    /** Clear @p addr's block's dirty bit (M -> S intervention: the
     *  data was flushed to the shared level; the copy stays). */
    CohResult cleanBlock(Addr addr);

    /**
     * Observer of demand evictions: called with the victim's byte
     * address and dirty flag whenever fill() replaces a valid line
     * (and for every valid line dropped by flush()). A coherence bus
     * uses it to retire its directory entry for the departing block.
     */
    using EvictionListener = std::function<void(Addr, bool)>;
    void setEvictionListener(EvictionListener listener)
    {
        evictionListener_ = std::move(listener);
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t mshrMerges() const { return mshrMerges_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t prefetchIssued() const { return prefetchIssued_; }
    std::uint64_t prefetchUseful() const { return prefetchUseful_; }

    const CacheParams &params() const { return params_; }

  private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Addr blockAddr(Addr addr) const { return addr / params_.blockBytes; }
    unsigned setIndex(Addr block) const { return block % numSets_; }

    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;

    /** Install @p block, evicting (and possibly writing back) LRU. */
    void fill(Addr block, Cycle now, bool dirty, bool prefetched);

    /** Run the prefetcher on a demand access and issue its fills. */
    void maybePrefetch(Addr block, bool miss, Cycle now);

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;      //!< numSets_ * assoc
    std::uint64_t lruClock_ = 0;

    /** Outstanding demand misses: block -> fill-complete cycle. */
    std::map<Addr, Cycle> mshrs_;

    /** In-flight prefetch fills: block -> fill-complete cycle. A
     *  separate queue, so prefetch traffic never occupies (or stalls
     *  on) a demand MSHR; entries are admitted only up to a
     *  2x-numMshrs bound, so the prefetch issue decision depends on
     *  the tag array alone -- the purity functional warming and
     *  checkpoint chop/resume identity rely on -- and the map stays
     *  small. A demand access catching up to an in-flight prefetch
     *  merges into its timing like an MSHR hit. */
    std::map<Addr, Cycle> prefetchFills_;

    MemLevel *next_;
    EvictionListener evictionListener_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<Addr> prefetchBuf_;  //!< scratch, avoids per-access alloc

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t mshrMerges_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t prefetchIssued_ = 0;
    std::uint64_t prefetchUseful_ = 0;
};

} // namespace reno
