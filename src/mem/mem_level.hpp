/**
 * @file
 * The MemLevel interface: one node of a composable memory hierarchy.
 *
 * A level is anything that can answer "when is the data for this
 * address available?": a cache, main memory behind a bus, or a test
 * stub. Levels chain through plain MemLevel pointers, so a hierarchy
 * is a declaratively-configured stack of arbitrary depth instead of
 * the fixed I$/D$/L2 chain the seed wired through void* function
 * pointers.
 *
 * Levels carry no data (data lives in SparseMemory); an access returns
 * the cycle at which its data is available.
 */
#pragma once

#include <string>

#include "common/types.hpp"

namespace reno
{

/** Why an access reaches a level. */
enum class MemAccessKind : std::uint8_t {
    Read,       //!< demand load / instruction fetch
    Write,      //!< demand store (write-allocate)
    Prefetch,   //!< fill issued by an upper level's prefetcher
    Writeback,  //!< dirty victim from an upper level (non-allocating)
};

/** One level of the memory hierarchy. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Access @p addr at @p now; returns the cycle the data is ready
     * (for Writeback: the cycle the victim has drained).
     */
    virtual Cycle access(Addr addr, Cycle now, MemAccessKind kind) = 0;

    /** True iff @p addr would hit right now (no state change). */
    virtual bool probe(Addr addr) const = 0;

    /** Invalidate all state, including in-flight timing. */
    virtual void flush() = 0;

    /** Display name (stats, checkpoint labels). */
    virtual const std::string &name() const = 0;
};

} // namespace reno
