#include "uarch/store_sets.hpp"

namespace reno
{

StoreSets::StoreSets(unsigned ssit_entries, unsigned num_sets)
    : ssit_(ssit_entries), lfst_(num_sets)
{
}

unsigned
StoreSets::setOf(Addr pc) const
{
    const SsitEntry &e = ssit_[index(pc)];
    return e.valid ? e.set : InvalidSet;
}

unsigned
StoreSets::storeDispatched(Addr pc, InstSeq seq)
{
    const unsigned set = setOf(pc);
    if (set == InvalidSet)
        return InvalidSet;
    lfst_[set] = LfstEntry{true, seq};
    return set;
}

void
StoreSets::storeInactive(unsigned set, InstSeq seq)
{
    if (set == InvalidSet)
        return;
    if (lfst_[set].valid && lfst_[set].seq == seq)
        lfst_[set].valid = false;
}

InstSeq
StoreSets::lastStore(unsigned set) const
{
    return lfst_[set].seq;
}

bool
StoreSets::hasLastStore(unsigned set) const
{
    return set != InvalidSet && lfst_[set].valid;
}

void
StoreSets::trainViolation(Addr load_pc, Addr store_pc)
{
    ++trained_;
    SsitEntry &load_e = ssit_[index(load_pc)];
    SsitEntry &store_e = ssit_[index(store_pc)];
    if (!load_e.valid && !store_e.valid) {
        const unsigned set = nextSet_;
        nextSet_ = (nextSet_ + 1) % static_cast<unsigned>(lfst_.size());
        load_e = SsitEntry{true, set};
        store_e = SsitEntry{true, set};
    } else if (load_e.valid && !store_e.valid) {
        store_e = SsitEntry{true, load_e.set};
    } else if (!load_e.valid && store_e.valid) {
        load_e = SsitEntry{true, store_e.set};
    } else {
        // Both assigned: merge the load into the store's set.
        load_e.set = store_e.set;
    }
}

} // namespace reno
