/**
 * @file
 * Retirement hook shared by the commit stage and its consumers (the
 * critical-path analyzer, the pipeline tracer). Lives in its own
 * header so listeners depend on neither the Core facade nor the
 * pipeline stages.
 */
#pragma once

namespace reno
{

struct DynInst;

/** Hook invoked for every retired instruction (critical-path data). */
class RetireListener
{
  public:
    virtual ~RetireListener() = default;
    virtual void onRetire(const DynInst &inst) = 0;
};

} // namespace reno
