/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer), as used by
 * the paper ("loads are scheduled aggressively using a 64-entry store
 * sets predictor"). The SSIT maps instruction pcs to store-set ids;
 * the LFST tracks the last in-flight store of each set. A load whose
 * set has an un-issued older store in flight waits for it.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** The store-sets predictor. */
class StoreSets
{
  public:
    StoreSets(unsigned ssit_entries, unsigned num_sets);

    static constexpr unsigned InvalidSet = ~0U;

    /** Store-set id of the instruction at @p pc (InvalidSet if none). */
    unsigned setOf(Addr pc) const;

    /** Called when a store is dispatched: it becomes its set's last
     *  fetched store. Returns its set (InvalidSet if untracked). */
    unsigned storeDispatched(Addr pc, InstSeq seq);

    /** Clear the LFST entry if it still names @p seq (store issued,
     *  retired, or squashed). */
    void storeInactive(unsigned set, InstSeq seq);

    /** Last in-flight store seq of @p set, or 0 if none. */
    InstSeq lastStore(unsigned set) const;
    bool hasLastStore(unsigned set) const;

    /** Train on a memory-order violation between a load and a store. */
    void trainViolation(Addr load_pc, Addr store_pc);

    std::uint64_t violationsTrained() const { return trained_; }

  private:
    unsigned index(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) % ssit_.size());
    }

    struct SsitEntry {
        bool valid = false;
        unsigned set = 0;
    };
    struct LfstEntry {
        bool valid = false;
        InstSeq seq = 0;
    };

    std::vector<SsitEntry> ssit_;
    std::vector<LfstEntry> lfst_;
    unsigned nextSet_ = 0;
    std::uint64_t trained_ = 0;
};

} // namespace reno
