/**
 * @file
 * Per-dynamic-instruction state carried through the timing pipeline.
 * A DynInst is created at fetch from the functional emulator's
 * ExecRecord (oracle values) and lives until retirement; on a squash
 * it is recycled into the fetch buffer for replay.
 */
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "emu/emulator.hpp"
#include "reno/renamer.hpp"

namespace reno
{

/** Critical-path dominator classes recorded for the analyzer. */
enum class IssueDom : std::uint8_t {
    Dispatch,   //!< front-end delivery determined issue time
    Src0,       //!< waiting on source 0's producer
    Src1,       //!< waiting on source 1's producer
    MemDep,     //!< waiting on a store (forwarding or store set)
    Contention, //!< ready but lost issue arbitration
};

enum class CommitDom : std::uint8_t {
    SelfComplete,  //!< retired as soon as it completed
    PrevCommit,    //!< waited for older instructions / commit width
    RetirePort,    //!< waited for the store retirement port
};

/** Which level serviced a load (for critical-path bucketing). */
enum class MemHitLevel : std::uint8_t { None, L1, L2, Memory, Forwarded };

/** One in-flight dynamic instruction. */
struct DynInst {
    ExecRecord rec;
    InstSeq seq = 0;

    // --- fetch state --------------------------------------------------
    Cycle fetchCycle = 0;
    Cycle fetchReady = 0;        //!< cycle it can enter rename
    bool mispredicted = false;   //!< fetch-time prediction was wrong
    bool stallsFetch = false;    //!< currently blocking new fetch
    /** Branch whose misprediction redirect this fetch followed
     *  (0 = none); used for the critical-path redirect edge. */
    InstSeq redirectFrom = 0;

    // --- rename state --------------------------------------------------
    bool renamed = false;
    Cycle renameCycle = InvalidCycle;
    Cycle readyEarliest = InvalidCycle;  //!< dispatch-done cycle
    RenameOut ren;
    bool inIq = false;
    bool inLq = false;
    bool inSq = false;
    unsigned storeSet = ~0U;     //!< store-set id for stores

    // --- execute state --------------------------------------------------
    bool issued = false;
    Cycle issueCycle = InvalidCycle;
    Cycle completeCycle = InvalidCycle;
    MemHitLevel memLevel = MemHitLevel::None;
    bool cohDelayed = false;  //!< load paid a MESI coherence penalty
    IssueDom issueDom = IssueDom::Dispatch;
    InstSeq domProducer = 0;

    // --- retire state ---------------------------------------------------
    Cycle retireCycle = InvalidCycle;
    CommitDom commitDom = CommitDom::SelfComplete;

    // --- pipeline linkage -----------------------------------------------
    /** Intrusive issue-candidate list (MachineState::issueHead):
     *  renamed, not yet issued, not collapsed, not a syscall. The
     *  issue stage walks only these instead of the whole ROB. */
    DynInst *issuePrev = nullptr;
    DynInst *issueNext = nullptr;
    bool inIssueList = false;

    const Instruction &inst() const { return rec.inst; }
    bool isLoadInst() const { return isLoad(rec.inst.op); }
    bool isStoreInst() const { return isStore(rec.inst.op); }

    bool
    completed(Cycle now) const
    {
        return completeCycle != InvalidCycle && completeCycle <= now;
    }

    /** Does [effAddr, effAddr+size) overlap @p other's access? */
    bool
    memOverlaps(const DynInst &other) const
    {
        const Addr a0 = rec.effAddr;
        const Addr a1 = a0 + inst().info().memSize;
        const Addr b0 = other.rec.effAddr;
        const Addr b1 = b0 + other.inst().info().memSize;
        return a0 < b1 && b0 < a1;
    }

    /**
     * Reset timing state for replay after a squash (also applied by
     * InstArena::acquire before reuse). The identity fields -- rec,
     * seq and the fetch-cycle group -- are left for the caller: a
     * squash keeps them, a fresh fetch overwrites them. The caller
     * must have unlinked the instruction from the issue-candidate
     * list first; the linkage is cleared, not unlinked, here.
     */
    void
    resetForReplay()
    {
        issuePrev = issueNext = nullptr;
        inIssueList = false;
        mispredicted = false;
        stallsFetch = false;
        redirectFrom = 0;
        renamed = false;
        renameCycle = InvalidCycle;
        readyEarliest = InvalidCycle;
        ren = RenameOut{};
        inIq = inLq = inSq = false;
        storeSet = ~0U;
        issued = false;
        issueCycle = InvalidCycle;
        completeCycle = InvalidCycle;
        memLevel = MemHitLevel::None;
        cohDelayed = false;
        issueDom = IssueDom::Dispatch;
        domProducer = 0;
        retireCycle = InvalidCycle;
        commitDom = CommitDom::SelfComplete;
    }
};

} // namespace reno
