/**
 * @file
 * Core configuration, defaulting to the paper's 4-wide machine
 * (section 4.1):
 *
 *   13-stage pipeline (1 bpred, 2 I$, 1 decode, 2 rename, 1 dispatch,
 *   1 schedule, 2 register read, 1 execute, 1 complete, 1 retire),
 *   128-entry ROB, 50-entry issue queue, 48-entry load buffer,
 *   24-entry store buffer, 160 physical registers. The 4-wide
 *   configuration issues up to 3 integer operations, 1 FP, 1 load and
 *   1 store per cycle; the 6-wide one 4, 2, 2 and 1.
 *
 * (The RENO ISA is integer-only, so the FP issue slots are unused;
 * they are kept in the structure for configuration fidelity.)
 */
#pragma once

#include <cstdint>

#include "bpred/predictor.hpp"
#include "mem/hierarchy.hpp"
#include "reno/renamer.hpp"

namespace reno
{

/**
 * Multi-core system shape: how many cores share the lower hierarchy,
 * and the latencies the snooping MESI bus charges on top of the
 * cache-timing path. With one core (the default) the coherence bus
 * never fires and the model is the paper's single-core machine.
 */
struct SysParams {
    /** Cores sharing the L2/L3 stack and main memory. 1..MaxCores;
     *  the System constructor fatal()s outside that range. */
    unsigned numCores = 1;
    /** Hard cap: per-core SimResult slots aggregate cores 3+ into the
     *  last slot, and the round-robin interleave is O(numCores) per
     *  cycle, so the model is not meant for manycore scales. */
    static constexpr unsigned MaxCores = 8;

    /** Bus snoop that transfers no dirty data (E->S downgrade,
     *  invalidating clean remote copies). */
    unsigned snoopLatency = 3;
    /** Dirty-line intervention: a remote M line is flushed to the
     *  shared level and forwarded. */
    unsigned interventionLatency = 12;
    /** Ownership upgrade on a write that hits a Shared line. */
    unsigned upgradeLatency = 6;
};

/** Per-class and total issue bandwidth. */
struct IssueWidths {
    unsigned intOps = 3;   //!< integer ALU/mul/div/branch slots
    unsigned loads = 1;
    unsigned stores = 1;
    unsigned fp = 1;       //!< unused by the integer-only ISA
    unsigned total = 6;
};

/** Full machine configuration. */
struct CoreParams {
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned commitWidth = 4;
    IssueWidths issue;

    unsigned robEntries = 128;
    unsigned iqEntries = 50;
    unsigned lqEntries = 48;
    unsigned sqEntries = 24;
    unsigned numPregs = 160;
    unsigned fetchBufEntries = 16;

    /** Front-end depth: bpred + 2x I$ + decode. */
    unsigned frontDepth = 4;
    /** Rename-to-schedule depth: second rename stage + dispatch +
     *  schedule. */
    unsigned renameDepth = 3;
    /** Wakeup/select scheduling loop: 1 = back-to-back dependent
     *  single-cycle ops; 2 = the pipelined scheduler of Figure 12. */
    unsigned schedLoop = 1;
    /** Register read + execute + redirect cycles between a branch's
     *  completion and fetch resumption. */
    unsigned branchResolveExtra = 3;

    /** Store-set memory dependence predictor (64-entry LFST). */
    unsigned ssitEntries = 4096;
    unsigned numStoreSets = 64;

    BranchPredParams bpred;
    MemHierarchy::Params mem;
    RenoConfig reno;
    SysParams sys;

    /**
     * When true (default), fusing a deferred register-immediate
     * addition to an add-like consumer is free via 3-input carry-save
     * adders; shifts/multiplies/divides and dual-displacement ALU ops
     * pay one cycle (paper section 3.3). When false, *every* fused
     * operation pays one cycle (the paper's 2-cycle-fusion ablation).
     */
    bool freeAddAddFusion = true;

    std::uint64_t maxCycles = 2'000'000'000ULL;

    /** The paper's 4-wide baseline. */
    static CoreParams fourWide() { return CoreParams{}; }

    /** The paper's 6-wide machine. */
    static CoreParams
    sixWide()
    {
        CoreParams p;
        p.fetchWidth = p.renameWidth = p.commitWidth = 6;
        p.issue = IssueWidths{4, 2, 1, 2, 9};
        return p;
    }

    /** Reduced issue-width configurations of Figure 11 (bottom). */
    static CoreParams
    issueReduced(unsigned int_ops, unsigned total)
    {
        CoreParams p;
        p.issue.intOps = int_ops;
        p.issue.total = total;
        return p;
    }
};

} // namespace reno
