/**
 * @file
 * Cycle-level out-of-order core with a RENO renamer.
 *
 * The model is functional-first (SimpleScalar style): a functional
 * emulator produces the correct-path dynamic instruction stream and
 * oracle values; this core models the timing of fetch, rename,
 * dispatch, issue, execution and retirement around that stream.
 * Wrong-path fetch contents are not simulated; a branch misprediction
 * stalls fetch until the branch resolves, charging the full redirect
 * and refill latency.
 *
 * Squashes that replay *correct-path* work are modeled exactly:
 * memory-order violations (store-sets misses) and load misintegration
 * (stale integration-table tuples, which real hardware catches by
 * retirement re-execution) flush the pipeline behind the offender and
 * refetch, rolling back RENO map-table, reference-count and IT state.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "branch/predictor.hpp"
#include "emu/emulator.hpp"
#include "mem/cache.hpp"
#include "reno/renamer.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/params.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

/** Hook invoked for every retired instruction (critical-path data). */
class RetireListener
{
  public:
    virtual ~RetireListener() = default;
    virtual void onRetire(const DynInst &inst) = 0;
};

/** Summary statistics of one simulation run. */
struct SimResult {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;

    /** Retired instructions collapsed, by ElimKind index. */
    std::uint64_t elim[5] = {};

    std::uint64_t retiredLoads = 0;
    std::uint64_t retiredStores = 0;
    std::uint64_t retiredBranches = 0;

    std::uint64_t itAccesses = 0;
    std::uint64_t itHits = 0;
    std::uint64_t overflowCancels = 0;
    std::uint64_t groupDepCancels = 0;

    std::uint64_t violationSquashes = 0;
    std::uint64_t misintegrationFlushes = 0;

    std::uint64_t bpLookups = 0;
    std::uint64_t bpMispredicts = 0;

    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t l2Misses = 0;

    std::uint64_t stallRob = 0;
    std::uint64_t stallIq = 0;
    std::uint64_t stallPregs = 0;
    std::uint64_t stallLsq = 0;

    double ipc() const { return cycles ? double(retired) / cycles : 0.0; }

    std::uint64_t
    eliminatedTotal() const
    {
        return elim[1] + elim[2] + elim[3] + elim[4];
    }

    /** Fraction of retired instructions eliminated or folded. */
    double
    elimFraction() const
    {
        return retired ? double(eliminatedTotal()) / retired : 0.0;
    }

    double
    elimFraction(ElimKind kind) const
    {
        return retired
            ? double(elim[static_cast<unsigned>(kind)]) / retired : 0.0;
    }
};

/** The out-of-order core. */
class Core
{
  public:
    Core(const CoreParams &params, Emulator &emu);

    /** Run to program completion (or the cycle limit). */
    SimResult run();

    /**
     * Run until at least @p retired_bound instructions have retired,
     * the program completes, or the cycle limit is reached. Sampled
     * simulation uses this to delimit warmup and measurement windows:
     * stats are monotonic counters, so a window's contribution is the
     * difference of result() snapshots at its bounds. May overshoot
     * the bound by up to commitWidth-1 instructions (one commit
     * group); the caller reads the exact count from result().
     */
    SimResult runUntilRetired(std::uint64_t retired_bound);

    /** Advance one cycle (exposed for tests). */
    void tick();

    bool finished() const { return finished_; }
    Cycle now() const { return now_; }
    std::uint64_t retiredCount() const { return retired_; }

    RenoRenamer &renamer() { return renamer_; }
    const RenoRenamer &renamer() const { return renamer_; }
    MemHierarchy &memHierarchy() { return mem_; }
    BranchPredictor &branchPredictor() { return bp_; }

    void setRetireListener(RetireListener *listener)
    {
        listener_ = listener;
    }

    /** Current result snapshot (valid mid-run too). */
    SimResult result() const;

  private:
    void commit();
    void issue();
    void rename();
    void fetch();

    /** Extra fused-operation latency for deferred displacements. */
    unsigned fusionExtra(const DynInst &d) const;

    /**
     * Squash ROB entries [idx, end): roll back RENO state in reverse
     * order and recycle the instructions into the fetch buffer for
     * replay starting at @p restart_cycle.
     */
    void squashFrom(size_t idx, Cycle restart_cycle);

    /** Source-operand ready cycle honoring the scheduling loop. */
    Cycle srcReadyCycle(const SrcOp &src) const;

    CoreParams params_;
    Emulator &emu_;
    RenoRenamer renamer_;
    MemHierarchy mem_;
    BranchPredictor bp_;
    StoreSets ssets_;

    std::deque<std::unique_ptr<DynInst>> fetchBuf_;
    std::deque<std::unique_ptr<DynInst>> rob_;

    std::vector<Cycle> pregReady_;
    std::vector<Cycle> pregIssue_;
    std::vector<InstSeq> pregProducer_;

    unsigned iqCount_ = 0;
    unsigned lqCount_ = 0;
    unsigned sqCount_ = 0;
    /** Post-retirement port queue: stores and re-executing integrated
     *  loads drain at one per cycle; commit stalls only when full. */
    unsigned drainQueue_ = 0;

    Cycle now_ = 0;
    InstSeq seqCounter_ = 1;
    Addr lastFetchBlock_ = ~Addr{0};
    Cycle fetchResumeAt_ = 0;
    unsigned fetchBlocked_ = 0;  //!< unresolved mispredicted branches
    InstSeq pendingRedirectSeq_ = 0;  //!< branch behind the next fetch
    bool finished_ = false;

    RetireListener *listener_ = nullptr;

    // --- statistics ---------------------------------------------------
    std::uint64_t retired_ = 0;
    std::uint64_t retiredElim_[5] = {};
    std::uint64_t retiredLoads_ = 0;
    std::uint64_t retiredStores_ = 0;
    std::uint64_t retiredBranches_ = 0;
    std::uint64_t violationSquashes_ = 0;
    std::uint64_t misintegrationFlushes_ = 0;
    std::uint64_t stallRob_ = 0;
    std::uint64_t stallIq_ = 0;
    std::uint64_t stallPregs_ = 0;
    std::uint64_t stallLsq_ = 0;
};

} // namespace reno
