/**
 * @file
 * Cycle-level out-of-order core with a RENO renamer.
 *
 * The model is functional-first (SimpleScalar style): a functional
 * emulator produces the correct-path dynamic instruction stream and
 * oracle values; this core models the timing of fetch, rename,
 * dispatch, issue, execution and retirement around that stream.
 * Wrong-path fetch contents are not simulated; a branch misprediction
 * stalls fetch until the branch resolves, charging the full redirect
 * and refill latency.
 *
 * Squashes that replay *correct-path* work are modeled exactly:
 * memory-order violations (store-sets misses) and load misintegration
 * (stale integration-table tuples, which real hardware catches by
 * retirement re-execution) flush the pipeline behind the offender and
 * refetch, rolling back RENO map-table, reference-count and IT state.
 *
 * Core itself is a thin facade: the machine state lives in
 * pipeline/machine_state.hpp, the four stage units in
 * src/pipeline/{fetch,rename,issue,commit}_stage.*, and the
 * pipeline's counters in a named StatSet (common/statset.hpp) exposed
 * through stats(). Core wires them together and drives one stage pass
 * per tick().
 */
#pragma once

#include <cstdint>
#include <memory>

#include "bpred/predictor.hpp"
#include "common/statset.hpp"
#include "emu/emulator.hpp"
#include "mem/hierarchy.hpp"
#include "obs/cpistack.hpp"
#include "obs/profiler.hpp"
#include "pipeline/commit_stage.hpp"
#include "pipeline/fetch_stage.hpp"
#include "pipeline/issue_stage.hpp"
#include "pipeline/machine_state.hpp"
#include "pipeline/pipeline_stats.hpp"
#include "pipeline/rename_stage.hpp"
#include "reno/renamer.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/params.hpp"
#include "uarch/retire_listener.hpp"
#include "uarch/sim_result.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @param attach  null for the single-core machine (the core owns
     *                its whole hierarchy); non-null inside a System,
     *                where the core builds only its private L1s and
     *                bpred stack over the System's shared hierarchy
     *                and coherence bus.
     */
    Core(const CoreParams &params, Emulator &emu,
         const MemHierarchy::Attach *attach = nullptr);

    /** Run to program completion (or the cycle limit). */
    SimResult run();

    /**
     * Run until at least @p retired_bound instructions have retired,
     * the program completes, or the cycle limit is reached. Sampled
     * simulation uses this to delimit warmup and measurement windows:
     * stats are monotonic counters, so a window's contribution is the
     * difference of result() snapshots at its bounds. May overshoot
     * the bound by up to commitWidth-1 instructions (one commit
     * group); the caller reads the exact count from result().
     */
    SimResult runUntilRetired(std::uint64_t retired_bound);

    /** Advance one cycle (exposed for tests). */
    void tick();

    bool finished() const { return state_.finished; }
    Cycle now() const { return state_.now; }
    std::uint64_t retiredCount() const { return stats_.retired; }

    RenoRenamer &renamer() { return renamer_; }
    const RenoRenamer &renamer() const { return renamer_; }
    MemHierarchy &memHierarchy() { return mem_; }
    BranchPredictor &branchPredictor() { return bp_; }

    void setRetireListener(RetireListener *listener)
    {
        commit_.setListener(listener);
    }

    /** Current result snapshot (valid mid-run too). */
    SimResult result() const;

    /** The pipeline's named stat registry (live counters). */
    const StatSet &stats() const { return statSet_; }

    /** The explicit machine state (tests, visualization). */
    const MachineState &machineState() const { return state_; }

    /** CPI-stack accountant (null unless CpiAccounting enabled it at
     *  construction). Sum of its buckets == now() by construction. */
    const obs::CpiStack *cpiStack() const { return cpi_.get(); }
    /** Hotspot profiler (null unless enabled at construction). */
    const obs::HotspotProfile *hotspots() const { return hot_.get(); }

    /** Emit every pipeline counter as one trace counter sample on
     *  this core's lane ("core.stats", or "core<i>.stats" inside a
     *  System). run()/runUntilRetired() call it on the --trace-sample
     *  interval; a System drives it directly from its own loop. */
    void sampleStatsCounter();

  private:
    CoreParams params_;
    Emulator &emu_;
    RenoRenamer renamer_;
    MemHierarchy mem_;
    BranchPredictor bp_;
    StoreSets ssets_;

    MachineState state_;
    StatSet statSet_;
    PipelineStats stats_;

    /** CPI accounting, allocated only when CpiAccounting says so at
     *  construction -- a disabled run never touches these. */
    std::unique_ptr<obs::CpiStack> cpi_;
    std::unique_ptr<obs::HotspotProfile> hot_;

    FetchStage fetch_;
    RenameStage rename_;
    IssueStage issue_;
    CommitStage commit_;
};

} // namespace reno
