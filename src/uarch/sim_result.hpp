/**
 * @file
 * Summary statistics of one simulation run, plus the canonical field
 * registry that single-sources every consumer of those statistics:
 * the result-cache serialization (src/sweep/result_cache.cpp), the
 * sampled-simulation window delta/accumulate algebra
 * (src/sample/interval.cpp) and the full named-stat report records
 * (src/sweep/reporter.cpp). Adding a SimResult field without
 * extending the registry trips the static_assert below instead of
 * silently dropping the field from caches, deltas and reports.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "reno/renamer.hpp"

namespace reno
{

/**
 * Per-cache-level stat slots. The composable hierarchy can be
 * arbitrarily deep, but SimResult is a fixed-layout counter block, so
 * levels map onto four named slots: the split L1s, the L2, and an
 * "l3" slot that aggregates every deeper shared level. (The shipped
 * configurations use at most three levels, so the aggregate slot is
 * exact for them.)
 */
inline constexpr unsigned NumMemStatLevels = 4;
inline constexpr const char *MemStatLevelNames[NumMemStatLevels] = {
    "icache", "dcache", "l2", "l3"};

/**
 * Per-core stat slots of a multi-core System run, mirroring the
 * per-level scheme above: cores 0..2 get their own slot, every deeper
 * core aggregates into the last ("c3") slot. A single-core run fills
 * slot 0 only (coreCycles[0] == cycles).
 */
inline constexpr unsigned NumCoreStatSlots = 4;
inline constexpr const char *CoreStatSlotNames[NumCoreStatSlots] = {
    "c0", "c1", "c2", "c3"};

/** Summary statistics of one simulation run. All fields are monotonic
 *  counters, so a measurement window's contribution is the field-wise
 *  difference of two snapshots. */
struct SimResult {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;

    /** Retired instructions collapsed, by ElimKind index. */
    std::uint64_t elim[NumElimKinds] = {};

    std::uint64_t retiredLoads = 0;
    std::uint64_t retiredStores = 0;
    std::uint64_t retiredBranches = 0;

    std::uint64_t itAccesses = 0;
    std::uint64_t itHits = 0;
    std::uint64_t overflowCancels = 0;
    std::uint64_t groupDepCancels = 0;

    std::uint64_t violationSquashes = 0;
    std::uint64_t misintegrationFlushes = 0;

    std::uint64_t bpLookups = 0;
    std::uint64_t bpMispredicts = 0;

    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t l2Misses = 0;

    std::uint64_t stallRob = 0;
    std::uint64_t stallIq = 0;
    std::uint64_t stallPregs = 0;
    std::uint64_t stallLsq = 0;

    /** Per-level memory-system counters, indexed by the
     *  MemStatLevelNames slot. Misses for the first three slots live
     *  in the icacheMisses/dcacheMisses/l2Misses scalars above;
     *  l3Misses completes the set. */
    std::uint64_t l3Misses = 0;
    std::uint64_t memHits[NumMemStatLevels] = {};
    std::uint64_t memMshrMerges[NumMemStatLevels] = {};
    std::uint64_t memWritebacks[NumMemStatLevels] = {};
    std::uint64_t memPrefetchIssued[NumMemStatLevels] = {};
    std::uint64_t memPrefetchUseful[NumMemStatLevels] = {};

    /** Branch-prediction breakdown (v3): bpMispredicts above is the
     *  sum of the three mispredict components. The TAGE and
     *  perceptron counters are zero under other direction engines. */
    std::uint64_t bpDirMispredicts = 0;
    std::uint64_t bpTargetMispredicts = 0;
    std::uint64_t bpRasMispredicts = 0;
    std::uint64_t bpRasOverflows = 0;
    std::uint64_t bpTageProviderHits = 0;
    std::uint64_t bpTageAltHits = 0;
    std::uint64_t bpPerceptronConfident = 0;

    /** Multi-core block (v4). The coherence counters are the snooping
     *  MESI bus's event totals; the per-core arrays are indexed by the
     *  CoreStatSlotNames slot. All zero on a single-core run except
     *  coreCycles[0]/coreRetired[0], which mirror cycles/retired. */
    std::uint64_t cohInvalidations = 0;
    std::uint64_t cohInterventions = 0;
    std::uint64_t cohUpgradeMisses = 0;
    std::uint64_t cohWritebacks = 0;
    std::uint64_t coreCycles[NumCoreStatSlots] = {};
    std::uint64_t coreRetired[NumCoreStatSlots] = {};

    double ipc() const { return cycles ? double(retired) / cycles : 0.0; }

    /** IPC of one core slot (multi-core runs; slot 0 == ipc() for a
     *  single-core run). Aggregated slots report the slot's combined
     *  retired count over its combined cycles. */
    double
    coreIpc(unsigned slot) const
    {
        return slot < NumCoreStatSlots && coreCycles[slot]
            ? double(coreRetired[slot]) / coreCycles[slot] : 0.0;
    }

    std::uint64_t
    eliminatedTotal() const
    {
        std::uint64_t sum = 0;
        for (unsigned k = 1; k < NumElimKinds; ++k)
            sum += elim[k];
        return sum;
    }

    /** Fraction of retired instructions eliminated or folded. */
    double
    elimFraction() const
    {
        return retired ? double(eliminatedTotal()) / retired : 0.0;
    }

    double
    elimFraction(ElimKind kind) const
    {
        return retired
            ? double(elim[static_cast<unsigned>(kind)]) / retired : 0.0;
    }
};

/** One entry of the canonical field registry: a stable name and the
 *  field's byte offset within SimResult. */
struct SimStatField {
    const char *name;
    std::size_t offset;
};

static_assert(std::is_standard_layout_v<SimResult>,
              "SimStatField offsets require standard layout");

// Registry order is the result-cache file order (format "reno-result
// v4"): the scalar counters in declaration order, then the elim
// array, then the per-memory-level counter block appended by v2,
// then the branch-prediction block appended by v3, then the
// multi-core coherence + per-core block appended by v4. Do not
// reorder -- persisted cache entries depend on it.
#define RENO_ELIM_FIELD(k) \
    {"elim" #k, offsetof(SimResult, elim) + (k) * sizeof(std::uint64_t)}
#define RENO_CORESLOT_FIELDS(arr, suffix)                           \
    {"c0" suffix, offsetof(SimResult, arr)},                        \
    {"c1" suffix,                                                   \
     offsetof(SimResult, arr) + 1 * sizeof(std::uint64_t)},         \
    {"c2" suffix,                                                   \
     offsetof(SimResult, arr) + 2 * sizeof(std::uint64_t)},         \
    {"c3" suffix,                                                   \
     offsetof(SimResult, arr) + 3 * sizeof(std::uint64_t)}
#define RENO_MEMLEVEL_FIELDS(arr, suffix)                          \
    {"icache" suffix, offsetof(SimResult, arr)},                   \
    {"dcache" suffix,                                              \
     offsetof(SimResult, arr) + 1 * sizeof(std::uint64_t)},        \
    {"l2" suffix,                                                  \
     offsetof(SimResult, arr) + 2 * sizeof(std::uint64_t)},        \
    {"l3" suffix,                                                  \
     offsetof(SimResult, arr) + 3 * sizeof(std::uint64_t)}
inline constexpr SimStatField SimResultFields[] = {
    {"cycles", offsetof(SimResult, cycles)},
    {"retired", offsetof(SimResult, retired)},
    {"retiredLoads", offsetof(SimResult, retiredLoads)},
    {"retiredStores", offsetof(SimResult, retiredStores)},
    {"retiredBranches", offsetof(SimResult, retiredBranches)},
    {"itAccesses", offsetof(SimResult, itAccesses)},
    {"itHits", offsetof(SimResult, itHits)},
    {"overflowCancels", offsetof(SimResult, overflowCancels)},
    {"groupDepCancels", offsetof(SimResult, groupDepCancels)},
    {"violationSquashes", offsetof(SimResult, violationSquashes)},
    {"misintegrationFlushes", offsetof(SimResult, misintegrationFlushes)},
    {"bpLookups", offsetof(SimResult, bpLookups)},
    {"bpMispredicts", offsetof(SimResult, bpMispredicts)},
    {"icacheMisses", offsetof(SimResult, icacheMisses)},
    {"dcacheMisses", offsetof(SimResult, dcacheMisses)},
    {"l2Misses", offsetof(SimResult, l2Misses)},
    {"stallRob", offsetof(SimResult, stallRob)},
    {"stallIq", offsetof(SimResult, stallIq)},
    {"stallPregs", offsetof(SimResult, stallPregs)},
    {"stallLsq", offsetof(SimResult, stallLsq)},
    RENO_ELIM_FIELD(0),
    RENO_ELIM_FIELD(1),
    RENO_ELIM_FIELD(2),
    RENO_ELIM_FIELD(3),
    RENO_ELIM_FIELD(4),
    {"l3Misses", offsetof(SimResult, l3Misses)},
    RENO_MEMLEVEL_FIELDS(memHits, "Hits"),
    RENO_MEMLEVEL_FIELDS(memMshrMerges, "MshrMerges"),
    RENO_MEMLEVEL_FIELDS(memWritebacks, "Writebacks"),
    RENO_MEMLEVEL_FIELDS(memPrefetchIssued, "PrefetchIssued"),
    RENO_MEMLEVEL_FIELDS(memPrefetchUseful, "PrefetchUseful"),
    {"bpDirMispredicts", offsetof(SimResult, bpDirMispredicts)},
    {"bpTargetMispredicts", offsetof(SimResult, bpTargetMispredicts)},
    {"bpRasMispredicts", offsetof(SimResult, bpRasMispredicts)},
    {"bpRasOverflows", offsetof(SimResult, bpRasOverflows)},
    {"bpTageProviderHits", offsetof(SimResult, bpTageProviderHits)},
    {"bpTageAltHits", offsetof(SimResult, bpTageAltHits)},
    {"bpPerceptronConfident",
     offsetof(SimResult, bpPerceptronConfident)},
    {"cohInvalidations", offsetof(SimResult, cohInvalidations)},
    {"cohInterventions", offsetof(SimResult, cohInterventions)},
    {"cohUpgradeMisses", offsetof(SimResult, cohUpgradeMisses)},
    {"cohWritebacks", offsetof(SimResult, cohWritebacks)},
    RENO_CORESLOT_FIELDS(coreCycles, "Cycles"),
    RENO_CORESLOT_FIELDS(coreRetired, "Retired"),
};
#undef RENO_CORESLOT_FIELDS
#undef RENO_MEMLEVEL_FIELDS
#undef RENO_ELIM_FIELD

static_assert(NumElimKinds == 5,
              "new ElimKind: add its RENO_ELIM_FIELD entry above");
static_assert(NumMemStatLevels == 4,
              "new mem stat slot: extend RENO_MEMLEVEL_FIELDS above");
static_assert(NumCoreStatSlots == 4,
              "new core stat slot: extend RENO_CORESLOT_FIELDS above");
static_assert(std::size(SimResultFields) * sizeof(std::uint64_t) ==
                  sizeof(SimResult),
              "SimResult changed: update SimResultFields");

/** The canonical registry, every counter exactly once. */
inline std::span<const SimStatField>
simResultFields()
{
    return SimResultFields;
}

inline std::uint64_t &
statRef(SimResult &r, const SimStatField &f)
{
    return *reinterpret_cast<std::uint64_t *>(
        reinterpret_cast<char *>(&r) + f.offset);
}

inline std::uint64_t
statValue(const SimResult &r, const SimStatField &f)
{
    return *reinterpret_cast<const std::uint64_t *>(
        reinterpret_cast<const char *>(&r) + f.offset);
}

} // namespace reno
