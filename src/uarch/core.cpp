#include "uarch/core.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace reno
{

Core::Core(const CoreParams &params, Emulator &emu)
    : params_(params), emu_(emu), renamer_(params.reno, params.numPregs),
      mem_(params.mem), bp_(params.bpred),
      ssets_(params.ssitEntries, params.numStoreSets),
      pregReady_(params.numPregs, 0),
      pregIssue_(params.numPregs, InvalidCycle),
      pregProducer_(params.numPregs, 0)
{
    if (params.numPregs < NumLogRegs + 1)
        fatal("numPregs must exceed the number of logical registers");
    renamer_.initialize(emu.state().regs);
}

Cycle
Core::srcReadyCycle(const SrcOp &src) const
{
    const Cycle ready = pregReady_[src.preg];
    if (ready == InvalidCycle)
        return InvalidCycle;
    const Cycle issue = pregIssue_[src.preg];
    if (issue == InvalidCycle)
        return ready;
    return std::max(ready, issue + params_.schedLoop);
}

unsigned
Core::fusionExtra(const DynInst &d) const
{
    if (!params_.reno.cf)
        return 0;
    const Instruction &inst = d.inst();
    const bool disp0 = d.ren.numSrcs > 0 && d.ren.src[0].disp != 0;
    // A store's data displacement collapses on the dedicated store-data
    // path adder and never delays issue.
    const bool disp1 = d.ren.numSrcs > 1 && d.ren.src[1].disp != 0 &&
                       !isStore(inst.op);
    if (!disp0 && !disp1)
        return 0;
    if (!params_.freeAddAddFusion)
        return 1;  // ablation: every fusion costs a cycle
    if (inst.info().fusePenalty)
        return 1;  // general shift or multiply/divide input adder
    if (disp0 && disp1)
        return 1;  // both inputs displaced: augmented ALU case
    return 0;      // add-add fusion via 3-input carry-save adder
}

void
Core::squashFrom(size_t idx, Cycle restart_cycle)
{
    // Roll back RENO state youngest-first.
    for (size_t j = rob_.size(); j-- > idx;) {
        DynInst &d = *rob_[j];
        renamer_.rollback(d.inst(), d.ren);
        if (d.inIq)
            --iqCount_;
        if (d.inLq)
            --lqCount_;
        if (d.inSq) {
            --sqCount_;
            ssets_.storeInactive(d.storeSet, d.seq);
        }
        if (d.stallsFetch)
            --fetchBlocked_;
        d.resetForReplay();
        d.fetchCycle = restart_cycle;
        d.fetchReady = restart_cycle + params_.frontDepth;
    }
    // Recycle into the fetch buffer, preserving program order.
    fetchBuf_.insert(fetchBuf_.begin(),
                     std::make_move_iterator(rob_.begin() +
                                             static_cast<long>(idx)),
                     std::make_move_iterator(rob_.end()));
    rob_.erase(rob_.begin() + static_cast<long>(idx), rob_.end());
}

void
Core::commit()
{
    // One retirement port: retired stores and re-executing integrated
    // loads drain from a post-retirement queue at one per cycle.
    // Retirement itself stalls only when that queue is full (sustained
    // demand above one per cycle -- the "vortex" effect, section 4.3).
    if (drainQueue_ > 0)
        --drainQueue_;

    unsigned committed = 0;
    while (committed < params_.commitWidth && !rob_.empty()) {
        DynInst &d = *rob_.front();
        if (!d.renamed || !d.completed(now_))
            break;

        const bool elim_load =
            d.isLoadInst() && (d.ren.elim == ElimKind::Cse ||
                               d.ren.elim == ElimKind::Ra);

        // Stores write the cache at retirement; integrated loads
        // re-execute for verification. Both share one retirement port.
        if (d.isStoreInst() || elim_load) {
            if (drainQueue_ >= params_.sqEntries) {
                d.commitDom = CommitDom::RetirePort;
                break;
            }
            ++drainQueue_;
            mem_.dataAccess(d.rec.effAddr, now_, d.isStoreInst());
        }

        if (elim_load && d.ren.misintegrated) {
            // Re-execution caught a stale integration: flush this load
            // and everything younger, refetch. The stale IT tuple was
            // already invalidated, so the replay renames normally.
            ++misintegrationFlushes_;
            squashFrom(0, now_ + 1);
            break;
        }

        d.retireCycle = now_;
        if (d.commitDom != CommitDom::RetirePort) {
            d.commitDom = d.completeCycle == now_
                ? CommitDom::SelfComplete : CommitDom::PrevCommit;
        }

        renamer_.retire(d.ren);
        if (d.inLq)
            --lqCount_;
        if (d.inSq) {
            --sqCount_;
            ssets_.storeInactive(d.storeSet, d.seq);
        }

        ++retired_;
        ++retiredElim_[static_cast<unsigned>(d.ren.elim)];
        if (d.isLoadInst())
            ++retiredLoads_;
        if (d.isStoreInst())
            ++retiredStores_;
        if (isControl(d.inst().op))
            ++retiredBranches_;

        if (listener_)
            listener_->onRetire(d);

        const bool exited = d.rec.exited;
        rob_.pop_front();
        ++committed;
        if (exited) {
            finished_ = true;
            break;
        }
    }
}

void
Core::issue()
{
    unsigned used_int = 0, used_ld = 0, used_st = 0, used_total = 0;

    for (size_t i = 0; i < rob_.size(); ++i) {
        if (used_total >= params_.issue.total)
            break;
        DynInst &d = *rob_[i];
        if (!d.renamed || d.issued || d.ren.eliminated())
            continue;
        const Instruction &inst = d.inst();
        const InstClass cls = inst.info().cls;
        if (cls == InstClass::Syscall)
            continue;  // completes at dispatch

        const bool is_ld = cls == InstClass::Load;
        const bool is_st = cls == InstClass::Store;
        if (is_ld && used_ld >= params_.issue.loads)
            continue;
        if (is_st && used_st >= params_.issue.stores)
            continue;
        if (!is_ld && !is_st && used_int >= params_.issue.intOps)
            continue;

        // Readiness: dispatch pipe, then each source's producer.
        Cycle earliest = d.readyEarliest;
        IssueDom dom = IssueDom::Dispatch;
        InstSeq dom_seq = 0;
        bool ready = true;
        for (unsigned s = 0; s < d.ren.numSrcs; ++s) {
            const Cycle t = srcReadyCycle(d.ren.src[s]);
            if (t == InvalidCycle) {
                ready = false;
                break;
            }
            if (t > earliest) {
                earliest = t;
                dom = s == 0 ? IssueDom::Src0 : IssueDom::Src1;
                dom_seq = pregProducer_[d.ren.src[s].preg];
            }
        }
        if (!ready || earliest > now_)
            continue;

        // Aggressive load scheduling, gated by the store-set predictor:
        // a load whose pc maps to a store set waits until every older
        // in-flight store of that set has issued (the LFST chains
        // same-set stores, so tracking the youngest is equivalent).
        if (is_ld) {
            const unsigned set = ssets_.setOf(d.rec.pc);
            if (set != StoreSets::InvalidSet) {
                bool blocked = false;
                InstSeq blocker = 0;
                for (size_t j = 0; j < i; ++j) {
                    const DynInst &s = *rob_[j];
                    if (s.isStoreInst() && s.renamed && !s.issued &&
                        s.storeSet == set) {
                        blocked = true;
                        blocker = s.seq;
                        break;
                    }
                }
                if (blocked) {
                    d.issueDom = IssueDom::MemDep;
                    d.domProducer = blocker;
                    continue;
                }
            }
        }

        // Issue.
        d.issued = true;
        d.issueCycle = now_;
        d.issueDom = now_ > earliest ? IssueDom::Contention : dom;
        if (d.issueDom != IssueDom::Contention)
            d.domProducer = dom_seq;
        if (d.inIq) {
            d.inIq = false;
            --iqCount_;
        }
        ++used_total;
        if (is_ld)
            ++used_ld;
        else if (is_st)
            ++used_st;
        else
            ++used_int;

        const unsigned extra = fusionExtra(d);

        if (is_ld) {
            const Cycle agen = now_ + 1 + extra;
            // Store-to-load forwarding / violation arming: find the
            // youngest older overlapping store.
            const DynInst *fwd = nullptr;
            for (size_t j = 0; j < i; ++j) {
                const DynInst &s = *rob_[j];
                if (s.isStoreInst() && s.renamed && s.memOverlaps(d))
                    fwd = &s;
            }
            if (fwd && fwd->issued) {
                d.memLevel = MemLevel::Forwarded;
                d.completeCycle =
                    std::max(agen, fwd->completeCycle) +
                    params_.mem.dcache.latency;
            } else {
                // No forwarding source (or an unissued older store: the
                // aggressive issue proceeds and the store's execution
                // will catch the violation).
                if (mem_.dcacheProbe(d.rec.effAddr))
                    d.memLevel = MemLevel::L1;
                else if (mem_.l2Probe(d.rec.effAddr))
                    d.memLevel = MemLevel::L2;
                else
                    d.memLevel = MemLevel::Memory;
                d.completeCycle =
                    mem_.dataAccess(d.rec.effAddr, agen, false);
            }
        } else if (is_st) {
            // Address generation; data merges on the store-data path.
            d.completeCycle = now_ + 1 + extra;
            ssets_.storeInactive(d.storeSet, d.seq);
        } else {
            d.completeCycle = now_ + inst.info().latency + extra;
        }

        if (d.ren.hasDest) {
            pregReady_[d.ren.destPreg] = d.completeCycle;
            pregIssue_[d.ren.destPreg] = d.issueCycle;
        }

        // Resolve a fetch-blocking mispredicted branch.
        if (d.stallsFetch) {
            d.stallsFetch = false;
            --fetchBlocked_;
            fetchResumeAt_ = std::max(
                fetchResumeAt_,
                d.completeCycle + params_.branchResolveExtra);
            pendingRedirectSeq_ = d.seq;
        }

        // A store's execution exposes memory-order violations: any
        // younger overlapping load that already issued read stale data.
        if (is_st) {
            for (size_t j = i + 1; j < rob_.size(); ++j) {
                DynInst &ld = *rob_[j];
                if (ld.isLoadInst() && ld.issued &&
                    !ld.ren.eliminated() && ld.memOverlaps(d)) {
                    ssets_.trainViolation(ld.rec.pc, d.rec.pc);
                    ++violationSquashes_;
                    squashFrom(j, now_ + 1);
                    return;  // indices invalidated; end issue stage
                }
            }
        }
    }
}

void
Core::rename()
{
    renamer_.beginGroup();
    unsigned n = 0;
    while (n < params_.renameWidth && !fetchBuf_.empty()) {
        DynInst &d = *fetchBuf_.front();
        if (d.fetchReady > now_)
            break;
        const Instruction &inst = d.inst();
        const bool sys = inst.op == Opcode::SYSCALL;

        if (rob_.size() >= params_.robEntries) {
            ++stallRob_;
            break;
        }
        if (sys && !rob_.empty())
            break;  // serialize
        if (!sys && iqCount_ >= params_.iqEntries) {
            ++stallIq_;
            break;
        }
        if (d.isLoadInst() && lqCount_ >= params_.lqEntries) {
            ++stallLsq_;
            break;
        }
        if (d.isStoreInst() && sqCount_ >= params_.sqEntries) {
            ++stallLsq_;
            break;
        }
        if (inst.hasDest() && !renamer_.ensureFreePreg()) {
            ++stallPregs_;
            break;
        }

        d.ren = renamer_.rename(RenameIn{inst, d.rec.result});
        d.renamed = true;
        d.renameCycle = now_;
        d.readyEarliest = now_ + params_.renameDepth;

        if (sys) {
            d.completeCycle = d.readyEarliest;
            if (d.ren.hasDest) {
                pregReady_[d.ren.destPreg] = d.completeCycle;
                pregIssue_[d.ren.destPreg] = InvalidCycle;
                pregProducer_[d.ren.destPreg] = d.seq;
            }
        } else if (d.ren.eliminated()) {
            // Collapsed: no issue queue entry, no execution; the
            // instruction simply flows to retirement. Consumers track
            // the shared register's original producer.
            d.completeCycle = d.readyEarliest;
        } else {
            d.inIq = true;
            ++iqCount_;
            if (d.isLoadInst()) {
                d.inLq = true;
                ++lqCount_;
            }
            if (d.isStoreInst()) {
                d.inSq = true;
                ++sqCount_;
                d.storeSet = ssets_.storeDispatched(d.rec.pc, d.seq);
            }
            if (d.ren.hasDest) {
                pregReady_[d.ren.destPreg] = InvalidCycle;
                pregIssue_[d.ren.destPreg] = InvalidCycle;
                pregProducer_[d.ren.destPreg] = d.seq;
            }
        }

        rob_.push_back(std::move(fetchBuf_.front()));
        fetchBuf_.pop_front();
        ++n;
        if (sys)
            break;
    }
}

void
Core::fetch()
{
    if (finished_ || fetchBlocked_ > 0 || now_ < fetchResumeAt_)
        return;

    const unsigned hit_lat = params_.mem.icache.latency;
    unsigned fetched = 0;
    unsigned taken_seen = 0;

    while (fetched < params_.fetchWidth &&
           fetchBuf_.size() < params_.fetchBufEntries && !emu_.done()) {
        const Addr pc = emu_.state().pc;
        const Addr block = pc / params_.mem.icache.blockBytes;
        if (block != lastFetchBlock_) {
            const Cycle ready = mem_.fetchAccess(pc, now_);
            lastFetchBlock_ = block;
            if (ready > now_ + hit_lat) {
                // I$ miss: fetch resumes when the fill completes.
                fetchResumeAt_ = ready - hit_lat;
                break;
            }
        }

        const ExecRecord rec = emu_.step();
        auto d = std::make_unique<DynInst>();
        d->rec = rec;
        d->seq = seqCounter_++;
        d->fetchCycle = now_;
        d->fetchReady = now_ + params_.frontDepth;
        d->redirectFrom = pendingRedirectSeq_;
        pendingRedirectSeq_ = 0;

        bool mispredicted = false;
        if (isControl(rec.inst.op)) {
            const Prediction pred = bp_.predict(pc, rec.inst);
            Addr pred_npc = pc + 4;
            bool target_known = true;
            if (pred.taken) {
                pred_npc = pred.target;
                target_known = pred.targetValid;
            }
            if (pred.taken != rec.taken) {
                mispredicted = true;
                bp_.noteDirMispredict();
            } else if (rec.taken && (!target_known ||
                                     pred_npc != rec.npc)) {
                mispredicted = true;
                bp_.noteTargetMispredict();
            }
            bp_.update(pc, rec.inst, rec.taken, rec.npc);
            if (rec.taken)
                ++taken_seen;
        }

        d->mispredicted = mispredicted;
        if (mispredicted) {
            d->stallsFetch = true;
            ++fetchBlocked_;
        }
        fetchBuf_.push_back(std::move(d));
        ++fetched;

        if (mispredicted)
            break;  // stall until the branch resolves
        if (taken_seen >= 2)
            break;  // can fetch past only one taken branch per cycle
    }
}

void
Core::tick()
{
    commit();
    if (!finished_) {
        issue();
        rename();
        fetch();
    }
    ++now_;
}

SimResult
Core::run()
{
    return runUntilRetired(~std::uint64_t{0});
}

SimResult
Core::runUntilRetired(std::uint64_t retired_bound)
{
    // Liveness watchdog: the longest legitimate retirement gap is a
    // memory-latency chain, orders of magnitude under this bound. A
    // rename/retire deadlock (e.g. an unreclaimable register pool)
    // should fail loudly, not spin to maxCycles.
    constexpr Cycle RetireGapBound = 100'000;
    std::uint64_t last_retired = retired_;
    Cycle last_progress = now_;

    while (!finished_ && retired_ < retired_bound &&
           now_ < params_.maxCycles) {
        tick();
        if (retired_ != last_retired) {
            last_retired = retired_;
            last_progress = now_;
        } else if (now_ - last_progress > RetireGapBound) {
            panic("no instruction retired for %llu cycles "
                  "(cycle %llu, %llu retired, rob %zu, free pregs %u): "
                  "pipeline deadlock",
                  static_cast<unsigned long long>(RetireGapBound),
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(retired_),
                  rob_.size(), renamer_.physRegs().numFree());
        }
    }
    if (!finished_ && retired_ < retired_bound)
        warn("simulation hit the cycle limit before program exit");
    return result();
}

SimResult
Core::result() const
{
    SimResult r;
    r.cycles = now_;
    r.retired = retired_;
    for (unsigned k = 0; k < 5; ++k)
        r.elim[k] = retiredElim_[k];
    r.retiredLoads = retiredLoads_;
    r.retiredStores = retiredStores_;
    r.retiredBranches = retiredBranches_;
    r.itAccesses = renamer_.it().accesses();
    r.itHits = renamer_.it().hits();
    r.overflowCancels = renamer_.overflowCancels();
    r.groupDepCancels = renamer_.groupDepCancels();
    r.violationSquashes = violationSquashes_;
    r.misintegrationFlushes = misintegrationFlushes_;
    r.bpLookups = bp_.lookups();
    r.bpMispredicts = bp_.dirMispredicts() + bp_.targetMispredicts();
    r.icacheMisses = mem_.icache().misses();
    r.dcacheMisses = mem_.dcache().misses();
    r.l2Misses = mem_.l2().misses();
    r.stallRob = stallRob_;
    r.stallIq = stallIq_;
    r.stallPregs = stallPregs_;
    r.stallLsq = stallLsq_;
    return r;
}

} // namespace reno
