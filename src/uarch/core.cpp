#include "uarch/core.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace reno
{

Core::Core(const CoreParams &params, Emulator &emu,
           const MemHierarchy::Attach *attach)
    : params_(params), emu_(emu), renamer_(params.reno, params.numPregs),
      mem_(params.mem, attach), bp_(params.bpred),
      ssets_(params.ssitEntries, params.numStoreSets),
      state_(params_),
      statSet_(attach ? strprintf("core%u", attach->coreId) : "core"),
      stats_(statSet_),
      fetch_(params_, emu_, mem_, bp_, state_),
      rename_(params_, renamer_, ssets_, state_, stats_),
      issue_(params_, mem_, ssets_, renamer_, state_, stats_),
      commit_(params_, renamer_, ssets_, mem_, state_, stats_)
{
    if (params.numPregs < NumLogRegs + 1)
        fatal("numPregs must exceed the number of logical registers");
    // CPI / hotspot accounting is sampled once per core construction
    // (the Tracer idiom): purely observational, never part of
    // CoreParams, so job digests and SimResults are unaffected.
    const auto &acc = obs::CpiAccounting::instance();
    if (acc.stackEnabled())
        cpi_ = std::make_unique<obs::CpiStack>();
    if (acc.hotspotTopN() > 0)
        hot_ = std::make_unique<obs::HotspotProfile>();
    if (cpi_ || hot_)
        commit_.setCpi(cpi_.get(), hot_.get());
    renamer_.initialize(emu.state().regs);
    // An emulator that already ran to completion -- a sampled window
    // whose start lies past this core's exit on a multi-core System
    // -- has nothing left to fetch; freeze instead of spinning an
    // empty pipeline forever.
    state_.finished = emu.done();
}

void
Core::tick()
{
    commit_.tick();
    if (!state_.finished) {
        issue_.tick();
        rename_.tick();
        fetch_.tick();
    }
    ++state_.now;
}

SimResult
Core::run()
{
    return runUntilRetired(~std::uint64_t{0});
}

SimResult
Core::runUntilRetired(std::uint64_t retired_bound)
{
    // Liveness watchdog: the longest legitimate retirement gap is a
    // memory-latency chain, orders of magnitude under this bound. A
    // rename/retire deadlock (e.g. an unreclaimable register pool)
    // should fail loudly, not spin to maxCycles.
    constexpr Cycle RetireGapBound = 100'000;
    std::uint64_t last_retired = stats_.retired;
    Cycle last_progress = state_.now;

    // Periodic counter sampling for traces (--trace-sample). The
    // interval is read once per call: purely observational, never
    // part of CoreParams, so job digests and results are unaffected.
    const std::uint64_t sample_interval =
        obs::Tracer::instance().enabled()
            ? obs::Tracer::instance().cycleSampleInterval()
            : 0;
    Cycle next_sample =
        sample_interval
            ? (state_.now / sample_interval + 1) * sample_interval
            : 0;

    while (!state_.finished && stats_.retired < retired_bound &&
           state_.now < params_.maxCycles) {
        tick();
        if (sample_interval && state_.now >= next_sample) {
            sampleStatsCounter();
            next_sample += sample_interval;
        }
        if (stats_.retired != last_retired) {
            last_retired = stats_.retired;
            last_progress = state_.now;
        } else if (state_.now - last_progress > RetireGapBound) {
            panic("no instruction retired for %llu cycles "
                  "(cycle %llu, %llu retired, rob %zu, free pregs %u): "
                  "pipeline deadlock",
                  static_cast<unsigned long long>(RetireGapBound),
                  static_cast<unsigned long long>(state_.now),
                  static_cast<unsigned long long>(stats_.retired),
                  state_.rob.size(), renamer_.physRegs().numFree());
        }
    }
    if (!state_.finished && stats_.retired < retired_bound)
        warn("simulation hit the cycle limit before program exit");
    return result();
}

void
Core::sampleStatsCounter()
{
    obs::TraceArgs args;
    args.add("cycle", static_cast<std::uint64_t>(state_.now));
    for (const auto &[name, value] : statSet_.dump())
        args.add(name.c_str(), value);
    // The set's name gives each core of a System its own trace lane
    // ("core0.stats", "core1.stats", ...); single-core runs keep the
    // historical "core.stats" lane.
    obs::Tracer::instance().counter(statSet_.name() + ".stats",
                                    args.str());
}

SimResult
Core::result() const
{
    SimResult r;
    r.cycles = state_.now;
    r.retired = stats_.retired;
    for (unsigned k = 0; k < NumElimKinds; ++k)
        r.elim[k] = stats_.retiredElim(k);
    r.retiredLoads = stats_.retiredLoads;
    r.retiredStores = stats_.retiredStores;
    r.retiredBranches = stats_.retiredBranches;
    r.itAccesses = renamer_.it().accesses();
    r.itHits = renamer_.it().hits();
    r.overflowCancels = renamer_.overflowCancels();
    r.groupDepCancels = renamer_.groupDepCancels();
    r.violationSquashes = stats_.violationSquashes;
    r.misintegrationFlushes = stats_.misintegrationFlushes;
    r.bpLookups = bp_.lookups();
    r.bpMispredicts = bp_.mispredicts();
    r.bpDirMispredicts = bp_.dirMispredicts();
    r.bpTargetMispredicts = bp_.targetMispredicts();
    r.bpRasMispredicts = bp_.rasMispredicts();
    r.bpRasOverflows = bp_.rasOverflows();
    r.bpTageProviderHits = bp_.direction().providerHits();
    r.bpTageAltHits = bp_.direction().altHits();
    r.bpPerceptronConfident = bp_.direction().confidentPredicts();
    r.icacheMisses = mem_.icache().misses();
    r.dcacheMisses = mem_.dcache().misses();
    // Per-level slots: I$, D$, L2, then every deeper shared level
    // aggregated into the "l3" slot (see NumMemStatLevels). An
    // attached core reports only its private L1s (levels() stops
    // there); the owning System accounts the shared stack once.
    if (!mem_.attached())
        r.l2Misses = mem_.l2().misses();
    const std::vector<const Cache *> levels = mem_.levels();
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const unsigned slot = static_cast<unsigned>(
            std::min<std::size_t>(i, NumMemStatLevels - 1));
        const Cache &c = *levels[i];
        r.memHits[slot] += c.hits();
        r.memMshrMerges[slot] += c.mshrMerges();
        r.memWritebacks[slot] += c.writebacks();
        r.memPrefetchIssued[slot] += c.prefetchIssued();
        r.memPrefetchUseful[slot] += c.prefetchUseful();
        if (i >= 3)
            r.l3Misses += c.misses();
    }
    // Per-core slot 0: a lone core IS core 0. The System remaps these
    // into each core's slot when it aggregates.
    r.coreCycles[0] = state_.now;
    r.coreRetired[0] = stats_.retired;
    r.stallRob = stats_.stallRob;
    r.stallIq = stats_.stallIq;
    r.stallPregs = stats_.stallPregs;
    r.stallLsq = stats_.stallLsq;
    return r;
}

} // namespace reno
