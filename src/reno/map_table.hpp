/**
 * @file
 * The RENO extended map table (paper section 2.3): each logical
 * register maps to a [physical register : displacement] pair. A
 * conventional renamer is the special case where every displacement is
 * zero. Displacements are 16 bits wide (Alpha-style immediates).
 */
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace reno
{

/** One map-table entry: [p : d]. Meaning: value = R[p] + d. */
struct MapEntry {
    PhysReg preg = InvalidPhysReg;
    std::int16_t disp = 0;

    bool operator==(const MapEntry &other) const = default;
};

/** The logical-to-physical map table. */
class MapTable
{
  public:
    MapTable()
    {
        entries_.fill(MapEntry{});
    }

    const MapEntry &
    get(LogReg reg) const
    {
        return entries_[reg];
    }

    void
    set(LogReg reg, MapEntry entry)
    {
        entries_[reg] = entry;
    }

  private:
    std::array<MapEntry, NumLogRegs> entries_;
};

/**
 * Conservative displacement-overflow check (paper section 3.2): the
 * hardware examines the upper two bits of the existing map-table
 * displacement and of the instruction immediate; if both operands are
 * "small" (sign bit equals bit 14, i.e. each lies in [-2^14, 2^14-1])
 * the 16-bit sum cannot overflow and folding is allowed. When either
 * operand is zero the sum is the other operand and cannot overflow
 * regardless of magnitude; the zero-detects are free (the map table
 * already tracks a displacement-is-zero bit and a zero immediate is a
 * register move), and without this case every `li rd, 32767`-style
 * large-constant materialization would be refused.
 */
inline bool
foldSafeConservative(std::int32_t disp, std::int32_t imm)
{
    if (disp == 0 || imm == 0)
        return true;
    const auto small = [](std::int32_t v) {
        return v >= -16384 && v <= 16383;
    };
    return small(disp) && small(imm);
}

/** Exact overflow check (ablation alternative). */
inline bool
foldSafeExact(std::int32_t disp, std::int32_t imm)
{
    const std::int32_t sum = disp + imm;
    return sum >= -32768 && sum <= 32767;
}

} // namespace reno
