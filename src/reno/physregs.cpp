#include "reno/physregs.hpp"

#include "common/log.hpp"

namespace reno
{

PhysRegFile::PhysRegFile(unsigned num_pregs,
                         std::function<void(PhysReg)> on_free)
    : counts_(num_pregs, 0), values_(num_pregs, 0), numFree_(num_pregs),
      onFree_(std::move(on_free))
{
    freeQueue_.reserve(num_pregs * 2);
    for (unsigned p = 0; p < num_pregs; ++p)
        freeQueue_.push_back(static_cast<PhysReg>(p));
}

PhysReg
PhysRegFile::alloc()
{
    // Skip queue entries that were re-allocated before being popped
    // (cannot happen with the current discipline, but keeps the pop
    // robust) and compact the queue when the dead prefix grows.
    while (freeHead_ < freeQueue_.size()) {
        const PhysReg p = freeQueue_[freeHead_++];
        if (counts_[p] == 0) {
            counts_[p] = 1;
            --numFree_;
            if (freeHead_ > 4096) {
                freeQueue_.erase(freeQueue_.begin(),
                                 freeQueue_.begin() +
                                     static_cast<long>(freeHead_));
                freeHead_ = 0;
            }
            return p;
        }
    }
    panic("PhysRegFile::alloc with no free registers");
}

void
PhysRegFile::incRef(PhysReg preg)
{
    if (counts_.at(preg) == 0)
        panic("incRef on free preg %u", static_cast<unsigned>(preg));
    ++counts_[preg];
}

void
PhysRegFile::decRef(PhysReg preg)
{
    if (counts_.at(preg) == 0)
        panic("decRef on free preg %u", static_cast<unsigned>(preg));
    if (--counts_[preg] == 0) {
        ++numFree_;
        freeQueue_.push_back(preg);
        if (onFree_)
            onFree_(preg);
    }
}

std::uint64_t
PhysRegFile::totalRefs() const
{
    std::uint64_t sum = 0;
    for (const auto c : counts_)
        sum += c;
    return sum;
}

} // namespace reno
