/**
 * @file
 * The integration table (IT) that drives RENO_CSE and RENO_RA (paper
 * sections 2.2 and 2.4).
 *
 * Each entry is a dataflow tuple
 *     <opcode/imm, [p_in1:d_in1], [p_in2:d_in2] -> [p_out:d_out]>
 * describing one physical register in terms of the instruction that
 * created its value. Displacements are attached to every register name
 * to accommodate RENO_CF.
 *
 *  - Forward entries are created by executed loads and (in the "full
 *    integration" configuration) ALU operations; a later instruction
 *    with the same signature is redundant and shares p_out.
 *  - Reverse entries are created by stores: the store creates the
 *    entry its matching *load* will look up, with the store's data
 *    register in the output position (speculative memory bypassing).
 *    Stack-pointer style register-immediate additions create reverse
 *    entries for the inverse addition in full-integration mode.
 *
 * The table is set-associative and hash-indexed (not associatively
 * searched). Entries referencing a freed physical register are
 * invalidated, which keeps ALU integration non-speculative; load
 * integration remains speculative with respect to intervening stores
 * and is verified by retirement re-execution.
 *
 * Lifetime: each entry holds one reference (paper section 3.1) on its
 * *output* physical register, so integrable values survive past
 * architectural overwrite and retirement ("RENO collapsing works
 * outside the instruction window and persists when an instruction has
 * retired", section 4.5). Input registers are not reference-held;
 * when an input register is freed the entry is invalidated instead,
 * which also protects against physical-register-name reuse. When the
 * free pool empties, the renamer reclaims the least-recently-used
 * entry whose output register is pinned only by the table.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/opcodes.hpp"
#include "reno/map_table.hpp"
#include "reno/physregs.hpp"

namespace reno
{

/** Index of an IT slot, used for targeted invalidation. */
using ItSlot = std::uint32_t;
constexpr ItSlot InvalidItSlot = ~ItSlot{0};

/** One integration-table tuple. */
struct ItEntry {
    bool valid = false;
    bool reverse = false;     //!< created by a store / inverse addi
    Opcode op = Opcode::NumOpcodes;
    std::int32_t imm = 0;
    MapEntry in1;
    MapEntry in2;
    MapEntry out;
    std::uint64_t lruStamp = 0;
};

/** Configuration of the IT. */
struct ItParams {
    unsigned entries = 512;
    unsigned assoc = 2;
};

/** The integration table. */
class IntegrationTable
{
  public:
    explicit IntegrationTable(const ItParams &params = {});

    /**
     * Attach the physical register file whose reference counts this
     * table participates in. Must be called before any insert().
     */
    void attachRegFile(PhysRegFile *prf) { prf_ = prf; }

    /**
     * Look up a tuple matching (@p op, @p imm, @p in1, @p in2).
     * Counts one table access. Returns the slot or InvalidItSlot.
     */
    ItSlot lookup(Opcode op, std::int32_t imm, const MapEntry &in1,
                  const MapEntry &in2);

    /** Entry at @p slot (must be valid). */
    const ItEntry &entry(ItSlot slot) const;

    /**
     * Insert a tuple, evicting LRU within the set. Counts one table
     * access. Returns the slot written.
     */
    ItSlot insert(const ItEntry &tuple);

    /** Invalidate one slot (no-op if already invalid). */
    void invalidateSlot(ItSlot slot);

    /** Invalidate every entry that names @p preg as an *input*
     *  (called when a register is freed). */
    void invalidatePreg(PhysReg preg);

    /**
     * Free-pool pressure relief: invalidate the least-recently-used
     * entry whose output register is held only by this table, freeing
     * that register. Returns true if a register was freed.
     */
    bool reclaimLru();

    /** Drop everything, releasing held references. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t invalidations() const { return invalidations_; }

    unsigned numEntries() const { return params_.entries; }

  private:
    unsigned setIndex(Opcode op, std::int32_t imm, const MapEntry &in1,
                      const MapEntry &in2) const;

    /** Register @p slot in the per-preg back-pointer lists. */
    void trackPregs(ItSlot slot, const ItEntry &tuple);

    /** Mark @p slot invalid and release its output reference. */
    void release(ItSlot slot);

    ItParams params_;
    PhysRegFile *prf_ = nullptr;
    unsigned numSets_;
    std::vector<ItEntry> slots_;
    std::uint64_t lruClock_ = 0;

    /** preg -> slots that may reference it (lazily cleaned). */
    std::vector<std::vector<ItSlot>> pregSlots_;

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace reno
