#include "reno/renamer.hpp"

#include "common/log.hpp"

namespace reno
{

RenoConfig
RenoConfig::meOnly()
{
    RenoConfig c;
    c.me = true;
    return c;
}

RenoConfig
RenoConfig::meCf()
{
    RenoConfig c;
    c.me = true;
    c.cf = true;
    return c;
}

RenoConfig
RenoConfig::full()
{
    RenoConfig c;
    c.me = true;
    c.cf = true;
    c.cse = true;
    c.ra = true;
    c.itLoadsOnly = true;
    return c;
}

RenoConfig
RenoConfig::fullIt()
{
    RenoConfig c = full();
    c.itLoadsOnly = false;
    return c;
}

RenoConfig
RenoConfig::integrationOnly()
{
    RenoConfig c;
    c.me = true;
    c.cse = true;
    c.ra = true;
    c.itLoadsOnly = false;
    return c;
}

RenoConfig
RenoConfig::loadsIntegrationOnly()
{
    RenoConfig c;
    c.me = true;
    c.cse = true;
    c.ra = true;
    c.itLoadsOnly = true;
    return c;
}

RenoRenamer::RenoRenamer(const RenoConfig &config, unsigned num_pregs)
    : config_(config), prf_(num_pregs), it_(config.it)
{
    prf_.setOnFree([this](PhysReg p) { it_.invalidatePreg(p); });
    it_.attachRegFile(&prf_);
    beginGroup();
}

bool
RenoRenamer::ensureFreePreg()
{
    if (prf_.hasFree())
        return true;
    // The IT extends register lifetimes past retirement; under pool
    // pressure, reclaim the least-recently-used table-only value.
    if (config_.usesIt() && it_.reclaimLru())
        return prf_.hasFree();
    return false;
}

void
RenoRenamer::initialize(const std::uint64_t reg_values[NumLogRegs])
{
    for (unsigned r = 0; r < NumLogRegs; ++r) {
        const PhysReg p = prf_.alloc();
        prf_.setValue(p, r == RegZero ? 0 : reg_values[r]);
        map_.set(static_cast<LogReg>(r), MapEntry{p, 0});
    }
}

void
RenoRenamer::beginGroup()
{
    for (auto &g : group_)
        g = GroupWrite{};
}

std::uint64_t
RenoRenamer::eliminatedTotal() const
{
    std::uint64_t sum = 0;
    for (unsigned k = 1; k < NumElimKinds; ++k)
        sum += elimCounts_[k];
    return sum;
}

Opcode
RenoRenamer::reverseLoadOp(Opcode store_op)
{
    switch (store_op) {
      case Opcode::STQ: return Opcode::LDQ;
      case Opcode::STL: return Opcode::LDL;
      case Opcode::STB: return Opcode::LDBU;
      default: panic("reverseLoadOp on non-store");
    }
}

bool
RenoRenamer::commutative(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::MUL:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::SEQ:
        return true;
      default:
        return false;
    }
}

RenameOut
RenoRenamer::rename(const RenameIn &in)
{
    RenameOut out = renameInternal(in);

    ++renamed_;
    ++elimCounts_[static_cast<unsigned>(out.elim)];

    // Intra-group dependence tracking for the dependent-elimination
    // restriction.
    if (out.hasDest) {
        GroupWrite &g = group_[in.inst.dest()];
        g.written = true;
        g.eliminated = out.eliminated();
    }

    if (out.misintegrated)
        ++pendingMisintegrations_;

    // Oracle invariant: the mapping must describe the value the
    // instruction produces. Skipped while a misintegration flush is
    // pending: instructions younger than a misintegrated load rename
    // through its stale mapping, but all of them are squashed and
    // re-renamed when the flush fires at the load's retirement.
    if (config_.verifyValues && out.hasDest &&
        pendingMisintegrations_ == 0) {
        const std::uint64_t mapped =
            prf_.value(out.destPreg) +
            static_cast<std::uint64_t>(
                static_cast<std::int64_t>(out.destDisp));
        if (mapped != in.result) {
            panic("RENO sharing invariant broken: %s maps to p%u+%d "
                  "= 0x%llx but computes 0x%llx",
                  disassemble(in.inst).c_str(),
                  static_cast<unsigned>(out.destPreg),
                  static_cast<int>(out.destDisp),
                  static_cast<unsigned long long>(mapped),
                  static_cast<unsigned long long>(in.result));
        }
    }
    return out;
}

RenameOut
RenoRenamer::renameInternal(const RenameIn &in)
{
    const Instruction &inst = in.inst;
    RenameOut out;

    // ---- rename sources (map-table lookups, MTI) ---------------------
    out.numSrcs = inst.numSrcs();
    bool depends_on_group_elim = false;
    for (unsigned i = 0; i < out.numSrcs; ++i) {
        const LogReg lr = inst.src(i);
        const MapEntry &me = map_.get(lr);
        out.src[i] = SrcOp{me.preg, me.disp};
        if (group_[lr].written && group_[lr].eliminated)
            depends_on_group_elim = true;
    }

    out.hasDest = inst.hasDest();
    if (out.hasDest)
        out.prevMap = map_.get(inst.dest());

    // ---- elimination decision ----------------------------------------
    // 1. RENO_CF (subsumes RENO_ME when enabled): register-immediate
    //    additions fold into the source's mapping.
    if (inst.isCfCandidate() && !depends_on_group_elim) {
        const MapEntry src_map = map_.get(inst.src(0));
        if (config_.cf) {
            const bool safe = config_.exactOverflowCheck
                ? foldSafeExact(src_map.disp, inst.imm)
                : foldSafeConservative(src_map.disp, inst.imm);
            if (safe) {
                out.elim = inst.isMove() ? ElimKind::Move : ElimKind::Fold;
                out.destPreg = src_map.preg;
                out.destDisp =
                    static_cast<std::int16_t>(src_map.disp + inst.imm);
            } else {
                ++overflowCancels_;
            }
        } else if (config_.me && inst.isMove()) {
            // Without CF the map table has no displacements; a move
            // simply shares its source register.
            out.elim = ElimKind::Move;
            out.destPreg = src_map.preg;
            out.destDisp = src_map.disp;  // always 0 when CF is off
        }
    } else if (inst.isCfCandidate() && depends_on_group_elim &&
               (config_.cf || (config_.me && inst.isMove()))) {
        ++groupDepCancels_;
    }

    // 2. Integration (RENO_CSE / RENO_RA) via the IT.
    if (!out.eliminated() && config_.usesIt() && !depends_on_group_elim) {
        if (isLoad(inst.op) && out.hasDest) {
            const MapEntry base{out.src[0].preg, out.src[0].disp};
            const ItSlot slot =
                it_.lookup(inst.op, inst.imm, base, MapEntry{});
            if (slot != InvalidItSlot) {
                const ItEntry &e = it_.entry(slot);
                // Reverse entries come from RENO_RA, forward from CSE;
                // honor the individual enables.
                if ((e.reverse && config_.ra) ||
                    (!e.reverse && config_.cse)) {
                    out.elim = e.reverse ? ElimKind::Ra : ElimKind::Cse;
                    out.destPreg = e.out.preg;
                    out.destDisp = e.out.disp;
                    // Oracle staleness check, standing in for the
                    // retirement re-execution of register integration.
                    const std::uint64_t shared =
                        prf_.value(e.out.preg) +
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(e.out.disp));
                    if (shared != in.result) {
                        out.misintegrated = true;
                        ++misintegrations_;
                        // The flush refetches this load; drop the stale
                        // tuple so it renames conventionally next time.
                        it_.invalidateSlot(slot);
                    }
                }
            }
        } else if (config_.cse && !config_.itLoadsOnly && out.hasDest &&
                   inst.info().cls == InstClass::IntAlu) {
            MapEntry in1{out.src[0].preg, out.src[0].disp};
            MapEntry in2;
            if (out.numSrcs > 1)
                in2 = MapEntry{out.src[1].preg, out.src[1].disp};
            if (commutative(inst.op) && out.numSrcs == 2 &&
                (in2.preg < in1.preg ||
                 (in2.preg == in1.preg && in2.disp < in1.disp))) {
                std::swap(in1, in2);
            }
            const ItSlot slot = it_.lookup(inst.op, inst.imm, in1, in2);
            if (slot != InvalidItSlot) {
                const ItEntry &e = it_.entry(slot);
                out.elim = ElimKind::Cse;
                out.destPreg = e.out.preg;
                out.destDisp = e.out.disp;
            }
        }
    }

    // ---- destination handling (output selection + MTW) ---------------
    if (out.hasDest) {
        if (out.eliminated()) {
            prf_.incRef(out.destPreg);
        } else {
            out.destPreg = prf_.alloc();
            out.destDisp = 0;
            prf_.setValue(out.destPreg, in.result);
        }
        map_.set(inst.dest(), MapEntry{out.destPreg, out.destDisp});
    }

    // ---- IT entry creation for non-eliminated instructions -----------
    if (!out.eliminated() && config_.usesIt())
        insertItEntries(in, out);

    return out;
}

void
RenoRenamer::insertItEntries(const RenameIn &in, RenameOut &out)
{
    const Instruction &inst = in.inst;

    if (isLoad(inst.op) && out.hasDest && config_.cse) {
        // Forward entry: a later identical load shares our output.
        ItEntry e;
        e.op = inst.op;
        e.imm = inst.imm;
        e.in1 = MapEntry{out.src[0].preg, out.src[0].disp};
        e.out = MapEntry{out.destPreg, 0};
        out.createdSlot = it_.insert(e);
        return;
    }

    if (isStore(inst.op) && config_.ra) {
        // Reverse entry: the matching future load shares the store's
        // data register (speculative memory bypassing).
        ItEntry e;
        e.reverse = true;
        e.op = reverseLoadOp(inst.op);
        e.imm = inst.imm;
        e.in1 = MapEntry{out.src[0].preg, out.src[0].disp};
        e.out = MapEntry{out.src[1].preg, out.src[1].disp};
        out.createdSlot = it_.insert(e);
        return;
    }

    if (!config_.itLoadsOnly && config_.cse && out.hasDest &&
        inst.info().cls == InstClass::IntAlu) {
        MapEntry in1{out.src[0].preg, out.src[0].disp};
        MapEntry in2;
        if (out.numSrcs > 1)
            in2 = MapEntry{out.src[1].preg, out.src[1].disp};
        if (commutative(inst.op) && out.numSrcs == 2 &&
            (in2.preg < in1.preg ||
             (in2.preg == in1.preg && in2.disp < in1.disp))) {
            std::swap(in1, in2);
        }
        ItEntry e;
        e.op = inst.op;
        e.imm = inst.imm;
        e.in1 = in1;
        e.in2 = in2;
        e.out = MapEntry{out.destPreg, 0};
        out.createdSlot = it_.insert(e);

        // Reverse entry for register-immediate additions: lets the
        // inverse addition (stack-pointer increment) integrate (paper
        // Figure 3, bottom).
        if (inst.op == Opcode::ADDI && inst.imm != 0 &&
            fitsSigned(-std::int64_t{inst.imm}, 16)) {
            ItEntry r;
            r.reverse = true;
            r.op = Opcode::ADDI;
            r.imm = -inst.imm;
            r.in1 = MapEntry{out.destPreg, 0};
            r.out = in1;
            out.createdSlot2 = it_.insert(r);
        }
    }
}

void
RenoRenamer::rollback(const Instruction &inst, const RenameOut &out)
{
    if (out.misintegrated) {
        if (pendingMisintegrations_ == 0)
            panic("misintegration rollback underflow");
        --pendingMisintegrations_;
    }
    if (out.createdSlot != InvalidItSlot)
        it_.invalidateSlot(out.createdSlot);
    if (out.createdSlot2 != InvalidItSlot)
        it_.invalidateSlot(out.createdSlot2);
    if (out.hasDest) {
        map_.set(inst.dest(), out.prevMap);
        prf_.decRef(out.destPreg);
    }
}

void
RenoRenamer::retire(const RenameOut &out)
{
    if (out.hasDest)
        prf_.decRef(out.prevMap.preg);
}

MapCheckpoint
RenoRenamer::takeCheckpoint()
{
    MapCheckpoint cp;
    for (unsigned r = 0; r < NumLogRegs; ++r) {
        cp.map[r] = map_.get(static_cast<LogReg>(r));
        prf_.incRef(cp.map[r].preg);
    }
    cp.live = true;
    return cp;
}

void
RenoRenamer::restoreCheckpoint(MapCheckpoint &cp)
{
    if (!cp.live)
        panic("restoreCheckpoint on a dead checkpoint");
    // Reinstall the snapshot and drop the checkpoint's pin references.
    // The references representing the restored mappings themselves are
    // still held by their original (pre-checkpoint) writers: those
    // writers' overwriters are all younger than the checkpoint, hence
    // squashed, never retired. Callers must drop the squashed
    // instructions' own references via releaseRename(). Restoring a
    // checkpoint older than a retired instruction is illegal (real
    // hardware releases checkpoints no later than retirement).
    for (unsigned r = 0; r < NumLogRegs; ++r) {
        map_.set(static_cast<LogReg>(r), cp.map[r]);
        prf_.decRef(cp.map[r].preg);
    }
    cp.live = false;
    beginGroup();
}

void
RenoRenamer::releaseCheckpoint(MapCheckpoint &cp)
{
    if (!cp.live)
        panic("releaseCheckpoint on a dead checkpoint");
    for (unsigned r = 0; r < NumLogRegs; ++r)
        prf_.decRef(cp.map[r].preg);
    cp.live = false;
}

void
RenoRenamer::releaseRename(const RenameOut &out)
{
    if (out.misintegrated) {
        if (pendingMisintegrations_ == 0)
            panic("misintegration release underflow");
        --pendingMisintegrations_;
    }
    if (out.createdSlot != InvalidItSlot)
        it_.invalidateSlot(out.createdSlot);
    if (out.createdSlot2 != InvalidItSlot)
        it_.invalidateSlot(out.createdSlot2);
    if (out.hasDest)
        prf_.decRef(out.destPreg);
}

} // namespace reno
