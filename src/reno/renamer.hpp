/**
 * @file
 * The RENO renamer (paper sections 2 and 3.2): a register renamer with
 * map-table short-circuiting implementing
 *
 *   RENO_ME  - move elimination,
 *   RENO_CF  - constant folding of register-immediate additions via
 *              the extended [p:d] map table,
 *   RENO_CSE - common-subexpression elimination via the integration
 *              table, and
 *   RENO_RA  - speculative memory bypassing via reverse IT entries.
 *
 * The renamer works purely on physical register *names* plus immediate
 * values; it never reads the register file. Oracle values are consulted
 * only (a) to verify the sharing invariant in tests and (b) to detect
 * load misintegration, which real hardware detects by retirement
 * re-execution (the timing charge for that flush is applied by the
 * core at retirement).
 *
 * Per the paper, two dependent instructions are never eliminated in
 * the same rename group (cycle); the simplification is implemented by
 * the beginGroup()/rename() protocol.
 */
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "isa/inst.hpp"
#include "reno/integration_table.hpp"
#include "reno/map_table.hpp"
#include "reno/physregs.hpp"

namespace reno
{

/** How an instruction was collapsed, if at all. */
enum class ElimKind : std::uint8_t {
    None,  //!< renamed conventionally
    Move,  //!< RENO_ME: move (addi with immediate 0)
    Fold,  //!< RENO_CF: register-immediate addition folded
    Cse,   //!< RENO_CSE: redundant with a forward IT entry
    Ra,    //!< RENO_RA: load bypassed through a reverse IT entry
};

/** Number of ElimKind values; sizes every per-kind stat array so a
 *  new elimination kind cannot silently truncate statistics. */
inline constexpr unsigned NumElimKinds =
    static_cast<unsigned>(ElimKind::Ra) + 1;

/** Which optimizations are enabled, and table geometry. */
struct RenoConfig {
    bool me = false;
    bool cf = false;
    bool cse = false;
    bool ra = false;
    ItParams it{512, 2};
    /**
     * Division of labor (paper section 2.4): when true the IT holds
     * only load tuples (forward entries from loads, reverse entries
     * from stores) and RENO_CF handles ALU operations; when false the
     * IT also integrates ALU operations ("full integration").
     */
    bool itLoadsOnly = true;
    /** Use the exact 16-bit overflow check instead of the paper's
     *  conservative top-two-bit check (ablation). */
    bool exactOverflowCheck = false;
    /** Assert the register-sharing value invariant at rename. */
    bool verifyValues = true;

    bool usesIt() const { return cse || ra; }
    bool any() const { return me || cf || cse || ra; }

    // --- presets matching the paper's configurations -----------------
    static RenoConfig baseline() { return {}; }
    static RenoConfig meOnly();
    static RenoConfig meCf();
    /** The paper's default RENO: ME+CF plus loads-only integration. */
    static RenoConfig full();
    /** RENO with a full (ALU + load) integration table. */
    static RenoConfig fullIt();
    /** Register integration alone (no CF): full-table CSE+RA. */
    static RenoConfig integrationOnly();
    /** Loads-only integration without CF. */
    static RenoConfig loadsIntegrationOnly();
};

/** Everything the renamer needs to know about one instruction. */
struct RenameIn {
    Instruction inst;
    std::uint64_t result = 0;  //!< oracle destination value
};

/**
 * A map-table checkpoint (paper section 3.4). The snapshot carries the
 * full extended mappings -- physical register names AND accumulated
 * displacements, which the paper notes have "checkpoint-restoration
 * semantics" (as opposed to the instruction-only immediates in the
 * re-order buffer, which have rollback semantics). While live, the
 * checkpoint holds one reference to every mapped physical register, so
 * none of them can be recycled before the checkpoint dies.
 */
struct MapCheckpoint {
    MapEntry map[NumLogRegs];
    bool live = false;
};

/** A renamed source operand: [p : d]. */
struct SrcOp {
    PhysReg preg = InvalidPhysReg;
    std::int16_t disp = 0;
};

/** The renamer's output for one instruction. */
struct RenameOut {
    SrcOp src[2];
    unsigned numSrcs = 0;
    bool hasDest = false;
    PhysReg destPreg = InvalidPhysReg;  //!< allocated or shared
    std::int16_t destDisp = 0;
    MapEntry prevMap;                   //!< overwritten mapping
    ElimKind elim = ElimKind::None;
    bool misintegrated = false;  //!< load whose shared value is stale
    ItSlot createdSlot = InvalidItSlot;
    ItSlot createdSlot2 = InvalidItSlot;  //!< reverse entry (full mode)

    bool eliminated() const { return elim != ElimKind::None; }
};

/** The RENO renamer. */
class RenoRenamer
{
  public:
    RenoRenamer(const RenoConfig &config, unsigned num_pregs);

    /**
     * Establish the initial architectural mappings: one physical
     * register per logical register, loaded with @p reg_values.
     */
    void initialize(const std::uint64_t reg_values[NumLogRegs]);

    /** Start a new rename group (cycle); resets intra-group state. */
    void beginGroup();

    /**
     * True if a physical register is (or can be made) available,
     * reclaiming an IT-pinned register under free-pool pressure.
     */
    bool ensureFreePreg();

    /**
     * Rename one instruction. The caller must guarantee a free
     * physical register when in.inst.hasDest() (a conservatively
     * eliminable instruction may end up not needing it).
     */
    RenameOut rename(const RenameIn &in);

    /**
     * Undo a rename during squash recovery. Must be called in reverse
     * rename order. Restores the map table, drops the new reference,
     * and invalidates IT entries the instruction created.
     */
    void rollback(const Instruction &inst, const RenameOut &out);

    /** Commit a rename at retirement: releases the overwritten
     *  mapping's reference. */
    void retire(const RenameOut &out);

    // --- map-table checkpointing (paper section 3.4) -------------------

    /**
     * Snapshot the current architectural mappings. Each mapped
     * physical register gains one reference for the checkpoint's
     * lifetime.
     */
    MapCheckpoint takeCheckpoint();

    /**
     * Install @p cp as the architectural map (mis-speculation
     * recovery). The checkpoint's references transfer to the map; the
     * caller must still drop the references held by the squashed
     * in-flight instructions themselves (rollback() without its
     * map-table writes, or per-instruction release). Consumes @p cp.
     */
    void restoreCheckpoint(MapCheckpoint &cp);

    /** Drop a checkpoint without restoring it (the speculation it
     *  guarded committed). Consumes @p cp. */
    void releaseCheckpoint(MapCheckpoint &cp);

    /**
     * Drop the references an in-flight instruction holds, without
     * touching the map table: the checkpoint-recovery counterpart of
     * rollback(). Must be called for every squashed instruction when
     * recovering via restoreCheckpoint().
     */
    void releaseRename(const RenameOut &out);

    const MapTable &mapTable() const { return map_; }
    MapTable &mapTable() { return map_; }
    PhysRegFile &physRegs() { return prf_; }
    const PhysRegFile &physRegs() const { return prf_; }
    IntegrationTable &it() { return it_; }
    const IntegrationTable &it() const { return it_; }
    const RenoConfig &config() const { return config_; }

    // --- statistics ---------------------------------------------------
    std::uint64_t renamed() const { return renamed_; }
    std::uint64_t eliminated(ElimKind kind) const
    {
        return elimCounts_[static_cast<unsigned>(kind)];
    }
    std::uint64_t eliminatedTotal() const;
    std::uint64_t overflowCancels() const { return overflowCancels_; }
    std::uint64_t groupDepCancels() const { return groupDepCancels_; }
    std::uint64_t misintegrations() const { return misintegrations_; }

  private:
    /** Decide whether @p in can be collapsed, and how. */
    RenameOut renameInternal(const RenameIn &in);

    void insertItEntries(const RenameIn &in, RenameOut &out);

    /** Map a store opcode to the load opcode of its reverse entry. */
    static Opcode reverseLoadOp(Opcode store_op);

    /** True iff operands of @p op commute (canonicalized IT keys). */
    static bool commutative(Opcode op);

    RenoConfig config_;
    PhysRegFile prf_;
    MapTable map_;
    IntegrationTable it_;

    /** Intra-group tracking: was this logical register written by an
     *  instruction renamed in the current group, and was that
     *  instruction eliminated? */
    struct GroupWrite {
        bool written = false;
        bool eliminated = false;
    };
    GroupWrite group_[NumLogRegs];

    /** Misintegrated loads renamed but not yet squashed; while
     *  nonzero, younger mappings are transiently stale and the value
     *  invariant is not checked. */
    std::uint64_t pendingMisintegrations_ = 0;

    std::uint64_t renamed_ = 0;
    std::uint64_t elimCounts_[NumElimKinds] = {};
    std::uint64_t overflowCancels_ = 0;
    std::uint64_t groupDepCancels_ = 0;
    std::uint64_t misintegrations_ = 0;
};

} // namespace reno
