/**
 * @file
 * Physical register file state with reference counting (paper
 * section 3.1).
 *
 * There is no explicit free list: a register is free iff its reference
 * count is zero. Allocations and RENO sharing operations increment the
 * count; retirement of an overwriting instruction and squash rollback
 * decrement it. Counters are sized so overflow is impossible (max
 * sharing degree = architectural registers + in-flight instructions).
 *
 * The file also tracks an *oracle value* per physical register. The
 * hardware RENO never reads values; the oracle values exist purely so
 * the simulator can assert the register-sharing invariant:
 *     value(preg) + disp == value the eliminated instruction computes.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Reference-counted physical register file. */
class PhysRegFile
{
  public:
    /**
     * @param num_pregs total physical registers
     * @param on_free   invoked when a register's count drops to zero
     *                  (used to invalidate integration table entries)
     */
    explicit PhysRegFile(unsigned num_pregs,
                         std::function<void(PhysReg)> on_free = {});

    unsigned numPregs() const { return static_cast<unsigned>(
        counts_.size()); }

    /** Number of currently free registers (count == 0). */
    unsigned numFree() const { return numFree_; }

    bool hasFree() const { return numFree_ > 0; }

    /** Allocate a free register: its count becomes 1. */
    PhysReg alloc();

    /** RENO sharing operation: one more reference to @p preg. */
    void incRef(PhysReg preg);

    /** Drop one reference; frees the register when it reaches zero. */
    void decRef(PhysReg preg);

    unsigned refCount(PhysReg preg) const { return counts_.at(preg); }

    /** Sum of all reference counts (tested conservation invariant). */
    std::uint64_t totalRefs() const;

    // --- oracle values (simulation-only; RENO never reads these) -----
    std::uint64_t value(PhysReg preg) const { return values_.at(preg); }
    void setValue(PhysReg preg, std::uint64_t v) { values_.at(preg) = v; }

    void setOnFree(std::function<void(PhysReg)> cb)
    {
        onFree_ = std::move(cb);
    }

  private:
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint64_t> values_;
    std::vector<PhysReg> freeQueue_;   //!< FIFO recycling order
    size_t freeHead_ = 0;
    unsigned numFree_;
    std::function<void(PhysReg)> onFree_;
};

} // namespace reno
