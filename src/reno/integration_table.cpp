#include "reno/integration_table.hpp"

#include "common/log.hpp"

namespace reno
{

IntegrationTable::IntegrationTable(const ItParams &params)
    : params_(params)
{
    if (params_.assoc == 0 || params_.entries % params_.assoc != 0)
        fatal("integration table: entries must be a multiple of assoc");
    numSets_ = params_.entries / params_.assoc;
    slots_.resize(params_.entries);
    pregSlots_.resize(65536);
}

unsigned
IntegrationTable::setIndex(Opcode op, std::int32_t imm, const MapEntry &in1,
                           const MapEntry &in2) const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(op));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(imm)));
    mix(in1.preg);
    mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(in1.disp)));
    mix(in2.preg);
    mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(in2.disp)));
    return static_cast<unsigned>(h % numSets_);
}

ItSlot
IntegrationTable::lookup(Opcode op, std::int32_t imm, const MapEntry &in1,
                         const MapEntry &in2)
{
    ++accesses_;
    const unsigned set = setIndex(op, imm, in1, in2);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const ItSlot slot = set * params_.assoc + w;
        ItEntry &e = slots_[slot];
        if (e.valid && e.op == op && e.imm == imm && e.in1 == in1 &&
            e.in2 == in2) {
            e.lruStamp = ++lruClock_;
            ++hits_;
            return slot;
        }
    }
    return InvalidItSlot;
}

const ItEntry &
IntegrationTable::entry(ItSlot slot) const
{
    const ItEntry &e = slots_.at(slot);
    if (!e.valid)
        panic("IT entry(%u) on invalid slot", slot);
    return e;
}

void
IntegrationTable::trackPregs(ItSlot slot, const ItEntry &tuple)
{
    // Only inputs: the output register cannot be freed while the
    // entry holds a reference to it.
    auto track = [&](PhysReg p) {
        if (p != InvalidPhysReg && p < pregSlots_.size())
            pregSlots_[p].push_back(slot);
    };
    track(tuple.in1.preg);
    track(tuple.in2.preg);
}

void
IntegrationTable::release(ItSlot slot)
{
    ItEntry &e = slots_[slot];
    if (!e.valid)
        return;
    e.valid = false;
    ++invalidations_;
    if (prf_ && e.out.preg != InvalidPhysReg)
        prf_->decRef(e.out.preg);
}

ItSlot
IntegrationTable::insert(const ItEntry &tuple)
{
    ++accesses_;
    ++insertions_;
    const unsigned set = setIndex(tuple.op, tuple.imm, tuple.in1,
                                  tuple.in2);
    // Replace an entry with an identical signature if one exists (the
    // lookup that detects it shares the insertion port); otherwise
    // evict LRU. Without signature replacement, a stale duplicate
    // could shadow the fresh tuple and cause needless misintegrations.
    ItSlot victim = InvalidItSlot;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const ItSlot slot = set * params_.assoc + w;
        const ItEntry &e = slots_[slot];
        if (e.valid && e.op == tuple.op && e.imm == tuple.imm &&
            e.in1 == tuple.in1 && e.in2 == tuple.in2) {
            victim = slot;
            break;
        }
    }
    if (victim == InvalidItSlot) {
        victim = set * params_.assoc;
        for (unsigned w = 0; w < params_.assoc; ++w) {
            const ItSlot slot = set * params_.assoc + w;
            const ItEntry &e = slots_[slot];
            if (!e.valid) {
                victim = slot;
                break;
            }
            if (e.lruStamp < slots_[victim].lruStamp)
                victim = slot;
        }
    }
    release(victim);  // drop any evicted entry's reference
    if (prf_ && tuple.out.preg != InvalidPhysReg)
        prf_->incRef(tuple.out.preg);
    slots_[victim] = tuple;
    slots_[victim].valid = true;
    slots_[victim].lruStamp = ++lruClock_;
    trackPregs(victim, slots_[victim]);
    return victim;
}

void
IntegrationTable::invalidateSlot(ItSlot slot)
{
    if (slot < slots_.size())
        release(slot);
}

void
IntegrationTable::invalidatePreg(PhysReg preg)
{
    if (preg >= pregSlots_.size())
        return;
    // Swap the list out: release() can cascade (freeing an output
    // register re-enters here for that register's own input uses).
    std::vector<ItSlot> list;
    list.swap(pregSlots_[preg]);
    for (const ItSlot slot : list) {
        const ItEntry &e = slots_[slot];
        if (e.valid && (e.in1.preg == preg || e.in2.preg == preg))
            release(slot);
    }
}

bool
IntegrationTable::reclaimLru()
{
    if (!prf_)
        return false;
    // A register is reclaimable when the table holds ALL of its
    // references (it is neither architecturally mapped nor in flight).
    // One register can be pinned by several tuples (e.g. a forward and
    // a reverse entry), so compare against the per-register pin count,
    // not against 1 -- and release every pinning entry so the register
    // actually returns to the free pool.
    std::vector<unsigned> pins(prf_->numPregs(), 0);
    for (const ItEntry &e : slots_) {
        if (e.valid && e.out.preg != InvalidPhysReg)
            ++pins[e.out.preg];
    }
    ItSlot victim = InvalidItSlot;
    for (ItSlot slot = 0; slot < slots_.size(); ++slot) {
        const ItEntry &e = slots_[slot];
        if (!e.valid || e.out.preg == InvalidPhysReg)
            continue;
        if (prf_->refCount(e.out.preg) != pins[e.out.preg])
            continue;  // still architecturally mapped or in flight
        if (victim == InvalidItSlot ||
            e.lruStamp < slots_[victim].lruStamp) {
            victim = slot;
        }
    }
    if (victim == InvalidItSlot)
        return false;
    const PhysReg target = slots_[victim].out.preg;
    for (ItSlot slot = 0; slot < slots_.size(); ++slot) {
        const ItEntry &e = slots_[slot];
        if (e.valid && e.out.preg == target)
            release(slot);
    }
    return true;
}

void
IntegrationTable::reset()
{
    for (ItSlot slot = 0; slot < slots_.size(); ++slot)
        release(slot);
    for (auto &list : pregSlots_)
        list.clear();
}

} // namespace reno
