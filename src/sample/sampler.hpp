/**
 * @file
 * The sampled-simulation driver: turns (workloads x configurations)
 * into per-interval campaign jobs, so intervals parallelize across the
 * worker pool and hit the content-addressed result cache exactly like
 * full simulations.
 *
 * Per workload the sampler (1) obtains a functional profile (dynamic
 * instruction count) -- from the checkpoint store when warm, else by
 * one functional pass, (2) plans systematically-spaced intervals,
 * (3) captures functional checkpoints at the interval starts that the
 * result cache cannot already satisfy (one more functional pass, only
 * when needed), and (4) submits one sweep::Job per (workload, config,
 * interval). Checkpoints are shared by every configuration and are
 * persisted under `<cache-dir>/ckpt` when the campaign cache is
 * disk-backed.
 *
 * Everything is deterministic: sampled reports are byte-identical
 * across --jobs 1 and --jobs N and across cold/warm caches.
 */
#pragma once

#include <string>
#include <vector>

#include "sample/checkpoint.hpp"
#include "sample/interval.hpp"
#include "sweep/campaign.hpp"
#include "sweep/reporter.hpp"

namespace reno::sample
{

/** Sampling plan plus the standard campaign-engine knobs. */
struct SampleOptions {
    SamplePlan plan;
    sweep::CampaignOptions campaign;
};

/** Whole-program estimate for one (workload, configuration). */
struct SampledRun {
    const Workload *workload = nullptr;
    std::string config;
    unsigned numCores = 1;  //!< cores the configuration runs
    SampledEstimate est;
};

/** All estimates of one sampled campaign, plus engine counters. */
struct SampledCampaign {
    std::vector<SampledRun> runs;
    sweep::CampaignStats stats;
};

/**
 * Sample every workload under every configuration. Results come back
 * in (workload-major, then configuration) order.
 */
SampledCampaign
runSampledCampaign(const std::vector<const Workload *> &workloads,
                   const std::vector<NamedConfig> &configs,
                   const SampleOptions &options);

/** One row of a sampled-vs-full validation. */
struct ValidationRow {
    const Workload *workload = nullptr;
    std::string config;
    unsigned numCores = 1;  //!< cores the configuration runs
    std::uint64_t totalInsts = 0;
    std::uint64_t sampledInsts = 0;  //!< detailed insts measured
    double fullIpc = 0.0;
    double sampledIpc = 0.0;
    double errorPct = 0.0;  //!< signed (sampled - full) / full * 100
    double ipcCi95 = 0.0;
    /** Signed per-core IPC error (%) by CoreStatSlot, one entry per
     *  occupied slot (min(numCores, NumCoreStatSlots)); empty on a
     *  single core, where the whole-machine error is the per-core
     *  error. Each entry folds into maxAbsErrorPct. */
    std::vector<double> coreErrPct;
};

/** Sampled-vs-full comparison over a workload/configuration set. */
struct ValidationReport {
    std::vector<ValidationRow> rows;
    double maxAbsErrorPct = 0.0;
    double fullSeconds = 0.0;     //!< wall clock, full campaign
    double sampledSeconds = 0.0;  //!< wall clock, sampled campaign
    sweep::CampaignStats fullStats;
    sweep::CampaignStats sampledStats;

    double
    speedup() const
    {
        return sampledSeconds > 0.0 ? fullSeconds / sampledSeconds
                                    : 0.0;
    }
};

/**
 * Run every (workload, config) both ways -- full detailed simulation
 * and sampled -- and report the per-workload IPC error. Timings are
 * wall clock and go to the report struct only (render them to stderr,
 * never into the deterministic report body).
 */
ValidationReport
validateSampling(const std::vector<const Workload *> &workloads,
                 const std::vector<NamedConfig> &configs,
                 const SampleOptions &options);

/** Render sampled estimates via the standard report emitters. */
std::string renderSampled(const SampledCampaign &campaign,
                          sweep::ReportFormat format);

/** Render a validation report (deterministic fields only). */
std::string renderValidation(const ValidationReport &report,
                             sweep::ReportFormat format);

} // namespace reno::sample
