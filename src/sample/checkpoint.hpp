/**
 * @file
 * Checkpoints as cacheable artifacts. A sampled-simulation checkpoint
 * -- functional state plus functionally warmed cache/predictor tables
 * -- is fully determined by (kernel source, input seed, instruction
 * position, mem+bpred parameters), so it is keyed, like simulation
 * results, by a content digest of exactly those inputs, and optionally
 * persisted one file per key under the campaign cache directory. Each
 * persisted checkpoint carries a digest of its own contents, so a
 * corrupt or stale file is detected and regenerated instead of being
 * silently restored.
 *
 * The store also keeps one tiny "functional profile" per (kernel,
 * seed): the program's dynamic instruction count and final memory
 * digest, which interval planning needs before any checkpoint exists.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "emu/emulator.hpp"
#include "sample/interval.hpp"
#include "sample/warmup.hpp"
#include "workloads/workloads.hpp"

namespace reno::sample
{

/** Result of a whole-program functional pass (planning input). */
struct FuncProfile {
    std::uint64_t totalInsts = 0;
    /** Final memory digest of the functional pass. Recorded and
     *  persisted for diagnostics (cross-checking a cached profile
     *  against a fresh runFunctional by hand); not verified
     *  automatically. */
    std::uint64_t memDigest = 0;
};

/** Content digest over every field of a functional checkpoint. */
std::uint64_t checkpointDigest(const EmuCheckpoint &ckpt);

/** Cache key of the checkpoint at @p start_inst of a workload under
 *  @p warm_digest (a warmConfigDigest value). */
std::uint64_t checkpointKey(const Workload &workload,
                            std::uint64_t start_inst,
                            std::uint64_t warm_digest);

/** Cache key of a workload's functional profile. A multi-core
 *  profile (aggregate SPMD instruction count over @p num_cores
 *  emulator streams) keys separately; single-core keys are unchanged
 *  from before multi-core sampling existed, so existing caches stay
 *  valid. */
std::uint64_t profileKey(const Workload &workload,
                         unsigned num_cores = 1);

/**
 * Thread-safe store of sampled-simulation checkpoints and functional
 * profiles, in memory and (when constructed with a directory) on
 * disk, one text file per key. Mirrors sweep::ResultCache's layout
 * and write-then-rename discipline so both can share a --cache-dir.
 */
class CheckpointStore
{
  public:
    /** @param dir  persistence directory; empty = in-memory only. */
    explicit CheckpointStore(std::string dir = "");

    /**
     * Look up the checkpoint at (workload, start, warm params, core
     * count); memory first, then disk. Returns an unusable (empty)
     * SampleCheckpoint on a miss.
     */
    SampleCheckpoint lookup(const Workload &workload,
                            std::uint64_t start_inst,
                            const MemHierarchy::Params &mem_params,
                            const BranchPredParams &bp_params,
                            unsigned num_cores = 1);

    /** Insert a single-core checkpoint (memory, plus disk when
     *  persistent). */
    SampleCheckpoint
    store(const Workload &workload, std::uint64_t start_inst,
          EmuCheckpoint emu, const WarmState &warm);

    /** Insert a multi-core checkpoint: one functional snapshot per
     *  core (core order, warm.numCores() of them) plus the shared
     *  warmed system state, which is cloned. */
    SampleCheckpoint
    storeMulti(const Workload &workload, std::uint64_t start_inst,
               std::vector<EmuCheckpoint> emus,
               const SysWarmState &warm);

    bool lookupProfile(std::uint64_t key, FuncProfile *out);
    void storeProfile(std::uint64_t key, const FuncProfile &profile);

    const std::string &dir() const { return dir_; }

    /** Serialize / parse the checkpoint persistence format. decode()
     *  rebuilds the warm state onto models constructed from the given
     *  parameters and requires the file to snapshot exactly
     *  @p expected_cores cores; any mismatch or corruption returns
     *  false (and, when @p why is non-null, names the reason). */
    static std::string encode(const SampleCheckpoint &ckpt);
    static bool decode(const std::string &text,
                       const MemHierarchy::Params &mem_params,
                       const BranchPredParams &bp_params,
                       SampleCheckpoint *out,
                       unsigned expected_cores = 1,
                       std::string *why = nullptr);

    /** decode() that fatal()s with the rejection reason instead of
     *  returning false -- for callers (and tests) that treat a
     *  malformed checkpoint as a hard error. */
    static SampleCheckpoint
    decodeOrDie(const std::string &text,
                const MemHierarchy::Params &mem_params,
                const BranchPredParams &bp_params,
                unsigned expected_cores = 1);

    /** Serialize / parse the profile persistence format. */
    static std::string encodeProfile(const FuncProfile &profile);
    static bool decodeProfile(const std::string &text,
                              FuncProfile *out);

  private:
    std::string checkpointPath(std::uint64_t key) const;
    std::string profilePath(std::uint64_t key) const;

    std::mutex mu_;
    std::map<std::uint64_t, SampleCheckpoint> mem_;
    std::map<std::uint64_t, FuncProfile> profiles_;
    std::string dir_;
};

} // namespace reno::sample
