/**
 * @file
 * Functional warming for sampled simulation (the SMARTS insight): the
 * caches and the branch predictor accumulate state over the *entire*
 * run -- an L2 working set or a branch history cannot be reconstructed
 * by a short detailed warmup window. So the fast-forward between
 * intervals feeds every fetch, branch and data access into
 * timing-model instances at functional speed, and the warmed tables
 * are injected into the detailed core before each measured window.
 *
 * Warming is a pure function of the instruction stream: chopping it at
 * a checkpoint and resuming from the snapshot yields bit-identical
 * tables (tag fills are eager and cycle-independent; transient timing
 * state -- MSHRs, the memory bus -- is settled before measurement).
 * Warm state depends only on the memory-hierarchy and predictor
 * parameters, never on the RENO configuration, so one warming pass
 * serves every configuration of a sweep.
 *
 * Warming consumes the emulator one step() at a time (it must see
 * every access); the decoded-superblock engine still accelerates it
 * through the per-step block cursor, and accelerates the access-blind
 * fast-forward to the first window by the full superblock margin.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bpred/predictor.hpp"
#include "coherence/mesi.hpp"
#include "emu/emulator.hpp"
#include "mem/hierarchy.hpp"
#include "uarch/params.hpp"

namespace reno::sample
{

/** Digest of the parameters warm state depends on (mem + bpred +
 *  core count: a multi-core System shapes shared-level contents, so
 *  its warm state never aliases a single-core one). */
std::uint64_t warmConfigDigest(const MemHierarchy::Params &mem_params,
                               const BranchPredParams &bp_params,
                               unsigned num_cores = 1);
std::uint64_t warmConfigDigest(const CoreParams &params);

/** Functionally warmed microarchitectural state. */
class WarmState
{
  public:
    WarmState(const MemHierarchy::Params &mem_params,
              const BranchPredParams &bp_params);

    /** Clone (MemHierarchy itself is not copyable). */
    WarmState(const WarmState &other);
    WarmState &operator=(const WarmState &) = delete;

    MemHierarchy mem;
    BranchPredictor bp;
    /** Last I$ block fed by warmStep (one access per block, matching
     *  the core's fetch; part of the state so warming composes across
     *  checkpoint boundaries). */
    Addr lastFetchBlock = ~Addr{0};

    const MemHierarchy::Params &memParams() const { return memParams_; }
    const BranchPredParams &bpParams() const { return bpParams_; }

  private:
    MemHierarchy::Params memParams_;
    BranchPredParams bpParams_;
};

/**
 * Step @p emu until at least @p inst_bound instructions have executed
 * (or the program exits), feeding the fetch, branch and data streams
 * into @p warm. All accesses are fed at cycle 0: tag fills are eager,
 * so the warmed tables are independent of timing.
 */
void warmStep(Emulator &emu, WarmState &warm,
              std::uint64_t inst_bound);

/**
 * Functionally warmed state of an N-core System: per-core private
 * L1s and branch predictors over one shared L2/L3 stack, with a
 * warming-mode CoherenceBus keeping the MESI directory and the L1
 * tag arrays in lockstep. The shared stack is assembled with exactly
 * the System's logic, and the per-core hierarchies attach to it the
 * way the System's cores do -- so injecting this state into a System
 * of the same geometry is a level-by-level copy.
 *
 * Warming is tag-pure: the bus's latency penalties are computed and
 * discarded (tag fills are eager and cycle-independent), so the warm
 * state depends only on the mem/bpred geometry and the core count,
 * never on the snoop latencies or the RENO configuration.
 */
class SysWarmState
{
  public:
    SysWarmState(const MemHierarchy::Params &mem_params,
                 const BranchPredParams &bp_params,
                 unsigned num_cores);

    /** Deep clone (the hierarchy graph is not copyable). */
    SysWarmState(const SysWarmState &other);
    SysWarmState &operator=(const SysWarmState &) = delete;

    unsigned numCores() const { return numCores_; }

    MemHierarchy &coreMem(unsigned i) { return *coreMem_[i]; }
    const MemHierarchy &coreMem(unsigned i) const
    {
        return *coreMem_[i];
    }
    BranchPredictor &coreBp(unsigned i) { return coreBps_[i]; }
    const BranchPredictor &coreBp(unsigned i) const
    {
        return coreBps_[i];
    }
    /** Last I$ block fed per core (see WarmState::lastFetchBlock). */
    Addr &lastFetchBlock(unsigned i) { return lastFetchBlock_[i]; }
    Addr lastFetchBlock(unsigned i) const
    {
        return lastFetchBlock_[i];
    }

    std::size_t numSharedLevels() const { return shared_.size(); }
    Cache &sharedLevel(std::size_t i) { return *shared_[i]; }
    const Cache &sharedLevel(std::size_t i) const
    {
        return *shared_[i];
    }

    CoherenceBus &bus() { return *bus_; }
    const CoherenceBus &bus() const { return *bus_; }

    const MemHierarchy::Params &memParams() const { return memParams_; }
    const BranchPredParams &bpParams() const { return bpParams_; }

  private:
    void build();

    MemHierarchy::Params memParams_;
    BranchPredParams bpParams_;
    unsigned numCores_;

    std::unique_ptr<MainMemory> memory_;
    std::vector<std::unique_ptr<Cache>> shared_;  //!< L2 first
    std::vector<const Cache *> sharedView_;
    std::unique_ptr<CoherenceBus> bus_;
    std::vector<std::unique_ptr<MemHierarchy>> coreMem_;
    std::vector<BranchPredictor> coreBps_;
    std::vector<Addr> lastFetchBlock_;
};

/**
 * Interleaved functional warming of an N-core System: step the
 * emulators until their aggregate executed-instruction count reaches
 * @p aggregate_bound (or every program exits), feeding each core's
 * fetch/branch/data streams into its slice of @p warm through the
 * shared stack and the warming bus.
 *
 * The interleave rule is stateless -- always step the live emulator
 * with the fewest executed instructions, ties to the lowest core id
 * -- which produces the canonical one-instruction round-robin in
 * core order and, crucially, resumes bit-exactly from a chop at ANY
 * aggregate bound: warming composes across checkpoint boundaries
 * exactly like the single-core warmStep.
 */
void warmStepMulti(const std::vector<Emulator *> &emus,
                   SysWarmState &warm,
                   std::uint64_t aggregate_bound);

} // namespace reno::sample
