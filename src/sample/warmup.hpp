/**
 * @file
 * Functional warming for sampled simulation (the SMARTS insight): the
 * caches and the branch predictor accumulate state over the *entire*
 * run -- an L2 working set or a branch history cannot be reconstructed
 * by a short detailed warmup window. So the fast-forward between
 * intervals feeds every fetch, branch and data access into
 * timing-model instances at functional speed, and the warmed tables
 * are injected into the detailed core before each measured window.
 *
 * Warming is a pure function of the instruction stream: chopping it at
 * a checkpoint and resuming from the snapshot yields bit-identical
 * tables (tag fills are eager and cycle-independent; transient timing
 * state -- MSHRs, the memory bus -- is settled before measurement).
 * Warm state depends only on the memory-hierarchy and predictor
 * parameters, never on the RENO configuration, so one warming pass
 * serves every configuration of a sweep.
 *
 * Warming consumes the emulator one step() at a time (it must see
 * every access); the decoded-superblock engine still accelerates it
 * through the per-step block cursor, and accelerates the access-blind
 * fast-forward to the first window by the full superblock margin.
 */
#pragma once

#include <cstdint>

#include "bpred/predictor.hpp"
#include "emu/emulator.hpp"
#include "mem/hierarchy.hpp"
#include "uarch/params.hpp"

namespace reno::sample
{

/** Digest of the parameters warm state depends on (mem + bpred +
 *  core count: a multi-core System shapes shared-level contents, so
 *  its warm state never aliases a single-core one). */
std::uint64_t warmConfigDigest(const MemHierarchy::Params &mem_params,
                               const BranchPredParams &bp_params,
                               unsigned num_cores = 1);
std::uint64_t warmConfigDigest(const CoreParams &params);

/** Functionally warmed microarchitectural state. */
class WarmState
{
  public:
    WarmState(const MemHierarchy::Params &mem_params,
              const BranchPredParams &bp_params);

    /** Clone (MemHierarchy itself is not copyable). */
    WarmState(const WarmState &other);
    WarmState &operator=(const WarmState &) = delete;

    MemHierarchy mem;
    BranchPredictor bp;
    /** Last I$ block fed by warmStep (one access per block, matching
     *  the core's fetch; part of the state so warming composes across
     *  checkpoint boundaries). */
    Addr lastFetchBlock = ~Addr{0};

    const MemHierarchy::Params &memParams() const { return memParams_; }
    const BranchPredParams &bpParams() const { return bpParams_; }

  private:
    MemHierarchy::Params memParams_;
    BranchPredParams bpParams_;
};

/**
 * Step @p emu until at least @p inst_bound instructions have executed
 * (or the program exits), feeding the fetch, branch and data streams
 * into @p warm. All accesses are fed at cycle 0: tag fills are eager,
 * so the warmed tables are independent of timing.
 */
void warmStep(Emulator &emu, WarmState &warm,
              std::uint64_t inst_bound);

} // namespace reno::sample
