#include "sample/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>

#include "common/log.hpp"
#include "common/report.hpp"
#include "harness/experiment.hpp"
#include "obs/phase.hpp"
#include "sweep/thread_pool.hpp"

namespace reno::sample
{

namespace
{

/**
 * Configurations grouped by the parameters warm state depends on
 * (mem + bpred). One warming pass per group serves every member; the
 * usual sweeps (BASE / ME / ME+CF / RENO / ...) differ only in RENO
 * knobs and form a single group.
 */
struct WarmGroup {
    std::uint64_t digest = 0;
    const NamedConfig *representative = nullptr;
    std::vector<std::size_t> configIndices;
};

std::vector<WarmGroup>
groupByWarmConfig(const std::vector<NamedConfig> &configs)
{
    std::vector<WarmGroup> groups;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const std::uint64_t digest =
            warmConfigDigest(configs[ci].params);
        WarmGroup *group = nullptr;
        for (WarmGroup &g : groups) {
            if (g.digest == digest) {
                group = &g;
                break;
            }
        }
        if (!group) {
            groups.push_back({digest, &configs[ci], {}});
            group = &groups.back();
        }
        group->configIndices.push_back(ci);
    }
    return groups;
}

/** Per-workload planning state shared by the prep passes. Profiles
 *  and interval plans are per core count: an N-core config samples
 *  the AGGREGATE instruction stream, whose length and interval
 *  boundaries differ from the single-core stream's. */
struct WorkloadPrep {
    const Workload *workload = nullptr;
    std::map<unsigned, FuncProfile> profiles;
    std::map<unsigned, std::vector<PlannedInterval>> windows;
    /** checkpoints[group][window]; unusable = warm from the start. */
    std::vector<std::vector<SampleCheckpoint>> checkpoints;
};

sweep::Job
intervalJob(const Workload &workload, const NamedConfig &config,
            const IntervalWindow &window, unsigned index)
{
    sweep::Job job;
    job.workload = &workload;
    job.config = config;
    job.tag = strprintf("ivl%u", index);
    job.window = window;
    return job;
}

/**
 * Prepare one workload: profile (store-cached), plan, and capture the
 * checkpoints that uncached interval jobs will need -- one warming
 * pass per warm-config group. An interval's checkpoint is skipped
 * when every configuration's job at that interval is already in the
 * result cache, so a warm rerun does no emulation at all.
 */
void
prepareWorkload(WorkloadPrep &prep,
                const std::vector<NamedConfig> &configs,
                const std::vector<WarmGroup> &groups,
                const SamplePlan &plan, CheckpointStore &store,
                sweep::ResultCache &cache)
{
    const Workload &w = *prep.workload;
    // Trace-only wrapper: the leaf phases inside (sim.functional,
    // sample.capture) do the PhaseStats accounting.
    obs::TraceSpan prep_span("sample.prepare:" + w.name, "phase");

    // Profile and plan once per distinct core count: the aggregate
    // instruction stream of an N-core SPMD run is N times as long,
    // so its interval boundaries are its own.
    for (const WarmGroup &group : groups) {
        const unsigned cores =
            group.representative->params.sys.numCores;
        if (prep.windows.count(cores))
            continue;
        FuncProfile profile;
        const std::uint64_t pkey = profileKey(w, cores);
        if (!store.lookupProfile(pkey, &profile)) {
            const RunOutput out = runFunctionalMulti(w, cores);
            profile.totalInsts = out.emuInsts;
            profile.memDigest = out.memDigest;
            store.storeProfile(pkey, profile);
        }
        prep.profiles[cores] = profile;
        prep.windows[cores] =
            planIntervals(profile.totalInsts, plan);
    }

    prep.checkpoints.assign(groups.size(), {});

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const WarmGroup &group = groups[gi];
        const CoreParams &rep = group.representative->params;
        const unsigned cores = rep.sys.numCores;
        const std::vector<PlannedInterval> &windows =
            prep.windows.at(cores);
        prep.checkpoints[gi].resize(windows.size());

        // An interval needs a checkpoint only if some configuration
        // of this group misses the result cache at that interval.
        std::vector<std::size_t> needed;
        for (std::size_t i = 0; i < windows.size(); ++i) {
            bool miss = false;
            for (const std::size_t ci : group.configIndices) {
                const sweep::Job job = intervalJob(
                    w, configs[ci], windows[i].window,
                    static_cast<unsigned>(i));
                sweep::JobResult scratch;
                if (!cache.lookup(sweep::jobDigest(job), &scratch)) {
                    miss = true;
                    break;
                }
            }
            if (miss)
                needed.push_back(i);
        }
        if (needed.empty())
            continue;

        // Satisfy from the checkpoint store first; capture the rest
        // in one ascending functional-warming pass.
        std::vector<std::size_t> capture;
        for (const std::size_t i : needed) {
            SampleCheckpoint ckpt = store.lookup(
                w, windows[i].window.startInst, rep.mem, rep.bpred,
                cores);
            if (ckpt.usable())
                prep.checkpoints[gi][i] = std::move(ckpt);
            else
                capture.push_back(i);
        }
        if (capture.empty())
            continue;

        const Program &prog = assembleWorkload(w);
        if (cores == 1) {
            Emulator::Options opts;
            opts.randSeed = w.seed;
            Emulator emu(prog, opts);
            WarmState warm(rep.mem, rep.bpred);
            obs::PhaseSpan phase("sample.capture");
            for (const std::size_t i : capture) {
                warmStep(emu, warm, windows[i].window.startInst);
                prep.checkpoints[gi][i] = store.store(
                    w, windows[i].window.startInst,
                    emu.checkpoint(), warm);
            }
            phase.setInsts(emu.instCount());
            continue;
        }

        // Multi-core capture: one interleaved warming pass drives
        // every emulator stream through the shared stack and the
        // warming-mode MESI bus; each ascending aggregate position
        // snapshots all N functional states plus the system warm
        // state.
        std::vector<std::unique_ptr<Emulator>> emus;
        std::vector<Emulator *> emu_ptrs;
        for (unsigned c = 0; c < cores; ++c) {
            Emulator::Options opts;
            opts.randSeed = w.seed + c;
            opts.coreId = c;
            emus.push_back(std::make_unique<Emulator>(prog, opts));
            emu_ptrs.push_back(emus.back().get());
        }
        SysWarmState warm(rep.mem, rep.bpred, cores);
        obs::PhaseSpan phase("sample.capture");
        for (const std::size_t i : capture) {
            warmStepMulti(emu_ptrs, warm,
                          windows[i].window.startInst);
            std::vector<EmuCheckpoint> snaps;
            snaps.reserve(cores);
            for (const auto &emu : emus)
                snaps.push_back(emu->checkpoint());
            prep.checkpoints[gi][i] = store.storeMulti(
                w, windows[i].window.startInst, std::move(snaps),
                warm);
        }
        std::uint64_t aggregate = 0;
        for (const auto &emu : emus)
            aggregate += emu->instCount();
        phase.setInsts(aggregate);
    }
}

} // namespace

SampledCampaign
runSampledCampaign(const std::vector<const Workload *> &workloads,
                   const std::vector<NamedConfig> &configs,
                   const SampleOptions &options)
{
    if (workloads.empty() || configs.empty())
        fatal("sampled campaign needs workloads and configurations");
    if (options.plan.intervals == 0 || options.plan.measureInsts == 0)
        fatal("sampled campaign needs a plan with intervals > 0 and "
              "measured insts > 0");
    for (const NamedConfig &cfg : configs) {
        if (cfg.params.sys.numCores < 1 ||
            cfg.params.sys.numCores > SysParams::MaxCores)
            fatal("sampled simulation supports 1..%u cores (config "
                  "'%s' runs %u)", SysParams::MaxCores,
                  cfg.name.c_str(), cfg.params.sys.numCores);
    }

    // One result cache spans the prep probe and the campaign run, and
    // the checkpoint store shares its persistence directory.
    sweep::ResultCache local_cache(options.campaign.cacheDir);
    sweep::ResultCache &cache =
        options.campaign.cache ? *options.campaign.cache : local_cache;
    CheckpointStore store(options.campaign.cacheDir.empty()
                              ? ""
                              : options.campaign.cacheDir + "/ckpt");

    const std::vector<WarmGroup> groups = groupByWarmConfig(configs);

    // Map each configuration to its warm group for job construction.
    std::vector<std::size_t> config_group(configs.size(), 0);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        for (const std::size_t ci : groups[gi].configIndices)
            config_group[ci] = gi;
    }

    // Prep passes are independent per workload: run them on the pool.
    std::vector<WorkloadPrep> preps(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i)
        preps[i].workload = workloads[i];
    const unsigned workers =
        sweep::resolveJobCount(options.campaign.jobs);
    if (workers <= 1 || preps.size() <= 1) {
        for (WorkloadPrep &prep : preps)
            prepareWorkload(prep, configs, groups, options.plan,
                            store, cache);
    } else {
        sweep::ThreadPool pool(unsigned(
            std::min<std::size_t>(workers, preps.size())));
        for (WorkloadPrep &prep : preps) {
            pool.submit(
                [&prep, &configs, &groups, &options, &store, &cache] {
                    prepareWorkload(prep, configs, groups,
                                    options.plan, store, cache);
                });
        }
        pool.waitIdle();
    }

    // One job per (workload, configuration, interval). A config's
    // interval plan depends on its core count (aggregate stream).
    sweep::Campaign campaign;
    for (const WorkloadPrep &prep : preps) {
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const std::vector<PlannedInterval> &windows =
                prep.windows.at(configs[ci].params.sys.numCores);
            for (std::size_t i = 0; i < windows.size(); ++i) {
                sweep::Job job =
                    intervalJob(*prep.workload, configs[ci],
                                windows[i].window,
                                static_cast<unsigned>(i));
                job.checkpoint =
                    prep.checkpoints[config_group[ci]][i];
                campaign.add(std::move(job));
            }
        }
    }

    sweep::CampaignOptions run_opts = options.campaign;
    run_opts.cache = &cache;
    const sweep::CampaignResults results = campaign.run(run_opts);

    SampledCampaign out;
    out.stats = results.stats();
    const bool want_cpi =
        obs::CpiAccounting::instance().stackEnabled();
    std::size_t cursor = 0;
    for (const WorkloadPrep &prep : preps) {
        for (const NamedConfig &cfg : configs) {
            const unsigned cores = cfg.params.sys.numCores;
            const std::vector<PlannedInterval> &plan_windows =
                prep.windows.at(cores);
            std::vector<SimResult> windows;
            std::vector<obs::CpiStack> stacks;
            windows.reserve(plan_windows.size());
            stacks.reserve(plan_windows.size());
            for (std::size_t i = 0; i < plan_windows.size(); ++i) {
                const sweep::JobResult &jr = results.at(cursor++);
                windows.push_back(jr.sim);
                // A cache-replayed interval carries no stack; the
                // zero stack makes aggregateIntervals drop hasCpi.
                stacks.push_back(jr.cpi.valid ? jr.cpi.machine
                                              : obs::CpiStack{});
            }
            SampledRun run;
            run.workload = prep.workload;
            run.config = cfg.name;
            run.numCores = cores;
            run.est = aggregateIntervals(
                prep.profiles.at(cores).totalInsts, plan_windows,
                windows, want_cpi ? &stacks : nullptr);
            out.runs.push_back(std::move(run));
        }
    }
    return out;
}

ValidationReport
validateSampling(const std::vector<const Workload *> &workloads,
                 const std::vector<NamedConfig> &configs,
                 const SampleOptions &options)
{
    using clock = std::chrono::steady_clock;

    sweep::Campaign full;
    for (const Workload *w : workloads) {
        for (const NamedConfig &cfg : configs)
            full.add(*w, cfg);
    }
    const auto t0 = clock::now();
    const sweep::CampaignResults full_results =
        full.run(options.campaign);
    const auto t1 = clock::now();
    const SampledCampaign sampled =
        runSampledCampaign(workloads, configs, options);
    const auto t2 = clock::now();

    ValidationReport report;
    report.fullSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    report.sampledSeconds =
        std::chrono::duration<double>(t2 - t1).count();
    report.fullStats = full_results.stats();
    report.sampledStats = sampled.stats;

    std::size_t cursor = 0;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const SampledRun &run = sampled.runs[cursor];
            const SimResult &full_sim =
                full_results.at(cursor).sim;
            ++cursor;

            ValidationRow row;
            row.workload = run.workload;
            row.config = run.config;
            row.numCores = run.numCores;
            row.totalInsts = run.est.totalInsts;
            row.sampledInsts = run.est.sum.retired;
            row.fullIpc = full_sim.ipc();
            row.sampledIpc = run.est.ipc;
            row.ipcCi95 = run.est.ipcCi95;
            row.errorPct =
                row.fullIpc > 0.0
                    ? (row.sampledIpc - row.fullIpc) / row.fullIpc *
                          100.0
                    : 0.0;
            report.maxAbsErrorPct = std::max(
                report.maxAbsErrorPct, std::fabs(row.errorPct));
            if (run.numCores > 1) {
                const unsigned slots = std::min<unsigned>(
                    run.numCores, NumCoreStatSlots);
                for (unsigned s = 0; s < slots; ++s) {
                    const double full_core = full_sim.coreIpc(s);
                    const double err =
                        full_core > 0.0
                            ? (run.est.coreIpcEst[s] - full_core) /
                                  full_core * 100.0
                            : 0.0;
                    row.coreErrPct.push_back(err);
                    report.maxAbsErrorPct = std::max(
                        report.maxAbsErrorPct, std::fabs(err));
                }
            }
            report.rows.push_back(std::move(row));
        }
    }
    return report;
}

namespace
{

std::string
render(const std::vector<ReportRecord> &records,
       sweep::ReportFormat format)
{
    switch (format) {
      case sweep::ReportFormat::Json:
        return renderJson(records);
      case sweep::ReportFormat::Csv:
        return renderCsv(records);
      case sweep::ReportFormat::Table:
      default:
        return renderTable(records);
    }
}

} // namespace

std::string
renderSampled(const SampledCampaign &campaign,
              sweep::ReportFormat format)
{
    // Per-core columns appear only when some run is multi-core, and
    // then uniformly on every record: renderCsv requires a rectangular
    // field set, so single-core rows pad the extra slots with zero.
    unsigned core_slots = 0;
    for (const SampledRun &run : campaign.runs) {
        if (run.numCores > 1)
            core_slots = std::max(
                core_slots, std::min<unsigned>(run.numCores,
                                               NumCoreStatSlots));
    }

    std::vector<ReportRecord> records;
    records.reserve(campaign.runs.size());
    for (const SampledRun &run : campaign.runs) {
        ReportRecord rec;
        addField(rec, "workload", run.workload->name);
        addField(rec, "suite", run.workload->suite);
        addField(rec, "config", run.config);
        if (core_slots > 0)
            addField(rec, "cores", std::uint64_t{run.numCores});
        addField(rec, "total_insts", run.est.totalInsts);
        addField(rec, "intervals",
                 std::uint64_t{run.est.intervals});
        addField(rec, "measured_intervals",
                 std::uint64_t{run.est.measuredIntervals});
        addField(rec, "sampled_insts", run.est.sum.retired);
        addField(rec, "ipc_est", run.est.ipc, 4);
        addField(rec, "ipc_ci95", run.est.ipcCi95, 4);
        for (unsigned s = 0; s < core_slots; ++s) {
            addField(rec, strprintf("ipc_est_c%u", s),
                     run.numCores > 1 ? run.est.coreIpcEst[s] : 0.0,
                     4);
        }
        addField(rec, "est_cycles", run.est.estCycles);
        addField(rec, "elim_total_pct",
                 run.est.sum.elimFraction() * 100, 2);
        records.push_back(std::move(rec));
    }
    return render(records, format);
}

std::string
renderValidation(const ValidationReport &report,
                 sweep::ReportFormat format)
{
    // Same rectangular-field rule as renderSampled: per-core error
    // columns appear only when some row is multi-core, padded with
    // zero on single-core rows.
    std::size_t core_slots = 0;
    for (const ValidationRow &row : report.rows)
        core_slots = std::max(core_slots, row.coreErrPct.size());

    std::vector<ReportRecord> records;
    records.reserve(report.rows.size());
    for (const ValidationRow &row : report.rows) {
        ReportRecord rec;
        addField(rec, "workload", row.workload->name);
        addField(rec, "suite", row.workload->suite);
        addField(rec, "config", row.config);
        if (core_slots > 0)
            addField(rec, "cores", std::uint64_t{row.numCores});
        addField(rec, "total_insts", row.totalInsts);
        addField(rec, "sampled_insts", row.sampledInsts);
        addField(rec, "ipc_full", row.fullIpc, 4);
        addField(rec, "ipc_sampled", row.sampledIpc, 4);
        addField(rec, "ipc_err_pct", row.errorPct, 2);
        for (std::size_t s = 0; s < core_slots; ++s) {
            addField(rec, strprintf("ipc_err_c%zu", s),
                     s < row.coreErrPct.size() ? row.coreErrPct[s]
                                               : 0.0,
                     2);
        }
        addField(rec, "ipc_ci95", row.ipcCi95, 4);
        records.push_back(std::move(rec));
    }
    return render(records, format);
}

} // namespace reno::sample
