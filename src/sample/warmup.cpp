#include "sample/warmup.hpp"

#include "common/digest.hpp"

namespace reno::sample
{

namespace
{

void
digestCacheParams(Fnv64 &h, const CacheParams &p)
{
    h.update(std::uint64_t{p.sizeBytes});
    h.update(std::uint64_t{p.assoc});
    h.update(std::uint64_t{p.blockBytes});
    h.update(std::uint64_t{p.latency});
    h.update(std::uint64_t{p.numMshrs});
    h.update(std::uint64_t{static_cast<unsigned>(p.prefetch.kind)});
    h.update(std::uint64_t{p.prefetch.degree});
    h.update(std::uint64_t{p.prefetch.tableEntries});
    h.update(std::uint64_t{p.prefetch.regionBytes});
    h.update(p.writebackTraffic);
}

} // namespace

std::uint64_t
warmConfigDigest(const MemHierarchy::Params &mem_params,
                 const BranchPredParams &bp_params,
                 unsigned num_cores)
{
    Fnv64 h;
    h.update("reno-warmcfg-v4");
    h.update(std::uint64_t{num_cores});
    digestCacheParams(h, mem_params.icache);
    digestCacheParams(h, mem_params.dcache);
    digestCacheParams(h, mem_params.l2);
    h.update(std::uint64_t{mem_params.extraLevels.size()});
    for (const CacheParams &level : mem_params.extraLevels)
        digestCacheParams(h, level);
    h.update(mem_params.modelWritebacks);
    h.update(std::uint64_t{mem_params.memory.accessLatency});
    h.update(std::uint64_t{mem_params.memory.busBytes});
    h.update(std::uint64_t{mem_params.memory.busClockDivider});
    const DirPredParams &dir = bp_params.dir;
    h.update(std::uint64_t{static_cast<unsigned>(dir.kind)});
    h.update(std::uint64_t{dir.bimodalEntries});
    h.update(std::uint64_t{dir.gshareEntries});
    h.update(std::uint64_t{dir.chooserEntries});
    h.update(std::uint64_t{dir.historyBits});
    h.update(std::uint64_t{dir.tageBaseEntries});
    h.update(std::uint64_t{dir.tageTables});
    h.update(std::uint64_t{dir.tageEntries});
    h.update(std::uint64_t{dir.tageTagBits});
    h.update(std::uint64_t{dir.tageMinHist});
    h.update(std::uint64_t{dir.tageMaxHist});
    h.update(std::uint64_t{dir.perceptronEntries});
    h.update(std::uint64_t{dir.perceptronHistBits});
    h.update(std::uint64_t{bp_params.btb.entries});
    h.update(std::uint64_t{bp_params.btb.assoc});
    h.update(std::uint64_t{bp_params.ras.entries});
    h.update(bp_params.indirect.enabled);
    h.update(std::uint64_t{bp_params.indirect.entries});
    h.update(std::uint64_t{bp_params.indirect.historyBits});
    return h.value();
}

std::uint64_t
warmConfigDigest(const CoreParams &params)
{
    return warmConfigDigest(params.mem, params.bpred,
                            params.sys.numCores);
}

WarmState::WarmState(const MemHierarchy::Params &mem_params,
                     const BranchPredParams &bp_params)
    : mem(mem_params), bp(bp_params), memParams_(mem_params),
      bpParams_(bp_params)
{
}

WarmState::WarmState(const WarmState &other)
    : mem(other.memParams_), bp(other.bp),
      lastFetchBlock(other.lastFetchBlock),
      memParams_(other.memParams_), bpParams_(other.bpParams_)
{
    mem.copyStateFrom(other.mem);
}

void
warmStep(Emulator &emu, WarmState &warm, std::uint64_t inst_bound)
{
    // Warming must observe every access, so this is per-step by
    // nature; step() still rides the emulator's decoded-block cursor
    // (one table walk per block, not per instruction). The pure
    // fast-forward to a window start -- no warming -- goes through
    // Emulator::runUntil and the full superblock engine.
    const Addr iblock_bytes = warm.memParams().icache.blockBytes;
    while (!emu.done() && emu.instCount() < inst_bound) {
        const Addr pc = emu.state().pc;
        const ExecRecord rec = emu.step();
        const Addr block = pc / iblock_bytes;
        if (block != warm.lastFetchBlock) {
            warm.mem.fetchAccess(pc, 0);
            warm.lastFetchBlock = block;
        }
        const InstClass cls = rec.inst.info().cls;
        if (cls == InstClass::Load) {
            warm.mem.dataAccess(rec.effAddr, 0, false);
        } else if (cls == InstClass::Store) {
            warm.mem.dataAccess(rec.effAddr, 0, true);
        } else if (isControl(rec.inst.op)) {
            warm.bp.predict(pc, rec.inst);
            warm.bp.update(pc, rec.inst, rec.taken, rec.npc);
        }
    }
}

} // namespace reno::sample
