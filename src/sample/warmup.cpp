#include "sample/warmup.hpp"

#include "common/digest.hpp"
#include "common/log.hpp"

namespace reno::sample
{

namespace
{

void
digestCacheParams(Fnv64 &h, const CacheParams &p)
{
    h.update(std::uint64_t{p.sizeBytes});
    h.update(std::uint64_t{p.assoc});
    h.update(std::uint64_t{p.blockBytes});
    h.update(std::uint64_t{p.latency});
    h.update(std::uint64_t{p.numMshrs});
    h.update(std::uint64_t{static_cast<unsigned>(p.prefetch.kind)});
    h.update(std::uint64_t{p.prefetch.degree});
    h.update(std::uint64_t{p.prefetch.tableEntries});
    h.update(std::uint64_t{p.prefetch.regionBytes});
    h.update(p.writebackTraffic);
}

} // namespace

std::uint64_t
warmConfigDigest(const MemHierarchy::Params &mem_params,
                 const BranchPredParams &bp_params,
                 unsigned num_cores)
{
    Fnv64 h;
    // v5: multi-core warm state spans the coherence directory and
    // per-core L1/bpred slices (SysWarmState), so the digest tag
    // bumps with the checkpoint warm-half layout.
    h.update("reno-warmcfg-v5");
    h.update(std::uint64_t{num_cores});
    digestCacheParams(h, mem_params.icache);
    digestCacheParams(h, mem_params.dcache);
    digestCacheParams(h, mem_params.l2);
    h.update(std::uint64_t{mem_params.extraLevels.size()});
    for (const CacheParams &level : mem_params.extraLevels)
        digestCacheParams(h, level);
    h.update(mem_params.modelWritebacks);
    h.update(std::uint64_t{mem_params.memory.accessLatency});
    h.update(std::uint64_t{mem_params.memory.busBytes});
    h.update(std::uint64_t{mem_params.memory.busClockDivider});
    const DirPredParams &dir = bp_params.dir;
    h.update(std::uint64_t{static_cast<unsigned>(dir.kind)});
    h.update(std::uint64_t{dir.bimodalEntries});
    h.update(std::uint64_t{dir.gshareEntries});
    h.update(std::uint64_t{dir.chooserEntries});
    h.update(std::uint64_t{dir.historyBits});
    h.update(std::uint64_t{dir.tageBaseEntries});
    h.update(std::uint64_t{dir.tageTables});
    h.update(std::uint64_t{dir.tageEntries});
    h.update(std::uint64_t{dir.tageTagBits});
    h.update(std::uint64_t{dir.tageMinHist});
    h.update(std::uint64_t{dir.tageMaxHist});
    h.update(std::uint64_t{dir.perceptronEntries});
    h.update(std::uint64_t{dir.perceptronHistBits});
    h.update(std::uint64_t{bp_params.btb.entries});
    h.update(std::uint64_t{bp_params.btb.assoc});
    h.update(std::uint64_t{bp_params.ras.entries});
    h.update(bp_params.indirect.enabled);
    h.update(std::uint64_t{bp_params.indirect.entries});
    h.update(std::uint64_t{bp_params.indirect.historyBits});
    return h.value();
}

std::uint64_t
warmConfigDigest(const CoreParams &params)
{
    return warmConfigDigest(params.mem, params.bpred,
                            params.sys.numCores);
}

WarmState::WarmState(const MemHierarchy::Params &mem_params,
                     const BranchPredParams &bp_params)
    : mem(mem_params), bp(bp_params), memParams_(mem_params),
      bpParams_(bp_params)
{
}

WarmState::WarmState(const WarmState &other)
    : mem(other.memParams_), bp(other.bp),
      lastFetchBlock(other.lastFetchBlock),
      memParams_(other.memParams_), bpParams_(other.bpParams_)
{
    mem.copyStateFrom(other.mem);
}

SysWarmState::SysWarmState(const MemHierarchy::Params &mem_params,
                           const BranchPredParams &bp_params,
                           unsigned num_cores)
    : memParams_(mem_params), bpParams_(bp_params),
      numCores_(num_cores)
{
    build();
}

SysWarmState::SysWarmState(const SysWarmState &other)
    : memParams_(other.memParams_), bpParams_(other.bpParams_),
      numCores_(other.numCores_)
{
    build();
    for (std::size_t i = 0; i < shared_.size(); ++i)
        shared_[i]->copyStateFrom(*other.shared_[i]);
    if (!bus_->importState(other.bus_->exportState()))
        fatal("SysWarmState clone: bus state does not round-trip");
    for (unsigned i = 0; i < numCores_; ++i) {
        coreMem_[i]->copyStateFrom(*other.coreMem_[i]);
        coreBps_[i] = other.coreBps_[i];
    }
    lastFetchBlock_ = other.lastFetchBlock_;
}

void
SysWarmState::build()
{
    if (numCores_ < 1)
        fatal("SysWarmState: core count must be positive");

    // The shared stack and memory, assembled exactly as the System
    // assembles its own (sys/system.cpp): back to front, write-back
    // modeling propagated, the memory bus moving one block of the
    // deepest level per transfer.
    std::vector<CacheParams> stack;
    stack.push_back(memParams_.l2);
    for (const CacheParams &extra : memParams_.extraLevels)
        stack.push_back(extra);
    if (memParams_.modelWritebacks) {
        for (CacheParams &level : stack)
            level.writebackTraffic = true;
    }
    memory_ = std::make_unique<MainMemory>(memParams_.memory,
                                           stack.back().blockBytes);
    shared_.resize(stack.size());
    for (std::size_t i = stack.size(); i-- > 0;) {
        MemLevel *next =
            i + 1 < stack.size()
                ? static_cast<MemLevel *>(shared_[i + 1].get())
                : static_cast<MemLevel *>(memory_.get());
        shared_[i] = std::make_unique<Cache>(stack[i], next);
    }
    for (const auto &level : shared_)
        sharedView_.push_back(level.get());

    // Warming-mode bus: default latencies -- the penalties are
    // discarded, only the directory/tag transitions matter.
    SysParams sys;
    sys.numCores = numCores_;
    bus_ = std::make_unique<CoherenceBus>(
        sys, memParams_.dcache.blockBytes, numCores_);

    coreMem_.reserve(numCores_);
    coreBps_.reserve(numCores_);
    for (unsigned i = 0; i < numCores_; ++i) {
        MemHierarchy::Attach attach;
        attach.backend = shared_[0].get();
        attach.shared = sharedView_;
        attach.bus = bus_.get();
        attach.coreId = i;
        coreMem_.push_back(
            std::make_unique<MemHierarchy>(memParams_, &attach));
        coreBps_.emplace_back(bpParams_);
    }
    lastFetchBlock_.assign(numCores_, ~Addr{0});
}

void
warmStepMulti(const std::vector<Emulator *> &emus, SysWarmState &warm,
              std::uint64_t aggregate_bound)
{
    if (emus.size() != warm.numCores())
        fatal("warmStepMulti: %u-core warm state given %zu emulators",
              warm.numCores(), emus.size());

    const Addr iblock_bytes = warm.memParams().icache.blockBytes;
    std::uint64_t total = 0;
    for (const Emulator *emu : emus)
        total += emu->instCount();

    while (total < aggregate_bound) {
        // The live emulator with the fewest executed instructions,
        // ties to the lowest core id: the stateless round-robin rule
        // (see the header comment).
        Emulator *next = nullptr;
        unsigned next_core = 0;
        for (unsigned i = 0; i < emus.size(); ++i) {
            if (emus[i]->done())
                continue;
            if (!next || emus[i]->instCount() < next->instCount()) {
                next = emus[i];
                next_core = i;
            }
        }
        if (!next)
            break;  // every program exited before the bound

        const Addr pc = next->state().pc;
        const ExecRecord rec = next->step();
        ++total;
        const Addr block = pc / iblock_bytes;
        if (block != warm.lastFetchBlock(next_core)) {
            warm.coreMem(next_core).fetchAccess(pc, 0);
            warm.lastFetchBlock(next_core) = block;
        }
        const InstClass cls = rec.inst.info().cls;
        if (cls == InstClass::Load) {
            warm.coreMem(next_core).dataAccess(rec.effAddr, 0, false);
        } else if (cls == InstClass::Store) {
            warm.coreMem(next_core).dataAccess(rec.effAddr, 0, true);
        } else if (isControl(rec.inst.op)) {
            warm.coreBp(next_core).predict(pc, rec.inst);
            warm.coreBp(next_core).update(pc, rec.inst, rec.taken,
                                          rec.npc);
        }
    }
}

void
warmStep(Emulator &emu, WarmState &warm, std::uint64_t inst_bound)
{
    // Warming must observe every access, so this is per-step by
    // nature; step() still rides the emulator's decoded-block cursor
    // (one table walk per block, not per instruction). The pure
    // fast-forward to a window start -- no warming -- goes through
    // Emulator::runUntil and the full superblock engine.
    const Addr iblock_bytes = warm.memParams().icache.blockBytes;
    while (!emu.done() && emu.instCount() < inst_bound) {
        const Addr pc = emu.state().pc;
        const ExecRecord rec = emu.step();
        const Addr block = pc / iblock_bytes;
        if (block != warm.lastFetchBlock) {
            warm.mem.fetchAccess(pc, 0);
            warm.lastFetchBlock = block;
        }
        const InstClass cls = rec.inst.info().cls;
        if (cls == InstClass::Load) {
            warm.mem.dataAccess(rec.effAddr, 0, false);
        } else if (cls == InstClass::Store) {
            warm.mem.dataAccess(rec.effAddr, 0, true);
        } else if (isControl(rec.inst.op)) {
            warm.bp.predict(pc, rec.inst);
            warm.bp.update(pc, rec.inst, rec.taken, rec.npc);
        }
    }
}

} // namespace reno::sample
