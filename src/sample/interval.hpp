/**
 * @file
 * The interval engine of the sampled-simulation subsystem
 * (SimpleScalar-lineage fast-forward + interval sampling): fast-forward
 * functionally to an interval's start (optionally from a checkpoint),
 * run the detailed core through a warmup window (branch predictor,
 * caches and integration table warming; stats discarded) and then a
 * measured window, and aggregate per-interval measurements into a
 * whole-program estimate with error bars.
 *
 * All statistics in SimResult are monotonic counters, so "freezing"
 * stats during warmup is exact: a window's contribution is the
 * difference of two result() snapshots.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "emu/emulator.hpp"
#include "obs/cpistack.hpp"
#include "sample/warmup.hpp"
#include "uarch/core.hpp"
#include "uarch/params.hpp"
#include "workloads/workloads.hpp"

namespace reno::sample
{

/** Sampling knobs: how many intervals, how warm, how long. */
struct SamplePlan {
    std::uint64_t intervals = 10;     //!< measured windows per program
    std::uint64_t warmupInsts = 2000; //!< detailed warmup before each
    std::uint64_t measureInsts = 5000; //!< measured window length
    /**
     * Length of the exactly-measured cold stratum at the program
     * start; 0 (the default) means one tenth of the program. Program
     * startup -- compulsory misses, data-structure initialization,
     * gradual warm-in -- is transient, not stationary, so
     * extrapolating a sampled window across it biases the estimate;
     * instead the cold stratum is simulated in full with cold
     * caches, exactly as a full run executes it, and only the
     * remainder is sampled.
     */
    std::uint64_t coldInsts = 0;
};

/**
 * One interval of a sampled run: fast-forward to startInst, warm up
 * the detailed core for warmupInsts, measure measureInsts.
 * measureInsts == 0 means "not sampled" (a full detailed run).
 */
struct IntervalWindow {
    std::uint64_t startInst = 0;
    std::uint64_t warmupInsts = 0;
    std::uint64_t measureInsts = 0;

    bool operator==(const IntervalWindow &other) const = default;
};

/** One planned interval: the window plus aggregation metadata. */
struct PlannedInterval {
    IntervalWindow window;
    /** Dynamic instructions this interval represents (its stratum). */
    std::uint64_t repInsts = 0;
    /** Exactly measured stratum (measurement == representation); its
     *  per-interval IPC is excluded from the variance estimate. */
    bool exact = false;
};

/**
 * Stratified systematic placement. The first stratum -- the cold
 * program start -- is measured exactly (cold caches, no warmup;
 * plan.coldInsts instructions, or a tenth of the program when 0).
 * The remaining stream is divided into plan.intervals - 1 equal
 * strides with one warmup+measurement window centered in each. A
 * plan that would execute at least a third of the program (or a
 * single-interval plan) degenerates to one exact full-program
 * interval.
 */
std::vector<PlannedInterval> planIntervals(std::uint64_t total_insts,
                                           const SamplePlan &plan);

/** Field-wise difference of two monotonic result snapshots. */
SimResult deltaResult(const SimResult &post, const SimResult &pre);

/** Field-wise accumulation (for whole-program aggregation). */
void accumulateResult(SimResult &into, const SimResult &add);

/**
 * A sampled-simulation checkpoint: the functional state plus the
 * functionally warmed cache/predictor tables at the same instruction
 * position. Both halves are derived deterministically from (kernel,
 * seed, position[, mem+bpred params]), so a checkpoint accelerates a
 * job without being part of its content digest.
 */
struct SampleCheckpoint {
    std::shared_ptr<const EmuCheckpoint> emu;  //!< core 0
    /** Single-core warmed tables; null on multi-core checkpoints
     *  (which warm through sysWarm instead). */
    std::shared_ptr<const WarmState> warm;
    /** Remaining cores' functional checkpoints on a multi-core
     *  System (entry i is core i + 1): every core runs its own
     *  emulator, so each needs its own functional snapshot. Empty on
     *  a single-core checkpoint. */
    std::vector<std::shared_ptr<const EmuCheckpoint>> extraEmus;
    /** Multi-core warmed state: shared stack, MESI directory and the
     *  per-core L1/bpred slices. Null on single-core checkpoints. */
    std::shared_ptr<const SysWarmState> sysWarm;

    /** Cores this checkpoint snapshots. */
    unsigned
    numCores() const
    {
        return 1 + static_cast<unsigned>(extraEmus.size());
    }

    /** Aggregate instruction position (the sum over the cores). */
    std::uint64_t
    instCount() const
    {
        std::uint64_t total = emu ? emu->instCount : 0;
        for (const auto &extra : extraEmus)
            total += extra ? extra->instCount : 0;
        return total;
    }

    bool
    usable() const
    {
        if (emu == nullptr)
            return false;
        for (const auto &extra : extraEmus) {
            if (extra == nullptr)
                return false;
        }
        if (extraEmus.empty())
            return warm != nullptr;
        return sysWarm != nullptr &&
               sysWarm->numCores() == numCores();
    }
};

/**
 * Execute one interval. The interval's semantics are fixed: caches
 * and branch predictor functionally warmed over the FULL history
 * [0, startInst), then warmupInsts of detailed warmup, then the
 * measured window's stats delta. A usable checkpoint at or before
 * startInst (with matching warm-state parameters) only accelerates
 * the warming -- results are bit-identical with or without it.
 * Returns an all-zero SimResult when the program ends before the
 * measured window begins.
 *
 * When @p cpi_out is non-null and obs::CpiAccounting is enabled, it
 * receives the measured window's CPI-stack delta (summed over cores
 * on a multi-core config); otherwise it is left zeroed.
 */
SimResult runIntervalDetailed(const Workload &workload,
                              const CoreParams &params,
                              const IntervalWindow &window,
                              const SampleCheckpoint *ckpt = nullptr,
                              obs::CpiStack *cpi_out = nullptr);

/**
 * The multi-core interval engine (runIntervalDetailed dispatches
 * here when params.sys.numCores > 1; the single-core path is
 * untouched). Window positions and lengths are AGGREGATE retired
 * -instruction counts -- the sum over the cores -- matching the
 * deterministic interleave of functional warming (warmStepMulti) and
 * of System::runUntilRetired. Warming drives all N emulator streams
 * through the shared stack and the warming-mode MESI bus, then the
 * warmed directory, shared levels, L1s and predictors are injected
 * into a fresh System for the detailed window.
 */
SimResult runIntervalMulti(const Workload &workload,
                           const CoreParams &params,
                           const IntervalWindow &window,
                           const SampleCheckpoint *ckpt = nullptr,
                           obs::CpiStack *cpi_out = nullptr);

/** Whole-program estimate aggregated from measured windows. */
struct SampledEstimate {
    std::uint64_t totalInsts = 0;   //!< full dynamic instruction count
    unsigned intervals = 0;         //!< windows planned
    unsigned measuredIntervals = 0; //!< windows that measured anything
    SimResult sum;                  //!< summed measured windows

    double ipc = 0.0;      //!< stratified whole-program estimate
    double ipcCi95 = 0.0;  //!< 95% confidence half-width on the mean
    std::uint64_t estCycles = 0;  //!< stratified cycle estimate

    /** Stratified per-core IPC estimates by CoreStatSlot (cores
     *  beyond the last slot aggregate into it, like SimResult's
     *  per-core arrays). Slots that measured nothing hold 0; on a
     *  single core, slot 0 equals the whole-machine estimate. */
    std::array<double, NumCoreStatSlots> coreIpcEst{};

    std::vector<double> intervalIpc;  //!< per sampled (non-exact) window

    /** Extrapolated whole-program CPI stack (same stratified
     *  estimator as estCycles), filled only when aggregateIntervals
     *  was handed a window stack for every measured window. */
    bool hasCpi = false;
    std::array<double, obs::NumCpiBuckets> cpiEst{};
};

/**
 * Stratified aggregation: each interval's measured cycles are scaled
 * to the stratum it represents (estCycles = sum_i cycles_i *
 * repInsts_i / retired_i), so an exactly-measured cold stratum
 * contributes its true cost and sampled strata extrapolate theirs.
 * @p windows must align one-to-one with @p plan (planIntervals
 * order).
 *
 * When @p stacks is non-null (aligned with @p windows), each window's
 * CPI-stack buckets extrapolate with the same stratum scale into
 * SampledEstimate::cpiEst. A measured window whose stack is empty
 * (e.g. replayed from a result cache that predates accounting)
 * invalidates the stack estimate: hasCpi stays false.
 */
SampledEstimate aggregateIntervals(std::uint64_t total_insts,
                                   const std::vector<PlannedInterval> &plan,
                                   const std::vector<SimResult> &windows,
                                   const std::vector<obs::CpiStack>
                                       *stacks = nullptr);

} // namespace reno::sample
