#include "sample/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/digest.hpp"
#include "common/log.hpp"

namespace reno::sample
{

namespace
{

// v3 generalized the warm half to a hierarchy of arbitrary depth:
// a "levels N" header followed by one per-cache block carrying dirty
// and prefetched line flags plus the prefetcher training table. v4
// replaced the hardwired hybrid-predictor block with the generic
// composable-stack encoding (any direction engine's tables, BTB,
// RAS, indirect-target table). v5 added multi-core slots: a "cores N"
// header followed by one functional block per core (each core of a
// System runs its own emulator), then the warm half. On one core the
// warm half is the single-core WarmState layout, byte-stable across
// versions; on N > 1 cores it is the SysWarmState layout -- the MESI
// directory ("bus" + sorted "busln" lines), the shared stack
// ("sharedlevels" + cache blocks) and one "corewarm" block per core
// (lastblk, private L1s, full predictor state).
constexpr const char *CheckpointTag = "reno-checkpoint v5";
constexpr const char *ProfileTag = "reno-funcprofile v1";

std::string
hexEncode(const std::uint8_t *data, std::size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (std::size_t i = 0; i < len; ++i) {
        out += digits[data[i] >> 4];
        out += digits[data[i] & 0xf];
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
hexDecode(const std::string &text, std::vector<std::uint8_t> *out)
{
    if (text.size() % 2)
        return false;
    out->clear();
    out->reserve(text.size() / 2);
    for (std::size_t i = 0; i < text.size(); i += 2) {
        const int hi = hexNibble(text[i]);
        const int lo = hexNibble(text[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return true;
}

bool
keyValue(const std::string &line, const std::string &key,
         std::string *value)
{
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || line.compare(0, space, key) != 0)
        return false;
    *value = line.substr(space + 1);
    return true;
}

bool
keyU64(const std::string &line, const std::string &key,
       std::uint64_t *value)
{
    std::string v;
    if (!keyValue(line, key, &v))
        return false;
    try {
        *value = std::stoull(v);
    } catch (...) {
        return false;
    }
    return true;
}

void
encodeCacheState(std::string &out, const std::string &name,
                 const CacheState &state)
{
    out += strprintf("cache %s %llu %zu %zu\n", name.c_str(),
                     static_cast<unsigned long long>(state.lruClock),
                     state.validLines.size(),
                     state.prefetch.entries.size());
    for (const CacheState::Line &l : state.validLines)
        out += strprintf("line %u %llu %llu %d %d\n", l.index,
                         static_cast<unsigned long long>(l.tag),
                         static_cast<unsigned long long>(l.lruStamp),
                         l.dirty ? 1 : 0, l.prefetched ? 1 : 0);
    for (const PrefetchState::Entry &e : state.prefetch.entries)
        out += strprintf("pfent %u %llu %llu %lld %u\n", e.index,
                         static_cast<unsigned long long>(e.regionTag),
                         static_cast<unsigned long long>(e.lastBlock),
                         static_cast<long long>(e.stride),
                         e.confidence);
}

bool
decodeCacheState(std::istream &in, std::string &line,
                 const std::string &expected_name, CacheState *out)
{
    if (!std::getline(in, line))
        return false;
    std::istringstream hdr(line);
    std::string key, name;
    std::size_t count = 0, pf_count = 0;
    if (!(hdr >> key >> name >> out->lruClock >> count >> pf_count) ||
        key != "cache" || name != expected_name)
        return false;
    out->validLines.clear();
    out->validLines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(in, line))
            return false;
        std::istringstream ls(line);
        CacheState::Line l;
        int dirty = 0, prefetched = 0;
        if (!(ls >> key >> l.index >> l.tag >> l.lruStamp >> dirty >>
              prefetched) ||
            key != "line")
            return false;
        l.dirty = dirty != 0;
        l.prefetched = prefetched != 0;
        out->validLines.push_back(l);
    }
    out->prefetch.entries.clear();
    out->prefetch.entries.reserve(pf_count);
    for (std::size_t i = 0; i < pf_count; ++i) {
        if (!std::getline(in, line))
            return false;
        std::istringstream es(line);
        PrefetchState::Entry e;
        long long stride = 0;
        if (!(es >> key >> e.index >> e.regionTag >> e.lastBlock >>
              stride >> e.confidence) ||
            key != "pfent")
            return false;
        e.stride = stride;
        out->prefetch.entries.push_back(e);
    }
    return true;
}

/** One core's functional half ("core i" header + snapshot). */
void
encodeEmuHalf(std::string &out, unsigned core,
              const EmuCheckpoint &emu)
{
    out += strprintf("core %u\n", core);
    out += strprintf("prog %llu\n",
                     static_cast<unsigned long long>(emu.progDigest));
    out += strprintf("inst %llu\n",
                     static_cast<unsigned long long>(emu.instCount));
    out += strprintf("exit %llu\n",
                     static_cast<unsigned long long>(emu.exitCode));
    out += strprintf("rand %llu\n",
                     static_cast<unsigned long long>(emu.randState));
    out += strprintf("done %d\n", emu.done ? 1 : 0);
    out += strprintf("pc %llu\n",
                     static_cast<unsigned long long>(emu.state.pc));
    out += "regs";
    for (unsigned r = 0; r < NumLogRegs; ++r)
        out += strprintf(" %llu",
                         static_cast<unsigned long long>(
                             emu.state.regs[r]));
    out += '\n';
    out += strprintf("output %s\n",
                     hexEncode(reinterpret_cast<const std::uint8_t *>(
                                   emu.output.data()),
                               emu.output.size())
                         .c_str());
    out += strprintf("pages %zu\n", emu.mem.pages().size());
    for (const auto &[page_num, page] : emu.mem.pages())
        out += strprintf("page %llu %s\n",
                         static_cast<unsigned long long>(page_num),
                         hexEncode(page.data(), page.size()).c_str());
}

bool
decodeEmuHalf(std::istream &in, std::string &line, unsigned core,
              EmuCheckpoint *emu)
{
    auto next_u64 = [&in, &line](const char *key, std::uint64_t *v) {
        return std::getline(in, line) && keyU64(line, key, v);
    };
    std::uint64_t hdr_core = 0;
    if (!next_u64("core", &hdr_core) || hdr_core != core)
        return false;
    std::uint64_t done = 0;
    if (!next_u64("prog", &emu->progDigest) ||
        !next_u64("inst", &emu->instCount) ||
        !next_u64("exit", &emu->exitCode) ||
        !next_u64("rand", &emu->randState) ||
        !next_u64("done", &done))
        return false;
    emu->done = done != 0;
    if (!next_u64("pc", &emu->state.pc))
        return false;

    if (!std::getline(in, line) || line.rfind("regs", 0) != 0)
        return false;
    {
        std::istringstream regs(line.substr(4));
        for (unsigned r = 0; r < NumLogRegs; ++r) {
            if (!(regs >> emu->state.regs[r]))
                return false;
        }
    }

    std::string hex;
    std::vector<std::uint8_t> bytes;
    if (!std::getline(in, line) || !keyValue(line, "output", &hex) ||
        !hexDecode(hex, &bytes))
        return false;
    emu->output.assign(bytes.begin(), bytes.end());

    std::uint64_t npages = 0;
    if (!next_u64("pages", &npages))
        return false;
    for (std::uint64_t p = 0; p < npages; ++p) {
        if (!std::getline(in, line) || line.rfind("page ", 0) != 0)
            return false;
        const std::size_t space = line.find(' ', 5);
        if (space == std::string::npos)
            return false;
        std::uint64_t page_num = 0;
        try {
            page_num = std::stoull(line.substr(5, space - 5));
        } catch (...) {
            return false;
        }
        if (!hexDecode(line.substr(space + 1), &bytes) ||
            bytes.size() != SparseMemory::PageSize)
            return false;
        emu->mem.load(page_num << SparseMemory::PageBits, bytes.data(),
                      bytes.size());
    }
    return true;
}

/** The composable-predictor state block (direction tables, BTB, RAS,
 *  indirect-target table) -- one per warm state, shared between the
 *  single-core warm half and each multi-core "corewarm" block. */
void
encodeBpredState(std::string &out, const BranchPredState &bp)
{
    out += strprintf("bpdir %llu %zu\n",
                     static_cast<unsigned long long>(bp.dir.history),
                     bp.dir.tables.size());
    for (const std::vector<std::uint64_t> &table : bp.dir.tables) {
        out += strprintf("dtab %zu", table.size());
        // Signed rendering: two's-complement words (perceptron
        // weights) print as small negative numbers, not 20-digit
        // wrap-arounds.
        for (const std::uint64_t v : table)
            out += strprintf(" %lld",
                             static_cast<long long>(v));
        out += '\n';
    }
    out += strprintf("btb %zu %llu\n", bp.btb.entries.size(),
                     static_cast<unsigned long long>(
                         bp.btb.lruClock));
    for (const BtbState::Entry &e : bp.btb.entries)
        out += strprintf("btbent %u %llu %llu %llu\n", e.index,
                         static_cast<unsigned long long>(e.tag),
                         static_cast<unsigned long long>(e.target),
                         static_cast<unsigned long long>(e.lruStamp));
    out += strprintf("ras %zu %u", bp.ras.stack.size(), bp.ras.top);
    for (const Addr a : bp.ras.stack)
        out += strprintf(" %llu", static_cast<unsigned long long>(a));
    out += '\n';
    out += strprintf("itt %zu %llu\n", bp.indirect.entries.size(),
                     static_cast<unsigned long long>(
                         bp.indirect.history));
    for (const IndirectState::Entry &e : bp.indirect.entries)
        out += strprintf("ittent %u %llu %llu\n", e.index,
                         static_cast<unsigned long long>(e.tag),
                         static_cast<unsigned long long>(e.target));
}

bool
decodeBpredState(std::istream &in, std::string &line,
                 BranchPredState *out)
{
    BranchPredState &bp = *out;
    {
        std::size_t ntables = 0;
        if (!std::getline(in, line))
            return false;
        std::istringstream hdr(line);
        std::string key;
        if (!(hdr >> key >> bp.dir.history >> ntables) ||
            key != "bpdir")
            return false;
        bp.dir.tables.resize(ntables);
        for (std::size_t t = 0; t < ntables; ++t) {
            if (!std::getline(in, line))
                return false;
            std::istringstream ts(line);
            std::size_t len = 0;
            std::string key2;
            if (!(ts >> key2 >> len) || key2 != "dtab")
                return false;
            bp.dir.tables[t].resize(len);
            for (std::size_t i = 0; i < len; ++i) {
                long long v = 0;
                if (!(ts >> v))
                    return false;
                bp.dir.tables[t][i] = static_cast<std::uint64_t>(v);
            }
        }
    }
    {
        std::size_t nbtb = 0;
        if (!std::getline(in, line))
            return false;
        std::istringstream hdr(line);
        std::string key;
        if (!(hdr >> key >> nbtb >> bp.btb.lruClock) || key != "btb")
            return false;
        for (std::size_t i = 0; i < nbtb; ++i) {
            if (!std::getline(in, line))
                return false;
            std::istringstream es(line);
            BtbState::Entry e;
            if (!(es >> key >> e.index >> e.tag >> e.target >>
                  e.lruStamp) ||
                key != "btbent")
                return false;
            bp.btb.entries.push_back(e);
        }
    }
    if (!std::getline(in, line) || line.rfind("ras ", 0) != 0)
        return false;
    {
        std::istringstream rs(line.substr(4));
        std::size_t n = 0;
        if (!(rs >> n >> bp.ras.top))
            return false;
        bp.ras.stack.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (!(rs >> bp.ras.stack[i]))
                return false;
        }
    }
    {
        std::size_t nitt = 0;
        if (!std::getline(in, line))
            return false;
        std::istringstream hdr(line);
        std::string key;
        if (!(hdr >> key >> nitt >> bp.indirect.history) ||
            key != "itt")
            return false;
        for (std::size_t i = 0; i < nitt; ++i) {
            if (!std::getline(in, line))
                return false;
            std::istringstream es(line);
            IndirectState::Entry e;
            if (!(es >> key >> e.index >> e.tag >> e.target) ||
                key != "ittent")
                return false;
            bp.indirect.entries.push_back(e);
        }
    }
    return true;
}

/** Multi-core warm half: MESI directory, shared stack, then one
 *  "corewarm" block (lastblk + L1s + predictor) per core. */
void
encodeSysWarmHalf(std::string &out, const SysWarmState &warm)
{
    out += strprintf("warmcfg %llu\n",
                     static_cast<unsigned long long>(warmConfigDigest(
                         warm.memParams(), warm.bpParams(),
                         warm.numCores())));
    const CoherenceBusState bus = warm.bus().exportState();
    out += strprintf("bus %zu %llu %llu %llu %llu\n",
                     bus.lines.size(),
                     static_cast<unsigned long long>(
                         bus.invalidations),
                     static_cast<unsigned long long>(
                         bus.interventions),
                     static_cast<unsigned long long>(
                         bus.upgradeMisses),
                     static_cast<unsigned long long>(bus.writebacks));
    for (const CoherenceBusState::Line &l : bus.lines)
        out += strprintf("busln %llu %u %d %d\n",
                         static_cast<unsigned long long>(l.line),
                         l.sharers, l.owner, l.modified ? 1 : 0);
    out += strprintf("sharedlevels %zu\n", warm.numSharedLevels());
    for (std::size_t i = 0; i < warm.numSharedLevels(); ++i)
        encodeCacheState(out, warm.sharedLevel(i).name(),
                         warm.sharedLevel(i).exportState());
    for (unsigned c = 0; c < warm.numCores(); ++c) {
        out += strprintf("corewarm %u\n", c);
        out += strprintf("lastblk %llu\n",
                         static_cast<unsigned long long>(
                             warm.lastFetchBlock(c)));
        const MemHierarchy::State mem_state =
            warm.coreMem(c).exportState();
        const std::vector<const Cache *> levels =
            warm.coreMem(c).levels();
        out += strprintf("levels %zu\n", mem_state.caches.size());
        for (std::size_t i = 0; i < mem_state.caches.size(); ++i)
            encodeCacheState(out, levels[i]->name(),
                             mem_state.caches[i]);
        encodeBpredState(out, warm.coreBp(c).exportState());
    }
}

bool
decodeSysWarmHalf(std::istream &in, std::string &line,
                  const MemHierarchy::Params &mem_params,
                  const BranchPredParams &bp_params,
                  unsigned num_cores,
                  std::shared_ptr<SysWarmState> *out,
                  std::string *why)
{
    const auto fail = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    auto next_u64 = [&in, &line](const char *key, std::uint64_t *v) {
        return std::getline(in, line) && keyU64(line, key, v);
    };

    auto warm = std::make_shared<SysWarmState>(mem_params, bp_params,
                                               num_cores);

    std::uint64_t warmcfg = 0;
    if (!next_u64("warmcfg", &warmcfg) ||
        warmcfg != warmConfigDigest(mem_params, bp_params, num_cores))
        return fail("warm-config digest does not match the target "
                    "models");

    CoherenceBusState bus;
    {
        if (!std::getline(in, line))
            return fail("truncated warm half (no bus block)");
        std::istringstream hdr(line);
        std::string key;
        std::size_t nlines = 0;
        if (!(hdr >> key >> nlines >> bus.invalidations >>
              bus.interventions >> bus.upgradeMisses >>
              bus.writebacks) ||
            key != "bus")
            return fail("corrupt MESI bus header");
        bus.lines.reserve(nlines);
        for (std::size_t i = 0; i < nlines; ++i) {
            if (!std::getline(in, line))
                return fail("truncated MESI directory");
            std::istringstream ls(line);
            CoherenceBusState::Line l;
            int modified = 0;
            if (!(ls >> key >> l.line >> l.sharers >> l.owner >>
                  modified) ||
                key != "busln")
                return fail("corrupt MESI directory line");
            l.modified = modified != 0;
            bus.lines.push_back(l);
        }
    }
    if (!warm->bus().importState(bus))
        return fail(strprintf("MESI directory does not fit a %u-core "
                              "bus", num_cores));

    std::uint64_t nshared = 0;
    if (!next_u64("sharedlevels", &nshared) ||
        nshared != warm->numSharedLevels())
        return fail("shared-stack depth does not match the target "
                    "geometry");
    for (std::size_t i = 0; i < nshared; ++i) {
        CacheState state;
        if (!decodeCacheState(in, line, warm->sharedLevel(i).name(),
                              &state) ||
            !warm->sharedLevel(i).importState(state))
            return fail(strprintf("corrupt shared-level block "
                                  "('%s')",
                                  warm->sharedLevel(i).name()
                                      .c_str()));
    }

    for (unsigned c = 0; c < num_cores; ++c) {
        std::uint64_t hdr_core = 0;
        if (!next_u64("corewarm", &hdr_core) || hdr_core != c)
            return fail(strprintf("corrupt per-core warm block "
                                  "(core %u)", c));
        std::uint64_t lastblk = 0;
        if (!next_u64("lastblk", &lastblk))
            return fail(strprintf("corrupt per-core warm block "
                                  "(core %u)", c));
        warm->lastFetchBlock(c) = lastblk;
        std::uint64_t nlevels = 0;
        MemHierarchy::State mem_state;
        const std::vector<const Cache *> levels =
            warm->coreMem(c).levels();
        if (!next_u64("levels", &nlevels) ||
            nlevels != levels.size())
            return fail(strprintf("corrupt per-core warm block "
                                  "(core %u)", c));
        mem_state.caches.resize(nlevels);
        for (std::size_t i = 0; i < nlevels; ++i) {
            if (!decodeCacheState(in, line, levels[i]->name(),
                                  &mem_state.caches[i]))
                return fail(strprintf("corrupt per-core warm block "
                                      "(core %u, '%s')", c,
                                      levels[i]->name().c_str()));
        }
        if (!warm->coreMem(c).importState(mem_state))
            return fail(strprintf("per-core L1 state does not fit "
                                  "(core %u)", c));
        BranchPredState bp;
        if (!decodeBpredState(in, line, &bp) ||
            !warm->coreBp(c).importState(bp))
            return fail(strprintf("corrupt per-core predictor block "
                                  "(core %u)", c));
    }
    *out = std::move(warm);
    return true;
}

} // namespace

std::uint64_t
checkpointDigest(const EmuCheckpoint &ckpt)
{
    Fnv64 h;
    h.update("reno-ckpt-digest-v1");
    for (unsigned r = 0; r < NumLogRegs; ++r)
        h.update(ckpt.state.regs[r]);
    h.update(ckpt.state.pc);
    h.update(ckpt.mem.digest());
    h.update(ckpt.output);
    h.update(ckpt.instCount);
    h.update(ckpt.exitCode);
    h.update(ckpt.randState);
    h.update(ckpt.done);
    h.update(ckpt.progDigest);
    return h.value();
}

std::uint64_t
checkpointKey(const Workload &workload, std::uint64_t start_inst,
              std::uint64_t warm_digest)
{
    Fnv64 h;
    h.update("reno-ckpt-key-v2");
    h.update(std::string(workload.source));
    h.update(workload.seed);
    h.update(start_inst);
    h.update(warm_digest);
    return h.value();
}

std::uint64_t
profileKey(const Workload &workload, unsigned num_cores)
{
    Fnv64 h;
    h.update("reno-funcprofile-key-v1");
    h.update(std::string(workload.source));
    h.update(workload.seed);
    // Folded only beyond one core: single-core keys predate
    // multi-core profiles, and leaving them unchanged keeps existing
    // disk caches valid.
    if (num_cores > 1)
        h.update(std::uint64_t{num_cores});
    return h.value();
}

std::string
CheckpointStore::encode(const SampleCheckpoint &ckpt)
{
    if (!ckpt.usable())
        fatal("encoding an unusable checkpoint");
    if (ckpt.sysWarm && ckpt.sysWarm->numCores() != ckpt.numCores())
        fatal("encoding a checkpoint whose warm state spans %u cores "
              "but snapshots %u", ckpt.sysWarm->numCores(),
              ckpt.numCores());

    std::string out = CheckpointTag;
    out += '\n';

    // --- functional half, one block per core --------------------------
    out += strprintf("cores %u\n", ckpt.numCores());
    encodeEmuHalf(out, 0, *ckpt.emu);
    for (std::size_t i = 0; i < ckpt.extraEmus.size(); ++i)
        encodeEmuHalf(out, static_cast<unsigned>(i + 1),
                      *ckpt.extraEmus[i]);

    // --- warm half ----------------------------------------------------
    if (ckpt.sysWarm) {
        encodeSysWarmHalf(out, *ckpt.sysWarm);
    } else {
        const WarmState &warm = *ckpt.warm;
        out += strprintf("warmcfg %llu\n",
                         static_cast<unsigned long long>(
                             warmConfigDigest(warm.memParams(),
                                              warm.bpParams(),
                                              ckpt.numCores())));
        out += strprintf("lastblk %llu\n",
                         static_cast<unsigned long long>(
                             warm.lastFetchBlock));
        const MemHierarchy::State mem_state = warm.mem.exportState();
        const std::vector<const Cache *> levels = warm.mem.levels();
        out += strprintf("levels %zu\n", mem_state.caches.size());
        for (std::size_t i = 0; i < mem_state.caches.size(); ++i)
            encodeCacheState(out, levels[i]->name(),
                             mem_state.caches[i]);
        encodeBpredState(out, warm.bp.exportState());
    }

    // Integrity digest over everything above.
    Fnv64 h;
    h.update(out);
    out += strprintf("digest %llu\n",
                     static_cast<unsigned long long>(h.value()));
    return out;
}

bool
CheckpointStore::decode(const std::string &text,
                        const MemHierarchy::Params &mem_params,
                        const BranchPredParams &bp_params,
                        SampleCheckpoint *out,
                        unsigned expected_cores, std::string *why)
{
    const auto fail = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };

    // Verify the trailing integrity digest first.
    const std::size_t digest_pos = text.rfind("digest ");
    if (digest_pos == std::string::npos)
        return fail("no integrity digest (truncated file?)");
    {
        std::uint64_t stored = 0;
        const std::string digest_line =
            text.substr(digest_pos,
                        text.find('\n', digest_pos) - digest_pos);
        if (!keyU64(digest_line, "digest", &stored))
            return fail("malformed integrity digest");
        Fnv64 h;
        h.update(text.substr(0, digest_pos));
        if (h.value() != stored)
            return fail("integrity digest mismatch (corrupt or "
                        "spliced file)");
    }

    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != CheckpointTag)
        return fail(strprintf("bad or truncated header (expected "
                              "'%s')", CheckpointTag));

    auto next_u64 = [&in, &line](const char *key, std::uint64_t *v) {
        return std::getline(in, line) && keyU64(line, key, v);
    };

    std::uint64_t num_cores = 0;
    if (!next_u64("cores", &num_cores) || num_cores == 0)
        return fail("missing or zero core count");
    if (num_cores != expected_cores)
        return fail(strprintf("checkpoint snapshots %llu cores, "
                              "expected %u",
                              static_cast<unsigned long long>(
                                  num_cores),
                              expected_cores));

    auto emu = std::make_shared<EmuCheckpoint>();
    if (!decodeEmuHalf(in, line, 0, emu.get()))
        return fail("corrupt functional block (core 0)");
    std::vector<std::shared_ptr<const EmuCheckpoint>> extra;
    for (std::uint64_t c = 1; c < num_cores; ++c) {
        auto e = std::make_shared<EmuCheckpoint>();
        if (!decodeEmuHalf(in, line, static_cast<unsigned>(c),
                           e.get()))
            return fail(strprintf("corrupt functional block "
                                  "(core %llu)",
                                  static_cast<unsigned long long>(c)));
        extra.push_back(std::move(e));
    }

    // Warm half. Multi-core checkpoints carry the SysWarmState
    // layout; single-core ones the historical WarmState layout.
    if (num_cores > 1) {
        std::shared_ptr<SysWarmState> sys_warm;
        if (!decodeSysWarmHalf(in, line, mem_params, bp_params,
                               static_cast<unsigned>(num_cores),
                               &sys_warm, why))
            return false;
        out->emu = std::move(emu);
        out->warm = nullptr;
        out->extraEmus = std::move(extra);
        out->sysWarm = std::move(sys_warm);
        return true;
    }

    // The file's warm-config digest must match the models we are
    // asked to rebuild onto.
    std::uint64_t warmcfg = 0;
    if (!next_u64("warmcfg", &warmcfg) ||
        warmcfg != warmConfigDigest(mem_params, bp_params,
                                    static_cast<unsigned>(num_cores)))
        return fail("warm-config digest does not match the target "
                    "models");
    std::uint64_t lastblk = 0;
    if (!next_u64("lastblk", &lastblk))
        return fail("corrupt warm half (lastblk)");

    // Per-level blocks arrive in State order; each must carry the
    // level name the target hierarchy expects, so a reordered or
    // spliced file fails the decode instead of warming wrong levels.
    std::vector<std::string> level_names = {mem_params.icache.name,
                                            mem_params.dcache.name,
                                            mem_params.l2.name};
    for (const CacheParams &extra_level : mem_params.extraLevels)
        level_names.push_back(extra_level.name);
    std::uint64_t num_levels = 0;
    if (!next_u64("levels", &num_levels) ||
        num_levels != level_names.size())
        return fail("cache-level count does not match the target "
                    "geometry");
    MemHierarchy::State mem_state;
    mem_state.caches.resize(num_levels);
    for (std::uint64_t i = 0; i < num_levels; ++i) {
        if (!decodeCacheState(in, line, level_names[i],
                              &mem_state.caches[i]))
            return fail(strprintf("corrupt cache block ('%s')",
                                  level_names[i].c_str()));
    }

    BranchPredState bp;
    if (!decodeBpredState(in, line, &bp))
        return fail("corrupt predictor block");

    auto warm = std::make_shared<WarmState>(mem_params, bp_params);
    warm->lastFetchBlock = lastblk;
    if (!warm->mem.importState(mem_state) ||
        !warm->bp.importState(bp))
        return fail("warm tables do not fit the target models");

    out->emu = std::move(emu);
    out->warm = std::move(warm);
    out->extraEmus = std::move(extra);
    out->sysWarm = nullptr;
    return true;
}

SampleCheckpoint
CheckpointStore::decodeOrDie(const std::string &text,
                             const MemHierarchy::Params &mem_params,
                             const BranchPredParams &bp_params,
                             unsigned expected_cores)
{
    SampleCheckpoint out;
    std::string why;
    if (!decode(text, mem_params, bp_params, &out, expected_cores,
                &why))
        fatal("checkpoint decode failed: %s", why.c_str());
    return out;
}

std::string
CheckpointStore::encodeProfile(const FuncProfile &profile)
{
    std::string out = ProfileTag;
    out += '\n';
    out += strprintf("insts %llu\n",
                     static_cast<unsigned long long>(
                         profile.totalInsts));
    out += strprintf("memdigest %llu\n",
                     static_cast<unsigned long long>(
                         profile.memDigest));
    return out;
}

bool
CheckpointStore::decodeProfile(const std::string &text,
                               FuncProfile *out)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != ProfileTag)
        return false;
    FuncProfile p;
    if (!std::getline(in, line) ||
        !keyU64(line, "insts", &p.totalInsts))
        return false;
    if (!std::getline(in, line) ||
        !keyU64(line, "memdigest", &p.memDigest))
        return false;
    *out = p;
    return true;
}

CheckpointStore::CheckpointStore(std::string dir)
    : dir_(std::move(dir))
{
}

std::string
CheckpointStore::checkpointPath(std::uint64_t key) const
{
    return dir_ + "/" + digestHex(key) + ".ckpt";
}

std::string
CheckpointStore::profilePath(std::uint64_t key) const
{
    return dir_ + "/" + digestHex(key) + ".prof";
}

namespace
{

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

void
writeFileAtomic(const std::string &dir, const std::string &path,
                const std::string &contents)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("checkpoint store: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return;
    }
    // Write-then-rename so a concurrent reader never sees a torn file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("checkpoint store: cannot write '%s'", tmp.c_str());
            return;
        }
        out << contents;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("checkpoint store: rename to '%s' failed: %s",
             path.c_str(), ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace

SampleCheckpoint
CheckpointStore::lookup(const Workload &workload,
                        std::uint64_t start_inst,
                        const MemHierarchy::Params &mem_params,
                        const BranchPredParams &bp_params,
                        unsigned num_cores)
{
    const std::uint64_t key = checkpointKey(
        workload, start_inst,
        warmConfigDigest(mem_params, bp_params, num_cores));
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(key);
        if (it != mem_.end())
            return it->second;
    }
    if (dir_.empty())
        return {};
    std::string text;
    if (!readFile(checkpointPath(key), &text))
        return {};
    SampleCheckpoint ckpt;
    std::string why;
    if (!decode(text, mem_params, bp_params, &ckpt, num_cores,
                &why)) {
        warn("checkpoint store: ignoring malformed entry %s (%s)",
             checkpointPath(key).c_str(), why.c_str());
        return {};
    }
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.emplace(key, std::move(ckpt)).first->second;
}

SampleCheckpoint
CheckpointStore::store(const Workload &workload,
                       std::uint64_t start_inst, EmuCheckpoint emu,
                       const WarmState &warm)
{
    SampleCheckpoint ckpt;
    ckpt.emu =
        std::make_shared<const EmuCheckpoint>(std::move(emu));
    ckpt.warm = std::make_shared<const WarmState>(warm);
    const std::uint64_t key = checkpointKey(
        workload, start_inst,
        warmConfigDigest(warm.memParams(), warm.bpParams(), 1));
    {
        std::lock_guard<std::mutex> lock(mu_);
        mem_[key] = ckpt;
    }
    if (!dir_.empty())
        writeFileAtomic(dir_, checkpointPath(key), encode(ckpt));
    return ckpt;
}

SampleCheckpoint
CheckpointStore::storeMulti(const Workload &workload,
                            std::uint64_t start_inst,
                            std::vector<EmuCheckpoint> emus,
                            const SysWarmState &warm)
{
    if (emus.size() != warm.numCores())
        fatal("checkpoint store: %u-core warm state given %zu "
              "functional snapshots",
              warm.numCores(), emus.size());
    SampleCheckpoint ckpt;
    ckpt.emu =
        std::make_shared<const EmuCheckpoint>(std::move(emus[0]));
    for (std::size_t i = 1; i < emus.size(); ++i)
        ckpt.extraEmus.push_back(
            std::make_shared<const EmuCheckpoint>(
                std::move(emus[i])));
    ckpt.sysWarm = std::make_shared<const SysWarmState>(warm);
    const std::uint64_t key = checkpointKey(
        workload, start_inst,
        warmConfigDigest(warm.memParams(), warm.bpParams(),
                         warm.numCores()));
    {
        std::lock_guard<std::mutex> lock(mu_);
        mem_[key] = ckpt;
    }
    if (!dir_.empty())
        writeFileAtomic(dir_, checkpointPath(key), encode(ckpt));
    return ckpt;
}

bool
CheckpointStore::lookupProfile(std::uint64_t key, FuncProfile *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = profiles_.find(key);
        if (it != profiles_.end()) {
            *out = it->second;
            return true;
        }
    }
    if (dir_.empty())
        return false;
    std::string text;
    if (!readFile(profilePath(key), &text) ||
        !decodeProfile(text, out))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    profiles_.emplace(key, *out);
    return true;
}

void
CheckpointStore::storeProfile(std::uint64_t key,
                              const FuncProfile &profile)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        profiles_[key] = profile;
    }
    if (!dir_.empty())
        writeFileAtomic(dir_, profilePath(key),
                        encodeProfile(profile));
}

} // namespace reno::sample
