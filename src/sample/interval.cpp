#include "sample/interval.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "obs/phase.hpp"
#include "sys/system.hpp"

namespace reno::sample
{

std::vector<PlannedInterval>
planIntervals(std::uint64_t total_insts, const SamplePlan &plan)
{
    std::vector<PlannedInterval> planned;
    if (plan.intervals == 0 || plan.measureInsts == 0 ||
        total_insts == 0)
        return planned;

    // Exact cold stratum: [0, cold), measured in full with cold
    // caches, exactly as a full run executes it. The default (one
    // tenth of the program) is independent of the window count, so
    // denser plans refine coverage without shrinking it.
    const std::uint64_t n = std::min(plan.intervals, total_insts);
    std::uint64_t cold =
        plan.coldInsts ? std::min(plan.coldInsts, total_insts)
                       : std::max<std::uint64_t>(total_insts / 10, 1);
    if (n == 1)
        cold = total_insts;

    // Degenerate to one exact full-program interval when the plan
    // would execute at least a third of the program anyway: for tiny
    // workloads exact detail costs barely more than sampling and has
    // zero error.
    if (n == 1 ||
        cold + (n - 1) * (plan.warmupInsts + plan.measureInsts) >=
            total_insts / 3)
        cold = total_insts;

    planned.push_back({IntervalWindow{0, 0, cold}, cold, true});
    if (cold >= total_insts)
        return planned;

    // Sampled strata: divide the remainder into n - 1 equal strides
    // and center the MEASURED window within each, so samples cover
    // the whole stream and the measured region does not move when
    // the warmup length is tuned. Warmup runs in the instructions
    // before it (clamped at the stream start).
    const std::uint64_t rest = total_insts - cold;
    const std::uint64_t strides = n - 1;
    const std::uint64_t stride = rest / strides;
    if (stride == 0)
        return planned;

    for (std::uint64_t i = 0; i < strides; ++i) {
        PlannedInterval p;
        const std::uint64_t measure_off =
            stride > plan.measureInsts
                ? (stride - plan.measureInsts) / 2 : 0;
        const std::uint64_t measure_start =
            cold + i * stride + measure_off;
        const std::uint64_t warmup =
            std::min(plan.warmupInsts, measure_start);
        p.window.startInst = measure_start - warmup;
        p.window.warmupInsts = warmup;
        p.window.measureInsts = plan.measureInsts;
        // The final stride absorbs the division remainder.
        p.repInsts =
            i + 1 == strides ? rest - i * stride : stride;
        if (p.window.startInst >= total_insts)
            break;
        planned.push_back(p);
    }
    return planned;
}

// The field-wise delta/accumulate pair walks the canonical registry
// in uarch/sim_result.hpp: every counter exactly once, with a
// static_assert there forcing the registry to track SimResult.

SimResult
deltaResult(const SimResult &post, const SimResult &pre)
{
    SimResult d;
    for (const SimStatField &field : simResultFields())
        statRef(d, field) = statValue(post, field) -
                            statValue(pre, field);
    return d;
}

void
accumulateResult(SimResult &into, const SimResult &add)
{
    for (const SimStatField &field : simResultFields())
        statRef(into, field) += statValue(add, field);
}

SimResult
runIntervalDetailed(const Workload &workload, const CoreParams &params,
                    const IntervalWindow &window,
                    const SampleCheckpoint *ckpt,
                    obs::CpiStack *cpi_out)
{
    if (window.measureInsts == 0)
        fatal("runIntervalDetailed: window has no measured insts");
    // Multi-core configurations take the interleaved-warming engine;
    // one core keeps the historical path, byte-identical results.
    if (params.sys.numCores > 1)
        return runIntervalMulti(workload, params, window, ckpt,
                                cpi_out);

    const Program &prog = assembleWorkload(workload);
    Emulator::Options opts;
    opts.randSeed = workload.seed;
    Emulator emu(prog, opts);

    // Bring functional state and warm tables to startInst. A usable
    // checkpoint skips the [0, checkpoint) prefix; otherwise warm
    // from the program start (same deterministic stream, chopped
    // differently -- identical state either way).
    const WarmState *inject = nullptr;
    std::unique_ptr<WarmState> scratch;
    if (ckpt && ckpt->usable() &&
        ckpt->emu->instCount <= window.startInst &&
        warmConfigDigest(params) ==
            warmConfigDigest(ckpt->warm->memParams(),
                             ckpt->warm->bpParams())) {
        {
            obs::PhaseSpan phase("sample.restore");
            emu.restore(*ckpt->emu);
        }
        if (ckpt->emu->instCount == window.startInst) {
            inject = ckpt->warm.get();
        } else {
            scratch = std::make_unique<WarmState>(*ckpt->warm);
            obs::PhaseSpan phase("sample.fastforward");
            const std::uint64_t ff_start = emu.instCount();
            warmStep(emu, *scratch, window.startInst);
            phase.setInsts(emu.instCount() - ff_start);
            inject = scratch.get();
        }
    } else {
        scratch = std::make_unique<WarmState>(params.mem,
                                              params.bpred);
        obs::PhaseSpan phase("sample.fastforward");
        const std::uint64_t ff_start = emu.instCount();
        warmStep(emu, *scratch, window.startInst);
        phase.setInsts(emu.instCount() - ff_start);
        inject = scratch.get();
    }
    if (emu.done())
        return SimResult{};

    Core core(params, emu);
    core.memHierarchy().copyStateFrom(inject->mem);
    core.memHierarchy().settle();
    core.branchPredictor() = inject->bp;

    if (window.warmupInsts > 0) {
        obs::PhaseSpan phase("sample.warmup");
        core.runUntilRetired(window.warmupInsts);
        phase.setInsts(core.result().retired);
    }
    const SimResult pre = core.result();
    const obs::CpiStack pre_stack =
        core.cpiStack() ? *core.cpiStack() : obs::CpiStack{};
    SimResult post;
    {
        obs::PhaseSpan phase("sample.detailed");
        post = core.runUntilRetired(window.warmupInsts +
                                    window.measureInsts);
        phase.setInsts(post.retired - pre.retired);
    }
    if (cpi_out && core.cpiStack())
        *cpi_out = core.cpiStack()->delta(pre_stack);
    return deltaResult(post, pre);
}

SimResult
runIntervalMulti(const Workload &workload, const CoreParams &params,
                 const IntervalWindow &window,
                 const SampleCheckpoint *ckpt,
                 obs::CpiStack *cpi_out)
{
    if (window.measureInsts == 0)
        fatal("runIntervalMulti: window has no measured insts");
    const unsigned n = params.sys.numCores;
    if (n < 1 || n > SysParams::MaxCores)
        fatal("runIntervalMulti: core count must be in [1, %u] "
              "(got %u)", SysParams::MaxCores, n);

    // SPMD, exactly as runWorkloadMulti constructs the cores: the
    // kernel differentiates through the core_id syscall and a
    // per-core rand stream.
    const Program &prog = assembleWorkload(workload);
    std::vector<std::unique_ptr<Emulator>> emus;
    std::vector<Emulator *> emu_ptrs;
    for (unsigned i = 0; i < n; ++i) {
        Emulator::Options opts;
        opts.randSeed = workload.seed + i;
        opts.coreId = i;
        emus.push_back(std::make_unique<Emulator>(prog, opts));
        emu_ptrs.push_back(emus.back().get());
    }
    const auto aggregate = [&emu_ptrs] {
        std::uint64_t total = 0;
        for (const Emulator *emu : emu_ptrs)
            total += emu->instCount();
        return total;
    };

    // Bring functional state and warm tables to the window start (an
    // aggregate position). A usable checkpoint skips the warmed
    // prefix; the stateless interleave rule makes the chopped and
    // unchopped streams bit-identical.
    const SysWarmState *inject = nullptr;
    std::unique_ptr<SysWarmState> scratch;
    if (ckpt && ckpt->usable() && ckpt->numCores() == n &&
        ckpt->instCount() <= window.startInst &&
        warmConfigDigest(params) ==
            warmConfigDigest(ckpt->sysWarm->memParams(),
                             ckpt->sysWarm->bpParams(),
                             ckpt->sysWarm->numCores())) {
        {
            obs::PhaseSpan phase("sample.restore");
            emus[0]->restore(*ckpt->emu);
            for (unsigned i = 1; i < n; ++i)
                emus[i]->restore(*ckpt->extraEmus[i - 1]);
        }
        if (ckpt->instCount() == window.startInst) {
            inject = ckpt->sysWarm.get();
        } else {
            scratch = std::make_unique<SysWarmState>(*ckpt->sysWarm);
            obs::PhaseSpan phase("sample.fastforward");
            const std::uint64_t ff_start = aggregate();
            warmStepMulti(emu_ptrs, *scratch, window.startInst);
            phase.setInsts(aggregate() - ff_start);
            inject = scratch.get();
        }
    } else {
        scratch = std::make_unique<SysWarmState>(params.mem,
                                                 params.bpred, n);
        obs::PhaseSpan phase("sample.fastforward");
        warmStepMulti(emu_ptrs, *scratch, window.startInst);
        phase.setInsts(aggregate());
        inject = scratch.get();
    }
    if (std::all_of(emu_ptrs.begin(), emu_ptrs.end(),
                    [](const Emulator *e) { return e->done(); }))
        return SimResult{};

    System sys(params, emu_ptrs);
    for (std::size_t i = 0; i < sys.numSharedLevels(); ++i) {
        sys.sharedLevel(i).copyStateFrom(inject->sharedLevel(i));
        sys.sharedLevel(i).settle();
    }
    if (!sys.bus().importState(inject->bus().exportState()))
        fatal("runIntervalMulti: warmed MESI directory does not fit "
              "a %u-core bus", n);
    for (unsigned i = 0; i < n; ++i) {
        sys.core(i).memHierarchy().copyStateFrom(inject->coreMem(i));
        sys.core(i).memHierarchy().settle();
        sys.core(i).branchPredictor() = inject->coreBp(i);
    }

    if (window.warmupInsts > 0) {
        obs::PhaseSpan phase("sample.warmup");
        sys.runUntilRetired(window.warmupInsts);
        phase.setInsts(sys.result().retired);
    }
    const SimResult pre = sys.result();
    std::vector<obs::CpiStack> pre_stacks(n);
    for (unsigned i = 0; i < n; ++i) {
        if (sys.core(i).cpiStack())
            pre_stacks[i] = *sys.core(i).cpiStack();
    }
    SimResult post;
    {
        obs::PhaseSpan phase("sample.detailed");
        post = sys.runUntilRetired(window.warmupInsts +
                                   window.measureInsts);
        phase.setInsts(post.retired - pre.retired);
    }
    if (cpi_out) {
        for (unsigned i = 0; i < n; ++i) {
            if (sys.core(i).cpiStack())
                cpi_out->accumulate(
                    sys.core(i).cpiStack()->delta(pre_stacks[i]));
        }
    }
    return deltaResult(post, pre);
}

SampledEstimate
aggregateIntervals(std::uint64_t total_insts,
                   const std::vector<PlannedInterval> &plan,
                   const std::vector<SimResult> &windows,
                   const std::vector<obs::CpiStack> *stacks)
{
    if (plan.size() != windows.size())
        fatal("aggregateIntervals: %zu planned intervals but %zu "
              "window results",
              plan.size(), windows.size());
    if (stacks && stacks->size() != windows.size())
        fatal("aggregateIntervals: %zu windows but %zu CPI stacks",
              windows.size(), stacks->size());

    SampledEstimate est;
    est.totalInsts = total_insts;
    est.intervals = static_cast<unsigned>(windows.size());

    // Stratified estimate: each window's measured cycles scale to the
    // stratum it represents. Exactly measured strata contribute their
    // true cost (scale factor ~1).
    double est_cycles = 0.0;
    double core_cycles[NumCoreStatSlots] = {};
    double core_retired[NumCoreStatSlots] = {};
    std::uint64_t observed_rep = 0;
    bool all_stacked = stacks != nullptr;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const SimResult &w = windows[i];
        if (w.retired == 0 || w.cycles == 0)
            continue;  // the program ended before this window measured
        accumulateResult(est.sum, w);
        ++est.measuredIntervals;
        const double scale = static_cast<double>(plan[i].repInsts) /
                             static_cast<double>(w.retired);
        est_cycles += static_cast<double>(w.cycles) * scale;
        // Per-core retire slots fold with the same stratum scale, so
        // each slot's cycle/retire ratio is a stratified IPC estimate
        // for that core.
        for (unsigned s = 0; s < NumCoreStatSlots; ++s) {
            core_cycles[s] +=
                static_cast<double>(w.coreCycles[s]) * scale;
            core_retired[s] +=
                static_cast<double>(w.coreRetired[s]) * scale;
        }
        // Window stacks extrapolate bucket-wise with the same scale;
        // one measured window without a stack (e.g. a cache replay)
        // poisons the whole-program stack, not just its stratum.
        if (stacks) {
            const obs::CpiStack &stk = (*stacks)[i];
            if (stk.total() == 0)
                all_stacked = false;
            for (std::size_t b = 0; b < obs::NumCpiBuckets; ++b)
                est.cpiEst[b] +=
                    static_cast<double>(stk.cycles[b]) * scale;
        }
        observed_rep += plan[i].repInsts;
        if (!plan[i].exact)
            est.intervalIpc.push_back(w.ipc());
    }
    if (est_cycles <= 0.0 || observed_rep == 0) {
        est.cpiEst = {};
        return est;
    }
    for (unsigned s = 0; s < NumCoreStatSlots; ++s) {
        if (core_cycles[s] > 0.0 && core_retired[s] > 0.0)
            est.coreIpcEst[s] = core_retired[s] / core_cycles[s];
    }

    // Scale up for strata that measured nothing (program shorter than
    // planned -- rare, but keeps the estimate total-covering).
    const double coverage = static_cast<double>(total_insts) /
                            static_cast<double>(observed_rep);
    est_cycles *= coverage;
    est.estCycles =
        static_cast<std::uint64_t>(std::llround(est_cycles));
    est.ipc = static_cast<double>(total_insts) / est_cycles;
    if (all_stacked && est.measuredIntervals > 0) {
        for (double &b : est.cpiEst)
            b *= coverage;
        est.hasCpi = true;
    } else {
        est.cpiEst = {};
    }

    // 95% confidence half-width on the sampled windows' IPC mean.
    const std::size_t n = est.intervalIpc.size();
    if (n >= 2) {
        double mean = 0.0;
        for (const double x : est.intervalIpc)
            mean += x;
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (const double x : est.intervalIpc)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(n - 1);
        est.ipcCi95 =
            1.96 * std::sqrt(var / static_cast<double>(n));
    }
    return est;
}

} // namespace reno::sample
