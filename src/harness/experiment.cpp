#include "harness/experiment.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include <algorithm>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "obs/phase.hpp"
#include "sys/system.hpp"
#include "trace/pipetrace.hpp"

namespace reno
{

namespace
{

/** Fan one retirement stream out to two listeners (CPA + pipetrace
 *  share the Core's single listener slot). */
struct RetireTee : RetireListener {
    RetireListener *a = nullptr;
    RetireListener *b = nullptr;

    void
    onRetire(const DynInst &inst) override
    {
        a->onRetire(inst);
        b->onRetire(inst);
    }
};

/** Merge per-core hotspot tables by pc, re-rank, keep the top N. */
std::vector<obs::HotspotProfile::Entry>
mergeHot(const std::vector<std::vector<obs::HotspotProfile::Entry>>
             &per_core,
         std::size_t n, bool by_stall)
{
    std::vector<obs::HotspotProfile::Entry> merged;
    for (const auto &entries : per_core) {
        for (const obs::HotspotProfile::Entry &e : entries) {
            auto it = std::find_if(
                merged.begin(), merged.end(),
                [&](const auto &m) { return m.pc == e.pc; });
            if (it == merged.end()) {
                merged.push_back(e);
            } else {
                it->retired += e.retired;
                it->stallCycles += e.stallCycles;
            }
        }
    }
    std::sort(merged.begin(), merged.end(),
              [by_stall](const auto &a, const auto &b) {
                  const std::uint64_t ka =
                      by_stall ? a.stallCycles : a.retired;
                  const std::uint64_t kb =
                      by_stall ? b.stallCycles : b.retired;
                  if (ka != kb)
                      return ka > kb;
                  return a.pc < b.pc;
              });
    if (merged.size() > n)
        merged.resize(n);
    return merged;
}

/** Harvest the CPI/hotspot side channel from one finished core. */
obs::CpiReport
harvestCpi(const Core &core)
{
    obs::CpiReport r;
    const obs::CpiStack *stack = core.cpiStack();
    const obs::HotspotProfile *hot = core.hotspots();
    if (!stack && !hot)
        return r;
    r.valid = true;
    if (stack) {
        r.machine = *stack;
        r.perCore.push_back(*stack);
    }
    if (hot) {
        const std::size_t n =
            obs::CpiAccounting::instance().hotspotTopN();
        r.hotRetired = hot->topByRetired(n);
        r.hotStall = hot->topByStall(n);
        r.hotspotDropped = hot->dropped();
    }
    return r;
}

/** Harvest and aggregate the side channel across a System's cores. */
obs::CpiReport
harvestCpi(const System &sys)
{
    obs::CpiReport r;
    std::vector<std::vector<obs::HotspotProfile::Entry>> hot_ret;
    std::vector<std::vector<obs::HotspotProfile::Entry>> hot_stall;
    const std::size_t n = obs::CpiAccounting::instance().hotspotTopN();
    for (unsigned i = 0; i < sys.numCores(); ++i) {
        const Core &core = sys.core(i);
        if (const obs::CpiStack *stack = core.cpiStack()) {
            r.valid = true;
            r.machine.accumulate(*stack);
            r.perCore.push_back(*stack);
        }
        if (const obs::HotspotProfile *hot = core.hotspots()) {
            r.valid = true;
            hot_ret.push_back(hot->topByRetired(n));
            hot_stall.push_back(hot->topByStall(n));
            r.hotspotDropped += hot->dropped();
        }
    }
    r.hotRetired = mergeHot(hot_ret, n, false);
    r.hotStall = mergeHot(hot_stall, n, true);
    return r;
}

} // namespace

CoreParams
withReno(CoreParams params, const RenoConfig &reno)
{
    params.reno = reno;
    return params;
}

std::vector<NamedConfig>
renoBuildup(const CoreParams &base)
{
    return {
        {"BASE", withReno(base, RenoConfig::baseline())},
        {"ME", withReno(base, RenoConfig::meOnly())},
        {"ME+CF", withReno(base, RenoConfig::meCf())},
        {"RENO", withReno(base, RenoConfig::full())},
    };
}

std::vector<NamedConfig>
divisionOfLabor(const CoreParams &base)
{
    return {
        {"RENO", withReno(base, RenoConfig::full())},
        {"RENO+FullInteg", withReno(base, RenoConfig::fullIt())},
        {"FullInteg", withReno(base, RenoConfig::integrationOnly())},
        {"LoadsInteg", withReno(base, RenoConfig::loadsIntegrationOnly())},
    };
}

std::vector<std::string>
memVariantNames()
{
    return {"l3", "pf-next", "pf-stride", "wb"};
}

bool
applyMemVariant(const std::string &token, CoreParams *params)
{
    if (token == "l3") {
        CacheParams l3;
        l3.name = "l3";
        l3.sizeBytes = 2 * 1024 * 1024;
        l3.assoc = 8;
        l3.blockBytes = 64;
        l3.latency = 25;
        l3.numMshrs = 32;
        params->mem.extraLevels = {l3};
        return true;
    }
    if (token == "pf-next" || token == "pf-stride") {
        const PrefetchKind kind = token == "pf-next"
                                      ? PrefetchKind::NextLine
                                      : PrefetchKind::Stride;
        params->mem.dcache.prefetch.kind = kind;
        params->mem.dcache.prefetch.degree = 2;
        params->mem.l2.prefetch.kind = kind;
        params->mem.l2.prefetch.degree = 4;
        return true;
    }
    if (token == "wb") {
        params->mem.modelWritebacks = true;
        return true;
    }
    return false;
}

std::vector<std::string>
bpredVariantNames()
{
    return {"bimodal", "gshare",  "tournament", "tage",
            "perceptron", "ras<N>", "btb<N>",   "itt"};
}

namespace
{

/** Parse the numeric tail of "ras16"/"btb512"-style tokens. */
bool
numericSuffix(const std::string &token, const char *prefix,
              unsigned *value)
{
    const std::size_t len = std::string_view(prefix).size();
    if (token.rfind(prefix, 0) != 0 || token.size() == len)
        return false;
    unsigned v = 0;
    for (std::size_t i = len; i < token.size(); ++i) {
        if (token[i] < '0' || token[i] > '9')
            return false;
        const unsigned digit = static_cast<unsigned>(token[i] - '0');
        if (v > (~0u - digit) / 10)
            return false;  // would overflow: reject, don't wrap
        v = v * 10 + digit;
    }
    *value = v;
    return true;
}

} // namespace

bool
applyBpredVariant(const std::string &token, CoreParams *params)
{
    if (token == "bimodal") {
        params->bpred.dir.kind = DirPredKind::Bimodal;
        return true;
    }
    if (token == "gshare") {
        params->bpred.dir.kind = DirPredKind::GShare;
        return true;
    }
    if (token == "tournament") {
        params->bpred.dir.kind = DirPredKind::Tournament;
        return true;
    }
    if (token == "tage") {
        params->bpred.dir.kind = DirPredKind::Tage;
        return true;
    }
    if (token == "perceptron") {
        params->bpred.dir.kind = DirPredKind::Perceptron;
        return true;
    }
    // Reject geometry the predictor constructors would fatal() on,
    // so a bad token reads as "unknown variant" up front instead of
    // aborting mid-campaign.
    if (unsigned n = 0; numericSuffix(token, "ras", &n)) {
        if (n == 0)
            return false;
        params->bpred.ras.entries = n;
        return true;
    }
    if (unsigned n = 0; numericSuffix(token, "btb", &n)) {
        if (n == 0 || (n & (n - 1)) != 0)
            return false;
        params->bpred.btb.entries = n;
        if (params->bpred.btb.assoc > n)
            params->bpred.btb.assoc = n;
        return true;
    }
    if (token == "itt") {
        params->bpred.indirect.enabled = true;
        return true;
    }
    return false;
}

std::vector<std::string>
sysVariantNames()
{
    return {"<N>c"};
}

bool
applySysVariant(const std::string &token, CoreParams *params)
{
    // "<N>c": N cores sharing the lower hierarchy. Mirror the bpred
    // idiom: geometry the System constructor would fatal() on ("0c",
    // more than MaxCores) reads as "unknown variant" up front.
    if (token.size() < 2 || token.back() != 'c')
        return false;
    unsigned n = 0;
    if (!numericSuffix(token.substr(0, token.size() - 1), "", &n))
        return false;
    if (n == 0 || n > SysParams::MaxCores)
        return false;
    params->sys.numCores = n;
    return true;
}

bool
configByName(const std::string &name, const CoreParams &base,
             NamedConfig *out)
{
    // Split off '/'-separated memory-system variant suffixes; the
    // leading token is a RENO preset.
    const std::size_t slash = name.find('/');
    const std::string preset = name.substr(0, slash);

    NamedConfig found;
    bool ok = false;
    for (const NamedConfig &cfg : renoBuildup(base)) {
        if (cfg.name == preset) {
            found = cfg;
            ok = true;
        }
    }
    for (const NamedConfig &cfg : divisionOfLabor(base)) {
        if (cfg.name == preset) {
            found = cfg;
            ok = true;
        }
    }
    if (!ok)
        return false;

    std::size_t pos = slash;
    while (pos != std::string::npos) {
        const std::size_t next = name.find('/', pos + 1);
        const std::string token =
            name.substr(pos + 1, next == std::string::npos
                                     ? std::string::npos
                                     : next - pos - 1);
        if (!applyMemVariant(token, &found.params) &&
            !applyBpredVariant(token, &found.params) &&
            !applySysVariant(token, &found.params))
            return false;
        pos = next;
    }
    found.name = name;
    *out = found;
    return true;
}

std::vector<std::string>
knownConfigNames()
{
    std::vector<std::string> names;
    for (const NamedConfig &cfg : renoBuildup(CoreParams{}))
        names.push_back(cfg.name);
    for (const NamedConfig &cfg : divisionOfLabor(CoreParams{})) {
        if (cfg.name != "RENO")
            names.push_back(cfg.name);
    }
    return names;
}

std::vector<std::pair<std::string, std::vector<const Workload *>>>
benchmarkSuites()
{
    return {
        {"SPECint-like", suiteWorkloads("spec")},
        {"MediaBench-like", suiteWorkloads("media")},
    };
}

std::string
renderConfigList()
{
    std::string out = "configs:\n";
    for (const std::string &name : knownConfigNames())
        out += "  " + name + "\n";
    out += "memory variants (append as /token, e.g. RENO/l3/wb):\n";
    for (const std::string &name : memVariantNames())
        out += "  /" + name + "\n";
    out += "branch-prediction variants (append as /token, e.g. "
           "RENO/tage or BASE/perceptron/ras16):\n";
    for (const std::string &name : bpredVariantNames())
        out += "  /" + name + "\n";
    out += strprintf("multi-core variants (append as /token, e.g. "
                     "RENO/2c or RENO/4c/l3; up to %u cores):\n",
                     SysParams::MaxCores);
    for (const std::string &name : sysVariantNames())
        out += "  /" + name + "\n";
    return out;
}

std::string
renderSuiteList()
{
    std::string out = "suites:\n";
    std::size_t paper = 0;
    std::string paper_names;
    for (const SuiteInfo &s : knownSuites()) {
        out += strprintf("  %-6s %2zu workloads  (%s)\n",
                         s.name.c_str(), s.workloads,
                         s.paper ? "paper registry" : "generated");
        if (s.paper) {
            paper += s.workloads;
            paper_names += (paper_names.empty() ? "" : " + ") + s.name;
        }
    }
    out += strprintf("  %-6s %2zu workloads  (%s; the default)\n",
                     "all", paper, paper_names.c_str());
    return out;
}

const Program &
assembleWorkload(const Workload &workload)
{
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<const Program>,
                    std::less<>>
        cache;

    // Heterogeneous probe: no source-string copy on the hot path.
    const std::string_view source(workload.source);
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(source);
        if (it != cache.end())
            return *it->second;
    }
    auto prog = std::make_unique<const Program>(
        assemble(std::string(source)));
    std::lock_guard<std::mutex> lock(mu);
    // try_emplace keeps the first copy if another thread raced us.
    auto [it, inserted] =
        cache.try_emplace(std::string(source), std::move(prog));
    return *it->second;
}

RunOutput
runWorkload(const Workload &workload, const CoreParams &params,
            CriticalPathAnalyzer *cpa)
{
    // Multi-core configurations take the System path; a single core
    // keeps the historical code path untouched, so its outputs stay
    // byte-identical to every pre-System release.
    if (params.sys.numCores > 1)
        return runWorkloadMulti(workload, params, cpa);
    const Program &prog = assembleWorkload(workload);
    Emulator::Options opts;
    opts.randSeed = workload.seed;
    Emulator emu(prog, opts);
    Core core(params, emu);
    // --pipetrace: a bounded tracer shares the retire-listener slot
    // with the CPA through a tee when both are requested.
    PipeTracer ptrace;
    RetireTee tee;
    const bool want_ptrace = PipeTraceSink::instance().enabled();
    if (cpa && want_ptrace) {
        tee.a = cpa;
        tee.b = &ptrace;
        core.setRetireListener(&tee);
    } else if (cpa) {
        core.setRetireListener(cpa);
    } else if (want_ptrace) {
        core.setRetireListener(&ptrace);
    }
    RunOutput out;
    {
        obs::PhaseSpan phase("sim.detailed");
        out.sim = core.run();
        phase.setInsts(out.sim.retired);
    }
    if (cpa)
        cpa->finish();
    if (want_ptrace)
        PipeTraceSink::instance().emit(workload.name,
                                       ptrace.records());
    out.cpi = harvestCpi(core);
    out.output = emu.output();
    out.memDigest = emu.memory().digest();
    out.emuInsts = emu.instCount();
    return out;
}

RunOutput
runWorkloadMulti(const Workload &workload, const CoreParams &params,
                 CriticalPathAnalyzer *cpa)
{
    if (cpa)
        fatal("critical-path analysis is single-core only "
              "(config runs %u cores)", params.sys.numCores);
    const Program &prog = assembleWorkload(workload);

    // SPMD: every core runs the same kernel; per-core behavior comes
    // from the core_id syscall and a per-core rand stream.
    std::vector<std::unique_ptr<Emulator>> emus;
    std::vector<Emulator *> emu_ptrs;
    for (unsigned i = 0; i < params.sys.numCores; ++i) {
        Emulator::Options opts;
        opts.randSeed = workload.seed + i;
        opts.coreId = i;
        emus.push_back(std::make_unique<Emulator>(prog, opts));
        emu_ptrs.push_back(emus.back().get());
    }
    System sys(params, emu_ptrs);

    // --pipetrace: one bounded tracer per core, emitted per lane.
    std::vector<PipeTracer> ptracers;
    if (PipeTraceSink::instance().enabled()) {
        ptracers.resize(params.sys.numCores);
        for (unsigned i = 0; i < params.sys.numCores; ++i)
            sys.core(i).setRetireListener(&ptracers[i]);
    }

    RunOutput out;
    {
        obs::PhaseSpan phase("sim.detailed");
        out.sim = sys.run();
        phase.setInsts(out.sim.retired);
    }
    for (std::size_t i = 0; i < ptracers.size(); ++i) {
        PipeTraceSink::instance().emit(
            strprintf("%s core%zu", workload.name.c_str(), i),
            ptracers[i].records());
    }
    out.cpi = harvestCpi(sys);
    // Functional reference: outputs concatenate in core order; the
    // memory digests fold into one order-dependent FNV-style hash.
    // One core reports its digest raw, keeping the N=1 System
    // byte-identical to the single-core path.
    std::uint64_t digest = 1469598103934665603ULL;
    for (const auto &emu : emus) {
        out.output += emu->output();
        digest = (digest ^ emu->memory().digest()) *
                 1099511628211ULL;
        out.emuInsts += emu->instCount();
    }
    out.memDigest = emus.size() == 1 ? emus[0]->memory().digest()
                                     : digest;
    return out;
}

RunOutput
runFunctional(const Workload &workload)
{
    const Program &prog = assembleWorkload(workload);
    Emulator::Options opts;
    opts.randSeed = workload.seed;
    Emulator emu(prog, opts);
    RunOutput out;
    {
        obs::PhaseSpan phase("sim.functional");
        out.emuInsts = emu.run();
        phase.setInsts(out.emuInsts);
    }
    out.output = emu.output();
    out.memDigest = emu.memory().digest();
    return out;
}

RunOutput
runFunctionalMulti(const Workload &workload, unsigned num_cores)
{
    if (num_cores <= 1)
        return runFunctional(workload);
    const Program &prog = assembleWorkload(workload);
    std::vector<std::unique_ptr<Emulator>> emus;
    for (unsigned i = 0; i < num_cores; ++i) {
        Emulator::Options opts;
        opts.randSeed = workload.seed + i;
        opts.coreId = i;
        emus.push_back(std::make_unique<Emulator>(prog, opts));
    }
    RunOutput out;
    {
        obs::PhaseSpan phase("sim.functional");
        for (auto &emu : emus)
            out.emuInsts += emu->run();
        phase.setInsts(out.emuInsts);
    }
    std::uint64_t digest = 1469598103934665603ULL;
    for (const auto &emu : emus) {
        out.output += emu->output();
        digest = (digest ^ emu->memory().digest()) *
                 1099511628211ULL;
    }
    out.memDigest = digest;
    return out;
}

double
speedupPercent(std::uint64_t base_cycles, std::uint64_t cycles)
{
    if (base_cycles == 0 || cycles == 0)
        return 0.0;
    return (static_cast<double>(base_cycles) /
            static_cast<double>(cycles) - 1.0) * 100.0;
}

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace reno
