/**
 * @file
 * Experiment harness: named machine configurations matching the
 * paper's evaluation section, a one-call workload runner, and the
 * aggregation helpers the per-figure benchmark binaries share.
 */
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hpp"
#include "cpa/critpath.hpp"
#include "obs/cpireport.hpp"
#include "uarch/core.hpp"
#include "uarch/params.hpp"
#include "workloads/workloads.hpp"

namespace reno
{

/** A machine configuration with a display name. */
struct NamedConfig {
    std::string name;
    CoreParams params;
};

/** Everything a single simulation run produces. */
struct RunOutput {
    SimResult sim;
    std::string output;           //!< program's printed output
    std::uint64_t memDigest = 0;  //!< final memory digest
    std::uint64_t emuInsts = 0;   //!< functional instruction count
    /** CPI-stack / hotspot side channel (valid only when
     *  obs::CpiAccounting was enabled for the run; never cached or
     *  folded into SimResult). */
    obs::CpiReport cpi;
};

/** Apply a RENO configuration to a core configuration. */
CoreParams withReno(CoreParams params, const RenoConfig &reno);

/**
 * The paper's cumulative RENO build-up: BASE, +ME, +ME+CF, full RENO
 * (ME+CF+CSE+RA with a loads-only IT), on top of @p base.
 */
std::vector<NamedConfig> renoBuildup(const CoreParams &base);

/** Figure 10's four division-of-labor configurations. */
std::vector<NamedConfig> divisionOfLabor(const CoreParams &base);

/**
 * Look up an evaluation configuration by name on top of @p base:
 * "BASE", "ME", "ME+CF", "RENO" (the build-up) or "RENO+FullInteg",
 * "FullInteg", "LoadsInteg" (division of labor), optionally followed
 * by '/'-separated memory-system, branch-prediction or multi-core
 * variants ("RENO/l3", "BASE/pf-stride/wb", "RENO/tage",
 * "BASE/perceptron/ras16", "RENO/2c", "RENO/4c/l3"; see
 * memVariantNames() / bpredVariantNames() / sysVariantNames()).
 * Returns false and leaves @p out untouched for an unknown name or
 * variant.
 */
bool configByName(const std::string &name, const CoreParams &base,
                  NamedConfig *out);

/** Names accepted by configByName(), in presentation order. */
std::vector<std::string> knownConfigNames();

/**
 * Memory-system variant tokens configByName() accepts as suffixes:
 *  - "l3":        add a 2 MB 8-way 64 B 25-cycle shared L3;
 *  - "pf-next":   next-line prefetchers on the D$ and the L2;
 *  - "pf-stride": region-stride prefetchers on the D$ and the L2;
 *  - "wb":        model dirty-victim write-back bus traffic.
 */
std::vector<std::string> memVariantNames();

/** Apply one variant token to @p params; false if unknown. */
bool applyMemVariant(const std::string &token, CoreParams *params);

/**
 * Branch-prediction variant tokens configByName() accepts as
 * suffixes:
 *  - "bimodal", "gshare", "tournament", "tage", "perceptron":
 *    select the direction engine (tournament is the paper default);
 *  - "ras<N>":  an N-entry return-address stack (e.g. "ras16");
 *  - "btb<N>":  an N-entry BTB (associativity capped at N);
 *  - "itt":     enable the 512-entry indirect-target table.
 */
std::vector<std::string> bpredVariantNames();

/** Apply one variant token to @p params; false if unknown. */
bool applyBpredVariant(const std::string &token, CoreParams *params);

/**
 * Multi-core variant tokens configByName() accepts as suffixes:
 *  - "<N>c": run N cores (private L1s + bpred each) over the shared
 *    hierarchy under snooping MESI coherence, e.g. "2c", "4c".
 * Core counts the System constructor would fatal() on ("0c", more
 * than SysParams::MaxCores) are rejected as unknown variants.
 */
std::vector<std::string> sysVariantNames();

/** Apply one variant token to @p params; false if unknown. */
bool applySysVariant(const std::string &token, CoreParams *params);

/**
 * Suite iteration for campaign construction: (label, workloads) for
 * the paper's two benchmark suites.
 */
std::vector<std::pair<std::string, std::vector<const Workload *>>>
benchmarkSuites();

/**
 * Human-readable listings backing the drivers' --list-configs /
 * --list-suites flags: every configByName() preset, and every suite
 * token suiteWorkloads() accepts with its workload count.
 */
std::string renderConfigList();
std::string renderSuiteList();

/**
 * Assemble a workload's kernel source into a program image, memoized
 * by source text: campaigns assemble each kernel once, not once per
 * job. The returned reference has static storage duration (Emulator
 * holds a reference to its program across a run). Thread-safe.
 */
const Program &assembleWorkload(const Workload &workload);

/**
 * Run @p workload on @p params; optionally attach a CPA. A config
 * with sys.numCores > 1 dispatches to runWorkloadMulti(); one core
 * takes the historical single-core path, byte-identical outputs.
 */
RunOutput runWorkload(const Workload &workload, const CoreParams &params,
                      CriticalPathAnalyzer *cpa = nullptr);

/**
 * Run @p workload SPMD on an N-core System: every core executes the
 * kernel with its own emulator (core_id syscall = core index, rand
 * seeded workload.seed + index). The RunOutput concatenates per-core
 * program outputs in core order and folds the per-core memory
 * digests into one hash. fatal()s when @p cpa is non-null: critical
 * -path analysis is single-core only.
 */
RunOutput runWorkloadMulti(const Workload &workload,
                           const CoreParams &params,
                           CriticalPathAnalyzer *cpa = nullptr);

/** Run just the functional emulator (reference state / output). */
RunOutput runFunctional(const Workload &workload);

/**
 * Functional-only SPMD run over @p num_cores emulator streams
 * (constructed exactly as runWorkloadMulti constructs them). emuInsts
 * is the aggregate dynamic instruction count, outputs concatenate in
 * core order, and the memory digest folds per-core digests with the
 * same hash as runWorkloadMulti (raw digest at one core).
 */
RunOutput runFunctionalMulti(const Workload &workload,
                             unsigned num_cores);

/** Percentage speedup of @p cycles against @p base_cycles. */
double speedupPercent(std::uint64_t base_cycles, std::uint64_t cycles);

/** Arithmetic mean. */
double amean(const std::vector<double> &xs);

} // namespace reno
