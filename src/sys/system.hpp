/**
 * @file
 * N-core system: per-core private L1s and branch predictors over one
 * shared L2/L3 stack and main memory, kept coherent by a snooping
 * MESI bus (src/coherence/mesi.hpp).
 *
 * Each core wraps its own functional Emulator (the cores do not share
 * an address space at the functional level; coherence is a timing
 * overlay driven by the cores' address streams, see mesi.hpp). The
 * System owns the shared hierarchy, the bus and the cores; the
 * caller owns the emulators, one per core, which must outlive it.
 * The emulators default to the decoded-superblock engine
 * (src/emu/decoded.hpp) -- each core's oracle steps ride its own
 * block cache, and the streams stay bit-exact in either mode.
 *
 * Stepping is deterministic: every system cycle ticks the unfinished
 * cores in core order, so all bus/shared-level state mutations within
 * a cycle are ordered by core index and the run is bit-reproducible.
 * A finished core freezes (its coreCycles slot records its own
 * completion time); the system runs until every core has exited.
 *
 * A 1-core System is cycle-identical to a bare Core by construction:
 * the bus's single-core paths all charge zero penalty, and the shared
 * stack is assembled with exactly the single-core hierarchy's logic.
 */
#pragma once

#include <memory>
#include <vector>

#include "coherence/mesi.hpp"
#include "mem/main_memory.hpp"
#include "uarch/core.hpp"

namespace reno
{

/** The multi-core machine. */
class System
{
  public:
    /**
     * @param emus  one emulator per core (params.sys.numCores of
     *              them), already loaded with the per-core program.
     * fatal()s when the core count is outside [1, SysParams::MaxCores]
     * or @p emus does not match it.
     */
    System(const CoreParams &params,
           const std::vector<Emulator *> &emus);

    /** Run to completion of every core (or the cycle limit). */
    SimResult run();

    /**
     * Run until the cores' aggregate retired-instruction count (the
     * sum over every core, cumulative since construction) reaches
     * @p retired_bound, every core finishes, or the cycle limit.
     * Sampled simulation chops multi-core measurement windows at
     * aggregate-retirement boundaries with this.
     */
    SimResult runUntilRetired(std::uint64_t retired_bound);

    /** Advance one system cycle: tick unfinished cores in order. */
    void tick();

    bool finished() const;
    Cycle now() const { return now_; }

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    Core &core(unsigned i) { return *cores_[i]; }
    const Core &core(unsigned i) const { return *cores_[i]; }
    const CoherenceBus &bus() const { return bus_; }
    /** Mutable bus access (warm-state injection before a sampled
     *  window; see src/sample/warmup.hpp). */
    CoherenceBus &bus() { return bus_; }

    /** The shared stack under the private L1s, nearest (L2) first;
     *  mutable for warm-state injection. */
    std::size_t numSharedLevels() const { return shared_.size(); }
    Cache &sharedLevel(std::size_t i) { return *shared_[i]; }
    const Cache &sharedLevel(std::size_t i) const
    {
        return *shared_[i];
    }

    /**
     * Aggregate result: whole-machine counters are the sum over the
     * cores, cycles is the system cycle count (max, not sum), the
     * shared stack and coherence counters are accounted once, and
     * each core's cycle/retire totals land in its CoreStatSlotNames
     * slot (cores beyond the last slot aggregate into it).
     */
    SimResult result() const;

  private:
    std::uint64_t totalRetired() const;

    CoreParams params_;
    std::unique_ptr<MainMemory> memory_;
    std::vector<std::unique_ptr<Cache>> shared_;  //!< L2 first
    std::vector<const Cache *> sharedView_;
    CoherenceBus bus_;
    std::vector<std::unique_ptr<Core>> cores_;
    Cycle now_ = 0;
};

} // namespace reno
