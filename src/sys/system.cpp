#include "sys/system.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace reno
{

namespace
{

/** Validate the core count before any member needs it. */
unsigned
checkedNumCores(const SysParams &sys)
{
    if (sys.numCores < 1 || sys.numCores > SysParams::MaxCores)
        fatal("system: core count must be in [1, %u] (got %u)",
              SysParams::MaxCores, sys.numCores);
    return sys.numCores;
}

} // namespace

System::System(const CoreParams &params,
               const std::vector<Emulator *> &emus)
    : params_(params),
      bus_(params.sys, params.mem.dcache.blockBytes,
           checkedNumCores(params.sys))
{
    const unsigned n = bus_.numCores();
    if (emus.size() != n)
        fatal("system: %u cores need %u emulators (got %zu)", n, n,
              emus.size());

    // The shared stack and memory, assembled exactly as the
    // single-core hierarchy assembles its own (mem/hierarchy.cpp):
    // back to front, write-back modeling propagated, the memory bus
    // moving one block of the deepest level per transfer.
    std::vector<CacheParams> stack;
    stack.push_back(params_.mem.l2);
    for (const CacheParams &extra : params_.mem.extraLevels)
        stack.push_back(extra);
    if (params_.mem.modelWritebacks) {
        for (CacheParams &level : stack)
            level.writebackTraffic = true;
    }
    memory_ = std::make_unique<MainMemory>(params_.mem.memory,
                                           stack.back().blockBytes);
    shared_.resize(stack.size());
    for (std::size_t i = stack.size(); i-- > 0;) {
        MemLevel *next =
            i + 1 < stack.size()
                ? static_cast<MemLevel *>(shared_[i + 1].get())
                : static_cast<MemLevel *>(memory_.get());
        shared_[i] = std::make_unique<Cache>(stack[i], next);
    }
    for (const auto &level : shared_)
        sharedView_.push_back(level.get());

    cores_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!emus[i])
            fatal("system: null emulator for core %u", i);
        MemHierarchy::Attach attach;
        attach.backend = shared_[0].get();
        attach.shared = sharedView_;
        attach.bus = &bus_;
        attach.coreId = i;
        cores_.push_back(
            std::make_unique<Core>(params_, *emus[i], &attach));
    }
}

bool
System::finished() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &c) { return c->finished(); });
}

std::uint64_t
System::totalRetired() const
{
    std::uint64_t sum = 0;
    for (const auto &core : cores_)
        sum += core->retiredCount();
    return sum;
}

void
System::tick()
{
    for (auto &core : cores_) {
        if (!core->finished())
            core->tick();
    }
    ++now_;
}

SimResult
System::run()
{
    const SimResult r = runUntilRetired(~std::uint64_t{0});

    auto &metrics = obs::MetricsRegistry::instance();
    metrics.counter("sys.coh.invalidations").inc(bus_.invalidations());
    metrics.counter("sys.coh.interventions").inc(bus_.interventions());
    metrics.counter("sys.coh.upgradeMisses").inc(bus_.upgradeMisses());
    metrics.counter("sys.coh.writebacks").inc(bus_.writebacks());
    return r;
}

SimResult
System::runUntilRetired(std::uint64_t retired_bound)
{
    // Same liveness watchdog as Core::runUntilRetired, on aggregate
    // retirement: bus penalties only delay accesses, they cannot
    // deadlock, so a system-wide retirement gap is still a bug.
    constexpr Cycle RetireGapBound = 100'000;
    std::uint64_t last_retired = totalRetired();
    Cycle last_progress = now_;

    const std::uint64_t sample_interval =
        obs::Tracer::instance().enabled()
            ? obs::Tracer::instance().cycleSampleInterval()
            : 0;
    Cycle next_sample =
        sample_interval
            ? (now_ / sample_interval + 1) * sample_interval
            : 0;

    while (!finished() && totalRetired() < retired_bound &&
           now_ < params_.maxCycles) {
        tick();
        if (sample_interval && now_ >= next_sample) {
            // One sample per core per interval, each on its own
            // "core<i>.stats" lane.
            for (auto &core : cores_)
                core->sampleStatsCounter();
            next_sample += sample_interval;
        }
        const std::uint64_t retired = totalRetired();
        if (retired != last_retired) {
            last_retired = retired;
            last_progress = now_;
        } else if (now_ - last_progress > RetireGapBound) {
            panic("no core retired an instruction for %llu cycles "
                  "(cycle %llu, %llu retired total): pipeline or "
                  "coherence deadlock",
                  static_cast<unsigned long long>(RetireGapBound),
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(last_retired));
        }
    }
    if (!finished() && now_ >= params_.maxCycles)
        warn("multi-core simulation hit the cycle limit before every "
             "core exited");
    return result();
}

SimResult
System::result() const
{
    SimResult agg;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        SimResult c = cores_[i]->result();
        // A lone core reports itself in slot 0; remap to this core's
        // slot (deep cores aggregate into the last one) and keep the
        // per-core arrays out of the whole-machine sum.
        const std::uint64_t core_cycles = c.coreCycles[0];
        const std::uint64_t core_retired = c.coreRetired[0];
        c.coreCycles[0] = 0;
        c.coreRetired[0] = 0;
        for (const SimStatField &f : simResultFields())
            statRef(agg, f) += statValue(c, f);
        const unsigned slot = static_cast<unsigned>(
            std::min<std::size_t>(i, NumCoreStatSlots - 1));
        agg.coreCycles[slot] += core_cycles;
        agg.coreRetired[slot] += core_retired;
    }
    // System time is the interleaved cycle count, not the sum of the
    // cores' clocks.
    agg.cycles = now_;

    // The shared stack, accounted once (attached cores report only
    // their private L1s). Stack index 0 is machine level 2 (the L2);
    // deeper levels aggregate into the "l3" slot.
    agg.l2Misses = shared_[0]->misses();
    for (std::size_t i = 0; i < shared_.size(); ++i) {
        const unsigned slot = static_cast<unsigned>(
            std::min<std::size_t>(i + 2, NumMemStatLevels - 1));
        const Cache &c = *shared_[i];
        agg.memHits[slot] += c.hits();
        agg.memMshrMerges[slot] += c.mshrMerges();
        agg.memWritebacks[slot] += c.writebacks();
        agg.memPrefetchIssued[slot] += c.prefetchIssued();
        agg.memPrefetchUseful[slot] += c.prefetchUseful();
        if (i >= 1)
            agg.l3Misses += c.misses();
    }

    agg.cohInvalidations = bus_.invalidations();
    agg.cohInterventions = bus_.interventions();
    agg.cohUpgradeMisses = bus_.upgradeMisses();
    agg.cohWritebacks = bus_.writebacks();
    return agg;
}

} // namespace reno
