#include "common/stats.hpp"

namespace reno
{

Counter &
StatGroup::add(const std::string &name)
{
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        order_.push_back(name);
    return it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(order_.size());
    for (const auto &name : order_)
        out.emplace_back(name, counters_.at(name).value());
    return out;
}

} // namespace reno
