/**
 * @file
 * Canonical text serialization of machine configurations. The output
 * is a stable "key value" line set covering every CoreParams field, so
 * it can serve both as a human-readable config dump and as the input
 * to the content digest that keys the simulation result cache: two
 * configurations serialize identically iff they simulate identically.
 *
 * When adding a field to CoreParams (or any nested parameter struct),
 * add it here too; tests/test_sweep.cpp cross-checks a representative
 * set of fields.
 */
#pragma once

#include <string>

#include "uarch/params.hpp"

namespace reno
{

/** Serialize every simulation-relevant CoreParams field. */
std::string serializeCoreParams(const CoreParams &params);

} // namespace reno
