/**
 * @file
 * Fundamental scalar types shared by every module of the RENO
 * simulator: addresses, cycle counts, register indices.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace reno
{

/** Byte address in the simulated machine's address space. */
using Addr = std::uint64_t;

/** Simulated-core clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (monotonic on the correct path). */
using InstSeq = std::uint64_t;

/** Logical (architectural) register index, 0..NumLogRegs-1. */
using LogReg = std::uint8_t;

/** Physical register index. */
using PhysReg = std::uint16_t;

/** Number of architectural integer registers (Alpha-like). */
constexpr unsigned NumLogRegs = 32;

/** The hardwired zero register (Alpha r31). */
constexpr LogReg RegZero = 31;

/** Stack pointer (Alpha r30). */
constexpr LogReg RegSp = 30;

/** Return address / link register (Alpha r26). */
constexpr LogReg RegRa = 26;

/** Return-value register (Alpha v0 = r0). */
constexpr LogReg RegV0 = 0;

/** First argument register (Alpha a0 = r16). */
constexpr LogReg RegA0 = 16;

/** Frame pointer (Alpha fp = r15). */
constexpr LogReg RegFp = 15;

/** Sentinel for "no physical register". */
constexpr PhysReg InvalidPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "no cycle yet" / "not scheduled". */
constexpr Cycle InvalidCycle = std::numeric_limits<Cycle>::max();

/** Sign-extend the low @p bits bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    const std::uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
    const std::uint64_t sign = 1ULL << (bits - 1);
    const std::uint64_t v = value & mask;
    return static_cast<std::int64_t>((v ^ sign) - sign);
}

/** True iff @p value fits in a signed @p bits-bit field. */
constexpr bool
fitsSigned(std::int64_t value, unsigned bits)
{
    const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

} // namespace reno
