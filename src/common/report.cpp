#include "common/report.hpp"

#include "common/log.hpp"
#include "common/table.hpp"

namespace reno
{

void
addField(ReportRecord &rec, const std::string &name,
         const std::string &value)
{
    rec.push_back({name, value, false});
}

void
addField(ReportRecord &rec, const std::string &name,
         std::uint64_t value)
{
    rec.push_back(
        {name, strprintf("%llu", static_cast<unsigned long long>(value)),
         true});
}

void
addField(ReportRecord &rec, const std::string &name, double value,
         int decimals)
{
    rec.push_back({name, strprintf("%.*f", decimals, value), true});
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
renderJson(const std::vector<ReportRecord> &records)
{
    std::string out = "[\n";
    for (std::size_t r = 0; r < records.size(); ++r) {
        out += "  {";
        const ReportRecord &rec = records[r];
        for (std::size_t f = 0; f < rec.size(); ++f) {
            if (f)
                out += ", ";
            out += '"';
            out += jsonEscape(rec[f].name);
            out += "\": ";
            if (rec[f].numeric) {
                out += rec[f].value;
            } else {
                out += '"';
                out += jsonEscape(rec[f].value);
                out += '"';
            }
        }
        out += r + 1 < records.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

std::string
renderCsv(const std::vector<ReportRecord> &records)
{
    if (records.empty())
        return "";
    std::string out;
    const ReportRecord &first = records.front();
    for (std::size_t f = 0; f < first.size(); ++f) {
        if (f)
            out += ',';
        out += csvEscape(first[f].name);
    }
    out += '\n';
    for (const ReportRecord &rec : records) {
        if (rec.size() != first.size())
            fatal("CSV report: record has %zu fields, header has %zu",
                  rec.size(), first.size());
        for (std::size_t f = 0; f < rec.size(); ++f) {
            if (f)
                out += ',';
            out += csvEscape(rec[f].value);
        }
        out += '\n';
    }
    return out;
}

std::string
renderTable(const std::vector<ReportRecord> &records)
{
    if (records.empty())
        return "";
    TextTable t;
    std::vector<std::string> header;
    for (const ReportField &f : records.front())
        header.push_back(f.name);
    t.header(header);
    for (const ReportRecord &rec : records) {
        std::vector<std::string> row;
        for (const ReportField &f : rec)
            row.push_back(f.value);
        t.row(row);
    }
    return t.render();
}

} // namespace reno
