/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * the random program generator and synthetic workloads. The standard
 * library engines are avoided so that streams are reproducible across
 * platforms and library versions.
 */
#pragma once

#include <cstdint>

namespace reno
{

/**
 * Small, fast, deterministic PRNG. Not cryptographic; used only for
 * workload synthesis and property tests.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding so that nearby seeds give unrelated streams.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool
    chance(unsigned percent)
    {
        return below(100) < percent;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace reno
