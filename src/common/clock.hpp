/**
 * @file
 * Wall-clock abstraction for the observability layer. Everything that
 * timestamps events (the event tracer, phase accounting, progress
 * heartbeats) reads time through a Clock pointer, so tests inject a
 * ManualClock and assert on exact, deterministic timestamps while
 * production code uses the monotonic steady clock.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace reno
{

/** Monotonic microsecond clock. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Microseconds since an arbitrary fixed origin; never decreases. */
    virtual std::uint64_t nowMicros() = 0;
};

/** std::chrono::steady_clock, origin at first use. */
class SteadyClock final : public Clock
{
  public:
    std::uint64_t nowMicros() override;
};

/** Hand-advanced clock for deterministic tests. */
class ManualClock final : public Clock
{
  public:
    std::uint64_t
    nowMicros() override
    {
        return now_.load(std::memory_order_relaxed);
    }

    void
    advance(std::uint64_t micros)
    {
        now_.fetch_add(micros, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> now_{0};
};

/** The process-wide steady clock instance. */
Clock &steadyClock();

} // namespace reno
