/**
 * @file
 * StatSet: a registry of named monotonic 64-bit counters with stable
 * registration order and snapshot/delta algebra.
 *
 * Modules register each counter once by name and keep the returned
 * reference on their hot path -- an increment is a plain add, no map
 * lookup. Because every counter is monotonic, "freezing" statistics
 * over a window is exact: the window's contribution is the delta of
 * two snapshots, which is how the sampled-simulation subsystem
 * measures its warmed intervals.
 *
 * StatSet complements StatGroup (common/stats.hpp): StatGroup wraps
 * Counter objects for dump/reset bookkeeping; StatSet hands out raw
 * std::uint64_t references (reference-stable for the set's lifetime)
 * and supports snapshot arithmetic.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace reno
{

/** Ordered values of every counter of a StatSet at one instant.
 *  Ordering (and therefore delta compatibility) follows the set's
 *  registration order. */
struct StatSnapshot {
    std::vector<std::uint64_t> values;

    /** Field-wise *this - pre (monotonic counters: post - pre). */
    StatSnapshot delta(const StatSnapshot &pre) const;

    /** Field-wise accumulation. */
    void accumulate(const StatSnapshot &add);

    bool operator==(const StatSnapshot &other) const = default;
};

/** A named registry of monotonic counters. */
class StatSet
{
  public:
    explicit StatSet(std::string name = "stats") : name_(std::move(name))
    {
    }

    // Handed-out references must stay valid; no copies.
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /**
     * Register (or re-fetch) the counter called @p name. The returned
     * reference is stable for the set's lifetime -- bind it once and
     * increment it directly on the hot path.
     */
    std::uint64_t &add(std::string_view name);

    bool has(std::string_view name) const;

    /** Value of a registered counter (0 if absent). */
    std::uint64_t value(std::string_view name) const;

    std::size_t size() const { return order_.size(); }
    const std::vector<std::string> &names() const { return order_; }
    const std::string &name() const { return name_; }

    /** All counter values, in registration order. */
    StatSnapshot snapshot() const;

    /** All (name, value) pairs, in registration order. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    /** Zero every counter (new runs on a reused set). */
    void resetAll();

  private:
    std::string name_;
    /** Deque: grows without invalidating handed-out references. */
    std::deque<std::uint64_t> values_;
    std::vector<std::string> order_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

} // namespace reno
