#include "common/serialize.hpp"

#include "common/log.hpp"

namespace reno
{

namespace
{

void
emit(std::string &out, const char *key, std::uint64_t v)
{
    out += strprintf("%s %llu\n", key,
                     static_cast<unsigned long long>(v));
}

void
emitCache(std::string &out, const std::string &prefix,
          const CacheParams &c)
{
    const char *p = prefix.c_str();
    out += strprintf("%s.size %u\n", p, c.sizeBytes);
    out += strprintf("%s.assoc %u\n", p, c.assoc);
    out += strprintf("%s.block %u\n", p, c.blockBytes);
    out += strprintf("%s.latency %u\n", p, c.latency);
    out += strprintf("%s.mshrs %u\n", p, c.numMshrs);
    out += strprintf("%s.prefetch %s\n", p,
                     prefetchKindName(c.prefetch.kind));
    out += strprintf("%s.prefetchDegree %u\n", p, c.prefetch.degree);
    out += strprintf("%s.prefetchTable %u\n", p,
                     c.prefetch.tableEntries);
    out += strprintf("%s.prefetchRegion %u\n", p,
                     c.prefetch.regionBytes);
    out += strprintf("%s.writebackTraffic %u\n", p,
                     c.writebackTraffic ? 1u : 0u);
}

} // namespace

std::string
serializeCoreParams(const CoreParams &p)
{
    std::string out;
    out.reserve(1024);

    emit(out, "fetchWidth", p.fetchWidth);
    emit(out, "renameWidth", p.renameWidth);
    emit(out, "commitWidth", p.commitWidth);
    emit(out, "issue.intOps", p.issue.intOps);
    emit(out, "issue.loads", p.issue.loads);
    emit(out, "issue.stores", p.issue.stores);
    emit(out, "issue.fp", p.issue.fp);
    emit(out, "issue.total", p.issue.total);

    emit(out, "robEntries", p.robEntries);
    emit(out, "iqEntries", p.iqEntries);
    emit(out, "lqEntries", p.lqEntries);
    emit(out, "sqEntries", p.sqEntries);
    emit(out, "numPregs", p.numPregs);
    emit(out, "fetchBufEntries", p.fetchBufEntries);

    emit(out, "frontDepth", p.frontDepth);
    emit(out, "renameDepth", p.renameDepth);
    emit(out, "schedLoop", p.schedLoop);
    emit(out, "branchResolveExtra", p.branchResolveExtra);

    emit(out, "ssitEntries", p.ssitEntries);
    emit(out, "numStoreSets", p.numStoreSets);

    out += strprintf("bpred.dir %s\n",
                     dirPredKindName(p.bpred.dir.kind));
    emit(out, "bpred.bimodal", p.bpred.dir.bimodalEntries);
    emit(out, "bpred.gshare", p.bpred.dir.gshareEntries);
    emit(out, "bpred.chooser", p.bpred.dir.chooserEntries);
    emit(out, "bpred.history", p.bpred.dir.historyBits);
    emit(out, "bpred.tageBase", p.bpred.dir.tageBaseEntries);
    emit(out, "bpred.tageTables", p.bpred.dir.tageTables);
    emit(out, "bpred.tageEntries", p.bpred.dir.tageEntries);
    emit(out, "bpred.tageTag", p.bpred.dir.tageTagBits);
    emit(out, "bpred.tageMinHist", p.bpred.dir.tageMinHist);
    emit(out, "bpred.tageMaxHist", p.bpred.dir.tageMaxHist);
    emit(out, "bpred.perceptron", p.bpred.dir.perceptronEntries);
    emit(out, "bpred.perceptronHist", p.bpred.dir.perceptronHistBits);
    emit(out, "bpred.btb", p.bpred.btb.entries);
    emit(out, "bpred.btbAssoc", p.bpred.btb.assoc);
    emit(out, "bpred.ras", p.bpred.ras.entries);
    emit(out, "bpred.itt", p.bpred.indirect.enabled);
    emit(out, "bpred.ittEntries", p.bpred.indirect.entries);
    emit(out, "bpred.ittHistory", p.bpred.indirect.historyBits);

    emitCache(out, "icache", p.mem.icache);
    emitCache(out, "dcache", p.mem.dcache);
    emitCache(out, "l2", p.mem.l2);
    emit(out, "mem.extraLevels", p.mem.extraLevels.size());
    for (std::size_t i = 0; i < p.mem.extraLevels.size(); ++i)
        emitCache(out, strprintf("extra%zu", i), p.mem.extraLevels[i]);
    emit(out, "mem.writebacks", p.mem.modelWritebacks);
    emit(out, "memory.latency", p.mem.memory.accessLatency);
    emit(out, "memory.busBytes", p.mem.memory.busBytes);
    emit(out, "memory.busDivider", p.mem.memory.busClockDivider);

    emit(out, "reno.me", p.reno.me);
    emit(out, "reno.cf", p.reno.cf);
    emit(out, "reno.cse", p.reno.cse);
    emit(out, "reno.ra", p.reno.ra);
    emit(out, "reno.it.entries", p.reno.it.entries);
    emit(out, "reno.it.assoc", p.reno.it.assoc);
    emit(out, "reno.itLoadsOnly", p.reno.itLoadsOnly);
    emit(out, "reno.exactOverflow", p.reno.exactOverflowCheck);
    emit(out, "reno.verifyValues", p.reno.verifyValues);

    emit(out, "sys.numCores", p.sys.numCores);
    emit(out, "sys.snoopLatency", p.sys.snoopLatency);
    emit(out, "sys.interventionLatency", p.sys.interventionLatency);
    emit(out, "sys.upgradeLatency", p.sys.upgradeLatency);

    emit(out, "freeAddAddFusion", p.freeAddAddFusion);
    emit(out, "maxCycles", p.maxCycles);

    return out;
}

} // namespace reno
