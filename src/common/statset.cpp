#include "common/statset.hpp"

#include "common/log.hpp"

namespace reno
{

StatSnapshot
StatSnapshot::delta(const StatSnapshot &pre) const
{
    if (values.size() != pre.values.size())
        fatal("StatSnapshot::delta: incompatible snapshots "
              "(%zu vs %zu counters)",
              values.size(), pre.values.size());
    StatSnapshot d;
    d.values.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        d.values[i] = values[i] - pre.values[i];
    return d;
}

void
StatSnapshot::accumulate(const StatSnapshot &add)
{
    if (values.empty())
        values.resize(add.values.size(), 0);
    if (values.size() != add.values.size())
        fatal("StatSnapshot::accumulate: incompatible snapshots "
              "(%zu vs %zu counters)",
              values.size(), add.values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] += add.values[i];
}

std::uint64_t &
StatSet::add(std::string_view name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return values_[it->second];
    values_.push_back(0);
    order_.emplace_back(name);
    index_.emplace(std::string(name), values_.size() - 1);
    return values_.back();
}

bool
StatSet::has(std::string_view name) const
{
    return index_.find(name) != index_.end();
}

std::uint64_t
StatSet::value(std::string_view name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
}

StatSnapshot
StatSet::snapshot() const
{
    StatSnapshot s;
    s.values.assign(values_.begin(), values_.end());
    return s;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatSet::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i)
        out.emplace_back(order_[i], values_[i]);
    return out;
}

void
StatSet::resetAll()
{
    for (std::uint64_t &v : values_)
        v = 0;
}

} // namespace reno
