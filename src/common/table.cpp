#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace reno
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            line += cell;
            if (i + 1 < widths.size())
                line += std::string(widths[i] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!header_.empty()) {
        out += emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : rows_)
        out += emit(r);
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
fmtPercent(double fraction, int decimals)
{
    return strprintf("%.*f", decimals, fraction * 100.0);
}

} // namespace reno
