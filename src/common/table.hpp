/**
 * @file
 * ASCII table formatter used by the benchmark harness to print the
 * rows/series corresponding to the paper's figures.
 */
#pragma once

#include <string>
#include <vector>

namespace reno
{

/**
 * Simple column-aligned text table. Columns are sized to fit; numeric
 * cells should be pre-formatted by the caller.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the whole table, header separator included. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a fraction as a percentage string, e.g. 0.123 -> "12.3". */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace reno
