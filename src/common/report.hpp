/**
 * @file
 * Structured report emitters. A report is a list of flat records
 * (ordered name/value fields); the same records render as an aligned
 * text table, a JSON array of objects, or CSV with a header row.
 * Numeric fields carry a flag so JSON emits them unquoted.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reno
{

/** One field of a report record. */
struct ReportField {
    std::string name;
    std::string value;
    bool numeric = false;  //!< JSON: emit bare rather than quoted
};

/** One record (row); field order defines column order. */
using ReportRecord = std::vector<ReportField>;

/** Append helpers. */
void addField(ReportRecord &rec, const std::string &name,
              const std::string &value);
void addField(ReportRecord &rec, const std::string &name,
              std::uint64_t value);
void addField(ReportRecord &rec, const std::string &name, double value,
              int decimals = 4);

/** Escape a string for a JSON string literal (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** Escape a CSV cell (quotes it when it contains , " or newline). */
std::string csvEscape(const std::string &s);

/**
 * Render records as a JSON array of objects, two-space indented,
 * trailing newline. Records may have differing field sets.
 */
std::string renderJson(const std::vector<ReportRecord> &records);

/**
 * Render records as CSV: header row from the first record's field
 * names, then one line per record. All records must share the first
 * record's field set.
 */
std::string renderCsv(const std::vector<ReportRecord> &records);

/** Render records as an aligned text table (common/table.hpp). */
std::string renderTable(const std::vector<ReportRecord> &records);

} // namespace reno
