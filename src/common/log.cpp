#include "common/log.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace reno
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

std::FILE *g_sink = nullptr;  // nullptr = stderr

LogLevel
parseLevel(const char *s)
{
    if (!s || !*s)
        return LogLevel::Info;
    if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "0") == 0)
        return LogLevel::Debug;
    if (std::strcmp(s, "info") == 0 || std::strcmp(s, "1") == 0)
        return LogLevel::Info;
    if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "2") == 0)
        return LogLevel::Warn;
    if (std::strcmp(s, "error") == 0 || std::strcmp(s, "3") == 0)
        return LogLevel::Error;
    if (std::strcmp(s, "silent") == 0 || std::strcmp(s, "4") == 0)
        return LogLevel::Silent;
    std::fprintf(stderr, "warn: ignoring invalid RENO_LOG_LEVEL='%s'\n",
                 s);
    return LogLevel::Info;
}

LogLevel &
threshold()
{
    static LogLevel level = parseLevel(std::getenv("RENO_LOG_LEVEL"));
    return level;
}

/** One locked fprintf, so concurrent messages never interleave. */
void
emit(LogLevel level, const char *prefix, const char *fmt,
     va_list args)
{
    if (level < threshold())
        return;
    const std::string s = vstrprintf(fmt, args);
    std::lock_guard<std::mutex> lock(logMutex());
    std::FILE *sink = g_sink ? g_sink : stderr;
    std::fprintf(sink, "%s%s\n", prefix, s.c_str());
    std::fflush(sink);
}

} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

std::FILE *
setLogSink(std::FILE *sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::FILE *prev = g_sink;
    g_sink = sink;
    return prev;
}

LogLevel
setLogThreshold(LogLevel level)
{
    const LogLevel prev = threshold();
    threshold() = level;
    return prev;
}

LogLevel
logThreshold()
{
    return threshold();
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    // Silent above every threshold: a crash report must print.
    emit(LogLevel::Silent, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Silent, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Warn, "warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Info, "info: ", fmt, args);
    va_end(args);
}

} // namespace reno
