#include "common/digest.hpp"

#include "common/log.hpp"

namespace reno
{

std::string
digestHex(std::uint64_t digest)
{
    return strprintf("%016llx",
                     static_cast<unsigned long long>(digest));
}

std::string
Fnv64::hex() const
{
    return digestHex(hash_);
}

} // namespace reno
