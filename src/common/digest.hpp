/**
 * @file
 * Content digests: an incremental 64-bit FNV-1a hasher used to derive
 * content-addressed keys (kernel source + seed + serialized machine
 * configuration) for the simulation result cache.
 */
#pragma once

#include <cstdint>
#include <string>

namespace reno
{

/** Incremental 64-bit FNV-1a hash. */
class Fnv64
{
  public:
    static constexpr std::uint64_t Offset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t Prime = 0x100000001b3ULL;

    /** Absorb raw bytes. */
    Fnv64 &
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= Prime;
        }
        return *this;
    }

    /** Absorb a string's bytes plus a length separator, so that
     *  ("ab","c") and ("a","bc") digest differently. */
    Fnv64 &
    update(const std::string &s)
    {
        update(s.data(), s.size());
        return update(s.size());
    }

    Fnv64 &update(const char *s) { return update(std::string(s)); }

    /** Absorb an integer's little-endian bytes. */
    Fnv64 &
    update(std::uint64_t v)
    {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(v >> (8 * i));
        return update(bytes, sizeof(bytes));
    }

    Fnv64 &update(bool b) { return update(std::uint64_t(b ? 1 : 0)); }

    std::uint64_t value() const { return hash_; }

    /** The digest as a fixed-width lowercase hex string. */
    std::string hex() const;

  private:
    std::uint64_t hash_ = Offset;
};

/** Format a 64-bit digest as 16 lowercase hex digits. */
std::string digestHex(std::uint64_t digest);

} // namespace reno
