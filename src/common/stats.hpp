/**
 * @file
 * Lightweight statistics package: named scalar counters grouped under a
 * StatGroup, with registration so whole groups can be dumped or reset.
 * Modeled loosely on gem5's stats but deliberately minimal.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reno
{

class StatGroup;

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { value_ += 1; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A group of named counters. Modules embed a StatGroup and register
 * their counters against it; the harness dumps groups after a run.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name; returns a reference to use. */
    Counter &add(const std::string &name);

    /** Zero every registered counter. */
    void resetAll();

    /** Value of a registered counter (0 if absent). */
    std::uint64_t get(const std::string &name) const;

    /** All (name, value) pairs in registration order. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
};

} // namespace reno
