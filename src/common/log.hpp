/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for status messages.
 *
 * All four route through one mutex-guarded sink (stderr by default,
 * redirectable with setLogSink() for tests), each message written
 * with a single fprintf so concurrent pool workers never interleave
 * partial lines. warn()/inform() honor a severity threshold set with
 * setLogThreshold() or the RENO_LOG_LEVEL environment variable
 * (debug/info/warn/error/silent, or 0-4); panic()/fatal() always
 * print.
 */
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace reno
{

/** Message severities, least to most severe. */
enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/** Print a formatted message and abort; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Redirect warn()/inform() (and fatal()/panic()) to @p sink, not
 * owned; nullptr restores stderr. Returns the previous sink.
 */
std::FILE *setLogSink(std::FILE *sink);

/**
 * Suppress messages below @p level. Returns the previous threshold.
 * The initial threshold comes from RENO_LOG_LEVEL (name or 0-4;
 * unset or invalid = Info).
 */
LogLevel setLogThreshold(LogLevel level);

/** The active threshold (resolving RENO_LOG_LEVEL on first use). */
LogLevel logThreshold();

/** vsnprintf into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** snprintf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace reno
