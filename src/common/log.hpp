/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for status messages.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace reno
{

/** Print a formatted message and abort; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** vsnprintf into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** snprintf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace reno
