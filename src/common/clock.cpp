#include "common/clock.hpp"

#include <chrono>

namespace reno
{

std::uint64_t
SteadyClock::nowMicros()
{
    using namespace std::chrono;
    // A fixed per-process origin keeps timestamps small and positive
    // (Chrome trace timestamps render best near zero).
    static const steady_clock::time_point origin = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now() - origin)
            .count());
}

Clock &
steadyClock()
{
    static SteadyClock clock;
    return clock;
}

} // namespace reno
