/**
 * @file
 * Issue stage: selects ready instructions oldest-first within the
 * per-class and total issue widths, computes completion times
 * (including RENO constant-fusion latency), schedules loads
 * aggressively under the store-set predictor, performs
 * store-to-load forwarding, and detects memory-order violations when
 * stores execute -- squashing and replaying the offending load and
 * everything younger.
 *
 * The selection loop walks the issue-candidate list (renamed,
 * unissued, uncollapsed instructions in program order) and the memory
 * scans walk robStores/robLoads; both are order-preserving subsets of
 * the ROB, so the stage behaves exactly like a full ROB scan at a
 * fraction of the cost.
 */
#pragma once

#include "mem/hierarchy.hpp"
#include "pipeline/machine_state.hpp"
#include "pipeline/pipeline_stats.hpp"
#include "reno/renamer.hpp"
#include "uarch/params.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

class IssueStage
{
  public:
    IssueStage(const CoreParams &params, MemHierarchy &mem,
               StoreSets &ssets, RenoRenamer &renamer,
               MachineState &state, PipelineStats &stats)
        : params_(params), mem_(mem), ssets_(ssets), renamer_(renamer),
          s_(state), stats_(stats)
    {
    }

    void tick();

  private:
    /** Source-operand ready cycle honoring the scheduling loop. */
    Cycle srcReadyCycle(const SrcOp &src) const;

    /** Extra fused-operation latency for deferred displacements. */
    unsigned fusionExtra(const DynInst &d) const;

    const CoreParams &params_;
    MemHierarchy &mem_;
    StoreSets &ssets_;
    RenoRenamer &renamer_;
    MachineState &s_;
    PipelineStats &stats_;
};

} // namespace reno
