/**
 * @file
 * Commit stage: retires completed instructions in program order up to
 * the commit width, drains stores and re-executing integrated loads
 * through the single retirement port, flushes misintegrated loads
 * (stale integration-table tuples caught by retirement re-execution),
 * accounts the retirement statistics, and notifies the retire
 * listener. Retired instructions return to the arena.
 */
#pragma once

#include "mem/hierarchy.hpp"
#include "obs/cpistack.hpp"
#include "obs/profiler.hpp"
#include "pipeline/machine_state.hpp"
#include "pipeline/pipeline_stats.hpp"
#include "reno/renamer.hpp"
#include "uarch/params.hpp"
#include "uarch/retire_listener.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

class CommitStage
{
  public:
    CommitStage(const CoreParams &params, RenoRenamer &renamer,
                StoreSets &ssets, MemHierarchy &mem,
                MachineState &state, PipelineStats &stats)
        : params_(params), renamer_(renamer), ssets_(ssets), mem_(mem),
          s_(state), stats_(stats)
    {
    }

    void tick();

    void setListener(RetireListener *listener) { listener_ = listener; }
    RetireListener *listener() const { return listener_; }

    /** Attach CPI-stack / hotspot accounting (either may be null).
     *  Core wires this once at construction when enabled. */
    void
    setCpi(obs::CpiStack *cpi, obs::HotspotProfile *hot)
    {
        cpi_ = cpi;
        hot_ = hot;
    }

  private:
    /** Classify this tick into exactly one CPI bucket (and charge
     *  the hotspot profiler). Called once per tick when attached. */
    void account(unsigned committed, bool retire_port_stall);

    const CoreParams &params_;
    RenoRenamer &renamer_;
    StoreSets &ssets_;
    MemHierarchy &mem_;
    MachineState &s_;
    PipelineStats &stats_;
    RetireListener *listener_ = nullptr;
    obs::CpiStack *cpi_ = nullptr;
    obs::HotspotProfile *hot_ = nullptr;
};

} // namespace reno
