#include "pipeline/issue_stage.hpp"

#include <algorithm>

namespace reno
{

Cycle
IssueStage::srcReadyCycle(const SrcOp &src) const
{
    const Cycle ready = s_.pregReady[src.preg];
    if (ready == InvalidCycle)
        return InvalidCycle;
    const Cycle issue = s_.pregIssue[src.preg];
    if (issue == InvalidCycle)
        return ready;
    return std::max(ready, issue + params_.schedLoop);
}

unsigned
IssueStage::fusionExtra(const DynInst &d) const
{
    if (!params_.reno.cf)
        return 0;
    const Instruction &inst = d.inst();
    const bool disp0 = d.ren.numSrcs > 0 && d.ren.src[0].disp != 0;
    // A store's data displacement collapses on the dedicated store-data
    // path adder and never delays issue.
    const bool disp1 = d.ren.numSrcs > 1 && d.ren.src[1].disp != 0 &&
                       !isStore(inst.op);
    if (!disp0 && !disp1)
        return 0;
    if (!params_.freeAddAddFusion)
        return 1;  // ablation: every fusion costs a cycle
    if (inst.info().fusePenalty)
        return 1;  // general shift or multiply/divide input adder
    if (disp0 && disp1)
        return 1;  // both inputs displaced: augmented ALU case
    return 0;      // add-add fusion via 3-input carry-save adder
}

void
IssueStage::tick()
{
    unsigned used_int = 0, used_ld = 0, used_st = 0, used_total = 0;

    DynInst *next = nullptr;
    for (DynInst *cand = s_.issueHead; cand; cand = next) {
        next = cand->issueNext;
        if (used_total >= params_.issue.total)
            break;
        DynInst &d = *cand;
        // List membership guarantees renamed, unissued, uncollapsed,
        // non-syscall.
        const Instruction &inst = d.inst();
        const InstClass cls = inst.info().cls;

        const bool is_ld = cls == InstClass::Load;
        const bool is_st = cls == InstClass::Store;
        if (is_ld && used_ld >= params_.issue.loads)
            continue;
        if (is_st && used_st >= params_.issue.stores)
            continue;
        if (!is_ld && !is_st && used_int >= params_.issue.intOps)
            continue;

        // Readiness: dispatch pipe, then each source's producer.
        Cycle earliest = d.readyEarliest;
        IssueDom dom = IssueDom::Dispatch;
        InstSeq dom_seq = 0;
        bool ready = true;
        for (unsigned s = 0; s < d.ren.numSrcs; ++s) {
            const Cycle t = srcReadyCycle(d.ren.src[s]);
            if (t == InvalidCycle) {
                ready = false;
                break;
            }
            if (t > earliest) {
                earliest = t;
                dom = s == 0 ? IssueDom::Src0 : IssueDom::Src1;
                dom_seq = s_.pregProducer[d.ren.src[s].preg];
            }
        }
        if (!ready || earliest > s_.now)
            continue;

        // Aggressive load scheduling, gated by the store-set predictor:
        // a load whose pc maps to a store set waits until every older
        // in-flight store of that set has issued (the LFST chains
        // same-set stores, so tracking the youngest is equivalent).
        if (is_ld) {
            const unsigned set = ssets_.setOf(d.rec.pc);
            if (set != StoreSets::InvalidSet) {
                bool blocked = false;
                InstSeq blocker = 0;
                for (const DynInst *st : s_.robStores) {
                    if (st->seq >= d.seq)
                        break;
                    if (!st->issued && st->storeSet == set) {
                        blocked = true;
                        blocker = st->seq;
                        break;
                    }
                }
                if (blocked) {
                    d.issueDom = IssueDom::MemDep;
                    d.domProducer = blocker;
                    continue;
                }
            }
        }

        // Issue.
        d.issued = true;
        d.issueCycle = s_.now;
        d.issueDom = s_.now > earliest ? IssueDom::Contention : dom;
        if (d.issueDom != IssueDom::Contention)
            d.domProducer = dom_seq;
        if (d.inIq) {
            d.inIq = false;
            --s_.iqCount;
        }
        s_.issueListRemove(&d);
        ++used_total;
        if (is_ld)
            ++used_ld;
        else if (is_st)
            ++used_st;
        else
            ++used_int;

        const unsigned extra = fusionExtra(d);

        if (is_ld) {
            const Cycle agen = s_.now + 1 + extra;
            // Store-to-load forwarding / violation arming: find the
            // youngest older overlapping store.
            const DynInst *fwd = nullptr;
            for (const DynInst *st : s_.robStores) {
                if (st->seq >= d.seq)
                    break;
                if (st->memOverlaps(d))
                    fwd = st;
            }
            if (fwd && fwd->issued) {
                d.memLevel = MemHitLevel::Forwarded;
                d.completeCycle =
                    std::max(agen, fwd->completeCycle) +
                    params_.mem.dcache.latency;
            } else {
                // No forwarding source (or an unissued older store: the
                // aggressive issue proceeds and the store's execution
                // will catch the violation).
                if (mem_.dcacheProbe(d.rec.effAddr))
                    d.memLevel = MemHitLevel::L1;
                else if (mem_.sharedProbe(d.rec.effAddr))
                    // Any shared-level hit (L2, or an L3 in the deep
                    // configs) classifies as an on-chip cache hit for
                    // critical-path bucketing, not a memory access.
                    d.memLevel = MemHitLevel::L2;
                else
                    d.memLevel = MemHitLevel::Memory;
                d.completeCycle =
                    mem_.dataAccess(d.rec.effAddr, agen, false);
                d.cohDelayed = mem_.lastCohPenalty() > 0;
            }
        } else if (is_st) {
            // Address generation; data merges on the store-data path.
            d.completeCycle = s_.now + 1 + extra;
            ssets_.storeInactive(d.storeSet, d.seq);
        } else {
            d.completeCycle = s_.now + inst.info().latency + extra;
        }

        if (d.ren.hasDest) {
            s_.pregReady[d.ren.destPreg] = d.completeCycle;
            s_.pregIssue[d.ren.destPreg] = d.issueCycle;
        }

        // Resolve a fetch-blocking mispredicted branch.
        if (d.stallsFetch) {
            d.stallsFetch = false;
            --s_.fetchBlocked;
            s_.fetchResumeAt = std::max(
                s_.fetchResumeAt,
                d.completeCycle + params_.branchResolveExtra);
            s_.pendingRedirectSeq = d.seq;
            s_.fetchWait = FetchWait::Redirect;
        }

        // A store's execution exposes memory-order violations: any
        // younger overlapping load that already issued read stale data.
        if (is_st) {
            for (DynInst *lp : s_.robLoads) {
                if (lp->seq <= d.seq)
                    continue;
                DynInst &ld = *lp;
                if (ld.issued && !ld.ren.eliminated() &&
                    ld.memOverlaps(d)) {
                    ssets_.trainViolation(ld.rec.pc, d.rec.pc);
                    ++stats_.violationSquashes;
                    s_.squashFrom(s_.robIndexOf(ld.seq), s_.now + 1,
                                  renamer_, ssets_, params_);
                    return;  // lists invalidated; end issue stage
                }
            }
        }
    }
}

} // namespace reno
