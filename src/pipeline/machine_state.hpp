/**
 * @file
 * The explicit machine state shared by the pipeline stages: fetch
 * buffer, re-order buffer, physical-register scoreboard, queue
 * occupancies and redirect/drain bookkeeping, plus the instruction
 * arena that owns every in-flight DynInst.
 *
 * The state also maintains three derived views the issue stage's
 * inner scans walk instead of the whole ROB:
 *
 *   - robStores / robLoads: the ROB's memory instructions in program
 *     order (store-to-load forwarding, store-set blocking and
 *     violation detection only ever inspect these), and
 *   - the intrusive issue-candidate list (issueHead/issueTail):
 *     renamed instructions that may still issue -- not collapsed, not
 *     syscalls, not yet issued -- in program order.
 *
 * Both views are subsets of the ROB in ROB order, so walking them is
 * behavior-identical to the original full-ROB scans; squashFrom keeps
 * them consistent during recovery.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pipeline/inst_arena.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/params.hpp"

namespace reno
{

class RenoRenamer;
class StoreSets;

/** Why fetch last stopped delivering (CPI-stack attribution). */
enum class FetchWait : std::uint8_t {
    None,      //!< delivering normally (or never stalled yet)
    Icache,    //!< waiting out an instruction-cache miss
    Redirect,  //!< refilling behind a mispredict redirect
    Squash,    //!< refilling after a pipeline squash
};

/** Which resource rename last stalled on (CPI-stack attribution). */
enum class RenameStall : std::uint8_t { None, Rob, Iq, Lsq, Pregs };

struct MachineState {
    explicit MachineState(const CoreParams &params);

    InstArena arena;
    std::deque<DynInst *> fetchBuf;
    std::deque<DynInst *> rob;

    /** ROB memory instructions in program order (see file comment). */
    std::deque<DynInst *> robStores;
    std::deque<DynInst *> robLoads;

    /** Issue-candidate list endpoints (intrusive, program order). */
    DynInst *issueHead = nullptr;
    DynInst *issueTail = nullptr;

    // --- physical-register scoreboard ---------------------------------
    std::vector<Cycle> pregReady;
    std::vector<Cycle> pregIssue;
    std::vector<InstSeq> pregProducer;

    // --- queue occupancies --------------------------------------------
    unsigned iqCount = 0;
    unsigned lqCount = 0;
    unsigned sqCount = 0;
    /** Post-retirement port queue: stores and re-executing integrated
     *  loads drain at one per cycle; commit stalls only when full. */
    unsigned drainQueue = 0;

    // --- redirect / drain bookkeeping ---------------------------------
    Cycle now = 0;
    InstSeq seqCounter = 1;
    Addr lastFetchBlock = ~Addr{0};
    Cycle fetchResumeAt = 0;
    unsigned fetchBlocked = 0;  //!< unresolved mispredicted branches
    InstSeq pendingRedirectSeq = 0;  //!< branch behind the next fetch
    bool finished = false;

    // --- CPI-stack attribution hints ----------------------------------
    /** Why fetch last stopped (classifies empty-ROB cycles). */
    FetchWait fetchWait = FetchWait::None;
    /** Last rename stall reason and the cycle it was recorded; commit
     *  consults it only when `renameStallCycle + 1 == now` (rename runs
     *  after commit within a tick, so the fresh report is one cycle
     *  old when commit sees it). */
    RenameStall renameStall = RenameStall::None;
    Cycle renameStallCycle = InvalidCycle;

    void issueListAppend(DynInst *d);
    void issueListRemove(DynInst *d);

    /** Index of the oldest ROB entry with seq >= @p seq (the ROB is
     *  seq-sorted). */
    std::size_t robIndexOf(InstSeq seq) const;

    /**
     * Squash ROB entries [idx, end): roll back RENO state in reverse
     * order and recycle the instructions into the fetch buffer for
     * replay starting at @p restart_cycle.
     */
    void squashFrom(std::size_t idx, Cycle restart_cycle,
                    RenoRenamer &renamer, StoreSets &ssets,
                    const CoreParams &params);
};

} // namespace reno
